// Quickstart: the 60-second tour of the shiftsplit library.
//
// 1. Transform a 1-d vector with the paper's Haar normalization.
// 2. Store a transform in disk-block tiles and run SHIFT-SPLIT maintenance.
// 3. Query and reconstruct straight from the tiles.
// 4. Do all of the above in three lines with the WaveletCube facade.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/data/dataset.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/tree_tiling.h"
#include "shiftsplit/wavelet/haar.h"

using namespace shiftsplit;

int main() {
  // --- 1. Plain Haar transform (paper §2.1's worked example) -------------
  std::vector<double> v{3, 5, 7, 5};
  if (auto s = ForwardHaar1D(v, Normalization::kAverage); !s.ok()) {
    std::fprintf(stderr, "transform failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("DWT({3,5,7,5})      = {%g, %g, %g, %g}   (paper: {5,-1,-1,1})\n",
              v[0], v[1], v[2], v[3]);

  // --- 2. A disk-resident transform built chunk by chunk -----------------
  // Dataset of N = 2^10 values, transformed with only M = 2^4 values of
  // memory at a time, stored in B = 2^3 coefficient tiles.
  const uint32_t n = 10, m = 4, b = 3;
  MemoryBlockManager device(uint64_t{1} << b);
  auto store_result = TiledStore::Create(
      std::make_unique<TreeTilingLayout>(n, b), &device, /*pool_blocks=*/16);
  if (!store_result.ok()) return 1;
  std::unique_ptr<TiledStore> store = std::move(store_result).value();

  std::vector<double> data(uint64_t{1} << n);
  for (uint64_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i % 97) * 0.25;
  }
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    auto chunk = std::span<const double>(data).subspan(k << m, 1u << m);
    if (auto s = TransformAndApplyChunk1D(chunk, n, k, store.get(),
                                          Normalization::kAverage);
        !s.ok()) {
      std::fprintf(stderr, "chunk apply failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("transformed %llu values using %llu-value chunks: %s\n",
              static_cast<unsigned long long>(data.size()),
              static_cast<unsigned long long>(uint64_t{1} << m),
              store->stats().ToString().c_str());

  // --- 3. Query without decompressing -------------------------------------
  const std::vector<uint32_t> log_dims{n};
  std::vector<uint64_t> point{531};
  QueryOptions options;
  options.use_scaling_slots = true;  // 1 disk block per point query
  auto value = PointQueryStandard(store.get(), log_dims, point, options);
  std::printf("data[531] via 1 tile = %g (expected %g)\n", *value, data[531]);

  std::vector<uint64_t> lo{100}, hi{200};
  auto sum = RangeSumStandard(store.get(), log_dims, lo, hi, QueryOptions{});
  double expected = 0;
  for (uint64_t i = 100; i <= 200; ++i) expected += data[i];
  std::printf("sum(data[100..200]) = %g (expected %g)\n", *sum, expected);

  // Reconstruct a dyadic sub-range (Result 6) without touching the rest.
  std::vector<uint32_t> range_log{5};
  std::vector<uint64_t> range_pos{7};  // values [224, 256)
  auto box = ReconstructDyadicStandard(store.get(), log_dims, range_log,
                                       range_pos, Normalization::kAverage);
  std::printf("reconstructed range [224,256): first=%g last=%g (expected "
              "%g / %g)\n",
              (*box)[0], (*box)[31], data[224], data[255]);

  // --- 4. The same lifecycle through the WaveletCube facade ---------------
  auto cube = WaveletCube::CreateInMemory({6, 6}, WaveletCube::Options{});
  if (!cube.ok()) return 1;
  FunctionDataset grid(TensorShape({64, 64}),
                       [](std::span<const uint64_t> c) {
                         return static_cast<double>(c[0]) * 0.5 -
                                static_cast<double>(c[1]) * 0.25;
                       });
  if (auto s = (*cube)->Ingest(&grid, /*log_chunk=*/3); !s.ok()) return 1;
  std::vector<uint64_t> at{40, 8};
  std::vector<uint64_t> qlo{0, 0}, qhi{15, 15};
  std::printf("facade: cube(40,8)=%g, sum(16x16 corner)=%g\n",
              *(*cube)->PointQuery(at), *(*cube)->RangeSum(qlo, qhi));
  return 0;
}
