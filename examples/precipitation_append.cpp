// Appending scenario (paper §5.2 / §6.2): the PRECIPITATION cube receives a
// new month of daily measurements at a time. Appends are SHIFT-SPLIT chunk
// applies; when the time domain fills up, the store expands entirely in the
// wavelet domain (Figure 10) — watch the block I/O jump at expansions
// exactly like Figure 13.
//
// Build & run:  ./build/examples/precipitation_append

#include <cstdio>

#include "shiftsplit/core/appender.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/data/precipitation.h"

using namespace shiftsplit;

int main() {
  PrecipitationOptions data_options;  // 8 x 8 grid, 32-day months
  Appender::Options options;
  options.b = 2;
  options.pool_blocks = 256;

  // Start with one month of allocated time domain: 8 x 8 x 32.
  auto appender_r = Appender::Create({3, 3, 5}, /*append_dim=*/2, options);
  if (!appender_r.ok()) {
    std::fprintf(stderr, "%s\n", appender_r.status().ToString().c_str());
    return 1;
  }
  auto appender = std::move(appender_r).value();

  const uint64_t kMonths = 24;  // two years of monthly arrivals
  std::printf("month  filled  capacity  expansions  cumulative block I/O\n");
  for (uint64_t month = 0; month < kMonths; ++month) {
    Tensor slab = MakePrecipitationMonth(month, data_options);
    if (auto s = appender->Append(slab); !s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const IoStats io = appender->total_io();
    std::printf("%5llu  %6llu  %8llu  %10llu  %llu\n",
                static_cast<unsigned long long>(month + 1),
                static_cast<unsigned long long>(appender->filled()),
                static_cast<unsigned long long>(appender->capacity()),
                static_cast<unsigned long long>(appender->expansions()),
                static_cast<unsigned long long>(io.total_blocks()));
  }

  // The transform stays queryable throughout: total rainfall at cell (2,3)
  // over the first year, straight from the wavelet domain.
  std::vector<uint64_t> lo{2, 3, 0}, hi{2, 3, 12 * 32 - 1};
  auto sum = RangeSumStandard(appender->store(), appender->log_dims(), lo, hi,
                              QueryOptions{});
  if (!sum.ok()) return 1;
  double check = 0;
  for (uint64_t month = 0; month < 12; ++month) {
    Tensor slab = MakePrecipitationMonth(month, data_options);
    for (uint64_t day = 0; day < 32; ++day) {
      std::vector<uint64_t> c{2, 3, day};
      check += slab.At(c);
    }
  }
  std::printf("\nyear-1 rainfall at grid (2,3): %.2f mm (direct sum: %.2f "
              "mm)\n",
              *sum, check);
  return 0;
}
