// Approximate and progressive OLAP answers — the database use of wavelets
// the paper's introduction cites: a K-term synopsis answers range
// aggregates with no I/O and a provable error bound, while the progressive
// evaluator streams refinements coarse-to-fine until exact.
//
// Build & run:  ./build/examples/approx_olap

#include <cmath>
#include <cstdio>
#include <memory>

#include "shiftsplit/core/approx.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/data/temperature.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"

using namespace shiftsplit;

int main() {
  // A 64 x 64 (lat x lon) surface temperature grid.
  TemperatureOptions data_options;
  data_options.log_lat = 6;
  data_options.log_lon = 6;
  data_options.log_alt = 0;
  data_options.log_time = 0;
  auto dataset = MakeTemperatureDataset(data_options);
  const std::vector<uint32_t> log_dims{6, 6, 0, 0};

  auto layout = std::make_unique<StandardTiling>(log_dims, 2);
  MemoryBlockManager device(layout->block_capacity());
  auto store_r = TiledStore::Create(std::move(layout), &device, 1024);
  if (!store_r.ok()) return 1;
  auto store = std::move(store_r).value();
  if (!TransformDatasetStandard(dataset.get(), 3, store.get()).ok()) return 1;

  std::vector<uint64_t> lo{10, 20, 0, 0}, hi{40, 55, 0, 0};
  const double cells = 31.0 * 36.0;
  auto exact_r = RangeSumStandard(store.get(), log_dims, lo, hi,
                                  QueryOptions{});
  if (!exact_r.ok()) return 1;
  const double exact = *exact_r;
  std::printf("exact mean temperature of the box: %.4f C\n\n", exact / cells);

  // ---- K-term synopsis answers (zero I/O after the build scan) ----------
  std::printf("K-term synopsis estimates (error bound is guaranteed):\n");
  std::printf("%8s %14s %12s %14s %14s\n", "K", "estimate/C", "actual err",
              "guaranteed", "energy kept");
  for (uint64_t k : {16u, 64u, 256u, 1024u}) {
    auto synopsis_r = CompressedSynopsis::Build(store.get(), log_dims, k,
                                                Normalization::kAverage);
    if (!synopsis_r.ok()) return 1;
    const CompressedSynopsis& synopsis = *synopsis_r;
    const double estimate = synopsis.RangeSumEstimate(lo, hi);
    std::printf("%8llu %14.4f %12.4f %14.1f %13.4f%%\n",
                static_cast<unsigned long long>(k), estimate / cells,
                std::abs(estimate - exact) / cells,
                synopsis.RangeSumErrorBound(lo, hi) / cells,
                100.0 * synopsis.energy_fraction());
  }

  // ---- Progressive exact evaluation --------------------------------------
  std::printf("\nprogressive evaluation (coarse-to-fine, exact at the end):\n");
  std::printf("%8s %14s %14s\n", "depth", "estimate/C", "coeffs read");
  auto rounds_r = ProgressiveRangeSumStandard(store.get(), log_dims, lo, hi,
                                              QueryOptions{});
  if (!rounds_r.ok()) return 1;
  for (const ProgressiveEstimate& round : *rounds_r) {
    std::printf("%8u %14.4f %14llu\n", round.depth, round.estimate / cells,
                static_cast<unsigned long long>(round.coefficients_read));
  }
  std::printf("\n(final progressive estimate == exact: %.10f == %.10f)\n",
              rounds_r->back().estimate / cells, exact / cells);
  return 0;
}
