// OLAP-style scenario on the 4-d TEMPERATURE cube (the paper's §6.1
// dataset, synthetic stand-in): transform the cube chunk by chunk into both
// decomposition forms, then answer range aggregates and extract regions —
// the workloads the paper's introduction motivates.
//
// Build & run:  ./build/examples/temperature_cube

#include <cstdio>
#include <memory>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/data/temperature.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"

using namespace shiftsplit;

int main() {
  // A 32 x 32 x 8 x 64 (lat, lon, alt, time) cube: 2^21 cells.
  TemperatureOptions data_options;
  data_options.log_lat = 5;
  data_options.log_lon = 5;
  data_options.log_alt = 3;
  data_options.log_time = 6;
  auto dataset = MakeTemperatureDataset(data_options);
  const std::vector<uint32_t> log_dims{5, 5, 3, 6};
  std::printf("TEMPERATURE cube %s (%llu cells)\n",
              dataset->shape().ToString().c_str(),
              static_cast<unsigned long long>(
                  dataset->shape().num_elements()));

  // ---- Standard form, chunked transformation (Result 1) -----------------
  const uint32_t b = 2;
  auto layout = std::make_unique<StandardTiling>(log_dims, b);
  MemoryBlockManager device(layout->block_capacity());
  auto store_r = TiledStore::Create(std::move(layout), &device, 1024);
  if (!store_r.ok()) return 1;
  auto store = std::move(store_r).value();

  TransformOptions t_options;
  t_options.maintain_scaling_slots = true;
  auto result = TransformDatasetStandard(dataset.get(), /*log_chunk=*/3,
                                         store.get(), t_options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("standard transform: %llu chunks, %s\n",
              static_cast<unsigned long long>(result->chunks),
              result->store_io.ToString().c_str());

  // ---- OLAP queries -------------------------------------------------------
  // Average temperature of the equatorial band at the surface over the
  // whole period: a range-sum divided by the cell count.
  std::vector<uint64_t> lo{14, 0, 0, 0}, hi{17, 31, 0, 63};
  auto sum = RangeSumStandard(store.get(), log_dims, lo, hi, QueryOptions{});
  const double cells = 4.0 * 32.0 * 1.0 * 64.0;
  std::printf("equatorial surface mean temperature: %.2f C  (block I/O so "
              "far: %llu)\n",
              *sum / cells,
              static_cast<unsigned long long>(store->stats().total_blocks()));

  // Point probes via the single-tile scaling-slot path.
  QueryOptions probe;
  probe.use_scaling_slots = true;
  std::vector<uint64_t> north_winter{28, 10, 0, 2};
  std::vector<uint64_t> south_winter{3, 10, 0, 2};
  auto tn = PointQueryStandard(store.get(), log_dims, north_winter, probe);
  auto ts = PointQueryStandard(store.get(), log_dims, south_winter, probe);
  std::printf("probe north=%.2f C south=%.2f C (generator: %.2f / %.2f)\n",
              *tn, *ts, dataset->Cell(north_winter),
              dataset->Cell(south_winter));

  // Extract a (lat x lon) surface patch at one time step (Result 6).
  std::vector<uint32_t> range_log{2, 2, 0, 0};
  std::vector<uint64_t> range_pos{4, 3, 0, 17};
  auto patch = ReconstructDyadicStandard(store.get(), log_dims, range_log,
                                         range_pos, Normalization::kAverage);
  std::printf("4x4 surface patch at t=17 reconstructed; corner = %.2f C "
              "(generator %.2f C)\n",
              (*patch)[0],
              dataset->Cell(std::vector<uint64_t>{16, 12, 0, 17}));

  // ---- Non-standard form on the cubic (lat, lon) slices ------------------
  // The non-standard decomposition needs a hypercube; demonstrate it on the
  // 32x32 surface slice of the cube at altitude 0, time 0.
  auto ns_layout = std::make_unique<NonstandardTiling>(2, 5, b);
  MemoryBlockManager ns_device(ns_layout->block_capacity());
  auto ns_store_r = TiledStore::Create(std::move(ns_layout), &ns_device, 256);
  if (!ns_store_r.ok()) return 1;
  auto ns_store = std::move(ns_store_r).value();
  FunctionDataset surface(
      TensorShape::Cube(2, 32), [&](std::span<const uint64_t> c) {
        std::vector<uint64_t> cell{c[0], c[1], 0, 0};
        return dataset->Cell(cell);
      });
  TransformOptions ns_options;
  ns_options.zorder = true;  // Result 2's optimal access pattern
  auto ns_result =
      TransformDatasetNonstandard(&surface, 3, ns_store.get(), ns_options);
  if (!ns_result.ok()) return 1;
  std::printf("non-standard surface transform (z-order): %s\n",
              ns_result->store_io.ToString().c_str());
  std::vector<uint64_t> p{20, 5};
  QueryOptions ns_probe;
  ns_probe.use_scaling_slots = true;
  auto pv = PointQueryNonstandard(ns_store.get(), 5, p, ns_probe);
  std::printf("surface probe (20,5) = %.2f C (generator %.2f C)\n", *pv,
              surface.Cell(p));
  return 0;
}
