// Data-stream monitoring scenario (paper §5.3 / Result 3): maintain the
// best-K wavelet synopsis of an unbounded sensor stream. Compares the
// Gilbert et al. per-item maintainer with the buffered SHIFT-SPLIT
// maintainer at several buffer sizes, then uses the synopsis to answer
// approximate point queries.
//
// Build & run:  ./build/examples/stream_monitor

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "shiftsplit/baseline/gilbert_stream.h"
#include "shiftsplit/core/stream_synopsis.h"
#include "shiftsplit/util/random.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"

using namespace shiftsplit;

namespace {

// A sensor trace: daily + weekly periodicities, drift, occasional spikes.
double Sensor(uint64_t t, Xoshiro256& rng) {
  double v = 20.0 + 6.0 * std::sin(2 * M_PI * t / 24.0) +
             3.0 * std::sin(2 * M_PI * t / 168.0) + 0.0005 * t;
  if (rng.NextDouble() < 0.01) v += rng.NextUniform(10.0, 25.0);
  return v + rng.NextGaussian() * 0.5;
}

// Approximate point reconstruction from a K-term synopsis (1-d keys are
// flat wavelet indices).
double Estimate(const TopKSynopsis& synopsis, uint32_t n, uint64_t t) {
  double v = 0.0;
  for (uint64_t idx : PathToRoot(n, t)) {
    v += ReconstructionWeight(n, idx, t, Normalization::kOrthonormal) *
         synopsis.ValueOrZero(idx);
  }
  return v;
}

}  // namespace

int main() {
  const uint32_t n = 16;  // stream domain: 65536 readings
  const uint64_t kItems = uint64_t{1} << n;
  const uint64_t kK = 256;

  std::vector<double> trace(kItems);
  {
    Xoshiro256 rng(7);
    for (uint64_t t = 0; t < kItems; ++t) trace[t] = Sensor(t, rng);
  }

  std::printf("maintaining a %llu-term synopsis over %llu readings\n\n",
              static_cast<unsigned long long>(kK),
              static_cast<unsigned long long>(kItems));
  std::printf("%-28s  per-item coefficient touches\n", "maintainer");

  GilbertStreamSynopsis gilbert(n, kK);
  for (double x : trace) (void)gilbert.Push(x);
  (void)gilbert.Finish();
  std::printf("%-28s  %.3f\n", "Gilbert et al. (per item)",
              static_cast<double>(gilbert.coeff_touches()) / kItems);

  const TopKSynopsis* best = nullptr;
  BufferedStreamSynopsis* kept = nullptr;
  std::vector<std::unique_ptr<BufferedStreamSynopsis>> keepers;
  for (uint32_t b : {2u, 4u, 6u, 8u}) {
    keepers.push_back(std::make_unique<BufferedStreamSynopsis>(n, kK, b));
    auto& stream = *keepers.back();
    for (double x : trace) (void)stream.Push(x);
    (void)stream.Finish();
    char label[64];
    std::snprintf(label, sizeof(label), "SHIFT-SPLIT, buffer B=%u", 1u << b);
    std::printf("%-28s  %.3f\n", label,
                static_cast<double>(stream.coeff_touches()) / kItems);
    best = &stream.synopsis();
    kept = &stream;
  }
  (void)kept;

  // Approximate queries from the synopsis.
  std::printf("\napproximate reconstruction from the %llu-term synopsis:\n",
              static_cast<unsigned long long>(kK));
  double sse = 0.0;
  for (uint64_t t = 0; t < kItems; ++t) {
    const double e = Estimate(*best, n, t) - trace[t];
    sse += e * e;
  }
  std::printf("  RMS error over the trace: %.3f (signal sd ~6)\n",
              std::sqrt(sse / kItems));
  for (uint64_t t : {uint64_t{1000}, uint64_t{33333}, uint64_t{65000}}) {
    std::printf("  reading[%llu] ~ %.2f (true %.2f)\n",
                static_cast<unsigned long long>(t), Estimate(*best, n, t),
                trace[t]);
  }
  return 0;
}
