#!/usr/bin/env bash
# Builds the `default` and `asan` CMake presets and runs the full test suite
# under both. The asan preset (-fsanitize=address,undefined) makes the
# span-use-after-free bug class in the storage layer fail loudly instead of
# silently corrupting results — run this before merging storage/tile changes.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

for preset in default asan; do
  echo "==> configure [$preset]"
  cmake --preset "$preset"
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> test [$preset]"
  ctest --preset "$preset" -j "$jobs"
done

echo "All presets built and tested."
