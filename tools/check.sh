#!/usr/bin/env bash
# Builds the `default`, `asan` and `tsan` CMake presets and runs the full
# test suite under each. The asan preset (-fsanitize=address,undefined) makes
# the span-use-after-free bug class in the storage layer fail loudly instead
# of silently corrupting results; the tsan preset (-fsanitize=thread) does
# the same for data races in the parallel ingest pipeline and the buffer
# pool's thread-safe mode — run this before merging storage/tile/core
# changes.
#
# Every preset's suite runs twice: once with the default kernel dispatch
# (the widest SIMD tier the build and CPU support) and once with
# SHIFTSPLIT_FORCE_SCALAR=1, which pins kernels::Active() to the scalar
# reference tier. Both runs must be green — the dispatch tiers are
# bit-identical by contract, so a test that passes under one and fails
# under the other is a kernel bug, not flakiness. Set
# SHIFTSPLIT_FORCE_SCALAR=1 yourself to reproduce the scalar-only run of
# any single test or bench.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

# End-to-end durability smoke with the CLI: a freshly ingested store must
# scrub clean, and a single flipped byte in blocks.bin must make `scrub`
# exit non-zero. Run for the presets whose sanitizers cover the storage
# layer (tsan adds nothing here and triples the runtime).
scrub_smoke() {
  local build_dir="$1"
  local tool="$build_dir/tools/shiftsplit_tool"
  local store
  store="$(mktemp -d)/store"
  echo "==> scrub smoke [$build_dir]"
  "$tool" create "$store" --form standard --dims 3,3 --b 1 >/dev/null
  "$tool" ingest "$store" --dataset smooth --chunk 2 --seed 3 >/dev/null
  "$tool" scrub "$store" >/dev/null || {
    echo "scrub smoke: clean store failed scrub" >&2
    exit 1
  }
  # Flip one payload byte of the first block (guaranteed to change: the
  # replacement is the original plus one, mod 256).
  local orig flip
  orig="$(od -An -tu1 -j4 -N1 "$store/blocks.bin" | tr -d ' ')"
  flip=$(( (orig + 1) % 256 ))
  # shellcheck disable=SC2059
  printf "$(printf '\\x%02x' "$flip")" | dd of="$store/blocks.bin" bs=1 \
    seek=4 count=1 conv=notrunc status=none
  if "$tool" scrub "$store" >/dev/null 2>&1; then
    echo "scrub smoke: corruption went undetected" >&2
    exit 1
  fi
  rm -rf "$(dirname "$store")"
}

# Bit-rot smoke with the CLI (DESIGN.md §12): on a parity-protected store a
# flipped payload byte must be healed in place by `scrub --repair` (exit 1
# = repaired everything), the repaired blocks.bin must be byte-identical to
# the pre-corruption image, and a follow-up detect-only scrub must find the
# store clean (exit 0) — bit rot is an incident, not a quarantine.
bitrot_smoke() {
  local build_dir="$1"
  local tool="$build_dir/tools/shiftsplit_tool"
  local store
  store="$(mktemp -d)/store"
  echo "==> bit-rot smoke [$build_dir]"
  "$tool" create "$store" --form standard --dims 3,3 --b 1 --parity 4 \
    >/dev/null
  "$tool" ingest "$store" --dataset smooth --chunk 2 --seed 3 >/dev/null
  local ref
  ref="$(dirname "$store")/blocks.bin.ref"
  cp "$store/blocks.bin" "$ref"
  local orig flip
  orig="$(od -An -tu1 -j4 -N1 "$store/blocks.bin" | tr -d ' ')"
  flip=$(( (orig + 1) % 256 ))
  # shellcheck disable=SC2059
  printf "$(printf '\\x%02x' "$flip")" | dd of="$store/blocks.bin" bs=1 \
    seek=4 count=1 conv=notrunc status=none
  local rc=0
  "$tool" scrub "$store" --repair >/dev/null || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "bit-rot smoke: scrub --repair exited $rc, want 1 (repaired)" >&2
    exit 1
  fi
  cmp -s "$store/blocks.bin" "$ref" || {
    echo "bit-rot smoke: repaired blocks.bin differs from the" \
      "pre-corruption image" >&2
    exit 1
  }
  "$tool" scrub "$store" >/dev/null || {
    echo "bit-rot smoke: store not clean after repair" >&2
    exit 1
  }
  rm -rf "$(dirname "$store")"
}

# Serving-layer crash recovery with the CLI: buffer deltas durably, crash
# the process before any drain (serve-sim --crash uses _Exit, so nothing is
# flushed), then reopen and assert every acknowledged delta is replayed,
# visible to queries, and survives a full drain (serve-sim --verify).
serve_sim_smoke() {
  local build_dir="$1"
  local tool="$build_dir/tools/shiftsplit_tool"
  local store
  store="$(mktemp -d)/store"
  echo "==> serve-sim smoke [$build_dir]"
  "$tool" create "$store" --form standard --dims 4,4 --b 2 >/dev/null
  "$tool" serve-sim "$store" --deltas 24 --seed 9 --crash >/dev/null
  "$tool" serve-sim "$store" --deltas 24 --seed 9 --verify >/dev/null || {
    echo "serve-sim smoke: crash recovery lost acknowledged deltas" >&2
    exit 1
  }
  rm -rf "$(dirname "$store")"
}

# The same crash/recover contract over a sharded store: every shard has its
# own delta log and redo journal, and the composing router must find every
# acknowledged delta again after the whole process dies.
sharded_serve_sim_smoke() {
  local build_dir="$1"
  local tool="$build_dir/tools/shiftsplit_tool"
  local store
  store="$(mktemp -d)/store"
  echo "==> sharded serve-sim smoke [$build_dir]"
  "$tool" create "$store" --form standard --dims 5,4 --b 2 --shards 4 \
    >/dev/null
  "$tool" serve-sim "$store" --deltas 24 --seed 9 --crash >/dev/null
  "$tool" serve-sim "$store" --deltas 24 --seed 9 --verify >/dev/null || {
    echo "sharded serve-sim smoke: crash recovery lost deltas" >&2
    exit 1
  }
  "$tool" stats "$store" >/dev/null || {
    echo "sharded serve-sim smoke: stats failed on a sharded store" >&2
    exit 1
  }
  rm -rf "$(dirname "$store")"
}

# Self-healing smoke with the CLI (DESIGN.md §11): poison one shard of a
# 4-shard store mid-run and require the background supervisor to
# quarantine, rebuild and re-admit it — serve-sim exits non-zero if the
# shard is not recovered (or the cube ends poisoned), so a plain `|| exit`
# is the whole assertion.
self_healing_smoke() {
  local build_dir="$1"
  local tool="$build_dir/tools/shiftsplit_tool"
  local store
  store="$(mktemp -d)/store"
  echo "==> self-healing smoke [$build_dir]"
  "$tool" create "$store" --form standard --dims 5,4 --b 2 --shards 4 \
    >/dev/null
  "$tool" serve-sim "$store" --deltas 40 --seed 11 \
    --crash-shard 1 --expect-recover >/dev/null || {
    echo "self-healing smoke: supervisor failed to recover the shard" >&2
    exit 1
  }
  "$tool" stats "$store" >/dev/null || {
    echo "self-healing smoke: stats failed after recovery" >&2
    exit 1
  }
  rm -rf "$(dirname "$store")"
}

# Network front-end smoke with the CLI (DESIGN.md §13): serve a store over
# loopback, push an acknowledged write through the TCP client, kill -9 the
# server (nothing drains), restart, and require the write to be visible
# bit-exactly — the wire ack means the group-commit fsync held, so a crash
# between ack and drain must lose nothing. Values are dyadic so the printed
# %.17g answers compare with plain string equality. Finishes with a
# graceful TERM drain (exit 0).
net_smoke() {
  local build_dir="$1"
  local tool="$build_dir/tools/shiftsplit_tool"
  local tmp store port_file port pid
  tmp="$(mktemp -d)"
  store="$tmp/store"
  port_file="$tmp/port"
  echo "==> net smoke [$build_dir]"
  "$tool" create "$store" --form standard --dims 4,4 --b 2 >/dev/null
  "$tool" serve --cube demo="$store" --listen 0 --port-file "$port_file" \
    >/dev/null &
  pid=$!
  for _ in $(seq 1 100); do [ -s "$port_file" ] && break; sleep 0.1; done
  port="$(cat "$port_file")"
  "$tool" client ping --connect "127.0.0.1:$port" >/dev/null
  "$tool" client update --connect "127.0.0.1:$port" --cube demo \
    --origin 2,2 --dims 2,1 --values 2.5,1.25 >/dev/null || {
    echo "net smoke: update was not acknowledged" >&2
    exit 1
  }
  kill -9 "$pid"
  wait "$pid" 2>/dev/null || true
  rm -f "$port_file"
  "$tool" serve --cube demo="$store" --listen 0 --port-file "$port_file" \
    >/dev/null &
  pid=$!
  for _ in $(seq 1 100); do [ -s "$port_file" ] && break; sleep 0.1; done
  port="$(cat "$port_file")"
  local point sum
  point="$("$tool" client point --connect "127.0.0.1:$port" --cube demo \
    --at 2,2 --deadline-ms 5000)"
  sum="$("$tool" client sum --connect "127.0.0.1:$port" --cube demo \
    --lo 0,0 --hi 15,15 --deadline-ms 5000)"
  if [ "$point" != "2.5" ] || [ "$sum" != "3.75" ]; then
    echo "net smoke: kill -9 lost an acknowledged write" \
      "(point=$point want 2.5, sum=$sum want 3.75)" >&2
    exit 1
  fi
  "$tool" client stats --connect "127.0.0.1:$port" >/dev/null || {
    echo "net smoke: stats failed" >&2
    exit 1
  }
  kill -TERM "$pid"
  wait "$pid" || {
    echo "net smoke: graceful drain exited non-zero" >&2
    exit 1
  }
  rm -rf "$tmp"
}

# Replayable chaos soak: `-L chaos` selects the fault-injection soaks —
# including the self-healing sharded chaos (chaos_sharded_test) — with the
# seed pinned so a failure reproduces bit-for-bit. Runs under the plain
# build (fast, exercises the timing assertions at real speed) and under
# tsan (the concurrent phase is where races would hide).
chaos_seed=20260806
chaos_soak() {
  local build_dir="$1"
  echo "==> chaos soak [$build_dir] (seed $chaos_seed)"
  SHIFTSPLIT_CHAOS_SEED="$chaos_seed" \
    ctest --test-dir "$build_dir" -L chaos -j "$jobs" --output-on-failure
}

# The committed BENCH_*.json files are CI's schema references: regenerate
# each from the freshly built binary and diff the key sets (values change
# run to run; the shape must not drift silently).
bench_schema() {
  local build_dir="$1" bench="$2" ref="$3"
  local fresh
  fresh="$(mktemp -d)/$ref"
  echo "==> $bench schema [$build_dir]"
  "$build_dir/bench/$bench" --json "$fresh" >/dev/null
  local want got
  want="$(grep -o '"[a-zA-Z0-9_]*":' "$ref" | sort -u)"
  got="$(grep -o '"[a-zA-Z0-9_]*":' "$fresh" | sort -u)"
  if [ "$want" != "$got" ]; then
    echo "$bench schema drifted from the committed $ref:" >&2
    diff <(echo "$want") <(echo "$got") >&2 || true
    echo "regenerate it with: $build_dir/bench/$bench --json $ref" >&2
    exit 1
  fi
  rm -rf "$(dirname "$fresh")"
}

for preset in default asan tsan; do
  echo "==> configure [$preset]"
  cmake --preset "$preset"
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> test [$preset]"
  ctest --preset "$preset" -j "$jobs"
  echo "==> test [$preset, SHIFTSPLIT_FORCE_SCALAR=1]"
  SHIFTSPLIT_FORCE_SCALAR=1 ctest --preset "$preset" -j "$jobs"
done

scrub_smoke build
scrub_smoke build-asan

bitrot_smoke build
bitrot_smoke build-asan

serve_sim_smoke build
serve_sim_smoke build-asan

sharded_serve_sim_smoke build
sharded_serve_sim_smoke build-asan

self_healing_smoke build
self_healing_smoke build-asan

net_smoke build
net_smoke build-asan

chaos_soak build
chaos_soak build-tsan

bench_schema build bench_kernels BENCH_kernels.json
bench_schema build bench_serving BENCH_serving.json
bench_schema build bench_ingest_batched BENCH_ingest.json
bench_schema build bench_net BENCH_net.json

# The sharded router/cube property tests (bit-identity vs the monolith,
# per-shard crash matrix, self-healing chaos — chaos_sharded_test carries
# the compound chaos-sharding label, so `-L sharding` runs it here under
# tsan too) run under the plain build and under tsan, in both kernel
# dispatch modes — routing must not depend on the SIMD tier.
for build_dir in build build-tsan; do
  echo "==> sharding tests [$build_dir]"
  ctest --test-dir "$build_dir" -L sharding -j "$jobs" --output-on-failure
  echo "==> sharding tests [$build_dir, SHIFTSPLIT_FORCE_SCALAR=1]"
  SHIFTSPLIT_FORCE_SCALAR=1 \
    ctest --test-dir "$build_dir" -L sharding -j "$jobs" --output-on-failure
done

# Scrub-and-repair (DESIGN.md §12): parity maintenance, inline repair, the
# background Scrubber and the supervisor's in-place healing — `-L scrub`
# also picks up the compound scrub-sharding label. The Scrubber/worker/
# query interleavings are racy by design, so run under tsan as well, and in
# both kernel dispatch modes (repair reconstructs through the same kernels
# every other path uses).
for build_dir in build build-tsan; do
  echo "==> scrub tests [$build_dir]"
  ctest --test-dir "$build_dir" -L scrub -j "$jobs" --output-on-failure
  echo "==> scrub tests [$build_dir, SHIFTSPLIT_FORCE_SCALAR=1]"
  SHIFTSPLIT_FORCE_SCALAR=1 \
    ctest --test-dir "$build_dir" -L scrub -j "$jobs" --output-on-failure
done

# Network front-end tests (DESIGN.md §13): the wire codec and the epoll
# server/client pair. The server's loops, admission counter and drain path
# are shared-state-by-design, so run under tsan as well, and in both kernel
# dispatch modes — frame CRCs go through kernels::Active().crc32c, and a
# tier-dependent checksum would reject every frame.
for build_dir in build build-tsan; do
  echo "==> net tests [$build_dir]"
  ctest --test-dir "$build_dir" -L net -j "$jobs" --output-on-failure
  echo "==> net tests [$build_dir, SHIFTSPLIT_FORCE_SCALAR=1]"
  SHIFTSPLIT_FORCE_SCALAR=1 \
    ctest --test-dir "$build_dir" -L net -j "$jobs" --output-on-failure
done

# The concurrent serving soak is where writer/reader/maintenance races would
# hide; run the service label under tsan explicitly.
echo "==> serving soak [build-tsan]"
ctest --test-dir build-tsan -L service -j "$jobs" --output-on-failure

echo "All presets built and tested."
