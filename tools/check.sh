#!/usr/bin/env bash
# Builds the `default`, `asan` and `tsan` CMake presets and runs the full
# test suite under each. The asan preset (-fsanitize=address,undefined) makes
# the span-use-after-free bug class in the storage layer fail loudly instead
# of silently corrupting results; the tsan preset (-fsanitize=thread) does
# the same for data races in the parallel ingest pipeline and the buffer
# pool's thread-safe mode — run this before merging storage/tile/core
# changes.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

for preset in default asan tsan; do
  echo "==> configure [$preset]"
  cmake --preset "$preset"
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> test [$preset]"
  ctest --preset "$preset" -j "$jobs"
done

echo "All presets built and tested."
