// shiftsplit_tool — command-line front end for disk-resident wavelet stores.
//
//   create   <dir> --form F --dims A,B,.. [--b N] [--norm average|orthonormal]
//            [--shards N] [--parity G]
//   ingest   <dir> --dataset NAME [--chunk LOG] [--zorder] [--sparse] [--seed S]
//   info     <dir>
//   point    <dir> --at X,Y,..  [--slots]
//   sum      <dir> --lo X,Y,.. --hi X,Y,..
//   extract  <dir> --lo X,Y,.. --hi X,Y,..
//   scrub    <dir> [--repair]
//   serve-sim <dir> [--deltas N] [--seed S] [--crash] [--verify]
//   stats    <dir>
//   selftest [dir]
//
// A store directory holds `store.manifest` (see storage/manifest.h) and
// `blocks.bin` (the tile device). Datasets: temperature, uniform, smooth,
// sparse (synthetic; see src/shiftsplit/data/).
//
// `create --shards N` (N a power of two > 1) lays out a sharded store
// instead: a `shardset.manifest` plus one complete store directory per
// dyadic sub-domain (shard-0000, ...). serve-sim and stats detect sharded
// directories automatically and operate through the composing router.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <csignal>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/data/temperature.h"
#include "shiftsplit/net/cube_client.h"
#include "shiftsplit/net/cube_registry.h"
#include "shiftsplit/net/cube_server.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/sharded_cube.h"
#include "shiftsplit/storage/manifest.h"

namespace shiftsplit::tool {
namespace {

constexpr char kUsage[] =
    "usage: shiftsplit_tool "
    "<create|ingest|info|point|sum|extract|scrub|serve-sim|serve|client|"
    "stats|selftest> "
    "<store-dir> [flags]\n"
    "  create  --form standard|nonstandard --dims 4,4,6 [--b 2]\n"
    "          [--norm average|orthonormal] [--shards N] [--parity G]\n"
    "          (--parity G groups every G data blocks under one XOR parity\n"
    "          block, enabling scrub --repair and in-place healing)\n"
    "  ingest  --dataset temperature|uniform|smooth|sparse [--chunk 3]\n"
    "          [--zorder] [--sparse] [--seed 1] [--threads T] [--prefetch]\n"
    "          [--per-coeff]\n"
    "  info\n"
    "  point   --at 1,2,3 [--slots] [--deadline-ms MS] [--approx-ok]\n"
    "  sum     --lo 0,0,0 --hi 3,3,3 [--deadline-ms MS] [--approx-ok]\n"
    "  extract --lo 0,0,0 --hi 3,3,3\n"
    "  scrub   [--repair]\n"
    "          (verify every block checksum; exits 1 on corruption.\n"
    "          --repair also rebuilds corrupt blocks from group parity:\n"
    "          exit 0 all clean, 1 repaired everything, 2 unrepairable\n"
    "          blocks remain. Sharded stores are scrubbed shard by shard)\n"
    "  serve-sim [--deltas 32] [--seed 1] [--crash] [--verify]\n"
    "          [--crash-shard K] [--expect-recover]\n"
    "          (buffer deltas through the serving layer; --crash exits\n"
    "          before draining, --verify replays and checks them;\n"
    "          sharded stores are routed automatically. --crash-shard K\n"
    "          poisons shard K mid-run; with --expect-recover the\n"
    "          supervisor must quarantine, recover and re-admit it or the\n"
    "          run exits non-zero. Exits non-zero whenever the cube ends\n"
    "          poisoned, printing the cause)\n"
    "  stats   (pool + durability + serving counters in one table, with\n"
    "          shard health and poison cause; sharded stores add\n"
    "          per-shard serving rows)\n"
    "  serve   --cube NAME=DIR[,NAME=DIR...] [--listen PORT]\n"
    "          [--threads T] [--port-file PATH]\n"
    "          (multi-tenant TCP front-end, DESIGN.md §13: opens every\n"
    "          named store — monolithic or sharded, auto-detected — and\n"
    "          serves the binary wire protocol until SIGINT/SIGTERM, then\n"
    "          drains gracefully. --listen 0 binds an ephemeral port;\n"
    "          --port-file writes the bound port for scripts)\n"
    "  client  <ping|point|sum|add|update|stats> --connect HOST:PORT\n"
    "          [--cube NAME] [--deadline-ms MS] [--max-error E]\n"
    "          [--at X,Y,..] [--lo ..] [--hi ..]\n"
    "          [--origin ..] [--dims ..] [--values V1,V2,..] [--delta D]\n"
    "          (speaks the wire protocol to a running serve instance;\n"
    "          values print with %.17g so answers compare bit-exactly)\n";

struct Args {
  std::string command;
  std::string dir;
  std::map<std::string, std::string> flags;
  std::vector<std::string> bare;  // leftover positionals
};

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 2) return Status::InvalidArgument("missing command");
  args.command = argv[1];
  int i = 2;
  // serve takes no positional (cubes ride in --cube NAME=DIR); client's
  // positional is the remote operation, not a store directory; selftest's
  // directory is optional.
  if (args.command == "serve") {
    // flags only
  } else if (args.command == "client") {
    if (argc < 3 || argv[2][0] == '-') {
      return Status::InvalidArgument(
          "client needs an operation (ping|point|sum|add|update|stats)");
    }
    args.dir = argv[2];  // the remote operation
    i = 3;
  } else if (args.command != "selftest") {
    if (argc < 3) return Status::InvalidArgument("missing store directory");
    args.dir = argv[2];
    i = 3;
  } else if (argc >= 3 && argv[2][0] != '-') {
    args.dir = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      if (key == "zorder" || key == "sparse" || key == "slots" ||
          key == "prefetch" || key == "per-coeff" || key == "approx-ok" ||
          key == "crash" || key == "verify" || key == "expect-recover" ||
          key == "repair") {
        args.flags[key] = "1";
      } else if (i + 1 < argc) {
        args.flags[key] = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + key + " needs a value");
      }
    } else {
      args.bare.push_back(std::move(a));
    }
  }
  return args;
}

Result<std::vector<uint64_t>> ParseList(const std::string& csv) {
  std::vector<uint64_t> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string part =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (part.empty()) return Status::InvalidArgument("bad list: " + csv);
    out.push_back(std::stoull(part));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Status CmdCreate(const Args& args) {
  WaveletCube::Options options;
  if (auto it = args.flags.find("form"); it != args.flags.end()) {
    SS_ASSIGN_OR_RETURN(options.form, StoreFormFromString(it->second));
  }
  if (auto it = args.flags.find("norm"); it != args.flags.end()) {
    if (it->second == "orthonormal") {
      options.norm = Normalization::kOrthonormal;
    } else if (it->second != "average") {
      return Status::InvalidArgument("unknown normalization " + it->second);
    }
  }
  if (auto it = args.flags.find("b"); it != args.flags.end()) {
    options.b = static_cast<uint32_t>(std::stoul(it->second));
  }
  if (auto it = args.flags.find("parity"); it != args.flags.end()) {
    options.parity_group = std::stoull(it->second);
  }
  auto dims_it = args.flags.find("dims");
  if (dims_it == args.flags.end()) {
    return Status::InvalidArgument("create needs --dims (log2 extents)");
  }
  SS_ASSIGN_OR_RETURN(const auto dims, ParseList(dims_it->second));
  std::vector<uint32_t> log_dims;
  for (uint64_t d : dims) log_dims.push_back(static_cast<uint32_t>(d));
  uint32_t shards = 1;
  if (auto it = args.flags.find("shards"); it != args.flags.end()) {
    shards = static_cast<uint32_t>(std::stoul(it->second));
  }
  if (shards > 1) {
    ShardedCube::Options sharded_options;
    sharded_options.serving.start_workers = false;
    SS_ASSIGN_OR_RETURN(auto sharded,
                        ShardedCube::CreateOnDisk(args.dir, log_dims, shards,
                                                  options, sharded_options));
    const ShardRouter& router = sharded->router();
    std::printf("created sharded store %s: %u shard(s) split on dim %u "
                "(slab extent %llu)\n",
                args.dir.c_str(), router.num_shards(), router.split_dim(),
                static_cast<unsigned long long>(router.slab_extent()));
    return sharded->Close();
  }
  SS_ASSIGN_OR_RETURN(auto cube,
                      WaveletCube::CreateOnDisk(args.dir, log_dims, options));
  std::printf("created %s store %s: %llu blocks of %llu coefficients\n",
              StoreFormToString(cube->manifest().form), args.dir.c_str(),
              static_cast<unsigned long long>(
                  cube->store()->layout().num_blocks()),
              static_cast<unsigned long long>(
                  cube->store()->layout().block_capacity()));
  return cube->Close();
}

Result<std::unique_ptr<ChunkSource>> MakeDataset(const StoreManifest& manifest,
                                                 const std::string& name,
                                                 uint64_t seed) {
  std::vector<uint64_t> dims;
  for (uint32_t n : manifest.log_dims) dims.push_back(uint64_t{1} << n);
  TensorShape shape(dims);
  if (name == "uniform") {
    return std::unique_ptr<ChunkSource>(
        MakeUniformDataset(shape, -1.0, 1.0, seed));
  }
  if (name == "smooth") {
    return std::unique_ptr<ChunkSource>(MakeSmoothDataset(shape, seed));
  }
  if (name == "sparse") {
    return std::unique_ptr<ChunkSource>(
        MakeSparseDataset(shape, 0.05, 1.0, seed));
  }
  if (name == "temperature") {
    if (manifest.log_dims.size() != 4) {
      return Status::InvalidArgument(
          "the temperature dataset is 4-dimensional");
    }
    TemperatureOptions options;
    options.log_lat = manifest.log_dims[0];
    options.log_lon = manifest.log_dims[1];
    options.log_alt = manifest.log_dims[2];
    options.log_time = manifest.log_dims[3];
    options.seed = seed;
    return std::unique_ptr<ChunkSource>(MakeTemperatureDataset(options));
  }
  return Status::InvalidArgument("unknown dataset " + name);
}

Status CmdIngest(const Args& args) {
  SS_ASSIGN_OR_RETURN(auto cube, WaveletCube::OpenOnDisk(args.dir, 1024));
  auto it = args.flags.find("dataset");
  if (it == args.flags.end()) {
    return Status::InvalidArgument("ingest needs --dataset");
  }
  uint64_t seed = 1;
  if (auto s = args.flags.find("seed"); s != args.flags.end()) {
    seed = std::stoull(s->second);
  }
  SS_ASSIGN_OR_RETURN(auto dataset,
                      MakeDataset(cube->manifest(), it->second, seed));
  uint32_t log_chunk = 3;
  if (auto c = args.flags.find("chunk"); c != args.flags.end()) {
    log_chunk = static_cast<uint32_t>(std::stoul(c->second));
  }
  TransformOptions options;
  options.zorder = args.flags.contains("zorder");
  options.sparse = args.flags.contains("sparse");
  options.batched = !args.flags.contains("per-coeff");
  options.prefetch = args.flags.contains("prefetch");
  if (auto t = args.flags.find("threads"); t != args.flags.end()) {
    options.num_threads = static_cast<uint32_t>(std::stoul(t->second));
    // An explicit --threads T means T workers, even on boxes with fewer
    // hardware threads (otherwise the count silently clamps to 1 there).
    options.oversubscribe = options.num_threads > 1;
  }
  SS_RETURN_IF_ERROR(cube->Ingest(dataset.get(), log_chunk, &options));
  SS_RETURN_IF_ERROR(cube->Close());
  std::printf("ingested %s: %s\n", it->second.c_str(),
              cube->stats().ToString().c_str());
  const BufferPool::Stats cache = cube->pool_stats();
  std::printf("cache: %.1f%% hit rate (%llu GetBlock calls: %llu hits, "
              "%llu misses), %llu prefetched, %llu evictions, "
              "%llu write-backs\n",
              100.0 * cache.hit_rate(),
              static_cast<unsigned long long>(cache.hits + cache.misses),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.prefetched),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.write_backs));
  return Status::OK();
}

Status CmdInfo(const Args& args) {
  SS_ASSIGN_OR_RETURN(auto cube, WaveletCube::OpenOnDisk(args.dir, 2));
  const StoreManifest& manifest = cube->manifest();
  std::printf("store:       %s\n", args.dir.c_str());
  std::printf("form:        %s\n", StoreFormToString(manifest.form));
  std::printf("norm:        %s\n", NormalizationToString(manifest.norm));
  std::printf("tile edge:   2^%u\n", manifest.b);
  std::printf("dims (log2):");
  for (uint32_t n : manifest.log_dims) std::printf(" %u", n);
  std::printf("\n");
  BlockManager& device = cube->store()->manager();
  std::printf("blocks:      %llu x %llu coefficients (%.2f MiB)\n",
              static_cast<unsigned long long>(device.num_blocks()),
              static_cast<unsigned long long>(device.block_size()),
              static_cast<double>(device.num_blocks() * device.block_size() *
                                  8) /
                  (1024.0 * 1024.0));
  return Status::OK();
}

// --deadline-ms arms `ctx` and returns it; otherwise returns null (no
// deadline, no retries — the pre-resilience behaviour).
Result<OperationContext*> QueryContext(const Args& args,
                                       OperationContext* ctx) {
  auto it = args.flags.find("deadline-ms");
  if (it == args.flags.end()) return static_cast<OperationContext*>(nullptr);
  uint64_t ms = 0;
  try {
    ms = std::stoull(it->second);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad --deadline-ms: " + it->second);
  }
  ctx->set_timeout(std::chrono::milliseconds(ms));
  return ctx;
}

void PrintDegraded(const DegradedResult& r) {
  std::printf("%.10g\n", r.value);
  if (!r.exact()) {
    std::printf("# degraded: %s, %llu block(s) skipped, |error| <= %.10g\n",
                DegradedReasonToString(r.reason),
                static_cast<unsigned long long>(r.blocks_missing),
                r.error_bound);
  }
}

Status CmdPoint(const Args& args) {
  SS_ASSIGN_OR_RETURN(auto cube, WaveletCube::OpenOnDisk(args.dir, 64));
  auto it = args.flags.find("at");
  if (it == args.flags.end()) return Status::InvalidArgument("need --at");
  SS_ASSIGN_OR_RETURN(const auto point, ParseList(it->second));
  OperationContext deadline_ctx;
  SS_ASSIGN_OR_RETURN(OperationContext* ctx,
                      QueryContext(args, &deadline_ctx));
  const bool slots = args.flags.contains("slots");
  if (args.flags.contains("approx-ok")) {
    SS_RETURN_IF_ERROR(cube->EnableEnergyTracking());
    SS_ASSIGN_OR_RETURN(const DegradedResult r,
                        cube->PointQueryResilient(point, slots, ctx));
    PrintDegraded(r);
  } else {
    SS_ASSIGN_OR_RETURN(const double value,
                        cube->PointQuery(point, slots, ctx));
    std::printf("%.10g\n", value);
  }
  std::printf("# block reads: %llu\n",
              static_cast<unsigned long long>(cube->stats().block_reads));
  return Status::OK();
}

Status CmdSum(const Args& args) {
  SS_ASSIGN_OR_RETURN(auto cube, WaveletCube::OpenOnDisk(args.dir, 64));
  auto lo_it = args.flags.find("lo");
  auto hi_it = args.flags.find("hi");
  if (lo_it == args.flags.end() || hi_it == args.flags.end()) {
    return Status::InvalidArgument("need --lo and --hi");
  }
  SS_ASSIGN_OR_RETURN(const auto lo, ParseList(lo_it->second));
  SS_ASSIGN_OR_RETURN(const auto hi, ParseList(hi_it->second));
  OperationContext deadline_ctx;
  SS_ASSIGN_OR_RETURN(OperationContext* ctx,
                      QueryContext(args, &deadline_ctx));
  if (args.flags.contains("approx-ok")) {
    SS_RETURN_IF_ERROR(cube->EnableEnergyTracking());
    SS_ASSIGN_OR_RETURN(const DegradedResult r,
                        cube->RangeSumResilient(lo, hi, ctx));
    PrintDegraded(r);
  } else {
    SS_ASSIGN_OR_RETURN(const double value, cube->RangeSum(lo, hi, ctx));
    std::printf("%.10g\n", value);
  }
  return Status::OK();
}

Status CmdExtract(const Args& args) {
  SS_ASSIGN_OR_RETURN(auto cube, WaveletCube::OpenOnDisk(args.dir, 256));
  auto lo_it = args.flags.find("lo");
  auto hi_it = args.flags.find("hi");
  if (lo_it == args.flags.end() || hi_it == args.flags.end()) {
    return Status::InvalidArgument("need --lo and --hi");
  }
  SS_ASSIGN_OR_RETURN(const auto lo, ParseList(lo_it->second));
  SS_ASSIGN_OR_RETURN(const auto hi, ParseList(hi_it->second));
  SS_ASSIGN_OR_RETURN(Tensor box, cube->Extract(lo, hi));
  std::vector<uint64_t> local(lo.size(), 0);
  for (;;) {
    bool in_box = true;
    for (size_t i = 0; i < lo.size(); ++i) {
      in_box = in_box && lo[i] + local[i] <= hi[i];
    }
    if (in_box) {
      for (size_t i = 0; i < lo.size(); ++i) {
        std::printf("%llu%s",
                    static_cast<unsigned long long>(lo[i] + local[i]),
                    i + 1 < lo.size() ? "," : "");
      }
      std::printf("\t%.10g\n", box.At(local));
    }
    if (!box.shape().Next(local)) break;
  }
  return Status::OK();
}

// The store directories one scrub invocation covers: the directory itself
// for a monolithic store, every shard-* subdirectory for a sharded one.
Result<std::vector<std::string>> ScrubTargets(const std::string& dir) {
  if (!ShardedCube::IsShardedDir(dir)) return std::vector<std::string>{dir};
  std::vector<std::string> shards;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("shard-", 0) == 0) {
      shards.push_back(entry.path().string());
    }
  }
  if (shards.empty()) {
    return Status::NotFound("sharded store " + dir + " has no shard-* dirs");
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

// Exit code 0 = every block verified clean, 1 = corruption found and fully
// repaired, 2 = unrepairable blocks remain (store left read-only).
Result<int> CmdScrub(const Args& args) {
  const bool repair = args.flags.count("repair") > 0;
  SS_ASSIGN_OR_RETURN(const std::vector<std::string> targets,
                      ScrubTargets(args.dir));
  uint64_t verified = 0;
  uint64_t repaired = 0;
  std::vector<uint64_t> bad;  // corrupt (plain) or unrepairable (--repair)
  for (const std::string& target : targets) {
    SS_ASSIGN_OR_RETURN(auto cube, WaveletCube::OpenOnDisk(target, 64));
    const DurabilityStats recovery = cube->durability_stats();
    if (recovery.journal_replays > 0 || recovery.journal_rollbacks > 0) {
      std::printf("recovery: %llu commit(s) replayed, %llu rolled back\n",
                  static_cast<unsigned long long>(recovery.journal_replays),
                  static_cast<unsigned long long>(recovery.journal_rollbacks));
    }
    verified += cube->store()->manager().num_blocks();
    if (repair) {
      SS_ASSIGN_OR_RETURN(const ScrubReport report, cube->ScrubRepair());
      repaired += report.repaired.size();
      bad.insert(bad.end(), report.unrepairable.begin(),
                 report.unrepairable.end());
    } else {
      SS_ASSIGN_OR_RETURN(const std::vector<uint64_t> corrupt, cube->Scrub());
      bad.insert(bad.end(), corrupt.begin(), corrupt.end());
    }
    SS_RETURN_IF_ERROR(cube->Close());
  }
  if (bad.empty()) {
    if (repaired > 0) {
      std::printf("scrub repaired %llu corrupt block(s); "
                  "%llu block(s) verified clean\n",
                  static_cast<unsigned long long>(repaired),
                  static_cast<unsigned long long>(verified));
      return 1;
    }
    std::printf("scrub OK: %llu block(s) verified\n",
                static_cast<unsigned long long>(verified));
    return 0;
  }
  std::printf("scrub FAILED: %llu %s block(s):",
              static_cast<unsigned long long>(bad.size()),
              repair ? "unrepairable" : "corrupt");
  for (uint64_t id : bad) {
    std::printf(" %llu", static_cast<unsigned long long>(id));
  }
  std::printf("\nstore degraded to read-only; corrupt blocks read as zeros\n");
  if (repair) {
    if (repaired > 0) {
      std::printf("(%llu other corrupt block(s) were repaired)\n",
                  static_cast<unsigned long long>(repaired));
    }
    return 2;
  }
  return Status::ChecksumMismatch("store failed scrub");
}

// Deterministic serve-sim cell schedule: distinct cells (odd-stride walk of
// the power-of-two domain) and a value derived from the index, so a later
// --verify run can recompute exactly what an earlier run buffered.
struct SimDelta {
  std::vector<uint64_t> coords;
  double value;
};

SimDelta SimDeltaAt(std::span<const uint32_t> log_dims, uint64_t i,
                    uint64_t seed) {
  uint64_t total = 1;
  std::vector<uint64_t> dims;
  for (uint32_t n : log_dims) {
    dims.push_back(uint64_t{1} << n);
    total *= uint64_t{1} << n;
  }
  uint64_t flat = (i * 5 + seed) % total;  // odd stride => bijective mod 2^k
  std::vector<uint64_t> coords(dims.size());
  for (size_t d = dims.size(); d-- > 0;) {
    coords[d] = flat % dims[d];
    flat /= dims[d];
  }
  return {std::move(coords), 1.0 + 0.5 * static_cast<double>(i % 97)};
}

// One serving store behind the four calls the sim needs — the monolithic
// ServingCube and the ShardedCube (picked by shardset.manifest detection)
// run the identical schedule, so their crash/verify contracts are exercised
// by the same code.
struct ServeTarget {
  std::vector<uint32_t> log_dims;  // global domain, for the cell schedule
  std::unique_ptr<ServingCube> mono;
  std::unique_ptr<ShardedCube> sharded;

  Status Add(std::span<const uint64_t> at, double v) {
    return sharded ? sharded->Add(at, v) : mono->Add(at, v);
  }
  Result<double> Point(std::span<const uint64_t> at) {
    return sharded ? sharded->PointQuery(at) : mono->PointQuery(at);
  }
  Status DrainAll() {
    return sharded ? sharded->DrainAll() : mono->DrainAll();
  }
  uint64_t Pending() const {
    return sharded ? sharded->pending_deltas() : mono->pending_deltas();
  }
  ServingStats Stats() const {
    return sharded ? sharded->stats() : mono->stats();
  }
  Status Close() { return sharded ? sharded->Close() : mono->Close(); }
};

Result<ServeTarget> OpenServeTarget(const std::string& dir,
                                    bool supervised = false) {
  ServeTarget target;
  if (ShardedCube::IsShardedDir(dir)) {
    ShardedCube::Options options;
    // Default: drains only where the sim says. A supervised run instead
    // starts workers and the supervisor so --expect-recover can watch the
    // full quarantine -> recover -> re-admit cycle happen on its own.
    options.serving.start_workers = supervised;
    options.serving.oversubscribe = supervised;
    if (supervised) {
      options.supervisor_poll = std::chrono::milliseconds(5);
    }
    SS_ASSIGN_OR_RETURN(target.sharded, ShardedCube::OpenOnDisk(dir, options));
    target.log_dims = target.sharded->router().log_dims();
  } else {
    ServingCube::Options options;
    options.start_workers = false;
    SS_ASSIGN_OR_RETURN(target.mono,
                        ServingCube::OpenOnDisk(dir, 256, options));
    target.log_dims = target.mono->cube()->manifest().log_dims;
  }
  return target;
}

// serve-sim: push N deltas through the serving layer. Default run drains and
// closes cleanly; --crash exits the process after the deltas are acked but
// before any drain (simulating kill -9); --verify reopens, checks that every
// acked delta was replayed and is visible, then drains and re-checks.
Status CmdServeSim(const Args& args) {
  uint64_t deltas = 32;
  if (auto it = args.flags.find("deltas"); it != args.flags.end()) {
    deltas = std::stoull(it->second);
  }
  uint64_t seed = 1;
  if (auto it = args.flags.find("seed"); it != args.flags.end()) {
    seed = std::stoull(it->second);
  }
  bool crash_shard = false;
  uint32_t victim = 0;
  if (auto it = args.flags.find("crash-shard"); it != args.flags.end()) {
    crash_shard = true;
    victim = static_cast<uint32_t>(std::stoul(it->second));
  }
  const bool expect_recover = args.flags.contains("expect-recover");
  if (expect_recover && !crash_shard) {
    return Status::InvalidArgument("--expect-recover needs --crash-shard K");
  }

  SS_ASSIGN_OR_RETURN(ServeTarget serving,
                      OpenServeTarget(args.dir, expect_recover));
  if (crash_shard) {
    if (!serving.sharded) {
      return Status::InvalidArgument(
          "--crash-shard needs a sharded store directory");
    }
    if (victim >= serving.sharded->num_shards()) {
      return Status::InvalidArgument(
          "--crash-shard " + std::to_string(victim) + " out of range (store"
          " has " + std::to_string(serving.sharded->num_shards()) +
          " shards)");
    }
  }

  if (args.flags.contains("verify")) {
    const ServingStats stats = serving.Stats();
    if (stats.replayed_deltas != deltas || stats.pending_deltas != deltas) {
      return Status::Internal(
          "serve-sim verify: expected " + std::to_string(deltas) +
          " replayed+pending deltas, got replayed=" +
          std::to_string(stats.replayed_deltas) +
          " pending=" + std::to_string(stats.pending_deltas));
    }
    // The base store under the crashed deltas is arbitrary (it may have been
    // ingested), so check the serving layer's exactness contract instead of
    // absolute values: answers with the replayed deltas merged from the
    // buffer must be bit-identical to the same answers after every delta is
    // drained into the store.
    std::vector<double> merged(deltas);
    for (uint64_t i = 0; i < deltas; ++i) {
      const SimDelta d = SimDeltaAt(serving.log_dims, i, seed);
      SS_ASSIGN_OR_RETURN(merged[i], serving.Point(d.coords));
    }
    SS_RETURN_IF_ERROR(serving.DrainAll());
    if (serving.Pending() != 0) {
      return Status::Internal("serve-sim verify: deltas left after drain");
    }
    for (uint64_t i = 0; i < deltas; ++i) {
      const SimDelta d = SimDeltaAt(serving.log_dims, i, seed);
      SS_ASSIGN_OR_RETURN(const double applied, serving.Point(d.coords));
      if (std::bit_cast<uint64_t>(applied) !=
          std::bit_cast<uint64_t>(merged[i])) {
        return Status::Internal(
            "serve-sim verify: merged/applied mismatch at #" +
            std::to_string(i));
      }
    }
    SS_RETURN_IF_ERROR(serving.Close());
    std::printf("serve-sim verify OK: %llu delta(s) recovered and applied\n",
                static_cast<unsigned long long>(deltas));
    return Status::OK();
  }

  // Writes bounced by an unavailable (healing) shard are retried once the
  // shard is re-admitted — the sim's contract is that every delta lands.
  std::vector<uint64_t> unacked;
  for (uint64_t i = 0; i < deltas; ++i) {
    if (crash_shard && i == deltas / 2) {
      // Poison the victim mid-run, exactly as a torn drain would.
      if (auto cube = serving.sharded->shard_for_test(victim)) {
        SS_RETURN_IF_ERROR(cube->CrashForTest());
        std::printf("serve-sim: crashed shard %u after %llu delta(s)\n",
                    victim, static_cast<unsigned long long>(i));
      }
    }
    const SimDelta d = SimDeltaAt(serving.log_dims, i, seed);
    const Status added = serving.Add(d.coords, d.value);
    if (added.ok()) continue;
    if (crash_shard && added.code() == StatusCode::kUnavailable) {
      unacked.push_back(i);
      continue;
    }
    return added;
  }
  if (args.flags.contains("crash")) {
    // Every delta above is fsynced in the log; nothing is drained. Exit
    // without unwinding so no destructor flushes state — the closest a
    // process can get to kill -9 on itself.
    std::printf("serve-sim: %llu delta(s) acked durably; crashing now\n",
                static_cast<unsigned long long>(deltas));
    std::fflush(stdout);
    std::_Exit(0);
  }
  if (expect_recover) {
    // The supervisor must quarantine, rebuild and re-admit the victim on
    // its own; then the bounced writes retry against the healed shard.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      const auto info = serving.sharded->shard_health(victim);
      if (info.health == ShardHealth::kHealthy && info.recoveries >= 1) break;
      if (info.health == ShardHealth::kFailed) {
        return Status::Unavailable("shard " + std::to_string(victim) +
                                   " failed terminally: " +
                                   info.cause.ToString());
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::DeadlineExceeded(
            "shard " + std::to_string(victim) + " did not recover (health " +
            ShardHealthToString(info.health) + ")");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (const uint64_t i : unacked) {
      const SimDelta d = SimDeltaAt(serving.log_dims, i, seed);
      SS_RETURN_IF_ERROR(serving.Add(d.coords, d.value));
    }
    const auto info = serving.sharded->shard_health(victim);
    std::printf("serve-sim: shard %u quarantined and re-admitted "
                "(%llu recover%s); %zu bounced write(s) retried\n",
                victim, static_cast<unsigned long long>(info.recoveries),
                info.recoveries == 1 ? "y" : "ies", unacked.size());
  }
  SS_RETURN_IF_ERROR(serving.DrainAll());
  const ServingStats stats = serving.Stats();
  SS_RETURN_IF_ERROR(serving.Close());
  std::printf("serve-sim: %s\n", stats.ToString().c_str());
  // A cube that ends the run poisoned is an operator problem, not a clean
  // exit: surface the cause and fail the process.
  if (!ShardHealthServes(stats.health)) {
    return Status::Unavailable(
        "cube ended " + std::string(ShardHealthToString(stats.health)) +
        ": " + std::string(StatusCodeToString(stats.poison_code)) + ": " +
        stats.poison_message);
  }
  return Status::OK();
}

void PrintServingRows(const ServingStats& serve) {
  const auto row = [](const char* name, uint64_t value) {
    std::printf("  %-24s %llu\n", name,
                static_cast<unsigned long long>(value));
  };
  row("pending_deltas", serve.pending_deltas);
  row("pending_slots", serve.pending_slots);
  row("replayed_deltas", serve.replayed_deltas);
  row("log_torn_records", serve.log_torn_records);
  row("latch_wait_us_total", serve.latch_wait_us_total);
  row("latch_hold_us_total", serve.latch_hold_us_total);
  row("latch_hold_us_max", serve.latch_hold_us_max);
  row("latch_exclusive_holds", serve.latch_exclusive_holds);
  row("last_seq", serve.last_seq);
  row("durable_seq", serve.durable_seq);
  row("applied_seq", serve.applied_seq);
  std::printf("  %-24s %s\n", "health", ShardHealthToString(serve.health));
  if (serve.poison_code != StatusCode::kOk) {
    std::printf("  %-24s %s: %s\n", "poison_cause",
                StatusCodeToString(serve.poison_code),
                serve.poison_message.c_str());
    row("poisoned_at_us", serve.poisoned_at_us);
  }
  row("log_sync_failures", serve.log_sync_failures);
  if (serve.quarantines != 0 || serve.recovery_attempts != 0 ||
      serve.parked_writes != 0 || serve.parked_dropped != 0) {
    row("quarantines", serve.quarantines);
    row("recovery_attempts", serve.recovery_attempts);
    row("recoveries", serve.recoveries);
    row("parked_writes", serve.parked_writes);
    row("parked_dropped", serve.parked_dropped);
  }
  if (serve.scrub_passes != 0 || serve.scrubbed_blocks != 0 ||
      serve.parity_repairs != 0 || serve.parity_unrepairable != 0) {
    row("scrub_passes", serve.scrub_passes);
    row("scrubbed_blocks", serve.scrubbed_blocks);
    row("scrub_repairs", serve.scrub_repairs);
    row("parity_repairs", serve.parity_repairs);
    row("parity_unrepairable", serve.parity_unrepairable);
  }
}

Status CmdStats(const Args& args) {
  if (ShardedCube::IsShardedDir(args.dir)) {
    ShardedCube::Options options;
    options.serving.start_workers = false;  // observe; never drain
    SS_ASSIGN_OR_RETURN(auto sharded, ShardedCube::OpenOnDisk(args.dir,
                                                              options));
    const ShardRouter& router = sharded->router();
    std::printf("sharded: %u shard(s), split dim %u, slab extent %llu\n",
                router.num_shards(), router.split_dim(),
                static_cast<unsigned long long>(router.slab_extent()));
    if (const auto first = sharded->shard_for_test(0); first != nullptr) {
      std::printf("parity group: %llu\n",
                  static_cast<unsigned long long>(
                      first->cube()->manifest().parity_group));
    }
    std::printf("serving (aggregate):\n");
    PrintServingRows(sharded->stats());
    for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
      std::printf("shard %u: %s\n", s,
                  sharded->shard_stats(s).ToString().c_str());
    }
    return Status::OK();
  }
  ServingCube::Options options;
  options.start_workers = false;  // observe; never drain as a side effect
  SS_ASSIGN_OR_RETURN(auto serving,
                      ServingCube::OpenOnDisk(args.dir, 64, options));
  WaveletCube* cube = serving->cube();
  const BufferPool::Stats pool = cube->pool_stats();
  const DurabilityStats durability = cube->durability_stats();
  const auto row = [](const char* name, uint64_t value) {
    std::printf("  %-24s %llu\n", name,
                static_cast<unsigned long long>(value));
  };
  std::printf("pool:\n");
  row("hits", pool.hits);
  row("misses", pool.misses);
  row("prefetched", pool.prefetched);
  row("evictions", pool.evictions);
  row("write_backs", pool.write_backs);
  std::printf("durability:\n");
  row("checksum_failures", durability.checksum_failures);
  row("quarantined_blocks", durability.quarantined_blocks);
  row("io_retries", durability.io_retries);
  row("journal_commits", durability.journal_commits);
  row("journal_replays", durability.journal_replays);
  row("journal_rollbacks", durability.journal_rollbacks);
  row("read_only", durability.read_only ? 1 : 0);
  row("parity group", cube->manifest().parity_group);
  row("repaired", durability.repaired_blocks);
  row("unrepairable", durability.unrepairable_blocks);
  std::printf("serving:\n");
  PrintServingRows(serving->stats());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// serve / client: the TCP front-end (DESIGN.md §13).

volatile std::sig_atomic_t g_serve_stop = 0;
void ServeSignalHandler(int) { g_serve_stop = 1; }

Status CmdServe(const Args& args) {
  const auto cube_it = args.flags.find("cube");
  if (cube_it == args.flags.end()) {
    return Status::InvalidArgument(
        "serve needs --cube NAME=DIR[,NAME=DIR...]");
  }
  auto registry = std::make_shared<net::CubeRegistry>();
  std::vector<std::string> names;
  const std::string& spec = cube_it->second;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string part =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    const size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) {
      return Status::InvalidArgument("bad --cube entry (want NAME=DIR): " +
                                     part);
    }
    registry->Configure(part.substr(0, eq), part.substr(eq + 1));
    names.push_back(part.substr(0, eq));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  // Eager open: a missing or corrupt store fails the launch, not the first
  // request.
  for (const std::string& name : names) {
    SS_RETURN_IF_ERROR(registry->Open(name).status());
  }

  net::CubeServer::Options options;
  if (auto it = args.flags.find("listen"); it != args.flags.end()) {
    options.port = static_cast<uint16_t>(std::stoul(it->second));
  }
  if (auto it = args.flags.find("threads"); it != args.flags.end()) {
    options.num_threads = static_cast<uint32_t>(std::stoul(it->second));
  }
  net::CubeServer server(registry, options);
  SS_RETURN_IF_ERROR(server.Start());
  std::printf("serving %zu cube(s) on 127.0.0.1:%u\n", names.size(),
              server.port());
  std::fflush(stdout);
  if (auto it = args.flags.find("port-file"); it != args.flags.end()) {
    FILE* f = std::fopen(it->second.c_str(), "w");
    if (f == nullptr) {
      server.Stop();
      return Status::IOError("cannot write --port-file " + it->second);
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("draining\n");
  server.Stop();
  return registry->CloseAll();
}

Result<std::vector<double>> ParseDoubleList(const std::string& csv) {
  std::vector<double> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string part =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (part.empty()) return Status::InvalidArgument("bad list: " + csv);
    try {
      out.push_back(std::stod(part));
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad value: " + part);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Result<std::vector<uint64_t>> RequiredList(const Args& args,
                                           const char* flag) {
  const auto it = args.flags.find(flag);
  if (it == args.flags.end()) {
    return Status::InvalidArgument(std::string("need --") + flag);
  }
  return ParseList(it->second);
}

Status CmdClient(const Args& args) {
  const std::string& op = args.dir;  // the positional after "client"
  const auto connect_it = args.flags.find("connect");
  if (connect_it == args.flags.end()) {
    return Status::InvalidArgument("client needs --connect HOST:PORT");
  }
  const std::string& endpoint = connect_it->second;
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument("bad --connect (want HOST:PORT): " +
                                   endpoint);
  }
  const std::string host = endpoint.substr(0, colon);
  const uint16_t port =
      static_cast<uint16_t>(std::stoul(endpoint.substr(colon + 1)));

  uint32_t deadline_ms = 0;
  if (auto it = args.flags.find("deadline-ms"); it != args.flags.end()) {
    deadline_ms = static_cast<uint32_t>(std::stoul(it->second));
  }
  double max_error = 0.0;
  if (auto it = args.flags.find("max-error"); it != args.flags.end()) {
    SS_ASSIGN_OR_RETURN(const auto parsed, ParseDoubleList(it->second));
    if (parsed.size() != 1) {
      return Status::InvalidArgument("--max-error wants one value");
    }
    max_error = parsed[0];
  }
  std::string cube;
  if (auto it = args.flags.find("cube"); it != args.flags.end()) {
    cube = it->second;
  }
  const auto need_cube = [&]() -> Status {
    if (cube.empty()) {
      return Status::InvalidArgument("client " + op + " needs --cube NAME");
    }
    return Status::OK();
  };

  net::CubeClient client(host, port);
  if (op == "ping") {
    SS_RETURN_IF_ERROR(client.Ping(deadline_ms));
    std::printf("pong\n");
    return Status::OK();
  }
  if (op == "point") {
    SS_RETURN_IF_ERROR(need_cube());
    SS_ASSIGN_OR_RETURN(const auto at, RequiredList(args, "at"));
    SS_ASSIGN_OR_RETURN(
        const DegradedResult result,
        client.PointDegraded(cube, at, max_error, deadline_ms));
    std::printf("%.17g\n", result.value);
    if (!result.exact()) {
      std::printf("# degraded: %s, |error| <= %.17g\n",
                  DegradedReasonToString(result.reason), result.error_bound);
    }
    return Status::OK();
  }
  if (op == "sum") {
    SS_RETURN_IF_ERROR(need_cube());
    SS_ASSIGN_OR_RETURN(const auto lo, RequiredList(args, "lo"));
    SS_ASSIGN_OR_RETURN(const auto hi, RequiredList(args, "hi"));
    SS_ASSIGN_OR_RETURN(
        const DegradedResult result,
        client.SumDegraded(cube, lo, hi, max_error, deadline_ms));
    std::printf("%.17g\n", result.value);
    if (!result.exact()) {
      std::printf("# degraded: %s, %zu shard(s) skipped, |error| <= %.17g\n",
                  DegradedReasonToString(result.reason),
                  result.shards_missing.size(), result.error_bound);
    }
    return Status::OK();
  }
  if (op == "add") {
    SS_RETURN_IF_ERROR(need_cube());
    SS_ASSIGN_OR_RETURN(const auto at, RequiredList(args, "at"));
    const auto delta_it = args.flags.find("delta");
    if (delta_it == args.flags.end()) {
      return Status::InvalidArgument("client add needs --delta D");
    }
    SS_ASSIGN_OR_RETURN(const auto delta, ParseDoubleList(delta_it->second));
    if (delta.size() != 1) {
      return Status::InvalidArgument("--delta wants one value");
    }
    SS_RETURN_IF_ERROR(client.Add(cube, at, delta[0], deadline_ms));
    std::printf("acked\n");
    return Status::OK();
  }
  if (op == "update") {
    SS_RETURN_IF_ERROR(need_cube());
    SS_ASSIGN_OR_RETURN(const auto origin, RequiredList(args, "origin"));
    SS_ASSIGN_OR_RETURN(const auto dims, RequiredList(args, "dims"));
    const auto values_it = args.flags.find("values");
    if (values_it == args.flags.end()) {
      return Status::InvalidArgument("client update needs --values V1,V2,..");
    }
    SS_ASSIGN_OR_RETURN(const auto values,
                        ParseDoubleList(values_it->second));
    SS_RETURN_IF_ERROR(
        client.Update(cube, origin, dims, values, deadline_ms));
    std::printf("acked %zu value(s)\n", values.size());
    return Status::OK();
  }
  if (op == "stats") {
    SS_ASSIGN_OR_RETURN(const net::StatsReply stats,
                        client.Stats(cube, deadline_ms));
    for (const auto& [key, value] : stats.counters) {
      std::printf("%-36s %llu\n", key.c_str(),
                  static_cast<unsigned long long>(value));
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown client operation " + op);
}

Status CmdSelftest(const Args& args) {
  const std::string dir =
      args.dir.empty()
          ? (std::filesystem::temp_directory_path() / "shiftsplit_selftest")
                .string()
          : args.dir;
  std::filesystem::remove_all(dir);

  Args create;
  create.dir = dir;
  create.flags = {{"form", "standard"}, {"dims", "3,3,4"}, {"b", "2"}};
  SS_RETURN_IF_ERROR(CmdCreate(create));

  Args ingest;
  ingest.dir = dir;
  ingest.flags = {{"dataset", "smooth"}, {"chunk", "2"}, {"seed", "7"}};
  SS_RETURN_IF_ERROR(CmdIngest(ingest));

  // Query and verify against the generator.
  SS_ASSIGN_OR_RETURN(auto cube, WaveletCube::OpenOnDisk(dir, 64));
  auto dataset = MakeSmoothDataset(TensorShape({8, 8, 16}), 7);
  std::vector<uint64_t> point{3, 5, 9};
  SS_ASSIGN_OR_RETURN(const double v, cube->PointQuery(point));
  const double expected = dataset->Cell(point);
  if (std::abs(v - expected) > 1e-8) {
    return Status::Internal("selftest point mismatch");
  }
  std::filesystem::remove_all(dir);
  std::printf("selftest OK\n");
  return Status::OK();
}

int Main(int argc, char** argv) {
  auto args_result = ParseArgs(argc, argv);
  if (!args_result.ok()) {
    std::fprintf(stderr, "%s\n%s", args_result.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const Args& args = *args_result;
  Status status;
  if (args.command == "create") {
    status = CmdCreate(args);
  } else if (args.command == "ingest") {
    status = CmdIngest(args);
  } else if (args.command == "info") {
    status = CmdInfo(args);
  } else if (args.command == "point") {
    status = CmdPoint(args);
  } else if (args.command == "sum") {
    status = CmdSum(args);
  } else if (args.command == "extract") {
    status = CmdExtract(args);
  } else if (args.command == "scrub") {
    // scrub owns its exit code (0 clean / 1 repaired or corrupt / 2
    // unrepairable); only hard errors go through the generic mapping.
    const Result<int> scrub = CmdScrub(args);
    if (scrub.ok()) return *scrub;
    status = scrub.status();
  } else if (args.command == "serve-sim") {
    status = CmdServeSim(args);
  } else if (args.command == "serve") {
    status = CmdServe(args);
  } else if (args.command == "client") {
    status = CmdClient(args);
  } else if (args.command == "stats") {
    status = CmdStats(args);
  } else if (args.command == "selftest") {
    status = CmdSelftest(args);
  } else {
    std::fprintf(stderr, "unknown command %s\n%s", args.command.c_str(),
                 kUsage);
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace shiftsplit::tool

int main(int argc, char** argv) { return shiftsplit::tool::Main(argc, argv); }
