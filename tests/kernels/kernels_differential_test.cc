// Randomized differential suite for the kernel dispatch tiers: every
// compiled-and-runnable tier must produce BIT-identical results to the
// scalar reference on every operation, every size (including odd tails that
// exercise the vector epilogues), and both Haar normalizations. This is the
// contract that lets the rest of the system call kernels::Active() without
// caring which ISA is underneath — parity tests, crash replay, and the
// serving layer's merged-read bit-identity all lean on it.
//
// Seeded: every random buffer derives from a fixed mt19937_64 seed, so a
// failure reproduces exactly.

#include "shiftsplit/kernels/kernels.h"

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace shiftsplit::kernels {
namespace {

constexpr uint64_t kSeed = 0x5eed5eedULL;

// Sizes 1..2^16 with dense coverage of small counts and every power-of-two
// neighborhood — the +-1 cases are the vector-tail paths.
std::vector<size_t> TestSizes() {
  std::vector<size_t> sizes;
  for (size_t n = 1; n <= 40; ++n) sizes.push_back(n);
  for (size_t p = 6; p <= 16; ++p) {
    const size_t n = size_t{1} << p;
    sizes.push_back(n - 1);
    sizes.push_back(n);
    sizes.push_back(n + 1);
  }
  return sizes;
}

std::vector<double> RandomDoubles(std::mt19937_64& rng, size_t n) {
  std::uniform_real_distribution<double> dist(-1e3, 1e3);
  std::vector<double> out(n);
  for (double& v : out) v = dist(rng);
  return out;
}

void ExpectBitsEqual(const std::vector<double>& expected,
                     const std::vector<double>& actual, const char* tier,
                     const char* what, size_t n) {
  ASSERT_EQ(expected.size(), actual.size());
  if (std::memcmp(expected.data(), actual.data(),
                  expected.size() * sizeof(double)) == 0) {
    return;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    uint64_t e, a;
    std::memcpy(&e, &expected[i], sizeof(e));
    std::memcpy(&a, &actual[i], sizeof(a));
    ASSERT_EQ(e, a) << tier << " " << what << " diverges at index " << i
                    << " of " << n << " (" << expected[i] << " vs "
                    << actual[i] << ")";
  }
}

// Both normalizations' forward scales plus the kAverage inverse scale.
const double kScales[] = {0.5, 1.0 / std::sqrt(2.0), 1.0};

class TierTest : public ::testing::TestWithParam<const KernelOps*> {};

TEST_P(TierTest, HaarForwardLevelMatchesScalarBitForBit) {
  const KernelOps& tier = *GetParam();
  const KernelOps& scalar = Scalar();
  std::mt19937_64 rng(kSeed);
  for (const size_t half : TestSizes()) {
    const std::vector<double> in = RandomDoubles(rng, 2 * half);
    for (const double scale : kScales) {
      std::vector<double> want_avg(half), want_det(half);
      std::vector<double> got_avg(half), got_det(half);
      scalar.haar_forward_level(in.data(), want_avg.data(), want_det.data(),
                                half, scale);
      tier.haar_forward_level(in.data(), got_avg.data(), got_det.data(),
                              half, scale);
      ExpectBitsEqual(want_avg, got_avg, tier.name, "forward avg", half);
      ExpectBitsEqual(want_det, got_det, tier.name, "forward det", half);
    }
  }
}

TEST_P(TierTest, HaarInverseLevelMatchesScalarBitForBit) {
  const KernelOps& tier = *GetParam();
  const KernelOps& scalar = Scalar();
  std::mt19937_64 rng(kSeed + 1);
  for (const size_t half : TestSizes()) {
    const std::vector<double> avg = RandomDoubles(rng, half);
    const std::vector<double> det = RandomDoubles(rng, half);
    for (const double scale : kScales) {
      std::vector<double> want(2 * half), got(2 * half);
      scalar.haar_inverse_level(avg.data(), det.data(), want.data(), half,
                                scale);
      tier.haar_inverse_level(avg.data(), det.data(), got.data(), half,
                              scale);
      ExpectBitsEqual(want, got, tier.name, "inverse", half);
    }
  }
}

TEST_P(TierTest, RoundTripThroughAnyTierRestoresAverageNormBits) {
  // kAverage inverse scale is 1.0, so forward+inverse of dyadic data is
  // exact — a stronger end-to-end check that the pairing logic is right.
  const KernelOps& tier = *GetParam();
  std::mt19937_64 rng(kSeed + 2);
  for (const size_t half : {1u, 2u, 3u, 4u, 7u, 8u, 33u, 1000u}) {
    std::vector<double> in(2 * half);
    std::uniform_int_distribution<int> dist(-512, 512);
    for (double& v : in) v = static_cast<double>(dist(rng));
    std::vector<double> avg(half), det(half), out(2 * half);
    tier.haar_forward_level(in.data(), avg.data(), det.data(), half, 0.5);
    tier.haar_inverse_level(avg.data(), det.data(), out.data(), half, 1.0);
    ExpectBitsEqual(in, out, tier.name, "round trip", half);
  }
}

TEST_P(TierTest, FoldAddMatchesScalarBitForBit) {
  const KernelOps& tier = *GetParam();
  const KernelOps& scalar = Scalar();
  std::mt19937_64 rng(kSeed + 3);
  for (const size_t n : TestSizes()) {
    const std::vector<double> src = RandomDoubles(rng, n);
    const std::vector<double> base = RandomDoubles(rng, n);
    std::vector<double> want = base, got = base;
    scalar.fold_add(want.data(), src.data(), n);
    tier.fold_add(got.data(), src.data(), n);
    ExpectBitsEqual(want, got, tier.name, "fold_add", n);
  }
}

TEST_P(TierTest, StridedFoldsMatchScalarBitForBit) {
  const KernelOps& tier = *GetParam();
  const KernelOps& scalar = Scalar();
  std::mt19937_64 rng(kSeed + 4);
  for (const size_t stride : {1u, 2u, 3u, 4u, 7u}) {
    for (const size_t n : TestSizes()) {
      if (n > (size_t{1} << 14)) continue;  // keep the strided sweep bounded
      const std::vector<double> src = RandomDoubles(rng, n * stride);
      const std::vector<double> base = RandomDoubles(rng, n);
      std::vector<double> want = base, got = base;
      scalar.fold_add_strided(want.data(), src.data(), stride, n);
      tier.fold_add_strided(got.data(), src.data(), stride, n);
      ExpectBitsEqual(want, got, tier.name, "fold_add_strided", n);
      want = base;
      got = base;
      scalar.fold_copy_strided(want.data(), src.data(), stride, n);
      tier.fold_copy_strided(got.data(), src.data(), stride, n);
      ExpectBitsEqual(want, got, tier.name, "fold_copy_strided", n);
    }
  }
}

TEST_P(TierTest, ChainFoldMatchesSerialSumBitForBit) {
  // fold_chain is scalar in every tier BY DESIGN (a serial dependent sum
  // cannot be vectorized bit-exactly); this pins the tier tables to that.
  const KernelOps& tier = *GetParam();
  std::mt19937_64 rng(kSeed + 5);
  for (const size_t stride : {1u, 2u, 3u}) {
    for (const size_t n : {0u, 1u, 2u, 3u, 17u, 255u, 4096u}) {
      const std::vector<double> src = RandomDoubles(rng, n * stride + 1);
      const double init = RandomDoubles(rng, 1)[0];
      double want = init;
      for (size_t i = 0; i < n; ++i) want += src[i * stride];
      const double got = tier.fold_chain_strided(init, src.data(), stride, n);
      uint64_t w, g;
      std::memcpy(&w, &want, sizeof(w));
      std::memcpy(&g, &got, sizeof(g));
      EXPECT_EQ(w, g) << tier.name << " chain fold, n=" << n
                      << " stride=" << stride;
    }
  }
}

TEST_P(TierTest, Crc32cMatchesScalarOnRandomBuffers) {
  const KernelOps& tier = *GetParam();
  const KernelOps& scalar = Scalar();
  std::mt19937_64 rng(kSeed + 6);
  for (const size_t n : TestSizes()) {
    std::vector<uint8_t> buf(n + 8);
    for (uint8_t& b : buf) b = static_cast<uint8_t>(rng());
    // Offset sweep exercises the hardware path's alignment prologue.
    for (size_t off = 0; off < 8 && off < n; ++off) {
      const uint32_t want = scalar.crc32c(0, buf.data() + off, n - off);
      const uint32_t got = tier.crc32c(0, buf.data() + off, n - off);
      ASSERT_EQ(want, got) << tier.name << " crc, n=" << n << " off=" << off;
      // Chained updates must agree too (the block checksums chain header
      // and payload through one running CRC).
      const size_t split = (n - off) / 2;
      const uint32_t want2 = scalar.crc32c(
          scalar.crc32c(17, buf.data() + off, split),
          buf.data() + off + split, n - off - split);
      const uint32_t got2 =
          tier.crc32c(tier.crc32c(17, buf.data() + off, split),
                      buf.data() + off + split, n - off - split);
      ASSERT_EQ(want2, got2) << tier.name << " chained crc, n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, TierTest, ::testing::ValuesIn(AvailableTiers().begin(),
                                            AvailableTiers().end()),
    [](const ::testing::TestParamInfo<const KernelOps*>& info) {
      std::string name = info.param->name;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(DispatchTest, ScalarIsAlwaysTheFirstTier) {
  ASSERT_FALSE(AvailableTiers().empty());
  EXPECT_EQ(AvailableTiers().front(), &Scalar());
  EXPECT_STREQ(Scalar().name, "scalar");
}

TEST(DispatchTest, ForceScalarSelectsScalar) {
  EXPECT_EQ(&Choose(/*force_scalar=*/true), &Scalar());
}

TEST(DispatchTest, DefaultChoosesWidestAvailableTier) {
  EXPECT_EQ(&Choose(/*force_scalar=*/false), AvailableTiers().back());
}

TEST(DispatchTest, ActiveIsOneOfTheAvailableTiers) {
  const KernelOps& active = Active();
  bool found = false;
  for (const KernelOps* tier : AvailableTiers()) {
    if (tier == &active) found = true;
  }
  EXPECT_TRUE(found) << active.name;
}

TEST(DispatchTest, EveryTierHasACompleteTable) {
  for (const KernelOps* tier : AvailableTiers()) {
    EXPECT_NE(tier->name, nullptr);
    EXPECT_NE(tier->haar_forward_level, nullptr) << tier->name;
    EXPECT_NE(tier->haar_inverse_level, nullptr) << tier->name;
    EXPECT_NE(tier->fold_add, nullptr) << tier->name;
    EXPECT_NE(tier->fold_add_strided, nullptr) << tier->name;
    EXPECT_NE(tier->fold_copy_strided, nullptr) << tier->name;
    EXPECT_NE(tier->fold_chain_strided, nullptr) << tier->name;
    EXPECT_NE(tier->crc32c, nullptr) << tier->name;
  }
}

}  // namespace
}  // namespace shiftsplit::kernels
