#include "shiftsplit/util/bitops.h"

#include <gtest/gtest.h>

namespace shiftsplit {
namespace {

TEST(BitopsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitopsTest, Log2) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(2), 1u);
  EXPECT_EQ(Log2(3), 1u);
  EXPECT_EQ(Log2(4), 2u);
  EXPECT_EQ(Log2(1023), 9u);
  EXPECT_EQ(Log2(1024), 10u);
  EXPECT_EQ(Log2(~uint64_t{0}), 63u);
}

TEST(BitopsTest, CeilLog2AndNextPowerOfTwo) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1025), 11u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(BitopsTest, CeilDivAndIPow) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 8), 1u);
  EXPECT_EQ(IPow(2, 10), 1024u);
  EXPECT_EQ(IPow(3, 4), 81u);
  EXPECT_EQ(IPow(7, 0), 1u);
}

TEST(DyadicIntervalTest, Geometry) {
  // [k*2^j, (k+1)*2^j - 1] with j=3, k=2 -> [16, 23].
  DyadicInterval iv{3, 2};
  EXPECT_EQ(iv.length(), 8u);
  EXPECT_EQ(iv.begin(), 16u);
  EXPECT_EQ(iv.last(), 23u);
  EXPECT_EQ(iv.end(), 24u);
  EXPECT_TRUE(iv.Contains(16));
  EXPECT_TRUE(iv.Contains(23));
  EXPECT_FALSE(iv.Contains(15));
  EXPECT_FALSE(iv.Contains(24));
}

TEST(DyadicIntervalTest, Covers) {
  DyadicInterval big{3, 0};    // [0, 7]
  DyadicInterval left{2, 0};   // [0, 3]
  DyadicInterval right{2, 1};  // [4, 7]
  DyadicInterval next{2, 2};   // [8, 11]
  EXPECT_TRUE(big.Covers(left));
  EXPECT_TRUE(big.Covers(right));
  EXPECT_FALSE(big.Covers(next));
  EXPECT_TRUE(big.Covers(big));
  EXPECT_FALSE(left.Covers(big));
}

TEST(DyadicIntervalTest, InLeftHalf) {
  // Child intervals of level 1 within a level-3 parent: positions 0..3;
  // 0 and 1 are in the left half, 2 and 3 in the right half.
  EXPECT_TRUE(InLeftHalf(1, 0, 3));
  EXPECT_TRUE(InLeftHalf(1, 1, 3));
  EXPECT_FALSE(InLeftHalf(1, 2, 3));
  EXPECT_FALSE(InLeftHalf(1, 3, 3));
  // Immediate parent: alternates with position parity.
  EXPECT_TRUE(InLeftHalf(1, 4, 2));
  EXPECT_FALSE(InLeftHalf(1, 5, 2));
}

}  // namespace
}  // namespace shiftsplit
