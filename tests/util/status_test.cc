#include "shiftsplit/util/status.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace shiftsplit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, NewResilienceFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("").code(), StatusCode::kCancelled);
}

TEST(StatusTest, EveryCodeRoundTripsThroughItsName) {
  size_t checked = 0;
  for (const StatusCode code : kAllStatusCodes) {
    const char* name = StatusCodeToString(code);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "Unknown") << static_cast<int>(code);
    const auto parsed = StatusCodeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code) << name;
    ++checked;
  }
  // The table itself must be exhaustive: every enumerator appears once.
  EXPECT_EQ(checked, std::size(kAllStatusCodes));
  EXPECT_EQ(StatusCodeFromString("NoSuchCode"), std::nullopt);
  EXPECT_EQ(StatusCodeFromString(""), std::nullopt);
  EXPECT_EQ(StatusCodeFromString("ok"), std::nullopt);  // case-sensitive
}

TEST(StatusTest, EveryCodeRoundTripsThroughItsWireValue) {
  size_t checked = 0;
  for (const StatusCode code : kAllStatusCodes) {
    const uint32_t wire = StatusCodeToWire(code);
    const auto parsed = StatusCodeFromWire(wire);
    ASSERT_TRUE(parsed.has_value()) << StatusCodeToString(code);
    EXPECT_EQ(*parsed, code) << StatusCodeToString(code);
    ++checked;
  }
  EXPECT_EQ(checked, std::size(kAllStatusCodes));
  // Wire values must be pairwise distinct or FromWire would be ambiguous.
  for (const StatusCode a : kAllStatusCodes) {
    for (const StatusCode b : kAllStatusCodes) {
      if (a != b) {
        EXPECT_NE(StatusCodeToWire(a), StatusCodeToWire(b));
      }
    }
  }
  // Values from a newer peer must be rejected, not collapsed to a real code.
  EXPECT_EQ(StatusCodeFromWire(9999), std::nullopt);
  EXPECT_EQ(StatusCodeFromWire(static_cast<uint32_t>(-1)), std::nullopt);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  SS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UsesAssignOrReturn(int x, int* out) {
  SS_ASSIGN_OR_RETURN(const int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnAssignsOrPropagates) {
  int out = 0;
  ASSERT_OK(UsesAssignOrReturn(8, &out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UsesAssignOrReturn(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shiftsplit
