#include "shiftsplit/util/operation_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "testing.h"

namespace shiftsplit {
namespace {

using namespace std::chrono_literals;

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 500;
  policy.jitter = 0.0;  // deterministic: no shrink
  uint64_t state = 1;
  EXPECT_EQ(BackoffDelayUs(policy, 0, &state), 100u);
  EXPECT_EQ(BackoffDelayUs(policy, 1, &state), 200u);
  EXPECT_EQ(BackoffDelayUs(policy, 2, &state), 400u);
  EXPECT_EQ(BackoffDelayUs(policy, 3, &state), 500u);  // capped
  EXPECT_EQ(BackoffDelayUs(policy, 60, &state), 500u);  // no shift overflow
}

TEST(RetryPolicyTest, JitterShrinksWithinBoundsDeterministically) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 1000;
  policy.jitter = 0.5;
  uint64_t state = 42;
  uint64_t replay_state = 42;
  for (uint32_t attempt = 0; attempt < 8; ++attempt) {
    const uint64_t d = BackoffDelayUs(policy, attempt, &state);
    EXPECT_GE(d, 500u);
    EXPECT_LE(d, 1000u);
    // Same seed, same stream.
    EXPECT_EQ(BackoffDelayUs(policy, attempt, &replay_state), d);
  }
}

TEST(OperationContextTest, TransientErrorClassification) {
  EXPECT_TRUE(IsTransientError(Status::IOError("")));
  EXPECT_TRUE(IsTransientError(Status::Unavailable("")));
  EXPECT_FALSE(IsTransientError(Status::OK()));
  EXPECT_FALSE(IsTransientError(Status::ChecksumMismatch("")));
  EXPECT_FALSE(IsTransientError(Status::ResourceExhausted("")));
  EXPECT_FALSE(IsTransientError(Status::DeadlineExceeded("")));
  EXPECT_FALSE(IsTransientError(Status::Cancelled("")));
  EXPECT_FALSE(IsTransientError(Status::InvalidArgument("")));
}

TEST(OperationContextTest, NullDeadlineAlwaysPasses) {
  OperationContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.deadline_exceeded());
  EXPECT_OK(ctx.Check());
}

TEST(OperationContextTest, ExpiredDeadlineFailsCheck) {
  OperationContext ctx(0ns);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.deadline_exceeded());
  const Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(OperationContextTest, FutureDeadlinePassesCheck) {
  OperationContext ctx(1h);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_OK(ctx.Check());
}

TEST(OperationContextTest, CancellationWinsOverDeadline) {
  OperationContext ctx(0ns);
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.cancelled());
  const Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(OperationContextTest, BackoffConsumesTheRetryBudget) {
  OperationContext ctx;
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_backoff_us = 1;
  policy.max_backoff_us = 1;
  policy.jitter = 0.0;
  ctx.set_retry_policy(policy);
  EXPECT_TRUE(ctx.BackoffBeforeRetry());
  EXPECT_TRUE(ctx.BackoffBeforeRetry());
  EXPECT_FALSE(ctx.BackoffBeforeRetry());  // budget of 2 exhausted
  EXPECT_EQ(ctx.retries_used(), 2u);
}

TEST(OperationContextTest, BackoffRefusesPastDeadline) {
  OperationContext ctx(0ns);
  RetryPolicy policy;
  policy.max_retries = 10;
  ctx.set_retry_policy(policy);
  EXPECT_FALSE(ctx.BackoffBeforeRetry());
  EXPECT_EQ(ctx.retries_used(), 0u);
}

TEST(OperationContextTest, BackoffRefusesWhenCancelled) {
  OperationContext ctx;
  RetryPolicy policy;
  policy.max_retries = 10;
  ctx.set_retry_policy(policy);
  ctx.RequestCancel();
  EXPECT_FALSE(ctx.BackoffBeforeRetry());
}

TEST(OperationContextTest, CancelFromAnotherThreadIsObserved) {
  OperationContext ctx;
  std::thread canceller([&ctx] { ctx.RequestCancel(); });
  canceller.join();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace shiftsplit
