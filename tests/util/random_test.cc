#include "shiftsplit/util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace shiftsplit {
namespace {

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 16; ++i) {
    const uint64_t va = a();
    EXPECT_EQ(va, b());
    // Different seeds diverge almost surely.
    if (va != c()) return;
  }
  FAIL() << "seeds 123 and 124 produced identical streams";
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, NextBoundedIsUnbiasedish) {
  Xoshiro256 rng(42);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Xoshiro256Test, GaussianMoments) {
  Xoshiro256 rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256Test, ExponentialMean) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.05);
}

TEST(ZipfSamplerTest, AlphaZeroIsUniform) {
  Xoshiro256 rng(1);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(ZipfSamplerTest, SkewPrefersLowRanks) {
  Xoshiro256 rng(2);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0], 5 * counts[50] + 1);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
  Xoshiro256 rng(3);
  ZipfSampler zipf(7, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

TEST(BoundedZipfSamplerTest, MonotoneRankFrequenciesOnSeededDraw) {
  Xoshiro256 rng(0xdecafbad);
  BoundedZipfSampler zipf(1000, 0.8);
  std::vector<int> counts(1000, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(rng)]++;
  // Leading ranks must come out strictly ordered by frequency...
  for (int r = 0; r + 1 < 8; ++r) {
    EXPECT_GT(counts[r], counts[r + 1]) << "rank " << r;
  }
  // ...and the mean per-rank frequency must keep decaying across geometric
  // rank bands, which pins the closed-form inversion's tail, not just the
  // two exact leading ranks. (Total band mass grows for theta < 1 — the
  // per-rank average is what Zipf monotonicity demands.)
  double prev_mean = 1e18;
  for (int lo = 1; lo < 1000; lo *= 4) {
    const int hi = std::min(lo * 4, 1000);
    long band = 0;
    for (int r = lo; r < hi; ++r) band += counts[r];
    const double mean = static_cast<double>(band) / (hi - lo);
    EXPECT_LT(mean, prev_mean) << "band starting at " << lo;
    prev_mean = mean;
  }
  EXPECT_GT(counts[0], kDraws / 20);  // rank 0 is genuinely hot
}

TEST(BoundedZipfSamplerTest, ThetaZeroIsRoughlyUniform) {
  Xoshiro256 rng(11);
  BoundedZipfSampler zipf(8, 0.0);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.15);
}

TEST(BoundedZipfSamplerTest, SamplesStayInRangeAndDeterministic) {
  Xoshiro256 a(17), b(17);
  BoundedZipfSampler zipf(37, 0.99);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t ra = zipf.Sample(a);
    EXPECT_LT(ra, 37u);
    EXPECT_EQ(ra, zipf.Sample(b));
  }
  // Degenerate single-element domain always returns rank 0.
  BoundedZipfSampler one(1, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(one.Sample(a), 0u);
}

}  // namespace
}  // namespace shiftsplit
