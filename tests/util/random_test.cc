#include "shiftsplit/util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace shiftsplit {
namespace {

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 16; ++i) {
    const uint64_t va = a();
    EXPECT_EQ(va, b());
    // Different seeds diverge almost surely.
    if (va != c()) return;
  }
  FAIL() << "seeds 123 and 124 produced identical streams";
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, NextBoundedIsUnbiasedish) {
  Xoshiro256 rng(42);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Xoshiro256Test, GaussianMoments) {
  Xoshiro256 rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256Test, ExponentialMean) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.05);
}

TEST(ZipfSamplerTest, AlphaZeroIsUniform) {
  Xoshiro256 rng(1);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(ZipfSamplerTest, SkewPrefersLowRanks) {
  Xoshiro256 rng(2);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0], 5 * counts[50] + 1);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
  Xoshiro256 rng(3);
  ZipfSampler zipf(7, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

}  // namespace
}  // namespace shiftsplit
