#include "shiftsplit/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace shiftsplit {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(-3.5);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(ErrorMetricsTest, SseRmseMaxAbs) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{1.0, 2.5, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(SumSquaredError(a, b), 0.25 + 1.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(a, b), std::sqrt(1.25 / 4.0));
  EXPECT_DOUBLE_EQ(MaxAbsoluteError(a, b), 1.0);
}

TEST(ErrorMetricsTest, IdenticalSpansAreZeroError) {
  std::vector<double> a{5.0, -1.0, 0.0};
  EXPECT_DOUBLE_EQ(SumSquaredError(a, a), 0.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(a, a), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbsoluteError(a, a), 0.0);
}

TEST(ErrorMetricsTest, Energy) {
  std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Energy(a), 25.0);
  EXPECT_DOUBLE_EQ(Energy(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace shiftsplit
