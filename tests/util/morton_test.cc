#include "shiftsplit/util/morton.h"

#include <gtest/gtest.h>

namespace shiftsplit {
namespace {

TEST(MortonTest, KnownCodes2D) {
  // Classic 2-d z-order: (x, y) with x in bit 0.
  EXPECT_EQ(MortonEncode({0, 0}, 2), 0u);
  EXPECT_EQ(MortonEncode({1, 0}, 2), 1u);
  EXPECT_EQ(MortonEncode({0, 1}, 2), 2u);
  EXPECT_EQ(MortonEncode({1, 1}, 2), 3u);
  EXPECT_EQ(MortonEncode({2, 0}, 2), 4u);
  EXPECT_EQ(MortonEncode({3, 3}, 2), 15u);
}

TEST(MortonTest, RoundTrip3D) {
  const uint32_t bits = 5;
  for (uint64_t code = 0; code < (uint64_t{1} << (3 * bits)); code += 37) {
    auto coords = MortonDecode(code, 3, bits);
    EXPECT_EQ(MortonEncode(coords, bits), code);
  }
}

TEST(MortonTest, RoundTrip1D) {
  // In 1-d the morton code is the coordinate itself.
  for (uint64_t x = 0; x < 64; ++x) {
    EXPECT_EQ(MortonEncode({x}, 6), x);
    EXPECT_EQ(MortonDecode(x, 1, 6)[0], x);
  }
}

TEST(MortonTest, ConsecutiveCodesShareHighBits) {
  // The first 2^d codes enumerate one 2x...x2 block (locality property the
  // z-ordered chunk traversal relies on).
  const uint32_t d = 3;
  for (uint64_t code = 0; code < 8; ++code) {
    auto coords = MortonDecode(code, d, 4);
    for (auto c : coords) EXPECT_LE(c, 1u);
  }
}

}  // namespace
}  // namespace shiftsplit
