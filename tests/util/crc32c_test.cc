#include "shiftsplit/util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "shiftsplit/kernels/kernels.h"

namespace shiftsplit {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 appendix B.4 test vectors for CRC32C (Castagnoli).
  const std::string digits = "123456789";
  EXPECT_EQ(Crc32c(digits.data(), digits.size()), 0xE3069283u);

  const std::vector<char> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  const std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<unsigned char> ascending(32);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, KnownVectorsOnEveryCompiledImplementation) {
  // The RFC 3720 vectors must hold for EVERY runnable kernel tier, not just
  // whichever one Crc32c dispatched to — on-disk checksums written by a
  // hardware-CRC binary are verified by table-fallback binaries and vice
  // versa.
  const std::string digits = "123456789";
  const std::vector<char> zeros(32, 0);
  const std::vector<unsigned char> ones(32, 0xFF);
  std::vector<unsigned char> ascending(32);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<unsigned char>(i);
  }
  for (const kernels::KernelOps* tier : kernels::AvailableTiers()) {
    EXPECT_EQ(tier->crc32c(0, digits.data(), digits.size()), 0xE3069283u)
        << tier->name;
    EXPECT_EQ(tier->crc32c(0, zeros.data(), zeros.size()), 0x8A9136AAu)
        << tier->name;
    EXPECT_EQ(tier->crc32c(0, ones.data(), ones.size()), 0x62A8AB43u)
        << tier->name;
    EXPECT_EQ(tier->crc32c(0, ascending.data(), ascending.size()),
              0x46DD794Eu)
        << tier->name;
    EXPECT_EQ(tier->crc32c(0, nullptr, 0), 0u) << tier->name;
  }
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(0, data.data(), split);
    crc = Crc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::vector<char> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte : {size_t{0}, size_t{100}, data.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

TEST(Crc32cTest, UnalignedStartMatchesAligned) {
  // The slicing loop has an alignment prologue; results must not depend on
  // the buffer's address.
  std::vector<char> padded(64 + 8);
  for (size_t i = 0; i < padded.size(); ++i) {
    padded[i] = static_cast<char>(i * 7 + 1);
  }
  const uint32_t base = Crc32c(padded.data() + 0, 64);
  for (size_t offset = 1; offset < 8; ++offset) {
    std::vector<char> copy(padded.begin() + offset,
                           padded.begin() + offset + 64);
    std::vector<char> reference(padded.begin(), padded.begin() + 64);
    std::memcpy(reference.data(), copy.data(), 64);
    EXPECT_EQ(Crc32c(reference.data(), 64),
              Crc32c(padded.data() + offset, 64))
        << "offset " << offset;
  }
  (void)base;
}

}  // namespace
}  // namespace shiftsplit
