#include <gtest/gtest.h>

#include <cmath>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
  Tensor data;
};

Bundle LoadedStandard(std::vector<uint32_t> log_dims, uint64_t seed) {
  Bundle bundle;
  std::vector<uint64_t> dims;
  for (uint32_t n : log_dims) dims.push_back(uint64_t{1} << n);
  TensorShape shape(dims);
  bundle.data = Tensor(shape, RandomVector(shape.num_elements(), seed));
  auto layout = std::make_unique<StandardTiling>(log_dims, 2);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 512);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  std::vector<uint64_t> zero(log_dims.size(), 0);
  EXPECT_OK(ApplyChunkStandard(bundle.data, zero, log_dims,
                               bundle.store.get(), Normalization::kAverage));
  return bundle;
}

TEST(CubeCoverTest, CoversExactlyOnce2D) {
  const uint32_t d = 2, n = 4;
  std::vector<uint64_t> lo{3, 5}, hi{12, 14};
  const auto cubes = CubeCover(d, n, lo, hi);
  std::vector<std::vector<int>> hits(16, std::vector<int>(16, 0));
  for (const auto& cube : cubes) {
    const uint64_t edge = uint64_t{1} << cube.level;
    for (uint64_t x = 0; x < edge; ++x) {
      for (uint64_t y = 0; y < edge; ++y) {
        hits[cube.node[0] * edge + x][cube.node[1] * edge + y]++;
      }
    }
  }
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 16; ++y) {
      const bool inside = x >= 3 && x <= 12 && y >= 5 && y <= 14;
      EXPECT_EQ(hits[x][y], inside ? 1 : 0) << x << "," << y;
    }
  }
}

TEST(CubeCoverTest, AlignedBoxIsOneCube) {
  std::vector<uint64_t> lo{8, 8}, hi{15, 15};
  const auto cubes = CubeCover(2, 4, lo, hi);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].level, 3u);
  EXPECT_EQ(cubes[0].node, (std::vector<uint64_t>{1, 1}));
}

TEST(CubeCoverTest, SingleCell) {
  std::vector<uint64_t> lo{7, 2, 5}, hi{7, 2, 5};
  const auto cubes = CubeCover(3, 3, lo, hi);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].level, 0u);
  EXPECT_EQ(cubes[0].node, lo);
}

TEST(ReconstructRangeNonstandardTest, ArbitraryBoxMatchesData) {
  const uint32_t d = 2, n = 4;
  Tensor data(TensorShape::Cube(d, 16), RandomVector(256, 31));
  auto layout = std::make_unique<NonstandardTiling>(d, n, 2);
  MemoryBlockManager manager(layout->block_capacity());
  auto store_r = TiledStore::Create(std::move(layout), &manager, 512);
  ASSERT_TRUE(store_r.ok());
  auto store = std::move(store_r).value();
  std::vector<uint64_t> zero(d, 0);
  ASSERT_OK(ApplyChunkNonstandard(data, zero, n, store.get(),
                                  Normalization::kAverage));

  std::vector<uint64_t> lo{3, 6}, hi{13, 11};
  ASSERT_OK_AND_ASSIGN(
      Tensor box, ReconstructRangeNonstandard(store.get(), n, lo, hi,
                                              Normalization::kAverage));
  for (uint64_t x = lo[0]; x <= hi[0]; ++x) {
    for (uint64_t y = lo[1]; y <= hi[1]; ++y) {
      std::vector<uint64_t> local{x - lo[0], y - lo[1]};
      std::vector<uint64_t> cell{x, y};
      ASSERT_NEAR(box.At(local), data.At(cell), 1e-9);
    }
  }
}

TEST(ReconstructRangeNonstandardTest, ValidatesBounds) {
  auto layout = std::make_unique<NonstandardTiling>(2, 3, 2);
  MemoryBlockManager manager(layout->block_capacity());
  auto store_r = TiledStore::Create(std::move(layout), &manager, 8);
  ASSERT_TRUE(store_r.ok());
  std::vector<uint64_t> lo{5, 0}, hi{3, 7};
  EXPECT_FALSE(ReconstructRangeNonstandard(store_r->get(), 3, lo, hi,
                                           Normalization::kAverage)
                   .ok());
}

TEST(ProgressiveRangeSumTest, FinalRoundIsExact) {
  const std::vector<uint32_t> log_dims{4, 4};
  Bundle bundle = LoadedStandard(log_dims, 41);
  std::vector<uint64_t> lo{2, 5}, hi{13, 11};
  ASSERT_OK_AND_ASSIGN(const double exact,
                       RangeSumStandard(bundle.store.get(), log_dims, lo, hi,
                                        QueryOptions{}));
  ASSERT_OK_AND_ASSIGN(
      const auto rounds,
      ProgressiveRangeSumStandard(bundle.store.get(), log_dims, lo, hi,
                                  QueryOptions{}));
  ASSERT_FALSE(rounds.empty());
  EXPECT_NEAR(rounds.back().estimate, exact, 1e-9);
  // Rounds are monotone in depth and cumulative reads.
  for (size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_GT(rounds[i].depth, rounds[i - 1].depth);
    EXPECT_GE(rounds[i].coefficients_read, rounds[i - 1].coefficients_read);
  }
  // Total reads respect Lemma 2's bound in each dimension.
  EXPECT_LE(rounds.back().coefficients_read, (2u * 4 + 1) * (2u * 4 + 1));
}

TEST(ProgressiveRangeSumTest, EstimatesConvergeOnSmoothData) {
  // On smooth data, early (coarse) rounds already carry most of the sum.
  const std::vector<uint32_t> log_dims{5, 5};
  std::vector<uint64_t> dims{32, 32};
  Tensor data{TensorShape(dims)};
  std::vector<uint64_t> c(2, 0);
  do {
    data.At(c) = 10.0 +
                 std::sin(2.0 * M_PI * static_cast<double>(c[0]) / 32.0) +
                 std::cos(2.0 * M_PI * static_cast<double>(c[1]) / 32.0);
  } while (data.shape().Next(c));
  auto layout = std::make_unique<StandardTiling>(log_dims, 2);
  MemoryBlockManager manager(layout->block_capacity());
  auto store_r = TiledStore::Create(std::move(layout), &manager, 512);
  ASSERT_TRUE(store_r.ok());
  auto store = std::move(store_r).value();
  std::vector<uint64_t> zero(2, 0);
  ASSERT_OK(ApplyChunkStandard(data, zero, log_dims, store.get(),
                               Normalization::kAverage));

  std::vector<uint64_t> lo{4, 4}, hi{27, 27};
  ASSERT_OK_AND_ASSIGN(
      const auto rounds,
      ProgressiveRangeSumStandard(store.get(), log_dims, lo, hi,
                                  QueryOptions{}));
  const double exact = rounds.back().estimate;
  // After the first couple of rounds the estimate is within 15% of exact.
  ASSERT_GE(rounds.size(), 3u);
  EXPECT_LT(std::abs(rounds[1].estimate - exact), 0.15 * std::abs(exact));
}

TEST(ProgressiveRangeSumTest, NonstandardFinalRoundIsExact) {
  const uint32_t d = 2, n = 4;
  Tensor data(TensorShape::Cube(d, 16), RandomVector(256, 43));
  auto layout = std::make_unique<NonstandardTiling>(d, n, 2);
  MemoryBlockManager manager(layout->block_capacity());
  auto store_r = TiledStore::Create(std::move(layout), &manager, 512);
  ASSERT_TRUE(store_r.ok());
  auto store = std::move(store_r).value();
  std::vector<uint64_t> zero(d, 0);
  ASSERT_OK(ApplyChunkNonstandard(data, zero, n, store.get(),
                                  Normalization::kAverage));

  std::vector<uint64_t> lo{2, 5}, hi{13, 11};
  ASSERT_OK_AND_ASSIGN(const double exact,
                       RangeSumNonstandard(store.get(), n, lo, hi,
                                           QueryOptions{}));
  ASSERT_OK_AND_ASSIGN(
      const auto rounds,
      ProgressiveRangeSumNonstandard(store.get(), n, lo, hi,
                                     QueryOptions{}));
  ASSERT_FALSE(rounds.empty());
  EXPECT_NEAR(rounds.back().estimate, exact, 1e-9);
  double brute = 0.0;
  std::vector<uint64_t> c(2);
  for (c[0] = lo[0]; c[0] <= hi[0]; ++c[0]) {
    for (c[1] = lo[1]; c[1] <= hi[1]; ++c[1]) brute += data.At(c);
  }
  EXPECT_NEAR(rounds.back().estimate, brute, 1e-8);
  for (size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_GT(rounds[i].depth, rounds[i - 1].depth);
    EXPECT_GE(rounds[i].coefficients_read, rounds[i - 1].coefficients_read);
  }
}

TEST(ProgressiveRangeSumTest, ValidatesArguments) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = LoadedStandard(log_dims, 42);
  std::vector<uint64_t> lo{5, 0}, hi{3, 7};
  EXPECT_FALSE(ProgressiveRangeSumStandard(bundle.store.get(), log_dims, lo,
                                           hi, QueryOptions{})
                   .ok());
}

}  // namespace
}  // namespace shiftsplit
