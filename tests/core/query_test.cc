#include "shiftsplit/core/query.h"

#include <gtest/gtest.h>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
  Tensor data;
};

Bundle LoadedStandard(std::vector<uint32_t> log_dims, Normalization norm,
                      uint64_t seed, uint32_t b = 2) {
  Bundle bundle;
  std::vector<uint64_t> dims;
  for (uint32_t n : log_dims) dims.push_back(uint64_t{1} << n);
  TensorShape shape(dims);
  bundle.data = Tensor(shape, RandomVector(shape.num_elements(), seed));
  auto layout = std::make_unique<StandardTiling>(log_dims, b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 512);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  std::vector<uint64_t> zero(log_dims.size(), 0);
  EXPECT_OK(ApplyChunkStandard(bundle.data, zero, log_dims,
                               bundle.store.get(), norm));
  return bundle;
}

Bundle LoadedNonstandard(uint32_t d, uint32_t n, Normalization norm,
                         uint64_t seed, uint32_t b = 2) {
  Bundle bundle;
  TensorShape shape = TensorShape::Cube(d, uint64_t{1} << n);
  bundle.data = Tensor(shape, RandomVector(shape.num_elements(), seed));
  auto layout = std::make_unique<NonstandardTiling>(d, n, b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 512);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  std::vector<uint64_t> zero(d, 0);
  EXPECT_OK(ApplyChunkNonstandard(bundle.data, zero, n, bundle.store.get(),
                                  norm));
  return bundle;
}

class PointQueryTest
    : public ::testing::TestWithParam<std::tuple<Normalization, bool>> {};

TEST_P(PointQueryTest, StandardEveryPoint) {
  const auto [norm, slots] = GetParam();
  const std::vector<uint32_t> log_dims{4, 3};
  Bundle bundle = LoadedStandard(log_dims, norm, 21);
  QueryOptions options;
  options.norm = norm;
  options.use_scaling_slots = slots;
  std::vector<uint64_t> point(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(
        const double v,
        PointQueryStandard(bundle.store.get(), log_dims, point, options));
    ASSERT_NEAR(v, bundle.data.At(point), 1e-9);
  } while (bundle.data.shape().Next(point));
}

TEST_P(PointQueryTest, NonstandardEveryPoint) {
  const auto [norm, slots] = GetParam();
  const uint32_t d = 2, n = 4;
  Bundle bundle = LoadedNonstandard(d, n, norm, 22);
  QueryOptions options;
  options.norm = norm;
  options.use_scaling_slots = slots;
  std::vector<uint64_t> point(d, 0);
  do {
    ASSERT_OK_AND_ASSIGN(
        const double v,
        PointQueryNonstandard(bundle.store.get(), n, point, options));
    ASSERT_NEAR(v, bundle.data.At(point), 1e-9);
  } while (bundle.data.shape().Next(point));
}

INSTANTIATE_TEST_SUITE_P(
    NormsAndModes, PointQueryTest,
    ::testing::Combine(::testing::Values(Normalization::kAverage,
                                         Normalization::kOrthonormal),
                       ::testing::Bool()));

TEST(PointQueryTest, ScalingSlotsCutBlockReadsToOne) {
  // The paper's §3 claim: with the stored subtree-root scalings a point
  // query needs a single block (per dimension band product it would
  // otherwise multiply).
  const std::vector<uint32_t> log_dims{6, 6};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 23, 3);
  std::vector<uint64_t> point{37, 11};

  QueryOptions path_mode;
  ASSERT_OK(bundle.store->pool().Clear());
  bundle.manager->stats().Reset();
  ASSERT_OK(PointQueryStandard(bundle.store.get(), log_dims, point,
                               path_mode)
                .status());
  const uint64_t path_blocks = bundle.manager->stats().block_reads;

  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;
  ASSERT_OK(bundle.store->pool().Clear());
  bundle.manager->stats().Reset();
  ASSERT_OK(PointQueryStandard(bundle.store.get(), log_dims, point,
                               slot_mode)
                .status());
  const uint64_t slot_blocks = bundle.manager->stats().block_reads;

  EXPECT_EQ(path_blocks, 4u);  // 2 bands per dim -> 2x2 blocks
  EXPECT_EQ(slot_blocks, 1u);  // deepest tile cross product only
}

TEST(PointQueryTest, NonstandardScalingSlotsCutBlockReadsToOne) {
  const uint32_t d = 2, n = 6;
  Bundle bundle = LoadedNonstandard(d, n, Normalization::kAverage, 24, 3);
  std::vector<uint64_t> point{41, 17};
  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;
  ASSERT_OK(bundle.store->pool().Clear());
  bundle.manager->stats().Reset();
  ASSERT_OK(
      PointQueryNonstandard(bundle.store.get(), n, point, slot_mode).status());
  EXPECT_EQ(bundle.manager->stats().block_reads, 1u);
}

TEST(PointQueryTest, FallsBackToPathsOnNaiveLayout) {
  const std::vector<uint32_t> log_dims{3, 3};
  Tensor data(TensorShape({8, 8}),
              RandomVector(64, 25));
  MemoryBlockManager manager(16);
  auto store_r = TiledStore::Create(
      std::make_unique<NaiveTiling>(log_dims, 16), &manager, 8);
  ASSERT_TRUE(store_r.ok());
  auto store = std::move(store_r).value();
  std::vector<uint64_t> zero(2, 0);
  ASSERT_OK(ApplyChunkStandard(data, zero, log_dims, store.get(),
                               Normalization::kAverage));
  QueryOptions options;
  options.use_scaling_slots = true;  // no such slots: must fall back
  std::vector<uint64_t> point{5, 6};
  ASSERT_OK_AND_ASSIGN(
      const double v,
      PointQueryStandard(store.get(), log_dims, point, options));
  EXPECT_NEAR(v, data.At(point), 1e-9);
}

TEST(PointQueryTest, NonstandardFallsBackOnNaiveLayout) {
  const uint32_t d = 2, n = 3;
  Tensor data(TensorShape::Cube(d, 8), RandomVector(64, 26));
  MemoryBlockManager manager(16);
  auto store_r = TiledStore::Create(
      std::make_unique<NaiveTiling>(std::vector<uint32_t>{n, n}, 16),
      &manager, 8);
  ASSERT_TRUE(store_r.ok());
  auto store = std::move(store_r).value();
  std::vector<uint64_t> zero(d, 0);
  ASSERT_OK(ApplyChunkNonstandard(data, zero, n, store.get(),
                                  Normalization::kAverage));
  QueryOptions options;
  options.use_scaling_slots = true;  // no slots on the naive layout
  std::vector<uint64_t> point{6, 1};
  ASSERT_OK_AND_ASSIGN(
      const double v, PointQueryNonstandard(store.get(), n, point, options));
  EXPECT_NEAR(v, data.At(point), 1e-9);
}

TEST(RangeSumWeightTest, MatchesBruteForce) {
  const uint32_t n = 5;
  auto data = RandomVector(1u << n, 26);
  for (Normalization norm :
       {Normalization::kAverage, Normalization::kOrthonormal}) {
    for (uint64_t idx = 0; idx < (1u << n); idx += 3) {
      for (uint64_t lo = 0; lo < 32; lo += 5) {
        for (uint64_t hi = lo; hi < 32; hi += 7) {
          double brute = 0.0;
          for (uint64_t t = lo; t <= hi; ++t) {
            brute += ReconstructionWeight(n, idx, t, norm);
          }
          EXPECT_NEAR(RangeSumWeight(n, idx, lo, hi, norm), brute, 1e-9)
              << "idx=" << idx << " lo=" << lo << " hi=" << hi;
        }
      }
    }
  }
}

class RangeSumTest : public ::testing::TestWithParam<Normalization> {};

TEST_P(RangeSumTest, StandardMatchesBruteForce) {
  const Normalization norm = GetParam();
  const std::vector<uint32_t> log_dims{4, 3};
  Bundle bundle = LoadedStandard(log_dims, norm, 27);
  QueryOptions options;
  options.norm = norm;
  const std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>
      boxes = {{{0, 0}, {15, 7}},
               {{3, 2}, {11, 5}},
               {{7, 7}, {7, 7}},
               {{0, 3}, {8, 3}}};
  for (const auto& [lo, hi] : boxes) {
    double brute = 0.0;
    for (uint64_t x = lo[0]; x <= hi[0]; ++x) {
      for (uint64_t y = lo[1]; y <= hi[1]; ++y) {
        std::vector<uint64_t> cell{x, y};
        brute += bundle.data.At(cell);
      }
    }
    ASSERT_OK_AND_ASSIGN(
        const double sum,
        RangeSumStandard(bundle.store.get(), log_dims, lo, hi, options));
    EXPECT_NEAR(sum, brute, 1e-8);
  }
}

TEST_P(RangeSumTest, NonstandardMatchesBruteForce) {
  const Normalization norm = GetParam();
  const uint32_t d = 2, n = 4;
  Bundle bundle = LoadedNonstandard(d, n, norm, 28);
  QueryOptions options;
  options.norm = norm;
  const std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>
      boxes = {{{0, 0}, {15, 15}},
               {{3, 2}, {11, 5}},
               {{7, 7}, {7, 7}},
               {{8, 0}, {15, 7}}};
  for (const auto& [lo, hi] : boxes) {
    double brute = 0.0;
    for (uint64_t x = lo[0]; x <= hi[0]; ++x) {
      for (uint64_t y = lo[1]; y <= hi[1]; ++y) {
        std::vector<uint64_t> cell{x, y};
        brute += bundle.data.At(cell);
      }
    }
    ASSERT_OK_AND_ASSIGN(
        const double sum,
        RangeSumNonstandard(bundle.store.get(), n, lo, hi, options));
    EXPECT_NEAR(sum, brute, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, RangeSumTest,
                         ::testing::Values(Normalization::kAverage,
                                           Normalization::kOrthonormal));

TEST(RangeSumTest, Lemma2CoefficientBound) {
  // 1-d range sums read at most 2 log N + 1 coefficients.
  const std::vector<uint32_t> log_dims{8};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 29);
  bundle.manager->stats().Reset();
  std::vector<uint64_t> lo{37}, hi{200};
  ASSERT_OK(RangeSumStandard(bundle.store.get(), log_dims, lo, hi,
                             QueryOptions{})
                .status());
  EXPECT_LE(bundle.manager->stats().coeff_reads, 2u * 8u + 1u);
}

TEST(BatchPointQueryTest, ResultsMatchIndividualQueries) {
  const std::vector<uint32_t> log_dims{5, 5};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 31, 3);
  Xoshiro256 rng(32);
  std::vector<std::vector<uint64_t>> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back({rng.NextBounded(32), rng.NextBounded(32)});
  }
  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;
  ASSERT_OK_AND_ASSIGN(
      const auto batch,
      BatchPointQueryStandard(bundle.store.get(), log_dims, points,
                              slot_mode));
  ASSERT_EQ(batch.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR(batch[i], bundle.data.At(points[i]), 1e-9) << "point " << i;
  }
}

TEST(BatchPointQueryTest, SchedulingReducesBlockReads) {
  // With a tiny pool, randomly-ordered individual queries thrash; the
  // batch's block-grouped schedule reads each home block once.
  const std::vector<uint32_t> log_dims{6, 6};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 33, 3);
  Xoshiro256 rng(34);
  std::vector<std::vector<uint64_t>> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.NextBounded(64), rng.NextBounded(64)});
  }
  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;

  // Rebuild the pool small for this comparison: fresh store over the same
  // device with 2 frames.
  ASSERT_OK(bundle.store->Flush());
  auto layout = std::make_unique<StandardTiling>(log_dims, 3);
  ASSERT_OK_AND_ASSIGN(
      auto tiny, TiledStore::Create(std::move(layout), bundle.manager.get(),
                                    2));
  bundle.manager->stats().Reset();
  for (const auto& p : points) {
    ASSERT_OK(PointQueryStandard(tiny.get(), log_dims, p, slot_mode)
                  .status());
  }
  const uint64_t individual = bundle.manager->stats().block_reads;

  bundle.manager->stats().Reset();
  ASSERT_OK(
      BatchPointQueryStandard(tiny.get(), log_dims, points, slot_mode)
          .status());
  const uint64_t batched = bundle.manager->stats().block_reads;
  EXPECT_LT(batched, individual);
  // The batch reads at most one block per distinct home tile (64 tiles in
  // the leaf band cross product for n=6, b=3).
  EXPECT_LE(batched, 64u);
}

TEST(BatchPointQueryTest, ValidatesPoints) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 35);
  std::vector<std::vector<uint64_t>> bad{{1}};
  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;
  EXPECT_FALSE(BatchPointQueryStandard(bundle.store.get(), log_dims, bad,
                                       slot_mode)
                   .ok());
}

TEST(BatchPointQueryTest, EmptyBatchSucceedsWithoutIo) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 36);
  ASSERT_OK(bundle.store->Flush());
  bundle.manager->stats().Reset();
  const std::vector<std::vector<uint64_t>> none;
  for (bool slots : {false, true}) {
    QueryOptions options;
    options.use_scaling_slots = slots;
    ASSERT_OK_AND_ASSIGN(const auto batch,
                         BatchPointQueryStandard(bundle.store.get(),
                                                 log_dims, none, options));
    EXPECT_TRUE(batch.empty());
    ASSERT_OK_AND_ASSIGN(
        const auto resilient,
        BatchPointQueryStandardResilient(bundle.store.get(), log_dims, none,
                                         options));
    EXPECT_TRUE(resilient.empty());
  }
  EXPECT_EQ(bundle.manager->stats().block_reads, 0u);
}

TEST(BatchPointQueryTest, DuplicatePointsAllAnswerInInputOrder) {
  const std::vector<uint32_t> log_dims{4, 4};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 37);
  // The same point several times, interleaved with distinct ones: every
  // occurrence must answer, in input order, regardless of the block-
  // locality schedule.
  const std::vector<std::vector<uint64_t>> points{
      {3, 7}, {12, 1}, {3, 7}, {0, 0}, {3, 7}, {12, 1}};
  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;
  ASSERT_OK_AND_ASSIGN(
      const auto batch,
      BatchPointQueryStandard(bundle.store.get(), log_dims, points,
                              slot_mode));
  ASSERT_EQ(batch.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR(batch[i], bundle.data.At(points[i]), 1e-9) << "point " << i;
  }
  EXPECT_EQ(batch[0], batch[2]);
  EXPECT_EQ(batch[2], batch[4]);
  EXPECT_EQ(batch[1], batch[5]);
}

TEST(BatchPointQueryTest, OutOfRangePointFailsUpFrontWithoutIo) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 38);
  ASSERT_OK(bundle.store->Flush());
  bundle.manager->stats().Reset();
  // Valid points surround the bad one: validation is up front, so no
  // prefix of the batch is evaluated and the store sees zero reads.
  const std::vector<std::vector<uint64_t>> points{
      {1, 1}, {2, 2}, {8, 0}, {3, 3}};
  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;
  const auto r = BatchPointQueryStandard(bundle.store.get(), log_dims,
                                         points, slot_mode);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bundle.manager->stats().block_reads, 0u);

  const auto resilient = BatchPointQueryStandardResilient(
      bundle.store.get(), log_dims, points, slot_mode);
  ASSERT_FALSE(resilient.ok());
  EXPECT_EQ(resilient.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bundle.manager->stats().block_reads, 0u);

  const std::vector<std::vector<uint64_t>> wrong_d{{1, 1}, {1}};
  const auto mismatch = BatchPointQueryStandard(bundle.store.get(), log_dims,
                                                wrong_d, slot_mode);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResilientQueryTest, MatchesExactPathBitForBitWhenHealthy) {
  const std::vector<uint32_t> log_dims{4, 3};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 39);
  QueryOptions options;
  std::vector<uint64_t> point(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(
        const double exact,
        PointQueryStandard(bundle.store.get(), log_dims, point, options));
    ASSERT_OK_AND_ASSIGN(const DegradedResult r,
                         PointQueryStandardResilient(bundle.store.get(),
                                                     log_dims, point,
                                                     options));
    EXPECT_TRUE(r.exact());
    EXPECT_EQ(r.value, exact);
  } while (bundle.data.shape().Next(point));

  const std::vector<uint64_t> lo{1, 2}, hi{13, 6};
  ASSERT_OK_AND_ASSIGN(
      const double exact_sum,
      RangeSumStandard(bundle.store.get(), log_dims, lo, hi, options));
  ASSERT_OK_AND_ASSIGN(const DegradedResult sum,
                       RangeSumStandardResilient(bundle.store.get(),
                                                 log_dims, lo, hi, options));
  EXPECT_TRUE(sum.exact());
  EXPECT_EQ(sum.value, exact_sum);
}

TEST(ResilientQueryTest, DegradedReasonNamesAreStable) {
  EXPECT_STREQ(DegradedReasonToString(DegradedReason::kNone), "None");
  EXPECT_STREQ(DegradedReasonToString(DegradedReason::kQuarantined),
               "Quarantined");
  EXPECT_STREQ(DegradedReasonToString(DegradedReason::kPinExhaustion),
               "PinExhaustion");
  EXPECT_STREQ(DegradedReasonToString(DegradedReason::kDeadline),
               "Deadline");
  EXPECT_STREQ(DegradedReasonToString(DegradedReason::kUnavailable),
               "Unavailable");
}

TEST(QueryTest, ValidatesArguments) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 30);
  std::vector<uint64_t> bad_point{8, 0};
  EXPECT_FALSE(PointQueryStandard(bundle.store.get(), log_dims, bad_point,
                                  QueryOptions{})
                   .ok());
  std::vector<uint64_t> lo{5, 0}, hi{3, 7};
  EXPECT_FALSE(RangeSumStandard(bundle.store.get(), log_dims, lo, hi,
                                QueryOptions{})
                   .ok());
  std::vector<uint64_t> wrong_d{1};
  EXPECT_FALSE(PointQueryStandard(bundle.store.get(), log_dims, wrong_d,
                                  QueryOptions{})
                   .ok());
}

TEST(QueryTest, ClipBoxToSlabIntersectsAlongOneDimension) {
  std::vector<uint64_t> lo{2, 5}, hi{11, 9};
  std::vector<uint64_t> clipped_lo, clipped_hi;
  // Slab [4, 7] along dim 0 clips the box; the other dimension is kept.
  ASSERT_TRUE(ClipBoxToSlab(lo, hi, /*dim=*/0, 4, 7, &clipped_lo,
                            &clipped_hi));
  EXPECT_EQ(clipped_lo, (std::vector<uint64_t>{4, 5}));
  EXPECT_EQ(clipped_hi, (std::vector<uint64_t>{7, 9}));
  // A slab containing the whole box returns it unchanged.
  ASSERT_TRUE(ClipBoxToSlab(lo, hi, /*dim=*/0, 0, 15, &clipped_lo,
                            &clipped_hi));
  EXPECT_EQ(clipped_lo, lo);
  EXPECT_EQ(clipped_hi, hi);
  // Clipping along the other dimension.
  ASSERT_TRUE(ClipBoxToSlab(lo, hi, /*dim=*/1, 8, 15, &clipped_lo,
                            &clipped_hi));
  EXPECT_EQ(clipped_lo, (std::vector<uint64_t>{2, 8}));
  EXPECT_EQ(clipped_hi, (std::vector<uint64_t>{11, 9}));
  // Disjoint slabs report no intersection.
  EXPECT_FALSE(ClipBoxToSlab(lo, hi, /*dim=*/0, 12, 15, &clipped_lo,
                             &clipped_hi));
  EXPECT_FALSE(ClipBoxToSlab(lo, hi, /*dim=*/1, 0, 4, &clipped_lo,
                             &clipped_hi));
}

}  // namespace
}  // namespace shiftsplit
