#include "shiftsplit/core/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/data/synthetic.h"
#include "testing.h"

namespace shiftsplit {
namespace {

// Brute-force aggregates over the generator.
AggregateCube::RangeAggregates Brute(FunctionDataset* dataset,
                                     std::span<const uint64_t> lo,
                                     std::span<const uint64_t> hi) {
  AggregateCube::RangeAggregates out;
  std::vector<uint64_t> c(lo.begin(), lo.end());
  for (;;) {
    const double v = dataset->Cell(c);
    ++out.count;
    out.sum += v;
    out.sum_squares += v * v;
    size_t i = c.size();
    bool advanced = false;
    while (i-- > 0) {
      if (++c[i] <= hi[i]) {
        advanced = true;
        break;
      }
      c[i] = lo[i];
    }
    if (!advanced) break;
  }
  const double n = static_cast<double>(out.count);
  out.average = out.sum / n;
  out.variance = out.sum_squares / n - out.average * out.average;
  out.stddev = std::sqrt(std::max(0.0, out.variance));
  return out;
}

class AggregateCubeTest : public ::testing::TestWithParam<Normalization> {};

TEST_P(AggregateCubeTest, MatchesBruteForce) {
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), -3.0, 3.0, 61);
  AggregateCube::Options options;
  options.norm = GetParam();
  ASSERT_OK_AND_ASSIGN(auto cube,
                       AggregateCube::Build(dataset.get(), options));
  const std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>
      boxes = {{{0, 0}, {15, 15}},
               {{3, 5}, {12, 9}},
               {{7, 7}, {7, 7}},
               {{0, 8}, {15, 8}}};
  for (const auto& [lo, hi] : boxes) {
    ASSERT_OK_AND_ASSIGN(const auto got, cube->Query(lo, hi));
    const auto want = Brute(dataset.get(), lo, hi);
    EXPECT_EQ(got.count, want.count);
    EXPECT_NEAR(got.sum, want.sum, 1e-7);
    EXPECT_NEAR(got.sum_squares, want.sum_squares, 1e-7);
    EXPECT_NEAR(got.average, want.average, 1e-8);
    EXPECT_NEAR(got.variance, want.variance, 1e-8);
    EXPECT_NEAR(got.stddev, want.stddev, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, AggregateCubeTest,
                         ::testing::Values(Normalization::kAverage,
                                           Normalization::kOrthonormal));

TEST(AggregateCubeTest, QueryCostIsLogarithmic) {
  auto dataset = MakeUniformDataset(TensorShape({256, 256}), 0.0, 1.0, 62);
  AggregateCube::Options options;
  options.log_chunk = 5;
  ASSERT_OK_AND_ASSIGN(auto cube,
                       AggregateCube::Build(dataset.get(), options));
  const IoStats before = cube->stats();
  std::vector<uint64_t> lo{13, 77}, hi{201, 190};
  ASSERT_OK(cube->Query(lo, hi).status());
  const IoStats delta = cube->stats() - before;
  // Both stores together: at most 2 (2 log N + 1)^d coefficient reads.
  EXPECT_LE(delta.coeff_reads, 2u * (2u * 8 + 1) * (2u * 8 + 1));
}

TEST(AggregateCubeTest, UpdateKeepsBothTransformsConsistent) {
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0.0, 2.0, 63);
  AggregateCube::Options options;
  ASSERT_OK_AND_ASSIGN(auto cube,
                       AggregateCube::Build(dataset.get(), options));

  // Add deltas to the dyadic box [4,8) x [12,16).
  std::vector<uint32_t> box_log{2, 2};
  std::vector<uint64_t> box_pos{1, 3};
  ASSERT_OK_AND_ASSIGN(
      Tensor old_values,
      ReconstructDyadicStandard(cube->values(), cube->log_dims(), box_log,
                                box_pos, Normalization::kAverage));
  Tensor deltas(TensorShape({4, 4}), testing::RandomVector(16, 64));
  ASSERT_OK(cube->UpdateDyadic(deltas, old_values, box_pos));

  // Aggregates over a box straddling the update match recomputation.
  std::vector<uint64_t> lo{2, 10}, hi{9, 15};
  ASSERT_OK_AND_ASSIGN(const auto got, cube->Query(lo, hi));
  AggregateCube::RangeAggregates want;
  std::vector<uint64_t> c(2);
  for (c[0] = lo[0]; c[0] <= hi[0]; ++c[0]) {
    for (c[1] = lo[1]; c[1] <= hi[1]; ++c[1]) {
      double v = dataset->Cell(c);
      if (c[0] >= 4 && c[0] < 8 && c[1] >= 12) {
        std::vector<uint64_t> local{c[0] - 4, c[1] - 12};
        v += deltas.At(local);
      }
      ++want.count;
      want.sum += v;
      want.sum_squares += v * v;
    }
  }
  EXPECT_EQ(got.count, want.count);
  EXPECT_NEAR(got.sum, want.sum, 1e-7);
  EXPECT_NEAR(got.sum_squares, want.sum_squares, 1e-7);
}

TEST(AggregateCubeTest, UpdateValidatesShapes) {
  auto dataset = MakeUniformDataset(TensorShape({8, 8}), 0.0, 1.0, 65);
  ASSERT_OK_AND_ASSIGN(auto cube, AggregateCube::Build(dataset.get(), {}));
  Tensor deltas(TensorShape({2, 2}));
  Tensor wrong(TensorShape({4, 2}));
  std::vector<uint64_t> pos{0, 0};
  EXPECT_FALSE(cube->UpdateDyadic(deltas, wrong, pos).ok());
}

TEST(AggregateCubeTest, VarianceOfConstantIsZero) {
  TensorShape shape({8, 8});
  FunctionDataset constant(shape,
                           [](std::span<const uint64_t>) { return 2.5; });
  ASSERT_OK_AND_ASSIGN(auto cube, AggregateCube::Build(&constant, {}));
  std::vector<uint64_t> lo{1, 2}, hi{6, 7};
  ASSERT_OK_AND_ASSIGN(const auto got, cube->Query(lo, hi));
  EXPECT_NEAR(got.average, 2.5, 1e-10);
  EXPECT_NEAR(got.variance, 0.0, 1e-10);
}

}  // namespace
}  // namespace shiftsplit
