#include "shiftsplit/core/shift_split.h"

#include <gtest/gtest.h>

#include <cmath>

#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/tree_tiling.h"
#include "shiftsplit/wavelet/wavelet_index.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::ExpectNear;
using testing::RandomVector;

TEST(Split1DTest, ContributionsMatchBruteForce) {
  // A vector that is zero outside one dyadic chunk: the full transform's
  // above-chunk coefficients must equal the SPLIT contributions exactly
  // (paper Example 1).
  const uint32_t n = 6, m = 3;
  for (Normalization norm :
       {Normalization::kAverage, Normalization::kOrthonormal}) {
    for (uint64_t k = 0; k < 8; ++k) {
      std::vector<double> data(1u << n, 0.0);
      auto chunk = RandomVector(1u << m, 100 + k);
      std::copy(chunk.begin(), chunk.end(), data.begin() + (k << m));
      ASSERT_OK(ForwardHaar1D(data, norm));

      auto local = chunk;
      ASSERT_OK(ForwardHaar1D(local, norm));
      const auto contributions = Split1D(n, m, k, local[0], norm);
      ASSERT_EQ(contributions.size(), n - m + 1);
      for (const auto& c : contributions) {
        EXPECT_NEAR(c.delta, data[c.index], 1e-10)
            << "norm=" << NormalizationToString(norm) << " k=" << k
            << " index=" << c.index;
      }
    }
  }
}

TEST(Split1DTest, SignAlternatesWithPosition) {
  // Chunk in the left half of its parent contributes positively.
  const auto left = Split1D(3, 2, 0, 1.0, Normalization::kAverage);
  const auto right = Split1D(3, 2, 1, 1.0, Normalization::kAverage);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_GT(left[0].delta, 0.0);
  EXPECT_LT(right[0].delta, 0.0);
  // Both contribute the same (positive) amount to the overall average.
  EXPECT_DOUBLE_EQ(left[1].delta, right[1].delta);
  EXPECT_DOUBLE_EQ(left[1].delta, 0.5);
}

TEST(Split1DTest, MagnitudeDecaysGeometrically) {
  const auto cs = Split1D(8, 2, 0, 1.0, Normalization::kAverage);
  for (size_t i = 0; i + 2 < cs.size(); ++i) {
    EXPECT_NEAR(std::abs(cs[i + 1].delta), std::abs(cs[i].delta) / 2, 1e-12);
  }
  const auto co = Split1D(8, 2, 0, 1.0, Normalization::kOrthonormal);
  for (size_t i = 0; i + 2 < co.size(); ++i) {
    EXPECT_NEAR(std::abs(co[i + 1].delta),
                std::abs(co[i].delta) / std::sqrt(2.0), 1e-12);
  }
}

TEST(ScalingExpansionTest, ReconstructsIntermediateScalings) {
  const uint32_t m = 5;
  for (Normalization norm :
       {Normalization::kAverage, Normalization::kOrthonormal}) {
    auto data = RandomVector(1u << m, 7);
    std::vector<std::vector<double>> pyramid;
    std::vector<double> transform;
    ASSERT_OK(HaarPyramid(data, norm, &pyramid, &transform));
    for (uint32_t level = 0; level <= m; ++level) {
      for (uint64_t pos = 0; pos < (uint64_t{1} << (m - level)); ++pos) {
        const auto expansion = ScalingExpansion(m, level, pos, norm);
        double value = 0.0;
        for (const auto& [idx, w] : expansion) value += w * transform[idx];
        EXPECT_NEAR(value, pyramid[level][pos], 1e-10)
            << "level=" << level << " pos=" << pos;
      }
    }
  }
}

TEST(HaarPyramidTest, TransformMatchesForwardHaarAndLevelsAreAverages) {
  auto data = RandomVector(64, 3);
  std::vector<std::vector<double>> pyramid;
  std::vector<double> transform;
  ASSERT_OK(HaarPyramid(data, Normalization::kAverage, &pyramid, &transform));
  auto expected = data;
  ASSERT_OK(ForwardHaar1D(expected, Normalization::kAverage));
  ExpectNear(expected, transform, 1e-12);
  ASSERT_EQ(pyramid.size(), 7u);
  // pyramid[j][k] is the plain average of data over [k*2^j, (k+1)*2^j).
  for (uint32_t j = 0; j <= 6; ++j) {
    for (uint64_t k = 0; k < (64u >> j); ++k) {
      double sum = 0.0;
      for (uint64_t i = 0; i < (1u << j); ++i) sum += data[(k << j) + i];
      EXPECT_NEAR(pyramid[j][k], sum / (1u << j), 1e-12);
    }
  }
}

TEST(HaarPyramidTest, RejectsNonPowerOfTwo) {
  std::vector<double> data(5, 0.0);
  std::vector<std::vector<double>> pyramid;
  std::vector<double> transform;
  EXPECT_FALSE(
      HaarPyramid(data, Normalization::kAverage, &pyramid, &transform).ok());
}

class ApplyChunk1DTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t,
                                                 Normalization>> {};

TEST_P(ApplyChunk1DTest, AllChunksReproduceDirectTransform) {
  const auto [n, m, norm] = GetParam();
  const auto data = RandomVector(1u << n, n * 10 + m);
  auto expected = data;
  ASSERT_OK(ForwardHaar1D(expected, norm));

  std::vector<double> built(1u << n, 0.0);
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    std::vector<double> chunk(data.begin() + (k << m),
                              data.begin() + ((k + 1) << m));
    ASSERT_OK(ForwardHaar1D(chunk, norm));
    ASSERT_OK(ApplyChunk1D(chunk, n, k, built, norm));
  }
  ExpectNear(expected, built, 1e-9);
}

TEST_P(ApplyChunk1DTest, UpdateModeAppliesDeltas) {
  // Paper Example 2: transform of (data + delta in one chunk) equals the
  // stored transform after an update-mode apply of the delta chunk.
  const auto [n, m, norm] = GetParam();
  if (m == n) return;  // position 1 used below needs n > m
  const auto data = RandomVector(1u << n, 5);
  auto transformed = data;
  ASSERT_OK(ForwardHaar1D(transformed, norm));

  const uint64_t k = 1;
  auto delta = RandomVector(1u << m, 6);
  auto updated = data;
  for (uint64_t i = 0; i < delta.size(); ++i) updated[(k << m) + i] += delta[i];
  ASSERT_OK(ForwardHaar1D(updated, norm));

  auto delta_t = delta;
  ASSERT_OK(ForwardHaar1D(delta_t, norm));
  ASSERT_OK(ApplyChunk1D(delta_t, n, k, transformed, norm,
                         ApplyMode::kUpdate));
  ExpectNear(updated, transformed, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndNorms, ApplyChunk1DTest,
    ::testing::Combine(::testing::Values(4u, 6u, 8u),
                       ::testing::Values(0u, 1u, 2u, 4u),
                       ::testing::Values(Normalization::kAverage,
                                         Normalization::kOrthonormal)));

TEST(ApplyChunk1DTest, ValidatesArguments) {
  std::vector<double> chunk(4, 0.0), global(16, 0.0), odd(5, 0.0);
  EXPECT_FALSE(ApplyChunk1D(odd, 4, 0, global, Normalization::kAverage).ok());
  EXPECT_FALSE(
      ApplyChunk1D(global, 2, 0, chunk, Normalization::kAverage).ok());
  EXPECT_FALSE(
      ApplyChunk1D(chunk, 4, 4, global, Normalization::kAverage).ok());
}

class StoreApply1DTest : public ::testing::TestWithParam<Normalization> {};

TEST_P(StoreApply1DTest, ChunkedConstructionMatchesDirectTransform) {
  const Normalization norm = GetParam();
  const uint32_t n = 6, m = 2, b = 2;
  const auto data = RandomVector(1u << n, 11);
  auto expected = data;
  ASSERT_OK(ForwardHaar1D(expected, norm));

  MemoryBlockManager manager(uint64_t{1} << b);
  ASSERT_OK_AND_ASSIGN(
      auto store, TiledStore::Create(std::make_unique<TreeTilingLayout>(n, b),
                                     &manager, 4));
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    ASSERT_OK(TransformAndApplyChunk1D(
        std::span<const double>(data.data() + (k << m), uint64_t{1} << m), n,
        k, store.get(), norm));
  }
  for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
    std::vector<uint64_t> addr{idx};
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(addr));
    EXPECT_NEAR(v, expected[idx], 1e-9) << "index " << idx;
  }
}

TEST_P(StoreApply1DTest, ScalingSlotsHoldTrueScalingCoefficients) {
  const Normalization norm = GetParam();
  const uint32_t n = 6, m = 2, b = 2;
  const auto data = RandomVector(1u << n, 12);
  std::vector<std::vector<double>> pyramid;
  std::vector<double> transform;
  ASSERT_OK(HaarPyramid(data, norm, &pyramid, &transform));

  MemoryBlockManager manager(uint64_t{1} << b);
  auto layout = std::make_unique<TreeTilingLayout>(n, b);
  const TreeTiling& tiling = layout->tiling();
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 4));
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    ASSERT_OK(TransformAndApplyChunk1D(
        std::span<const double>(data.data() + (k << m), uint64_t{1} << m), n,
        k, store.get(), norm));
  }
  // Band-root levels for n=6, b=2 are 6, 4, 2; level 6 is the primary
  // overall average, 4 and 2 are redundant slots.
  for (uint32_t level : {4u, 2u}) {
    for (uint64_t pos = 0; pos < (uint64_t{1} << (n - level)); ++pos) {
      ASSERT_OK_AND_ASSIGN(const BlockSlot at,
                           tiling.LocateScaling(level, pos));
      ASSERT_OK_AND_ASSIGN(const double v, store->GetAt(at));
      EXPECT_NEAR(v, pyramid[level][pos], 1e-9)
          << "level=" << level << " pos=" << pos;
    }
  }
}

TEST_P(StoreApply1DTest, UpdateModeOnStore) {
  const Normalization norm = GetParam();
  const uint32_t n = 5, m = 2, b = 2;
  const auto data = RandomVector(1u << n, 13);

  MemoryBlockManager manager(uint64_t{1} << b);
  ASSERT_OK_AND_ASSIGN(
      auto store, TiledStore::Create(std::make_unique<TreeTilingLayout>(n, b),
                                     &manager, 8));
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    ASSERT_OK(TransformAndApplyChunk1D(
        std::span<const double>(data.data() + (k << m), uint64_t{1} << m), n,
        k, store.get(), norm));
  }
  // Batch-update chunk 3.
  const auto delta = RandomVector(1u << m, 14);
  ApplyOptions update;
  update.mode = ApplyMode::kUpdate;
  ASSERT_OK(
      TransformAndApplyChunk1D(delta, n, 3, store.get(), norm, update));

  auto updated = data;
  for (uint64_t i = 0; i < delta.size(); ++i) updated[(3u << m) + i] += delta[i];
  ASSERT_OK(ForwardHaar1D(updated, norm));
  for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
    std::vector<uint64_t> addr{idx};
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(addr));
    EXPECT_NEAR(v, updated[idx], 1e-9) << "index " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, StoreApply1DTest,
                         ::testing::Values(Normalization::kAverage,
                                           Normalization::kOrthonormal));

TEST(StoreApply1DTest, WorksOnNaiveLayoutWithoutScalingSlots) {
  const uint32_t n = 5, m = 2;
  const auto data = RandomVector(1u << n, 15);
  auto expected = data;
  ASSERT_OK(ForwardHaar1D(expected, Normalization::kAverage));

  MemoryBlockManager manager(4);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(
          std::make_unique<NaiveTiling>(std::vector<uint32_t>{n}, 4), &manager,
          4));
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    ASSERT_OK(TransformAndApplyChunk1D(
        std::span<const double>(data.data() + (k << m), uint64_t{1} << m), n,
        k, store.get(), Normalization::kAverage));
  }
  for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
    std::vector<uint64_t> addr{idx};
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(addr));
    EXPECT_NEAR(v, expected[idx], 1e-9);
  }
}

TEST(StoreApply1DTest, BlockIoMatchesTable1) {
  // Paper Table 1 (1-d): SHIFT touches M/B tiles; SPLIT touches
  // ~ceil(log(N/M)/log B) tiles. Total distinct tiles per chunk is
  // M/B + (path above the chunk) and must be far below M + log(N/M).
  const uint32_t n = 12, m = 6, b = 3;  // N=4096, M=64, B=8
  MemoryBlockManager manager(uint64_t{1} << b);
  ASSERT_OK_AND_ASSIGN(
      auto store, TiledStore::Create(std::make_unique<TreeTilingLayout>(n, b),
                                     &manager, 64));
  const auto chunk = RandomVector(1u << m, 16);
  ASSERT_OK(TransformAndApplyChunk1D(chunk, n, 5, store.get(),
                                     Normalization::kAverage));
  ASSERT_OK(store->Flush());
  // Distinct blocks touched = block misses (fresh pool, no evictions).
  const uint64_t touched = manager.stats().block_reads;
  // SHIFT part: the chunk's details occupy rows 6..11 = bands 2,3 -> the
  // chunk subtree has 1 + 8 = 9 tiles... rows 6..8 (band 2): 1 tile rooted
  // at row 6; rows 9..11 (band 3): 8 tiles. SPLIT path rows 0..5: bands 0,1
  // -> 2 tiles. Total 11.
  EXPECT_EQ(touched, 11u);
}

}  // namespace
}  // namespace shiftsplit
