#include "shiftsplit/core/approx.h"

#include <gtest/gtest.h>

#include <cmath>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
  Tensor data;
};

Bundle Loaded(std::vector<uint32_t> log_dims, Normalization norm,
              uint64_t seed) {
  Bundle bundle;
  std::vector<uint64_t> dims;
  for (uint32_t n : log_dims) dims.push_back(uint64_t{1} << n);
  TensorShape shape(dims);
  bundle.data = Tensor(shape, RandomVector(shape.num_elements(), seed));
  auto layout = std::make_unique<StandardTiling>(log_dims, 2);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 256);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  std::vector<uint64_t> zero(log_dims.size(), 0);
  EXPECT_OK(ApplyChunkStandard(bundle.data, zero, log_dims,
                               bundle.store.get(), norm));
  return bundle;
}

class CompressedSynopsisTest : public ::testing::TestWithParam<Normalization> {
};

TEST_P(CompressedSynopsisTest, KeepAllIsExact) {
  const Normalization norm = GetParam();
  const std::vector<uint32_t> log_dims{3, 4};
  Bundle bundle = Loaded(log_dims, norm, 7);
  ASSERT_OK_AND_ASSIGN(
      const CompressedSynopsis synopsis,
      CompressedSynopsis::Build(bundle.store.get(), log_dims, 128, norm));
  EXPECT_EQ(synopsis.size(), 128u);
  EXPECT_NEAR(synopsis.energy_fraction(), 1.0, 1e-12);
  std::vector<uint64_t> point(2, 0);
  do {
    ASSERT_NEAR(synopsis.PointEstimate(point), bundle.data.At(point), 1e-9);
  } while (bundle.data.shape().Next(point));
  std::vector<uint64_t> lo{1, 3}, hi{6, 12};
  double brute = 0.0;
  for (uint64_t x = lo[0]; x <= hi[0]; ++x) {
    for (uint64_t y = lo[1]; y <= hi[1]; ++y) {
      std::vector<uint64_t> cell{x, y};
      brute += bundle.data.At(cell);
    }
  }
  EXPECT_NEAR(synopsis.RangeSumEstimate(lo, hi), brute, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Norms, CompressedSynopsisTest,
                         ::testing::Values(Normalization::kAverage,
                                           Normalization::kOrthonormal));

TEST(CompressedSynopsisTest, ErrorDecreasesWithK) {
  // On compressible data the reconstruction error drops as K grows.
  auto dataset = MakeSmoothDataset(TensorShape({32, 32}), 5);
  auto materialized = dataset->Materialize();
  ASSERT_TRUE(materialized.ok());
  Tensor data = std::move(*materialized);
  Tensor transformed = data;
  ASSERT_OK(ForwardStandard(&transformed, Normalization::kOrthonormal));

  double previous_sse = -1.0;
  for (uint64_t k : {4u, 16u, 64u, 256u}) {
    const CompressedSynopsis synopsis = CompressedSynopsis::FromTensor(
        transformed, k, Normalization::kOrthonormal);
    double sse = 0.0;
    std::vector<uint64_t> point(2, 0);
    do {
      const double e = synopsis.PointEstimate(point) - data.At(point);
      sse += e * e;
    } while (data.shape().Next(point));
    if (previous_sse >= 0.0) {
      EXPECT_LE(sse, previous_sse);
    }
    previous_sse = sse;
  }
  // 256 of 1024 terms: residual below 2% of the signal energy.
  double energy = 0.0;
  for (double x : data.data()) energy += x * x;
  EXPECT_LT(previous_sse, 0.02 * energy);
}

TEST(CompressedSynopsisTest, AverageNormRanksByTrueEnergy) {
  // With the kAverage normalization, raw magnitudes are biased towards fine
  // levels; the synopsis must rank by the orthonormal-rescaled magnitude.
  // Build the same synopsis under both normalizations of the same data and
  // check they capture the same energy fraction.
  auto dataset = MakeSmoothDataset(TensorShape({16, 16}), 6);
  auto materialized = dataset->Materialize();
  ASSERT_TRUE(materialized.ok());
  Tensor data = std::move(*materialized);
  Tensor avg = data, on = data;
  ASSERT_OK(ForwardStandard(&avg, Normalization::kAverage));
  ASSERT_OK(ForwardStandard(&on, Normalization::kOrthonormal));
  const uint64_t k = 24;
  const CompressedSynopsis from_avg =
      CompressedSynopsis::FromTensor(avg, k, Normalization::kAverage);
  const CompressedSynopsis from_on =
      CompressedSynopsis::FromTensor(on, k, Normalization::kOrthonormal);
  EXPECT_NEAR(from_avg.energy_fraction(), from_on.energy_fraction(), 1e-9);
}

TEST(CompressedSynopsisTest, RangeErrorBoundIsGuaranteed) {
  // The Cauchy-Schwarz/Parseval bound must dominate the actual error for
  // every box and every K.
  const std::vector<uint32_t> log_dims{4, 4};
  Bundle bundle = Loaded(log_dims, Normalization::kOrthonormal, 9);
  Xoshiro256 rng(10);
  for (uint64_t k : {4u, 16u, 64u, 250u}) {
    ASSERT_OK_AND_ASSIGN(
        const CompressedSynopsis synopsis,
        CompressedSynopsis::Build(bundle.store.get(), log_dims, k,
                                  Normalization::kOrthonormal));
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<uint64_t> lo(2), hi(2);
      for (uint32_t i = 0; i < 2; ++i) {
        const uint64_t a = rng.NextBounded(16), b = rng.NextBounded(16);
        lo[i] = std::min(a, b);
        hi[i] = std::max(a, b);
      }
      double exact = 0.0;
      std::vector<uint64_t> c(2);
      for (c[0] = lo[0]; c[0] <= hi[0]; ++c[0]) {
        for (c[1] = lo[1]; c[1] <= hi[1]; ++c[1]) {
          exact += bundle.data.At(c);
        }
      }
      const double estimate = synopsis.RangeSumEstimate(lo, hi);
      EXPECT_LE(std::abs(estimate - exact),
                synopsis.RangeSumErrorBound(lo, hi) + 1e-9)
          << "k=" << k << " box (" << lo[0] << "," << lo[1] << ")-("
          << hi[0] << "," << hi[1] << ")";
    }
  }
}

TEST(CompressedSynopsisTest, FullSynopsisHasZeroErrorBound) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = Loaded(log_dims, Normalization::kAverage, 11);
  ASSERT_OK_AND_ASSIGN(
      const CompressedSynopsis synopsis,
      CompressedSynopsis::Build(bundle.store.get(), log_dims, 64,
                                Normalization::kAverage));
  std::vector<uint64_t> lo{0, 0}, hi{7, 7};
  EXPECT_NEAR(synopsis.RangeSumErrorBound(lo, hi), 0.0, 1e-6);
}

TEST(CompressedSynopsisTest, EstimatesDegradeGracefully) {
  const std::vector<uint32_t> log_dims{4, 4};
  Bundle bundle = Loaded(log_dims, Normalization::kOrthonormal, 8);
  ASSERT_OK_AND_ASSIGN(const CompressedSynopsis synopsis,
                       CompressedSynopsis::Build(bundle.store.get(), log_dims,
                                                 32,
                                                 Normalization::kOrthonormal));
  EXPECT_EQ(synopsis.size(), 32u);
  EXPECT_GT(synopsis.energy_fraction(), 0.1);
  EXPECT_LT(synopsis.energy_fraction(), 1.0);
  // The range estimate of the full domain equals the root-driven sum and
  // stays within a loose bound of the truth.
  std::vector<uint64_t> lo{0, 0}, hi{15, 15};
  double brute = 0.0;
  std::vector<uint64_t> c(2, 0);
  do {
    brute += bundle.data.At(c);
  } while (bundle.data.shape().Next(c));
  EXPECT_NEAR(synopsis.RangeSumEstimate(lo, hi), brute,
              std::abs(brute) * 0.8 + 32.0);
}

}  // namespace
}  // namespace shiftsplit
