#include "shiftsplit/core/stream_synopsis.h"

#include <gtest/gtest.h>

#include <map>

#include "shiftsplit/baseline/gilbert_stream.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/wavelet_index.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

// Collects the full coefficient map of a synopsis with K = N (keep all).
std::map<uint64_t, double> FullMap(const TopKSynopsis& synopsis) {
  std::map<uint64_t, double> out;
  for (const auto& [key, value] : synopsis.Extract()) out[key] = value;
  return out;
}

class BufferedStreamTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, Normalization>> {};

TEST_P(BufferedStreamTest, KeepAllEqualsDirectTransform) {
  const auto [b, norm] = GetParam();
  const uint32_t n = 7;
  auto data = RandomVector(1u << n, 31 + b);
  BufferedStreamSynopsis stream(n, 1u << n, b, norm);
  for (double x : data) ASSERT_OK(stream.Push(x));
  ASSERT_OK(stream.Finish());

  auto transformed = data;
  ASSERT_OK(ForwardHaar1D(transformed, norm));
  const auto synopsis = FullMap(stream.synopsis());
  ASSERT_EQ(synopsis.size(), transformed.size());
  for (const auto& [key, value] : synopsis) {
    EXPECT_NEAR(value, transformed[key], 1e-9) << "coefficient " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BuffersAndNorms, BufferedStreamTest,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 5u, 7u),
                       ::testing::Values(Normalization::kAverage,
                                         Normalization::kOrthonormal)));

TEST(BufferedStreamTest, MatchesGilbertBaselineSynopsis) {
  // Both maintainers compute the same coefficients, so with the same K and
  // no magnitude ties they retain the same set.
  const uint32_t n = 9;
  auto data = RandomVector(1u << n, 41);
  BufferedStreamSynopsis buffered(n, 20, 4);
  GilbertStreamSynopsis gilbert(n, 20);
  for (double x : data) {
    ASSERT_OK(buffered.Push(x));
    ASSERT_OK(gilbert.Push(x));
  }
  ASSERT_OK(buffered.Finish());
  ASSERT_OK(gilbert.Finish());
  // The maintainers sum contributions in different orders, so compare the
  // retained coefficient sets with a floating-point tolerance.
  const auto from_buffered = FullMap(buffered.synopsis());
  const auto from_gilbert = FullMap(gilbert.synopsis());
  ASSERT_EQ(from_buffered.size(), from_gilbert.size());
  for (const auto& [key, value] : from_buffered) {
    auto it = from_gilbert.find(key);
    ASSERT_NE(it, from_gilbert.end()) << "coefficient " << key;
    EXPECT_NEAR(value, it->second, 1e-9);
  }
}

TEST(BufferedStreamTest, Result3CostReduction) {
  // Per-item touches: Gilbert ~ log N + 1; buffered ~ 1 + log(N/B)/B.
  const uint32_t n = 14;
  const uint64_t kItems = uint64_t{1} << n;
  auto data = RandomVector(kItems, 42);

  GilbertStreamSynopsis gilbert(n, 10);
  BufferedStreamSynopsis buffered(n, 10, /*b=*/6);
  for (double x : data) {
    ASSERT_OK(gilbert.Push(x));
    ASSERT_OK(buffered.Push(x));
  }
  const double gilbert_per_item =
      static_cast<double>(gilbert.coeff_touches()) / kItems;
  const double buffered_per_item =
      static_cast<double>(buffered.coeff_touches()) / kItems;
  EXPECT_NEAR(gilbert_per_item, n + 1, 0.01);
  EXPECT_LT(buffered_per_item, 1.5);
  EXPECT_GT(gilbert_per_item / buffered_per_item, 8.0);
}

TEST(BufferedStreamTest, OpenCoefficientsBoundedByCrest) {
  const uint32_t n = 12, b = 4;
  BufferedStreamSynopsis stream(n, 8, b);
  auto data = RandomVector(1u << n, 43);
  for (double x : data) {
    ASSERT_OK(stream.Push(x));
    EXPECT_LE(stream.open_coefficients(), n - b + 1);
  }
}

TEST(BufferedStreamTest, RejectsOverflowAndUnalignedFinish) {
  BufferedStreamSynopsis stream(2, 4, 1);
  for (int i = 0; i < 4; ++i) ASSERT_OK(stream.Push(1.0));
  EXPECT_EQ(stream.Push(1.0).code(), StatusCode::kOutOfRange);

  BufferedStreamSynopsis partial(4, 4, 2);
  ASSERT_OK(partial.Push(1.0));
  EXPECT_EQ(partial.Finish().code(), StatusCode::kInvalidArgument);
}

TEST(BufferedStreamTest, PushAfterFinishRejected) {
  BufferedStreamSynopsis stream(4, 4, 1);
  ASSERT_OK(stream.Push(1.0));
  ASSERT_OK(stream.Push(2.0));
  ASSERT_OK(stream.Finish());
  EXPECT_FALSE(stream.Push(3.0).ok());
}

TEST(UnboundedStreamTest, KeepAllEqualsDirectTransformOfGrownDomain) {
  // 11 buffers of 8 items: the domain expands 8 -> 16 -> 32 -> 64 -> 128;
  // the final synopsis must equal the transform of the zero-padded stream.
  const uint32_t b = 3;
  const uint64_t kItems = 11 * 8;
  for (Normalization norm :
       {Normalization::kAverage, Normalization::kOrthonormal}) {
    auto data = RandomVector(kItems, 51);
    UnboundedStreamSynopsis stream(1u << 12, b, norm);
    for (double x : data) ASSERT_OK(stream.Push(x));
    ASSERT_OK(stream.Finish());
    EXPECT_EQ(stream.log_n(), 7u);

    std::vector<double> padded(1u << stream.log_n(), 0.0);
    std::copy(data.begin(), data.end(), padded.begin());
    ASSERT_OK(ForwardHaar1D(padded, norm));
    const auto synopsis = FullMap(stream.synopsis());
    for (uint64_t idx = 0; idx < padded.size(); ++idx) {
      const WaveletCoord wc = CoordOfIndex(stream.log_n(), idx);
      const uint64_t key = UnboundedStreamSynopsis::EncodeKey(
          wc.is_scaling ? 0 : wc.level, wc.is_scaling ? 0 : wc.pos);
      auto it = synopsis.find(key);
      if (it == synopsis.end()) {
        // Coefficients over entirely-unseen data were never created.
        EXPECT_NEAR(padded[idx], 0.0, 1e-9) << "missing coefficient " << idx;
      } else {
        EXPECT_NEAR(it->second, padded[idx], 1e-9) << "coefficient " << idx;
      }
    }
  }
}

TEST(UnboundedStreamTest, OpenStateStaysLogarithmic) {
  UnboundedStreamSynopsis stream(8, /*b=*/2);
  Xoshiro256 rng(52);
  for (uint64_t i = 0; i < 4096; ++i) {
    ASSERT_OK(stream.Push(rng.NextGaussian()));
    // crest <= log(N/B) levels + root.
    EXPECT_LE(stream.open_coefficients(), stream.log_n() - 2 + 1);
  }
  EXPECT_EQ(stream.log_n(), 12u);
}

TEST(UnboundedStreamTest, MatchesFixedDomainMaintainer) {
  // On a stream that exactly fills a power-of-two domain, the unbounded
  // maintainer's synopsis equals the fixed-domain one's (same coefficients,
  // same K), modulo the key encoding.
  const uint32_t n = 8, b = 2;
  auto data = RandomVector(1u << n, 53);
  BufferedStreamSynopsis fixed(n, 1u << n, b);
  UnboundedStreamSynopsis unbounded(1u << n, b);
  for (double x : data) {
    ASSERT_OK(fixed.Push(x));
    ASSERT_OK(unbounded.Push(x));
  }
  ASSERT_OK(fixed.Finish());
  ASSERT_OK(unbounded.Finish());
  ASSERT_EQ(unbounded.log_n(), n);
  const auto from_fixed = FullMap(fixed.synopsis());
  const auto from_unbounded = FullMap(unbounded.synopsis());
  ASSERT_EQ(from_fixed.size(), from_unbounded.size());
  for (const auto& [flat, value] : from_fixed) {
    const WaveletCoord wc = CoordOfIndex(n, flat);
    const uint64_t key = UnboundedStreamSynopsis::EncodeKey(
        wc.is_scaling ? 0 : wc.level, wc.is_scaling ? 0 : wc.pos);
    auto it = from_unbounded.find(key);
    ASSERT_NE(it, from_unbounded.end());
    EXPECT_NEAR(it->second, value, 1e-9);
  }
}

TEST(UnboundedStreamTest, RejectsUnalignedFinishAndPushAfterFinish) {
  UnboundedStreamSynopsis stream(4, 2);
  ASSERT_OK(stream.Push(1.0));
  EXPECT_FALSE(stream.Finish().ok());
  for (int i = 0; i < 3; ++i) ASSERT_OK(stream.Push(1.0));
  ASSERT_OK(stream.Finish());
  EXPECT_FALSE(stream.Push(1.0).ok());
}

TEST(BufferedStreamTest, TopKIsTrueTopK) {
  // With the orthonormal normalization the retained set must equal the
  // offline top-K of the full transform.
  const uint32_t n = 10;
  const uint64_t kK = 12;
  auto data = RandomVector(1u << n, 44);
  BufferedStreamSynopsis stream(n, kK, 3, Normalization::kOrthonormal);
  for (double x : data) ASSERT_OK(stream.Push(x));
  ASSERT_OK(stream.Finish());

  auto transformed = data;
  ASSERT_OK(ForwardHaar1D(transformed, Normalization::kOrthonormal));
  std::vector<std::pair<double, uint64_t>> ranked;
  for (uint64_t i = 0; i < transformed.size(); ++i) {
    ranked.emplace_back(std::abs(transformed[i]), i);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (uint64_t i = 0; i < kK; ++i) {
    EXPECT_TRUE(stream.synopsis().Contains(ranked[i].second));
  }
}

}  // namespace
}  // namespace shiftsplit
