#include "shiftsplit/core/appender.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "shiftsplit/core/query.h"
#include "shiftsplit/storage/file_block_manager.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

Tensor RandomTensor(TensorShape shape, uint64_t seed) {
  auto v = RandomVector(shape.num_elements(), seed);
  return Tensor(std::move(shape), std::move(v));
}

Appender::Options DefaultOptions() {
  Appender::Options options;
  options.b = 2;
  options.pool_blocks = 64;
  return options;
}

// Verifies the appender store against a direct transform of `truth`, whose
// time extent equals the appender's current capacity (unfilled tail = 0).
void ExpectMatchesDirect(Appender* appender, const Tensor& truth,
                         Normalization norm) {
  Tensor expected = truth;
  ASSERT_OK(ForwardStandard(&expected, norm));
  std::vector<uint64_t> address(truth.shape().ndim(), 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, appender->store()->Get(address));
    ASSERT_NEAR(v, expected.At(address), 1e-9);
  } while (truth.shape().Next(address));
}

TEST(AppenderTest, AppendsWithinCapacity) {
  ASSERT_OK_AND_ASSIGN(auto appender,
                       Appender::Create({2, 3}, 1, DefaultOptions()));
  // Capacity 8 along dim 1; append two slabs of thickness 4.
  Tensor slab1 = RandomTensor(TensorShape({4, 4}), 1);
  Tensor slab2 = RandomTensor(TensorShape({4, 4}), 2);
  ASSERT_OK(appender->Append(slab1));
  EXPECT_EQ(appender->filled(), 4u);
  ASSERT_OK(appender->Append(slab2));
  EXPECT_EQ(appender->filled(), 8u);
  EXPECT_EQ(appender->expansions(), 0u);

  Tensor truth(TensorShape({4, 8}));
  std::vector<uint64_t> c(2, 0);
  do {
    const Tensor& src = c[1] < 4 ? slab1 : slab2;
    std::vector<uint64_t> s{c[0], c[1] % 4};
    truth.At(c) = src.At(s);
  } while (truth.shape().Next(c));
  ExpectMatchesDirect(appender.get(), truth, Normalization::kAverage);
}

TEST(AppenderTest, ExpansionPreservesTransform) {
  // Paper Figure 10: the tree doubles; old coefficients shift, the old root
  // splits. The result must equal transforming the padded dataset directly.
  ASSERT_OK_AND_ASSIGN(auto appender,
                       Appender::Create({2, 2}, 1, DefaultOptions()));
  Tensor slab = RandomTensor(TensorShape({4, 4}), 3);
  ASSERT_OK(appender->Append(slab));  // fills capacity exactly
  ASSERT_OK(appender->Expand());
  EXPECT_EQ(appender->capacity(), 8u);
  EXPECT_EQ(appender->expansions(), 1u);

  Tensor truth(TensorShape({4, 8}));  // second half zero
  std::vector<uint64_t> c(2, 0);
  do {
    std::vector<uint64_t> s{c[0], c[1]};
    truth.At(c) = c[1] < 4 ? slab.At(s = {c[0], c[1]}) : 0.0;
  } while (truth.shape().Next(c));
  ExpectMatchesDirect(appender.get(), truth, Normalization::kAverage);
}

TEST(AppenderTest, MonthlyAppendScenario) {
  // Repeated appends trigger expansions exactly at capacity-doubling
  // boundaries, and the store always equals the direct transform.
  Appender::Options options = DefaultOptions();
  options.norm = Normalization::kOrthonormal;
  ASSERT_OK_AND_ASSIGN(auto appender, Appender::Create({2, 1}, 1, options));
  const uint64_t kMonths = 8;
  std::vector<Tensor> slabs;
  for (uint64_t month = 0; month < kMonths; ++month) {
    slabs.push_back(RandomTensor(TensorShape({4, 2}), 100 + month));
    ASSERT_OK(appender->Append(slabs.back()));
  }
  EXPECT_EQ(appender->filled(), 16u);
  EXPECT_EQ(appender->capacity(), 16u);
  EXPECT_EQ(appender->expansions(), 3u);  // 2 -> 4 -> 8 -> 16

  Tensor truth(TensorShape({4, 16}));
  std::vector<uint64_t> c(2, 0);
  do {
    std::vector<uint64_t> s{c[0], c[1] % 2};
    truth.At(c) = slabs[c[1] / 2].At(s);
  } while (truth.shape().Next(c));
  ExpectMatchesDirect(appender.get(), truth, Normalization::kOrthonormal);
}

TEST(AppenderTest, ExpansionCostIsProportionalToStoredCoefficients) {
  ASSERT_OK_AND_ASSIGN(auto appender,
                       Appender::Create({3, 3}, 1, DefaultOptions()));
  ASSERT_OK(appender->Append(RandomTensor(TensorShape({8, 8}), 4)));
  const IoStats before = appender->total_io();
  ASSERT_OK(appender->Expand());
  const IoStats delta = appender->total_io() - before;
  // Reads the 64 old coefficients; writes 8 x (7 shifted + 2 split) = 72.
  EXPECT_EQ(delta.coeff_reads, 64u);
  EXPECT_EQ(delta.coeff_writes, 72u);
}

TEST(AppenderTest, QueriesWorkAfterAppendsAndExpansions) {
  ASSERT_OK_AND_ASSIGN(auto appender,
                       Appender::Create({2, 2}, 1, DefaultOptions()));
  std::vector<Tensor> slabs;
  for (uint64_t i = 0; i < 4; ++i) {
    slabs.push_back(RandomTensor(TensorShape({4, 4}), 200 + i));
    ASSERT_OK(appender->Append(slabs[i]));
  }
  QueryOptions q;
  std::vector<uint32_t> log_dims = appender->log_dims();
  for (uint64_t x = 0; x < 4; ++x) {
    for (uint64_t t = 0; t < 16; ++t) {
      std::vector<uint64_t> point{x, t};
      ASSERT_OK_AND_ASSIGN(
          const double v,
          PointQueryStandard(appender->store(), log_dims, point, q));
      std::vector<uint64_t> s{x, t % 4};
      EXPECT_NEAR(v, slabs[t / 4].At(s), 1e-9) << x << "," << t;
    }
  }
}

TEST(AppenderTest, ScalingSlotRebuildKeepsSlotQueriesCorrect) {
  Appender::Options options = DefaultOptions();
  options.maintain_scaling_slots = true;
  ASSERT_OK_AND_ASSIGN(auto appender, Appender::Create({2, 2}, 1, options));
  std::vector<Tensor> slabs;
  for (uint64_t i = 0; i < 2; ++i) {
    slabs.push_back(RandomTensor(TensorShape({4, 4}), 300 + i));
    ASSERT_OK(appender->Append(slabs[i]));
  }
  ASSERT_EQ(appender->expansions(), 1u);
  QueryOptions q;
  q.use_scaling_slots = true;
  for (uint64_t x = 0; x < 4; ++x) {
    for (uint64_t t = 0; t < 8; ++t) {
      std::vector<uint64_t> point{x, t};
      ASSERT_OK_AND_ASSIGN(
          const double v,
          PointQueryStandard(appender->store(), appender->log_dims(), point,
                             q));
      std::vector<uint64_t> s{x, t % 4};
      EXPECT_NEAR(v, slabs[t / 4].At(s), 1e-9);
    }
  }
}

TEST(AppenderTest, ValidatesSlabs) {
  ASSERT_OK_AND_ASSIGN(auto appender,
                       Appender::Create({2, 2}, 1, DefaultOptions()));
  Tensor wrong_const(TensorShape({2, 4}));
  EXPECT_FALSE(appender->Append(wrong_const).ok());
  Tensor wrong_ndim(TensorShape({4}));
  EXPECT_FALSE(appender->Append(wrong_ndim).ok());
  // Misaligned fill: thickness 4 then 2 leaves filled=4... thickness 2 is
  // fine (4 % 2 == 0) but thickness 8 after filled=4 is not.
  ASSERT_OK(appender->Append(Tensor(TensorShape({4, 4}))));
  EXPECT_FALSE(appender->Append(Tensor(TensorShape({4, 8}))).ok());
}

TEST(AppenderTest, CreateValidates) {
  EXPECT_FALSE(Appender::Create({}, 0, DefaultOptions()).ok());
  EXPECT_FALSE(Appender::Create({2, 2}, 5, DefaultOptions()).ok());
}

TEST(AppenderTest, GrowsAnyDesignatedDimension) {
  // Appending along dimension 0 (not just the last one).
  ASSERT_OK_AND_ASSIGN(auto appender,
                       Appender::Create({1, 3}, 0, DefaultOptions()));
  std::vector<Tensor> slabs;
  for (int i = 0; i < 3; ++i) {
    slabs.push_back(RandomTensor(TensorShape({2, 8}), 400 + i));
    ASSERT_OK(appender->Append(slabs[i]));
  }
  EXPECT_EQ(appender->expansions(), 2u);  // 2 -> 4 -> 8
  EXPECT_EQ(appender->capacity(), 8u);

  Tensor truth(TensorShape({8, 8}));
  std::vector<uint64_t> c(2, 0);
  do {
    if (c[0] < 6) {
      std::vector<uint64_t> s{c[0] % 2, c[1]};
      truth.At(c) = slabs[c[0] / 2].At(s);
    }
  } while (truth.shape().Next(c));
  ExpectMatchesDirect(appender.get(), truth, Normalization::kAverage);
}

TEST(AppenderTest, ResumeContinuesAppendingOverPersistedDevice) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("shiftsplit_resume_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "store.blocks").string();
  auto file_factory = [&](uint64_t block_size)
      -> std::unique_ptr<BlockManager> {
    auto opened = FileBlockManager::Open(path, block_size);
    return opened.ok() ? std::move(*opened) : nullptr;
  };
  Appender::Options options = DefaultOptions();
  options.factory = file_factory;

  Tensor slab1 = RandomTensor(TensorShape({4, 4}), 600);
  Tensor slab2 = RandomTensor(TensorShape({4, 4}), 601);
  {
    ASSERT_OK_AND_ASSIGN(auto appender, Appender::Create({2, 3}, 1, options));
    ASSERT_OK(appender->Append(slab1));
    ASSERT_OK(appender->store()->Flush());
  }
  {
    // "Restart": resume over the same file at the recorded fill level.
    ASSERT_OK_AND_ASSIGN(auto appender,
                         Appender::Resume({2, 3}, 1, 4, options));
    EXPECT_EQ(appender->filled(), 4u);
    ASSERT_OK(appender->Append(slab2));

    Tensor truth(TensorShape({4, 8}));
    std::vector<uint64_t> c(2, 0);
    do {
      std::vector<uint64_t> s{c[0], c[1] % 4};
      truth.At(c) = (c[1] < 4 ? slab1 : slab2).At(s);
    } while (truth.shape().Next(c));
    ExpectMatchesDirect(appender.get(), truth, Normalization::kAverage);
  }
  fs::remove_all(dir);
}

TEST(AppenderTest, ResumeValidates) {
  Appender::Options options = DefaultOptions();
  EXPECT_FALSE(Appender::Resume({2, 2}, 1, 100, options).ok());  // > capacity
  EXPECT_FALSE(Appender::Resume({}, 0, 0, options).ok());
}

TEST(AppenderTest, FileBackedAppenderSurvivesExpansions) {
  // A factory that hands out fresh files per expansion: the paper's
  // append-and-expand cycle on a real device.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("shiftsplit_appender_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  int generation = 0;
  Appender::Options options = DefaultOptions();
  options.factory = [&](uint64_t block_size) -> std::unique_ptr<BlockManager> {
    const std::string path =
        (dir / ("gen" + std::to_string(generation++) + ".blocks")).string();
    auto opened = FileBlockManager::Open(path, block_size);
    return opened.ok() ? std::move(*opened) : nullptr;
  };
  {
    ASSERT_OK_AND_ASSIGN(auto appender, Appender::Create({2, 2}, 1, options));
    std::vector<Tensor> slabs;
    for (int i = 0; i < 3; ++i) {
      slabs.push_back(RandomTensor(TensorShape({4, 4}), 500 + i));
      ASSERT_OK(appender->Append(slabs[i]));
    }
    EXPECT_EQ(appender->expansions(), 2u);  // 4 -> 8 -> 16
    EXPECT_EQ(generation, 3);
    Tensor truth(TensorShape({4, 16}));
    std::vector<uint64_t> c(2, 0);
    do {
      if (c[1] < 12) {
        std::vector<uint64_t> s{c[0], c[1] % 4};
        truth.At(c) = slabs[c[1] / 4].At(s);
      }
    } while (truth.shape().Next(c));
    ExpectMatchesDirect(appender.get(), truth, Normalization::kAverage);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
