#include "shiftsplit/core/md_shift_split.h"

#include <gtest/gtest.h>

#include <cmath>

#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

Tensor RandomTensor(TensorShape shape, uint64_t seed) {
  auto v = RandomVector(shape.num_elements(), seed);
  return Tensor(std::move(shape), std::move(v));
}

// Extracts the chunk at per-dim position `pos` (chunk shape `chunk_shape`)
// from `full`.
Tensor ExtractChunk(const Tensor& full, const TensorShape& chunk_shape,
                    std::span<const uint64_t> pos) {
  Tensor chunk(chunk_shape);
  std::vector<uint64_t> local(chunk_shape.ndim(), 0);
  std::vector<uint64_t> global(chunk_shape.ndim());
  do {
    for (uint32_t i = 0; i < chunk_shape.ndim(); ++i) {
      global[i] = pos[i] * chunk_shape.dim(i) + local[i];
    }
    chunk.At(local) = full.At(global);
  } while (chunk_shape.Next(local));
  return chunk;
}

// Applies every chunk of `data` (chunk shape `chunk_shape`) to the store.
void ApplyAllChunksStandard(const Tensor& data, const TensorShape& chunk_shape,
                            std::span<const uint32_t> log_dims,
                            TiledStore* store, Normalization norm,
                            const ApplyOptions& options = {}) {
  std::vector<uint64_t> grid_dims(data.shape().ndim());
  for (uint32_t i = 0; i < grid_dims.size(); ++i) {
    grid_dims[i] = data.shape().dim(i) / chunk_shape.dim(i);
  }
  TensorShape grid(grid_dims);
  std::vector<uint64_t> pos(grid_dims.size(), 0);
  do {
    Tensor chunk = ExtractChunk(data, chunk_shape, pos);
    ASSERT_OK(
        ApplyChunkStandard(chunk, pos, log_dims, store, norm, options));
  } while (grid.Next(pos));
}

struct MdCase {
  std::vector<uint32_t> log_dims;
  std::vector<uint32_t> log_chunk;
  Normalization norm;
};

class ApplyChunkStandardTest : public ::testing::TestWithParam<MdCase> {};

TEST_P(ApplyChunkStandardTest, ChunkedConstructionMatchesDirect) {
  const MdCase& c = GetParam();
  const uint32_t d = static_cast<uint32_t>(c.log_dims.size());
  std::vector<uint64_t> dims(d), chunk_dims(d);
  for (uint32_t i = 0; i < d; ++i) {
    dims[i] = uint64_t{1} << c.log_dims[i];
    chunk_dims[i] = uint64_t{1} << c.log_chunk[i];
  }
  Tensor data = RandomTensor(TensorShape(dims), 42 + d);
  Tensor expected = data;
  ASSERT_OK(ForwardStandard(&expected, c.norm));

  MemoryBlockManager manager(uint64_t{1} << (2 * d));
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<StandardTiling>(c.log_dims, 2),
                         &manager, 256));
  ApplyAllChunksStandard(data, TensorShape(chunk_dims), c.log_dims,
                         store.get(), c.norm);

  std::vector<uint64_t> address(d, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, expected.At(address), 1e-9);
  } while (expected.shape().Next(address));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApplyChunkStandardTest,
    ::testing::Values(
        MdCase{{4, 4}, {2, 2}, Normalization::kAverage},
        MdCase{{4, 4}, {2, 2}, Normalization::kOrthonormal},
        MdCase{{4, 4}, {1, 2}, Normalization::kAverage},
        MdCase{{3, 5}, {3, 2}, Normalization::kAverage},
        MdCase{{3, 3, 3}, {1, 1, 1}, Normalization::kAverage},
        MdCase{{3, 3, 3}, {2, 2, 2}, Normalization::kOrthonormal},
        MdCase{{4, 4}, {4, 4}, Normalization::kAverage},
        MdCase{{2, 2, 2, 2}, {1, 1, 1, 1}, Normalization::kAverage}));

TEST(ApplyChunkStandardTest, MixedScalingSlotsHoldPartialTransformValues) {
  // The redundant slots of the standard tiling hold cross products of
  // per-dim (subtree detail | subtree-root scaling) bases. Verify every
  // slot of every block against an expansion of the direct transform.
  const std::vector<uint32_t> log_dims{4, 4};
  const uint32_t b = 2;
  const Normalization norm = Normalization::kAverage;
  Tensor data = RandomTensor(TensorShape({16, 16}), 77);
  Tensor direct = data;
  ASSERT_OK(ForwardStandard(&direct, norm));

  MemoryBlockManager manager(16);
  auto layout = std::make_unique<StandardTiling>(log_dims, b);
  const StandardTiling& tiling = *layout;
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 256));
  ApplyAllChunksStandard(data, TensorShape({4, 4}), log_dims, store.get(),
                         norm);

  // For every pair of per-dim scaling slots (level 2, the non-root band
  // root), the stored value must equal the expansion over the direct
  // transform: sum over per-dim ScalingExpansion in the *global* tree.
  const TreeTiling& dt = tiling.dim_tiling(0);
  for (uint64_t q0 = 0; q0 < 4; ++q0) {
    for (uint64_t q1 = 0; q1 < 4; ++q1) {
      ASSERT_OK_AND_ASSIGN(const BlockSlot p0, dt.LocateScaling(2, q0));
      ASSERT_OK_AND_ASSIGN(const BlockSlot p1,
                           tiling.dim_tiling(1).LocateScaling(2, q1));
      const BlockSlot parts[] = {p0, p1};
      ASSERT_OK_AND_ASSIGN(const double stored,
                           store->GetAt(tiling.Combine(parts)));
      double expected = 0.0;
      for (const auto& [i0, w0] : ScalingExpansion(4, 2, q0, norm)) {
        for (const auto& [i1, w1] : ScalingExpansion(4, 2, q1, norm)) {
          std::vector<uint64_t> addr{i0, i1};
          expected += w0 * w1 * direct.At(addr);
        }
      }
      EXPECT_NEAR(stored, expected, 1e-9) << "q0=" << q0 << " q1=" << q1;
      // For the average normalization this is just the box average.
      double box = 0.0;
      std::vector<uint64_t> cell(2);
      for (uint64_t x = 0; x < 4; ++x) {
        for (uint64_t y = 0; y < 4; ++y) {
          cell[0] = q0 * 4 + x;
          cell[1] = q1 * 4 + y;
          box += data.At(cell);
        }
      }
      EXPECT_NEAR(stored, box / 16.0, 1e-9);
    }
  }

  // Mixed detail x scaling slots.
  for (uint64_t detail_idx = 4; detail_idx < 8; ++detail_idx) {
    const BlockSlot p0 = dt.Locate(detail_idx);
    ASSERT_OK_AND_ASSIGN(const BlockSlot p1,
                         tiling.dim_tiling(1).LocateScaling(2, 1));
    const BlockSlot parts[] = {p0, p1};
    ASSERT_OK_AND_ASSIGN(const double stored,
                         store->GetAt(tiling.Combine(parts)));
    double expected = 0.0;
    for (const auto& [i1, w1] : ScalingExpansion(4, 2, 1, norm)) {
      std::vector<uint64_t> addr{detail_idx, i1};
      expected += w1 * direct.At(addr);
    }
    EXPECT_NEAR(stored, expected, 1e-9) << "detail " << detail_idx;
  }
}

TEST(ApplyChunkStandardTest, UpdateModeMatchesRetransform) {
  const std::vector<uint32_t> log_dims{3, 3};
  const Normalization norm = Normalization::kAverage;
  Tensor data = RandomTensor(TensorShape({8, 8}), 5);

  MemoryBlockManager manager(16);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<StandardTiling>(log_dims, 2),
                         &manager, 64));
  ApplyAllChunksStandard(data, TensorShape({2, 2}), log_dims, store.get(),
                         norm);

  // Apply a delta chunk at position (1, 2).
  Tensor delta = RandomTensor(TensorShape({2, 2}), 6);
  std::vector<uint64_t> pos{1, 2};
  ApplyOptions update;
  update.mode = ApplyMode::kUpdate;
  ASSERT_OK(ApplyChunkStandard(delta, pos, log_dims, store.get(), norm,
                               update));

  Tensor updated = data;
  std::vector<uint64_t> local(2, 0);
  std::vector<uint64_t> cell(2);
  do {
    cell[0] = pos[0] * 2 + local[0];
    cell[1] = pos[1] * 2 + local[1];
    updated.At(cell) += delta.At(local);
  } while (delta.shape().Next(local));
  ASSERT_OK(ForwardStandard(&updated, norm));

  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, updated.At(address), 1e-9);
  } while (updated.shape().Next(address));
}

TEST(ApplyChunkStandardTest, WorksOnNaiveLayout) {
  const std::vector<uint32_t> log_dims{3, 3};
  Tensor data = RandomTensor(TensorShape({8, 8}), 9);
  Tensor expected = data;
  ASSERT_OK(ForwardStandard(&expected, Normalization::kAverage));

  MemoryBlockManager manager(16);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<NaiveTiling>(log_dims, 16),
                         &manager, 8));
  ApplyAllChunksStandard(data, TensorShape({4, 4}), log_dims, store.get(),
                         Normalization::kAverage);
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, expected.At(address), 1e-9);
  } while (expected.shape().Next(address));
}

TEST(ApplyChunkStandardTest, ValidatesArguments) {
  Tensor chunk(TensorShape({4, 4}));
  MemoryBlockManager manager(16);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(
          std::make_unique<StandardTiling>(std::vector<uint32_t>{3, 3}, 2),
          &manager, 8));
  std::vector<uint32_t> log_dims{3, 3};
  std::vector<uint64_t> pos{0, 0};
  std::vector<uint64_t> bad_pos{2, 0};
  std::vector<uint32_t> small_dims{1, 1};
  EXPECT_FALSE(ApplyChunkStandard(chunk, pos, small_dims, store.get(),
                                  Normalization::kAverage)
                   .ok());
  EXPECT_FALSE(ApplyChunkStandard(chunk, bad_pos, log_dims, store.get(),
                                  Normalization::kAverage)
                   .ok());
  std::vector<uint64_t> wrong_d{0};
  EXPECT_FALSE(ApplyChunkStandard(chunk, wrong_d, log_dims, store.get(),
                                  Normalization::kAverage)
                   .ok());
}

// ---------------------------------------------------------------------------
// Non-standard form
// ---------------------------------------------------------------------------

void ApplyAllChunksNonstandard(const Tensor& data, uint32_t log_chunk,
                               uint32_t n, TiledStore* store,
                               Normalization norm,
                               const ApplyOptions& options = {}) {
  const uint32_t d = data.shape().ndim();
  const uint64_t grid_extent = data.shape().dim(0) >> log_chunk;
  TensorShape grid = TensorShape::Cube(d, grid_extent);
  TensorShape chunk_shape = TensorShape::Cube(d, uint64_t{1} << log_chunk);
  std::vector<uint64_t> pos(d, 0);
  do {
    Tensor chunk = ExtractChunk(data, chunk_shape, pos);
    ASSERT_OK(ApplyChunkNonstandard(chunk, pos, n, store, norm, options));
  } while (grid.Next(pos));
}

struct NsCase {
  uint32_t d;
  uint32_t n;
  uint32_t m;
  Normalization norm;
};

class ApplyChunkNonstandardTest : public ::testing::TestWithParam<NsCase> {};

TEST_P(ApplyChunkNonstandardTest, ChunkedConstructionMatchesDirect) {
  const NsCase& c = GetParam();
  Tensor data = RandomTensor(TensorShape::Cube(c.d, uint64_t{1} << c.n),
                             c.d * 100 + c.n * 10 + c.m);
  Tensor expected = data;
  ASSERT_OK(ForwardNonstandard(&expected, c.norm));

  const uint32_t b = 2;
  MemoryBlockManager manager(uint64_t{1} << (b * c.d));
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<NonstandardTiling>(c.d, c.n, b),
                         &manager, 256));
  ApplyAllChunksNonstandard(data, c.m, c.n, store.get(), c.norm);

  std::vector<uint64_t> address(c.d, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, expected.At(address), 1e-9);
  } while (expected.shape().Next(address));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApplyChunkNonstandardTest,
    ::testing::Values(NsCase{1, 5, 2, Normalization::kAverage},
                      NsCase{2, 4, 2, Normalization::kAverage},
                      NsCase{2, 4, 2, Normalization::kOrthonormal},
                      NsCase{2, 4, 0, Normalization::kAverage},
                      NsCase{2, 4, 4, Normalization::kAverage},
                      NsCase{3, 3, 1, Normalization::kAverage},
                      NsCase{3, 3, 1, Normalization::kOrthonormal}));

TEST(ApplyChunkNonstandardTest, ScalingSlotsHoldNodeAverages) {
  const uint32_t d = 2, n = 4, m = 2, b = 2;
  const Normalization norm = Normalization::kAverage;
  Tensor data = RandomTensor(TensorShape::Cube(d, 16), 21);
  Tensor direct = data;
  std::vector<Tensor> pyramid;
  ASSERT_OK(ForwardNonstandardWithPyramid(&direct, norm, &pyramid));

  MemoryBlockManager manager(16);
  auto layout = std::make_unique<NonstandardTiling>(d, n, b);
  const NonstandardTiling& tiling = *layout;
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 256));
  ApplyAllChunksNonstandard(data, m, n, store.get(), norm);

  // Level-2 node scalings (the redundant band) must equal the pyramid.
  std::vector<uint64_t> node(d);
  for (node[0] = 0; node[0] < 4; ++node[0]) {
    for (node[1] = 0; node[1] < 4; ++node[1]) {
      ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.LocateScaling(2, node));
      ASSERT_OK_AND_ASSIGN(const double v, store->GetAt(at));
      EXPECT_NEAR(v, pyramid[2].At(node), 1e-9);
    }
  }
}

TEST(ApplyChunkNonstandardTest, UpdateModeMatchesRetransform) {
  const uint32_t d = 2, n = 3, m = 1;
  const Normalization norm = Normalization::kOrthonormal;
  Tensor data = RandomTensor(TensorShape::Cube(d, 8), 31);

  MemoryBlockManager manager(16);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<NonstandardTiling>(d, n, 2),
                         &manager, 64));
  ApplyAllChunksNonstandard(data, m, n, store.get(), norm);

  Tensor delta = RandomTensor(TensorShape::Cube(d, 2), 32);
  std::vector<uint64_t> pos{3, 1};
  ApplyOptions update;
  update.mode = ApplyMode::kUpdate;
  ASSERT_OK(ApplyChunkNonstandard(delta, pos, n, store.get(), norm, update));

  Tensor updated = data;
  std::vector<uint64_t> local(d, 0), cell(d);
  do {
    cell[0] = pos[0] * 2 + local[0];
    cell[1] = pos[1] * 2 + local[1];
    updated.At(cell) += delta.At(local);
  } while (delta.shape().Next(local));
  ASSERT_OK(ForwardNonstandard(&updated, norm));

  std::vector<uint64_t> address(d, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, updated.At(address), 1e-9);
  } while (updated.shape().Next(address));
}

TEST(ApplyChunkNonstandardTest, ValidatesArguments) {
  MemoryBlockManager manager(16);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<NonstandardTiling>(2, 3, 2),
                         &manager, 8));
  Tensor non_cube(TensorShape({2, 4}));
  std::vector<uint64_t> pos{0, 0};
  EXPECT_FALSE(ApplyChunkNonstandard(non_cube, pos, 3, store.get(),
                                     Normalization::kAverage)
                   .ok());
  Tensor too_big(TensorShape::Cube(2, 16));
  EXPECT_FALSE(ApplyChunkNonstandard(too_big, pos, 3, store.get(),
                                     Normalization::kAverage)
                   .ok());
  Tensor chunk(TensorShape::Cube(2, 2));
  std::vector<uint64_t> bad_pos{4, 0};
  EXPECT_FALSE(ApplyChunkNonstandard(chunk, bad_pos, 3, store.get(),
                                     Normalization::kAverage)
                   .ok());
}

}  // namespace
}  // namespace shiftsplit
