#include "shiftsplit/core/md_stream_synopsis.h"

#include <gtest/gtest.h>

#include <map>

#include "shiftsplit/util/bitops.h"
#include "shiftsplit/util/morton.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

std::map<uint64_t, double> FullMap(const TopKSynopsis& synopsis) {
  std::map<uint64_t, double> out;
  for (const auto& [key, value] : synopsis.Extract()) out[key] = value;
  return out;
}

TEST(StandardStreamSynopsisTest, KeepAllEqualsDirectTransform) {
  // 2-d stream: constant dim of 4, time growing; 6 slabs of thickness 2.
  const std::vector<uint32_t> const_dims{2};
  const uint32_t m = 1;
  const uint64_t kSlabs = 6;
  const Normalization norm = Normalization::kAverage;

  StandardStreamSynopsis stream(const_dims, m, /*k=*/1u << 12, norm);
  Tensor full(TensorShape({4, 16}));  // final time capacity: 16 (padded)
  for (uint64_t s = 0; s < kSlabs; ++s) {
    Tensor slab(TensorShape({4, 2}),
                RandomVector(8, 100 + s));
    std::vector<uint64_t> c(2, 0);
    do {
      std::vector<uint64_t> cell{c[0], s * 2 + c[1]};
      full.At(cell) = slab.At(c);
    } while (slab.shape().Next(c));
    ASSERT_OK(stream.Push(slab));
  }
  ASSERT_OK(stream.Finish());
  EXPECT_EQ(stream.log_t(), 4u);  // 6 slabs * 2 = 12 -> capacity 16

  Tensor direct = full;
  ASSERT_OK(ForwardStandard(&direct, norm));
  const auto synopsis = FullMap(stream.synopsis());
  // Every tuple of the direct transform must be present with its value.
  std::vector<uint64_t> address(2, 0);
  uint64_t checked = 0;
  do {
    const WaveletCoord wc = CoordOfIndex(4, address[1]);
    const uint64_t key = stream.EncodeKey(wc.is_scaling ? 0 : wc.level,
                                          wc.is_scaling ? 0 : wc.pos,
                                          address[0]);
    auto it = synopsis.find(key);
    if (it == synopsis.end()) {
      // Coefficients whose time support lies entirely in the unseen tail
      // (positions 12..15) were never created; they must be zero.
      EXPECT_NEAR(direct.At(address), 0.0, 1e-9) << "missing tuple";
    } else {
      EXPECT_NEAR(it->second, direct.At(address), 1e-9);
      ++checked;
    }
  } while (direct.shape().Next(address));
  // 4 const cells x (16 time coefficients - 3 unseen: (1,6),(1,7),(2,3)).
  EXPECT_EQ(checked, 4u * 13u);
  EXPECT_EQ(synopsis.size(), 4u * 13u);
}

TEST(StandardStreamSynopsisTest, OpenSetIsConstCellsTimesLogT) {
  const std::vector<uint32_t> const_dims{3};  // 8 constant cells
  StandardStreamSynopsis stream(const_dims, /*m=*/0, /*k=*/4);
  for (uint64_t s = 0; s < 64; ++s) {
    Tensor slab(TensorShape({8, 1}), RandomVector(8, s));
    ASSERT_OK(stream.Push(slab));
    // Result 4's bound: open <= N^(d-1) * (log T + 1).
    EXPECT_LE(stream.open_coefficients(),
              8u * (stream.log_t() + 1));
  }
  EXPECT_EQ(stream.log_t(), 6u);
}

TEST(StandardStreamSynopsisTest, RejectsBadSlabs) {
  StandardStreamSynopsis stream({2}, 1, 4);
  Tensor wrong_thickness(TensorShape({4, 4}));
  EXPECT_FALSE(stream.Push(wrong_thickness).ok());
  Tensor wrong_const(TensorShape({8, 2}));
  EXPECT_FALSE(stream.Push(wrong_const).ok());
  Tensor wrong_ndim(TensorShape({4}));
  EXPECT_FALSE(stream.Push(wrong_ndim).ok());
}

TEST(NonstandardStreamSynopsisTest, KeepAllEqualsDirectTransforms) {
  // Cubes of 8x8 arriving as 2x2 sub-cubes in z-order; 3 cubes.
  const uint32_t d = 2, n = 3, m = 1;
  const uint64_t kCubes = 3;
  const Normalization norm = Normalization::kAverage;
  NonstandardStreamSynopsis stream(d, n, m, /*k=*/1u << 12, norm);

  std::vector<Tensor> cubes;
  TensorShape cube_shape = TensorShape::Cube(d, 8);
  TensorShape sub_shape = TensorShape::Cube(d, 2);
  for (uint64_t t = 0; t < kCubes; ++t) {
    cubes.emplace_back(cube_shape,
                       RandomVector(cube_shape.num_elements(), 200 + t));
    for (uint64_t z = 0; z < 16; ++z) {
      const auto pos = MortonDecode(z, d, n - m);
      Tensor sub(sub_shape);
      std::vector<uint64_t> local(d, 0);
      do {
        std::vector<uint64_t> cell{pos[0] * 2 + local[0],
                                   pos[1] * 2 + local[1]};
        sub.At(local) = cubes[t].At(cell);
      } while (sub_shape.Next(local));
      ASSERT_OK(stream.Push(sub));
    }
  }
  ASSERT_OK(stream.Finish());
  EXPECT_EQ(stream.cubes_completed(), kCubes);

  const auto synopsis = FullMap(stream.synopsis());
  // In-cube coefficients match each cube's direct non-standard transform.
  std::vector<double> averages;
  for (uint64_t t = 0; t < kCubes; ++t) {
    Tensor direct = cubes[t];
    ASSERT_OK(ForwardNonstandard(&direct, norm));
    averages.push_back(direct[0]);
    std::vector<uint64_t> address(d, 0);
    do {
      bool is_root = true;
      for (uint64_t c : address) is_root = is_root && (c == 0);
      if (is_root) continue;
      const uint64_t key =
          stream.EncodeCubeKey(t, cube_shape.FlatIndex(address));
      auto it = synopsis.find(key);
      ASSERT_NE(it, synopsis.end());
      EXPECT_NEAR(it->second, direct.At(address), 1e-9);
    } while (cube_shape.Next(address));
  }
  // Time-tree coefficients match the 1-d transform of the cube averages
  // (padded to the power-of-two capacity).
  const uint32_t log_t = 2;  // 3 cubes -> capacity 4
  std::vector<double> time_data(1u << log_t, 0.0);
  std::copy(averages.begin(), averages.end(), time_data.begin());
  ASSERT_OK(ForwardHaar1D(time_data, norm));
  for (uint64_t idx = 0; idx < time_data.size(); ++idx) {
    const WaveletCoord wc = CoordOfIndex(log_t, idx);
    const uint64_t key = stream.EncodeTimeKey(wc.is_scaling ? 0 : wc.level,
                                              wc.is_scaling ? 0 : wc.pos);
    auto it = synopsis.find(key);
    ASSERT_NE(it, synopsis.end()) << "missing time coefficient " << idx;
    EXPECT_NEAR(it->second, time_data[idx], 1e-9);
  }
}

TEST(NonstandardStreamSynopsisTest, OpenSetMatchesResult5Bound) {
  const uint32_t d = 2, n = 5, m = 1;
  NonstandardStreamSynopsis stream(d, n, m, 4);
  TensorShape sub_shape = TensorShape::Cube(d, 2);
  const uint64_t kSubcubes = 1u << (d * (n - m));
  for (uint64_t cube = 0; cube < 2; ++cube) {
    for (uint64_t z = 0; z < kSubcubes; ++z) {
      Tensor sub(sub_shape, RandomVector(4, cube * kSubcubes + z));
      ASSERT_OK(stream.Push(sub));
      // (2^d - 1) log(N/M) + cube root + log T + time root.
      EXPECT_LE(stream.open_coefficients(),
                3u * (n - m) + 1u + 40u /* generous log T */);
    }
  }
  EXPECT_EQ(stream.cubes_completed(), 2u);
}

TEST(NonstandardStreamSynopsisTest, RejectsBadSubcubesAndEarlyFinish) {
  NonstandardStreamSynopsis stream(2, 3, 1, 4);
  Tensor wrong_shape(TensorShape({2, 4}));
  EXPECT_FALSE(stream.Push(wrong_shape).ok());
  Tensor wrong_edge(TensorShape::Cube(2, 4));
  EXPECT_FALSE(stream.Push(wrong_edge).ok());
  Tensor ok_sub(TensorShape::Cube(2, 2));
  ASSERT_OK(stream.Push(ok_sub));
  EXPECT_EQ(stream.Finish().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shiftsplit
