#include "shiftsplit/core/reconstruct.h"

#include <gtest/gtest.h>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

Tensor RandomTensor(TensorShape shape, uint64_t seed) {
  auto v = RandomVector(shape.num_elements(), seed);
  return Tensor(std::move(shape), std::move(v));
}

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
  Tensor data;
};

Bundle LoadedStandard(std::vector<uint32_t> log_dims, Normalization norm,
                      uint64_t seed, uint32_t b = 2) {
  Bundle bundle;
  std::vector<uint64_t> dims;
  for (uint32_t n : log_dims) dims.push_back(uint64_t{1} << n);
  bundle.data = RandomTensor(TensorShape(dims), seed);
  auto layout = std::make_unique<StandardTiling>(log_dims, b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 256);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  std::vector<uint64_t> zero(log_dims.size(), 0);
  EXPECT_OK(ApplyChunkStandard(bundle.data, zero, log_dims,
                               bundle.store.get(), norm));
  return bundle;
}

Bundle LoadedNonstandard(uint32_t d, uint32_t n, Normalization norm,
                         uint64_t seed, uint32_t b = 2) {
  Bundle bundle;
  bundle.data = RandomTensor(TensorShape::Cube(d, uint64_t{1} << n), seed);
  auto layout = std::make_unique<NonstandardTiling>(d, n, b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 256);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  std::vector<uint64_t> zero(d, 0);
  EXPECT_OK(ApplyChunkNonstandard(bundle.data, zero, n, bundle.store.get(),
                                  norm));
  return bundle;
}

class ReconstructTest : public ::testing::TestWithParam<Normalization> {};

TEST_P(ReconstructTest, DyadicStandardRecoversEveryBox) {
  const Normalization norm = GetParam();
  const std::vector<uint32_t> log_dims{4, 3};
  Bundle bundle = LoadedStandard(log_dims, norm, 11);
  for (uint32_t m0 : {0u, 1u, 2u, 4u}) {
    for (uint32_t m1 : {0u, 2u, 3u}) {
      const uint64_t p0 = (uint64_t{1} << (4 - m0)) - 1;
      const uint64_t p1 = (uint64_t{1} << (3 - m1)) / 2;
      std::vector<uint32_t> range_log{m0, m1};
      std::vector<uint64_t> range_pos{p0, p1};
      ASSERT_OK_AND_ASSIGN(
          Tensor box, ReconstructDyadicStandard(bundle.store.get(), log_dims,
                                                range_log, range_pos, norm));
      std::vector<uint64_t> local(2, 0), cell(2);
      do {
        cell[0] = (p0 << m0) + local[0];
        cell[1] = (p1 << m1) + local[1];
        ASSERT_NEAR(box.At(local), bundle.data.At(cell), 1e-9)
            << "m0=" << m0 << " m1=" << m1;
      } while (box.shape().Next(local));
    }
  }
}

TEST_P(ReconstructTest, DyadicNonstandardRecoversEveryCube) {
  const Normalization norm = GetParam();
  const uint32_t d = 2, n = 4;
  Bundle bundle = LoadedNonstandard(d, n, norm, 12);
  for (uint32_t m : {0u, 1u, 2u, 4u}) {
    const uint64_t grid = uint64_t{1} << (n - m);
    std::vector<uint64_t> range_pos{grid - 1, grid / 2};
    ASSERT_OK_AND_ASSIGN(
        Tensor box, ReconstructDyadicNonstandard(bundle.store.get(), n, m,
                                                 range_pos, norm));
    std::vector<uint64_t> local(d, 0), cell(d);
    do {
      cell[0] = (range_pos[0] << m) + local[0];
      cell[1] = (range_pos[1] << m) + local[1];
      ASSERT_NEAR(box.At(local), bundle.data.At(cell), 1e-9) << "m=" << m;
    } while (box.shape().Next(local));
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, ReconstructTest,
                         ::testing::Values(Normalization::kAverage,
                                           Normalization::kOrthonormal));

TEST(ReconstructTest, ArbitraryRangeStandard) {
  const std::vector<uint32_t> log_dims{4, 4};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 13);
  std::vector<uint64_t> lo{3, 5};
  std::vector<uint64_t> hi{11, 9};
  ASSERT_OK_AND_ASSIGN(
      Tensor box, ReconstructRangeStandard(bundle.store.get(), log_dims, lo,
                                           hi, Normalization::kAverage));
  for (uint64_t x = lo[0]; x <= hi[0]; ++x) {
    for (uint64_t y = lo[1]; y <= hi[1]; ++y) {
      std::vector<uint64_t> local{x - lo[0], y - lo[1]};
      std::vector<uint64_t> cell{x, y};
      ASSERT_NEAR(box.At(local), bundle.data.At(cell), 1e-9);
    }
  }
}

TEST(ReconstructTest, Result6IoCost) {
  // Result 6: reconstructing a dyadic range of size M from a 1-d transform
  // costs M + log(N/M) coefficient reads (standard form, d=1).
  const std::vector<uint32_t> log_dims{10};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 14, 3);
  bundle.manager->stats().Reset();
  std::vector<uint32_t> range_log{4};
  std::vector<uint64_t> range_pos{17};
  ASSERT_OK(ReconstructDyadicStandard(bundle.store.get(), log_dims, range_log,
                                      range_pos, Normalization::kAverage)
                .status());
  // 15 shifted details + local scaling from 6 covering details + root = 22.
  EXPECT_EQ(bundle.manager->stats().coeff_reads, 22u);
}

TEST(ReconstructTest, NonstandardIoCostMatchesResult6) {
  const uint32_t d = 2, n = 5;
  Bundle bundle = LoadedNonstandard(d, n, Normalization::kAverage, 15);
  bundle.manager->stats().Reset();
  const uint32_t m = 2;
  std::vector<uint64_t> range_pos{3, 3};
  ASSERT_OK(ReconstructDyadicNonstandard(bundle.store.get(), n, m, range_pos,
                                         Normalization::kAverage)
                .status());
  // M^d - 1 details + (2^d - 1)(n - m) path details + root = 15 + 9 + 1.
  EXPECT_EQ(bundle.manager->stats().coeff_reads, 25u);
}

TEST(ReconstructTest, ValidatesArguments) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = LoadedStandard(log_dims, Normalization::kAverage, 16);
  std::vector<uint32_t> too_big{4, 0};
  std::vector<uint64_t> pos{0, 0};
  EXPECT_FALSE(ReconstructDyadicStandard(bundle.store.get(), log_dims,
                                         too_big, pos,
                                         Normalization::kAverage)
                   .ok());
  std::vector<uint32_t> ok_log{2, 2};
  std::vector<uint64_t> bad_pos{2, 0};
  EXPECT_FALSE(ReconstructDyadicStandard(bundle.store.get(), log_dims, ok_log,
                                         bad_pos, Normalization::kAverage)
                   .ok());
  std::vector<uint64_t> lo{5, 0}, hi{3, 7};
  EXPECT_FALSE(ReconstructRangeStandard(bundle.store.get(), log_dims, lo, hi,
                                        Normalization::kAverage)
                   .ok());
}

}  // namespace
}  // namespace shiftsplit
