#include "shiftsplit/core/chunked_transform.h"

#include <gtest/gtest.h>

#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

struct StoreBundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
};

StoreBundle MakeStandardStore(std::vector<uint32_t> log_dims, uint32_t b,
                              uint64_t pool_blocks) {
  StoreBundle bundle;
  auto layout = std::make_unique<StandardTiling>(std::move(log_dims), b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(),
                              pool_blocks);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  bundle.store = std::move(r).value();
  return bundle;
}

StoreBundle MakeNonstandardStore(uint32_t d, uint32_t n, uint32_t b,
                                 uint64_t pool_blocks) {
  StoreBundle bundle;
  auto layout = std::make_unique<NonstandardTiling>(d, n, b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(),
                              pool_blocks);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  bundle.store = std::move(r).value();
  return bundle;
}

TEST(TransformDatasetStandardTest, MatchesDirectTransform) {
  auto dataset = MakeUniformDataset(TensorShape({16, 8}), -1.0, 1.0, 3);
  ASSERT_OK_AND_ASSIGN(Tensor direct, dataset->Materialize());
  ASSERT_OK(ForwardStandard(&direct, Normalization::kAverage));

  auto bundle = MakeStandardStore({4, 3}, 2, 64);
  ASSERT_OK_AND_ASSIGN(
      const TransformResult result,
      TransformDatasetStandard(dataset.get(), 2, bundle.store.get()));
  EXPECT_EQ(result.chunks, 8u);        // (16/4) * (8/4)
  EXPECT_EQ(result.cells_read, 128u);  // each data cell streamed once

  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, bundle.store->Get(address));
    ASSERT_NEAR(v, direct.At(address), 1e-9);
  } while (direct.shape().Next(address));
}

TEST(TransformDatasetStandardTest, ZOrderGivesSameResult) {
  auto dataset = MakeUniformDataset(TensorShape({8, 8}), 0.0, 5.0, 4);
  ASSERT_OK_AND_ASSIGN(Tensor direct, dataset->Materialize());
  ASSERT_OK(ForwardStandard(&direct, Normalization::kAverage));

  auto bundle = MakeStandardStore({3, 3}, 2, 64);
  TransformOptions options;
  options.zorder = true;
  ASSERT_OK(
      TransformDatasetStandard(dataset.get(), 1, bundle.store.get(), options)
          .status());
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, bundle.store->Get(address));
    ASSERT_NEAR(v, direct.At(address), 1e-9);
  } while (direct.shape().Next(address));
}

TEST(TransformDatasetStandardTest, ChunkLargerThanDimIsClamped) {
  auto dataset = MakeUniformDataset(TensorShape({4, 16}), 0.0, 1.0, 5);
  ASSERT_OK_AND_ASSIGN(Tensor direct, dataset->Materialize());
  ASSERT_OK(ForwardStandard(&direct, Normalization::kAverage));
  auto bundle = MakeStandardStore({2, 4}, 2, 64);
  // log_chunk = 3 > log_dims[0] = 2: per-dim chunk clamps to the extent.
  ASSERT_OK_AND_ASSIGN(
      const TransformResult result,
      TransformDatasetStandard(dataset.get(), 3, bundle.store.get()));
  EXPECT_EQ(result.chunks, 2u);
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, bundle.store->Get(address));
    ASSERT_NEAR(v, direct.At(address), 1e-9);
  } while (direct.shape().Next(address));
}

TEST(TransformDatasetNonstandardTest, MatchesDirectTransform) {
  auto dataset = MakeSmoothDataset(TensorShape::Cube(2, 16), 6);
  ASSERT_OK_AND_ASSIGN(Tensor direct, dataset->Materialize());
  ASSERT_OK(ForwardNonstandard(&direct, Normalization::kAverage));

  auto bundle = MakeNonstandardStore(2, 4, 2, 64);
  ASSERT_OK_AND_ASSIGN(
      const TransformResult result,
      TransformDatasetNonstandard(dataset.get(), 2, bundle.store.get()));
  EXPECT_EQ(result.chunks, 16u);
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, bundle.store->Get(address));
    ASSERT_NEAR(v, direct.At(address), 1e-9);
  } while (direct.shape().Next(address));
}

TEST(TransformDatasetNonstandardTest, RequiresCube) {
  auto dataset = MakeUniformDataset(TensorShape({4, 8}), 0.0, 1.0, 7);
  auto bundle = MakeNonstandardStore(2, 3, 2, 8);
  EXPECT_FALSE(
      TransformDatasetNonstandard(dataset.get(), 1, bundle.store.get()).ok());
}

TEST(TransformDatasetNonstandardTest, ZOrderReducesBlockIoUnderTinyPool) {
  // Result 2: with z-order traversal the split path tiles stay resident, so
  // a small pool suffices; row-major traversal thrashes the path tiles.
  const uint32_t d = 2, n = 5, m = 1, b = 1;
  auto make = [&]() { return MakeNonstandardStore(d, n, b, 8); };
  auto dataset = MakeUniformDataset(TensorShape::Cube(d, 1u << n), 0.0, 1.0,
                                    8);
  TransformOptions row_major;
  row_major.maintain_scaling_slots = false;
  TransformOptions zorder = row_major;
  zorder.zorder = true;

  auto bundle_rm = make();
  ASSERT_OK_AND_ASSIGN(const TransformResult rm,
                       TransformDatasetNonstandard(dataset.get(), m,
                                                   bundle_rm.store.get(),
                                                   row_major));
  auto bundle_z = make();
  ASSERT_OK_AND_ASSIGN(const TransformResult zo,
                       TransformDatasetNonstandard(dataset.get(), m,
                                                   bundle_z.store.get(),
                                                   zorder));
  EXPECT_LT(zo.store_io.total_blocks(), rm.store_io.total_blocks());
  // And the z-order cost approaches the optimal ~2x the number of blocks
  // (each written once, re-read bounded by path reuse).
  const uint64_t blocks = bundle_z.store->layout().num_blocks();
  EXPECT_LE(zo.store_io.total_blocks(), 4 * blocks);
}

TEST(TransformDatasetTest, IoStatsAreDeltas) {
  auto dataset = MakeUniformDataset(TensorShape({8, 8}), 0.0, 1.0, 9);
  auto bundle = MakeStandardStore({3, 3}, 2, 32);
  // Pre-touch the store so absolute counters are non-zero.
  std::vector<uint64_t> addr{0, 0};
  ASSERT_OK(bundle.store->Get(addr).status());
  ASSERT_OK_AND_ASSIGN(
      const TransformResult result,
      TransformDatasetStandard(dataset.get(), 1, bundle.store.get()));
  EXPECT_GT(result.store_io.coeff_writes, 0u);
  EXPECT_EQ(result.cells_read, 64u);
}

}  // namespace
}  // namespace shiftsplit
