#include "shiftsplit/core/updater.h"

#include <gtest/gtest.h>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

Tensor RandomTensor(TensorShape shape, uint64_t seed) {
  auto v = RandomVector(shape.num_elements(), seed);
  return Tensor(std::move(shape), std::move(v));
}

TEST(DyadicCoverTest, CoversExactlyOnce) {
  for (uint64_t lo = 0; lo < 32; ++lo) {
    for (uint64_t hi = lo; hi < 32; ++hi) {
      const auto cover = DyadicCover(lo, hi);
      std::vector<int> hits(64, 0);
      for (const auto& iv : cover) {
        for (uint64_t x = iv.begin(); x <= iv.last(); ++x) hits[x]++;
      }
      for (uint64_t x = 0; x < 64; ++x) {
        EXPECT_EQ(hits[x], (x >= lo && x <= hi) ? 1 : 0)
            << "lo=" << lo << " hi=" << hi << " x=" << x;
      }
      EXPECT_LE(cover.size(), 2u * 6u);
    }
  }
}

TEST(DyadicCoverTest, AlignedRangeIsOneInterval) {
  const auto cover = DyadicCover(8, 15);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].level, 3u);
  EXPECT_EQ(cover[0].index, 1u);
}

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
};

Bundle StandardBundle(std::vector<uint32_t> log_dims, uint32_t b = 2) {
  Bundle bundle;
  auto layout = std::make_unique<StandardTiling>(std::move(log_dims), b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 64);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  return bundle;
}

// Builds a store holding the transform of `data`.
void Load(TiledStore* store, const Tensor& data,
          std::span<const uint32_t> log_dims, Normalization norm) {
  std::vector<uint64_t> zero(data.shape().ndim(), 0);
  ASSERT_OK(ApplyChunkStandard(data, zero, log_dims, store, norm));
}

TEST(UpdaterTest, UnalignedRangeUpdateMatchesRetransform) {
  const std::vector<uint32_t> log_dims{4, 4};
  const Normalization norm = Normalization::kAverage;
  Tensor data = RandomTensor(TensorShape({16, 16}), 1);
  auto bundle = StandardBundle(log_dims);
  Load(bundle.store.get(), data, log_dims, norm);

  // An 8x4 delta box anchored at the unaligned origin (3, 5).
  Tensor deltas = RandomTensor(TensorShape({8, 4}), 2);
  std::vector<uint64_t> origin{3, 5};
  ASSERT_OK(UpdateRangeStandard(bundle.store.get(), log_dims, deltas, origin,
                                norm));

  Tensor updated = data;
  std::vector<uint64_t> local(2, 0), cell(2);
  do {
    cell[0] = origin[0] + local[0];
    cell[1] = origin[1] + local[1];
    updated.At(cell) += deltas.At(local);
  } while (deltas.shape().Next(local));
  ASSERT_OK(ForwardStandard(&updated, norm));

  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, bundle.store->Get(address));
    ASSERT_NEAR(v, updated.At(address), 1e-9);
  } while (updated.shape().Next(address));
}

TEST(UpdaterTest, DyadicUpdateTouchesFewCoefficients) {
  const std::vector<uint32_t> log_dims{6};
  auto bundle = StandardBundle(log_dims, 2);
  Tensor deltas = RandomTensor(TensorShape({8}), 3);
  std::vector<uint64_t> pos{3};
  bundle.manager->stats().Reset();
  ASSERT_OK(UpdateDyadicStandard(bundle.store.get(), log_dims, deltas, pos,
                                 Normalization::kAverage,
                                 /*maintain_scaling_slots=*/false));
  // Example 2: M - 1 shifted + (n - m + 1) split = 7 + 4 writes.
  EXPECT_EQ(bundle.manager->stats().coeff_writes, 11u);
}

TEST(UpdaterTest, NonstandardDyadicUpdate) {
  const uint32_t d = 2, n = 3;
  const Normalization norm = Normalization::kOrthonormal;
  Tensor data = RandomTensor(TensorShape::Cube(d, 8), 4);
  auto layout = std::make_unique<NonstandardTiling>(d, n, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 32));
  std::vector<uint64_t> zero(d, 0);
  ASSERT_OK(ApplyChunkNonstandard(data, zero, n, store.get(), norm));

  Tensor deltas = RandomTensor(TensorShape::Cube(d, 2), 5);
  std::vector<uint64_t> pos{1, 3};
  ASSERT_OK(UpdateDyadicNonstandard(store.get(), n, deltas, pos, norm));

  Tensor updated = data;
  std::vector<uint64_t> local(d, 0), cell(d);
  do {
    cell[0] = pos[0] * 2 + local[0];
    cell[1] = pos[1] * 2 + local[1];
    updated.At(cell) += deltas.At(local);
  } while (deltas.shape().Next(local));
  ASSERT_OK(ForwardNonstandard(&updated, norm));

  std::vector<uint64_t> address(d, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, updated.At(address), 1e-9);
  } while (updated.shape().Next(address));
}

TEST(UpdaterTest, UnalignedNonstandardRangeUpdateMatchesRetransform) {
  const uint32_t d = 2, n = 4;
  const Normalization norm = Normalization::kAverage;
  Tensor data = RandomTensor(TensorShape::Cube(d, 16), 6);
  auto layout = std::make_unique<NonstandardTiling>(d, n, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 128));
  std::vector<uint64_t> zero(d, 0);
  ASSERT_OK(ApplyChunkNonstandard(data, zero, n, store.get(), norm));

  // An 8x4 delta box at the unaligned origin (3, 9).
  Tensor deltas = RandomTensor(TensorShape({8, 4}), 7);
  std::vector<uint64_t> origin{3, 9};
  ASSERT_OK(UpdateRangeNonstandard(store.get(), n, deltas, origin, norm));

  Tensor updated = data;
  std::vector<uint64_t> local(2, 0), cell(2);
  do {
    cell[0] = origin[0] + local[0];
    cell[1] = origin[1] + local[1];
    updated.At(cell) += deltas.At(local);
  } while (deltas.shape().Next(local));
  ASSERT_OK(ForwardNonstandard(&updated, norm));

  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, updated.At(address), 1e-9);
  } while (updated.shape().Next(address));
}

TEST(UpdaterTest, NonstandardRangeUpdateValidates) {
  auto layout = std::make_unique<NonstandardTiling>(2, 3, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 8));
  Tensor deltas(TensorShape({4, 4}));
  std::vector<uint64_t> beyond{6, 0};
  EXPECT_FALSE(UpdateRangeNonstandard(store.get(), 3, deltas, beyond,
                                      Normalization::kAverage)
                   .ok());
  std::vector<uint64_t> wrong_d{0};
  EXPECT_FALSE(UpdateRangeNonstandard(store.get(), 3, deltas, wrong_d,
                                      Normalization::kAverage)
                   .ok());
}

TEST(UpdaterTest, ValidatesBounds) {
  const std::vector<uint32_t> log_dims{3, 3};
  auto bundle = StandardBundle(log_dims);
  Tensor deltas(TensorShape({4, 4}));
  std::vector<uint64_t> bad_origin{6, 0};  // 6 + 4 > 8
  EXPECT_FALSE(UpdateRangeStandard(bundle.store.get(), log_dims, deltas,
                                   bad_origin, Normalization::kAverage)
                   .ok());
  std::vector<uint64_t> wrong_d{0};
  EXPECT_FALSE(UpdateRangeStandard(bundle.store.get(), log_dims, deltas,
                                   wrong_d, Normalization::kAverage)
                   .ok());
}

}  // namespace
}  // namespace shiftsplit
