// Parity and I/O-count tests of the tile-batched apply path: the batched
// plan must produce bit-identical stores to the per-coefficient reference
// path (each (block, slot) is written exactly once per chunk, so grouping
// writes by block cannot change any value), while pinning each destination
// block once instead of once per coefficient. The parallel ingest pipeline
// commits plans in chunk order, so any thread count is byte-for-byte
// deterministic.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

Tensor RandomTensor(TensorShape shape, uint64_t seed) {
  auto v = RandomVector(shape.num_elements(), seed);
  return Tensor(std::move(shape), std::move(v));
}

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
};

Bundle MakeBundle(std::unique_ptr<TileLayout> layout, uint64_t pool_blocks) {
  Bundle bundle;
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r =
      TiledStore::Create(std::move(layout), bundle.manager.get(), pool_blocks);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  bundle.store = std::move(r).value();
  return bundle;
}

Bundle MakeStandard(const std::vector<uint32_t>& log_dims, uint32_t b,
                    uint64_t pool_blocks) {
  return MakeBundle(std::make_unique<StandardTiling>(log_dims, b),
                    pool_blocks);
}

Bundle MakeNonstandard(uint32_t d, uint32_t n, uint32_t b,
                       uint64_t pool_blocks) {
  return MakeBundle(std::make_unique<NonstandardTiling>(d, n, b),
                    pool_blocks);
}

Bundle MakeNaive(const std::vector<uint32_t>& log_dims, uint64_t capacity,
                 uint64_t pool_blocks) {
  return MakeBundle(std::make_unique<NaiveTiling>(log_dims, capacity),
                    pool_blocks);
}

// Bitwise comparison of the full device contents (after Flush).
void ExpectBitIdentical(BlockManager* a, BlockManager* b) {
  ASSERT_EQ(a->num_blocks(), b->num_blocks());
  std::vector<double> block_a(a->block_size()), block_b(b->block_size());
  ASSERT_EQ(block_a.size(), block_b.size());
  for (uint64_t id = 0; id < a->num_blocks(); ++id) {
    ASSERT_OK(a->ReadBlock(id, block_a));
    ASSERT_OK(b->ReadBlock(id, block_b));
    ASSERT_EQ(0, std::memcmp(block_a.data(), block_b.data(),
                             block_a.size() * sizeof(double)))
        << "block " << id << " differs";
  }
}

// Applies every chunk of `data` to the store with the given options.
void ApplyAllStandard(const Tensor& data, const TensorShape& chunk_shape,
                      std::span<const uint32_t> log_dims, TiledStore* store,
                      Normalization norm, const ApplyOptions& options) {
  std::vector<uint64_t> grid_dims(data.shape().ndim());
  for (uint32_t i = 0; i < grid_dims.size(); ++i) {
    grid_dims[i] = data.shape().dim(i) / chunk_shape.dim(i);
  }
  TensorShape grid(grid_dims);
  Tensor chunk(chunk_shape);
  std::vector<uint64_t> pos(grid_dims.size(), 0);
  do {
    std::vector<uint64_t> local(chunk_shape.ndim(), 0);
    std::vector<uint64_t> global(chunk_shape.ndim());
    do {
      for (uint32_t i = 0; i < chunk_shape.ndim(); ++i) {
        global[i] = pos[i] * chunk_shape.dim(i) + local[i];
      }
      chunk.At(local) = data.At(global);
    } while (chunk_shape.Next(local));
    ASSERT_OK(ApplyChunkStandard(chunk, pos, log_dims, store, norm, options));
  } while (grid.Next(pos));
}

struct ParityCase {
  ApplyMode mode = ApplyMode::kConstruct;
  bool maintain_scaling_slots = true;
  bool skip_zero_writes = false;
  Normalization norm = Normalization::kAverage;
};

class BatchedParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(BatchedParityTest, StandardStoreIsBitIdentical) {
  const ParityCase& c = GetParam();
  const std::vector<uint32_t> log_dims{4, 4};
  const TensorShape chunk_shape({4, 4});
  Tensor data = RandomTensor(TensorShape({16, 16}), 7);

  auto reference = MakeStandard(log_dims, 2, 256);
  auto batched = MakeStandard(log_dims, 2, 256);
  ApplyOptions options;
  options.mode = c.mode;
  options.maintain_scaling_slots = c.maintain_scaling_slots;
  options.skip_zero_writes = c.skip_zero_writes;

  options.batched = false;
  ApplyAllStandard(data, chunk_shape, log_dims, reference.store.get(),
                   c.norm, options);
  options.batched = true;
  ApplyAllStandard(data, chunk_shape, log_dims, batched.store.get(), c.norm,
                   options);

  ASSERT_OK(reference.store->Flush());
  ASSERT_OK(batched.store->Flush());
  ExpectBitIdentical(reference.manager.get(), batched.manager.get());
}

TEST_P(BatchedParityTest, NonstandardStoreIsBitIdentical) {
  const ParityCase& c = GetParam();
  const uint32_t d = 2, n = 4, m = 2;
  Tensor data = RandomTensor(TensorShape::Cube(d, uint64_t{1} << n), 11);

  auto reference = MakeNonstandard(d, n, 2, 256);
  auto batched = MakeNonstandard(d, n, 2, 256);
  ApplyOptions options;
  options.mode = c.mode;
  options.maintain_scaling_slots = c.maintain_scaling_slots;
  options.skip_zero_writes = c.skip_zero_writes;

  const TensorShape chunk_shape = TensorShape::Cube(d, uint64_t{1} << m);
  const TensorShape grid = TensorShape::Cube(d, uint64_t{1} << (n - m));
  Tensor chunk(chunk_shape);
  std::vector<uint64_t> pos(d, 0);
  do {
    std::vector<uint64_t> local(d, 0), global(d);
    do {
      for (uint32_t i = 0; i < d; ++i) {
        global[i] = pos[i] * chunk_shape.dim(i) + local[i];
      }
      chunk.At(local) = data.At(global);
    } while (chunk_shape.Next(local));
    options.batched = false;
    ASSERT_OK(ApplyChunkNonstandard(chunk, pos, n, reference.store.get(),
                                    c.norm, options));
    options.batched = true;
    ASSERT_OK(
        ApplyChunkNonstandard(chunk, pos, n, batched.store.get(), c.norm,
                              options));
  } while (grid.Next(pos));

  ASSERT_OK(reference.store->Flush());
  ASSERT_OK(batched.store->Flush());
  ExpectBitIdentical(reference.manager.get(), batched.manager.get());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BatchedParityTest,
    ::testing::Values(
        ParityCase{ApplyMode::kConstruct, true, false,
                   Normalization::kAverage},
        ParityCase{ApplyMode::kConstruct, true, false,
                   Normalization::kOrthonormal},
        ParityCase{ApplyMode::kConstruct, false, false,
                   Normalization::kAverage},
        ParityCase{ApplyMode::kUpdate, true, false, Normalization::kAverage},
        ParityCase{ApplyMode::kUpdate, false, false,
                   Normalization::kOrthonormal},
        ParityCase{ApplyMode::kConstruct, true, true,
                   Normalization::kAverage}));

TEST(BatchedParityTest, NaiveLayoutIsBitIdentical) {
  // Exercises the plan builder's address -> Locate branch (no per-dim parts,
  // no scaling slots).
  const std::vector<uint32_t> log_dims{3, 4};
  Tensor data = RandomTensor(TensorShape({8, 16}), 13);
  auto reference = MakeNaive(log_dims, 8, 64);
  auto batched = MakeNaive(log_dims, 8, 64);

  ApplyOptions options;
  options.batched = false;
  ApplyAllStandard(data, TensorShape({4, 4}), log_dims,
                   reference.store.get(), Normalization::kAverage, options);
  options.batched = true;
  ApplyAllStandard(data, TensorShape({4, 4}), log_dims, batched.store.get(),
                   Normalization::kAverage, options);

  ASSERT_OK(reference.store->Flush());
  ASSERT_OK(batched.store->Flush());
  ExpectBitIdentical(reference.manager.get(), batched.manager.get());
}

TEST(BatchedApplyTest, PinsEachDistinctBlockOnce) {
  // The acceptance criterion of the batched path: GetBlock calls per chunk
  // drop from one per coefficient write to one per distinct destination
  // block.
  const std::vector<uint32_t> log_dims{4, 4};
  const std::vector<uint64_t> pos{1, 2};
  Tensor chunk = RandomTensor(TensorShape({4, 4}), 17);

  auto batched = MakeStandard(log_dims, 2, 256);
  ASSERT_OK_AND_ASSIGN(
      const ChunkApplyPlan plan,
      PlanChunkStandard(chunk, pos, log_dims, batched.store->layout(),
                        Normalization::kAverage, ApplyOptions{}));
  ASSERT_GT(plan.total_ops, plan.blocks.size());

  ApplyOptions options;
  options.batched = true;
  ASSERT_OK(ApplyChunkStandard(chunk, pos, log_dims, batched.store.get(),
                               Normalization::kAverage, options));
  const BufferPool::Stats bs = batched.store->pool_stats();
  EXPECT_EQ(bs.hits + bs.misses, plan.blocks.size());

  auto reference = MakeStandard(log_dims, 2, 256);
  options.batched = false;
  ASSERT_OK(ApplyChunkStandard(chunk, pos, log_dims, reference.store.get(),
                               Normalization::kAverage, options));
  const BufferPool::Stats rs = reference.store->pool_stats();
  EXPECT_EQ(rs.hits + rs.misses, plan.total_ops);
}

TEST(BatchedApplyTest, PrefetchWarmsThePoolAndPreservesParity) {
  const std::vector<uint32_t> log_dims{4, 4};
  const TensorShape chunk_shape({4, 4});
  Tensor data = RandomTensor(TensorShape({16, 16}), 23);

  auto plain = MakeStandard(log_dims, 2, 256);
  auto prefetched = MakeStandard(log_dims, 2, 256);
  ApplyOptions options;
  options.batched = true;
  ApplyAllStandard(data, chunk_shape, log_dims, plain.store.get(),
                   Normalization::kAverage, options);
  options.prefetch = true;
  ApplyAllStandard(data, chunk_shape, log_dims, prefetched.store.get(),
                   Normalization::kAverage, options);

  const BufferPool::Stats stats = prefetched.store->pool_stats();
  EXPECT_GT(stats.prefetched, 0u);
  // Every block is resident by the time the batched writes pin it.
  EXPECT_EQ(stats.misses, 0u);

  ASSERT_OK(plain.store->Flush());
  ASSERT_OK(prefetched.store->Flush());
  ExpectBitIdentical(plain.manager.get(), prefetched.manager.get());
}

// Runs TransformDatasetStandard with the given thread count on a fresh
// store and returns the bundle.
Bundle IngestStandard(uint32_t num_threads, bool prefetch, bool zorder) {
  auto dataset = MakeUniformDataset(TensorShape({32, 32}), -1.0, 1.0, 5);
  auto bundle = MakeStandard({5, 5}, 2, 256);
  TransformOptions options;
  options.num_threads = num_threads;
  options.oversubscribe = true;  // exercise real workers even on 1-CPU hosts
  options.prefetch = prefetch;
  options.zorder = zorder;
  auto result =
      TransformDatasetStandard(dataset.get(), 3, bundle.store.get(), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) {
    EXPECT_EQ(result->chunks, 16u);
  }
  return bundle;
}

TEST(ParallelIngestTest, FourThreadsMatchSerialByteForByte) {
  auto serial = IngestStandard(1, false, false);
  auto parallel = IngestStandard(4, false, false);
  ExpectBitIdentical(serial.manager.get(), parallel.manager.get());
}

TEST(ParallelIngestTest, ThreadsWithPrefetchAndZOrderMatchSerial) {
  auto serial = IngestStandard(1, false, true);
  auto parallel = IngestStandard(4, true, true);
  ExpectBitIdentical(serial.manager.get(), parallel.manager.get());
}

TEST(ParallelIngestTest, NonstandardFourThreadsMatchSerial) {
  auto run = [](uint32_t num_threads) {
    auto dataset = MakeSmoothDataset(TensorShape::Cube(2, 32), 9);
    auto bundle = MakeNonstandard(2, 5, 2, 256);
    TransformOptions options;
    options.num_threads = num_threads;
    options.oversubscribe = true;
    auto result = TransformDatasetNonstandard(dataset.get(), 2,
                                              bundle.store.get(), options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (result.ok()) {
      EXPECT_EQ(result->chunks, 64u);
    }
    return bundle;
  };
  auto serial = run(1);
  auto parallel = run(4);
  ExpectBitIdentical(serial.manager.get(), parallel.manager.get());
}

TEST(ParallelIngestTest, MultipleThreadsRequireBatchedPath) {
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0.0, 1.0, 3);
  auto bundle = MakeStandard({4, 4}, 2, 256);
  TransformOptions options;
  options.num_threads = 2;
  options.batched = false;
  const auto result =
      TransformDatasetStandard(dataset.get(), 2, bundle.store.get(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shiftsplit
