#include "shiftsplit/core/wavelet_cube.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "shiftsplit/data/synthetic.h"
#include "testing.h"

namespace shiftsplit {
namespace {

class WaveletCubeTest : public ::testing::TestWithParam<StoreForm> {};

TEST_P(WaveletCubeTest, FullLifecycleInMemory) {
  const StoreForm form = GetParam();
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), -2.0, 2.0, 71);

  WaveletCube::Options options;
  options.form = form;
  ASSERT_OK_AND_ASSIGN(auto cube,
                       WaveletCube::CreateInMemory({4, 4}, options));
  ASSERT_OK(cube->Ingest(dataset.get(), 2));

  // Point queries.
  Xoshiro256 rng(72);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint64_t> p{rng.NextBounded(16), rng.NextBounded(16)};
    ASSERT_OK_AND_ASSIGN(const double v, cube->PointQuery(p));
    ASSERT_NEAR(v, dataset->Cell(p), 1e-9);
  }

  // Range sum.
  std::vector<uint64_t> lo{3, 5}, hi{11, 14};
  double brute = 0.0;
  std::vector<uint64_t> c(2);
  for (c[0] = lo[0]; c[0] <= hi[0]; ++c[0]) {
    for (c[1] = lo[1]; c[1] <= hi[1]; ++c[1]) brute += dataset->Cell(c);
  }
  ASSERT_OK_AND_ASSIGN(const double sum, cube->RangeSum(lo, hi));
  EXPECT_NEAR(sum, brute, 1e-8);

  // Update an unaligned box and re-check.
  Tensor deltas(TensorShape({4, 2}));
  deltas.Fill(0.5);
  std::vector<uint64_t> origin{5, 9};
  ASSERT_OK(cube->Update(deltas, origin));
  std::vector<uint64_t> probe{6, 10};
  ASSERT_OK_AND_ASSIGN(const double updated, cube->PointQuery(probe));
  EXPECT_NEAR(updated, dataset->Cell(probe) + 0.5, 1e-9);

  // Extract a box and verify cell-by-cell.
  std::vector<uint64_t> elo{4, 8}, ehi{9, 12};
  ASSERT_OK_AND_ASSIGN(Tensor box, cube->Extract(elo, ehi));
  for (uint64_t x = elo[0]; x <= ehi[0]; ++x) {
    for (uint64_t y = elo[1]; y <= ehi[1]; ++y) {
      std::vector<uint64_t> local{x - elo[0], y - elo[1]};
      std::vector<uint64_t> cell{x, y};
      double expected = dataset->Cell(cell);
      if (x >= 5 && x < 9 && y >= 9 && y < 11) expected += 0.5;
      ASSERT_NEAR(box.At(local), expected, 1e-9) << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Forms, WaveletCubeTest,
                         ::testing::Values(StoreForm::kStandard,
                                           StoreForm::kNonstandard));

TEST(WaveletCubeTest, OnDiskRoundTrip) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("shiftsplit_cube_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  auto dataset = MakeSmoothDataset(TensorShape({8, 16}), 73);
  {
    WaveletCube::Options options;
    options.b = 3;
    options.norm = Normalization::kOrthonormal;
    ASSERT_OK_AND_ASSIGN(auto cube,
                         WaveletCube::CreateOnDisk(dir, {3, 4}, options));
    ASSERT_OK(cube->Ingest(dataset.get(), 2));
    ASSERT_OK(cube->Flush());
  }
  {
    ASSERT_OK_AND_ASSIGN(auto cube, WaveletCube::OpenOnDisk(dir));
    EXPECT_EQ(cube->manifest().b, 3u);
    EXPECT_EQ(cube->manifest().norm, Normalization::kOrthonormal);
    std::vector<uint64_t> p{5, 11};
    ASSERT_OK_AND_ASSIGN(const double v, cube->PointQuery(p));
    EXPECT_NEAR(v, dataset->Cell(p), 1e-9);
  }
  fs::remove_all(dir);
}

TEST(WaveletCubeTest, CompressProducesUsableSynopsis) {
  auto dataset = MakeSmoothDataset(TensorShape({16, 16}), 74);
  ASSERT_OK_AND_ASSIGN(auto cube, WaveletCube::CreateInMemory(
                                      {4, 4}, WaveletCube::Options{}));
  ASSERT_OK(cube->Ingest(dataset.get(), 3));
  ASSERT_OK_AND_ASSIGN(const CompressedSynopsis synopsis,
                       cube->Compress(256));
  std::vector<uint64_t> p{7, 9};
  EXPECT_NEAR(synopsis.PointEstimate(p), dataset->Cell(p), 1e-9);
}

TEST(WaveletCubeTest, Validates) {
  WaveletCube::Options naive;
  naive.form = StoreForm::kNaive;
  EXPECT_FALSE(WaveletCube::CreateInMemory({3}, naive).ok());
  EXPECT_FALSE(WaveletCube::OpenOnDisk("/definitely/missing/path").ok());
  // Compress on a non-standard cube is unimplemented.
  WaveletCube::Options ns;
  ns.form = StoreForm::kNonstandard;
  auto cube_r = WaveletCube::CreateInMemory({3, 3}, ns);
  ASSERT_TRUE(cube_r.ok());
  EXPECT_EQ((*cube_r)->Compress(4).status().code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace shiftsplit
