#include "shiftsplit/core/synopsis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing.h"

namespace shiftsplit {
namespace {

TEST(TopKSynopsisTest, KeepsEverythingBelowCapacity) {
  TopKSynopsis synopsis(5);
  EXPECT_TRUE(synopsis.Offer(1, 0.5));
  EXPECT_TRUE(synopsis.Offer(2, -3.0));
  EXPECT_TRUE(synopsis.Offer(3, 0.0));
  EXPECT_EQ(synopsis.size(), 3u);
  EXPECT_TRUE(synopsis.Contains(2));
  EXPECT_DOUBLE_EQ(synopsis.ValueOrZero(2), -3.0);
  EXPECT_DOUBLE_EQ(synopsis.ValueOrZero(99), 0.0);
  EXPECT_DOUBLE_EQ(synopsis.MinMagnitude(), 0.0);  // not full yet
}

TEST(TopKSynopsisTest, EvictsSmallestMagnitude) {
  TopKSynopsis synopsis(2);
  EXPECT_TRUE(synopsis.Offer(1, 1.0));
  EXPECT_TRUE(synopsis.Offer(2, -5.0));
  EXPECT_TRUE(synopsis.Offer(3, 2.0));  // evicts key 1
  EXPECT_FALSE(synopsis.Contains(1));
  EXPECT_TRUE(synopsis.Contains(2));
  EXPECT_TRUE(synopsis.Contains(3));
  EXPECT_FALSE(synopsis.Offer(4, 1.5));  // too small
  EXPECT_EQ(synopsis.size(), 2u);
  EXPECT_DOUBLE_EQ(synopsis.MinMagnitude(), 2.0);
}

TEST(TopKSynopsisTest, ExtractIsSortedByMagnitude) {
  TopKSynopsis synopsis(4);
  synopsis.Offer(10, 1.0);
  synopsis.Offer(11, -4.0);
  synopsis.Offer(12, 2.5);
  synopsis.Offer(13, -0.5);
  const auto all = synopsis.Extract();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].first, 11u);
  EXPECT_EQ(all[1].first, 12u);
  EXPECT_EQ(all[2].first, 10u);
  EXPECT_EQ(all[3].first, 13u);
}

TEST(TopKSynopsisTest, MatchesOfflineTopKOnRandomStream) {
  const uint64_t kK = 16;
  TopKSynopsis synopsis(kK);
  auto values = testing::RandomVector(512, 77);
  for (uint64_t i = 0; i < values.size(); ++i) synopsis.Offer(i, values[i]);
  EXPECT_EQ(synopsis.offers(), 512u);

  std::vector<std::pair<double, uint64_t>> ranked;
  for (uint64_t i = 0; i < values.size(); ++i) {
    ranked.emplace_back(std::abs(values[i]), i);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (uint64_t i = 0; i < kK; ++i) {
    EXPECT_TRUE(synopsis.Contains(ranked[i].second))
        << "missing rank-" << i << " coefficient";
  }
}

TEST(TopKSynopsisTest, ZeroCapacityKeepsNothing) {
  TopKSynopsis synopsis(0);
  EXPECT_FALSE(synopsis.Offer(1, 100.0));
  EXPECT_EQ(synopsis.size(), 0u);
}

}  // namespace
}  // namespace shiftsplit
