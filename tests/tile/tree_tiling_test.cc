#include "shiftsplit/tile/tree_tiling.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "shiftsplit/wavelet/wavelet_index.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(TreeTilingTest, PaperFigure4Geometry) {
  // A 32-coefficient tree with B = 2^2. The top band is the short one when
  // b does not divide n (so the leaf bands stay full): bands of rows
  // {0}, {1,2}, {3,4}; tiles 1 + 2 + 8 = 11.
  TreeTiling tiling(5, 2);
  EXPECT_EQ(tiling.num_bands(), 3u);
  EXPECT_EQ(tiling.TilesInBand(0), 1u);
  EXPECT_EQ(tiling.TilesInBand(1), 2u);
  EXPECT_EQ(tiling.TilesInBand(2), 8u);
  EXPECT_EQ(tiling.num_tiles(), 11u);
  EXPECT_EQ(tiling.tile_capacity(), 4u);
  EXPECT_EQ(tiling.BandHeight(0), 1u);  // short top band
  EXPECT_EQ(tiling.BandHeight(1), 2u);
  EXPECT_EQ(tiling.BandHeight(2), 2u);
  EXPECT_EQ(tiling.BandRootRow(1), 1u);
  EXPECT_EQ(tiling.BandRootRow(2), 3u);
}

TEST(TreeTilingTest, AlignedGeometryMatchesFigure4) {
  // With b | n every band has height b: n=6, b=2 -> rows {0,1},{2,3},{4,5},
  // tiles 1 + 4 + 16 = 21 — the paper's Figure 4 shape.
  TreeTiling tiling(6, 2);
  EXPECT_EQ(tiling.num_bands(), 3u);
  EXPECT_EQ(tiling.TilesInBand(0), 1u);
  EXPECT_EQ(tiling.TilesInBand(1), 4u);
  EXPECT_EQ(tiling.TilesInBand(2), 16u);
  EXPECT_EQ(tiling.num_tiles(), 21u);
  EXPECT_EQ(tiling.BandHeight(0), 2u);
  EXPECT_EQ(tiling.BandHeight(2), 2u);
}

TEST(TreeTilingTest, TopTileContents) {
  TreeTiling tiling(6, 2);
  // Scaling root and w_{6,0}, w_{5,0}, w_{5,1} share tile 0.
  EXPECT_EQ(tiling.Locate(0), (BlockSlot{0, 0}));
  EXPECT_EQ(tiling.Locate(DetailIndex(6, 6, 0)), (BlockSlot{0, 1}));
  EXPECT_EQ(tiling.Locate(DetailIndex(6, 5, 0)), (BlockSlot{0, 2}));
  EXPECT_EQ(tiling.Locate(DetailIndex(6, 5, 1)), (BlockSlot{0, 3}));
}

TEST(TreeTilingTest, SecondBandTiles) {
  TreeTiling tiling(6, 2);
  // Band 1 roots: w_{4,q}, q in [0,4). Tile of w_{4,2} is 1 + 2 = 3; its
  // children w_{3,4} and w_{3,5} share it.
  EXPECT_EQ(tiling.Locate(DetailIndex(6, 4, 2)), (BlockSlot{3, 1}));
  EXPECT_EQ(tiling.Locate(DetailIndex(6, 3, 4)), (BlockSlot{3, 2}));
  EXPECT_EQ(tiling.Locate(DetailIndex(6, 3, 5)), (BlockSlot{3, 3}));
}

TEST(TreeTilingTest, ShortTopBandKeepsLeafBandsFull) {
  // n=5, b=2: band 0 holds only w_{5,0} (plus the scaling); band 1 subtrees
  // are full-height, e.g. tile of w_{4,1} holds w_{3,2} and w_{3,3}.
  TreeTiling tiling(5, 2);
  EXPECT_EQ(tiling.Locate(0), (BlockSlot{0, 0}));
  EXPECT_EQ(tiling.Locate(DetailIndex(5, 5, 0)), (BlockSlot{0, 1}));
  EXPECT_EQ(tiling.Locate(DetailIndex(5, 4, 1)), (BlockSlot{2, 1}));
  EXPECT_EQ(tiling.Locate(DetailIndex(5, 3, 2)), (BlockSlot{2, 2}));
  EXPECT_EQ(tiling.Locate(DetailIndex(5, 3, 3)), (BlockSlot{2, 3}));
}

TEST(TreeTilingTest, EveryIndexGetsDistinctSlot) {
  const uint32_t n = 7, b = 3;
  TreeTiling tiling(n, b);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
    const BlockSlot at = tiling.Locate(idx);
    EXPECT_LT(at.block, tiling.num_tiles());
    EXPECT_LT(at.slot, tiling.tile_capacity());
    EXPECT_TRUE(seen.insert({at.block, at.slot}).second)
        << "slot collision for index " << idx;
  }
}

TEST(TreeTilingTest, PrimaryCoefficientsNeverUseSlotZeroExceptRoot) {
  // Slot 0 is reserved for the subtree-root scaling; only flat index 0 (the
  // overall average, which IS the top tile's scaling) may use it.
  TreeTiling tiling(6, 2);
  for (uint64_t idx = 1; idx < 64; ++idx) {
    EXPECT_NE(tiling.Locate(idx).slot, 0u) << "index " << idx;
  }
}

TEST(TreeTilingTest, TileContentsAreSubtrees) {
  // All details mapped to one tile form a connected subtree: each non-root
  // member's parent lives in the same tile.
  const uint32_t n = 6, b = 2;
  TreeTiling tiling(n, b);
  std::map<uint64_t, std::vector<uint64_t>> members;
  for (uint64_t idx = 1; idx < (uint64_t{1} << n); ++idx) {
    members[tiling.Locate(idx).block].push_back(idx);
  }
  for (const auto& [block, indices] : members) {
    int roots = 0;
    for (uint64_t idx : indices) {
      const uint64_t parent = ParentIndex(idx);
      if (parent >= 1 && tiling.Locate(parent).block == block) continue;
      ++roots;
    }
    EXPECT_EQ(roots, 1) << "tile " << block << " is not a single subtree";
  }
}

TEST(TreeTilingTest, PathToRootTouchesOneTilePerBand) {
  // The block-allocation goal: a point query's path costs ceil(n/b) tiles.
  const uint32_t n = 8, b = 3;
  TreeTiling tiling(n, b);
  for (uint64_t t = 0; t < (uint64_t{1} << n); t += 7) {
    std::set<uint64_t> tiles;
    for (uint64_t idx : PathToRoot(n, t)) {
      tiles.insert(tiling.Locate(idx).block);
    }
    EXPECT_EQ(tiles.size(), tiling.num_bands());
  }
}

TEST(TreeTilingTest, ScalingSlots) {
  TreeTiling tiling(6, 2);
  // Band-root levels are 6, 4, 2.
  EXPECT_TRUE(tiling.IsScalingLevel(6));
  EXPECT_TRUE(tiling.IsScalingLevel(4));
  EXPECT_TRUE(tiling.IsScalingLevel(2));
  EXPECT_FALSE(tiling.IsScalingLevel(5));
  EXPECT_FALSE(tiling.IsScalingLevel(3));
  EXPECT_FALSE(tiling.IsScalingLevel(1));

  ASSERT_OK_AND_ASSIGN(BlockSlot at, tiling.LocateScaling(4, 2));
  EXPECT_EQ(at.slot, 0u);
  // u_{4,2} sits at slot 0 of the tile rooted at w_{4,2} (band 1, tile 1+2).
  EXPECT_EQ(at.block, tiling.Locate(DetailIndex(6, 4, 2)).block);

  EXPECT_FALSE(tiling.LocateScaling(3, 0).ok());
  EXPECT_FALSE(tiling.LocateScaling(4, 4).ok());  // beyond level width
}

TEST(TreeTilingTest, ScalingSlotsWithinAndAbove) {
  TreeTiling tiling(6, 2);
  // Chunk m=3, k=5 covers [40, 47]. Band-root levels <= 3: level 2.
  const auto within = tiling.ScalingSlotsWithin(3, 5);
  ASSERT_EQ(within.size(), 2u);
  EXPECT_EQ(within[0], (std::pair<uint32_t, uint64_t>{2, 10}));
  EXPECT_EQ(within[1], (std::pair<uint32_t, uint64_t>{2, 11}));
  // Levels above 3 at band roots: 6 (pos 0) and 4 (pos 5>>1 = 2).
  const auto above = tiling.ScalingSlotsAbove(3, 5);
  ASSERT_EQ(above.size(), 2u);
  EXPECT_EQ(above[0], (std::pair<uint32_t, uint64_t>{6, 0}));
  EXPECT_EQ(above[1], (std::pair<uint32_t, uint64_t>{4, 2}));
}

TEST(TreeTilingTest, DegenerateSingleCoefficient) {
  TreeTiling tiling(0, 2);
  EXPECT_EQ(tiling.num_tiles(), 1u);
  EXPECT_EQ(tiling.Locate(0), (BlockSlot{0, 0}));
}

TEST(TreeTilingTest, BlockLargerThanTree) {
  // b > n: one tile holds the entire tree.
  TreeTiling tiling(3, 5);
  EXPECT_EQ(tiling.num_bands(), 1u);
  EXPECT_EQ(tiling.num_tiles(), 1u);
  EXPECT_EQ(tiling.BandHeight(0), 3u);
  std::set<uint64_t> slots;
  for (uint64_t idx = 0; idx < 8; ++idx) {
    const BlockSlot at = tiling.Locate(idx);
    EXPECT_EQ(at.block, 0u);
    EXPECT_TRUE(slots.insert(at.slot).second);
  }
}

TEST(TreeTilingLayoutTest, ValidatesAddresses) {
  TreeTilingLayout layout(4, 2);
  EXPECT_EQ(layout.ndim(), 1u);
  EXPECT_EQ(layout.block_capacity(), 4u);
  std::vector<uint64_t> good{7};
  EXPECT_TRUE(layout.Locate(good).ok());
  std::vector<uint64_t> big{16};
  EXPECT_FALSE(layout.Locate(big).ok());
  std::vector<uint64_t> wrong_d{1, 2};
  EXPECT_FALSE(layout.Locate(wrong_d).ok());
}

class TreeTilingPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(TreeTilingPropertyTest, SlotsArePackedTightlyPerBand) {
  const auto [n, b] = GetParam();
  TreeTiling tiling(n, b);
  // Within full-height bands every non-zero slot is used exactly once.
  std::map<uint64_t, std::set<uint64_t>> used;
  for (uint64_t idx = 1; idx < (uint64_t{1} << n); ++idx) {
    const BlockSlot at = tiling.Locate(idx);
    EXPECT_TRUE(used[at.block].insert(at.slot).second);
  }
  for (uint32_t band = 0; band < tiling.num_bands(); ++band) {
    const uint64_t expected = (uint64_t{1} << tiling.BandHeight(band)) - 1;
    for (uint64_t tile = tiling.BandFirstTile(band);
         tile < tiling.BandFirstTile(band) + tiling.TilesInBand(band);
         ++tile) {
      // Tile 0 also holds flat index 0 at slot 0, not counted here.
      EXPECT_EQ(used[tile].size(), expected) << "tile " << tile;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TreeTilingPropertyTest,
    ::testing::Combine(::testing::Values(1u, 3u, 4u, 6u, 9u),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace shiftsplit
