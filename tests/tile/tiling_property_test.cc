// Cross-layout property sweeps: for every (d, n, b) configuration, every
// layout must map every coefficient address to a distinct in-range slot,
// and the tree tilings must reserve slot 0 of every tile for the scaling
// coefficient.

#include <gtest/gtest.h>

#include <set>

#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/tensor.h"
#include "testing.h"

namespace shiftsplit {
namespace {

struct Config {
  uint32_t d;
  uint32_t n;
  uint32_t b;
};

class TilingPropertyTest : public ::testing::TestWithParam<Config> {};

void CheckBijection(const TileLayout& layout, uint32_t d, uint32_t n) {
  TensorShape shape = TensorShape::Cube(d, uint64_t{1} << n);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  std::vector<uint64_t> address(d, 0);
  do {
    auto at = layout.Locate(address);
    ASSERT_TRUE(at.ok()) << at.status().ToString();
    ASSERT_LT(at->block, layout.num_blocks());
    ASSERT_LT(at->slot, layout.block_capacity());
    ASSERT_TRUE(seen.insert({at->block, at->slot}).second)
        << "slot collision in " << layout.ToString();
  } while (shape.Next(address));
  ASSERT_EQ(seen.size(), shape.num_elements());
}

TEST_P(TilingPropertyTest, StandardLocateIsInjective) {
  const Config& c = GetParam();
  StandardTiling tiling(std::vector<uint32_t>(c.d, c.n), c.b);
  CheckBijection(tiling, c.d, c.n);
}

TEST_P(TilingPropertyTest, NonstandardLocateIsInjective) {
  const Config& c = GetParam();
  NonstandardTiling tiling(c.d, c.n, c.b);
  CheckBijection(tiling, c.d, c.n);
}

TEST_P(TilingPropertyTest, NaiveLocateIsInjective) {
  const Config& c = GetParam();
  NaiveTiling tiling(std::vector<uint32_t>(c.d, c.n),
                     uint64_t{1} << (c.b * c.d));
  CheckBijection(tiling, c.d, c.n);
}

TEST_P(TilingPropertyTest, ScalingSlotsNeverCollideWithDetails) {
  const Config& c = GetParam();
  NonstandardTiling tiling(c.d, c.n, c.b);
  // Every reserved node-scaling slot is slot 0 of some block, and no
  // detail coefficient maps there (checked by the bijection above plus the
  // invariant that details of non-top tiles use slots >= 1).
  for (uint32_t level = 1; level <= c.n; ++level) {
    if (!tiling.IsScalingLevel(level)) continue;
    std::vector<uint64_t> node(c.d, 0);
    TensorShape grid = TensorShape::Cube(c.d, uint64_t{1} << (c.n - level));
    std::set<uint64_t> blocks;
    do {
      auto at = tiling.LocateScaling(level, node);
      ASSERT_TRUE(at.ok());
      EXPECT_EQ(at->slot, 0u);
      EXPECT_TRUE(blocks.insert(at->block).second);
    } while (grid.Next(node));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TilingPropertyTest,
    ::testing::Values(Config{1, 6, 2}, Config{1, 7, 3}, Config{2, 4, 1},
                      Config{2, 5, 2}, Config{2, 5, 3}, Config{3, 3, 1},
                      Config{3, 4, 2}, Config{4, 2, 1}, Config{4, 3, 2}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "d" + std::to_string(info.param.d) + "n" +
             std::to_string(info.param.n) + "b" +
             std::to_string(info.param.b);
    });

}  // namespace
}  // namespace shiftsplit
