#include "shiftsplit/tile/nonstandard_tiling.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing.h"

namespace shiftsplit {
namespace {

TEST(NonstandardTilingTest, PaperFigure7Geometry) {
  // 8x8 array, disk blocks of 4x4 (b=2). The short band sits at the top
  // (rows {0}, {1,2}): 1 tile + (2^1)^2 = 4 tiles.
  NonstandardTiling tiling(2, 3, 2);
  EXPECT_EQ(tiling.ndim(), 2u);
  EXPECT_EQ(tiling.num_bands(), 2u);
  EXPECT_EQ(tiling.num_blocks(), 5u);
  EXPECT_EQ(tiling.block_capacity(), 16u);  // B^d
}

TEST(NonstandardTilingTest, AlignedGeometry) {
  // 16x16 array, 4x4 blocks: bands rows {0,1},{2,3}; 1 + 16 tiles, each a
  // full height-2 quadtree subtree of B^d = 16 coefficients (Figure 7).
  NonstandardTiling tiling(2, 4, 2);
  EXPECT_EQ(tiling.num_bands(), 2u);
  EXPECT_EQ(tiling.num_blocks(), 17u);
  EXPECT_EQ(tiling.block_capacity(), 16u);
}

TEST(NonstandardTilingTest, RootSharesTopTile) {
  NonstandardTiling tiling(2, 3, 2);
  std::vector<uint64_t> zero{0, 0};
  ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.Locate(zero));
  EXPECT_EQ(at, (BlockSlot{0, 0}));
}

TEST(NonstandardTilingTest, LocateIsInjectiveAndInRange) {
  const uint32_t d = 2, n = 3, b = 2;
  NonstandardTiling tiling(d, n, b);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  std::vector<uint64_t> address(d);
  for (address[0] = 0; address[0] < 8; ++address[0]) {
    for (address[1] = 0; address[1] < 8; ++address[1]) {
      ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.Locate(address));
      EXPECT_LT(at.block, tiling.num_blocks());
      EXPECT_LT(at.slot, tiling.block_capacity());
      EXPECT_TRUE(seen.insert({at.block, at.slot}).second)
          << "collision at (" << address[0] << "," << address[1] << ")";
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(NonstandardTilingTest, NodeCoefficientsShareTile) {
  // The 2^d - 1 subband coefficients of one quadtree node always share a
  // tile, at consecutive slots.
  NonstandardTiling tiling(2, 4, 2);
  NsCoeffId id;
  id.level = 2;
  id.node = {1, 3};
  std::set<uint64_t> blocks;
  std::vector<uint64_t> slots;
  for (uint64_t sigma = 1; sigma < 4; ++sigma) {
    id.subband = sigma;
    ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.LocateCoeff(id));
    blocks.insert(at.block);
    slots.push_back(at.slot);
  }
  EXPECT_EQ(blocks.size(), 1u);
  EXPECT_EQ(slots[1], slots[0] + 1);
  EXPECT_EQ(slots[2], slots[1] + 1);
}

TEST(NonstandardTilingTest, QuadtreePathTouchesOneTilePerBand) {
  const uint32_t d = 2, n = 4, b = 2;
  NonstandardTiling tiling(d, n, b);
  // Reconstructing point (5, 11) uses nodes (j, point >> j) at every level.
  std::set<uint64_t> tiles;
  NsCoeffId id;
  for (uint32_t j = 1; j <= n; ++j) {
    id.level = j;
    id.node = {uint64_t{5} >> j, uint64_t{11} >> j};
    for (uint64_t sigma = 1; sigma < 4; ++sigma) {
      id.subband = sigma;
      ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.LocateCoeff(id));
      tiles.insert(at.block);
    }
  }
  EXPECT_EQ(tiles.size(), tiling.num_bands());
}

TEST(NonstandardTilingTest, SubtreeMembersHaveAncestorsInTile) {
  // All coefficients in a tile belong to one height-b quadtree subtree.
  const uint32_t d = 2, n = 4, b = 2;
  NonstandardTiling tiling(d, n, b);
  std::map<uint64_t, std::set<std::pair<uint32_t, std::vector<uint64_t>>>>
      nodes_by_tile;
  std::vector<uint64_t> address(d);
  for (address[0] = 0; address[0] < 16; ++address[0]) {
    for (address[1] = 0; address[1] < 16; ++address[1]) {
      const NsCoeffId id = NsCoeffOfAddress(n, address);
      if (id.is_scaling) continue;
      ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.LocateCoeff(id));
      nodes_by_tile[at.block].insert({id.level, id.node});
    }
  }
  for (const auto& [tile, nodes] : nodes_by_tile) {
    // Node count of a full height-b subtree: (D^b - 1) / (D - 1) = 5,
    // or 1 for the short leaf band... here both bands have height 2.
    EXPECT_EQ(nodes.size(), 5u) << "tile " << tile;
  }
}

TEST(NonstandardTilingTest, ScalingSlots) {
  NonstandardTiling tiling(2, 4, 2);
  EXPECT_TRUE(tiling.IsScalingLevel(4));
  EXPECT_TRUE(tiling.IsScalingLevel(2));
  EXPECT_FALSE(tiling.IsScalingLevel(3));
  EXPECT_FALSE(tiling.IsScalingLevel(1));

  std::vector<uint64_t> node{2, 3};
  ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.LocateScaling(2, node));
  EXPECT_EQ(at.slot, 0u);
  // Slot 0 of the tile containing that node's coefficients.
  NsCoeffId id;
  id.level = 2;
  id.node = {2, 3};
  id.subband = 1;
  ASSERT_OK_AND_ASSIGN(const BlockSlot coeff_at, tiling.LocateCoeff(id));
  EXPECT_EQ(at.block, coeff_at.block);

  EXPECT_FALSE(tiling.LocateScaling(3, node).ok());
  std::vector<uint64_t> big{4, 0};
  EXPECT_FALSE(tiling.LocateScaling(2, big).ok());
}

TEST(NonstandardTilingTest, ScalingNodesWithinAndAbove) {
  NonstandardTiling tiling(2, 4, 2);
  std::vector<uint64_t> chunk{1, 0};  // chunk cube edge 2^3 at (1, 0)
  const auto within = tiling.ScalingNodesWithin(3, chunk);
  // Band-root levels <= 3: level 2. Nodes: 2x2 grid at (2..3, 0..1).
  ASSERT_EQ(within.size(), 4u);
  EXPECT_EQ(within[0].first, 2u);
  EXPECT_EQ(within[0].second, (std::vector<uint64_t>{2, 0}));
  EXPECT_EQ(within[3].second, (std::vector<uint64_t>{3, 1}));
  const auto above = tiling.ScalingNodesAbove(3, chunk);
  ASSERT_EQ(above.size(), 1u);
  EXPECT_EQ(above[0].first, 4u);
  EXPECT_EQ(above[0].second, (std::vector<uint64_t>{0, 0}));
}

TEST(NonstandardTilingTest, ThreeDimensional) {
  NonstandardTiling tiling(3, 2, 1);
  // d=3, n=2, b=1: bands rows {0},{1}; blocks 1 + 8; capacity 2^3.
  EXPECT_EQ(tiling.num_blocks(), 9u);
  EXPECT_EQ(tiling.block_capacity(), 8u);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  std::vector<uint64_t> address(3);
  for (address[0] = 0; address[0] < 4; ++address[0]) {
    for (address[1] = 0; address[1] < 4; ++address[1]) {
      for (address[2] = 0; address[2] < 4; ++address[2]) {
        ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.Locate(address));
        EXPECT_TRUE(seen.insert({at.block, at.slot}).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(NonstandardTilingTest, RejectsBadInput) {
  NonstandardTiling tiling(2, 3, 2);
  std::vector<uint64_t> wrong_d{0};
  EXPECT_FALSE(tiling.Locate(wrong_d).ok());
  std::vector<uint64_t> too_big{8, 0};
  EXPECT_FALSE(tiling.Locate(too_big).ok());
}

}  // namespace
}  // namespace shiftsplit
