#include "shiftsplit/tile/tiled_store.h"

#include <gtest/gtest.h>

#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/tree_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

std::unique_ptr<TiledStore> MakeStore(MemoryBlockManager* manager,
                                      uint64_t pool_blocks = 4) {
  auto layout = std::make_unique<TreeTilingLayout>(4, 2);
  auto r = TiledStore::Create(std::move(layout), manager, pool_blocks);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(TiledStoreTest, CreateValidates) {
  MemoryBlockManager manager(4);
  EXPECT_FALSE(
      TiledStore::Create(nullptr, &manager, 1).ok());
  EXPECT_FALSE(TiledStore::Create(std::make_unique<TreeTilingLayout>(4, 2),
                                  nullptr, 1)
                   .ok());
  EXPECT_FALSE(TiledStore::Create(std::make_unique<TreeTilingLayout>(4, 2),
                                  &manager, 0)
                   .ok());
  MemoryBlockManager wrong_size(8);
  EXPECT_FALSE(TiledStore::Create(std::make_unique<TreeTilingLayout>(4, 2),
                                  &wrong_size, 1)
                   .ok());
}

TEST(TiledStoreTest, CreateResizesManagerToLayout) {
  MemoryBlockManager manager(4);
  auto store = MakeStore(&manager);
  // n=4, b=2: bands {0,1},{2,3} -> 1 + 4 = 5 tiles.
  EXPECT_EQ(manager.num_blocks(), 5u);
}

TEST(TiledStoreTest, GetSetAddRoundTrip) {
  MemoryBlockManager manager(4);
  auto store = MakeStore(&manager);
  std::vector<uint64_t> addr{5};
  ASSERT_OK(store->Set(addr, 2.5));
  ASSERT_OK_AND_ASSIGN(double v, store->Get(addr));
  EXPECT_DOUBLE_EQ(v, 2.5);
  ASSERT_OK(store->Add(addr, -1.0));
  ASSERT_OK_AND_ASSIGN(v, store->Get(addr));
  EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(TiledStoreTest, UnwrittenCoefficientsReadZero) {
  MemoryBlockManager manager(4);
  auto store = MakeStore(&manager);
  for (uint64_t i = 0; i < 16; ++i) {
    std::vector<uint64_t> addr{i};
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(addr));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(TiledStoreTest, FlushPersistsThroughManager) {
  MemoryBlockManager manager(4);
  {
    auto store = MakeStore(&manager, 2);
    for (uint64_t i = 0; i < 16; ++i) {
      std::vector<uint64_t> addr{i};
      ASSERT_OK(store->Set(addr, static_cast<double>(i)));
    }
    ASSERT_OK(store->Flush());
  }
  // Re-open over the same manager: values must be there.
  auto store = MakeStore(&manager);
  for (uint64_t i = 0; i < 16; ++i) {
    std::vector<uint64_t> addr{i};
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(addr));
    EXPECT_DOUBLE_EQ(v, static_cast<double>(i));
  }
}

TEST(TiledStoreTest, CoefficientIoIsCounted) {
  MemoryBlockManager manager(4);
  auto store = MakeStore(&manager);
  std::vector<uint64_t> addr{3};
  ASSERT_OK(store->Set(addr, 1.0));
  ASSERT_OK(store->Add(addr, 1.0));
  ASSERT_OK(store->Get(addr).status());
  EXPECT_EQ(store->stats().coeff_writes, 2u);
  EXPECT_EQ(store->stats().coeff_reads, 1u);
}

TEST(TiledStoreTest, BlockIoReflectsPoolBudget) {
  MemoryBlockManager manager(4);
  auto store = MakeStore(&manager, /*pool_blocks=*/1);
  // Indices 4 and 15 are in different tiles (band-1 tiles 1 and 4); a
  // single-frame pool must re-read on every alternation.
  std::vector<uint64_t> a{4}, b{15};
  manager.stats().Reset();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(store->Get(a).status());
    ASSERT_OK(store->Get(b).status());
  }
  EXPECT_EQ(manager.stats().block_reads, 6u);

  // A two-frame pool reads each tile once.
  MemoryBlockManager manager2(4);
  auto store2 = MakeStore(&manager2, /*pool_blocks=*/2);
  manager2.stats().Reset();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(store2->Get(a).status());
    ASSERT_OK(store2->Get(b).status());
  }
  EXPECT_EQ(manager2.stats().block_reads, 2u);
}

TEST(TiledStoreTest, SlotAccessMatchesAddressAccess) {
  MemoryBlockManager manager(4);
  auto store = MakeStore(&manager);
  std::vector<uint64_t> addr{9};
  ASSERT_OK_AND_ASSIGN(const BlockSlot at, store->layout().Locate(addr));
  ASSERT_OK(store->SetAt(at, 4.5));
  ASSERT_OK_AND_ASSIGN(double v, store->Get(addr));
  EXPECT_DOUBLE_EQ(v, 4.5);
  ASSERT_OK(store->AddAt(at, 0.5));
  ASSERT_OK_AND_ASSIGN(v, store->GetAt(at));
  EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(TiledStoreTest, WorksWithNaiveLayout) {
  MemoryBlockManager manager(8);
  auto layout = std::make_unique<NaiveTiling>(std::vector<uint32_t>{3, 2}, 8);
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 2));
  std::vector<uint64_t> addr{7, 3};
  ASSERT_OK(store->Set(addr, 1.25));
  ASSERT_OK_AND_ASSIGN(const double v, store->Get(addr));
  EXPECT_DOUBLE_EQ(v, 1.25);
  std::vector<uint64_t> bad{8, 0};
  EXPECT_FALSE(store->Get(bad).ok());
}

}  // namespace
}  // namespace shiftsplit
