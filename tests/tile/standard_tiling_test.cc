#include "shiftsplit/tile/standard_tiling.h"

#include <gtest/gtest.h>

#include <set>

#include "shiftsplit/wavelet/wavelet_index.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(StandardTilingTest, BlockAndCapacityCounts) {
  StandardTiling tiling({4, 4}, 2);
  // Per dim: bands {0,1},{2,3} -> 1 + 4 = 5 tiles.
  EXPECT_EQ(tiling.ndim(), 2u);
  EXPECT_EQ(tiling.num_blocks(), 25u);
  EXPECT_EQ(tiling.block_capacity(), 16u);  // B^d = 4^2
}

TEST(StandardTilingTest, MixedDimensionSizes) {
  StandardTiling tiling({3, 5}, 2);
  // Short top bands: dim0 rows {0},{1,2} -> 1 + 2 = 3 tiles; dim1 rows
  // {0},{1,2},{3,4} -> 1 + 2 + 8 = 11 tiles.
  EXPECT_EQ(tiling.num_blocks(), 3u * 11u);
  EXPECT_EQ(tiling.block_capacity(), 16u);
}

TEST(StandardTilingTest, LocateIsInjective) {
  StandardTiling tiling({3, 4}, 2);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  std::vector<uint64_t> address(2);
  for (address[0] = 0; address[0] < 8; ++address[0]) {
    for (address[1] = 0; address[1] < 16; ++address[1]) {
      ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.Locate(address));
      EXPECT_LT(at.block, tiling.num_blocks());
      EXPECT_LT(at.slot, tiling.block_capacity());
      EXPECT_TRUE(seen.insert({at.block, at.slot}).second);
    }
  }
  EXPECT_EQ(seen.size(), 8u * 16u);
}

TEST(StandardTilingTest, CombinesPerDimensionLocations) {
  StandardTiling tiling({4, 4}, 2);
  const TreeTiling& dim0 = tiling.dim_tiling(0);
  const TreeTiling& dim1 = tiling.dim_tiling(1);
  std::vector<uint64_t> address{DetailIndex(4, 2, 1), DetailIndex(4, 1, 5)};
  ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.Locate(address));
  const BlockSlot p0 = dim0.Locate(address[0]);
  const BlockSlot p1 = dim1.Locate(address[1]);
  EXPECT_EQ(at.block, p0.block * dim1.num_tiles() + p1.block);
  EXPECT_EQ(at.slot, p0.slot * dim1.tile_capacity() + p1.slot);
  const BlockSlot parts[] = {p0, p1};
  EXPECT_EQ(tiling.Combine(parts), at);
}

TEST(StandardTilingTest, CrossProductOfSameSupportStaysInOneBlock) {
  // Coefficients whose two 1-d indices fall in the same per-dim tiles share
  // a block — the access-pattern property the allocation optimizes for.
  StandardTiling tiling({4, 4}, 2);
  std::vector<uint64_t> a{DetailIndex(4, 2, 0), DetailIndex(4, 2, 1)};
  std::vector<uint64_t> b{DetailIndex(4, 1, 1), DetailIndex(4, 1, 3)};
  ASSERT_OK_AND_ASSIGN(const BlockSlot at_a, tiling.Locate(a));
  ASSERT_OK_AND_ASSIGN(const BlockSlot at_b, tiling.Locate(b));
  // dim tree (n=4, b=2): w_{2,0} and w_{1,0..1} share tile 1; w_{2,1} and
  // w_{1,2..3} share tile 2.
  EXPECT_EQ(at_a.block, at_b.block);
}

TEST(StandardTilingTest, RejectsBadAddresses) {
  StandardTiling tiling({3, 3}, 2);
  std::vector<uint64_t> wrong_d{1};
  EXPECT_FALSE(tiling.Locate(wrong_d).ok());
  std::vector<uint64_t> too_big{8, 0};
  EXPECT_FALSE(tiling.Locate(too_big).ok());
}

TEST(StandardTilingTest, PointPathTilesAreBandProducts) {
  // A point reconstruction touches prod_i ceil(n_i/b) blocks when using the
  // redundant scalings, or exactly the cross product of per-dim band counts
  // when walking full paths.
  StandardTiling tiling({4, 4}, 2);
  std::set<uint64_t> blocks;
  std::vector<uint64_t> address(2);
  for (uint64_t i0 : PathToRoot(4, 9)) {
    for (uint64_t i1 : PathToRoot(4, 3)) {
      address[0] = i0;
      address[1] = i1;
      ASSERT_OK_AND_ASSIGN(const BlockSlot at, tiling.Locate(address));
      blocks.insert(at.block);
    }
  }
  EXPECT_EQ(blocks.size(), 4u);  // 2 bands per dim -> 2*2 blocks
}

}  // namespace
}  // namespace shiftsplit
