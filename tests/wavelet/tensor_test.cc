#include "shiftsplit/wavelet/tensor.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace shiftsplit {
namespace {

TEST(TensorShapeTest, StridesAreRowMajor) {
  TensorShape s({4, 2, 8});
  EXPECT_EQ(s.ndim(), 3u);
  EXPECT_EQ(s.num_elements(), 64u);
  EXPECT_EQ(s.stride(2), 1u);
  EXPECT_EQ(s.stride(1), 8u);
  EXPECT_EQ(s.stride(0), 16u);
}

TEST(TensorShapeTest, MakeValidates) {
  EXPECT_FALSE(TensorShape::Make({}).ok());
  EXPECT_FALSE(TensorShape::Make({4, 3}).ok());
  EXPECT_FALSE(TensorShape::Make({0}).ok());
  EXPECT_TRUE(TensorShape::Make({4, 8}).ok());
}

TEST(TensorShapeTest, FlatIndexRoundTrip) {
  TensorShape s({4, 8, 2});
  for (uint64_t flat = 0; flat < s.num_elements(); ++flat) {
    EXPECT_EQ(s.FlatIndex(s.Coords(flat)), flat);
  }
}

TEST(TensorShapeTest, NextEnumeratesRowMajor) {
  TensorShape s({2, 2});
  std::vector<uint64_t> c(2, 0);
  std::vector<std::vector<uint64_t>> seen;
  do {
    seen.push_back(c);
  } while (s.Next(c));
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(seen[1], (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(seen[2], (std::vector<uint64_t>{1, 0}));
  EXPECT_EQ(seen[3], (std::vector<uint64_t>{1, 1}));
  // Wrapped back to the origin.
  EXPECT_EQ(c, (std::vector<uint64_t>{0, 0}));
}

TEST(TensorShapeTest, CubeAndLogDims) {
  TensorShape s = TensorShape::Cube(3, 16);
  EXPECT_TRUE(s.IsCube());
  EXPECT_EQ(s.LogDims(), (std::vector<uint32_t>{4, 4, 4}));
  EXPECT_FALSE(TensorShape({4, 8}).IsCube());
  EXPECT_EQ(s.ToString(), "[16x16x16]");
}

TEST(TensorTest, AtMatchesFlatIndexing) {
  TensorShape shape({2, 4});
  Tensor t(shape);
  for (uint64_t i = 0; i < t.size(); ++i) t[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(t.At(std::vector<uint64_t>{1, 2}), 6.0);
  t.At(std::vector<uint64_t>{0, 3}) = -1.0;
  EXPECT_DOUBLE_EQ(t[3], -1.0);
}

TEST(TensorTest, FillAndConstruction) {
  Tensor t(TensorShape({4, 4}));
  t.Fill(3.25);
  for (uint64_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 3.25);
  Tensor u(TensorShape({2}), {1.0, 2.0});
  EXPECT_DOUBLE_EQ(u[1], 2.0);
}

TEST(TensorTest, FiberGatherScatterRoundTrip) {
  TensorShape shape({4, 2, 8});
  Tensor t(shape);
  auto values = testing::RandomVector(t.size(), 5);
  std::copy(values.begin(), values.end(), t.data().begin());

  for (uint32_t dim = 0; dim < 3; ++dim) {
    std::vector<double> fiber(shape.dim(dim));
    std::vector<uint64_t> base{1, 1, 3};
    t.GatherFiber(dim, base, fiber);
    // Check gathered values against direct addressing.
    for (uint64_t k = 0; k < fiber.size(); ++k) {
      std::vector<uint64_t> c = base;
      c[dim] = k;
      EXPECT_DOUBLE_EQ(fiber[k], t.At(c));
    }
    // Scatter modified values and verify.
    for (auto& x : fiber) x += 1.0;
    t.ScatterFiber(dim, base, fiber);
    for (uint64_t k = 0; k < fiber.size(); ++k) {
      std::vector<uint64_t> c = base;
      c[dim] = k;
      EXPECT_DOUBLE_EQ(t.At(c), fiber[k]);
    }
  }
}

}  // namespace
}  // namespace shiftsplit
