#include "shiftsplit/wavelet/standard_transform.h"

#include <gtest/gtest.h>

#include "shiftsplit/util/stats.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/wavelet_index.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::ExpectNear;
using testing::RandomVector;

Tensor RandomTensor(TensorShape shape, uint64_t seed) {
  auto v = RandomVector(shape.num_elements(), seed);
  return Tensor(std::move(shape), std::move(v));
}

class StandardTransformTest
    : public ::testing::TestWithParam<
          std::tuple<std::vector<uint64_t>, Normalization>> {};

TEST_P(StandardTransformTest, RoundTrip) {
  const auto& [dims, norm] = GetParam();
  Tensor t = RandomTensor(TensorShape(dims), 3);
  std::vector<double> original(t.data().begin(), t.data().end());
  ASSERT_OK(ForwardStandard(&t, norm));
  ASSERT_OK(InverseStandard(&t, norm));
  ExpectNear(original, t.data(), 1e-9);
}

TEST_P(StandardTransformTest, PointReconstruction) {
  const auto& [dims, norm] = GetParam();
  Tensor t = RandomTensor(TensorShape(dims), 4);
  Tensor original = t;
  ASSERT_OK(ForwardStandard(&t, norm));
  std::vector<uint64_t> point(dims.size(), 0);
  do {
    EXPECT_NEAR(StandardReconstructPoint(t, point, norm), original.At(point),
                1e-9);
  } while (original.shape().Next(point));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndNorms, StandardTransformTest,
    ::testing::Combine(
        ::testing::Values(std::vector<uint64_t>{16},
                          std::vector<uint64_t>{8, 8},
                          std::vector<uint64_t>{4, 16},
                          std::vector<uint64_t>{4, 4, 4},
                          std::vector<uint64_t>{2, 4, 2, 8}),
        ::testing::Values(Normalization::kAverage,
                          Normalization::kOrthonormal)));

TEST(StandardTransformTest, OneDimMatchesHaar) {
  auto v = RandomVector(64, 9);
  Tensor t(TensorShape({64}), v);
  ASSERT_OK(ForwardStandard(&t, Normalization::kAverage));
  ASSERT_OK(ForwardHaar1D(v, Normalization::kAverage));
  ExpectNear(v, t.data(), 1e-12);
}

TEST(StandardTransformTest, SeparabilityAgainstManualRowsThenCols) {
  // For a 2-d array the standard transform equals transforming every row,
  // then every column of the result.
  const uint64_t rows = 8, cols = 16;
  Tensor t = RandomTensor(TensorShape({rows, cols}), 10);
  Tensor manual = t;

  ASSERT_OK(ForwardStandard(&t, Normalization::kAverage));

  // Rows are dim 0 fibers? No: a "row" is fixed dim0, varying dim1.
  std::vector<double> row(cols);
  for (uint64_t r = 0; r < rows; ++r) {
    std::vector<uint64_t> base{r, 0};
    manual.GatherFiber(1, base, row);
    ASSERT_OK(ForwardHaar1D(row, Normalization::kAverage));
    manual.ScatterFiber(1, base, row);
  }
  std::vector<double> col(rows);
  for (uint64_t c = 0; c < cols; ++c) {
    std::vector<uint64_t> base{0, c};
    manual.GatherFiber(0, base, col);
    ASSERT_OK(ForwardHaar1D(col, Normalization::kAverage));
    manual.ScatterFiber(0, base, col);
  }
  ExpectNear(manual.data(), t.data(), 1e-10);
}

TEST(StandardTransformTest, TopLeftIsGrandAverage) {
  Tensor t = RandomTensor(TensorShape({8, 8}), 11);
  double sum = 0.0;
  for (double x : t.data()) sum += x;
  ASSERT_OK(ForwardStandard(&t, Normalization::kAverage));
  EXPECT_NEAR(t[0], sum / 64.0, 1e-10);
}

TEST(StandardTransformTest, OrthonormalPreservesEnergy) {
  Tensor t = RandomTensor(TensorShape({16, 8, 4}), 12);
  const double before = Energy(t.data());
  ASSERT_OK(ForwardStandard(&t, Normalization::kOrthonormal));
  EXPECT_NEAR(Energy(t.data()), before, 1e-8);
}

TEST(ReconstructionWeightTest, AverageWeightsAreSigns) {
  const uint32_t n = 4;
  for (uint64_t idx = 0; idx < 16; ++idx) {
    for (uint64_t t = 0; t < 16; ++t) {
      EXPECT_DOUBLE_EQ(
          ReconstructionWeight(n, idx, t, Normalization::kAverage),
          ReconstructionSign(n, idx, t));
    }
  }
}

TEST(ReconstructionWeightTest, OrthonormalWeightsReconstruct) {
  const uint32_t n = 5;
  auto data = RandomVector(1u << n, 13);
  auto transformed = data;
  ASSERT_OK(ForwardHaar1D(transformed, Normalization::kOrthonormal));
  for (uint64_t t = 0; t < data.size(); t += 3) {
    double v = 0.0;
    for (uint64_t idx : PathToRoot(n, t)) {
      v += ReconstructionWeight(n, idx, t, Normalization::kOrthonormal) *
           transformed[idx];
    }
    EXPECT_NEAR(v, data[t], 1e-10);
  }
}

}  // namespace
}  // namespace shiftsplit
