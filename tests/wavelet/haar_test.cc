#include "shiftsplit/wavelet/haar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "shiftsplit/util/stats.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::ExpectNear;
using testing::RandomVector;

TEST(HaarFilterTest, AverageNormalizationPairs) {
  EXPECT_DOUBLE_EQ(HaarAverage(3, 5, Normalization::kAverage), 4.0);
  EXPECT_DOUBLE_EQ(HaarDetail(3, 5, Normalization::kAverage), -1.0);
  EXPECT_DOUBLE_EQ(
      HaarReconstructLeft(4, -1, Normalization::kAverage), 3.0);
  EXPECT_DOUBLE_EQ(
      HaarReconstructRight(4, -1, Normalization::kAverage), 5.0);
}

TEST(HaarFilterTest, OrthonormalNormalizationPairs) {
  const double s = std::sqrt(2.0);
  EXPECT_DOUBLE_EQ(HaarAverage(3, 5, Normalization::kOrthonormal), 8 / s);
  EXPECT_DOUBLE_EQ(HaarDetail(3, 5, Normalization::kOrthonormal), -2 / s);
  EXPECT_NEAR(HaarReconstructLeft(8 / s, -2 / s, Normalization::kOrthonormal),
              3.0, 1e-12);
  EXPECT_NEAR(HaarReconstructRight(8 / s, -2 / s, Normalization::kOrthonormal),
              5.0, 1e-12);
}

TEST(HaarTest, PaperSection21Example) {
  // {3, 5, 7, 5} -> {5, -1, -1, 1} under the paper's normalization.
  std::vector<double> v{3, 5, 7, 5};
  ASSERT_OK(ForwardHaar1D(v, Normalization::kAverage));
  ExpectNear(std::vector<double>{5, -1, -1, 1}, v);
}

TEST(HaarTest, SizeMustBePowerOfTwo) {
  std::vector<double> v(6, 1.0);
  EXPECT_EQ(ForwardHaar1D(v, Normalization::kAverage).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InverseHaar1D(v, Normalization::kAverage).code(),
            StatusCode::kInvalidArgument);
  std::vector<double> empty;
  EXPECT_EQ(ForwardHaar1D(empty, Normalization::kAverage).code(),
            StatusCode::kInvalidArgument);
}

TEST(HaarTest, SizeOneIsIdentity) {
  std::vector<double> v{42.0};
  ASSERT_OK(ForwardHaar1D(v, Normalization::kAverage));
  EXPECT_DOUBLE_EQ(v[0], 42.0);
  ASSERT_OK(InverseHaar1D(v, Normalization::kOrthonormal));
  EXPECT_DOUBLE_EQ(v[0], 42.0);
}

TEST(HaarTest, ConstantVectorHasOnlyAverage) {
  std::vector<double> v(64, 2.5);
  ASSERT_OK(ForwardHaar1D(v, Normalization::kAverage));
  EXPECT_DOUBLE_EQ(v[0], 2.5);
  for (size_t i = 1; i < v.size(); ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

class HaarRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, Normalization>> {};

TEST_P(HaarRoundTripTest, InverseRecoversInput) {
  const auto [size, norm] = GetParam();
  std::vector<double> original = RandomVector(size, size * 31 + 7);
  std::vector<double> v = original;
  ASSERT_OK(ForwardHaar1D(v, norm));
  ASSERT_OK(InverseHaar1D(v, norm));
  ExpectNear(original, v, 1e-10);
}

TEST_P(HaarRoundTripTest, FirstCoefficientSummarizesData) {
  const auto [size, norm] = GetParam();
  std::vector<double> v = RandomVector(size, size + 1);
  double sum = 0.0;
  for (double x : v) sum += x;
  ASSERT_OK(ForwardHaar1D(v, norm));
  if (norm == Normalization::kAverage) {
    EXPECT_NEAR(v[0], sum / static_cast<double>(size), 1e-10);
  } else {
    EXPECT_NEAR(v[0], sum / std::sqrt(static_cast<double>(size)), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndNorms, HaarRoundTripTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 32, 256, 1024),
                       ::testing::Values(Normalization::kAverage,
                                         Normalization::kOrthonormal)));

TEST(HaarTest, OrthonormalPreservesEnergy) {
  std::vector<double> v = RandomVector(512, 11);
  const double before = Energy(v);
  ASSERT_OK(ForwardHaar1D(v, Normalization::kOrthonormal));
  EXPECT_NEAR(Energy(v), before, 1e-8);
}

TEST(HaarTest, TransformIsLinear) {
  const size_t kSize = 128;
  auto a = RandomVector(kSize, 1);
  auto b = RandomVector(kSize, 2);
  std::vector<double> combo(kSize);
  for (size_t i = 0; i < kSize; ++i) combo[i] = 2.0 * a[i] - 3.0 * b[i];
  ASSERT_OK(ForwardHaar1D(a, Normalization::kAverage));
  ASSERT_OK(ForwardHaar1D(b, Normalization::kAverage));
  ASSERT_OK(ForwardHaar1D(combo, Normalization::kAverage));
  for (size_t i = 0; i < kSize; ++i) {
    EXPECT_NEAR(combo[i], 2.0 * a[i] - 3.0 * b[i], 1e-10);
  }
}

TEST(HaarLevelsTest, ZeroLevelsIsIdentity) {
  std::vector<double> v = RandomVector(16, 3);
  std::vector<double> original = v;
  ASSERT_OK(ForwardHaar1DLevels(v, 0, Normalization::kAverage));
  ExpectNear(original, v);
}

TEST(HaarLevelsTest, PartialThenRemainingEqualsFull) {
  std::vector<double> full = RandomVector(64, 4);
  std::vector<double> partial = full;
  ASSERT_OK(ForwardHaar1D(full, Normalization::kAverage));
  ASSERT_OK(ForwardHaar1DLevels(partial, 2, Normalization::kAverage));
  // Finishing the decomposition on the 16-long scaling prefix must equal the
  // one-shot transform.
  ASSERT_OK(ForwardHaar1D(std::span<double>(partial.data(), 16),
                          Normalization::kAverage));
  ExpectNear(full, partial, 1e-10);
}

TEST(HaarLevelsTest, PartialRoundTrip) {
  for (uint32_t levels = 0; levels <= 5; ++levels) {
    std::vector<double> original = RandomVector(32, levels + 10);
    std::vector<double> v = original;
    ASSERT_OK(ForwardHaar1DLevels(v, levels, Normalization::kOrthonormal));
    ASSERT_OK(InverseHaar1DLevels(v, levels, Normalization::kOrthonormal));
    ExpectNear(original, v, 1e-10);
  }
}

TEST(HaarLevelsTest, TooManyLevelsRejected) {
  std::vector<double> v(8, 0.0);
  EXPECT_EQ(ForwardHaar1DLevels(v, 4, Normalization::kAverage).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InverseHaar1DLevels(v, 4, Normalization::kAverage).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shiftsplit
