#include "shiftsplit/wavelet/nonstandard_transform.h"

#include <gtest/gtest.h>

#include <set>

#include "shiftsplit/util/stats.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::ExpectNear;
using testing::RandomVector;

Tensor RandomCube(uint32_t d, uint64_t extent, uint64_t seed) {
  TensorShape shape = TensorShape::Cube(d, extent);
  auto v = RandomVector(shape.num_elements(), seed);
  return Tensor(std::move(shape), std::move(v));
}

TEST(NsSignTest, ParityOfSharedBits) {
  EXPECT_EQ(NsSign(0b00, 0b11), 1);
  EXPECT_EQ(NsSign(0b01, 0b01), -1);
  EXPECT_EQ(NsSign(0b11, 0b01), -1);
  EXPECT_EQ(NsSign(0b11, 0b11), 1);
  EXPECT_EQ(NsSign(0b101, 0b100), -1);
}

TEST(NsAddressTest, BijectionOverAllCells) {
  const uint32_t n = 3, d = 2;
  std::set<std::vector<uint64_t>> seen;
  // Root.
  NsCoeffId root;
  root.is_scaling = true;
  root.level = n;
  root.node.assign(d, 0);
  seen.insert(NsAddress(n, root));
  // All details.
  for (uint32_t j = 1; j <= n; ++j) {
    const uint64_t nodes = uint64_t{1} << (n - j);
    for (uint64_t p0 = 0; p0 < nodes; ++p0) {
      for (uint64_t p1 = 0; p1 < nodes; ++p1) {
        for (uint64_t sigma = 1; sigma < 4; ++sigma) {
          NsCoeffId id;
          id.level = j;
          id.node = {p0, p1};
          id.subband = sigma;
          const auto addr = NsAddress(n, id);
          EXPECT_TRUE(seen.insert(addr).second)
              << "address collision at level " << j;
          // Round trip.
          const NsCoeffId back = NsCoeffOfAddress(n, addr);
          EXPECT_EQ(back, id);
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);  // fills the whole 8x8 tensor
}

TEST(NsAddressTest, RootDecodes) {
  const NsCoeffId id = NsCoeffOfAddress(4, std::vector<uint64_t>{0, 0, 0});
  EXPECT_TRUE(id.is_scaling);
  EXPECT_EQ(id.level, 4u);
}

class NonstandardTransformTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint64_t, Normalization>> {};

TEST_P(NonstandardTransformTest, RoundTrip) {
  const auto [d, extent, norm] = GetParam();
  Tensor t = RandomCube(d, extent, d * 100 + extent);
  std::vector<double> original(t.data().begin(), t.data().end());
  ASSERT_OK(ForwardNonstandard(&t, norm));
  ASSERT_OK(InverseNonstandard(&t, norm));
  ExpectNear(original, t.data(), 1e-9);
}

TEST_P(NonstandardTransformTest, PointReconstruction) {
  const auto [d, extent, norm] = GetParam();
  Tensor t = RandomCube(d, extent, d * 7 + extent);
  Tensor original = t;
  ASSERT_OK(ForwardNonstandard(&t, norm));
  std::vector<uint64_t> point(d, 0);
  do {
    EXPECT_NEAR(NsReconstructPoint(t, point, norm), original.At(point), 1e-9);
  } while (original.shape().Next(point));
}

INSTANTIATE_TEST_SUITE_P(
    DimsExtentsNorms, NonstandardTransformTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(uint64_t{2}, uint64_t{4}, uint64_t{8}),
                       ::testing::Values(Normalization::kAverage,
                                         Normalization::kOrthonormal)));

TEST(NonstandardTransformTest, RequiresCube) {
  Tensor t(TensorShape({4, 8}));
  EXPECT_EQ(ForwardNonstandard(&t, Normalization::kAverage).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InverseNonstandard(&t, Normalization::kAverage).code(),
            StatusCode::kInvalidArgument);
}

TEST(NonstandardTransformTest, OneDimEqualsStandard) {
  // In 1-d the two forms coincide.
  Tensor a = RandomCube(1, 32, 21);
  Tensor b = a;
  ASSERT_OK(ForwardNonstandard(&a, Normalization::kAverage));
  ASSERT_OK(ForwardStandard(&b, Normalization::kAverage));
  ExpectNear(b.data(), a.data(), 1e-10);
}

TEST(NonstandardTransformTest, RootIsGrandAverage) {
  Tensor t = RandomCube(2, 16, 22);
  double sum = 0.0;
  for (double x : t.data()) sum += x;
  ASSERT_OK(ForwardNonstandard(&t, Normalization::kAverage));
  EXPECT_NEAR(t[0], sum / 256.0, 1e-10);
}

TEST(NonstandardTransformTest, ConstantInputHasOnlyRoot) {
  Tensor t(TensorShape::Cube(3, 4));
  t.Fill(1.5);
  ASSERT_OK(ForwardNonstandard(&t, Normalization::kAverage));
  EXPECT_NEAR(t[0], 1.5, 1e-12);
  for (uint64_t i = 1; i < t.size(); ++i) EXPECT_NEAR(t[i], 0.0, 1e-12);
}

TEST(NonstandardTransformTest, OrthonormalPreservesEnergy) {
  Tensor t = RandomCube(2, 32, 23);
  const double before = Energy(t.data());
  ASSERT_OK(ForwardNonstandard(&t, Normalization::kOrthonormal));
  EXPECT_NEAR(Energy(t.data()), before, 1e-8);
}

TEST(NonstandardTransformTest, DiffersFromStandardIn2D) {
  // Sanity: the two forms are genuinely different decompositions for d >= 2.
  Tensor a = RandomCube(2, 8, 24);
  Tensor b = a;
  ASSERT_OK(ForwardNonstandard(&a, Normalization::kAverage));
  ASSERT_OK(ForwardStandard(&b, Normalization::kAverage));
  double max_diff = 0.0;
  for (uint64_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  EXPECT_GT(max_diff, 1e-6);
}

TEST(NonstandardTransformTest, LevelOneDetailIsLocalBlockDifference) {
  // For a 2x2 input the three subband coefficients are the 2-d Haar block
  // combinations of the four cells.
  Tensor t(TensorShape::Cube(2, 2), {1.0, 2.0, 3.0, 4.0});  // rows: (1 2),(3 4)
  ASSERT_OK(ForwardNonstandard(&t, Normalization::kAverage));
  // Average.
  EXPECT_NEAR(t.At(std::vector<uint64_t>{0, 0}), 2.5, 1e-12);
  // sigma = 01 (dim1 bit... subband in dim 0? sigma bit t addresses dim t):
  // address {0,1} <-> sigma with bit on dim 1: (x00 - x01 + x10 - x11)/4.
  EXPECT_NEAR(t.At(std::vector<uint64_t>{0, 1}), (1.0 - 2.0 + 3.0 - 4.0) / 4,
              1e-12);
  // address {1,0}: (x00 + x01 - x10 - x11)/4.
  EXPECT_NEAR(t.At(std::vector<uint64_t>{1, 0}), (1.0 + 2.0 - 3.0 - 4.0) / 4,
              1e-12);
  // address {1,1}: (x00 - x01 - x10 + x11)/4.
  EXPECT_NEAR(t.At(std::vector<uint64_t>{1, 1}), (1.0 - 2.0 - 3.0 + 4.0) / 4,
              1e-12);
}

}  // namespace
}  // namespace shiftsplit
