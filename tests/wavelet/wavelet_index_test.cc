#include "shiftsplit/wavelet/wavelet_index.h"

#include <gtest/gtest.h>

#include <set>

#include "shiftsplit/wavelet/haar.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(WaveletIndexTest, DetailIndexMatchesPaperOrdering) {
  // N = 8 (n = 3): [u_{3,0}, w_{3,0}, w_{2,0}, w_{2,1}, w_{1,0..3}].
  EXPECT_EQ(DetailIndex(3, 3, 0), 1u);
  EXPECT_EQ(DetailIndex(3, 2, 0), 2u);
  EXPECT_EQ(DetailIndex(3, 2, 1), 3u);
  EXPECT_EQ(DetailIndex(3, 1, 0), 4u);
  EXPECT_EQ(DetailIndex(3, 1, 3), 7u);
}

TEST(WaveletIndexTest, CoordOfIndexRoundTrip) {
  const uint32_t n = 6;
  std::set<uint64_t> seen;
  for (uint32_t j = 1; j <= n; ++j) {
    for (uint64_t k = 0; k < (uint64_t{1} << (n - j)); ++k) {
      const uint64_t idx = DetailIndex(n, j, k);
      EXPECT_TRUE(seen.insert(idx).second) << "index collision at " << idx;
      const WaveletCoord c = CoordOfIndex(n, idx);
      EXPECT_FALSE(c.is_scaling);
      EXPECT_EQ(c.level, j);
      EXPECT_EQ(c.pos, k);
    }
  }
  // All indices 1..N-1 are details; 0 is the scaling root.
  EXPECT_EQ(seen.size(), (uint64_t{1} << n) - 1);
  EXPECT_TRUE(CoordOfIndex(n, 0).is_scaling);
  EXPECT_EQ(CoordOfIndex(n, 0).level, n);
}

TEST(WaveletIndexTest, SupportIntervals) {
  // Figure 2 of the paper: w_{2,0} of N=8 covers [0,3].
  const DyadicInterval s = SupportOfIndex(3, DetailIndex(3, 2, 0));
  EXPECT_EQ(s.begin(), 0u);
  EXPECT_EQ(s.last(), 3u);
  // w_{1,2} covers [4,5].
  const DyadicInterval s2 = SupportOfIndex(3, DetailIndex(3, 1, 2));
  EXPECT_EQ(s2.begin(), 4u);
  EXPECT_EQ(s2.last(), 5u);
  // The scaling root covers everything.
  const DyadicInterval sr = SupportOfIndex(3, 0);
  EXPECT_EQ(sr.begin(), 0u);
  EXPECT_EQ(sr.last(), 7u);
}

TEST(WaveletIndexTest, ParentChildRelationship) {
  // w_{2,0} (idx 2) has children w_{1,0} (idx 4) and w_{1,1} (idx 5).
  EXPECT_EQ(LeftChildIndex(2), 4u);
  EXPECT_EQ(RightChildIndex(2), 5u);
  EXPECT_EQ(ParentIndex(4), 2u);
  EXPECT_EQ(ParentIndex(5), 2u);
  // w_{n,0} (idx 1) is the child of the scaling root (idx 0).
  EXPECT_EQ(ParentIndex(1), 0u);
}

TEST(WaveletIndexTest, ParentCoversChild) {
  const uint32_t n = 5;
  for (uint64_t idx = 2; idx < (uint64_t{1} << n); ++idx) {
    EXPECT_TRUE(SupportOfIndex(n, ParentIndex(idx))
                    .Covers(SupportOfIndex(n, idx)))
        << "parent of " << idx << " does not cover it";
  }
}

TEST(WaveletIndexTest, PathToRootHasLemma1Length) {
  const uint32_t n = 7;
  for (uint64_t t : {uint64_t{0}, uint64_t{1}, uint64_t{63}, uint64_t{127}}) {
    const auto path = PathToRoot(n, t);
    ASSERT_EQ(path.size(), n + 1);  // Lemma 1: log N + 1 coefficients.
    EXPECT_EQ(path[0], 0u);
    // Each detail on the path covers t, and levels decrease root-to-leaf.
    for (size_t i = 1; i < path.size(); ++i) {
      EXPECT_TRUE(SupportOfIndex(n, path[i]).Contains(t));
      EXPECT_EQ(CoordOfIndex(n, path[i]).level, n + 1 - i);
    }
  }
}

TEST(WaveletIndexTest, ReconstructionSign) {
  // w_{2,0} of N=8 covers [0,3]: + for 0,1 and - for 2,3; 0 outside.
  const uint64_t idx = DetailIndex(3, 2, 0);
  EXPECT_EQ(ReconstructionSign(3, idx, 0), 1);
  EXPECT_EQ(ReconstructionSign(3, idx, 1), 1);
  EXPECT_EQ(ReconstructionSign(3, idx, 2), -1);
  EXPECT_EQ(ReconstructionSign(3, idx, 3), -1);
  EXPECT_EQ(ReconstructionSign(3, idx, 4), 0);
  EXPECT_EQ(ReconstructionSign(3, 0, 5), 1);
}

TEST(WaveletIndexTest, SignsReconstructPoint) {
  // sum over path of sign * coefficient == data value (kAverage).
  const uint32_t n = 5;
  auto data = testing::RandomVector(1u << n, 17);
  auto transformed = data;
  ASSERT_OK(ForwardHaar1D(transformed, Normalization::kAverage));
  for (uint64_t t = 0; t < data.size(); ++t) {
    double v = 0.0;
    for (uint64_t idx : PathToRoot(n, t)) {
      v += ReconstructionSign(n, idx, t) * transformed[idx];
    }
    EXPECT_NEAR(v, data[t], 1e-10);
  }
}

TEST(ShiftIndexTest, MapsChunkDetailsToPaperPositions) {
  // N=16 (n=4), chunk size M=4 (m=2), chunk k=2 covering [8,11].
  // Local w_{2,0} (idx 1) -> global w_{2,2} = idx 2^2 + 2 = 6.
  EXPECT_EQ(ShiftIndex(4, 2, 2, 1), 6u);
  // Local w_{1,0} (idx 2) -> global w_{1,4} = idx 2^3 + 4 = 12.
  EXPECT_EQ(ShiftIndex(4, 2, 2, 2), 12u);
  // Local w_{1,1} (idx 3) -> global w_{1,5} = 13.
  EXPECT_EQ(ShiftIndex(4, 2, 2, 3), 13u);
}

TEST(ShiftIndexTest, ShiftedSupportsAreTranslatedLocals) {
  const uint32_t n = 8, m = 4;
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    for (uint64_t local = 1; local < (uint64_t{1} << m); ++local) {
      const uint64_t global = ShiftIndex(n, m, k, local);
      const DyadicInterval ls = SupportOfIndex(m, local);
      const DyadicInterval gs = SupportOfIndex(n, global);
      EXPECT_EQ(gs.level, ls.level);
      EXPECT_EQ(gs.begin(), ls.begin() + k * (uint64_t{1} << m));
    }
  }
}

TEST(ShiftIndexTest, ImagesOfDistinctChunksAreDisjoint) {
  const uint32_t n = 6, m = 3;
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    for (uint64_t local = 1; local < (uint64_t{1} << m); ++local) {
      EXPECT_TRUE(seen.insert(ShiftIndex(n, m, k, local)).second);
    }
  }
  // The images fill exactly the levels <= m part of the tree.
  EXPECT_EQ(seen.size(),
            ((uint64_t{1} << m) - 1) * (uint64_t{1} << (n - m)));
}

TEST(UnshiftIndexTest, InvertsShift) {
  const uint32_t n = 7, m = 3;
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    for (uint64_t local = 1; local < (uint64_t{1} << m); ++local) {
      const uint64_t global = ShiftIndex(n, m, k, local);
      auto r = UnshiftIndex(n, m, k, global);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(*r, local);
    }
  }
}

TEST(UnshiftIndexTest, RejectsCoefficientsOutsideChunk) {
  // Global w_{1,0} (N=16) is in chunk 0, not chunk 1.
  EXPECT_FALSE(UnshiftIndex(4, 2, 1, DetailIndex(4, 1, 0)).ok());
  // Levels above the chunk cannot be unshifted.
  EXPECT_FALSE(UnshiftIndex(4, 2, 0, DetailIndex(4, 3, 0)).ok());
  // The scaling root is split, not shifted.
  EXPECT_FALSE(UnshiftIndex(4, 2, 0, 0).ok());
}

TEST(SplitTargetsTest, TargetsLieOnPathAboveChunk) {
  // N=16, M=4, chunk k=2 (range [8,11]): targets are w_{3,1}, w_{4,0}, u.
  const auto targets = SplitTargetIndices(4, 2, 2);
  ASSERT_EQ(targets.size(), 3u);  // n - m + 1
  EXPECT_EQ(targets[0], DetailIndex(4, 3, 1));
  EXPECT_EQ(targets[1], DetailIndex(4, 4, 0));
  EXPECT_EQ(targets[2], 0u);
}

TEST(SplitTargetsTest, EveryTargetCoversTheChunk) {
  const uint32_t n = 9, m = 4;
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); k += 3) {
    const DyadicInterval chunk{m, k};
    for (uint64_t idx : SplitTargetIndices(n, m, k)) {
      EXPECT_TRUE(SupportOfIndex(n, idx).Covers(chunk));
    }
  }
}

TEST(SplitTargetsTest, WholeVectorChunkHasOnlyRootTarget) {
  const auto targets = SplitTargetIndices(5, 5, 0);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 0u);
}

}  // namespace
}  // namespace shiftsplit
