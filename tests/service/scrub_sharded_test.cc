// Scrubbing sharded stores: the per-shard repair fan-out (ScrubAll),
// supervisor in-place healing of a parity-repairable poison (DEGRADED
// while repairing, zero quarantines), and the double-fault escalation that
// still takes the quarantine + full-rebuild path.
//
// Deltas are dyadic-exact integers so every query comparison below is
// exact (see sharded_cube_test.cc on why that matters).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/sharded_cube.h"
#include "testing.h"

namespace shiftsplit {
namespace {

constexpr uint32_t kShards = 4;
// {5, 4}: a 32x16 grid split into four 8x16 slabs along dim 0.
const std::vector<uint32_t> kLogDims{5, 4};

std::filesystem::path MakeTempDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("shiftsplit_scrub_sharded_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void FlipByte(const std::string& file, uint64_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << file;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

// Flips one payload byte in every stride of `file` (data file or parity
// sidecar alike — both use the payload+footer stride layout).
void CorruptEveryStride(const std::string& file, uint64_t stride) {
  const uint64_t strides = std::filesystem::file_size(file) / stride;
  ASSERT_GT(strides, 0u);
  for (uint64_t s = 0; s < strides; ++s) FlipByte(file, s * stride + 7);
}

std::string ShardDir(const std::filesystem::path& dir, uint32_t shard) {
  char name[16];
  std::snprintf(name, sizeof(name), "shard-%04u", shard);
  return (dir / name).string();
}

// On-disk stride (payload + 16-byte footer) of one shard store.
uint64_t ShardStride(ShardedCube* sharded) {
  return sharded->shard_for_test(0)->cube()->store()->layout()
             .block_capacity() *
             sizeof(double) +
         16;
}

// Spreads `n` dyadic-exact deltas over the whole 32x16 domain and mirrors
// them into `expected` (row-major).
void AddEverywhere(ShardedCube* sharded, uint64_t n, uint64_t salt,
                   std::vector<double>* expected) {
  for (uint64_t i = 0; i < n; ++i) {
    const std::vector<uint64_t> at{(i * 7 + salt) % 32, (i * 5 + salt) % 16};
    const double value = static_cast<double>(static_cast<int64_t>(i % 9) - 4);
    ASSERT_OK(sharded->Add(at, value));
    (*expected)[at[0] * 16 + at[1]] += value;
  }
}

// Deltas confined to shard `shard`'s slab (dim-0 prefix).
void AddToShardSlab(ShardedCube* sharded, uint32_t shard, uint64_t n,
                    uint64_t salt, std::vector<double>* expected) {
  for (uint64_t i = 0; i < n; ++i) {
    const std::vector<uint64_t> at{shard * 8 + (i + salt) % 8,
                                   (i * 3 + salt) % 16};
    const double value = static_cast<double>(static_cast<int64_t>(i % 7) - 3);
    ASSERT_OK(sharded->Add(at, value));
    (*expected)[at[0] * 16 + at[1]] += value;
  }
}

void ExpectAllCells(ShardedCube* sharded,
                    const std::vector<double>& expected) {
  for (uint64_t r = 0; r < 32; ++r) {
    for (uint64_t c = 0; c < 16; ++c) {
      const std::vector<uint64_t> at{r, c};
      ASSERT_OK_AND_ASSIGN(const double v, sharded->PointQuery(at));
      EXPECT_DOUBLE_EQ(v, expected[r * 16 + c]) << r << "," << c;
    }
  }
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

TEST(ScrubShardedTest, ScrubAllRepairsOneShardWithoutDisturbingSiblings) {
  const auto dir = MakeTempDir("fanout");
  WaveletCube::Options cube_options;
  cube_options.parity_group = 4;
  ShardedCube::Options options;
  options.serving.start_workers = false;
  options.supervise = false;
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), kLogDims, kShards,
                                              cube_options, options));
  std::vector<double> expected(32 * 16, 0.0);
  AddEverywhere(sharded.get(), 200, 1, &expected);
  ASSERT_OK(sharded->DrainAll());

  const uint64_t stride = ShardStride(sharded.get());
  constexpr uint32_t kVictim = 1;
  const std::string victim_blocks = ShardDir(dir, kVictim) + "/blocks.bin";
  // Reference image before the bit flip: repair must restore it exactly.
  const std::vector<char> reference = ReadFileBytes(victim_blocks);
  FlipByte(victim_blocks, 1 * stride + 3);

  ASSERT_OK_AND_ASSIGN(const ScrubReport report, sharded->ScrubAll());
  EXPECT_EQ(report.repaired, std::vector<uint64_t>({1}));
  EXPECT_TRUE(report.unrepairable.empty());
  EXPECT_EQ(ReadFileBytes(victim_blocks), reference)
      << "repair did not restore the exact on-disk image";

  // Sibling shards were scrubbed but never needed (or performed) a repair.
  for (uint32_t s = 0; s < kShards; ++s) {
    const auto cube = sharded->shard_for_test(s);
    const DurabilityStats durability = cube->cube()->durability_stats();
    EXPECT_EQ(durability.repaired_blocks, s == kVictim ? 1u : 0u) << s;
    EXPECT_EQ(durability.unrepairable_blocks, 0u) << s;
    EXPECT_FALSE(durability.read_only) << s;
    const ShardedCube::ShardHealthInfo info = sharded->shard_health(s);
    EXPECT_EQ(info.health, ShardHealth::kHealthy) << s;
    EXPECT_EQ(info.quarantines, 0u) << s;
  }
  EXPECT_GE(sharded->stats().parity_repairs, 1u);
  ExpectAllCells(sharded.get(), expected);
  ASSERT_OK(sharded->Close());
  std::filesystem::remove_all(dir);
}

// A parity-repairable poison (flush tripping over corrupt parity strides)
// never quarantines: the supervisor DEGRADEs the slot, repairs the cube in
// place and re-admits it with the buffered deltas intact.
TEST(ScrubShardedTest, SupervisorRepairsParityPoisonedShardInPlace) {
  const auto dir = MakeTempDir("inplace");
  WaveletCube::Options cube_options;
  cube_options.parity_group = 4;
  ShardedCube::Options options;
  options.serving.start_workers = true;
  options.serving.oversubscribe = true;
  // No spontaneous background drains: the poison lands deterministically at
  // our explicit DrainAll, never mid-way through an Add loop.
  options.serving.drain_min_deltas = 1u << 20;
  options.serving.max_delta_age = std::chrono::milliseconds(60000);
  options.supervisor_poll = std::chrono::milliseconds(2);
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), kLogDims, kShards,
                                              cube_options, options));
  std::vector<double> expected(32 * 16, 0.0);
  AddEverywhere(sharded.get(), 120, 2, &expected);
  ASSERT_OK(sharded->DrainAll());

  constexpr uint32_t kVictim = 2;
  const uint64_t stride = ShardStride(sharded.get());
  CorruptEveryStride(ShardDir(dir, kVictim) + "/blocks.bin.parity", stride);

  // These deltas are acknowledged into the victim's buffer; the drain that
  // tries to commit them fails on the corrupt parity and poisons the cube.
  AddToShardSlab(sharded.get(), kVictim, 40, 3, &expected);
  ASSERT_FALSE(sharded->DrainAll().ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  ShardedCube::ShardHealthInfo info;
  while (true) {
    info = sharded->shard_health(kVictim);
    if (info.health == ShardHealth::kHealthy && info.recoveries >= 1) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "supervisor never healed the shard in place: "
        << static_cast<int>(info.health) << " " << info.cause.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The whole point: healed without a single quarantine (no teardown, no
  // journal-replay rebuild), and no delta was lost.
  EXPECT_EQ(info.quarantines, 0u);
  EXPECT_GE(info.recoveries, 1u);
  ASSERT_OK(info.cause);
  ASSERT_OK(sharded->DrainAll());
  ExpectAllCells(sharded.get(), expected);
  EXPECT_GE(sharded->stats().parity_repairs, 1u);

  // The store is genuinely durable again: a full scrub finds it clean.
  ASSERT_OK_AND_ASSIGN(const ScrubReport report, sharded->ScrubAll());
  EXPECT_TRUE(report.unrepairable.empty());
  ASSERT_OK(sharded->Close());
  std::filesystem::remove_all(dir);
}

// Two corrupt blocks per parity group defeat XOR parity; the supervisor's
// in-place attempt reports them unrepairable and the incident escalates to
// the quarantine + full-recovery path exactly as before parity existed.
TEST(ScrubShardedTest, DoubleFaultStillEscalatesToQuarantine) {
  const auto dir = MakeTempDir("doublefault");
  WaveletCube::Options cube_options;
  cube_options.parity_group = 4;
  ShardedCube::Options options;
  options.serving.start_workers = true;
  options.serving.oversubscribe = true;
  options.serving.drain_min_deltas = 1u << 20;
  options.serving.max_delta_age = std::chrono::milliseconds(60000);
  options.supervisor_poll = std::chrono::milliseconds(2);
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), kLogDims, kShards,
                                              cube_options, options));
  std::vector<double> expected(32 * 16, 0.0);
  AddEverywhere(sharded.get(), 120, 4, &expected);
  ASSERT_OK(sharded->DrainAll());

  constexpr uint32_t kVictim = 3;
  const uint64_t stride = ShardStride(sharded.get());
  // Every data block corrupt: every parity group holds at least two faults,
  // so no reconstruction can succeed anywhere.
  CorruptEveryStride(ShardDir(dir, kVictim) + "/blocks.bin", stride);

  AddToShardSlab(sharded.get(), kVictim, 40, 5, &expected);
  ASSERT_FALSE(sharded->DrainAll().ok());  // poisons the victim

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (sharded->shard_health(kVictim).quarantines < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "double fault never escalated to quarantine";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Healthy siblings are untouched throughout.
  for (uint32_t s = 0; s < kShards; ++s) {
    if (s == kVictim) continue;
    EXPECT_EQ(sharded->shard_health(s).health, ShardHealth::kHealthy) << s;
    const std::vector<uint64_t> probe{s * 8 + 1, 2};
    ASSERT_OK_AND_ASSIGN(const double v, sharded->PointQuery(probe));
    EXPECT_DOUBLE_EQ(v, expected[probe[0] * 16 + probe[1]]) << s;
  }
  // The victim may still be mid-recovery (or FAILED) at shutdown; Close
  // reports its state but must still close every shard.
  (void)sharded->Close();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
