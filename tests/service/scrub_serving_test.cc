// Serving-layer scrub-and-repair: inline read-path healing under the
// serving latch, incremental ScrubTick sweeps, the background Scrubber
// thread, and RepairNow's in-place healing of a cube poisoned by
// corruption — including resuming the interrupted drain so no buffered
// delta is lost and no delta is ever applied twice.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/scrubber.h"
#include "shiftsplit/service/serving_cube.h"
#include "testing.h"

namespace shiftsplit {
namespace {

std::filesystem::path MakeTempDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("shiftsplit_scrub_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

// Creates an on-disk parity store ({3,3}, G=4) and returns its on-disk
// stride (payload + footer bytes) via `stride_out`.
void CreateParityStore(const std::filesystem::path& dir,
                       uint64_t* stride_out) {
  WaveletCube::Options options;
  options.parity_group = 4;
  ASSERT_OK_AND_ASSIGN(auto cube,
                       WaveletCube::CreateOnDisk(dir.string(), {3, 3},
                                                 options));
  *stride_out = cube->store()->layout().block_capacity() * sizeof(double) + 16;
  ASSERT_OK(cube->Close());
}

void FlipByte(const std::string& file, uint64_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << file;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

// Flips one payload byte in every parity stride, so the next flush (which
// must read parity to maintain it incrementally) fails whichever group it
// touches.
void CorruptAllParity(const std::filesystem::path& dir, uint64_t stride) {
  const std::string sidecar = (dir / "blocks.bin").string() + ".parity";
  const uint64_t groups = std::filesystem::file_size(sidecar) / stride;
  ASSERT_GT(groups, 0u);
  for (uint64_t g = 0; g < groups; ++g) FlipByte(sidecar, g * stride + 7);
}

// Buffers `n` deterministic deltas and mirrors them into `expected`
// (row-major 8x8).
void AddDeltas(ServingCube* serving, uint64_t n, uint64_t salt,
               std::vector<double>* expected) {
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t flat = (i * 11 + salt) % 64;
    const std::vector<uint64_t> at{flat / 8, flat % 8};
    const double value = 1.0 + static_cast<double>((i + salt) % 7);
    ASSERT_OK(serving->Add(at, value));
    (*expected)[flat] += value;
  }
}

void ExpectAllCells(ServingCube* serving, const std::vector<double>& expected,
                    bool use_scaling_slots = true) {
  for (uint64_t r = 0; r < 8; ++r) {
    for (uint64_t c = 0; c < 8; ++c) {
      const std::vector<uint64_t> at{r, c};
      ASSERT_OK_AND_ASSIGN(const double v,
                           serving->PointQuery(at, use_scaling_slots));
      EXPECT_DOUBLE_EQ(v, expected[r * 8 + c]) << r << "," << c;
    }
  }
}

TEST(ScrubServingTest, QueryHealsCorruptBlockInline) {
  const auto dir = MakeTempDir("inline");
  uint64_t stride = 0;
  CreateParityStore(dir, &stride);

  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  {
    ASSERT_OK_AND_ASSIGN(auto serving,
                         ServingCube::OpenOnDisk(dir.string(), 64, options));
    AddDeltas(serving.get(), 48, 1, &expected);
    ASSERT_OK(serving->DrainAll());
    ASSERT_OK(serving->Close());
  }
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  // Corrupt after open: recovery has already run (a journal replay on open
  // would silently rewrite the block instead of exercising the read path)
  // and nothing is cached yet, so the first query must hit the bad bytes.
  FlipByte((dir / "blocks.bin").string(), 0 * stride + 3);
  // Nothing special from the caller's side: the read path repairs from
  // parity under the latch and the query answers exactly. Scaling-slot
  // queries read a single block each, so reconstruct from the coefficient
  // path instead — its union over all cells touches every data block,
  // including the corrupt one.
  ExpectAllCells(serving.get(), expected, /*use_scaling_slots=*/false);
  EXPECT_GE(serving->cube()->durability_stats().repaired_blocks, 1u);
  EXPECT_EQ(serving->health(), ShardHealth::kHealthy);
  EXPECT_FALSE(serving->cube()->durability_stats().read_only);
  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

TEST(ScrubServingTest, ScrubTickSweepsAndRepairsIncrementally) {
  const auto dir = MakeTempDir("tick");
  uint64_t stride = 0;
  CreateParityStore(dir, &stride);

  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  {
    ASSERT_OK_AND_ASSIGN(auto serving,
                         ServingCube::OpenOnDisk(dir.string(), 64, options));
    AddDeltas(serving.get(), 48, 2, &expected);
    ASSERT_OK(serving->DrainAll());
    ASSERT_OK(serving->Close());
  }
  // Two faults in different parity groups (G=4) of the data file.
  const uint64_t strides =
      std::filesystem::file_size(dir / "blocks.bin") / stride;
  ASSERT_GE(strides, 6u);
  FlipByte((dir / "blocks.bin").string(), 1 * stride + 3);
  FlipByte((dir / "blocks.bin").string(), 5 * stride + 3);

  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  uint64_t repaired = 0;
  uint64_t scanned = 0;
  for (int tick = 0; tick < 1000; ++tick) {
    const ServingCube::ScrubTickResult result = serving->ScrubTick(4);
    repaired += result.repaired;
    scanned += result.scanned;
    EXPECT_EQ(result.unrepairable, 0u);
    if (result.wrapped) break;
  }
  EXPECT_EQ(repaired, 2u);
  const ServingStats stats = serving->stats();
  EXPECT_EQ(stats.scrub_passes, 1u);
  EXPECT_EQ(stats.scrub_repairs, 2u);
  EXPECT_EQ(stats.parity_repairs, 2u);
  EXPECT_EQ(stats.parity_unrepairable, 0u);
  EXPECT_EQ(stats.scrubbed_blocks, scanned);
  // A second full pass finds everything clean.
  ServingCube::ScrubTickResult result;
  do {
    result = serving->ScrubTick(16);
    EXPECT_EQ(result.repaired, 0u);
  } while (!result.wrapped);
  ExpectAllCells(serving.get(), expected);
  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

TEST(ScrubServingTest, BackgroundScrubberFindsBitRotAndPauses) {
  const auto dir = MakeTempDir("background");
  uint64_t stride = 0;
  CreateParityStore(dir, &stride);

  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  {
    ASSERT_OK_AND_ASSIGN(auto serving,
                         ServingCube::OpenOnDisk(dir.string(), 64, options));
    AddDeltas(serving.get(), 32, 3, &expected);
    ASSERT_OK(serving->DrainAll());
    ASSERT_OK(serving->Close());
  }
  FlipByte((dir / "blocks.bin").string(), 2 * stride + 11);

  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  Scrubber::Options scrub_options;
  scrub_options.interval = std::chrono::milliseconds(1);
  scrub_options.batch_blocks = 4;
  Scrubber scrubber(serving.get(), scrub_options);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (scrubber.stats().repaired < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "scrubber never repaired the corrupt block";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scrubber.Pause();
  EXPECT_TRUE(scrubber.paused());
  const Scrubber::Stats paused = scrubber.stats();
  EXPECT_GE(paused.scanned, 1u);
  EXPECT_EQ(paused.unrepairable, 0u);
  scrubber.Resume();
  scrubber.Stop();

  ExpectAllCells(serving.get(), expected);
  EXPECT_EQ(serving->health(), ShardHealth::kHealthy);
  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

// The in-place healing path end to end: a flush that trips over corrupt
// parity poisons the cube mid-drain; RepairNow rebuilds parity, clears the
// poison, and resumes the interrupted drain — every acknowledged delta is
// applied exactly once and the store is durable again.
TEST(ScrubServingTest, RepairNowHealsPoisonedCubeAndResumesDrain) {
  const auto dir = MakeTempDir("repairnow");
  uint64_t stride = 0;
  CreateParityStore(dir, &stride);

  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  AddDeltas(serving.get(), 40, 4, &expected);
  ASSERT_OK(serving->DrainAll());

  CorruptAllParity(dir, stride);
  AddDeltas(serving.get(), 24, 5, &expected);
  const Status drained = serving->DrainAll();
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(serving->health(), ShardHealth::kQuarantined);
  EXPECT_EQ(serving->poison_status().code(), StatusCode::kChecksumMismatch);

  ASSERT_OK_AND_ASSIGN(const ScrubReport report, serving->RepairNow());
  EXPECT_TRUE(report.unrepairable.empty());
  EXPECT_FALSE(report.repaired.empty());  // the rebuilt parity strides
  EXPECT_EQ(serving->health(), ShardHealth::kHealthy);
  {
    const ServingStats stats = serving->stats();
    EXPECT_EQ(stats.applied_seq, stats.last_seq) << "drain did not resume";
    EXPECT_GE(stats.parity_repairs, 1u);
  }
  ExpectAllCells(serving.get(), expected);

  // The resumed commit was real: a crash after it loses nothing.
  ASSERT_OK(serving->CrashForTest());
  serving.reset();
  ASSERT_OK_AND_ASSIGN(auto reopened,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  ExpectAllCells(reopened.get(), expected);
  EXPECT_EQ(reopened->health(), ShardHealth::kHealthy);
  ASSERT_OK(reopened->Close());
  std::filesystem::remove_all(dir);
}

// RepairNow on a healthy cube is a plain repair scrub: clean store, empty
// report, nothing disturbed.
TEST(ScrubServingTest, RepairNowOnHealthyCubeIsClean) {
  const auto dir = MakeTempDir("noop");
  uint64_t stride = 0;
  CreateParityStore(dir, &stride);

  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  AddDeltas(serving.get(), 16, 6, &expected);
  ASSERT_OK(serving->DrainAll());
  ASSERT_OK_AND_ASSIGN(const ScrubReport report, serving->RepairNow());
  EXPECT_TRUE(report.clean());
  ExpectAllCells(serving.get(), expected);
  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
