// Sharded serving: router unit tests, the sharded-vs-monolithic bit-identity
// property (with mid-drain snapshots), the kill-at-every-op per-shard crash
// recovery matrix, and shard failure isolation.
//
// On bit-identity: sharded and monolithic cubes associate their floating-
// point additions differently (per-shard transforms vs one global one), so
// bitwise equality cannot hold for arbitrary doubles. The property tests
// therefore feed dyadic-exact deltas (small integers): every intermediate —
// transform averages/differences, overlay folds, range-sum weights — is then
// exactly representable, both sides compute the same real number with exact
// arithmetic, and any bitwise mismatch is a genuine routing or composition
// bug, not rounding.

#include "shiftsplit/service/sharded_cube.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/shard_router.h"
#include "shiftsplit/storage/manifest.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/util/random.h"
#include "storage/fault_injection_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

std::filesystem::path MakeTempDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("shiftsplit_sharded_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

struct Delta {
  std::vector<uint64_t> coords;  // global
  double value = 0.0;
};

// Random cells with dyadic-exact (integer) values in [-8, 8].
std::vector<Delta> MakeDyadicDeltas(std::span<const uint32_t> log_dims,
                                    uint64_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Delta> deltas;
  deltas.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Delta d;
    for (uint32_t log : log_dims) {
      d.coords.push_back(rng.NextBounded(uint64_t{1} << log));
    }
    d.value = static_cast<double>(static_cast<int64_t>(rng.NextBounded(17)) -
                                  8);
    deltas.push_back(std::move(d));
  }
  return deltas;
}

// ---------------------------------------------------------------------------
// ShardRouter

TEST(ShardRouterTest, PicksWidestDimensionLowestIndexOnTies) {
  EXPECT_EQ(ShardRouter::PickSplitDim(std::vector<uint32_t>{3, 5, 4}), 1u);
  EXPECT_EQ(ShardRouter::PickSplitDim(std::vector<uint32_t>{4, 4, 4}), 0u);
  EXPECT_EQ(ShardRouter::PickSplitDim(std::vector<uint32_t>{2, 6, 6}), 1u);
}

TEST(ShardRouterTest, ValidatesConstruction) {
  EXPECT_FALSE(ShardRouter::Make({4, 3}, /*num_shards=*/3).ok());
  EXPECT_FALSE(ShardRouter::Make({4, 3}, /*num_shards=*/0).ok());
  // 2^4 = 16 shards would leave no levels on a log-4 dimension.
  EXPECT_FALSE(ShardRouter::Make({4, 3}, /*num_shards=*/16).ok());
  EXPECT_FALSE(ShardRouter::Make({4, 3}, /*split_dim=*/2, 2).ok());
  EXPECT_FALSE(ShardRouter::Make({}, 2).ok());
  ASSERT_OK_AND_ASSIGN(ShardRouter router, ShardRouter::Make({4, 3}, 4));
  EXPECT_EQ(router.split_dim(), 0u);
  EXPECT_EQ(router.prefix_bits(), 2u);
  EXPECT_EQ(router.slab_extent(), 4u);
  EXPECT_EQ(router.shard_log_dims(), (std::vector<uint32_t>{2, 3}));
}

TEST(ShardRouterTest, RoutesPointsByDyadicPrefix) {
  ASSERT_OK_AND_ASSIGN(ShardRouter router, ShardRouter::Make({4, 3}, 4));
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 8; ++y) {
      ASSERT_OK_AND_ASSIGN(const uint32_t shard,
                           router.RoutePoint(std::vector<uint64_t>{x, y}));
      EXPECT_EQ(shard, x >> 2);  // top 2 of 4 bits
      const auto local = router.ToLocal(std::vector<uint64_t>{x, y}, shard);
      EXPECT_EQ(local, (std::vector<uint64_t>{x % 4, y}));
    }
  }
  EXPECT_EQ(router.RoutePoint(std::vector<uint64_t>{16, 0}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(router.RoutePoint(std::vector<uint64_t>{0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardRouterTest, DecomposedRangesTileTheBoxExactly) {
  ASSERT_OK_AND_ASSIGN(ShardRouter router, ShardRouter::Make({4, 3}, 4));
  Xoshiro256 rng(42);
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint64_t> lo{rng.NextBounded(16), rng.NextBounded(8)};
    std::vector<uint64_t> hi{lo[0] + rng.NextBounded(16 - lo[0]),
                             lo[1] + rng.NextBounded(8 - lo[1])};
    ASSERT_OK_AND_ASSIGN(const std::vector<ShardRange> parts,
                         router.DecomposeRange(lo, hi));
    // Parts ascend by shard and their volumes sum to the box volume; each
    // part stays inside its shard's sub-domain.
    uint64_t volume = 0;
    uint32_t prev = 0;
    for (const ShardRange& part : parts) {
      ASSERT_TRUE(part.shard >= prev);
      prev = part.shard + 1;
      ASSERT_LE(part.lo[0], part.hi[0]);
      ASSERT_LE(part.lo[1], part.hi[1]);
      ASSERT_LT(part.hi[0], router.slab_extent());
      volume += (part.hi[0] - part.lo[0] + 1) * (part.hi[1] - part.lo[1] + 1);
      // The part maps back into [lo, hi].
      const uint64_t global_lo = part.lo[0] + router.SlabLo(part.shard);
      const uint64_t global_hi = part.hi[0] + router.SlabLo(part.shard);
      ASSERT_GE(global_lo, lo[0]);
      ASSERT_LE(global_hi, hi[0]);
      ASSERT_EQ(part.lo[1], lo[1]);
      ASSERT_EQ(part.hi[1], hi[1]);
    }
    ASSERT_EQ(volume, (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1));
  }
  EXPECT_EQ(router
                .DecomposeRange(std::vector<uint64_t>{3, 0},
                                std::vector<uint64_t>{2, 0})
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// ShardedCube vs monolithic ServingCube

class ShardedVsMonolithic : public ::testing::Test {
 protected:
  // Global domain 32x16, four shards of 8x16 along dimension 0.
  static constexpr uint32_t kLogX = 5;
  static constexpr uint32_t kLogY = 4;

  void Open(const char* tag, uint32_t num_shards) {
    dir_ = MakeTempDir(tag);
    WaveletCube::Options cube_options;  // standard form, b = 2
    ShardedCube::Options options;
    options.serving.start_workers = false;
    ASSERT_OK_AND_ASSIGN(
        sharded_, ShardedCube::CreateOnDisk(dir_.string(), {kLogX, kLogY},
                                            num_shards, cube_options,
                                            options));
    ASSERT_OK_AND_ASSIGN(auto base, WaveletCube::CreateInMemory(
                                        {kLogX, kLogY}, cube_options));
    ServingCube::Options mono_options;
    mono_options.start_workers = false;
    mono_options.max_pending_deltas = 1 << 16;
    ASSERT_OK_AND_ASSIGN(mono_,
                         ServingCube::Attach(std::move(base), mono_options));
  }

  void AddBoth(const Delta& delta) {
    ASSERT_OK(sharded_->Add(delta.coords, delta.value));
    ASSERT_OK(mono_->Add(delta.coords, delta.value));
    expected_[delta.coords] += delta.value;
  }

  // Bitwise-compares `points` random point queries and `ranges` random range
  // sums between the sharded and monolithic cubes (and the exact reference).
  void CompareAnswers(Xoshiro256& rng, int points, int ranges) {
    for (int i = 0; i < points; ++i) {
      std::vector<uint64_t> p{rng.NextBounded(1 << kLogX),
                              rng.NextBounded(1 << kLogY)};
      ASSERT_OK_AND_ASSIGN(const double got, sharded_->PointQuery(p));
      ASSERT_OK_AND_ASSIGN(const double want, mono_->PointQuery(p));
      ASSERT_EQ(Bits(got), Bits(want))
          << "point (" << p[0] << "," << p[1] << "): " << got << " vs "
          << want;
      const auto it = expected_.find(p);
      const double exact = it == expected_.end() ? 0.0 : it->second;
      ASSERT_EQ(Bits(got), Bits(exact));
    }
    for (int i = 0; i < ranges; ++i) {
      std::vector<uint64_t> lo{rng.NextBounded(1 << kLogX),
                               rng.NextBounded(1 << kLogY)};
      std::vector<uint64_t> hi{
          lo[0] + rng.NextBounded((1 << kLogX) - lo[0]),
          lo[1] + rng.NextBounded((1 << kLogY) - lo[1])};
      ASSERT_OK_AND_ASSIGN(const double got, sharded_->RangeSum(lo, hi));
      ASSERT_OK_AND_ASSIGN(const double want, mono_->RangeSum(lo, hi));
      ASSERT_EQ(Bits(got), Bits(want))
          << "range [" << lo[0] << "," << lo[1] << "]..[" << hi[0] << ","
          << hi[1] << "]: " << got << " vs " << want;
      double exact = 0.0;
      for (const auto& [coords, value] : expected_) {
        if (coords[0] >= lo[0] && coords[0] <= hi[0] && coords[1] >= lo[1] &&
            coords[1] <= hi[1]) {
          exact += value;
        }
      }
      ASSERT_EQ(Bits(got), Bits(exact));
    }
  }

  std::filesystem::path dir_;
  std::unique_ptr<ShardedCube> sharded_;
  std::unique_ptr<ServingCube> mono_;
  std::map<std::vector<uint64_t>, double> expected_;
};

TEST_F(ShardedVsMonolithic, PropertyBitIdenticalAcrossDrainStates) {
  Open("property", /*num_shards=*/4);
  const std::vector<uint32_t> log_dims{kLogX, kLogY};
  const std::vector<Delta> deltas = MakeDyadicDeltas(log_dims, 300, 20260808);
  Xoshiro256 rng(99);

  // Everything pending on both sides.
  for (size_t i = 0; i < 150; ++i) AddBoth(deltas[i]);
  CompareAnswers(rng, 300, 200);

  // Sharded fully drained, monolithic still buffered: merged reads on one
  // side against applied coefficients on the other.
  ASSERT_OK(sharded_->DrainAll());
  EXPECT_EQ(sharded_->pending_deltas(), 0u);
  CompareAnswers(rng, 300, 200);

  // More writes land on drained shards; both sides then fully drained.
  for (size_t i = 150; i < deltas.size(); ++i) AddBoth(deltas[i]);
  ASSERT_OK(sharded_->DrainAll());
  ASSERT_OK(mono_->DrainAll());
  CompareAnswers(rng, 300, 200);

  const ServingStats stats = sharded_->stats();
  EXPECT_EQ(stats.acked_deltas, deltas.size());
  EXPECT_EQ(stats.applied_seq, stats.last_seq);
  EXPECT_GT(stats.latch_exclusive_holds, 0u);
  EXPECT_GE(stats.latch_hold_us_total, stats.latch_hold_us_max);
  ASSERT_OK(sharded_->Close());
  ASSERT_OK(mono_->Close());
}

TEST_F(ShardedVsMonolithic, MidDrainSnapshotStaysBitIdentical) {
  Open("middrain", /*num_shards=*/4);
  const std::vector<uint32_t> log_dims{kLogX, kLogY};
  const std::vector<Delta> deltas = MakeDyadicDeltas(log_dims, 120, 7);
  for (size_t i = 0; i < 60; ++i) AddBoth(deltas[i]);

  // Pin shard 1's drain horizon mid-stream, keep writing, then drain: the
  // pinned shard freezes in a genuine mid-apply state (prefix applied, rest
  // pending) while the other shards drain fully — the sharded cube now
  // serves from a mix of applied and merged state across shards.
  const std::shared_ptr<ServingCube> pinned = sharded_->shard_for_test(1);
  {
    DeltaBuffer::Snapshot pin(pinned->buffer_for_test());
    bool pinned_shard_touched = false;
    for (size_t i = 60; i < deltas.size(); ++i) {
      AddBoth(deltas[i]);
      if (sharded_->router().ShardOf(deltas[i].coords) == 1) {
        pinned_shard_touched = true;
      }
    }
    ASSERT_TRUE(pinned_shard_touched);  // seed guarantees it
    for (uint32_t s = 0; s < sharded_->num_shards(); ++s) {
      if (s == 1) continue;
      ASSERT_OK(sharded_->shard_for_test(s)->DrainAll());
    }
    const Status drained = pinned->DrainAll();
    ASSERT_EQ(drained.code(), StatusCode::kUnavailable)
        << drained.ToString();
    EXPECT_GT(pinned->pending_deltas(), 0u);

    Xoshiro256 rng(13);
    CompareAnswers(rng, 400, 300);
  }

  // Snapshot released: the tail drains and answers stay identical.
  ASSERT_OK(sharded_->DrainAll());
  ASSERT_OK(mono_->DrainAll());
  Xoshiro256 rng(14);
  CompareAnswers(rng, 200, 100);
  ASSERT_OK(sharded_->Close());
  ASSERT_OK(mono_->Close());
}

TEST_F(ShardedVsMonolithic, DenseUpdateCrossesShardBoundaries) {
  Open("update", /*num_shards=*/4);
  // A 16x4 box anchored at x=4 spans shards 0..2 (slabs of 8 along x).
  Tensor box(TensorShape({16, 4}));
  Xoshiro256 rng(5);
  for (uint64_t i = 0; i < box.size(); ++i) {
    box[i] = static_cast<double>(static_cast<int64_t>(rng.NextBounded(9)) -
                                 4);
  }
  const std::vector<uint64_t> origin{4, 8};
  ASSERT_OK(sharded_->Update(box, origin));
  ASSERT_OK(mono_->Update(box, origin));
  std::vector<uint64_t> coords(2, 0);
  do {
    expected_[{origin[0] + coords[0], origin[1] + coords[1]}] +=
        box.At(coords);
  } while (box.shape().Next(coords));

  CompareAnswers(rng, 300, 200);
  ASSERT_OK(sharded_->DrainAll());
  CompareAnswers(rng, 300, 200);

  // Out-of-domain and mis-shaped updates are rejected up front.
  EXPECT_EQ(sharded_->Update(box, std::vector<uint64_t>{20, 8}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(sharded_->Update(box, std::vector<uint64_t>{0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_OK(sharded_->Close());
  ASSERT_OK(mono_->Close());
}

// ---------------------------------------------------------------------------
// Crash recovery

// Kill -9 at every op boundary over a 2-shard workload: after each prefix of
// the op script (adds and drains), crash every shard, reopen, and verify all
// acknowledged deltas answer exactly — then drain and verify again.
TEST(ShardedCubeCrashTest, KillAtEveryOpReopensExact) {
  const std::vector<uint32_t> log_dims{4, 3};
  struct Op {
    bool drain = false;
    Delta delta;
  };
  std::vector<Op> ops;
  const std::vector<Delta> deltas = MakeDyadicDeltas(log_dims, 20, 31337);
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (i == 7 || i == 14) {
      Op drain;
      drain.drain = true;
      ops.push_back(std::move(drain));
    }
    Op add;
    add.delta = deltas[i];
    ops.push_back(std::move(add));
  }

  const auto dir = MakeTempDir("killmatrix");
  for (size_t kill_at = 0; kill_at <= ops.size(); ++kill_at) {
    std::filesystem::remove_all(dir);
    WaveletCube::Options cube_options;
    ShardedCube::Options options;
    options.serving.start_workers = false;
    ASSERT_OK_AND_ASSIGN(
        auto sharded,
        ShardedCube::CreateOnDisk(dir.string(), log_dims, /*num_shards=*/2,
                                  cube_options, options));
    std::map<std::vector<uint64_t>, double> expected;
    for (size_t i = 0; i < kill_at; ++i) {
      if (ops[i].drain) {
        ASSERT_OK(sharded->DrainAll());
      } else {
        ASSERT_OK(sharded->Add(ops[i].delta.coords, ops[i].delta.value));
        expected[ops[i].delta.coords] += ops[i].delta.value;
      }
    }
    ASSERT_OK(sharded->CrashForTest());
    sharded.reset();

    ASSERT_OK_AND_ASSIGN(auto reopened,
                         ShardedCube::OpenOnDisk(dir.string(), options));
    const auto verify = [&](const char* when) {
      for (const auto& [coords, value] : expected) {
        ASSERT_OK_AND_ASSIGN(const double got,
                             reopened->PointQuery(coords));
        ASSERT_EQ(Bits(got), Bits(value))
            << when << " kill_at=" << kill_at << " cell (" << coords[0]
            << "," << coords[1] << "): " << got << " vs " << value;
      }
      double exact = 0.0;
      for (const auto& [coords, value] : expected) exact += value;
      ASSERT_OK_AND_ASSIGN(
          const double total,
          reopened->RangeSum(std::vector<uint64_t>{0, 0},
                             std::vector<uint64_t>{15, 7}));
      ASSERT_EQ(Bits(total), Bits(exact)) << when << " kill_at=" << kill_at;
    };
    verify("after reopen");
    ASSERT_OK(reopened->DrainAll());
    verify("after drain");
    ASSERT_OK(reopened->Close());
  }
}

TEST(ShardedCubeCrashTest, SingleShardCrashIsIsolated) {
  const auto dir = MakeTempDir("isolation");
  const std::vector<uint32_t> log_dims{4, 3};
  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = false;
  ASSERT_OK_AND_ASSIGN(
      auto sharded,
      ShardedCube::CreateOnDisk(dir.string(), log_dims, /*num_shards=*/2,
                                cube_options, options));
  // Shard 0 owns x < 8, shard 1 owns x >= 8.
  ASSERT_OK(sharded->Add(std::vector<uint64_t>{2, 1}, 3.0));
  ASSERT_OK(sharded->Add(std::vector<uint64_t>{12, 5}, 4.0));
  ASSERT_OK(sharded->shard_for_test(0)->CrashForTest());

  // The crashed shard rejects, the healthy shard keeps serving exactly, and
  // a range spanning both propagates the failure.
  EXPECT_FALSE(sharded->Add(std::vector<uint64_t>{3, 1}, 1.0).ok());
  EXPECT_FALSE(sharded->PointQuery(std::vector<uint64_t>{2, 1}).ok());
  ASSERT_OK(sharded->Add(std::vector<uint64_t>{13, 5}, 2.0));
  ASSERT_OK_AND_ASSIGN(const double healthy,
                       sharded->PointQuery(std::vector<uint64_t>{12, 5}));
  EXPECT_EQ(Bits(healthy), Bits(4.0));
  ASSERT_OK_AND_ASSIGN(const double right_half,
                       sharded->RangeSum(std::vector<uint64_t>{8, 0},
                                         std::vector<uint64_t>{15, 7}));
  EXPECT_EQ(Bits(right_half), Bits(6.0));
  EXPECT_FALSE(sharded
                   ->RangeSum(std::vector<uint64_t>{0, 0},
                              std::vector<uint64_t>{15, 7})
                   .ok());

  // Crash the rest and reopen: every acknowledged delta on both shards
  // (including the post-crash add on the healthy one) recovers.
  ASSERT_OK(sharded->CrashForTest());
  sharded.reset();
  ASSERT_OK_AND_ASSIGN(auto reopened,
                       ShardedCube::OpenOnDisk(dir.string(), options));
  ASSERT_OK_AND_ASSIGN(const double total,
                       reopened->RangeSum(std::vector<uint64_t>{0, 0},
                                          std::vector<uint64_t>{15, 7}));
  EXPECT_EQ(Bits(total), Bits(9.0));
  ASSERT_OK(reopened->DrainAll());
  ASSERT_OK(reopened->Close());
}

// An injected device failure during one cube's drain poisons that cube only
// — built from the AttachDurable seam with a fault-injection device, the
// same per-shard wiring a failing disk would hit.
TEST(ShardedCubeCrashTest, InjectedWriteFailurePoisonsOnlyThatShard) {
  const std::vector<uint32_t> log_dims{3, 3};
  StandardTiling layout(log_dims, /*b=*/2);

  MemoryBlockManager faulty_inner(layout.block_capacity());
  testing::FaultInjectionBlockManager faulty(&faulty_inner);
  MemoryBlockManager healthy_inner(layout.block_capacity());

  WaveletCube::Options faulty_options;
  faulty_options.device = &faulty;
  WaveletCube::Options healthy_options;
  healthy_options.device = &healthy_inner;
  ASSERT_OK_AND_ASSIGN(auto faulty_cube,
                       WaveletCube::CreateInMemory(log_dims, faulty_options));
  ASSERT_OK_AND_ASSIGN(
      auto healthy_cube,
      WaveletCube::CreateInMemory(log_dims, healthy_options));

  const auto faulty_dir = MakeTempDir("faulty_shard");
  const auto healthy_dir = MakeTempDir("healthy_shard");
  ServingCube::Options serving_options;
  serving_options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(
      auto faulty_shard,
      ServingCube::AttachDurable(std::move(faulty_cube), faulty_dir.string(),
                                 serving_options));
  ASSERT_OK_AND_ASSIGN(
      auto healthy_shard,
      ServingCube::AttachDurable(std::move(healthy_cube),
                                 healthy_dir.string(), serving_options));

  ASSERT_OK(faulty_shard->Add(std::vector<uint64_t>{1, 1}, 5.0));
  ASSERT_OK(healthy_shard->Add(std::vector<uint64_t>{2, 2}, 7.0));
  faulty.FailNthWrite(1);
  EXPECT_FALSE(faulty_shard->DrainAll().ok());
  // Poisoned: the failed shard rejects everything from now on...
  EXPECT_FALSE(faulty_shard->Add(std::vector<uint64_t>{1, 2}, 1.0).ok());
  EXPECT_FALSE(faulty_shard->PointQuery(std::vector<uint64_t>{1, 1}).ok());
  // ...while its sibling is untouched.
  ASSERT_OK(healthy_shard->DrainAll());
  ASSERT_OK_AND_ASSIGN(const double v,
                       healthy_shard->PointQuery(std::vector<uint64_t>{2, 2}));
  EXPECT_EQ(Bits(v), Bits(7.0));
  ASSERT_OK(healthy_shard->Close());
}

// ---------------------------------------------------------------------------
// Shard-set plumbing

TEST(ShardedCubeTest, CreateValidatesAndOpenChecksTheManifest) {
  const auto dir = MakeTempDir("plumbing");
  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = false;
  EXPECT_FALSE(ShardedCube::CreateOnDisk(dir.string(), {4, 3}, 3,
                                         cube_options, options)
                   .ok());
  EXPECT_FALSE(ShardedCube::CreateOnDisk(dir.string(), {4, 3}, 16,
                                         cube_options, options)
                   .ok());
  EXPECT_FALSE(ShardedCube::IsShardedDir(dir.string()));
  EXPECT_EQ(ShardedCube::OpenOnDisk(dir.string()).status().code(),
            StatusCode::kNotFound);

  ASSERT_OK_AND_ASSIGN(auto sharded,
                       ShardedCube::CreateOnDisk(dir.string(), {4, 3}, 4,
                                                 cube_options, options));
  EXPECT_TRUE(ShardedCube::IsShardedDir(dir.string()));
  EXPECT_EQ(sharded->num_shards(), 4u);
  ASSERT_OK(sharded->Add(std::vector<uint64_t>{9, 2}, 1.5));
  const std::vector<uint64_t> seqs = sharded->SnapshotSeqs();
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs[0] + seqs[1] + seqs[2] + seqs[3], 1u);
  ASSERT_OK(sharded->Close());

  // A shard-set manifest that disagrees with the shard stores is rejected.
  ShardSetManifest bad;
  bad.num_shards = 2;
  bad.split_dim = 0;
  bad.log_dims = {4, 3};
  bad.shard_dirs = {ShardSetManifest::ShardDirName(0),
                    ShardSetManifest::ShardDirName(1)};
  ASSERT_OK(bad.Save((dir / "shardset.manifest").string()));
  EXPECT_FALSE(ShardedCube::OpenOnDisk(dir.string(), options).ok());
}

// ---------------------------------------------------------------------------
// Self-healing (DESIGN.md §11)

// The acceptance matrix: crash the owning shard at every op index of a
// write sequence, recover it in-process (RecoverShardNow runs the full
// supervised teardown -> reopen -> watermark-verify -> re-admit cycle),
// finish the sequence, and demand bit-identity with a never-faulted
// monolith holding exactly the acknowledged writes.
TEST(ShardedSelfHealingTest, KillAtEveryOpRecoversInProcessExact) {
  const std::vector<uint32_t> log_dims{5, 4};
  const std::vector<Delta> deltas = MakeDyadicDeltas(log_dims, 24, 20260808);
  WaveletCube::Options cube_options;

  for (size_t kill_at = 0; kill_at < deltas.size(); ++kill_at) {
    const auto dir = MakeTempDir("healmatrix");
    ShardedCube::Options options;
    options.serving.start_workers = false;
    ASSERT_OK_AND_ASSIGN(
        auto sharded, ShardedCube::CreateOnDisk(dir.string(), log_dims, 4,
                                                cube_options, options));
    ASSERT_OK_AND_ASSIGN(auto base,
                         WaveletCube::CreateInMemory(log_dims, cube_options));
    ServingCube::Options mono_options;
    mono_options.start_workers = false;
    ASSERT_OK_AND_ASSIGN(auto mono,
                         ServingCube::Attach(std::move(base), mono_options));

    const uint32_t victim =
        sharded->router().ShardOf(deltas[kill_at].coords);
    std::vector<size_t> unacked;
    for (size_t i = 0; i < deltas.size(); ++i) {
      if (i == kill_at) {
        // The injected failure: the victim's in-process crash poisons it.
        ASSERT_OK(sharded->shard_for_test(victim)->CrashForTest());
      }
      const Status added = sharded->Add(deltas[i].coords, deltas[i].value);
      if (added.ok()) {
        ASSERT_OK(mono->Add(deltas[i].coords, deltas[i].value));
      } else {
        // Only the victim may reject writes; healthy shards never stall.
        ASSERT_EQ(sharded->router().ShardOf(deltas[i].coords), victim);
        unacked.push_back(i);
      }
    }
    ASSERT_GE(unacked.size(), 1u);  // the kill_at write itself bounced
    EXPECT_EQ(sharded->shard_health(victim).health,
              ShardHealth::kQuarantined);

    // One full in-process recovery cycle, then the writer retries its
    // rejected writes.
    ASSERT_OK(sharded->RecoverShardNow(victim));
    const ShardedCube::ShardHealthInfo healed =
        sharded->shard_health(victim);
    EXPECT_EQ(healed.health, ShardHealth::kHealthy);
    EXPECT_EQ(healed.recoveries, 1u);
    EXPECT_EQ(healed.quarantines, 1u);
    for (const size_t i : unacked) {
      ASSERT_OK(sharded->Add(deltas[i].coords, deltas[i].value));
      ASSERT_OK(mono->Add(deltas[i].coords, deltas[i].value));
    }
    ASSERT_OK(sharded->DrainAll());
    ASSERT_OK(mono->DrainAll());

    // Bit-identical to the never-faulted monolith, point and range.
    Xoshiro256 rng(kill_at + 1);
    for (int q = 0; q < 40; ++q) {
      std::vector<uint64_t> p{rng.NextBounded(32), rng.NextBounded(16)};
      ASSERT_OK_AND_ASSIGN(const double got, sharded->PointQuery(p));
      ASSERT_OK_AND_ASSIGN(const double want, mono->PointQuery(p));
      ASSERT_EQ(Bits(got), Bits(want)) << "kill_at=" << kill_at;
    }
    const std::vector<uint64_t> all_lo{0, 0};
    const std::vector<uint64_t> all_hi{31, 15};
    ASSERT_OK_AND_ASSIGN(const double got_sum,
                         sharded->RangeSum(all_lo, all_hi));
    ASSERT_OK_AND_ASSIGN(const double want_sum,
                         mono->RangeSum(all_lo, all_hi));
    ASSERT_EQ(Bits(got_sum), Bits(want_sum)) << "kill_at=" << kill_at;

    ASSERT_OK(sharded->Close());
    ASSERT_OK(mono->Close());
    std::filesystem::remove_all(dir);
  }
}

// While a shard is quarantined: exact queries touching it fail fast with
// its health attached, approx-tolerant queries skip it and return a
// DegradedResult whose energy-derived bound really covers the missing
// part, and a too-tight max_error refuses the degraded answer. After
// recovery the exact answers are back, bit-identically.
TEST(ShardedSelfHealingTest, DegradedQueriesWithinBoundWhileQuarantined) {
  const auto dir = MakeTempDir("degraded");
  const std::vector<uint32_t> log_dims{5, 4};
  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = false;
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), log_dims, 4,
                                              cube_options, options));

  const std::vector<Delta> deltas = MakeDyadicDeltas(log_dims, 120, 31337);
  std::map<std::vector<uint64_t>, double> expected;
  for (const Delta& d : deltas) {
    ASSERT_OK(sharded->Add(d.coords, d.value));
    expected[d.coords] += d.value;
  }
  ASSERT_OK(sharded->DrainAll());

  constexpr uint32_t kVictim = 2;
  ASSERT_OK(sharded->shard_for_test(kVictim)->CrashForTest());
  // First touch detects the poisoning inline and quarantines the slot.
  const std::vector<uint64_t> victim_cell{
      kVictim * 8 + 1, 3};  // split dim 0, slab extent 8
  EXPECT_FALSE(sharded->Add(victim_cell, 1.0).ok());
  EXPECT_EQ(sharded->shard_health(kVictim).health,
            ShardHealth::kQuarantined);

  const std::vector<uint64_t> all_lo{0, 0};
  const std::vector<uint64_t> all_hi{31, 15};
  double true_sum = 0.0;
  double victim_part = 0.0;
  for (const auto& [coords, value] : expected) {
    true_sum += value;
    if (coords[0] / 8 == kVictim) victim_part += value;
  }

  // Exact mode fails fast, naming the shard's health.
  const Result<double> exact = sharded->RangeSum(all_lo, all_hi);
  ASSERT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(exact.status().message().find("QUARANTINED"),
            std::string::npos);

  // Approx mode degrades: the healthy shards' exact parts, the victim
  // listed missing, and a bound that covers what was skipped.
  QueryOptions approx;
  approx.max_error = std::numeric_limits<double>::infinity();
  ASSERT_OK_AND_ASSIGN(const DegradedResult degraded,
                       sharded->RangeSum(all_lo, all_hi, approx));
  EXPECT_EQ(degraded.reason, DegradedReason::kShardUnavailable);
  ASSERT_EQ(degraded.shards_missing,
            (std::vector<uint32_t>{kVictim}));
  EXPECT_GT(degraded.blocks_missing, 0u);
  EXPECT_EQ(Bits(degraded.value), Bits(true_sum - victim_part));
  EXPECT_LE(std::abs(true_sum - degraded.value), degraded.error_bound);

  // Same contract for the degradable point query on the dead shard.
  ASSERT_OK_AND_ASSIGN(const DegradedResult point,
                       sharded->PointQuery(victim_cell, approx));
  ASSERT_EQ(point.shards_missing, (std::vector<uint32_t>{kVictim}));
  const auto it = expected.find(victim_cell);
  const double point_true = it == expected.end() ? 0.0 : it->second;
  EXPECT_LE(std::abs(point_true - point.value), point.error_bound);

  // A max_error tighter than the bound refuses to answer.
  if (degraded.error_bound > 0.0) {
    QueryOptions tight;
    tight.max_error = degraded.error_bound * 0.5;
    const Result<DegradedResult> refused =
        sharded->RangeSum(all_lo, all_hi, tight);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  }
  // A range entirely inside healthy shards answers exactly — degraded
  // routing never touches the victim.
  const std::vector<uint64_t> healthy_lo{0, 0};
  const std::vector<uint64_t> healthy_hi{15, 15};
  ASSERT_OK_AND_ASSIGN(const DegradedResult healthy,
                       sharded->RangeSum(healthy_lo, healthy_hi, approx));
  EXPECT_TRUE(healthy.exact());

  // Recovery restores exact service.
  ASSERT_OK(sharded->RecoverShardNow(kVictim));
  ASSERT_OK_AND_ASSIGN(const double after,
                       sharded->RangeSum(all_lo, all_hi));
  EXPECT_EQ(Bits(after), Bits(true_sum));
  const ServingStats stats = sharded->stats();
  EXPECT_EQ(stats.health, ShardHealth::kHealthy);
  EXPECT_EQ(stats.recoveries, 1u);
  ASSERT_OK(sharded->Close());
  std::filesystem::remove_all(dir);
}

// Writes routed to a quarantined shard park in the bounded in-memory queue
// (supervisor running, no deadline), fail fast under an armed deadline,
// bounce when the queue is full — and the parked queue drains into the
// shard on re-admission, bit-identically to a monolith that accepted the
// same writes directly.
TEST(ShardedSelfHealingTest, ParkedWritesReplayOnReadmission) {
  const auto dir = MakeTempDir("parking");
  const std::vector<uint32_t> log_dims{5, 4};
  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = true;
  options.serving.oversubscribe = true;
  // A sleepy supervisor: running (so parking is live) but effectively
  // never acting — the test drives recovery explicitly.
  options.supervisor_poll = std::chrono::milliseconds(60'000);
  options.max_parked_writes = 4;
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), log_dims, 4,
                                              cube_options, options));
  ASSERT_OK_AND_ASSIGN(auto base,
                       WaveletCube::CreateInMemory(log_dims, cube_options));
  ServingCube::Options mono_options;
  mono_options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(auto mono,
                       ServingCube::Attach(std::move(base), mono_options));

  constexpr uint32_t kVictim = 1;
  const auto victim_cell = [](uint64_t x, uint64_t y) {
    return std::vector<uint64_t>{kVictim * 8 + x, y};
  };
  ASSERT_OK(sharded->Add(victim_cell(0, 0), 2.0));
  ASSERT_OK(mono->Add(victim_cell(0, 0), 2.0));
  ASSERT_OK(sharded->DrainAll());

  ASSERT_OK(sharded->shard_for_test(kVictim)->CrashForTest());
  // The detecting write fails (it raced the poisoning) ...
  EXPECT_FALSE(sharded->Add(victim_cell(1, 1), 1.0).ok());
  ASSERT_EQ(sharded->shard_health(kVictim).health,
            ShardHealth::kQuarantined);
  // ... but writes after the quarantine park, up to the bound.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_OK(sharded->Add(victim_cell(i, 2), 1.0 + i));
    ASSERT_OK(mono->Add(victim_cell(i, 2), 1.0 + i));
  }
  EXPECT_EQ(sharded->shard_health(kVictim).parked, 4u);
  // Queue full: the fifth offer bounces.
  EXPECT_FALSE(sharded->Add(victim_cell(4, 2), 9.0).ok());
  // An armed deadline never parks: bounded latency means fail fast.
  OperationContext deadline_ctx;
  deadline_ctx.set_timeout(std::chrono::seconds(30));
  const Status fast = sharded->Add(victim_cell(5, 2), 1.0, &deadline_ctx);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.code(), StatusCode::kUnavailable);
  // Healthy shards are untouched by all of this.
  ASSERT_OK(sharded->Add(std::vector<uint64_t>{0, 0}, 3.0));
  ASSERT_OK(mono->Add(std::vector<uint64_t>{0, 0}, 3.0));

  // Re-admission replays the parked queue in arrival order.
  ASSERT_OK(sharded->RecoverShardNow(kVictim));
  const ShardedCube::ShardHealthInfo healed = sharded->shard_health(kVictim);
  EXPECT_EQ(healed.health, ShardHealth::kHealthy);
  EXPECT_EQ(healed.parked, 0u);
  const ServingStats stats = sharded->stats();
  EXPECT_EQ(stats.parked_writes, 4u);
  EXPECT_EQ(stats.parked_dropped, 0u);

  ASSERT_OK(sharded->DrainAll());
  ASSERT_OK(mono->DrainAll());
  Xoshiro256 rng(5);
  for (int q = 0; q < 60; ++q) {
    std::vector<uint64_t> p{rng.NextBounded(32), rng.NextBounded(16)};
    ASSERT_OK_AND_ASSIGN(const double got, sharded->PointQuery(p));
    ASSERT_OK_AND_ASSIGN(const double want, mono->PointQuery(p));
    ASSERT_EQ(Bits(got), Bits(want));
  }
  ASSERT_OK(sharded->Close());
  ASSERT_OK(mono->Close());
  std::filesystem::remove_all(dir);
}

// The background supervisor alone — no explicit recovery calls — detects a
// poisoned shard, quarantines it and re-admits it, while the healthy
// shards keep serving throughout.
TEST(ShardedSelfHealingTest, SupervisorAutoRecoversCrashedShard) {
  const auto dir = MakeTempDir("auto");
  const std::vector<uint32_t> log_dims{5, 4};
  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = true;
  options.serving.oversubscribe = true;
  options.supervisor_poll = std::chrono::milliseconds(2);
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), log_dims, 4,
                                              cube_options, options));

  constexpr uint32_t kVictim = 3;
  ASSERT_OK(sharded->Add(std::vector<uint64_t>{kVictim * 8 + 2, 5}, 4.0));
  ASSERT_OK(sharded->DrainAll());
  ASSERT_OK(sharded->shard_for_test(kVictim)->CrashForTest());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    const ShardedCube::ShardHealthInfo info = sharded->shard_health(kVictim);
    if (info.health == ShardHealth::kHealthy && info.recoveries >= 1) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "supervisor did not recover the shard; health="
        << ShardHealthToString(info.health);
    // Healthy shards serve while the victim heals.
    ASSERT_OK(sharded->PointQuery(std::vector<uint64_t>{0, 0}).status());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ShardedCube::ShardHealthInfo info = sharded->shard_health(kVictim);
  EXPECT_EQ(info.quarantines, 1u);
  ASSERT_OK(info.cause);  // cleared on re-admission
  // The recovered shard serves reads and writes again, exactly.
  ASSERT_OK_AND_ASSIGN(
      const double value,
      sharded->PointQuery(std::vector<uint64_t>{kVictim * 8 + 2, 5}));
  EXPECT_EQ(Bits(value), Bits(4.0));
  ASSERT_OK(sharded->Add(std::vector<uint64_t>{kVictim * 8 + 2, 5}, 1.0));
  ASSERT_OK(sharded->Close());
  std::filesystem::remove_all(dir);
}

// A shard whose store cannot be reopened exhausts its recovery attempts
// and lands in the terminal FAILED state, with the cause in stats and an
// operator-facing error on every touch — while the rest of the cube keeps
// serving, and approx-tolerant queries still answer around the hole.
TEST(ShardedSelfHealingTest, UnrecoverableShardLandsFailedTerminal) {
  const auto dir = MakeTempDir("failed");
  const std::vector<uint32_t> log_dims{5, 4};
  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = false;
  options.max_recovery_attempts = 2;
  options.recovery_backoff = RetryPolicy{2, 1, 10, 0.0};
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), log_dims, 4,
                                              cube_options, options));
  // Data lands only on healthy shards so the hole carries zero mass.
  const std::vector<Delta> deltas = MakeDyadicDeltas(log_dims, 60, 99);
  double healthy_sum = 0.0;
  for (const Delta& d : deltas) {
    if (sharded->router().ShardOf(d.coords) == 1) continue;
    ASSERT_OK(sharded->Add(d.coords, d.value));
    healthy_sum += d.value;
  }
  ASSERT_OK(sharded->DrainAll());

  // Make shard 1 unrecoverable: poison it and destroy its manifest.
  ASSERT_OK(sharded->shard_for_test(1)->CrashForTest());
  std::filesystem::remove(dir / "shard-0001" / "store.manifest");

  EXPECT_FALSE(sharded->RecoverShardNow(1).ok());  // attempt 1 of 2
  EXPECT_EQ(sharded->shard_health(1).health, ShardHealth::kQuarantined);
  EXPECT_FALSE(sharded->RecoverShardNow(1).ok());  // attempt 2: terminal
  const ShardedCube::ShardHealthInfo info = sharded->shard_health(1);
  EXPECT_EQ(info.health, ShardHealth::kFailed);
  EXPECT_FALSE(info.cause.ok());

  // Terminal: explicit recovery refuses, writes bounce with the cause.
  const Status recover_again = sharded->RecoverShardNow(1);
  ASSERT_FALSE(recover_again.ok());
  EXPECT_NE(recover_again.message().find("FAILED"), std::string::npos);
  const Status write = sharded->Add(std::vector<uint64_t>{9, 0}, 1.0);
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.code(), StatusCode::kUnavailable);
  EXPECT_NE(write.message().find("FAILED"), std::string::npos);

  // The cause and terminal state surface in aggregate stats.
  const ServingStats stats = sharded->stats();
  EXPECT_EQ(stats.health, ShardHealth::kFailed);
  EXPECT_NE(stats.poison_code, StatusCode::kOk);
  EXPECT_EQ(stats.recovery_attempts, 2u);
  EXPECT_EQ(stats.recoveries, 0u);

  // Healthy shards serve exact sub-queries; the global sum degrades with
  // an honest (here unbounded — the hole's energy is unknowable) bound.
  ASSERT_OK_AND_ASSIGN(
      const double left,
      sharded->RangeSum(std::vector<uint64_t>{0, 0},
                        std::vector<uint64_t>{7, 15}));
  (void)left;
  QueryOptions approx;
  approx.max_error = std::numeric_limits<double>::infinity();
  ASSERT_OK_AND_ASSIGN(
      const DegradedResult degraded,
      sharded->RangeSum(std::vector<uint64_t>{0, 0},
                        std::vector<uint64_t>{31, 15}, approx));
  ASSERT_EQ(degraded.shards_missing, (std::vector<uint32_t>{1}));
  EXPECT_EQ(Bits(degraded.value), Bits(healthy_sum));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
