// Concurrent serving soak: writers, readers and maintenance workers running
// together against one on-disk ServingCube. Built to run under tsan (the
// `service` ctest label); every thread is real — the worker pool is
// oversubscribed so the soak genuinely interleaves even on a 1-CPU host.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/util/random.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(ServingSoakTest, ConcurrentWritersReadersAndMaintenance) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("shiftsplit_serving_soak_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    WaveletCube::Options options;
    ASSERT_OK_AND_ASSIGN(
        auto cube, WaveletCube::CreateOnDisk(dir.string(), {4, 4}, options));
    ASSERT_OK(cube->Close());
  }

  ServingCube::Options options;
  options.oversubscribe = true;  // real threads even on 1-CPU CI hosts
  options.num_workers = 2;
  options.drain_min_deltas = 16;
  options.max_delta_age = std::chrono::milliseconds(5);
  options.max_pending_deltas = 512;
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 256, options));

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kDeltasPerWriter = 300;
  constexpr int kQueriesPerReader = 400;

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> read_failures{0};
  std::atomic<bool> writers_done{false};
  std::mutex sum_mu;
  double accepted_sum = 0.0;

  const auto writer = [&](int id) {
    Xoshiro256 rng(1000 + static_cast<uint64_t>(id));
    double local_sum = 0.0;
    for (int i = 0; i < kDeltasPerWriter; ++i) {
      const std::vector<uint64_t> cell{rng.NextBounded(16),
                                       rng.NextBounded(16)};
      const double value = rng.NextUniform(-1.0, 1.0);
      OperationContext ctx;
      ctx.set_timeout(std::chrono::seconds(5));
      const Status status = serving->Add(cell, value, &ctx);
      if (status.ok()) {
        accepted.fetch_add(1);
        local_sum += value;
      } else {
        ASSERT_EQ(status.code(), StatusCode::kUnavailable)
            << status.ToString();
        rejected.fetch_add(1);
      }
    }
    std::lock_guard<std::mutex> lock(sum_mu);
    accepted_sum += local_sum;
  };

  const auto reader = [&](int id) {
    Xoshiro256 rng(2000 + static_cast<uint64_t>(id));
    for (int i = 0; i < kQueriesPerReader; ++i) {
      if (i % 2 == 0) {
        const std::vector<uint64_t> p{rng.NextBounded(16),
                                      rng.NextBounded(16)};
        const auto v = serving->PointQuery(p);
        if (!v.ok() || !std::isfinite(*v)) read_failures.fetch_add(1);
      } else {
        std::vector<uint64_t> lo{rng.NextBounded(16), rng.NextBounded(16)};
        std::vector<uint64_t> hi{lo[0] + rng.NextBounded(16 - lo[0]),
                                 lo[1] + rng.NextBounded(16 - lo[1])};
        const auto v = serving->RangeSum(lo, hi);
        if (!v.ok() || !std::isfinite(*v)) read_failures.fetch_add(1);
      }
      if (writers_done.load() && i % 16 == 0) break;
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer, w);
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader, r);
  for (size_t t = 0; t < static_cast<size_t>(kWriters); ++t) {
    threads[t].join();
  }
  writers_done.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_GT(accepted.load(), 0u);

  ASSERT_OK(serving->DrainAll());
  EXPECT_EQ(serving->pending_deltas(), 0u);
  const ServingStats stats = serving->stats();
  EXPECT_EQ(stats.acked_deltas, accepted.load());
  EXPECT_EQ(stats.applied_seq, stats.last_seq);
  EXPECT_GE(stats.apply_batches, 1u);

  // The whole-domain sum equals the sum of every accepted delta
  // (mathematically; thread interleaving permutes the FP order, hence the
  // tolerance).
  const std::vector<uint64_t> lo{0, 0};
  const std::vector<uint64_t> hi{15, 15};
  ASSERT_OK_AND_ASSIGN(const double total, serving->RangeSum(lo, hi));
  EXPECT_NEAR(total, accepted_sum, 1e-6);

  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
