#include "shiftsplit/service/serving_cube.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <filesystem>
#include <numeric>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/util/random.h"
#include "testing.h"

namespace shiftsplit {
namespace {

std::filesystem::path MakeTempDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("shiftsplit_serving_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Result<std::unique_ptr<WaveletCube>> MakeCube() {
  WaveletCube::Options options;  // standard form, b = 2
  return WaveletCube::CreateInMemory({4, 4}, options);
}

// One randomized delta at a distinct cell per index (5 is coprime to 256,
// so i*5 mod 256 enumerates every cell exactly once).
struct Delta {
  std::vector<uint64_t> coords;
  double value = 0.0;
};

std::vector<Delta> MakeDeltas(uint64_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Delta> deltas;
  deltas.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t flat = (i * 5) % 256;
    deltas.push_back(
        {{flat / 16, flat % 16}, rng.NextDouble() * 4.0 - 2.0});
  }
  return deltas;
}

// Applies one delta to the reference cube exactly the way ServingCube
// decomposes it: a single-cell kUpdate chunk.
Status ApplyReference(WaveletCube* cube, const Delta& delta) {
  Tensor cell(TensorShape({1, 1}));
  cell[0] = delta.value;
  return cube->Update(cell, delta.coords);
}

// The acceptance-criterion test: freeze a genuine mid-apply state (a prefix
// of the accepted deltas applied to the store, the rest still pending) and
// check thousands of randomized point/range answers are bit-identical to a
// reference cube that applied every delta synchronously.
TEST(ServingCubeTest, MidApplyAnswersBitIdenticalToFullyApplied) {
  ASSERT_OK_AND_ASSIGN(auto base, MakeCube());
  ServingCube::Options options;
  options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::Attach(std::move(base), options));
  ASSERT_OK_AND_ASSIGN(auto reference, MakeCube());

  const std::vector<Delta> deltas = MakeDeltas(200, 20260806);
  constexpr uint64_t kPrefix = 120;  // deltas applied to the store

  for (uint64_t i = 0; i < kPrefix; ++i) {
    ASSERT_OK(serving->Add(deltas[i].coords, deltas[i].value));
  }
  // Pin the drain horizon at the current sequence number, then keep
  // writing: the drain below applies exactly the prefix and must leave the
  // rest pending — the state a worker is in mid-apply.
  {
    DeltaBuffer::Snapshot pin(serving->buffer_for_test());
    for (uint64_t i = kPrefix; i < deltas.size(); ++i) {
      ASSERT_OK(serving->Add(deltas[i].coords, deltas[i].value));
    }
    const Status drained = serving->DrainAll();
    ASSERT_EQ(drained.code(), StatusCode::kUnavailable)
        << drained.ToString();
  }
  EXPECT_EQ(serving->stats().applied_seq, kPrefix);
  EXPECT_GT(serving->pending_deltas(), 0u);

  for (const Delta& delta : deltas) {
    ASSERT_OK(ApplyReference(reference.get(), delta));
  }

  Xoshiro256 rng(7);
  uint64_t checked = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<uint64_t> p{rng.NextBounded(16), rng.NextBounded(16)};
    ASSERT_OK_AND_ASSIGN(const double got, serving->PointQuery(p));
    ASSERT_OK_AND_ASSIGN(const double want, reference->PointQuery(p));
    ASSERT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
        << "point (" << p[0] << "," << p[1] << "): " << got << " vs "
        << want;
    ++checked;
  }
  for (int i = 0; i < 5000; ++i) {
    std::vector<uint64_t> lo{rng.NextBounded(16), rng.NextBounded(16)};
    std::vector<uint64_t> hi{lo[0] + rng.NextBounded(16 - lo[0]),
                             lo[1] + rng.NextBounded(16 - lo[1])};
    ASSERT_OK_AND_ASSIGN(const double got, serving->RangeSum(lo, hi));
    ASSERT_OK_AND_ASSIGN(const double want, reference->RangeSum(lo, hi));
    ASSERT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
        << "range sum [" << lo[0] << "," << lo[1] << "]..[" << hi[0] << ","
        << hi[1] << "]: " << got << " vs " << want;
    ++checked;
  }
  EXPECT_EQ(checked, 10000u);

  // Snapshot released: draining the rest must keep answers identical.
  ASSERT_OK(serving->DrainAll());
  EXPECT_EQ(serving->pending_deltas(), 0u);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint64_t> p{rng.NextBounded(16), rng.NextBounded(16)};
    ASSERT_OK_AND_ASSIGN(const double got, serving->PointQuery(p));
    ASSERT_OK_AND_ASSIGN(const double want, reference->PointQuery(p));
    ASSERT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want));
  }
}

TEST(ServingCubeTest, CoalescesRepeatedCellsAndCountsStats) {
  ASSERT_OK_AND_ASSIGN(auto base, MakeCube());
  ServingCube::Options options;
  options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::Attach(std::move(base), options));

  const std::vector<uint64_t> cell{3, 7};
  const std::vector<uint64_t> other{9, 1};
  ASSERT_OK(serving->Add(cell, 1.0));
  ASSERT_OK(serving->Add(cell, 2.0));
  ASSERT_OK(serving->Add(cell, 0.5));
  ASSERT_OK(serving->Add(other, -1.0));

  ServingStats stats = serving->stats();
  EXPECT_EQ(stats.acked_deltas, 4u);
  EXPECT_EQ(stats.coalesced_deltas, 2u);
  EXPECT_EQ(stats.pending_deltas, 2u);  // two distinct cells
  EXPECT_EQ(serving->pending_deltas(), 2u);

  ASSERT_OK_AND_ASSIGN(const double merged, serving->PointQuery(cell));
  EXPECT_DOUBLE_EQ(merged, 3.5);
  stats = serving->stats();
  EXPECT_GT(stats.overlay_probes, 0u);
  EXPECT_GT(stats.overlay_hits, 0u);

  ASSERT_OK(serving->DrainAll());
  stats = serving->stats();
  EXPECT_EQ(stats.pending_deltas, 0u);
  EXPECT_EQ(stats.applied_deltas, 4u);
  EXPECT_EQ(stats.apply_batches, 1u);
  EXPECT_EQ(stats.applied_seq, stats.last_seq);
  ASSERT_OK_AND_ASSIGN(const double applied, serving->PointQuery(cell));
  EXPECT_DOUBLE_EQ(applied, 3.5);
}

TEST(ServingCubeTest, BackpressureRejectsUnderDeadlineAndUnblocksAfterDrain) {
  ASSERT_OK_AND_ASSIGN(auto base, MakeCube());
  ServingCube::Options options;
  options.start_workers = false;
  options.max_pending_deltas = 4;
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::Attach(std::move(base), options));

  for (uint64_t i = 0; i < 4; ++i) {
    const std::vector<uint64_t> cell{i, i};
    ASSERT_OK(serving->Add(cell, 1.0));
  }
  // A delta to an already-pending cell coalesces and passes despite the
  // full buffer.
  const std::vector<uint64_t> pending_cell{2, 2};
  ASSERT_OK(serving->Add(pending_cell, 1.0));

  const std::vector<uint64_t> fresh_cell{9, 9};
  OperationContext ctx;
  ctx.set_timeout(std::chrono::milliseconds(30));
  const Status rejected = serving->Add(fresh_cell, 1.0, &ctx);
  ASSERT_EQ(rejected.code(), StatusCode::kUnavailable)
      << rejected.ToString();
  ServingStats stats = serving->stats();
  EXPECT_EQ(stats.rejected_unavailable, 1u);
  EXPECT_GE(stats.stall_waits, 1u);
  EXPECT_GT(stats.stall_us, 0u);

  ASSERT_OK(serving->DrainAll());
  ASSERT_OK(serving->Add(fresh_cell, 1.0));  // room again
  ASSERT_OK_AND_ASSIGN(const double v, serving->PointQuery(fresh_cell));
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(ServingCubeTest, CrashBeforeDrainReplaysAcknowledgedDeltas) {
  const auto dir = MakeTempDir("crash");
  {
    WaveletCube::Options options;
    ASSERT_OK_AND_ASSIGN(
        auto cube, WaveletCube::CreateOnDisk(dir.string(), {4, 4}, options));
    ASSERT_OK(cube->Close());
  }

  const std::vector<Delta> first = MakeDeltas(40, 11);
  ServingCube::Options serve_options;
  serve_options.start_workers = false;
  {
    ASSERT_OK_AND_ASSIGN(
        auto serving,
        ServingCube::OpenOnDisk(dir.string(), 256, serve_options));
    // Apply a prefix so the watermark is nonzero, buffer the rest, crash.
    for (uint64_t i = 0; i < 15; ++i) {
      ASSERT_OK(serving->Add(first[i].coords, first[i].value));
    }
    ASSERT_OK(serving->DrainAll());
    for (uint64_t i = 15; i < first.size(); ++i) {
      ASSERT_OK(serving->Add(first[i].coords, first[i].value));
    }
    EXPECT_EQ(serving->pending_deltas(), 25u);
    ASSERT_OK(serving->CrashForTest());
    // Poisoned: no more writes.
    const std::vector<uint64_t> origin_cell{0, 0};
    EXPECT_FALSE(serving->Add(origin_cell, 1.0).ok());
  }

  // Reopen: the acknowledged-but-unapplied deltas must be back, and every
  // answer must match a reference cube holding all 40.
  {
    ASSERT_OK_AND_ASSIGN(
        auto serving,
        ServingCube::OpenOnDisk(dir.string(), 256, serve_options));
    ServingStats stats = serving->stats();
    EXPECT_EQ(stats.replayed_deltas, 25u);
    EXPECT_EQ(stats.pending_deltas, 25u);
    EXPECT_EQ(stats.applied_seq, 15u);

    ASSERT_OK_AND_ASSIGN(auto reference, MakeCube());
    for (const Delta& delta : first) {
      ASSERT_OK(ApplyReference(reference.get(), delta));
    }
    for (const Delta& delta : first) {
      ASSERT_OK_AND_ASSIGN(const double got,
                           serving->PointQuery(delta.coords));
      ASSERT_OK_AND_ASSIGN(const double want,
                           reference->PointQuery(delta.coords));
      ASSERT_EQ(std::bit_cast<uint64_t>(got),
                std::bit_cast<uint64_t>(want));
    }
    ASSERT_OK(serving->DrainAll());
    EXPECT_EQ(serving->pending_deltas(), 0u);
    ASSERT_OK(serving->Close());
  }
  // After an orderly close the log is gone and nothing replays.
  EXPECT_FALSE(std::filesystem::exists(dir / "deltas.log"));
  {
    ASSERT_OK_AND_ASSIGN(
        auto serving,
        ServingCube::OpenOnDisk(dir.string(), 256, serve_options));
    ServingStats stats = serving->stats();
    EXPECT_EQ(stats.replayed_deltas, 0u);
    EXPECT_EQ(stats.pending_deltas, 0u);
    ASSERT_OK(serving->Close());
  }
  std::filesystem::remove_all(dir);
}

// Satellite: Updater->Appender interleaving through the buffer. Point
// updates to already-filled cells stay buffered while a whole new slice
// arrives via Update; after draining, every block must be byte-identical to
// a store that applied the same operations synchronously in the same order.
TEST(ServingCubeTest, UpdaterAppenderInterleaveMatchesSynchronousBytes) {
  ASSERT_OK_AND_ASSIGN(auto base, MakeCube());
  ServingCube::Options options;
  options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::Attach(std::move(base), options));
  ASSERT_OK_AND_ASSIGN(auto reference, MakeCube());

  Xoshiro256 rng(99);
  // "Old" data: rows 0..7 get scattered point updates; the "appended"
  // slice is rows 8..11, arriving as one dense Update mid-stream.
  std::vector<Delta> old_updates;
  for (int i = 0; i < 24; ++i) {
    old_updates.push_back(
        {{rng.NextBounded(8), rng.NextBounded(16)},
         rng.NextDouble() * 2.0 - 1.0});
  }
  Tensor slice(TensorShape({4, 16}));
  for (uint64_t i = 0; i < slice.size(); ++i) {
    slice[i] = rng.NextDouble() * 2.0 - 1.0;
  }
  const std::vector<uint64_t> slice_origin{8, 0};

  // Interleave: half the point updates, the slice, the other half — the
  // same order on both sides.
  for (int i = 0; i < 12; ++i) {
    ASSERT_OK(serving->Add(old_updates[i].coords, old_updates[i].value));
    ASSERT_OK(ApplyReference(reference.get(), old_updates[i]));
  }
  ASSERT_OK(serving->Update(slice, slice_origin));
  {
    // Reference applies the slice cell-by-cell in row-major order — the
    // documented serving decomposition.
    std::vector<uint64_t> coords(2, 0);
    do {
      Tensor cell(TensorShape({1, 1}));
      cell[0] = slice.At(coords);
      std::vector<uint64_t> absolute{slice_origin[0] + coords[0],
                                     slice_origin[1] + coords[1]};
      ASSERT_OK(reference->Update(cell, absolute));
    } while (slice.shape().Next(coords));
  }
  for (size_t i = 12; i < old_updates.size(); ++i) {
    ASSERT_OK(serving->Add(old_updates[i].coords, old_updates[i].value));
    ASSERT_OK(ApplyReference(reference.get(), old_updates[i]));
  }

  ASSERT_OK(serving->DrainAll());
  EXPECT_EQ(serving->pending_deltas(), 0u);

  TiledStore* got_store = serving->cube()->store();
  TiledStore* want_store = reference->store();
  const uint64_t num_blocks = got_store->layout().num_blocks();
  ASSERT_EQ(num_blocks, want_store->layout().num_blocks());
  for (uint64_t block = 0; block < num_blocks; ++block) {
    ASSERT_OK_AND_ASSIGN(PageGuard got,
                         got_store->PinBlock(block, /*for_write=*/false));
    ASSERT_OK_AND_ASSIGN(PageGuard want,
                         want_store->PinBlock(block, /*for_write=*/false));
    ASSERT_EQ(got.span().size(), want.span().size());
    for (size_t slot = 0; slot < got.span().size(); ++slot) {
      ASSERT_EQ(std::bit_cast<uint64_t>(got.span()[slot]),
                std::bit_cast<uint64_t>(want.span()[slot]))
          << "block " << block << " slot " << slot;
    }
  }
}

TEST(ServingCubeTest, StatsSurfaceDurableCounters) {
  const auto dir = MakeTempDir("stats");
  {
    WaveletCube::Options options;
    ASSERT_OK_AND_ASSIGN(
        auto cube, WaveletCube::CreateOnDisk(dir.string(), {4, 4}, options));
    ASSERT_OK(cube->Close());
  }
  ServingCube::Options serve_options;
  serve_options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(
      auto serving,
      ServingCube::OpenOnDisk(dir.string(), 256, serve_options));
  const std::vector<uint64_t> cell_a{1, 2};
  const std::vector<uint64_t> cell_b{3, 4};
  ASSERT_OK(serving->Add(cell_a, 1.5));
  ASSERT_OK(serving->Add(cell_b, -0.5));

  ServingStats stats = serving->stats();
  EXPECT_EQ(stats.acked_deltas, 2u);
  EXPECT_EQ(stats.log_appends, 2u);
  EXPECT_GE(stats.log_syncs, 1u);
  EXPECT_EQ(stats.durable_seq, 2u);
  EXPECT_EQ(stats.last_seq, 2u);
  EXPECT_EQ(stats.applied_seq, 0u);
  EXPECT_FALSE(stats.ToString().empty());

  ASSERT_OK(serving->DrainAll());
  stats = serving->stats();
  EXPECT_EQ(stats.applied_seq, 2u);
  EXPECT_EQ(stats.applied_deltas, 2u);
  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

// Satellite: a full disk is backpressure, not corruption. A failed delta-log
// group commit (ENOSPC surfaces as kResourceExhausted) must bounce the ack
// and mark the cube DEGRADED — never poison it — and once space frees up the
// retained batch flushes with the next Add and the cube is HEALTHY again,
// having lost nothing.
TEST(ServingCubeTest, FullDiskIsBackpressureNotCorruption) {
  const auto dir = MakeTempDir("enospc");
  {
    WaveletCube::Options options;
    ASSERT_OK_AND_ASSIGN(
        auto cube, WaveletCube::CreateOnDisk(dir.string(), {4, 4}, options));
    ASSERT_OK(cube->Close());
  }
  ServingCube::Options serve_options;
  serve_options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(
      auto serving,
      ServingCube::OpenOnDisk(dir.string(), 256, serve_options));

  // "Fill the disk": the next two group commits fail like ENOSPC would.
  int failures_left = 2;
  serving->log_for_test()->set_flush_hook_for_test([&failures_left] {
    if (failures_left > 0) {
      --failures_left;
      return Status::ResourceExhausted("no space left on device");
    }
    return Status::OK();
  });

  const std::vector<uint64_t> cell_a{1, 2};
  const std::vector<uint64_t> cell_b{3, 4};
  const Status full_a = serving->Add(cell_a, 2.5);
  ASSERT_FALSE(full_a.ok());
  EXPECT_EQ(full_a.code(), StatusCode::kResourceExhausted);
  const Status full_b = serving->Add(cell_b, -1.25);
  ASSERT_FALSE(full_b.ok());
  EXPECT_EQ(full_b.code(), StatusCode::kResourceExhausted);

  // Degraded, not poisoned: reads still serve (and see the unacked
  // deltas), the poison status stays OK.
  EXPECT_EQ(serving->health(), ShardHealth::kDegraded);
  ASSERT_OK(serving->poison_status());
  ASSERT_OK_AND_ASSIGN(const double read_a, serving->PointQuery(cell_a));
  EXPECT_EQ(read_a, 2.5);
  ServingStats stats = serving->stats();
  EXPECT_EQ(stats.health, ShardHealth::kDegraded);
  EXPECT_GE(stats.log_sync_failures, 2u);
  EXPECT_EQ(stats.poison_code, StatusCode::kOk);

  // "Space freed": the retry (the next Add) flushes the retained batch
  // too, so all three records turn durable and health clears.
  const std::vector<uint64_t> cell_c{0, 3};
  ASSERT_OK(serving->Add(cell_c, 4.0));
  EXPECT_EQ(serving->health(), ShardHealth::kHealthy);
  stats = serving->stats();
  EXPECT_EQ(stats.health, ShardHealth::kHealthy);
  EXPECT_EQ(stats.durable_seq, 3u);

  // The cube serves on without any recovery cycle: drain and verify.
  ASSERT_OK(serving->DrainAll());
  ASSERT_OK_AND_ASSIGN(const double drained_a, serving->PointQuery(cell_a));
  EXPECT_EQ(drained_a, 2.5);
  ASSERT_OK_AND_ASSIGN(const double drained_c, serving->PointQuery(cell_c));
  EXPECT_EQ(drained_c, 4.0);
  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

// Satellite: poisoning captures its cause — code, message and a
// steady-clock timestamp — and stats expose the QUARANTINED health.
TEST(ServingCubeTest, PoisonCauseSurfacesInStats) {
  ASSERT_OK_AND_ASSIGN(auto base, MakeCube());
  ServingCube::Options options;
  options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::Attach(std::move(base), options));
  EXPECT_EQ(serving->health(), ShardHealth::kHealthy);
  EXPECT_EQ(serving->stats().poisoned_at_us, 0u);

  ASSERT_OK(serving->CrashForTest());
  EXPECT_EQ(serving->health(), ShardHealth::kQuarantined);
  const Status poison = serving->poison_status();
  ASSERT_FALSE(poison.ok());

  const ServingStats stats = serving->stats();
  EXPECT_EQ(stats.health, ShardHealth::kQuarantined);
  EXPECT_EQ(stats.poison_code, poison.code());
  EXPECT_EQ(stats.poison_message, poison.message());
  EXPECT_FALSE(stats.poison_message.empty());
  EXPECT_GT(stats.poisoned_at_us, 0u);
  // The rendered stats carry the cause for operators.
  EXPECT_NE(stats.ToString().find("QUARANTINED"), std::string::npos);
  EXPECT_NE(stats.ToString().find(stats.poison_message),
            std::string::npos);
}

TEST(ServingCubeTest, RejectsNonstandardAndNullCubes) {
  WaveletCube::Options options;
  options.form = StoreForm::kNonstandard;
  ASSERT_OK_AND_ASSIGN(auto cube,
                       WaveletCube::CreateInMemory({4, 4}, options));
  const auto nonstandard = ServingCube::Attach(std::move(cube));
  ASSERT_FALSE(nonstandard.ok());
  EXPECT_EQ(nonstandard.status().code(), StatusCode::kUnimplemented);

  const auto null_cube = ServingCube::Attach(nullptr);
  ASSERT_FALSE(null_cube.ok());
  EXPECT_EQ(null_cube.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shiftsplit
