// Unit tests for the benchmark harness helpers: the strict `--json <path>`
// argv matrix (the old parser silently accepted junk whenever a valid pair
// appeared anywhere in argv) and the BenchJson Row()/Field() ordering guard
// (Field before any Row used to append to rows_.back() of an empty vector —
// undefined behavior; it must die loudly instead).

#include "bench_util.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace shiftsplit::bench {
namespace {

// Builds a mutable argv from string literals; keeps the storage alive.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) ptrs_.push_back(s.data());
    ptrs_.push_back(nullptr);
  }
  int argc() const { return static_cast<int>(strings_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(TryParseJsonPathTest, NoArgumentsMeansNoReport) {
  Argv a({"bench"});
  std::string path = "stale";
  EXPECT_TRUE(TryParseJsonPath(a.argc(), a.argv(), &path));
  EXPECT_EQ(path, "");
}

TEST(TryParseJsonPathTest, AcceptsTheJsonPair) {
  Argv a({"bench", "--json", "out.json"});
  std::string path;
  EXPECT_TRUE(TryParseJsonPath(a.argc(), a.argv(), &path));
  EXPECT_EQ(path, "out.json");
}

TEST(TryParseJsonPathTest, RejectsFlagWithoutPath) {
  Argv a({"bench", "--json"});
  std::string path;
  EXPECT_FALSE(TryParseJsonPath(a.argc(), a.argv(), &path));
}

TEST(TryParseJsonPathTest, RejectsStrayToken) {
  Argv a({"bench", "out.json"});
  std::string path;
  EXPECT_FALSE(TryParseJsonPath(a.argc(), a.argv(), &path));
}

TEST(TryParseJsonPathTest, RejectsMisspelledFlag) {
  Argv a({"bench", "--jsonn", "out.json"});
  std::string path;
  EXPECT_FALSE(TryParseJsonPath(a.argc(), a.argv(), &path));
}

TEST(TryParseJsonPathTest, RejectsJunkBeforeAValidPair) {
  // The regression that motivated the rewrite: a valid pair later in argv
  // used to make the parser swallow any garbage in front of it.
  Argv a({"bench", "oops", "--json", "out.json"});
  std::string path;
  EXPECT_FALSE(TryParseJsonPath(a.argc(), a.argv(), &path));
}

TEST(TryParseJsonPathTest, RejectsTrailingJunkAfterAValidPair) {
  Argv a({"bench", "--json", "out.json", "oops"});
  std::string path;
  EXPECT_FALSE(TryParseJsonPath(a.argc(), a.argv(), &path));
}

TEST(TryParseJsonPathTest, RejectsDuplicatePairs) {
  Argv a({"bench", "--json", "a.json", "--json", "b.json"});
  std::string path;
  EXPECT_FALSE(TryParseJsonPath(a.argc(), a.argv(), &path));
}

TEST(TryParseJsonPathTest, RejectsEmptyPath) {
  Argv a({"bench", "--json", ""});
  std::string path;
  EXPECT_FALSE(TryParseJsonPath(a.argc(), a.argv(), &path));
}

TEST(TryParseJsonPathTest, RejectsPathThatLooksLikeTheFlag) {
  // `--json --json` parses as flag + path "--json": the path slot accepts
  // any non-empty token, which is deliberate (paths may start with dashes),
  // so this is ACCEPTED — document the contract.
  Argv a({"bench", "--json", "--json"});
  std::string path;
  EXPECT_TRUE(TryParseJsonPath(a.argc(), a.argv(), &path));
  EXPECT_EQ(path, "--json");
}

using JsonPathFromArgsDeathTest = ::testing::Test;

TEST(JsonPathFromArgsDeathTest, ExitsOnStrayArgument) {
  Argv a({"bench", "oops", "--json", "out.json"});
  EXPECT_EXIT(JsonPathFromArgs(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "usage:");
}

TEST(JsonPathFromArgsDeathTest, ExitsOnMissingPath) {
  Argv a({"bench", "--json"});
  EXPECT_EXIT(JsonPathFromArgs(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "usage:");
}

TEST(JsonPathFromArgsTest, PassesThroughTheAcceptedShapes) {
  Argv bare({"bench"});
  EXPECT_EQ(JsonPathFromArgs(bare.argc(), bare.argv()), "");
  Argv pair({"bench", "--json", "out.json"});
  EXPECT_EQ(JsonPathFromArgs(pair.argc(), pair.argv()), "out.json");
}

using BenchJsonDeathTest = ::testing::Test;

TEST(BenchJsonDeathTest, FieldBeforeAnyRowDies) {
  EXPECT_EXIT(
      {
        BenchJson report("t");
        report.Field("k", uint64_t{1});
      },
      ::testing::ExitedWithCode(1), "before any Row");
}

TEST(BenchJsonTest, RowThenFieldsWritesValidShape) {
  BenchJson report("t");
  report.Row("cfg").Field("a", uint64_t{1}).Field("b", 1.5, 1);
  // Write() with an empty path is a no-op; reaching here without dying is
  // the assertion (the death test above covers the misuse path).
  report.Write("");
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

}  // namespace
}  // namespace shiftsplit::bench
