// Shared gtest helpers for the shiftsplit test suites.

#ifndef SHIFTSPLIT_TESTS_TESTING_H_
#define SHIFTSPLIT_TESTS_TESTING_H_

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "shiftsplit/util/random.h"
#include "shiftsplit/util/status.h"

#define ASSERT_OK(expr)                          \
  do {                                           \
    const ::shiftsplit::Status _st = (expr);     \
    ASSERT_TRUE(_st.ok()) << _st.ToString();     \
  } while (false)

#define EXPECT_OK(expr)                          \
  do {                                           \
    const ::shiftsplit::Status _st = (expr);     \
    EXPECT_TRUE(_st.ok()) << _st.ToString();     \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)            \
  ASSERT_OK_AND_ASSIGN_IMPL(                        \
      SS_CONCAT(_ss_test_result_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)      \
  auto tmp = (rexpr);                                   \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();     \
  lhs = std::move(tmp).value()

namespace shiftsplit::testing {

/// Element-wise near-equality for spans of doubles.
inline void ExpectNear(std::span<const double> expected,
                       std::span<const double> actual, double tol = 1e-9) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected[i], actual[i], tol) << "at index " << i;
  }
}

/// Deterministic pseudo-random vector in [-1, 1).
inline std::vector<double> RandomVector(size_t size, uint64_t seed) {
  ::shiftsplit::Xoshiro256 rng(seed);
  std::vector<double> v(size);
  for (auto& x : v) x = rng.NextUniform(-1.0, 1.0);
  return v;
}

}  // namespace shiftsplit::testing

#endif  // SHIFTSPLIT_TESTS_TESTING_H_
