// End-to-end pipeline tests: generate a dataset, transform it chunk by
// chunk onto a tile store, then query, batch-update, append and reconstruct
// — everything a downstream user would chain together.

#include <gtest/gtest.h>

#include "shiftsplit/core/appender.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/data/precipitation.h"
#include "shiftsplit/data/temperature.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(EndToEndTest, TemperatureCubeStandardPipeline) {
  TemperatureOptions data_options;
  data_options.log_lat = 3;
  data_options.log_lon = 3;
  data_options.log_alt = 2;
  data_options.log_time = 4;
  auto dataset = MakeTemperatureDataset(data_options);
  const std::vector<uint32_t> log_dims{3, 3, 2, 4};

  auto layout = std::make_unique<StandardTiling>(log_dims, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 512));
  ASSERT_OK(
      TransformDatasetStandard(dataset.get(), 2, store.get()).status());

  // Point queries in both modes agree with the generator.
  QueryOptions path_mode, slot_mode;
  slot_mode.use_scaling_slots = true;
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    std::vector<uint64_t> point{rng.NextBounded(8), rng.NextBounded(8),
                                rng.NextBounded(4), rng.NextBounded(16)};
    ASSERT_OK_AND_ASSIGN(
        const double via_path,
        PointQueryStandard(store.get(), log_dims, point, path_mode));
    ASSERT_OK_AND_ASSIGN(
        const double via_slots,
        PointQueryStandard(store.get(), log_dims, point, slot_mode));
    EXPECT_NEAR(via_path, dataset->Cell(point), 1e-8);
    EXPECT_NEAR(via_slots, dataset->Cell(point), 1e-8);
  }

  // A range sum agrees with summing the generator.
  std::vector<uint64_t> lo{1, 2, 0, 3}, hi{5, 6, 3, 12};
  double brute = 0.0;
  std::vector<uint64_t> c = lo;
  for (c[0] = lo[0]; c[0] <= hi[0]; ++c[0])
    for (c[1] = lo[1]; c[1] <= hi[1]; ++c[1])
      for (c[2] = lo[2]; c[2] <= hi[2]; ++c[2])
        for (c[3] = lo[3]; c[3] <= hi[3]; ++c[3]) brute += dataset->Cell(c);
  ASSERT_OK_AND_ASSIGN(const double sum,
                       RangeSumStandard(store.get(), log_dims, lo, hi,
                                        QueryOptions{}));
  EXPECT_NEAR(sum, brute, 1e-6);

  // Batch-update a region, then reconstruct it.
  Tensor deltas(TensorShape({2, 2, 2, 2}));
  deltas.Fill(1.25);
  std::vector<uint64_t> origin{3, 3, 1, 5};
  ASSERT_OK(UpdateRangeStandard(store.get(), log_dims, deltas, origin,
                                Normalization::kAverage));
  std::vector<uint64_t> q{4, 4, 2, 6};
  ASSERT_OK_AND_ASSIGN(const double updated,
                       PointQueryStandard(store.get(), log_dims, q,
                                          slot_mode));
  EXPECT_NEAR(updated, dataset->Cell(q) + 1.25, 1e-8);
}

TEST(EndToEndTest, NonstandardCubePipeline) {
  TemperatureOptions data_options;
  data_options.log_lat = 4;
  data_options.log_lon = 4;
  data_options.log_alt = 4;
  data_options.log_time = 4;
  auto dataset = MakeTemperatureDataset(data_options);
  const uint32_t n = 4;

  auto layout = std::make_unique<NonstandardTiling>(4, n, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 512));
  TransformOptions options;
  options.zorder = true;
  ASSERT_OK(TransformDatasetNonstandard(dataset.get(), 2, store.get(),
                                        options)
                .status());

  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;
  Xoshiro256 rng(2);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint64_t> point{rng.NextBounded(16), rng.NextBounded(16),
                                rng.NextBounded(16), rng.NextBounded(16)};
    ASSERT_OK_AND_ASSIGN(
        const double v,
        PointQueryNonstandard(store.get(), n, point, slot_mode));
    EXPECT_NEAR(v, dataset->Cell(point), 1e-8);
  }

  // Reconstruct a dyadic cube.
  std::vector<uint64_t> range_pos{1, 2, 3, 0};
  ASSERT_OK_AND_ASSIGN(Tensor box,
                       ReconstructDyadicNonstandard(store.get(), n, 2,
                                                    range_pos,
                                                    Normalization::kAverage));
  std::vector<uint64_t> local(4, 0);
  do {
    std::vector<uint64_t> cell(4);
    for (uint32_t i = 0; i < 4; ++i) cell[i] = (range_pos[i] << 2) + local[i];
    ASSERT_NEAR(box.At(local), dataset->Cell(cell), 1e-8);
  } while (box.shape().Next(local));
}

TEST(EndToEndTest, PrecipitationAppendScenario) {
  // Figure 13's pipeline at test scale: monthly slabs into an appender,
  // with correctness verified against the full-period dataset.
  PrecipitationOptions options;
  const uint64_t kMonths = 6;
  Appender::Options a_options;
  a_options.b = 2;
  a_options.pool_blocks = 128;
  ASSERT_OK_AND_ASSIGN(auto appender,
                       Appender::Create({3, 3, 5}, 2, a_options));
  for (uint64_t month = 0; month < kMonths; ++month) {
    ASSERT_OK(appender->Append(MakePrecipitationMonth(month, options)));
  }
  EXPECT_EQ(appender->filled(), kMonths * 32);
  EXPECT_EQ(appender->capacity(), 256u);  // 32 -> 64 -> 128 -> 256
  EXPECT_EQ(appender->expansions(), 3u);

  auto dataset = MakePrecipitationDataset(kMonths, options);
  Xoshiro256 rng(3);
  for (int i = 0; i < 60; ++i) {
    std::vector<uint64_t> point{rng.NextBounded(8), rng.NextBounded(8),
                                rng.NextBounded(kMonths * 32)};
    ASSERT_OK_AND_ASSIGN(
        const double v,
        PointQueryStandard(appender->store(), appender->log_dims(), point,
                           QueryOptions{}));
    EXPECT_NEAR(v, dataset->Cell(point), 1e-8);
  }
}

}  // namespace
}  // namespace shiftsplit
