// Measured-I/O tests of the paper's analytical results: Table 1 (tiles
// touched by SHIFT and SPLIT), Table 2 / Results 1-2 (transformation
// complexities) and the appending costs of §5.2. These pin the *counts* the
// benchmarks later sweep.

#include <gtest/gtest.h>

#include "shiftsplit/core/appender.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/util/bitops.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

TEST(Table1Test, StandardTilesTouchedByOneChunk) {
  // d=2, N=2^8, M=2^4, B=2^2. Table 1: SHIFT touches (M/B)^d tiles; SPLIT
  // touches about (M/B + log_B(N/M))^d - (M/B)^d more.
  const uint32_t d = 2, n = 8, m = 4, b = 2;
  const std::vector<uint32_t> log_dims(d, n);
  auto layout = std::make_unique<StandardTiling>(log_dims, b);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 4096));
  Tensor chunk(TensorShape::Cube(d, uint64_t{1} << m),
               RandomVector(1u << (d * m), 1));
  std::vector<uint64_t> pos{2, 3};
  ApplyOptions options;
  options.maintain_scaling_slots = false;
  manager.stats().Reset();
  ASSERT_OK(ApplyChunkStandard(chunk, pos, log_dims, store.get(),
                               Normalization::kAverage, options));
  ASSERT_OK(store->Flush());
  // Distinct blocks touched (fresh pool; every touched block missed once).
  const uint64_t touched = manager.stats().block_reads;
  // Per dim: the chunk's subtree rows 4..7 cover bands 2,3 -> 1 + 4 = 5
  // tiles; the path above (rows 0..3, bands 0,1) adds 2. So 7 per dim ->
  // SHIFT block area 5x5 = 25, total (5+2)^2 = 49.
  EXPECT_EQ(touched, 49u);
}

TEST(Table1Test, NonstandardTilesTouchedByOneChunk) {
  const uint32_t d = 2, n = 8, m = 4, b = 2;
  auto layout = std::make_unique<NonstandardTiling>(d, n, b);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 4096));
  Tensor chunk(TensorShape::Cube(d, uint64_t{1} << m),
               RandomVector(1u << (d * m), 2));
  std::vector<uint64_t> pos{2, 3};
  ApplyOptions options;
  options.maintain_scaling_slots = false;
  manager.stats().Reset();
  ASSERT_OK(ApplyChunkNonstandard(chunk, pos, n, store.get(),
                                  Normalization::kAverage, options));
  ASSERT_OK(store->Flush());
  const uint64_t touched = manager.stats().block_reads;
  // Quadtree rows 4..7 within the chunk: band 2 root (1 tile) + band 3
  // (16 tiles) = 17; path above: bands 0 and 1 -> 2 tiles. Total 19 —
  // Table 1: SHIFT (M/B)^d + SPLIT path, much less than the standard form's
  // multiplicative cross product.
  EXPECT_EQ(touched, 19u);
}

TEST(Result1Test, StandardTransformCoefficientCount) {
  // Result 1 in coefficient units: per chunk (M + log(N/M))^d writes.
  const uint32_t d = 2, n = 6, m = 3;
  auto dataset = MakeUniformDataset(TensorShape::Cube(d, 1u << n), 0.0, 1.0,
                                    3);
  const std::vector<uint32_t> log_dims(d, n);
  auto layout = std::make_unique<StandardTiling>(log_dims, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 4096));
  TransformOptions options;
  options.maintain_scaling_slots = false;
  ASSERT_OK_AND_ASSIGN(
      const TransformResult result,
      TransformDatasetStandard(dataset.get(), m, store.get(), options));
  const uint64_t chunks = uint64_t{1} << (d * (n - m));
  const uint64_t per_chunk = IPow((uint64_t{1} << m) + (n - m), d);
  EXPECT_EQ(result.store_io.coeff_writes, chunks * per_chunk);
}

TEST(Result2Test, NonstandardTransformCoefficientCount) {
  // Result 2 in coefficient units: per chunk M^d + (2^d - 1)(n - m) + 1.
  const uint32_t d = 2, n = 6, m = 2;
  auto dataset = MakeUniformDataset(TensorShape::Cube(d, 1u << n), 0.0, 1.0,
                                    4);
  auto layout = std::make_unique<NonstandardTiling>(d, n, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 4096));
  TransformOptions options;
  options.maintain_scaling_slots = false;
  ASSERT_OK_AND_ASSIGN(
      const TransformResult result,
      TransformDatasetNonstandard(dataset.get(), m, store.get(), options));
  const uint64_t chunks = uint64_t{1} << (d * (n - m));
  const uint64_t per_chunk =
      (uint64_t{1} << (d * m)) - 1 + 3 * (n - m) + 1;
  EXPECT_EQ(result.store_io.coeff_writes, chunks * per_chunk);
}

TEST(Result2Test, ZOrderBlockIoApproachesOptimal) {
  // Result 2: with z-order and a pool holding the path, block I/O is
  // O((N/B)^d): every block written back once plus the bounded path reuse.
  const uint32_t d = 2, n = 7, m = 2, b = 2;
  auto dataset = MakeUniformDataset(TensorShape::Cube(d, 1u << n), 0.0, 1.0,
                                    5);
  auto layout = std::make_unique<NonstandardTiling>(d, n, b);
  const uint64_t num_blocks = layout->num_blocks();
  MemoryBlockManager manager(layout->block_capacity());
  // Pool: enough for the quadtree path plus the working tile.
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 8));
  TransformOptions options;
  options.maintain_scaling_slots = false;
  options.zorder = true;
  ASSERT_OK_AND_ASSIGN(
      const TransformResult result,
      TransformDatasetNonstandard(dataset.get(), m, store.get(), options));
  EXPECT_LE(result.store_io.block_writes, num_blocks + 64);
  EXPECT_LE(result.store_io.block_reads, 2 * num_blocks);
}

TEST(AppendingTest, ExpansionCostIsLinearInStoredCoefficients) {
  // §5.2: expansion shifts every stored coefficient once — O(N^d) coeff I/O,
  // O(N^d / B^d) block I/O.
  Appender::Options options;
  options.b = 2;
  options.pool_blocks = 256;
  ASSERT_OK_AND_ASSIGN(auto appender, Appender::Create({4, 4}, 1, options));
  Tensor slab(TensorShape({16, 16}), RandomVector(256, 6));
  ASSERT_OK(appender->Append(slab));
  const IoStats before = appender->total_io();
  ASSERT_OK(appender->Expand());
  const IoStats delta = appender->total_io() - before;
  EXPECT_EQ(delta.coeff_reads, 256u);
  // 16 rows x (15 shifted + 2 split) = 272.
  EXPECT_EQ(delta.coeff_writes, 272u);
  // Block I/O bounded by old blocks read + new blocks first-touched.
  const uint64_t old_blocks = 25;   // (1 + 4)^2: 5 tiles per dimension
  const uint64_t new_blocks = 105;  // 5 x 21 (dim 1 grew to n=5: 1+4+16)
  EXPECT_LE(delta.block_reads, old_blocks + new_blocks);
}

TEST(AppendingTest, InCapacityAppendIsCheap) {
  // Appends that fit the allocated domain cost only the chunk apply:
  // (M + path)^d-ish writes, no expansion.
  Appender::Options options;
  options.b = 2;
  options.pool_blocks = 256;
  ASSERT_OK_AND_ASSIGN(auto appender, Appender::Create({3, 5}, 1, options));
  Tensor slab(TensorShape({8, 8}), RandomVector(64, 7));
  ASSERT_OK(appender->Append(slab));
  const IoStats first = appender->total_io();
  ASSERT_OK(appender->Append(slab));
  const IoStats delta = appender->total_io() - first;
  EXPECT_EQ(appender->expansions(), 0u);
  // Per Result 1 with per-dim (8 + 0) x (8 + 2): shifted details plus the
  // dim-1 path above the slab.
  EXPECT_EQ(delta.coeff_writes, 8u * 10u);
}

}  // namespace
}  // namespace shiftsplit
