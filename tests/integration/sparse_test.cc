// Sparse-data tests (paper §5.1's modification: with z non-zero values the
// transformation costs O(z + z log(N/z)) instead of touching everything).

#include <gtest/gtest.h>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
};

Bundle MakeBundle(std::vector<uint32_t> log_dims, uint32_t b) {
  Bundle bundle;
  auto layout = std::make_unique<StandardTiling>(std::move(log_dims), b);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 4096);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  return bundle;
}

TEST(SparseTransformTest, SparseModeIsExact) {
  // Correctness first: the sparse path must produce the identical transform.
  const std::vector<uint32_t> log_dims{5, 5};
  auto dataset = MakeSparseDataset(TensorShape({32, 32}), 0.05, 1.0, 1);
  ASSERT_OK_AND_ASSIGN(Tensor direct, dataset->Materialize());
  ASSERT_OK(ForwardStandard(&direct, Normalization::kAverage));

  auto bundle = MakeBundle(log_dims, 2);
  TransformOptions options;
  options.sparse = true;
  ASSERT_OK(TransformDatasetStandard(dataset.get(), 3, bundle.store.get(),
                                     options)
                .status());
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, bundle.store->Get(address));
    ASSERT_NEAR(v, direct.At(address), 1e-9);
  } while (direct.shape().Next(address));
}

TEST(SparseTransformTest, SparseModeSkipsZeroRegions) {
  // A dataset that is zero outside a small corner: sparse mode must do far
  // less coefficient I/O than the dense path.
  const std::vector<uint32_t> log_dims{6, 6};
  TensorShape shape({64, 64});
  FunctionDataset dataset(shape, [](std::span<const uint64_t> c) {
    return (c[0] < 8 && c[1] < 8)
               ? static_cast<double>(c[0] * 8 + c[1] + 1)
               : 0.0;
  });
  FunctionDataset dataset2(shape, [](std::span<const uint64_t> c) {
    return (c[0] < 8 && c[1] < 8)
               ? static_cast<double>(c[0] * 8 + c[1] + 1)
               : 0.0;
  });

  auto dense = MakeBundle(log_dims, 2);
  TransformOptions dense_options;
  dense_options.maintain_scaling_slots = false;
  ASSERT_OK_AND_ASSIGN(
      const TransformResult dense_result,
      TransformDatasetStandard(&dataset, 3, dense.store.get(),
                               dense_options));

  auto sparse = MakeBundle(log_dims, 2);
  TransformOptions sparse_options = dense_options;
  sparse_options.sparse = true;
  ASSERT_OK_AND_ASSIGN(
      const TransformResult sparse_result,
      TransformDatasetStandard(&dataset2, 3, sparse.store.get(),
                               sparse_options));

  EXPECT_EQ(sparse_result.chunks, 1u);  // only the non-zero chunk applied
  EXPECT_LT(sparse_result.store_io.coeff_writes * 20,
            dense_result.store_io.coeff_writes);

  // And the sparse store answers queries identically.
  std::vector<uint64_t> point{3, 5};
  ASSERT_OK_AND_ASSIGN(const double a,
                       PointQueryStandard(dense.store.get(), log_dims, point,
                                          QueryOptions{}));
  ASSERT_OK_AND_ASSIGN(const double b,
                       PointQueryStandard(sparse.store.get(), log_dims, point,
                                          QueryOptions{}));
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(SparseTransformTest, NonstandardSparseModeIsExact) {
  auto dataset = MakeSparseDataset(TensorShape::Cube(2, 32), 0.03, 1.0, 2);
  ASSERT_OK_AND_ASSIGN(Tensor direct, dataset->Materialize());
  Tensor expected = direct;
  ASSERT_OK(ForwardNonstandard(&expected, Normalization::kAverage));

  auto layout = std::make_unique<NonstandardTiling>(2, 5, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 1024));
  TransformOptions options;
  options.sparse = true;
  options.zorder = true;
  ASSERT_OK(TransformDatasetNonstandard(dataset.get(), 2, store.get(),
                                        options)
                .status());
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, expected.At(address), 1e-9);
  } while (expected.shape().Next(address));
}

TEST(SparseTransformTest, IoScalesWithDensity) {
  const std::vector<uint32_t> log_dims{6, 6};
  uint64_t previous = 0;
  for (double density : {0.01, 0.05, 0.25}) {
    auto dataset =
        MakeSparseDataset(TensorShape({64, 64}), density, 0.0, 3);
    auto bundle = MakeBundle(log_dims, 2);
    TransformOptions options;
    options.sparse = true;
    options.maintain_scaling_slots = false;
    ASSERT_OK_AND_ASSIGN(
        const TransformResult result,
        TransformDatasetStandard(dataset.get(), 2, bundle.store.get(),
                                 options));
    EXPECT_GT(result.store_io.coeff_writes, previous);
    previous = result.store_io.coeff_writes;
  }
}

}  // namespace
}  // namespace shiftsplit
