// Bit-rot acceptance matrix (DESIGN.md §12): flip a byte in every device
// block one at a time — and then one per parity group at once, under live
// writers — and verify the scrub-and-repair path restores the store to an
// image byte-identical to an uncorrupted reference run, without the store
// ever degrading to read-only or the cube leaving HEALTHY. A deliberate
// double fault still degrades to read-only exactly as before parity.
//
// Byte-identity across the reference and corrupted runs holds because the
// deltas are dyadic-exact integers (every coefficient is computed exactly,
// so drain batching cannot perturb the bits) and repair rewrites the exact
// reconstructed payload with a deterministic footer.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "testing.h"

namespace shiftsplit {
namespace {

constexpr uint64_t kGroup = 4;

std::filesystem::path MakeTempDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("shiftsplit_bitrot_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

void FlipByte(const std::string& file, uint64_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << file;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

// Byte-identity with a useful failure message: which stride and offset
// diverged first (stride-local offsets make the corrupt field obvious).
void ExpectSameImage(const std::vector<char>& got,
                     const std::vector<char>& want, uint64_t stride,
                     const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (uint64_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      FAIL() << what << ": first difference at byte " << i << " (stride "
             << i / stride << " offset " << i % stride << "): got 0x"
             << std::hex << (static_cast<unsigned>(got[i]) & 0xff)
             << " want 0x" << (static_cast<unsigned>(want[i]) & 0xff);
    }
  }
}

void CreateParityCube(const std::filesystem::path& dir, uint64_t* stride_out) {
  WaveletCube::Options options;
  options.parity_group = kGroup;
  ASSERT_OK_AND_ASSIGN(auto cube,
                       WaveletCube::CreateOnDisk(dir.string(), {3, 3},
                                                 options));
  *stride_out = cube->store()->layout().block_capacity() * sizeof(double) + 16;
  ASSERT_OK(cube->Close());
}

// The same dyadic-exact delta sequence in every run; `phase` selects the
// prefix (0) or the tail applied under corruption (1).
void AddPhase(ServingCube* serving, int phase, std::vector<double>* expected,
              std::vector<Status>* failures = nullptr) {
  const uint64_t n = phase == 0 ? 100 : 200;
  const uint64_t salt = phase == 0 ? 11 : 29;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t flat = (i * 13 + salt) % 64;
    const std::vector<uint64_t> at{flat / 8, flat % 8};
    const double value = static_cast<double>(static_cast<int64_t>(i % 9) - 4);
    const Status status = serving->Add(at, value);
    if (failures != nullptr) {
      // Worker-thread context: gtest ASSERTs only abort the calling
      // function, so collect and check after the join.
      if (!status.ok()) failures->push_back(status);
    } else {
      ASSERT_OK(status);
    }
    if (status.ok()) (*expected)[at[0] * 8 + at[1]] += value;
  }
}

void ExpectAllCells(ServingCube* serving,
                    const std::vector<double>& expected) {
  for (uint64_t r = 0; r < 8; ++r) {
    for (uint64_t c = 0; c < 8; ++c) {
      const std::vector<uint64_t> at{r, c};
      ASSERT_OK_AND_ASSIGN(const double v, serving->PointQuery(at));
      EXPECT_DOUBLE_EQ(v, expected[r * 8 + c]) << r << "," << c;
    }
  }
}

// Every device block, one at a time: flip a byte, repair, and the data file
// must return to the exact pre-corruption image.
TEST(BitrotMatrixTest, EveryBlockHealsToByteIdenticalImage) {
  const auto dir = MakeTempDir("matrix");
  uint64_t stride = 0;
  CreateParityCube(dir, &stride);

  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  AddPhase(serving.get(), 0, &expected);
  ASSERT_OK(serving->DrainAll());

  const std::string blocks = (dir / "blocks.bin").string();
  const std::vector<char> reference = ReadFileBytes(blocks);
  const uint64_t strides = reference.size() / stride;
  ASSERT_GE(strides, 2u);

  for (uint64_t id = 0; id < strides; ++id) {
    FlipByte(blocks, id * stride + 5);
    ASSERT_OK_AND_ASSIGN(const ScrubReport report, serving->RepairNow());
    EXPECT_EQ(report.repaired, std::vector<uint64_t>({id})) << "block " << id;
    EXPECT_TRUE(report.unrepairable.empty()) << "block " << id;
    EXPECT_EQ(ReadFileBytes(blocks), reference) << "block " << id;
    EXPECT_EQ(serving->health(), ShardHealth::kHealthy) << "block " << id;
    EXPECT_FALSE(serving->cube()->durability_stats().read_only)
        << "block " << id;
  }
  ExpectAllCells(serving.get(), expected);
  ASSERT_OK(serving->Close());
  std::filesystem::remove_all(dir);
}

// One fault per parity group at once, while a live writer keeps accepting
// deltas: everything heals, nothing is lost, and the final on-disk image is
// byte-identical to an uncorrupted run of the same delta sequence.
TEST(BitrotMatrixTest, OneFaultPerGroupUnderLiveWritersMatchesReference) {
  // One freshly created store, cloned byte-for-byte: the footer epoch is
  // random per CreateOnDisk, so the reference and corrupted runs must share
  // one creation to be comparable at the byte level.
  const auto dir = MakeTempDir("live");
  const auto ref_dir = MakeTempDir("reference");
  uint64_t stride = 0;
  CreateParityCube(dir, &stride);
  std::filesystem::copy(dir, ref_dir,
                        std::filesystem::copy_options::recursive);

  // Reference run: the identical delta sequence with no corruption.
  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  {
    ASSERT_OK_AND_ASSIGN(auto serving,
                         ServingCube::OpenOnDisk(ref_dir.string(), 64,
                                                 options));
    AddPhase(serving.get(), 0, &expected);
    ASSERT_OK(serving->DrainAll());
    AddPhase(serving.get(), 1, &expected);
    ASSERT_OK(serving->DrainAll());
    ASSERT_OK(serving->Close());
  }
  const std::vector<char> ref_blocks =
      ReadFileBytes((ref_dir / "blocks.bin").string());
  const std::vector<char> ref_parity =
      ReadFileBytes((ref_dir / "blocks.bin").string() + ".parity");

  // Corrupted run: same sequence, with one fault per parity group injected
  // and repaired while the tail writer runs.
  std::vector<double> actual(64, 0.0);
  ASSERT_OK_AND_ASSIGN(auto serving,
                       ServingCube::OpenOnDisk(dir.string(), 64, options));
  AddPhase(serving.get(), 0, &actual);
  ASSERT_OK(serving->DrainAll());

  const std::string blocks = (dir / "blocks.bin").string();
  const uint64_t strides = std::filesystem::file_size(blocks) / stride;
  std::vector<Status> writer_failures;
  std::thread writer([&] {
    AddPhase(serving.get(), 1, &actual, &writer_failures);
  });
  // One victim per parity group — each group has exactly one fault, so
  // every block is reconstructible. (No asserts before the join: an early
  // test return with the writer still joinable would terminate.)
  std::vector<uint64_t> victims;
  for (uint64_t g = 0; g * kGroup < strides; ++g) {
    const uint64_t remaining = strides - g * kGroup;
    const uint64_t id = g * kGroup + g % std::min(kGroup, remaining);
    victims.push_back(id);
    FlipByte(blocks, id * stride + 5);
  }
  const Result<ScrubReport> repair = serving->RepairNow();
  writer.join();
  ASSERT_TRUE(writer_failures.empty()) << writer_failures[0].ToString();
  ASSERT_OK(repair.status());
  const ScrubReport& report = repair.value();
  EXPECT_TRUE(report.unrepairable.empty());
  EXPECT_EQ(report.repaired.size(), victims.size());
  EXPECT_EQ(serving->health(), ShardHealth::kHealthy);
  EXPECT_FALSE(serving->cube()->durability_stats().read_only);

  ASSERT_OK(serving->DrainAll());
  ExpectAllCells(serving.get(), expected);
  for (uint64_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(actual[i], expected[i]);
  ASSERT_OK(serving->Close());
  ExpectSameImage(ReadFileBytes(blocks), ref_blocks, stride, "data image");
  ExpectSameImage(ReadFileBytes(blocks + ".parity"), ref_parity, stride,
                  "parity image");
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);
}

// The escape hatch is unchanged: two faults in one group defeat XOR parity,
// the repair scrub reports them unrepairable and the store degrades to
// read-only exactly as a detect-only scrub always has.
TEST(BitrotMatrixTest, DoubleFaultStillDegradesToReadOnly) {
  const auto dir = MakeTempDir("doublefault");
  uint64_t stride = 0;
  CreateParityCube(dir, &stride);
  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  {
    ASSERT_OK_AND_ASSIGN(auto serving,
                         ServingCube::OpenOnDisk(dir.string(), 64, options));
    AddPhase(serving.get(), 0, &expected);
    ASSERT_OK(serving->DrainAll());
    ASSERT_OK(serving->Close());
  }
  const std::string blocks = (dir / "blocks.bin").string();
  FlipByte(blocks, 0 * stride + 5);
  FlipByte(blocks, 1 * stride + 5);  // same group as block 0 (G=4)

  ASSERT_OK_AND_ASSIGN(auto cube, WaveletCube::OpenOnDisk(dir.string(), 64));
  ASSERT_OK_AND_ASSIGN(const ScrubReport report, cube->ScrubRepair());
  EXPECT_EQ(report.unrepairable, std::vector<uint64_t>({0, 1}));
  EXPECT_TRUE(cube->durability_stats().read_only);
  ASSERT_OK(cube->Close());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
