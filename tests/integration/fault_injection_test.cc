// Failure-injection tests: a decorating BlockManager that fails after a
// configurable number of operations verifies that every maintenance and
// query path propagates I/O errors as Status instead of crashing or
// corrupting counters.

#include <gtest/gtest.h>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/tile/tree_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

// Fails every operation once `budget` block operations have happened.
class FaultyBlockManager : public BlockManager {
 public:
  FaultyBlockManager(uint64_t block_size, uint64_t budget)
      : inner_(block_size), budget_(budget) {}

  uint64_t block_size() const override { return inner_.block_size(); }
  uint64_t num_blocks() const override { return inner_.num_blocks(); }
  Status Resize(uint64_t num_blocks) override {
    return inner_.Resize(num_blocks);
  }
  Status ReadBlock(uint64_t id, std::span<double> out) override {
    SS_RETURN_IF_ERROR(Consume());
    return inner_.ReadBlock(id, out);
  }
  Status WriteBlock(uint64_t id, std::span<const double> data) override {
    SS_RETURN_IF_ERROR(Consume());
    return inner_.WriteBlock(id, data);
  }

  void Refill(uint64_t budget) { budget_ = budget; }

 private:
  Status Consume() {
    if (budget_ == 0) {
      return Status::IOError("injected device failure");
    }
    --budget_;
    return Status::OK();
  }

  MemoryBlockManager inner_;
  uint64_t budget_;
};

TEST(FaultInjectionTest, ChunkApplyPropagatesWriteFailure) {
  FaultyBlockManager manager(4, /*budget=*/3);
  ASSERT_OK_AND_ASSIGN(
      auto store, TiledStore::Create(std::make_unique<TreeTilingLayout>(6, 2),
                                     &manager, 2));
  auto data = testing::RandomVector(64, 1);
  Status status;
  for (uint64_t k = 0; k < 16 && status.ok(); ++k) {
    status = TransformAndApplyChunk1D(
        std::span<const double>(data.data() + k * 4, 4), 6, k, store.get(),
        Normalization::kAverage);
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.message(), "injected device failure");
}

TEST(FaultInjectionTest, TransformDatasetPropagatesFailure) {
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0, 1, 2);
  FaultyBlockManager manager(16, /*budget=*/10);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(
          std::make_unique<StandardTiling>(std::vector<uint32_t>{4, 4}, 2),
          &manager, 4));
  const auto result = TransformDatasetStandard(dataset.get(), 2, store.get());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, QueriesPropagateReadFailure) {
  const std::vector<uint32_t> log_dims{4, 4};
  FaultyBlockManager manager(16, /*budget=*/1u << 20);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<StandardTiling>(log_dims, 2),
                         &manager, 4));
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0, 1, 3);
  ASSERT_OK(TransformDatasetStandard(dataset.get(), 2, store.get()).status());
  ASSERT_OK(store->pool().Clear());

  manager.Refill(0);  // device dies
  std::vector<uint64_t> point{3, 7};
  EXPECT_EQ(PointQueryStandard(store.get(), log_dims, point, QueryOptions{})
                .status()
                .code(),
            StatusCode::kIOError);
  std::vector<uint64_t> lo{0, 0}, hi{7, 7};
  EXPECT_EQ(RangeSumStandard(store.get(), log_dims, lo, hi, QueryOptions{})
                .status()
                .code(),
            StatusCode::kIOError);
  std::vector<uint32_t> range_log{2, 2};
  std::vector<uint64_t> range_pos{0, 0};
  EXPECT_EQ(ReconstructDyadicStandard(store.get(), log_dims, range_log,
                                      range_pos, Normalization::kAverage)
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(FaultInjectionTest, RecoveryAfterTransientFailure) {
  // A failed operation must leave the store usable once the device heals:
  // re-running the whole construction yields a correct transform.
  const std::vector<uint32_t> log_dims{4, 4};
  FaultyBlockManager manager(16, /*budget=*/7);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<StandardTiling>(log_dims, 2),
                         &manager, 4));
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0, 1, 4);
  EXPECT_FALSE(
      TransformDatasetStandard(dataset.get(), 2, store.get()).ok());

  manager.Refill(~uint64_t{0});
  ASSERT_OK(store->pool().Clear());
  ASSERT_OK(TransformDatasetStandard(dataset.get(), 2, store.get()).status());
  std::vector<uint64_t> point{9, 9};
  ASSERT_OK_AND_ASSIGN(
      const double v,
      PointQueryStandard(store.get(), log_dims, point, QueryOptions{}));
  EXPECT_NEAR(v, dataset->Cell(point), 1e-9);
}

TEST(FaultInjectionTest, PoolEvictionFailureSurfacesOnLaterAccess) {
  // Even when the failing write happens on an eviction of an unrelated
  // dirty frame, the caller of the triggering access sees the error.
  FaultyBlockManager manager(4, /*budget=*/2);
  BufferPool pool(&manager, 1);
  ASSERT_OK(manager.Resize(4));
  auto frame = pool.GetBlock(0, true);  // consumes 1 (read miss)
  ASSERT_TRUE(frame.ok());
  (*frame)[0] = 1.0;
  // Next get evicts dirty block 0 (write, consumes 2) then reads block 1 —
  // which exceeds the budget.
  EXPECT_FALSE(pool.GetBlock(1, false).ok());
}

}  // namespace
}  // namespace shiftsplit
