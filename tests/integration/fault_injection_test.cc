// Failure-injection tests: a decorating BlockManager that fails after a
// configurable number of operations verifies that every maintenance and
// query path propagates I/O errors as Status instead of crashing or
// corrupting counters.

#include <gtest/gtest.h>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/tile/tree_tiling.h"
#include "storage/fault_injection_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

// Wraps a fresh in-memory device in the shared fault-injection decorator
// with `budget` operations before the device "dies" (see FailAfter).
struct FaultyDevice {
  FaultyDevice(uint64_t block_size, uint64_t budget)
      : inner(block_size), manager(&inner) {
    manager.FailAfter(budget);
  }

  MemoryBlockManager inner;
  testing::FaultInjectionBlockManager manager;
};

TEST(FaultInjectionTest, ChunkApplyPropagatesWriteFailure) {
  FaultyDevice device(4, /*budget=*/3);
  auto& manager = device.manager;
  ASSERT_OK_AND_ASSIGN(
      auto store, TiledStore::Create(std::make_unique<TreeTilingLayout>(6, 2),
                                     &manager, 2));
  auto data = testing::RandomVector(64, 1);
  Status status;
  for (uint64_t k = 0; k < 16 && status.ok(); ++k) {
    status = TransformAndApplyChunk1D(
        std::span<const double>(data.data() + k * 4, 4), 6, k, store.get(),
        Normalization::kAverage);
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.message(), "injected device failure");
}

TEST(FaultInjectionTest, TransformDatasetPropagatesFailure) {
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0, 1, 2);
  FaultyDevice device(16, /*budget=*/10);
  auto& manager = device.manager;
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(
          std::make_unique<StandardTiling>(std::vector<uint32_t>{4, 4}, 2),
          &manager, 4));
  const auto result = TransformDatasetStandard(dataset.get(), 2, store.get());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, QueriesPropagateReadFailure) {
  const std::vector<uint32_t> log_dims{4, 4};
  FaultyDevice device(16, /*budget=*/1u << 20);
  auto& manager = device.manager;
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<StandardTiling>(log_dims, 2),
                         &manager, 4));
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0, 1, 3);
  ASSERT_OK(TransformDatasetStandard(dataset.get(), 2, store.get()).status());
  ASSERT_OK(store->pool().Clear());

  manager.Refill(0);  // device dies
  std::vector<uint64_t> point{3, 7};
  EXPECT_EQ(PointQueryStandard(store.get(), log_dims, point, QueryOptions{})
                .status()
                .code(),
            StatusCode::kIOError);
  std::vector<uint64_t> lo{0, 0}, hi{7, 7};
  EXPECT_EQ(RangeSumStandard(store.get(), log_dims, lo, hi, QueryOptions{})
                .status()
                .code(),
            StatusCode::kIOError);
  std::vector<uint32_t> range_log{2, 2};
  std::vector<uint64_t> range_pos{0, 0};
  EXPECT_EQ(ReconstructDyadicStandard(store.get(), log_dims, range_log,
                                      range_pos, Normalization::kAverage)
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(FaultInjectionTest, RecoveryAfterTransientFailure) {
  // A failed operation must leave the store usable once the device heals:
  // re-running the whole construction yields a correct transform.
  const std::vector<uint32_t> log_dims{4, 4};
  FaultyDevice device(16, /*budget=*/7);
  auto& manager = device.manager;
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(std::make_unique<StandardTiling>(log_dims, 2),
                         &manager, 4));
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0, 1, 4);
  EXPECT_FALSE(
      TransformDatasetStandard(dataset.get(), 2, store.get()).ok());

  manager.Refill(~uint64_t{0});
  ASSERT_OK(store->pool().Clear());
  ASSERT_OK(TransformDatasetStandard(dataset.get(), 2, store.get()).status());
  std::vector<uint64_t> point{9, 9};
  ASSERT_OK_AND_ASSIGN(
      const double v,
      PointQueryStandard(store.get(), log_dims, point, QueryOptions{}));
  EXPECT_NEAR(v, dataset->Cell(point), 1e-9);
}

TEST(FaultInjectionTest, PoolEvictionFailureSurfacesOnLaterAccess) {
  // Even when the failing write happens on an eviction of an unrelated
  // dirty frame, the caller of the triggering access sees the error.
  MemoryBlockManager inner(4, 4);
  testing::FaultInjectionBlockManager manager(&inner);
  BufferPool pool(&manager, 1);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 1.0;
  }
  manager.FailNthWrite(1);
  // The next get reads block 1, then evicts dirty block 0 — whose injected
  // write-back failure surfaces here (and block 0 stays cached and dirty).
  EXPECT_FALSE(pool.GetBlock(1, false).ok());
  EXPECT_EQ(pool.cached_blocks(), 1u);
}

}  // namespace
}  // namespace shiftsplit
