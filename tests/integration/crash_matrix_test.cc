// Crash-point matrix for the durability layer: a three-commit workload
// (ingest, range update, batched apply) is killed at every durability
// operation k — block writes, device syncs and each journal step share one
// simulated power domain — and the store is reopened and recovered. The
// acceptance criterion is byte-exactness: after recovery, blocks.bin must
// equal the pre- or post-commit reference image of whichever commit was in
// flight, never a mix. The file also carries the cube-level durability
// tests: scrub/flip-byte detection, read-only degradation and Close()
// error propagation.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "shiftsplit/core/appender.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/data/dataset.h"
#include "shiftsplit/storage/file_block_manager.h"
#include "shiftsplit/storage/journal.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/tile/tiled_store.h"
#include "storage/fault_injection_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

constexpr uint32_t kB = 1;
constexpr uint64_t kBlockSize = 4;  // 2^(kB * d) with d = 2
constexpr uint64_t kPoolBlocks = 64;  // holds every block: no-steal
constexpr uint64_t kEpoch = 7;
const std::vector<uint32_t> kLogDims = {3, 3};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

Tensor MakeData() {
  TensorShape shape(std::vector<uint64_t>{8, 8});
  std::vector<double> cells(shape.num_elements());
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i] = static_cast<double>((i * 37 + 11) % 101) / 7.0;
  }
  return Tensor(shape, std::move(cells));
}

Tensor MakeDeltas() {
  TensorShape shape(std::vector<uint64_t>{2, 2});
  return Tensor(shape, {1.5, -2.25, 0.75, 4.0});
}

// The three-commit workload. Invokes `after_phase(p)` after commit p
// completes (p = 1..3); returns the number of completed commits, leaving
// the first failure in `*failure`.
uint64_t RunWorkload(TiledStore* store, Status* failure,
                     const std::function<void(int)>& after_phase = {}) {
  *failure = Status::OK();
  TensorDataset dataset(MakeData());
  TransformOptions options;  // defaults: batched, kAverage, scaling slots
  const auto ingest =
      TransformDatasetStandard(&dataset, /*log_chunk=*/2, store, options);
  if (!ingest.ok()) {
    *failure = ingest.status();
    return 0;
  }
  if (after_phase) after_phase(1);

  const Tensor deltas = MakeDeltas();
  const std::vector<uint64_t> origin = {2, 2};
  Status status = UpdateRangeStandard(store, kLogDims, deltas, origin,
                                      Normalization::kAverage);
  if (!status.ok()) {
    *failure = status;
    return 1;
  }
  if (after_phase) after_phase(2);

  const SlotUpdate ops[] = {
      {0, 0.25, /*overwrite=*/false},
      {1, -1.0, /*overwrite=*/true},
      {3, 2.5, /*overwrite=*/false},
  };
  status = store->ApplyToBlock(2, ops);
  if (status.ok()) status = store->Flush();
  if (!status.ok()) {
    *failure = status;
    return 2;
  }
  if (after_phase) after_phase(3);
  return 3;
}

class CrashMatrixTest : public ::testing::TestWithParam<bool> {
 protected:
  CrashMatrixTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_crash_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~CrashMatrixTest() override { std::filesystem::remove_all(dir_); }

  static FileBlockManager::Options DeviceOptions() {
    FileBlockManager::Options options;
    options.checksums = true;
    options.epoch = kEpoch;
    return options;
  }

  // Opens a journaled store over `manager` (which may be the fault
  // decorator or the raw device).
  static Result<std::unique_ptr<TiledStore>> OpenStore(
      BlockManager* manager, const std::string& journal_path) {
    return TiledStore::Open(std::make_unique<StandardTiling>(kLogDims, kB),
                            manager, kPoolBlocks,
                            std::make_unique<Journal>(journal_path));
  }

  std::string Subdir(const std::string& name) {
    const std::string path = (dir_ / name).string();
    std::filesystem::create_directories(path);
    return path;
  }

  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

TEST_P(CrashMatrixTest, EveryCrashPointRecoversToACommitBoundary) {
  const bool drop_unsynced = GetParam();

  // Reference run: capture the blocks.bin byte image at every commit
  // boundary (image[c] = state with exactly c commits applied).
  const std::string ref_dir = Subdir("reference");
  const std::string ref_blocks = ref_dir + "/blocks.bin";
  std::vector<std::string> images;
  {
    ASSERT_OK_AND_ASSIGN(const auto device,
                         FileBlockManager::Open(ref_blocks, kBlockSize,
                                                DeviceOptions()));
    ASSERT_OK_AND_ASSIGN(const auto store,
                         OpenStore(device.get(),
                                   ref_dir + "/store.journal"));
    images.push_back(ReadFileBytes(ref_blocks));  // 0 commits: fresh store
    Status failure;
    const uint64_t commits =
        RunWorkload(store.get(), &failure, [&](int) {
          images.push_back(ReadFileBytes(ref_blocks));
        });
    ASSERT_OK(failure);
    ASSERT_EQ(commits, 3u);
    ASSERT_OK(store->Close());
  }
  ASSERT_EQ(images.size(), 4u);
  for (size_t i = 1; i < images.size(); ++i) {
    ASSERT_NE(images[i - 1], images[i]) << "commit " << i << " is a no-op";
  }

  // Dry run on a dead-man budget to learn the total op count T.
  uint64_t total_ops = 0;
  {
    const std::string probe = Subdir("probe");
    ASSERT_OK_AND_ASSIGN(const auto device,
                         FileBlockManager::Open(probe + "/blocks.bin",
                                                kBlockSize,
                                                DeviceOptions()));
    testing::FaultInjectionBlockManager fault(device.get());
    fault.CrashAfterNthOp(1u << 30, drop_unsynced);
    auto journal = std::make_unique<Journal>(probe + "/store.journal");
    journal->set_hook(
        [&fault](const char*) { return fault.ConsumeCrashOp(); });
    ASSERT_OK_AND_ASSIGN(
        const auto store,
        TiledStore::Open(std::make_unique<StandardTiling>(kLogDims, kB),
                         &fault, kPoolBlocks, std::move(journal)));
    Status failure;
    ASSERT_EQ(RunWorkload(store.get(), &failure), 3u);
    // Count only the workload's ops: Close() consumes more (its own sync),
    // so sampling after it would put crash points past the workload.
    total_ops = fault.crash_ops_seen();
    ASSERT_OK(store->Close());
  }
  ASSERT_GT(total_ops, 10u);
  ASSERT_LT(total_ops, 500u) << "matrix would be too slow";

  // The matrix: power-cut at every op index k, recover, compare bytes.
  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k) +
                 (drop_unsynced ? " (dropping unsynced writes)" : ""));
    const std::string run_dir = Subdir("k" + std::to_string(k));
    const std::string blocks = run_dir + "/blocks.bin";
    const std::string journal_path = run_dir + "/store.journal";

    uint64_t completed = 0;
    {
      ASSERT_OK_AND_ASSIGN(const auto device,
                           FileBlockManager::Open(blocks, kBlockSize,
                                                  DeviceOptions()));
      testing::FaultInjectionBlockManager fault(device.get());
      fault.CrashAfterNthOp(k, drop_unsynced);
      auto journal = std::make_unique<Journal>(journal_path);
      journal->set_hook(
          [&fault](const char*) { return fault.ConsumeCrashOp(); });
      ASSERT_OK_AND_ASSIGN(
          const auto store,
          TiledStore::Open(std::make_unique<StandardTiling>(kLogDims, kB),
                           &fault, kPoolBlocks, std::move(journal)));
      Status failure;
      completed = RunWorkload(store.get(), &failure);
      ASSERT_TRUE(fault.crashed()) << "op " << k << " never reached";
      ASSERT_FALSE(failure.ok());
      ASSERT_LT(completed, 3u);
      // The process dies: dirty frames are dropped, never written back.
      ASSERT_OK(store->pool().Discard());
    }

    // Reopen on the pristine device: recovery must land on a commit
    // boundary of the in-flight commit.
    {
      ASSERT_OK_AND_ASSIGN(const auto device,
                           FileBlockManager::Open(blocks, kBlockSize,
                                                  DeviceOptions()));
      ASSERT_OK_AND_ASSIGN(const auto store,
                           OpenStore(device.get(), journal_path));
      EXPECT_FALSE(store->read_only());
      ASSERT_OK(store->Close());
      // Recovery ran: the store scrubs clean (no torn block made it to
      // disk) and the journal is retired.
      ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt,
                           device->Scrub());
      EXPECT_TRUE(corrupt.empty());
    }
    EXPECT_FALSE(std::filesystem::exists(journal_path));

    const std::string recovered = ReadFileBytes(blocks);
    const bool pre = recovered == images[completed];
    const bool post = recovered == images[completed + 1];
    EXPECT_TRUE(pre || post)
        << "recovered state is neither the pre- nor the post-commit image "
        << "of commit " << (completed + 1);
  }

  // A crash horizon past the whole run (workload + close): everything
  // completes and the bytes match the reference image exactly.
  {
    const std::string run_dir = Subdir("beyond");
    const std::string blocks = run_dir + "/blocks.bin";
    ASSERT_OK_AND_ASSIGN(const auto device,
                         FileBlockManager::Open(blocks, kBlockSize,
                                                DeviceOptions()));
    testing::FaultInjectionBlockManager fault(device.get());
    fault.CrashAfterNthOp(total_ops + 100, drop_unsynced);
    auto journal = std::make_unique<Journal>(run_dir + "/store.journal");
    journal->set_hook(
        [&fault](const char*) { return fault.ConsumeCrashOp(); });
    ASSERT_OK_AND_ASSIGN(
        const auto store,
        TiledStore::Open(std::make_unique<StandardTiling>(kLogDims, kB),
                         &fault, kPoolBlocks, std::move(journal)));
    Status failure;
    ASSERT_EQ(RunWorkload(store.get(), &failure), 3u);
    ASSERT_OK(store->Close());
    EXPECT_FALSE(fault.crashed());
    EXPECT_EQ(ReadFileBytes(blocks), images[3]);
  }
}

// ---------------------------------------------------------------------------
// The same matrix over an Appender workload (append → update → append):
// Appender opens its store through the journal itself (journal_path), so
// this exercises the production wiring end to end. The crash domain here is
// the device only (writes + syncs) — the journal is internal to the
// appender — which makes every in-flight commit recover to its *post*
// image once its journal record hit the disk, and to its *pre* image
// otherwise; either way a commit boundary, asserted bytewise.

// Owns the real device so it can be handed to Appender's factory.
class OwningFaultManager : public testing::FaultInjectionBlockManager {
 public:
  explicit OwningFaultManager(std::unique_ptr<BlockManager> inner)
      : FaultInjectionBlockManager(inner.get()), inner_(std::move(inner)) {}

 private:
  std::unique_ptr<BlockManager> inner_;
};

Tensor MakeSlab(int which) {
  TensorShape shape(std::vector<uint64_t>{8, 4});  // full dim 0, h = 4
  std::vector<double> cells(shape.num_elements());
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i] = static_cast<double>((i * 13 + 100 * which + 5) % 83) / 3.0;
  }
  return Tensor(shape, std::move(cells));
}

// Append slab 1 (rows 0-3), update inside it, append slab 2 (rows 4-7).
// Both appends fit the initial 8x8 domain: no expansion, fixed layout.
uint64_t RunAppendWorkload(Appender* appender, Status* failure,
                           const std::function<void(int)>& after_phase = {}) {
  *failure = Status::OK();
  Status status = appender->Append(MakeSlab(1));
  if (!status.ok()) {
    *failure = status;
    return 0;
  }
  if (after_phase) after_phase(1);

  const Tensor deltas = MakeDeltas();
  const std::vector<uint64_t> origin = {2, 1};
  status = UpdateRangeStandard(appender->store(), kLogDims, deltas, origin,
                               Normalization::kAverage,
                               /*maintain_scaling_slots=*/false);
  if (!status.ok()) {
    *failure = status;
    return 1;
  }
  if (after_phase) after_phase(2);

  status = appender->Append(MakeSlab(2));
  if (!status.ok()) {
    *failure = status;
    return 2;
  }
  if (after_phase) after_phase(3);
  return 3;
}

TEST_P(CrashMatrixTest, AppenderWorkloadRecoversToACommitBoundary) {
  const bool drop_unsynced = GetParam();

  // Builds an appender whose device is the (fault-wrapped) block file in
  // `dir`; `*fault_out` receives the decorator for arming.
  const auto make_appender = [&](const std::string& dir,
                                 testing::FaultInjectionBlockManager**
                                     fault_out) {
    Appender::Options options;
    options.b = kB;
    options.pool_blocks = kPoolBlocks;
    options.journal_path = dir + "/store.journal";
    options.factory = [dir, fault_out](uint64_t block_size)
        -> std::unique_ptr<BlockManager> {
      auto device = FileBlockManager::Open(dir + "/blocks.bin", block_size,
                                           DeviceOptions());
      if (!device.ok()) return nullptr;
      auto owned =
          std::make_unique<OwningFaultManager>(std::move(device).value());
      if (fault_out != nullptr) *fault_out = owned.get();
      return owned;
    };
    return Appender::Create({3, 3}, /*append_dim=*/1, std::move(options));
  };

  // Reference images at every commit boundary.
  const std::string ref_dir = Subdir("areference");
  std::vector<std::string> images;
  {
    ASSERT_OK_AND_ASSIGN(const auto appender,
                         make_appender(ref_dir, nullptr));
    images.push_back(ReadFileBytes(ref_dir + "/blocks.bin"));
    Status failure;
    const uint64_t commits =
        RunAppendWorkload(appender.get(), &failure, [&](int) {
          images.push_back(ReadFileBytes(ref_dir + "/blocks.bin"));
        });
    ASSERT_OK(failure);
    ASSERT_EQ(commits, 3u);
  }
  ASSERT_EQ(images.size(), 4u);

  // Dry run for the op count.
  uint64_t total_ops = 0;
  {
    const std::string probe = Subdir("aprobe");
    testing::FaultInjectionBlockManager* fault = nullptr;
    ASSERT_OK_AND_ASSIGN(const auto appender, make_appender(probe, &fault));
    ASSERT_NE(fault, nullptr);
    fault->CrashAfterNthOp(1u << 30, drop_unsynced);
    Status failure;
    ASSERT_EQ(RunAppendWorkload(appender.get(), &failure), 3u);
    total_ops = fault->crash_ops_seen();
  }
  ASSERT_GT(total_ops, 10u);
  ASSERT_LT(total_ops, 500u) << "matrix would be too slow";

  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("crash at device op " + std::to_string(k) +
                 (drop_unsynced ? " (dropping unsynced writes)" : ""));
    const std::string run_dir = Subdir("a" + std::to_string(k));
    uint64_t completed = 0;
    {
      testing::FaultInjectionBlockManager* fault = nullptr;
      ASSERT_OK_AND_ASSIGN(const auto appender,
                           make_appender(run_dir, &fault));
      ASSERT_NE(fault, nullptr);
      fault->CrashAfterNthOp(k, drop_unsynced);
      Status failure;
      completed = RunAppendWorkload(appender.get(), &failure);
      ASSERT_TRUE(fault->crashed()) << "op " << k << " never reached";
      ASSERT_FALSE(failure.ok());
      ASSERT_LT(completed, 3u);
      ASSERT_OK(appender->store()->pool().Discard());
    }

    ASSERT_OK_AND_ASSIGN(const auto device,
                         FileBlockManager::Open(run_dir + "/blocks.bin",
                                                kBlockSize,
                                                DeviceOptions()));
    ASSERT_OK_AND_ASSIGN(
        const auto store,
        OpenStore(device.get(), run_dir + "/store.journal"));
    EXPECT_FALSE(store->read_only());
    ASSERT_OK(store->Close());
    EXPECT_FALSE(std::filesystem::exists(run_dir + "/store.journal"));

    const std::string recovered = ReadFileBytes(run_dir + "/blocks.bin");
    EXPECT_TRUE(recovered == images[completed] ||
                recovered == images[completed + 1])
        << "recovered state is neither the pre- nor the post-commit image "
        << "of commit " << (completed + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(PageCacheModes, CrashMatrixTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "DropUnsyncedWrites"
                                             : "WriteThrough";
                         });

// ---------------------------------------------------------------------------
// Recovery failure degrades to a read-only open instead of erroring out.

class DurabilityTest : public ::testing::Test {
 protected:
  DurabilityTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_durability_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~DurabilityTest() override { std::filesystem::remove_all(dir_); }
  std::string File(const std::string& name) const {
    return (dir_ / name).string();
  }

  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

TEST_F(DurabilityTest, FailedReplayOpensReadOnlyThenHealsOnRetry) {
  const std::string journal_path = File("store.journal");
  // A valid pending commit for block 0.
  std::vector<double> image(kBlockSize);
  for (uint64_t i = 0; i < kBlockSize; ++i) {
    image[i] = static_cast<double>(i) + 0.125;
  }
  {
    Journal journal(journal_path);
    const JournalEntry entries[] = {{0, std::span<const double>(image)}};
    ASSERT_OK(journal.AppendCommit(entries, kBlockSize));
  }

  // Device that rejects the replay write: the open succeeds but degrades.
  MemoryBlockManager inner(kBlockSize, 4);
  testing::FaultInjectionBlockManager fault(&inner);
  fault.FailNthWrite(1);
  ASSERT_OK_AND_ASSIGN(
      const auto store,
      TiledStore::Open(std::make_unique<StandardTiling>(std::vector<uint32_t>{2, 2}, kB),
                       &fault, 4, std::make_unique<Journal>(journal_path)));
  EXPECT_TRUE(store->read_only());
  EXPECT_TRUE(store->durability_stats().read_only);
  const std::vector<uint64_t> address = {0, 0};
  EXPECT_FALSE(store->Set(address, 1.0).ok());
  EXPECT_FALSE(store->ApplyToBlock(0, {}).ok());
  EXPECT_FALSE(store->PinBlock(0, /*for_write=*/true).ok());
  ASSERT_OK(store->Close());  // trivially: nothing can be dirty
  // The journal survived the failed replay for the next attempt.
  EXPECT_TRUE(std::filesystem::exists(journal_path));

  // A healthy reopen replays it.
  ASSERT_OK_AND_ASSIGN(
      const auto healed,
      TiledStore::Open(std::make_unique<StandardTiling>(std::vector<uint32_t>{2, 2}, kB),
                       &inner, 4, std::make_unique<Journal>(journal_path)));
  EXPECT_FALSE(healed->read_only());
  EXPECT_FALSE(std::filesystem::exists(journal_path));
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(inner.ReadBlock(0, buf));
  testing::ExpectNear(image, buf);
}

TEST_F(DurabilityTest, ClosePropagatesTheFlushFailure) {
  MemoryBlockManager inner(kBlockSize, 8);
  testing::FaultInjectionBlockManager fault(&inner);
  ASSERT_OK_AND_ASSIGN(
      const auto store,
      TiledStore::Create(std::make_unique<StandardTiling>(std::vector<uint32_t>{2, 2}, kB),
                         &fault, 4));
  const std::vector<uint64_t> address = {1, 1};
  ASSERT_OK(store->Set(address, 3.5));
  fault.FailNthWrite(1);
  const Status status = store->Close();
  ASSERT_FALSE(status.ok());  // the destructor would have swallowed this
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // The frame stayed dirty; a retry completes the close.
  ASSERT_OK(store->Close());
  EXPECT_GT(inner.stats().block_writes, 0u);
}

TEST_F(DurabilityTest, ScrubCorruptionFlipsTheStoreReadOnly) {
  const std::string blocks = File("blocks.bin");
  FileBlockManager::Options options;
  options.checksums = true;
  options.epoch = kEpoch;
  {
    ASSERT_OK_AND_ASSIGN(const auto device,
                         FileBlockManager::Open(blocks, kBlockSize,
                                                options));
    ASSERT_OK_AND_ASSIGN(
        const auto store,
        TiledStore::Open(std::make_unique<StandardTiling>(std::vector<uint32_t>{2, 2}, kB),
                         device.get(), 4,
                         std::make_unique<Journal>(File("store.journal"))));
    const std::vector<uint64_t> address = {0, 1};
    ASSERT_OK(store->Set(address, 2.5));
    ASSERT_OK(store->Close());
  }
  // Flip a payload byte of block 0.
  {
    std::fstream f(blocks, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(5);
    const char x = 0x5A;
    f.write(&x, 1);
  }
  ASSERT_OK_AND_ASSIGN(const auto device,
                       FileBlockManager::Open(blocks, kBlockSize, options));
  ASSERT_OK_AND_ASSIGN(
      const auto store,
      TiledStore::Open(std::make_unique<StandardTiling>(std::vector<uint32_t>{2, 2}, kB),
                       device.get(), 4,
                       std::make_unique<Journal>(File("store.journal"))));
  EXPECT_FALSE(store->read_only());
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt, store->Scrub());
  ASSERT_EQ(corrupt, std::vector<uint64_t>({0}));
  EXPECT_TRUE(store->read_only());
  const DurabilityStats stats = store->durability_stats();
  EXPECT_TRUE(stats.read_only);
  EXPECT_EQ(stats.quarantined_blocks, 1u);
  // Degraded reads: the quarantined block reads as zeros instead of
  // failing, so the rest of the store is salvageable.
  const std::vector<uint64_t> address = {0, 1};
  ASSERT_OK_AND_ASSIGN(const double value, store->Get(address));
  EXPECT_DOUBLE_EQ(value, 0.0);
  EXPECT_GT(store->durability_stats().zero_filled_reads, 0u);
  EXPECT_FALSE(store->Set(address, 1.0).ok());
}

// ---------------------------------------------------------------------------
// WaveletCube-level durability: v2 on-disk cubes round-trip through crash
// recovery and detect corruption end to end.

TEST_F(DurabilityTest, V2CubeSurvivesReopenWithPendingJournal) {
  const std::string cube_dir = File("cube");
  WaveletCube::Options options;
  options.b = kB;
  {
    ASSERT_OK_AND_ASSIGN(
        const auto cube,
        WaveletCube::CreateOnDisk(cube_dir, {3, 3}, options));
    EXPECT_EQ(cube->manifest().format_version, 2u);
    EXPECT_NE(cube->manifest().store_epoch, 0u);
    TensorDataset dataset(MakeData());
    ASSERT_OK(cube->Ingest(&dataset, /*log_chunk=*/2));
    ASSERT_OK(cube->Close());
  }
  // Plant a pending commit (as a crash between journal fsync and the
  // in-place writes would): zero out block 0 via the journal.
  ASSERT_OK_AND_ASSIGN(const StoreManifest manifest,
                       StoreManifest::Load(cube_dir + "/store.manifest"));
  const std::vector<double> zeros(kBlockSize, 0.0);
  {
    Journal journal(cube_dir + "/store.journal");
    const JournalEntry entries[] = {{0, std::span<const double>(zeros)}};
    ASSERT_OK(journal.AppendCommit(entries, kBlockSize));
  }
  ASSERT_OK_AND_ASSIGN(const auto cube, WaveletCube::OpenOnDisk(cube_dir));
  EXPECT_FALSE(std::filesystem::exists(cube_dir + "/store.journal"));
  const DurabilityStats stats = cube->durability_stats();
  EXPECT_EQ(stats.journal_replays, 1u);
  EXPECT_FALSE(stats.read_only);
  // The replayed (zeroed) block still verifies: recovery rewrote it with a
  // valid footer under the manifest epoch.
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt, cube->Scrub());
  EXPECT_TRUE(corrupt.empty());
  (void)manifest;
}

TEST_F(DurabilityTest, V2CubeDetectsFlippedByteEndToEnd) {
  const std::string cube_dir = File("cube");
  WaveletCube::Options options;
  options.b = kB;
  {
    ASSERT_OK_AND_ASSIGN(
        const auto cube,
        WaveletCube::CreateOnDisk(cube_dir, {3, 3}, options));
    TensorDataset dataset(MakeData());
    ASSERT_OK(cube->Ingest(&dataset, /*log_chunk=*/2));
    ASSERT_OK(cube->Close());
  }
  {
    std::fstream f(cube_dir + "/blocks.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(9);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x02);
    f.seekp(9);
    f.write(&byte, 1);
  }
  ASSERT_OK_AND_ASSIGN(const auto cube, WaveletCube::OpenOnDisk(cube_dir));
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt, cube->Scrub());
  ASSERT_EQ(corrupt, std::vector<uint64_t>({0}));
  EXPECT_TRUE(cube->durability_stats().read_only);
  // Writes are rejected; the rest of the cube still answers queries.
  EXPECT_FALSE(cube->Update(MakeDeltas(), std::vector<uint64_t>{2, 2}).ok());
}

TEST_F(DurabilityTest, LegacyV1CubeStillOpensWithoutChecksums) {
  const std::string cube_dir = File("cube_v1");
  WaveletCube::Options options;
  options.b = kB;
  options.format_version = 1;
  {
    ASSERT_OK_AND_ASSIGN(
        const auto cube,
        WaveletCube::CreateOnDisk(cube_dir, {3, 3}, options));
    EXPECT_EQ(cube->manifest().format_version, 1u);
    TensorDataset dataset(MakeData());
    ASSERT_OK(cube->Ingest(&dataset, /*log_chunk=*/2));
    ASSERT_OK(cube->Close());
  }
  ASSERT_OK_AND_ASSIGN(const auto cube, WaveletCube::OpenOnDisk(cube_dir));
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt, cube->Scrub());
  EXPECT_TRUE(corrupt.empty());  // nothing to verify: trivially clean
  const std::vector<uint64_t> point = {3, 4};
  ASSERT_OK_AND_ASSIGN(const double value, cube->PointQuery(point));
  EXPECT_NE(value, 0.0);
}

}  // namespace
}  // namespace shiftsplit
