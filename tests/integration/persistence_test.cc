// Durability tests: a file-backed tile store survives process "restarts"
// (close and reopen of the backing file) with queries intact.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/file_block_manager.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_persist_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, TransformSurvivesReopen) {
  const std::vector<uint32_t> log_dims{4, 4};
  const std::string path = (dir_ / "cube.blocks").string();
  auto dataset = MakeUniformDataset(TensorShape({16, 16}), -1.0, 1.0, 97);

  {
    auto layout = std::make_unique<StandardTiling>(log_dims, 2);
    ASSERT_OK_AND_ASSIGN(
        auto manager,
        FileBlockManager::Open(path, layout->block_capacity()));
    ASSERT_OK_AND_ASSIGN(
        auto store, TiledStore::Create(std::move(layout), manager.get(), 16));
    ASSERT_OK(
        TransformDatasetStandard(dataset.get(), 2, store.get()).status());
    ASSERT_OK(store->Flush());
    ASSERT_OK(manager->Sync());
  }

  // Reopen and query.
  {
    auto layout = std::make_unique<StandardTiling>(log_dims, 2);
    ASSERT_OK_AND_ASSIGN(
        auto manager,
        FileBlockManager::Open(path, layout->block_capacity()));
    EXPECT_EQ(manager->num_blocks(), 25u);
    ASSERT_OK_AND_ASSIGN(
        auto store, TiledStore::Create(std::move(layout), manager.get(), 16));
    QueryOptions slot_mode;
    slot_mode.use_scaling_slots = true;
    Xoshiro256 rng(5);
    for (int i = 0; i < 40; ++i) {
      std::vector<uint64_t> point{rng.NextBounded(16), rng.NextBounded(16)};
      ASSERT_OK_AND_ASSIGN(
          const double v,
          PointQueryStandard(store.get(), log_dims, point, slot_mode));
      EXPECT_NEAR(v, dataset->Cell(point), 1e-9);
    }
  }
}

TEST_F(PersistenceTest, FileAndMemoryBackendsCountIdenticalIo) {
  const std::vector<uint32_t> log_dims{4, 3};
  auto run = [&](BlockManager* manager) -> IoStats {
    auto layout = std::make_unique<StandardTiling>(log_dims, 2);
    auto dataset = MakeUniformDataset(TensorShape({16, 8}), 0.0, 1.0, 98);
    auto store_r = TiledStore::Create(std::move(layout), manager, 8);
    EXPECT_TRUE(store_r.ok());
    auto store = std::move(store_r).value();
    auto result = TransformDatasetStandard(dataset.get(), 2, store.get());
    EXPECT_TRUE(result.ok());
    return result->store_io;
  };

  MemoryBlockManager memory(16);
  const IoStats mem_io = run(&memory);

  auto file_r = FileBlockManager::Open((dir_ / "io.blocks").string(), 16);
  ASSERT_TRUE(file_r.ok());
  const IoStats file_io = run(file_r->get());

  EXPECT_EQ(mem_io, file_io);
}

}  // namespace
}  // namespace shiftsplit
