// Seeded, deterministic chaos soak for the query-path resilience layer:
// queries (and a concurrent updater) run against a fault-injecting device
// that quarantines blocks, fails reads transiently, and stalls with latency
// spikes, while deadlines, retry budgets, and graceful degradation keep the
// answers timely and bounded.
//
// The seed comes from SHIFTSPLIT_CHAOS_SEED (decimal) when set, so one
// failing run can be replayed exactly; tools/check.sh pins it.
//
// Invariants exercised:
//  * fault-free resilient answers are bit-identical to the exact path;
//  * degraded answers stay within their reported error bound;
//  * a wedged query returns within one block read of its deadline;
//  * the concurrent phase finishes (no hangs) with only sane statuses.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/util/operation_context.h"
#include "storage/fault_injection_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using shiftsplit::testing::RandomVector;
using Clock = std::chrono::steady_clock;

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("SHIFTSPLIT_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260806;
}

// A loaded standard-form store whose device is wrapped in the fault
// injector. The data is written through the raw device first, so loading
// never trips an armed fault and the injector's read counters start at the
// first query.
struct ChaosRig {
  std::vector<uint32_t> log_dims;
  Tensor data;
  std::unique_ptr<MemoryBlockManager> inner;
  std::unique_ptr<shiftsplit::testing::FaultInjectionBlockManager> faults;
  std::unique_ptr<TiledStore> store;
};

ChaosRig MakeRig(std::vector<uint32_t> log_dims, uint64_t seed,
                 uint64_t pool_blocks) {
  ChaosRig rig;
  rig.log_dims = std::move(log_dims);
  std::vector<uint64_t> dims;
  for (uint32_t n : rig.log_dims) dims.push_back(uint64_t{1} << n);
  TensorShape shape(dims);
  rig.data = Tensor(shape, RandomVector(shape.num_elements(), seed));

  auto load_layout = std::make_unique<StandardTiling>(rig.log_dims, 2);
  rig.inner =
      std::make_unique<MemoryBlockManager>(load_layout->block_capacity());
  {
    auto r = TiledStore::Create(std::move(load_layout), rig.inner.get(), 512);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::unique_ptr<TiledStore> loader = std::move(r).value();
    std::vector<uint64_t> zero(rig.log_dims.size(), 0);
    EXPECT_OK(ApplyChunkStandard(rig.data, zero, rig.log_dims, loader.get(),
                                 Normalization::kAverage));
    EXPECT_OK(loader->Flush());
  }

  rig.faults = std::make_unique<shiftsplit::testing::FaultInjectionBlockManager>(
      rig.inner.get());
  auto layout = std::make_unique<StandardTiling>(rig.log_dims, 2);
  auto r = TiledStore::Create(std::move(layout), rig.faults.get(),
                              pool_blocks);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  rig.store = std::move(r).value();
  return rig;
}

struct RangeQ {
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
};

std::vector<RangeQ> RandomRanges(const std::vector<uint32_t>& log_dims,
                                 size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<RangeQ> out(count);
  for (auto& q : out) {
    for (uint32_t n : log_dims) {
      const uint64_t dim = uint64_t{1} << n;
      uint64_t a = rng() % dim;
      uint64_t b = rng() % dim;
      q.lo.push_back(std::min(a, b));
      q.hi.push_back(std::max(a, b));
    }
  }
  return out;
}

std::vector<std::vector<uint64_t>> RandomPoints(
    const std::vector<uint32_t>& log_dims, size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<std::vector<uint64_t>> out(count);
  for (auto& p : out) {
    for (uint32_t n : log_dims) p.push_back(rng() % (uint64_t{1} << n));
  }
  return out;
}

RetryPolicy FastRetry() {
  RetryPolicy r;
  r.max_retries = 3;
  r.initial_backoff_us = 1;
  r.max_backoff_us = 50;
  r.jitter = 0.5;
  return r;
}

// Fault-free: the resilient path must be bit-identical to the exact path —
// same term enumeration, same accumulation order.
TEST(ChaosSoakTest, FaultFreeResilientIsBitIdentical) {
  const uint64_t seed = ChaosSeed();
  ChaosRig rig = MakeRig({4, 3}, seed, 512);
  ASSERT_OK(rig.store->EnableEnergyTracking());
  QueryOptions options;

  for (const RangeQ& q : RandomRanges(rig.log_dims, 24, seed)) {
    ASSERT_OK_AND_ASSIGN(
        const double exact,
        RangeSumStandard(rig.store.get(), rig.log_dims, q.lo, q.hi, options));
    ASSERT_OK_AND_ASSIGN(const DegradedResult r,
                         RangeSumStandardResilient(rig.store.get(),
                                                   rig.log_dims, q.lo, q.hi,
                                                   options));
    EXPECT_TRUE(r.exact());
    EXPECT_EQ(r.value, exact);  // bit-identical, not just near
    EXPECT_EQ(r.error_bound, 0.0);
    EXPECT_EQ(r.blocks_missing, 0u);
  }
  for (bool slots : {false, true}) {
    options.use_scaling_slots = slots;
    for (const auto& p : RandomPoints(rig.log_dims, 24, seed)) {
      ASSERT_OK_AND_ASSIGN(
          const double exact,
          PointQueryStandard(rig.store.get(), rig.log_dims, p, options));
      ASSERT_OK_AND_ASSIGN(
          const DegradedResult r,
          PointQueryStandardResilient(rig.store.get(), rig.log_dims, p,
                                      options));
      EXPECT_TRUE(r.exact());
      EXPECT_EQ(r.value, exact);
    }
  }
}

// Quarantined block: answers degrade instead of failing, stay within the
// reported bound, and two identical runs produce identical output.
TEST(ChaosSoakTest, QuarantineDegradesWithinBound) {
  const uint64_t seed = ChaosSeed();
  // Pool of 2 frames: the energy scan and the baseline sweep cannot keep
  // the quarantined block cached, so every query re-reads it and trips the
  // injection.
  ChaosRig rig = MakeRig({4, 3}, seed, 2);
  ASSERT_OK(rig.store->EnableEnergyTracking());
  QueryOptions options;

  const auto queries = RandomRanges(rig.log_dims, 24, seed);
  std::vector<double> exact(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(exact[i],
                         RangeSumStandard(rig.store.get(), rig.log_dims,
                                          queries[i].lo, queries[i].hi,
                                          options));
  }

  // Every range sum touches the overall scaling coefficient, so its block
  // degrades every query.
  const std::vector<uint64_t> zero(rig.log_dims.size(), 0);
  ASSERT_OK_AND_ASSIGN(const BlockSlot root,
                       rig.store->layout().Locate(zero));
  rig.faults->InjectReadStatus(
      root.block, Status::ChecksumMismatch("injected quarantine"));

  // Push the quarantined block out of the 2-frame pool by touching other
  // blocks, so queries re-read it from the device and trip the injection.
  auto evict_root = [&]() {
    uint64_t touched = 0;
    for (uint64_t b = 0; b < rig.inner->num_blocks() && touched < 3; ++b) {
      if (b == root.block) continue;
      auto unused = rig.store->GetAt(BlockSlot{b, 0});
      (void)unused;
      ++touched;
    }
  };
  evict_root();

  struct Outcome {
    double value;
    double bound;
    uint64_t missing;
    DegradedReason reason;
  };
  auto run = [&]() {
    std::vector<Outcome> out;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto r = RangeSumStandardResilient(rig.store.get(), rig.log_dims,
                                         queries[i].lo, queries[i].hi,
                                         options);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) continue;
      const DegradedResult& d = *r;
      out.push_back({d.value, d.error_bound, d.blocks_missing, d.reason});
      if (d.blocks_missing > 0) {
        EXPECT_EQ(d.reason, DegradedReason::kQuarantined);
        EXPECT_TRUE(std::isfinite(d.error_bound));
        EXPECT_LE(std::abs(d.value - exact[i]), d.error_bound + 1e-12)
            << "query " << i;
      } else {
        EXPECT_EQ(d.value, exact[i]);
      }
    }
    return out;
  };

  const auto first = run();
  uint64_t degraded = 0;
  for (const Outcome& o : first) degraded += o.missing > 0 ? 1 : 0;
  EXPECT_GT(degraded, 0u);

  // Deterministic replay: same seed, same store, same faults — outputs
  // must match bit for bit.
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].value, second[i].value);
    EXPECT_EQ(first[i].bound, second[i].bound);
    EXPECT_EQ(first[i].missing, second[i].missing);
    EXPECT_EQ(first[i].reason, second[i].reason);
  }

  // Path-mode point queries walk through the root block too.
  rig.faults->ClearAllReadStatus();
  const auto points = RandomPoints(rig.log_dims, 8, seed);
  std::vector<double> point_exact(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(point_exact[i],
                         PointQueryStandard(rig.store.get(), rig.log_dims,
                                            points[i], options));
  }
  rig.faults->InjectReadStatus(
      root.block, Status::ChecksumMismatch("injected quarantine"));
  evict_root();
  uint64_t degraded_points = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(
        const DegradedResult r,
        PointQueryStandardResilient(rig.store.get(), rig.log_dims, points[i],
                                    options));
    if (r.blocks_missing > 0) {
      ++degraded_points;
      EXPECT_EQ(r.reason, DegradedReason::kQuarantined);
      EXPECT_LE(std::abs(r.value - point_exact[i]), r.error_bound + 1e-12);
    } else {
      EXPECT_EQ(r.value, point_exact[i]);
    }
  }
  EXPECT_GT(degraded_points, 0u);
}

// Enabling energy tracking on an already-damaged store must not fail: the
// scan is best-effort, the unreadable block keeps the +infinity ceiling,
// and resilient queries degrade around it with an honest (infinite) bound.
TEST(ChaosSoakTest, EnergyScanToleratesUnreadableBlocks) {
  const uint64_t seed = ChaosSeed();
  ChaosRig rig = MakeRig({4, 3}, seed, 2);

  const std::vector<uint64_t> zero(rig.log_dims.size(), 0);
  ASSERT_OK_AND_ASSIGN(const BlockSlot root,
                       rig.store->layout().Locate(zero));
  rig.faults->InjectReadStatus(
      root.block, Status::ChecksumMismatch("injected quarantine"));

  // The root block is quarantined before the scan ever sees it.
  ASSERT_OK(rig.store->EnableEnergyTracking());
  EXPECT_TRUE(std::isinf(rig.store->BlockEnergyCeiling(root.block)));

  QueryOptions options;
  const auto queries = RandomRanges(rig.log_dims, 8, seed);
  uint64_t degraded = 0;
  for (const RangeQ& q : queries) {
    ASSERT_OK_AND_ASSIGN(
        const DegradedResult r,
        RangeSumStandardResilient(rig.store.get(), rig.log_dims, q.lo, q.hi,
                                  options));
    if (r.blocks_missing > 0) {
      ++degraded;
      EXPECT_EQ(r.reason, DegradedReason::kQuarantined);
      EXPECT_TRUE(std::isinf(r.error_bound));
    }
  }
  EXPECT_GT(degraded, 0u);
}

// Transient read failures within the retry budget are invisible: the
// answers are exact and bit-identical, and the budget was actually used.
TEST(ChaosSoakTest, TransientFailuresRetriedToExact) {
  const uint64_t seed = ChaosSeed();
  ChaosRig rig = MakeRig({4, 3}, seed, 2);
  QueryOptions options;

  const auto queries = RandomRanges(rig.log_dims, 16, seed + 1);
  std::vector<double> exact(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(exact[i],
                         RangeSumStandard(rig.store.get(), rig.log_dims,
                                          queries[i].lo, queries[i].hi,
                                          options));
  }

  rig.faults->FailEveryNthRead(3);
  uint64_t total_retries = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    // One context per logical operation: each query gets a fresh retry
    // budget, as the production entry points do. The budget must cover
    // every miss the query can take (each one trips the every-3rd-read
    // injection at most once).
    OperationContext ctx;
    RetryPolicy policy = FastRetry();
    policy.max_retries = 64;
    ctx.set_retry_policy(policy);
    ctx.set_jitter_seed(seed + i);
    options.context = &ctx;
    ASSERT_OK_AND_ASSIGN(const DegradedResult r,
                         RangeSumStandardResilient(rig.store.get(),
                                                   rig.log_dims,
                                                   queries[i].lo,
                                                   queries[i].hi, options));
    EXPECT_TRUE(r.exact()) << "query " << i << " degraded: "
                           << DegradedReasonToString(r.reason);
    EXPECT_EQ(r.value, exact[i]);
    total_retries += ctx.retries_used();
  }
  EXPECT_GT(total_retries, 0u);
}

// A deadline cuts a latency-spiked query short: the call returns within
// one stalled block read (plus scheduler slack) of the deadline, degraded
// with kDeadline rather than hung.
TEST(ChaosSoakTest, DeadlineCutsLatencySpikes) {
  const uint64_t seed = ChaosSeed();
  ChaosRig rig = MakeRig({4, 3}, seed, 2);
  QueryOptions options;
  const auto queries = RandomRanges(rig.log_dims, 6, seed + 2);

  constexpr auto kDeadline = std::chrono::milliseconds(40);
  constexpr auto kSpike = std::chrono::milliseconds(30);
  constexpr auto kSlack = std::chrono::milliseconds(2000);
  rig.faults->SetReadLatency(
      2, std::chrono::duration_cast<std::chrono::microseconds>(kSpike)
             .count());

  uint64_t degraded = 0;
  for (const RangeQ& q : queries) {
    OperationContext ctx(kDeadline);
    options.context = &ctx;
    const auto t0 = Clock::now();
    auto r = RangeSumStandardResilient(rig.store.get(), rig.log_dims, q.lo,
                                       q.hi, options);
    const auto elapsed = Clock::now() - t0;
    EXPECT_LT(elapsed, kDeadline + kSpike + kSlack);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (!r->exact()) {
      ++degraded;
      EXPECT_EQ(r->reason, DegradedReason::kDeadline);
      EXPECT_GT(r->blocks_missing, 0u);
    }
  }
  EXPECT_GT(degraded, 0u);
}

// Cancellation is not degradable: it propagates as kCancelled.
TEST(ChaosSoakTest, CancellationPropagates) {
  const uint64_t seed = ChaosSeed();
  ChaosRig rig = MakeRig({4, 3}, seed, 8);
  OperationContext ctx;
  ctx.RequestCancel();
  QueryOptions options;
  options.context = &ctx;
  const std::vector<uint64_t> lo{0, 0};
  const std::vector<uint64_t> hi{7, 7};
  auto r = RangeSumStandardResilient(rig.store.get(), rig.log_dims, lo, hi,
                                     options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

// Concurrent soak: query threads with deadlines and admission control race
// an updater through transient failures and latency spikes. Asserts the
// phase terminates, every query returns a sane status, and no call
// overruns its deadline by more than a spike plus generous slack.
TEST(ChaosSoakTest, ConcurrentSoakTerminatesWithSaneStatuses) {
  const uint64_t seed = ChaosSeed();
  ChaosRig rig = MakeRig({5, 4}, seed, 8);
  ASSERT_OK(rig.store->EnableEnergyTracking());
  rig.faults->FailEveryNthRead(7);
  rig.faults->SetReadLatency(5, 5'000);  // 5 ms stall on every 5th read
  rig.store->pool().set_thread_safe(true);
  rig.store->pool().SetAdmissionControl(/*max_concurrent=*/2,
                                        /*max_queue_depth=*/2,
                                        /*queue_timeout_us=*/20'000);

  constexpr int kQueryThreads = 3;
  constexpr int kQueriesPerThread = 15;
  constexpr auto kDeadline = std::chrono::milliseconds(50);
  constexpr auto kSpike = std::chrono::milliseconds(5);
  constexpr auto kSlack = std::chrono::milliseconds(5000);  // TSan + 1 CPU

  // Updates and queries serialize on the store contents; the pool itself
  // is thread-safe, but coefficients must not change mid-reconstruction.
  std::shared_mutex data_mu;
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<int> failures{0};

  auto query_worker = [&](int tid) {
    std::mt19937_64 rng(seed + static_cast<uint64_t>(tid));
    const auto ranges =
        RandomRanges(rig.log_dims, kQueriesPerThread, rng());
    for (const RangeQ& q : ranges) {
      std::shared_lock<std::shared_mutex> lock(data_mu);
      OperationContext ctx(kDeadline);
      ctx.set_retry_policy(FastRetry());
      ctx.set_jitter_seed(rng());
      auto ticket = rig.store->pool().AdmitOperation(&ctx);
      if (!ticket.ok()) {
        const StatusCode code = ticket.status().code();
        if (code != StatusCode::kUnavailable &&
            code != StatusCode::kDeadlineExceeded &&
            code != StatusCode::kCancelled) {
          ++failures;
          ADD_FAILURE() << "unexpected admission status: "
                        << ticket.status().ToString();
        }
        ++rejected;
        continue;
      }
      QueryOptions options;
      options.context = &ctx;
      const auto t0 = Clock::now();
      auto r = RangeSumStandardResilient(rig.store.get(), rig.log_dims, q.lo,
                                         q.hi, options);
      const auto elapsed = Clock::now() - t0;
      if (elapsed >= kDeadline + kSpike + kSlack) {
        ++failures;
        ADD_FAILURE() << "query overran its deadline envelope";
      }
      if (!r.ok()) {
        ++failures;
        ADD_FAILURE() << "resilient query failed: " << r.status().ToString();
        continue;
      }
      ++completed;
      if (!r->exact()) ++degraded;
    }
  };

  auto update_worker = [&]() {
    std::mt19937_64 rng(seed + 99);
    for (int i = 0; i < 40; ++i) {
      std::vector<uint64_t> address;
      for (uint32_t n : rig.log_dims) {
        address.push_back(rng() % (uint64_t{1} << n));
      }
      const double delta = static_cast<double>(rng() % 1000) / 1000.0;
      {
        std::unique_lock<std::shared_mutex> lock(data_mu);
        // Transient injected failures may surface here; the updater just
        // moves on — the soak asserts the query side, not write success.
        const Status st = rig.store->Add(address, delta);
        (void)st;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(update_worker);
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back(query_worker, t);
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load() + rejected.load(),
            static_cast<uint64_t>(kQueryThreads) * kQueriesPerThread);
  EXPECT_GT(completed.load(), 0u);
  const BufferPool::Stats stats = rig.store->pool_stats();
  EXPECT_EQ(stats.admitted, completed.load());
  RecordProperty("completed", static_cast<int>(completed.load()));
  RecordProperty("degraded", static_cast<int>(degraded.load()));
  RecordProperty("rejected", static_cast<int>(rejected.load()));
}

}  // namespace
}  // namespace shiftsplit
