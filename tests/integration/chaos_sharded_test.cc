// Seeded, deterministic-replayable chaos for the self-healing sharded
// serving layer (DESIGN.md §11): a traffic loop poisons random shards
// mid-stream while the background supervisor quarantines, recovers and
// re-admits them, and the test holds the availability contract the whole
// way through:
//
//  * approx-tolerant cross-shard queries answer around quarantined shards
//    and stay within their reported error bound;
//  * healthy shards keep serving reads and writes throughout;
//  * recovery converges (no shard ends QUARANTINED/RECOVERING/FAILED);
//  * after the chaos stops and every rejected write is retried, the cube
//    is bit-identical to a never-faulted monolithic reference holding
//    exactly the acknowledged writes.
//
// The seed comes from SHIFTSPLIT_CHAOS_SEED (decimal) when set, so one
// failing run can be replayed exactly; tools/check.sh pins it.

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "shiftsplit/core/query.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/sharded_cube.h"
#include "shiftsplit/util/status.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("SHIFTSPLIT_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260806;
}

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

std::filesystem::path MakeTempDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("shiftsplit_chaos_shard_") + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Dyadic-exact values (k / 2^6) make every sum bit-reproducible across the
// sharded and monolithic accumulation orders used here.
double DyadicValue(std::mt19937_64& rng) {
  return static_cast<double>(static_cast<int64_t>(rng() % 129) - 64) / 64.0;
}

// Poisons random shards into a 4-shard supervised cube mid-traffic; the
// supervisor heals them while degraded queries answer around the holes.
TEST(ChaosShardedTest, SupervisedShardsSurviveRandomPoisoning) {
  const uint64_t seed = ChaosSeed();
  const auto dir = MakeTempDir("soak");
  const std::vector<uint32_t> log_dims{5, 4};
  constexpr uint32_t kShards = 4;
  constexpr uint64_t kSlab = (1u << 5) / kShards;  // split-dim slab extent

  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = true;
  options.serving.oversubscribe = true;
  options.supervisor_poll = std::chrono::milliseconds(2);
  options.recovery_backoff = RetryPolicy{4, 100, 5'000, 0.5};
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), log_dims, kShards,
                                              cube_options, options));

  // The never-faulted reference: a monolithic serving cube that accepts
  // exactly the writes the sharded cube acknowledged.
  ASSERT_OK_AND_ASSIGN(auto base,
                       WaveletCube::CreateInMemory(log_dims, cube_options));
  ServingCube::Options mono_options;
  mono_options.start_workers = false;
  ASSERT_OK_AND_ASSIGN(auto mono,
                       ServingCube::Attach(std::move(base), mono_options));

  std::mt19937_64 rng(seed);
  struct Pending {
    std::vector<uint64_t> coords;
    double value;
  };
  std::vector<Pending> rejected;
  uint64_t crashes = 0;
  uint64_t acked = 0;
  uint64_t degraded_answers = 0;

  constexpr int kOps = 600;
  for (int op = 0; op < kOps; ++op) {
    // Roughly every 80th op, poison a random shard (if it currently has a
    // live cube — mid-recovery slots have none).
    if (rng() % 80 == 0) {
      const uint32_t victim = static_cast<uint32_t>(rng() % kShards);
      if (auto cube = sharded->shard_for_test(victim)) {
        ASSERT_OK(cube->CrashForTest());
        ++crashes;
      }
    }

    std::vector<uint64_t> coords{rng() % (uint64_t{1} << log_dims[0]),
                                 rng() % (uint64_t{1} << log_dims[1])};
    const double value = DyadicValue(rng);
    const Status added = sharded->Add(coords, value);
    if (added.ok()) {
      ASSERT_OK(mono->Add(coords, value));
      ++acked;
    } else {
      // Only availability errors are acceptable under chaos.
      ASSERT_EQ(added.code(), StatusCode::kUnavailable)
          << added.ToString();
      rejected.push_back({coords, value});
    }

    // Every 20th op: a cross-shard approx range sum must answer (degraded
    // or exact) and stay within its own bound against the reference.
    if (op % 20 == 19) {
      QueryOptions approx;
      approx.max_error = std::numeric_limits<double>::infinity();
      const std::vector<uint64_t> lo{0, 0};
      const std::vector<uint64_t> hi{(uint64_t{1} << log_dims[0]) - 1,
                                     (uint64_t{1} << log_dims[1]) - 1};
      ASSERT_OK_AND_ASSIGN(const DegradedResult r,
                           sharded->RangeSum(lo, hi, approx));
      ASSERT_OK_AND_ASSIGN(const double want, mono->RangeSum(lo, hi));
      if (r.exact()) {
        // No shard was skipped, but writes acked an instant ago may still
        // be pending on either side — both merge pending deltas, so the
        // answers agree exactly.
        EXPECT_EQ(Bits(r.value), Bits(want)) << "op " << op;
      } else {
        ++degraded_answers;
        EXPECT_EQ(r.reason, DegradedReason::kShardUnavailable);
        EXPECT_FALSE(r.shards_missing.empty());
        EXPECT_LE(std::abs(want - r.value), r.error_bound + 1e-9)
            << "op " << op;
      }
    }
  }
  ASSERT_GT(crashes, 0u) << "seed produced no chaos; widen the schedule";

  // Convergence: the supervisor heals every shard. Rejected writes retry
  // until the healed shards accept them (mirrored into the reference).
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  for (uint32_t s = 0; s < kShards; ++s) {
    for (;;) {
      const auto info = sharded->shard_health(s);
      ASSERT_NE(info.health, ShardHealth::kFailed)
          << "shard " << s << " failed terminally: " << info.cause.ToString();
      if (info.health == ShardHealth::kHealthy) break;
      ASSERT_LT(Clock::now(), deadline)
          << "shard " << s << " never recovered; health="
          << ShardHealthToString(info.health);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  for (const Pending& p : rejected) {
    Status st = Status::Unavailable("unattempted");
    for (int attempt = 0; attempt < 1000 && !st.ok(); ++attempt) {
      st = sharded->Add(p.coords, p.value);
      if (!st.ok()) {
        ASSERT_LT(Clock::now(), deadline) << st.ToString();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    ASSERT_OK(st);
    ASSERT_OK(mono->Add(p.coords, p.value));
  }

  // Post-recovery: bit-identical to the monolithic reference, point and
  // range, across every shard.
  ASSERT_OK(sharded->DrainAll());
  ASSERT_OK(mono->DrainAll());
  std::mt19937_64 qrng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int q = 0; q < 80; ++q) {
    std::vector<uint64_t> p{qrng() % (uint64_t{1} << log_dims[0]),
                            qrng() % (uint64_t{1} << log_dims[1])};
    ASSERT_OK_AND_ASSIGN(const double got, sharded->PointQuery(p));
    ASSERT_OK_AND_ASSIGN(const double want, mono->PointQuery(p));
    ASSERT_EQ(Bits(got), Bits(want)) << "point query " << q;
  }
  for (int q = 0; q < 20; ++q) {
    std::vector<uint64_t> lo{qrng() % (uint64_t{1} << log_dims[0]),
                             qrng() % (uint64_t{1} << log_dims[1])};
    std::vector<uint64_t> hi{
        lo[0] + qrng() % ((uint64_t{1} << log_dims[0]) - lo[0]),
        lo[1] + qrng() % ((uint64_t{1} << log_dims[1]) - lo[1])};
    ASSERT_OK_AND_ASSIGN(const double got, sharded->RangeSum(lo, hi));
    ASSERT_OK_AND_ASSIGN(const double want, mono->RangeSum(lo, hi));
    ASSERT_EQ(Bits(got), Bits(want)) << "range query " << q;
  }

  const ServingStats stats = sharded->stats();
  EXPECT_EQ(stats.health, ShardHealth::kHealthy);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_EQ(stats.poison_code, StatusCode::kOk);
  RecordProperty("crashes", static_cast<int>(crashes));
  RecordProperty("acked", static_cast<int>(acked));
  RecordProperty("rejected", static_cast<int>(rejected.size()));
  RecordProperty("degraded_answers", static_cast<int>(degraded_answers));
  RecordProperty("recoveries", static_cast<int>(stats.recoveries));

  ASSERT_OK(sharded->Close());
  ASSERT_OK(mono->Close());
  std::filesystem::remove_all(dir);
  // kSlab documents the routing geometry for bound-reasoning readers.
  static_assert(kSlab == 8);
}

// Concurrent flavour: writer threads and a reader thread race the
// supervisor while shards are poisoned underneath them. Asserts liveness
// (the phase terminates), sane statuses, and post-chaos convergence to a
// fully drained, healthy cube whose global sum matches the per-thread
// acknowledged totals.
TEST(ChaosShardedTest, ConcurrentTrafficSurvivesShardCrashes) {
  const uint64_t seed = ChaosSeed() + 1;
  const auto dir = MakeTempDir("mt");
  const std::vector<uint32_t> log_dims{5, 4};
  constexpr uint32_t kShards = 4;

  WaveletCube::Options cube_options;
  ShardedCube::Options options;
  options.serving.start_workers = true;
  options.serving.oversubscribe = true;
  options.supervisor_poll = std::chrono::milliseconds(2);
  options.recovery_backoff = RetryPolicy{4, 100, 5'000, 0.5};
  ASSERT_OK_AND_ASSIGN(
      auto sharded, ShardedCube::CreateOnDisk(dir.string(), log_dims, kShards,
                                              cube_options, options));

  constexpr int kWriters = 2;
  constexpr int kWritesPerThread = 150;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> write_acked{0};
  std::atomic<uint64_t> write_rejected{0};
  std::atomic<uint64_t> reads_ok{0};
  // Acknowledged mass per thread; summed after the fact. Values are whole
  // sixty-fourths, so the final comparison is exact.
  std::vector<double> acked_sum(kWriters, 0.0);

  auto writer = [&](int tid) {
    std::mt19937_64 rng(seed + static_cast<uint64_t>(tid) * 7919);
    for (int i = 0; i < kWritesPerThread; ++i) {
      if (rng() % 70 == 0) {
        const uint32_t victim = static_cast<uint32_t>(rng() % kShards);
        if (auto cube = sharded->shard_for_test(victim)) {
          (void)cube->CrashForTest();
        }
      }
      std::vector<uint64_t> coords{rng() % (uint64_t{1} << log_dims[0]),
                                   rng() % (uint64_t{1} << log_dims[1])};
      const double value = DyadicValue(rng);
      const Status st = sharded->Add(coords, value);
      if (st.ok()) {
        acked_sum[static_cast<size_t>(tid)] += value;
        ++write_acked;
      } else if (st.code() == StatusCode::kUnavailable) {
        ++write_rejected;
      } else {
        ++failures;
        ADD_FAILURE() << "unexpected write status: " << st.ToString();
      }
      if (i % 16 == 0) std::this_thread::yield();
    }
  };
  auto reader = [&]() {
    std::mt19937_64 rng(seed ^ 0xfeedface);
    QueryOptions approx;
    approx.max_error = std::numeric_limits<double>::infinity();
    const std::vector<uint64_t> lo{0, 0};
    const std::vector<uint64_t> hi{31, 15};
    for (int i = 0; i < 120; ++i) {
      auto r = sharded->RangeSum(lo, hi, approx);
      if (r.ok()) {
        ++reads_ok;
        if (!r->exact() && !std::isfinite(r->error_bound) &&
            r->shards_missing.empty()) {
          ++failures;
          ADD_FAILURE() << "degraded answer without a missing shard";
        }
      } else if (r.status().code() != StatusCode::kUnavailable) {
        ++failures;
        ADD_FAILURE() << "unexpected read status: " << r.status().ToString();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) threads.emplace_back(writer, t);
  threads.emplace_back(reader);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(write_acked.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);

  // Convergence after the storm.
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  for (uint32_t s = 0; s < kShards; ++s) {
    while (sharded->shard_health(s).health != ShardHealth::kHealthy) {
      const auto info = sharded->shard_health(s);
      ASSERT_NE(info.health, ShardHealth::kFailed)
          << "shard " << s << ": " << info.cause.ToString();
      ASSERT_LT(Clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_OK(sharded->DrainAll());

  // Every acknowledged write — and nothing else — is in the cube.
  double want = 0.0;
  for (const double s : acked_sum) want += s;
  ASSERT_OK_AND_ASSIGN(const double got,
                       sharded->RangeSum(std::vector<uint64_t>{0, 0},
                                         std::vector<uint64_t>{31, 15}));
  EXPECT_EQ(Bits(got), Bits(want));

  RecordProperty("acked", static_cast<int>(write_acked.load()));
  RecordProperty("rejected", static_cast<int>(write_rejected.load()));
  ASSERT_OK(sharded->Close());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
