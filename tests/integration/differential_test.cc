// Randomized differential tests: a random interleaving of chunk builds,
// batch updates, point/range queries and reconstructions runs against a
// plain in-memory tensor oracle. Any divergence between the wavelet-domain
// maintenance and the direct recomputation is a bug; the sequences are
// seeded, so failures reproduce exactly.

#include <gtest/gtest.h>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/util/random.h"
#include "testing.h"

namespace shiftsplit {
namespace {

struct Harness {
  std::vector<uint32_t> log_dims;
  Normalization norm;
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
  Tensor oracle;  // current untransformed data
};

Harness MakeHarness(std::vector<uint32_t> log_dims, Normalization norm,
                    uint32_t b) {
  Harness h;
  h.log_dims = std::move(log_dims);
  h.norm = norm;
  std::vector<uint64_t> dims;
  for (uint32_t n : h.log_dims) dims.push_back(uint64_t{1} << n);
  h.oracle = Tensor(TensorShape(dims));
  auto layout = std::make_unique<StandardTiling>(h.log_dims, b);
  h.manager = std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), h.manager.get(), 256);
  EXPECT_TRUE(r.ok());
  h.store = std::move(r).value();
  return h;
}

// A random dyadic-aligned box: per-dim level in [0, n_i], aligned position.
void RandomDyadicBox(Xoshiro256& rng, const std::vector<uint32_t>& log_dims,
                     std::vector<uint32_t>* box_log,
                     std::vector<uint64_t>* box_pos) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  box_log->resize(d);
  box_pos->resize(d);
  for (uint32_t i = 0; i < d; ++i) {
    (*box_log)[i] = static_cast<uint32_t>(rng.NextBounded(log_dims[i] + 1));
    (*box_pos)[i] =
        rng.NextBounded(uint64_t{1} << (log_dims[i] - (*box_log)[i]));
  }
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, Normalization>> {};

TEST_P(DifferentialTest, RandomOperationSequence) {
  const auto [seed, norm] = GetParam();
  Xoshiro256 rng(seed);
  Harness h = MakeHarness({4, 3}, norm, 2);
  const uint32_t d = 2;

  for (int step = 0; step < 60; ++step) {
    const uint64_t op = rng.NextBounded(5);
    if (op == 0) {
      // Batch-update a random dyadic box with random deltas.
      std::vector<uint32_t> box_log;
      std::vector<uint64_t> box_pos;
      RandomDyadicBox(rng, h.log_dims, &box_log, &box_pos);
      std::vector<uint64_t> box_dims(d);
      for (uint32_t i = 0; i < d; ++i) box_dims[i] = uint64_t{1} << box_log[i];
      Tensor deltas{TensorShape(box_dims)};
      for (uint64_t i = 0; i < deltas.size(); ++i) {
        deltas[i] = rng.NextUniform(-2.0, 2.0);
      }
      ASSERT_OK(UpdateDyadicStandard(h.store.get(), h.log_dims, deltas,
                                     box_pos, h.norm));
      std::vector<uint64_t> local(d, 0), cell(d);
      do {
        for (uint32_t i = 0; i < d; ++i) {
          cell[i] = (box_pos[i] << box_log[i]) + local[i];
        }
        h.oracle.At(cell) += deltas.At(local);
      } while (deltas.shape().Next(local));
    } else if (op == 1) {
      // Point query (both modes).
      std::vector<uint64_t> point(d);
      for (uint32_t i = 0; i < d; ++i) {
        point[i] = rng.NextBounded(uint64_t{1} << h.log_dims[i]);
      }
      QueryOptions q;
      q.norm = h.norm;
      q.use_scaling_slots = rng.NextBounded(2) == 1;
      ASSERT_OK_AND_ASSIGN(
          const double v,
          PointQueryStandard(h.store.get(), h.log_dims, point, q));
      ASSERT_NEAR(v, h.oracle.At(point), 1e-8)
          << "seed=" << seed << " step=" << step;
    } else if (op == 2) {
      // Range sum over a random box.
      std::vector<uint64_t> lo(d), hi(d);
      for (uint32_t i = 0; i < d; ++i) {
        const uint64_t extent = uint64_t{1} << h.log_dims[i];
        const uint64_t a = rng.NextBounded(extent);
        const uint64_t b = rng.NextBounded(extent);
        lo[i] = std::min(a, b);
        hi[i] = std::max(a, b);
      }
      QueryOptions q;
      q.norm = h.norm;
      ASSERT_OK_AND_ASSIGN(
          const double sum,
          RangeSumStandard(h.store.get(), h.log_dims, lo, hi, q));
      double brute = 0.0;
      std::vector<uint64_t> c(d);
      for (c[0] = lo[0]; c[0] <= hi[0]; ++c[0]) {
        for (c[1] = lo[1]; c[1] <= hi[1]; ++c[1]) {
          brute += h.oracle.At(c);
        }
      }
      ASSERT_NEAR(sum, brute, 1e-7) << "seed=" << seed << " step=" << step;
    } else if (op == 3) {
      // Reconstruct a random dyadic box.
      std::vector<uint32_t> box_log;
      std::vector<uint64_t> box_pos;
      RandomDyadicBox(rng, h.log_dims, &box_log, &box_pos);
      ASSERT_OK_AND_ASSIGN(
          Tensor box, ReconstructDyadicStandard(h.store.get(), h.log_dims,
                                                box_log, box_pos, h.norm));
      std::vector<uint64_t> local(d, 0), cell(d);
      do {
        for (uint32_t i = 0; i < d; ++i) {
          cell[i] = (box_pos[i] << box_log[i]) + local[i];
        }
        ASSERT_NEAR(box.At(local), h.oracle.At(cell), 1e-8)
            << "seed=" << seed << " step=" << step;
      } while (box.shape().Next(local));
    } else {
      // Unaligned range update.
      std::vector<uint64_t> origin(d), box_dims(d);
      for (uint32_t i = 0; i < d; ++i) {
        const uint64_t extent = uint64_t{1} << h.log_dims[i];
        box_dims[i] = uint64_t{1} << rng.NextBounded(h.log_dims[i]);
        origin[i] = rng.NextBounded(extent - box_dims[i] + 1);
      }
      Tensor deltas{TensorShape(box_dims)};
      for (uint64_t i = 0; i < deltas.size(); ++i) {
        deltas[i] = rng.NextUniform(-1.0, 1.0);
      }
      ASSERT_OK(UpdateRangeStandard(h.store.get(), h.log_dims, deltas,
                                    origin, h.norm));
      std::vector<uint64_t> local(d, 0), cell(d);
      do {
        for (uint32_t i = 0; i < d; ++i) cell[i] = origin[i] + local[i];
        h.oracle.At(cell) += deltas.At(local);
      } while (deltas.shape().Next(local));
    }
  }

  // Final sweep: every cell of the store matches the oracle.
  std::vector<uint64_t> point(d, 0);
  QueryOptions q;
  q.norm = h.norm;
  do {
    ASSERT_OK_AND_ASSIGN(
        const double v,
        PointQueryStandard(h.store.get(), h.log_dims, point, q));
    ASSERT_NEAR(v, h.oracle.At(point), 1e-8) << "seed=" << seed;
  } while (h.oracle.shape().Next(point));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndNorms, DifferentialTest,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}, uint64_t{4},
                                         uint64_t{5}),
                       ::testing::Values(Normalization::kAverage,
                                         Normalization::kOrthonormal)));

TEST(DifferentialTest, NonstandardRandomUpdatesAndQueries) {
  Xoshiro256 rng(99);
  const uint32_t d = 2, n = 4;
  Tensor oracle(TensorShape::Cube(d, 16));
  auto layout = std::make_unique<NonstandardTiling>(d, n, 2);
  MemoryBlockManager manager(layout->block_capacity());
  auto store_r = TiledStore::Create(std::move(layout), &manager, 256);
  ASSERT_TRUE(store_r.ok());
  auto store = std::move(store_r).value();

  for (int step = 0; step < 40; ++step) {
    if (rng.NextBounded(2) == 0) {
      const uint32_t m = static_cast<uint32_t>(rng.NextBounded(n + 1));
      std::vector<uint64_t> pos(d);
      for (uint32_t i = 0; i < d; ++i) {
        pos[i] = rng.NextBounded(uint64_t{1} << (n - m));
      }
      Tensor deltas(TensorShape::Cube(d, uint64_t{1} << m));
      for (uint64_t i = 0; i < deltas.size(); ++i) {
        deltas[i] = rng.NextUniform(-2.0, 2.0);
      }
      ASSERT_OK(UpdateDyadicNonstandard(store.get(), n, deltas, pos,
                                        Normalization::kAverage));
      std::vector<uint64_t> local(d, 0), cell(d);
      do {
        for (uint32_t i = 0; i < d; ++i) cell[i] = (pos[i] << m) + local[i];
        oracle.At(cell) += deltas.At(local);
      } while (deltas.shape().Next(local));
    } else {
      std::vector<uint64_t> point(d);
      for (uint32_t i = 0; i < d; ++i) point[i] = rng.NextBounded(16);
      QueryOptions q;
      q.use_scaling_slots = rng.NextBounded(2) == 1;
      ASSERT_OK_AND_ASSIGN(
          const double v, PointQueryNonstandard(store.get(), n, point, q));
      ASSERT_NEAR(v, oracle.At(point), 1e-8) << "step=" << step;
    }
  }
}

}  // namespace
}  // namespace shiftsplit
