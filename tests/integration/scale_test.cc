// Scale sanity: million-coefficient 1-d and quarter-million 2-d stores
// built under tight memory budgets, with queries spot-checked against the
// generator. Kept fast (seconds) because query cost is logarithmic.

#include <gtest/gtest.h>

#include <cmath>

#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/tree_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(ScaleTest, MillionValueVectorUnderTinyPool) {
  const uint32_t n = 20, m = 10, b = 6;  // 1M values, 1K chunks, 64-slot tiles
  MemoryBlockManager device(uint64_t{1} << b);
  ASSERT_OK_AND_ASSIGN(
      auto store, TiledStore::Create(std::make_unique<TreeTilingLayout>(n, b),
                                     &device, /*pool_blocks=*/8));
  auto value = [](uint64_t i) {
    return std::sin(static_cast<double>(i) * 0.001) +
           static_cast<double>(i % 17) * 0.25;
  };
  std::vector<double> chunk(uint64_t{1} << m);
  for (uint64_t k = 0; k < (uint64_t{1} << (n - m)); ++k) {
    for (uint64_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = value((k << m) + i);
    }
    ASSERT_OK(TransformAndApplyChunk1D(chunk, n, k, store.get(),
                                       Normalization::kAverage));
  }
  // Spot point queries (single-block strategy).
  const std::vector<uint32_t> log_dims{n};
  QueryOptions q;
  q.use_scaling_slots = true;
  Xoshiro256 rng(81);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint64_t> p{rng.NextBounded(uint64_t{1} << n)};
    ASSERT_OK(store->pool().Clear());
    device.stats().Reset();
    ASSERT_OK_AND_ASSIGN(const double v,
                         PointQueryStandard(store.get(), log_dims, p, q));
    ASSERT_NEAR(v, value(p[0]), 1e-8);
    ASSERT_EQ(device.stats().block_reads, 1u);
  }
  // A wide range sum.
  std::vector<uint64_t> lo{123456}, hi{789012};
  double brute = 0.0;
  for (uint64_t i = lo[0]; i <= hi[0]; ++i) brute += value(i);
  ASSERT_OK_AND_ASSIGN(
      const double sum,
      RangeSumStandard(store.get(), log_dims, lo, hi, QueryOptions{}));
  EXPECT_NEAR(sum, brute, std::abs(brute) * 1e-9 + 1e-6);
}

TEST(ScaleTest, QuarterMillionCellCubeEndToEnd) {
  auto dataset = MakeSmoothDataset(TensorShape({512, 512}), 82);
  WaveletCube::Options options;
  options.b = 3;
  options.pool_blocks = 128;
  ASSERT_OK_AND_ASSIGN(auto cube,
                       WaveletCube::CreateInMemory({9, 9}, options));
  ASSERT_OK(cube->Ingest(dataset.get(), /*log_chunk=*/5));

  Xoshiro256 rng(83);
  for (int i = 0; i < 50; ++i) {
    std::vector<uint64_t> p{rng.NextBounded(512), rng.NextBounded(512)};
    ASSERT_OK_AND_ASSIGN(const double v, cube->PointQuery(p));
    ASSERT_NEAR(v, dataset->Cell(p), 1e-8);
  }
  // Extract a 64x64 region and verify a diagonal.
  std::vector<uint64_t> lo{100, 300}, hi{163, 363};
  ASSERT_OK_AND_ASSIGN(Tensor box, cube->Extract(lo, hi));
  for (uint64_t i = 0; i < 64; i += 7) {
    std::vector<uint64_t> local{i, i};
    std::vector<uint64_t> cell{100 + i, 300 + i};
    ASSERT_NEAR(box.At(local), dataset->Cell(cell), 1e-8);
  }
}

}  // namespace
}  // namespace shiftsplit
