#include "shiftsplit/baseline/vitter_transform.h"

#include <gtest/gtest.h>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(VitterTransformTest, MatchesDirectTransform) {
  auto dataset = MakeUniformDataset(TensorShape({8, 16}), -2.0, 2.0, 51);
  ASSERT_OK_AND_ASSIGN(Tensor direct, dataset->Materialize());
  ASSERT_OK(ForwardStandard(&direct, Normalization::kAverage));

  MemoryBlockManager manager(16);
  ASSERT_OK_AND_ASSIGN(
      auto store,
      TiledStore::Create(
          std::make_unique<NaiveTiling>(std::vector<uint32_t>{3, 4}, 16),
          &manager, 16));
  ASSERT_OK_AND_ASSIGN(const TransformResult result,
                       VitterTransformStandard(dataset.get(), store.get(),
                                               Normalization::kAverage));
  EXPECT_EQ(result.cells_read, 128u);
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, store->Get(address));
    ASSERT_NEAR(v, direct.At(address), 1e-9);
  } while (direct.shape().Next(address));
}

TEST(VitterTransformTest, RequiresNaiveLayout) {
  auto dataset = MakeUniformDataset(TensorShape({8, 8}), 0.0, 1.0, 52);
  auto layout =
      std::make_unique<StandardTiling>(std::vector<uint32_t>{3, 3}, 2);
  MemoryBlockManager manager(layout->block_capacity());
  ASSERT_OK_AND_ASSIGN(auto store,
                       TiledStore::Create(std::move(layout), &manager, 8));
  EXPECT_FALSE(VitterTransformStandard(dataset.get(), store.get(),
                                       Normalization::kAverage)
                   .ok());
}

TEST(VitterTransformTest, CoefficientIoIsMemoryInsensitive) {
  // Vitter's coefficient I/O is ~(d+1) reads+writes per cell regardless of
  // the pool budget — the flat curve of Figure 11.
  auto run = [&](uint64_t pool_blocks) -> IoStats {
    auto dataset = MakeUniformDataset(TensorShape({16, 16}), 0.0, 1.0, 53);
    MemoryBlockManager manager(16);
    auto store_r = TiledStore::Create(
        std::make_unique<NaiveTiling>(std::vector<uint32_t>{4, 4}, 16),
        &manager, pool_blocks);
    EXPECT_TRUE(store_r.ok());
    auto store = std::move(store_r).value();
    auto result = VitterTransformStandard(dataset.get(), store.get(),
                                          Normalization::kAverage);
    EXPECT_TRUE(result.ok());
    return result->store_io;
  };
  const IoStats small = run(2);
  const IoStats large = run(64);
  EXPECT_EQ(small.total_coeffs(), large.total_coeffs());
  // 256 materialize writes + 2 dims x (256 reads + 256 writes).
  EXPECT_EQ(small.total_coeffs(), 256u + 2u * 512u);
  // Block I/O, however, grows when the pool is starved.
  EXPECT_GT(small.total_blocks(), large.total_blocks());
}

TEST(VitterTransformTest, ShiftSplitBeatsVitterOnCoefficientIo) {
  // The Table 2 relationship, measured.
  const std::vector<uint32_t> log_dims{5, 5};
  auto dataset1 = MakeUniformDataset(TensorShape({32, 32}), 0.0, 1.0, 54);
  MemoryBlockManager vitter_manager(16);
  auto vitter_store_r = TiledStore::Create(
      std::make_unique<NaiveTiling>(log_dims, 16), &vitter_manager, 32);
  ASSERT_TRUE(vitter_store_r.ok());
  auto vitter_store = std::move(vitter_store_r).value();
  ASSERT_OK_AND_ASSIGN(
      const TransformResult vitter,
      VitterTransformStandard(dataset1.get(), vitter_store.get(),
                              Normalization::kAverage));

  auto dataset2 = MakeUniformDataset(TensorShape({32, 32}), 0.0, 1.0, 54);
  auto ss_layout = std::make_unique<StandardTiling>(log_dims, 2);
  MemoryBlockManager ss_manager(ss_layout->block_capacity());
  auto ss_store_r = TiledStore::Create(std::move(ss_layout), &ss_manager, 32);
  ASSERT_TRUE(ss_store_r.ok());
  auto ss_store = std::move(ss_store_r).value();
  TransformOptions options;
  options.maintain_scaling_slots = false;
  ASSERT_OK_AND_ASSIGN(
      const TransformResult ss,
      TransformDatasetStandard(dataset2.get(), 3, ss_store.get(), options));

  EXPECT_LT(ss.store_io.total_coeffs(), vitter.store_io.total_coeffs());
}

}  // namespace
}  // namespace shiftsplit
