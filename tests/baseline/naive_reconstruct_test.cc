#include "shiftsplit/baseline/naive_reconstruct.h"

#include <gtest/gtest.h>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
  Tensor data;
};

Bundle Loaded(std::vector<uint32_t> log_dims, uint64_t seed) {
  Bundle bundle;
  std::vector<uint64_t> dims;
  for (uint32_t n : log_dims) dims.push_back(uint64_t{1} << n);
  TensorShape shape(dims);
  bundle.data = Tensor(shape, RandomVector(shape.num_elements(), seed));
  auto layout = std::make_unique<StandardTiling>(log_dims, 2);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 256);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  std::vector<uint64_t> zero(log_dims.size(), 0);
  EXPECT_OK(ApplyChunkStandard(bundle.data, zero, log_dims,
                               bundle.store.get(), Normalization::kAverage));
  return bundle;
}

TEST(NaiveReconstructTest, BothBaselinesRecoverTheBox) {
  const std::vector<uint32_t> log_dims{4, 3};
  Bundle bundle = Loaded(log_dims, 71);
  std::vector<uint64_t> lo{5, 2}, hi{12, 6};
  ASSERT_OK_AND_ASSIGN(
      Tensor pointwise,
      PointwiseReconstructStandard(bundle.store.get(), log_dims, lo, hi,
                                   Normalization::kAverage));
  ASSERT_OK_AND_ASSIGN(
      Tensor full, FullReconstructExtractStandard(bundle.store.get(),
                                                  log_dims, lo, hi,
                                                  Normalization::kAverage));
  for (uint64_t x = lo[0]; x <= hi[0]; ++x) {
    for (uint64_t y = lo[1]; y <= hi[1]; ++y) {
      std::vector<uint64_t> local{x - lo[0], y - lo[1]};
      std::vector<uint64_t> cell{x, y};
      ASSERT_NEAR(pointwise.At(local), bundle.data.At(cell), 1e-9);
      ASSERT_NEAR(full.At(local), bundle.data.At(cell), 1e-9);
    }
  }
}

TEST(NaiveReconstructTest, Result6BeatsBothBaselinesOnIo) {
  // The §5.4 dilemma, measured: SHIFT-SPLIT reconstruction reads fewer
  // coefficients than point-by-point for mid-sized ranges and fewer than
  // full decompression for small ranges.
  const std::vector<uint32_t> log_dims{8};
  Bundle bundle = Loaded(log_dims, 72);
  std::vector<uint64_t> lo{64}, hi{95};  // dyadic range of 32 at pos 2

  bundle.manager->stats().Reset();
  ASSERT_OK(PointwiseReconstructStandard(bundle.store.get(), log_dims, lo, hi,
                                         Normalization::kAverage)
                .status());
  const uint64_t pointwise_reads = bundle.manager->stats().coeff_reads;

  bundle.manager->stats().Reset();
  ASSERT_OK(FullReconstructExtractStandard(bundle.store.get(), log_dims, lo,
                                           hi, Normalization::kAverage)
                .status());
  const uint64_t full_reads = bundle.manager->stats().coeff_reads;

  bundle.manager->stats().Reset();
  std::vector<uint32_t> range_log{5};
  std::vector<uint64_t> range_pos{2};
  ASSERT_OK(ReconstructDyadicStandard(bundle.store.get(), log_dims, range_log,
                                      range_pos, Normalization::kAverage)
                .status());
  const uint64_t ss_reads = bundle.manager->stats().coeff_reads;

  EXPECT_EQ(pointwise_reads, 32u * 9u);  // M (log N + 1)
  EXPECT_EQ(full_reads, 256u);           // N
  EXPECT_EQ(ss_reads, 31u + 4u);         // (M-1) + (log(N/M) + 1)
  EXPECT_LT(ss_reads, pointwise_reads);
  EXPECT_LT(ss_reads, full_reads);
}

TEST(NaiveReconstructTest, ValidatesBounds) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = Loaded(log_dims, 73);
  std::vector<uint64_t> lo{5, 0}, hi{3, 7};
  EXPECT_FALSE(PointwiseReconstructStandard(bundle.store.get(), log_dims, lo,
                                            hi, Normalization::kAverage)
                   .ok());
  std::vector<uint64_t> big_lo{0, 0}, big_hi{8, 0};
  EXPECT_FALSE(FullReconstructExtractStandard(bundle.store.get(), log_dims,
                                              big_lo, big_hi,
                                              Normalization::kAverage)
                   .ok());
}

}  // namespace
}  // namespace shiftsplit
