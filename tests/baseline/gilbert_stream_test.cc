#include "shiftsplit/baseline/gilbert_stream.h"

#include <gtest/gtest.h>

#include <map>

#include "shiftsplit/wavelet/haar.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

TEST(GilbertStreamTest, KeepAllEqualsDirectTransform) {
  const uint32_t n = 8;
  for (Normalization norm :
       {Normalization::kAverage, Normalization::kOrthonormal}) {
    auto data = RandomVector(1u << n, 81);
    GilbertStreamSynopsis stream(n, 1u << n, norm);
    for (double x : data) ASSERT_OK(stream.Push(x));
    ASSERT_OK(stream.Finish());

    auto transformed = data;
    ASSERT_OK(ForwardHaar1D(transformed, norm));
    std::map<uint64_t, double> synopsis;
    for (const auto& [k, v] : stream.synopsis().Extract()) synopsis[k] = v;
    ASSERT_EQ(synopsis.size(), transformed.size());
    for (const auto& [key, value] : synopsis) {
      EXPECT_NEAR(value, transformed[key], 1e-9);
    }
  }
}

TEST(GilbertStreamTest, PerItemCostIsLogN) {
  const uint32_t n = 12;
  GilbertStreamSynopsis stream(n, 4);
  auto data = RandomVector(1u << n, 82);
  for (double x : data) ASSERT_OK(stream.Push(x));
  EXPECT_EQ(stream.coeff_touches(), (uint64_t{1} << n) * (n + 1));
}

TEST(GilbertStreamTest, OpenSetIsTheCrest) {
  const uint32_t n = 10;
  GilbertStreamSynopsis stream(n, 4);
  for (int i = 0; i < 700; ++i) {
    ASSERT_OK(stream.Push(1.0));
    EXPECT_LE(stream.open_coefficients(), n + 1);
  }
}

TEST(GilbertStreamTest, PartialStreamFinalizesCleanly) {
  // Finishing mid-domain finalizes the crest; all finalized coefficients
  // equal the transform of the zero-padded stream.
  const uint32_t n = 4;
  auto data = RandomVector(10, 83);
  GilbertStreamSynopsis stream(n, 1u << n);
  for (double x : data) ASSERT_OK(stream.Push(x));
  ASSERT_OK(stream.Finish());

  std::vector<double> padded(1u << n, 0.0);
  std::copy(data.begin(), data.end(), padded.begin());
  ASSERT_OK(ForwardHaar1D(padded, Normalization::kOrthonormal));
  for (const auto& [key, value] : stream.synopsis().Extract()) {
    EXPECT_NEAR(value, padded[key], 1e-9) << "coefficient " << key;
  }
}

TEST(GilbertStreamTest, RejectsOverflowAndPushAfterFinish) {
  GilbertStreamSynopsis stream(2, 4);
  for (int i = 0; i < 4; ++i) ASSERT_OK(stream.Push(1.0));
  EXPECT_EQ(stream.Push(1.0).code(), StatusCode::kOutOfRange);
  ASSERT_OK(stream.Finish());
  GilbertStreamSynopsis stream2(4, 4);
  ASSERT_OK(stream2.Push(1.0));
  ASSERT_OK(stream2.Finish());
  EXPECT_FALSE(stream2.Push(1.0).ok());
}

}  // namespace
}  // namespace shiftsplit
