#include "shiftsplit/baseline/naive_update.h"

#include <gtest/gtest.h>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"
#include "testing.h"

namespace shiftsplit {
namespace {

using testing::RandomVector;

struct Bundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
};

Bundle MakeBundle(std::vector<uint32_t> log_dims) {
  Bundle bundle;
  auto layout = std::make_unique<StandardTiling>(std::move(log_dims), 2);
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  auto r = TiledStore::Create(std::move(layout), bundle.manager.get(), 64);
  EXPECT_TRUE(r.ok());
  bundle.store = std::move(r).value();
  return bundle;
}

TEST(ForwardPointWeightTest, MatchesTransformOfUnitImpulse) {
  const uint32_t n = 5;
  for (Normalization norm :
       {Normalization::kAverage, Normalization::kOrthonormal}) {
    for (uint64_t t : {uint64_t{0}, uint64_t{13}, uint64_t{31}}) {
      std::vector<double> impulse(1u << n, 0.0);
      impulse[t] = 1.0;
      ASSERT_OK(ForwardHaar1D(impulse, norm));
      for (uint64_t idx = 0; idx < impulse.size(); ++idx) {
        EXPECT_NEAR(ForwardPointWeight(n, idx, t, norm), impulse[idx], 1e-12)
            << "idx=" << idx << " t=" << t;
      }
    }
  }
}

TEST(NaivePointUpdateTest, MatchesRetransform2D) {
  const std::vector<uint32_t> log_dims{3, 3};
  const Normalization norm = Normalization::kAverage;
  Tensor data(TensorShape({8, 8}), RandomVector(64, 61));
  Bundle bundle = MakeBundle(log_dims);
  std::vector<uint64_t> zero(2, 0);
  ASSERT_OK(ApplyChunkStandard(data, zero, log_dims, bundle.store.get(),
                               norm));

  std::vector<uint64_t> point{5, 2};
  ASSERT_OK(NaivePointUpdate(bundle.store.get(), log_dims, point, 3.5, norm));

  Tensor updated = data;
  updated.At(point) += 3.5;
  ASSERT_OK(ForwardStandard(&updated, norm));
  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double v, bundle.store->Get(address));
    // Redundant scaling slots are not maintained by the naive baseline; the
    // primary coefficients must all match.
    ASSERT_NEAR(v, updated.At(address), 1e-9);
  } while (updated.shape().Next(address));
}

TEST(NaiveRangeUpdateTest, AgreesWithBatchUpdaterOnPrimaries) {
  const std::vector<uint32_t> log_dims{4, 4};
  const Normalization norm = Normalization::kOrthonormal;
  Tensor deltas(TensorShape({4, 4}), RandomVector(16, 62));
  std::vector<uint64_t> origin{4, 8};

  Bundle naive = MakeBundle(log_dims);
  ASSERT_OK(NaiveRangeUpdate(naive.store.get(), log_dims, deltas, origin,
                             norm));
  Bundle batched = MakeBundle(log_dims);
  ASSERT_OK(UpdateRangeStandard(batched.store.get(), log_dims, deltas, origin,
                                norm, /*maintain_scaling_slots=*/false));

  std::vector<uint64_t> address(2, 0);
  do {
    ASSERT_OK_AND_ASSIGN(const double a, naive.store->Get(address));
    ASSERT_OK_AND_ASSIGN(const double b, batched.store->Get(address));
    ASSERT_NEAR(a, b, 1e-9);
  } while (TensorShape({16, 16}).Next(address));
}

TEST(NaiveUpdateTest, CostIsLogPerPointVersusBatched) {
  // Example 2's comparison: M updates cost ~M(log N + 1) naively vs
  // M + log(N/M) + 1 batched (1-d).
  const std::vector<uint32_t> log_dims{10};
  Tensor deltas(TensorShape({16}), RandomVector(16, 63));
  std::vector<uint64_t> origin{16 * 5};

  Bundle naive = MakeBundle(log_dims);
  naive.manager->stats().Reset();
  ASSERT_OK(NaiveRangeUpdate(naive.store.get(), log_dims, deltas, origin,
                             Normalization::kAverage));
  const uint64_t naive_writes = naive.manager->stats().coeff_writes;

  Bundle batched = MakeBundle(log_dims);
  batched.manager->stats().Reset();
  ASSERT_OK(UpdateRangeStandard(batched.store.get(), log_dims, deltas, origin,
                                Normalization::kAverage,
                                /*maintain_scaling_slots=*/false));
  const uint64_t batched_writes = batched.manager->stats().coeff_writes;

  EXPECT_EQ(naive_writes, 16u * 11u);   // M (log N + 1)
  EXPECT_EQ(batched_writes, 15u + 7u);  // (M-1) + (log(N/M) + 1)
  EXPECT_GT(naive_writes, 7u * batched_writes);
}

TEST(NaiveUpdateTest, ValidatesArguments) {
  const std::vector<uint32_t> log_dims{3, 3};
  Bundle bundle = MakeBundle(log_dims);
  std::vector<uint64_t> bad_point{8, 0};
  EXPECT_FALSE(NaivePointUpdate(bundle.store.get(), log_dims, bad_point, 1.0,
                                Normalization::kAverage)
                   .ok());
  std::vector<uint64_t> wrong_d{0};
  EXPECT_FALSE(NaivePointUpdate(bundle.store.get(), log_dims, wrong_d, 1.0,
                                Normalization::kAverage)
                   .ok());
}

}  // namespace
}  // namespace shiftsplit
