// Test double: decorates a BlockManager and injects I/O failures, so storage
// and integration tests can exercise error paths deterministically. Failures
// are injected *before* the inner call, so a failed operation has no side
// effects on the device — exactly the situation the buffer pool's
// failure-atomicity contract is written for.

#ifndef SHIFTSPLIT_TESTS_STORAGE_FAULT_INJECTION_BLOCK_MANAGER_H_
#define SHIFTSPLIT_TESTS_STORAGE_FAULT_INJECTION_BLOCK_MANAGER_H_

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "shiftsplit/storage/block_manager.h"

namespace shiftsplit {
namespace testing {

/// \brief BlockManager decorator with three failure modes:
///  - FailNthRead / FailNthWrite: exactly the nth (1-based) subsequent
///    ReadBlock / WriteBlock fails with IOError; everything else passes.
///  - FailAfter(budget): every read/write past `budget` successful
///    operations fails until Refill (a "device died" simulation).
///  - CrashAfterNthOp(n): a power cut at durability op n. Durability ops
///    are block writes, device syncs, and — via ConsumeCrashOp, which a
///    Journal hook should call — the journal's own append/fsync/truncate
///    steps, so the whole commit protocol shares one "power domain". The
///    nth op fails and every subsequent operation (reads included) fails
///    too: the machine is off. With `drop_unsynced`, writes are staged in a
///    shadow map standing in for the OS page cache — only Sync publishes
///    them to the inner device, and the crash discards whatever was staged,
///    modelling a kernel that never flushed.
class FaultInjectionBlockManager : public BlockManager {
 public:
  /// \param inner real device (not owned; must outlive the decorator)
  explicit FaultInjectionBlockManager(BlockManager* inner) : inner_(inner) {}

  void FailNthRead(uint64_t n) { fail_read_at_ = reads_seen_ + n; }
  void FailNthWrite(uint64_t n) { fail_write_at_ = writes_seen_ + n; }

  // ---- Chaos knobs (integration/chaos_soak_test.cc) ---------------------
  // Deterministic under a fixed arrival order; the soak test serializes
  // device access through one buffer pool, so they are also race-free.

  /// \brief Every nth read (by arrival order) fails with a transient
  /// IOError; the immediate retry passes — exercising the retry budget.
  /// 0 disables.
  void FailEveryNthRead(uint64_t n) {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    transient_every_ = n;
  }

  /// \brief All reads of block `id` fail with `status` until cleared —
  /// e.g. ChecksumMismatch to model a quarantined block.
  void InjectReadStatus(uint64_t id, Status status) {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    injected_status_[id] = std::move(status);
  }
  void ClearReadStatus(uint64_t id) {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    injected_status_.erase(id);
  }
  void ClearAllReadStatus() {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    injected_status_.clear();
  }

  /// \brief Every nth read stalls `micros` before completing — a latency
  /// spike a deadline must cut short. 0 disables.
  void SetReadLatency(uint64_t every_nth, uint64_t micros) {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    latency_every_ = every_nth;
    latency_us_ = micros;
  }

  /// Read/write operations beyond `budget` fail until Refill.
  void FailAfter(uint64_t budget) { budget_ = budget; }
  void Refill(uint64_t budget) { budget_ = budget; }
  void DisableBudget() { budget_.reset(); }

  /// \brief Arms the power-cut mode: the nth (1-based) durability op fails
  /// and the device is dead from then on.
  void CrashAfterNthOp(uint64_t n, bool drop_unsynced) {
    crash_at_ = n;
    crash_ops_seen_ = 0;
    crashed_ = false;
    drop_unsynced_ = drop_unsynced;
    unsynced_.clear();
  }

  /// \brief Counts one durability op against the crash budget (called by
  /// WriteBlock/Sync internally, and by the Journal hook for journal-file
  /// steps). Fails once the budget is exhausted.
  Status ConsumeCrashOp() {
    if (crashed_) return Status::IOError("simulated power cut: device off");
    if (crash_at_ == 0) return Status::OK();
    ++crash_ops_seen_;
    if (crash_ops_seen_ >= crash_at_) {
      crashed_ = true;
      unsynced_.clear();  // staged page-cache contents are lost
      return Status::IOError("simulated power cut");
    }
    return Status::OK();
  }

  bool crashed() const { return crashed_; }
  uint64_t crash_ops_seen() const { return crash_ops_seen_; }

  uint64_t reads_seen() const { return reads_seen_; }
  uint64_t writes_seen() const { return writes_seen_; }

  uint64_t block_size() const override { return inner_->block_size(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }
  Status Resize(uint64_t num_blocks) override {
    if (crashed_) return Status::IOError("simulated power cut: device off");
    return inner_->Resize(num_blocks);
  }

  Status ReadBlock(uint64_t id, std::span<double> out) override {
    ++reads_seen_;
    if (reads_seen_ == fail_read_at_) {
      return Status::IOError("injected read failure");
    }
    {
      std::lock_guard<std::mutex> lock(chaos_mu_);
      if (const auto it = injected_status_.find(id);
          it != injected_status_.end()) {
        return it->second;
      }
      if (transient_every_ != 0 && reads_seen_ % transient_every_ == 0) {
        return Status::IOError("injected transient read failure");
      }
      if (latency_every_ != 0 && reads_seen_ % latency_every_ == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
      }
    }
    if (crashed_) return Status::IOError("simulated power cut: device off");
    SS_RETURN_IF_ERROR(ConsumeBudget());
    ++stats_.block_reads;
    // Read-your-writes for staged (not yet synced) blocks.
    if (drop_unsynced_) {
      const auto it = unsynced_.find(id);
      if (it != unsynced_.end()) {
        std::copy(it->second.begin(), it->second.end(), out.begin());
        return Status::OK();
      }
    }
    return inner_->ReadBlock(id, out);
  }

  Status WriteBlock(uint64_t id, std::span<const double> data) override {
    ++writes_seen_;
    if (writes_seen_ == fail_write_at_) {
      return Status::IOError("injected write failure");
    }
    SS_RETURN_IF_ERROR(ConsumeCrashOp());
    SS_RETURN_IF_ERROR(ConsumeBudget());
    ++stats_.block_writes;
    if (drop_unsynced_) {
      unsynced_[id].assign(data.begin(), data.end());
      return Status::OK();
    }
    return inner_->WriteBlock(id, data);
  }

  Status Sync() override {
    SS_RETURN_IF_ERROR(ConsumeCrashOp());
    if (drop_unsynced_) {
      for (const auto& [id, data] : unsynced_) {
        SS_RETURN_IF_ERROR(inner_->WriteBlock(id, data));
      }
      unsynced_.clear();
    }
    return inner_->Sync();
  }

  Result<std::vector<uint64_t>> Scrub() override {
    if (crashed_) return Status::IOError("simulated power cut: device off");
    return inner_->Scrub();
  }

  void set_degraded_reads(bool on) override {
    inner_->set_degraded_reads(on);
  }

  DurabilityStats durability_stats() const override {
    return inner_->durability_stats();
  }

 private:
  Status ConsumeBudget() {
    if (!budget_.has_value()) return Status::OK();
    if (*budget_ == 0) return Status::IOError("injected device failure");
    --*budget_;
    return Status::OK();
  }

  BlockManager* inner_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t fail_read_at_ = 0;   // 0 = disabled
  uint64_t fail_write_at_ = 0;  // 0 = disabled
  std::optional<uint64_t> budget_;
  uint64_t crash_at_ = 0;  // 0 = crash mode disabled
  uint64_t crash_ops_seen_ = 0;
  bool crashed_ = false;
  bool drop_unsynced_ = false;
  std::map<uint64_t, std::vector<double>> unsynced_;  // staged "page cache"

  std::mutex chaos_mu_;  // knob setters may race the device thread
  uint64_t transient_every_ = 0;  // 0 = off
  uint64_t latency_every_ = 0;    // 0 = off
  uint64_t latency_us_ = 0;
  std::map<uint64_t, Status> injected_status_;
};

}  // namespace testing
}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TESTS_STORAGE_FAULT_INJECTION_BLOCK_MANAGER_H_
