// Test double: decorates a BlockManager and injects I/O failures, so storage
// and integration tests can exercise error paths deterministically. Failures
// are injected *before* the inner call, so a failed operation has no side
// effects on the device — exactly the situation the buffer pool's
// failure-atomicity contract is written for.

#ifndef SHIFTSPLIT_TESTS_STORAGE_FAULT_INJECTION_BLOCK_MANAGER_H_
#define SHIFTSPLIT_TESTS_STORAGE_FAULT_INJECTION_BLOCK_MANAGER_H_

#include <optional>

#include "shiftsplit/storage/block_manager.h"

namespace shiftsplit {
namespace testing {

/// \brief BlockManager decorator with two failure modes:
///  - FailNthRead / FailNthWrite: exactly the nth (1-based) subsequent
///    ReadBlock / WriteBlock fails with IOError; everything else passes.
///  - FailAfter(budget): every read/write past `budget` successful
///    operations fails until Refill (a "device died" simulation).
class FaultInjectionBlockManager : public BlockManager {
 public:
  /// \param inner real device (not owned; must outlive the decorator)
  explicit FaultInjectionBlockManager(BlockManager* inner) : inner_(inner) {}

  void FailNthRead(uint64_t n) { fail_read_at_ = reads_seen_ + n; }
  void FailNthWrite(uint64_t n) { fail_write_at_ = writes_seen_ + n; }

  /// Read/write operations beyond `budget` fail until Refill.
  void FailAfter(uint64_t budget) { budget_ = budget; }
  void Refill(uint64_t budget) { budget_ = budget; }
  void DisableBudget() { budget_.reset(); }

  uint64_t reads_seen() const { return reads_seen_; }
  uint64_t writes_seen() const { return writes_seen_; }

  uint64_t block_size() const override { return inner_->block_size(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }
  Status Resize(uint64_t num_blocks) override {
    return inner_->Resize(num_blocks);
  }

  Status ReadBlock(uint64_t id, std::span<double> out) override {
    ++reads_seen_;
    if (reads_seen_ == fail_read_at_) {
      return Status::IOError("injected read failure");
    }
    SS_RETURN_IF_ERROR(ConsumeBudget());
    ++stats_.block_reads;
    return inner_->ReadBlock(id, out);
  }

  Status WriteBlock(uint64_t id, std::span<const double> data) override {
    ++writes_seen_;
    if (writes_seen_ == fail_write_at_) {
      return Status::IOError("injected write failure");
    }
    SS_RETURN_IF_ERROR(ConsumeBudget());
    ++stats_.block_writes;
    return inner_->WriteBlock(id, data);
  }

 private:
  Status ConsumeBudget() {
    if (!budget_.has_value()) return Status::OK();
    if (*budget_ == 0) return Status::IOError("injected device failure");
    --*budget_;
    return Status::OK();
  }

  BlockManager* inner_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t fail_read_at_ = 0;   // 0 = disabled
  uint64_t fail_write_at_ = 0;  // 0 = disabled
  std::optional<uint64_t> budget_;
};

}  // namespace testing
}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TESTS_STORAGE_FAULT_INJECTION_BLOCK_MANAGER_H_
