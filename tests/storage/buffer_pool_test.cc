#include "shiftsplit/storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "shiftsplit/storage/memory_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

constexpr uint64_t kBlockSize = 4;

TEST(BufferPoolTest, HitAvoidsBlockIo) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  ASSERT_OK_AND_ASSIGN(auto frame, pool.GetBlock(3, false));
  (void)frame;
  EXPECT_EQ(manager.stats().block_reads, 1u);
  ASSERT_OK_AND_ASSIGN(frame, pool.GetBlock(3, false));
  EXPECT_EQ(manager.stats().block_reads, 1u);  // served from cache
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, DirtyFrameWrittenBackOnEviction) {
  MemoryBlockManager manager(kBlockSize, 8);
  {
    BufferPool pool(&manager, 1);
    ASSERT_OK_AND_ASSIGN(auto frame, pool.GetBlock(0, true));
    frame[2] = 7.5;
    // Capacity 1: touching another block evicts block 0 (dirty -> write).
    ASSERT_OK_AND_ASSIGN(frame, pool.GetBlock(1, false));
    EXPECT_EQ(manager.stats().block_writes, 1u);
  }
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[2], 7.5);
}

TEST(BufferPoolTest, CleanEvictionDoesNotWrite) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 1);
  ASSERT_OK_AND_ASSIGN(auto frame, pool.GetBlock(0, false));
  (void)frame;
  ASSERT_OK_AND_ASSIGN(frame, pool.GetBlock(1, false));
  EXPECT_EQ(manager.stats().block_writes, 0u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  ASSERT_OK(pool.GetBlock(0, false).status());
  ASSERT_OK(pool.GetBlock(1, false).status());
  // Touch 0 so 1 becomes LRU.
  ASSERT_OK(pool.GetBlock(0, false).status());
  ASSERT_OK(pool.GetBlock(2, false).status());  // evicts 1
  manager.stats().Reset();
  ASSERT_OK(pool.GetBlock(0, false).status());  // still cached
  EXPECT_EQ(manager.stats().block_reads, 0u);
  ASSERT_OK(pool.GetBlock(1, false).status());  // was evicted -> re-read
  EXPECT_EQ(manager.stats().block_reads, 1u);
}

TEST(BufferPoolTest, FlushWritesDirtyOnceAndKeepsCache) {
  MemoryBlockManager manager(kBlockSize, 4);
  BufferPool pool(&manager, 4);
  ASSERT_OK_AND_ASSIGN(auto frame, pool.GetBlock(0, true));
  frame[0] = 1.0;
  ASSERT_OK(pool.GetBlock(1, false).status());
  ASSERT_OK(pool.Flush());
  EXPECT_EQ(manager.stats().block_writes, 1u);  // only the dirty frame
  ASSERT_OK(pool.Flush());
  EXPECT_EQ(manager.stats().block_writes, 1u);  // now clean: no rewrite
  manager.stats().Reset();
  ASSERT_OK(pool.GetBlock(0, false).status());
  EXPECT_EQ(manager.stats().block_reads, 0u);  // still cached after flush
}

TEST(BufferPoolTest, ClearDropsCache) {
  MemoryBlockManager manager(kBlockSize, 4);
  BufferPool pool(&manager, 4);
  ASSERT_OK_AND_ASSIGN(auto frame, pool.GetBlock(0, true));
  frame[1] = 2.0;
  ASSERT_OK(pool.Clear());
  EXPECT_EQ(pool.cached_blocks(), 0u);
  EXPECT_EQ(manager.stats().block_writes, 1u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[1], 2.0);
}

TEST(BufferPoolTest, DestructorFlushes) {
  MemoryBlockManager manager(kBlockSize, 4);
  {
    BufferPool pool(&manager, 2);
    ASSERT_OK_AND_ASSIGN(auto frame, pool.GetBlock(3, true));
    frame[3] = -4.0;
  }
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(3, buf));
  EXPECT_DOUBLE_EQ(buf[3], -4.0);
}

TEST(BufferPoolTest, ErrorsPropagateFromManager) {
  MemoryBlockManager manager(kBlockSize, 2);
  BufferPool pool(&manager, 2);
  EXPECT_FALSE(pool.GetBlock(5, false).ok());  // beyond device
}

TEST(BufferPoolTest, CapacityBoundIsRespected) {
  MemoryBlockManager manager(kBlockSize, 16);
  BufferPool pool(&manager, 3);
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_OK(pool.GetBlock(i, false).status());
    EXPECT_LE(pool.cached_blocks(), 3u);
  }
}

}  // namespace
}  // namespace shiftsplit
