#include "shiftsplit/storage/buffer_pool.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "shiftsplit/storage/journal.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "storage/fault_injection_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

constexpr uint64_t kBlockSize = 4;

// Scratch directory for journal-backed tests.
class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("shiftsplit_pool_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(BufferPoolTest, HitAvoidsBlockIo) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(3, false));
  EXPECT_EQ(page.block_id(), 3u);
  EXPECT_EQ(manager.stats().block_reads, 1u);
  ASSERT_OK_AND_ASSIGN(page, pool.GetBlock(3, false));
  EXPECT_EQ(manager.stats().block_reads, 1u);  // served from cache
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_DOUBLE_EQ(pool.stats().hit_rate(), 0.5);
}

TEST(BufferPoolTest, DirtyFrameWrittenBackOnEviction) {
  MemoryBlockManager manager(kBlockSize, 8);
  {
    BufferPool pool(&manager, 1);
    {
      ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
      page[2] = 7.5;
    }
    // Capacity 1: touching another block evicts block 0 (dirty -> write).
    ASSERT_OK(pool.GetBlock(1, false).status());
    EXPECT_EQ(manager.stats().block_writes, 1u);
    EXPECT_EQ(pool.stats().evictions, 1u);
    EXPECT_EQ(pool.stats().write_backs, 1u);
  }
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[2], 7.5);
}

TEST(BufferPoolTest, CleanEvictionDoesNotWrite) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 1);
  ASSERT_OK(pool.GetBlock(0, false).status());
  ASSERT_OK(pool.GetBlock(1, false).status());
  EXPECT_EQ(manager.stats().block_writes, 0u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  ASSERT_OK(pool.GetBlock(0, false).status());
  ASSERT_OK(pool.GetBlock(1, false).status());
  // Touch 0 so 1 becomes LRU.
  ASSERT_OK(pool.GetBlock(0, false).status());
  ASSERT_OK(pool.GetBlock(2, false).status());  // evicts 1
  manager.stats().Reset();
  ASSERT_OK(pool.GetBlock(0, false).status());  // still cached
  EXPECT_EQ(manager.stats().block_reads, 0u);
  ASSERT_OK(pool.GetBlock(1, false).status());  // was evicted -> re-read
  EXPECT_EQ(manager.stats().block_reads, 1u);
}

TEST(BufferPoolTest, FlushWritesDirtyOnceAndKeepsCache) {
  MemoryBlockManager manager(kBlockSize, 4);
  BufferPool pool(&manager, 4);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 1.0;
  }
  ASSERT_OK(pool.GetBlock(1, false).status());
  ASSERT_OK(pool.Flush());
  EXPECT_EQ(manager.stats().block_writes, 1u);  // only the dirty frame
  ASSERT_OK(pool.Flush());
  EXPECT_EQ(manager.stats().block_writes, 1u);  // now clean: no rewrite
  manager.stats().Reset();
  ASSERT_OK(pool.GetBlock(0, false).status());
  EXPECT_EQ(manager.stats().block_reads, 0u);  // still cached after flush
}

TEST(BufferPoolTest, ClearDropsCache) {
  MemoryBlockManager manager(kBlockSize, 4);
  BufferPool pool(&manager, 4);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[1] = 2.0;
  }
  ASSERT_OK(pool.Clear());
  EXPECT_EQ(pool.cached_blocks(), 0u);
  EXPECT_EQ(manager.stats().block_writes, 1u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[1], 2.0);
}

TEST(BufferPoolTest, ClearRefusesWhilePinned) {
  MemoryBlockManager manager(kBlockSize, 4);
  BufferPool pool(&manager, 4);
  ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
  page[1] = 2.0;
  const Status status = pool.Clear();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.cached_blocks(), 1u);  // nothing was dropped
  page.Release();
  ASSERT_OK(pool.Clear());
}

TEST(BufferPoolTest, DestructorFlushes) {
  MemoryBlockManager manager(kBlockSize, 4);
  {
    BufferPool pool(&manager, 2);
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(3, true));
    page[3] = -4.0;
    page.Release();  // guards must not outlive the pool
  }
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(3, buf));
  EXPECT_DOUBLE_EQ(buf[3], -4.0);
}

TEST(BufferPoolTest, ErrorsPropagateFromManager) {
  MemoryBlockManager manager(kBlockSize, 2);
  BufferPool pool(&manager, 2);
  EXPECT_FALSE(pool.GetBlock(5, false).ok());  // beyond device
}

TEST(BufferPoolTest, CapacityBoundIsRespected) {
  MemoryBlockManager manager(kBlockSize, 16);
  BufferPool pool(&manager, 3);
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_OK(pool.GetBlock(i, false).status());
    EXPECT_LE(pool.cached_blocks(), 3u);
  }
}

// Regression for the headline bug: before pinning, the second GetBlock could
// evict the first frame at small capacities and the first span dangled. Both
// guards must stay valid simultaneously (ASan verifies the memory safety).
TEST(BufferPoolTest, TwoGuardsAtCapacityTwoStayValid) {
  MemoryBlockManager manager(kBlockSize, 8);
  std::vector<double> buf(kBlockSize, 1.25);
  ASSERT_OK(manager.WriteBlock(0, buf));
  buf.assign(kBlockSize, -3.5);
  ASSERT_OK(manager.WriteBlock(1, buf));

  BufferPool pool(&manager, 2);
  ASSERT_OK_AND_ASSIGN(auto a, pool.GetBlock(0, true));
  ASSERT_OK_AND_ASSIGN(auto b, pool.GetBlock(1, true));
  EXPECT_EQ(pool.pinned_frames(), 2u);
  // Interleaved writes through both guards: neither span may dangle.
  for (uint64_t i = 0; i < kBlockSize; ++i) {
    a[i] += 1.0;
    b[i] += 1.0;
  }
  EXPECT_DOUBLE_EQ(a.span()[0], 2.25);
  EXPECT_DOUBLE_EQ(b.span()[0], -2.5);
  a.Release();
  b.Release();
  ASSERT_OK(pool.Flush());
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[0], 2.25);
  ASSERT_OK(manager.ReadBlock(1, buf));
  EXPECT_DOUBLE_EQ(buf[0], -2.5);
}

TEST(BufferPoolTest, PinnedFrameIsNeverTheVictim) {
  MemoryBlockManager manager(kBlockSize, 16);
  std::vector<double> buf(kBlockSize, 9.0);
  ASSERT_OK(manager.WriteBlock(0, buf));

  BufferPool pool(&manager, 2);
  ASSERT_OK_AND_ASSIGN(auto pinned, pool.GetBlock(0, false));
  // Stream many blocks through the single unpinned frame; block 0 is LRU
  // from the second fetch on, yet must never be chosen as victim.
  for (uint64_t i = 1; i < 12; ++i) {
    ASSERT_OK(pool.GetBlock(i, false).status());
    ASSERT_DOUBLE_EQ(pinned[0], 9.0);  // span still backed by live memory
  }
  manager.stats().Reset();
  ASSERT_OK(pool.GetBlock(0, false).status());
  EXPECT_EQ(manager.stats().block_reads, 0u);  // 0 was resident all along
}

TEST(BufferPoolTest, AllFramesPinnedGivesResourceExhausted) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  ASSERT_OK_AND_ASSIGN(auto a, pool.GetBlock(0, false));
  ASSERT_OK_AND_ASSIGN(auto b, pool.GetBlock(1, false));
  auto third = pool.GetBlock(2, false);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // The failure must not have read anything or disturbed the cache.
  EXPECT_EQ(manager.stats().block_reads, 2u);
  EXPECT_EQ(pool.cached_blocks(), 2u);
  // Releasing one pin makes room again.
  a.Release();
  ASSERT_OK(pool.GetBlock(2, false).status());
}

TEST(BufferPoolTest, RepinningSameBlockDoesNotExhaustThePool) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 1);
  ASSERT_OK_AND_ASSIGN(auto a, pool.GetBlock(0, false));
  ASSERT_OK_AND_ASSIGN(auto b, pool.GetBlock(0, true));  // hit: same frame
  EXPECT_EQ(pool.pinned_frames(), 1u);
  EXPECT_EQ(pool.hits(), 1u);
  a.Release();
  EXPECT_EQ(pool.pinned_frames(), 1u);  // b still pins the frame
  b.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, MoveTransfersThePin) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  ASSERT_OK_AND_ASSIGN(auto a, pool.GetBlock(0, false));
  EXPECT_EQ(pool.pinned_frames(), 1u);
  PageGuard moved = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested on purpose
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

// Eviction-order contract: on a miss the new block is read *before* the
// victim is touched, so a failed read leaves cache contents, dirty bits and
// recency order bit-for-bit unchanged.
TEST(BufferPoolTest, FailedMissReadLeavesCacheUnchanged) {
  MemoryBlockManager inner(kBlockSize, 8);
  testing::FaultInjectionBlockManager manager(&inner);
  BufferPool pool(&manager, 2);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 42.0;
  }
  ASSERT_OK(pool.GetBlock(1, false).status());

  manager.FailNthRead(1);
  const auto result = pool.GetBlock(2, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);

  // No eviction happened: both blocks are still resident (no re-reads)...
  EXPECT_EQ(pool.cached_blocks(), 2u);
  const uint64_t reads_before = manager.reads_seen();
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, false));
    EXPECT_DOUBLE_EQ(page[0], 42.0);  // ...with contents intact...
  }
  ASSERT_OK(pool.GetBlock(1, false).status());
  EXPECT_EQ(manager.reads_seen(), reads_before);
  // ...and block 0 is still dirty: Flush writes exactly it.
  ASSERT_OK(pool.Flush());
  EXPECT_EQ(inner.stats().block_writes, 1u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(inner.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[0], 42.0);
}

TEST(BufferPoolTest, FailedVictimWriteBackKeepsVictimResidentAndDirty) {
  MemoryBlockManager inner(kBlockSize, 8);
  testing::FaultInjectionBlockManager manager(&inner);
  BufferPool pool(&manager, 1);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[3] = 5.0;
  }
  manager.FailNthWrite(1);
  const auto result = pool.GetBlock(1, false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  // The victim survived with its dirty payload; once the device heals the
  // eviction completes and nothing was lost.
  EXPECT_EQ(pool.cached_blocks(), 1u);
  ASSERT_OK(pool.GetBlock(1, false).status());
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(inner.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[3], 5.0);
}

TEST(BufferPoolTest, FlushBestEffortCountsFailures) {
  MemoryBlockManager inner(kBlockSize, 8);
  testing::FaultInjectionBlockManager manager(&inner);
  BufferPool pool(&manager, 4);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(i, true));
    page[0] = static_cast<double>(i) + 0.5;
  }
  manager.FailNthWrite(2);
  EXPECT_EQ(pool.FlushBestEffort(), 1u);  // kept going past the failure
  EXPECT_EQ(pool.flush_failures(), 1u);
  EXPECT_EQ(inner.stats().block_writes, 2u);
  // The failed frame stayed dirty; a healthy flush completes the job.
  ASSERT_OK(pool.Flush());
  EXPECT_EQ(inner.stats().block_writes, 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    std::vector<double> buf(kBlockSize);
    ASSERT_OK(inner.ReadBlock(i, buf));
    EXPECT_DOUBLE_EQ(buf[0], static_cast<double>(i) + 0.5);
  }
}

TEST(BufferPoolTest, PrefetchWarmsTheCache) {
  MemoryBlockManager manager(kBlockSize, 16);
  BufferPool pool(&manager, 8);
  const std::vector<uint64_t> ids{3, 4, 5, 9, 3};  // dup must count once
  ASSERT_OK(pool.Prefetch(ids));
  EXPECT_EQ(pool.cached_blocks(), 4u);
  EXPECT_EQ(pool.stats().prefetched, 4u);
  EXPECT_EQ(manager.stats().block_reads, 4u);
  // Every prefetched block is now a hit; no further device reads.
  manager.stats().Reset();
  for (const uint64_t id : {3, 4, 5, 9}) {
    ASSERT_OK(pool.GetBlock(id, false).status());
  }
  EXPECT_EQ(pool.hits(), 4u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_EQ(manager.stats().block_reads, 0u);
  // A second prefetch of resident blocks is a no-op.
  ASSERT_OK(pool.Prefetch(ids));
  EXPECT_EQ(pool.stats().prefetched, 4u);
  EXPECT_EQ(manager.stats().block_reads, 0u);
}

TEST(BufferPoolTest, PrefetchIsCappedByCapacityMinusPins) {
  MemoryBlockManager manager(kBlockSize, 16);
  BufferPool pool(&manager, 3);
  ASSERT_OK_AND_ASSIGN(auto pinned, pool.GetBlock(0, false));
  // Room for 2 unpinned frames: only the first two missing ids are warmed.
  const std::vector<uint64_t> ids{1, 2, 3, 4};
  ASSERT_OK(pool.Prefetch(ids));
  EXPECT_EQ(pool.stats().prefetched, 2u);
  EXPECT_EQ(pool.cached_blocks(), 3u);
  manager.stats().Reset();
  ASSERT_OK(pool.GetBlock(1, false).status());
  ASSERT_OK(pool.GetBlock(2, false).status());
  EXPECT_EQ(manager.stats().block_reads, 0u);
  ASSERT_DOUBLE_EQ(pinned[0], 0.0);  // the pin stayed valid throughout
}

TEST(BufferPoolTest, PrefetchEvictsWithWriteBack) {
  MemoryBlockManager manager(kBlockSize, 16);
  BufferPool pool(&manager, 2);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[1] = 6.5;
  }
  // Warming two new blocks at capacity 2 evicts the dirty frame.
  ASSERT_OK(pool.Prefetch(std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(pool.stats().write_backs, 1u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[1], 6.5);
}

TEST(BufferPoolTest, FailedPrefetchReadLeavesCacheUnchanged) {
  MemoryBlockManager inner(kBlockSize, 8);
  testing::FaultInjectionBlockManager manager(&inner);
  BufferPool pool(&manager, 4);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 42.0;
  }
  manager.FailNthRead(1);
  const Status status = pool.Prefetch(std::vector<uint64_t>{1, 2});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(pool.cached_blocks(), 1u);
  EXPECT_EQ(pool.stats().prefetched, 0u);
  // The resident dirty frame kept its payload.
  ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, false));
  EXPECT_DOUBLE_EQ(page[0], 42.0);
}

TEST(BufferPoolTest, ThreadSafeModeTogglesAndBehavesIdentically) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  EXPECT_FALSE(pool.thread_safe());
  pool.set_thread_safe(true);
  EXPECT_TRUE(pool.thread_safe());
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 3.0;
  }
  ASSERT_OK(pool.Prefetch(std::vector<uint64_t>{1, 2}));
  ASSERT_OK(pool.Flush());
  pool.set_thread_safe(false);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[0], 3.0);
}

TEST(BufferPoolTest, StatsAggregateAcrossOperations) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 1.0;
  }
  ASSERT_OK(pool.GetBlock(1, false).status());
  ASSERT_OK(pool.GetBlock(0, false).status());  // hit
  ASSERT_OK(pool.GetBlock(2, false).status());  // evicts 1 (clean)
  ASSERT_OK(pool.Flush());                      // writes 0
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.write_backs, 1u);
  EXPECT_EQ(stats.flush_failures, 0u);
  EXPECT_EQ(stats.pinned_frames, 0u);
  EXPECT_EQ(stats.cached_blocks, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.io.block_reads, 3u);
  EXPECT_EQ(stats.io.block_writes, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.25);
}

TEST(BufferPoolTest, PrefetchVictimWriteBackFailureStopsInsertion) {
  MemoryBlockManager inner(kBlockSize, 8);
  testing::FaultInjectionBlockManager manager(&inner);
  BufferPool pool(&manager, 2);
  // Two resident dirty frames: inserting prefetched blocks needs evictions.
  for (const uint64_t id : {0, 1}) {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(id, true));
    page[0] = static_cast<double>(id) + 0.5;
  }
  manager.FailNthWrite(1);  // the first victim write-back fails
  const Status status = pool.Prefetch(std::vector<uint64_t>{4, 5});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // Insertion stopped before replacing anything: both dirty originals stay
  // resident with their payloads, and the counters record exactly the batch
  // read plus the failed write attempt.
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.cached_blocks, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.write_backs, 0u);
  EXPECT_EQ(stats.io.block_reads, 4u);  // 2 misses + the 2-block batch
  EXPECT_EQ(stats.io.block_writes, 0u);
  EXPECT_EQ(inner.stats().block_writes, 0u);  // device untouched
  for (const uint64_t id : {0, 1}) {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(id, false));
    EXPECT_DOUBLE_EQ(page[0], static_cast<double>(id) + 0.5);
  }
  // The frames are still dirty: a later flush lands both.
  ASSERT_OK(pool.Flush());
  EXPECT_EQ(inner.stats().block_writes, 2u);
}

TEST(BufferPoolTest, PrefetchPartialFailureAfterOneInsertion) {
  MemoryBlockManager inner(kBlockSize, 8);
  testing::FaultInjectionBlockManager manager(&inner);
  BufferPool pool(&manager, 2);
  for (const uint64_t id : {0, 1}) {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(id, true));
    page[0] = static_cast<double>(id) + 0.5;
  }
  manager.FailNthWrite(2);  // second victim write-back fails
  const Status status = pool.Prefetch(std::vector<uint64_t>{4, 5});
  ASSERT_FALSE(status.ok());
  // Exactly one replacement happened: block 0 (the LRU victim) was written
  // back and replaced by block 4; block 1 is still resident and dirty.
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.write_backs, 1u);
  EXPECT_EQ(stats.cached_blocks, 2u);
  EXPECT_EQ(inner.stats().block_writes, 1u);
  ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(1, false));
  EXPECT_DOUBLE_EQ(page[0], 1.5);
}

TEST(BufferPoolTest, FlushAtomicCommitsThroughTheJournal) {
  TempDir dir;
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 4);
  Journal journal(dir.File("store.journal"));
  for (const uint64_t id : {2, 5}) {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(id, true));
    page[1] = static_cast<double>(id) * 10.0;
  }
  ASSERT_OK(pool.FlushAtomic(&journal));
  EXPECT_EQ(journal.commits(), 1u);
  // Commit complete: journal retired, blocks in place, write-backs counted
  // as journaled.
  EXPECT_FALSE(std::filesystem::exists(journal.path()));
  EXPECT_EQ(pool.journaled_write_backs(), 2u);
  EXPECT_EQ(pool.stats().write_backs, 2u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(2, buf));
  EXPECT_DOUBLE_EQ(buf[1], 20.0);
  ASSERT_OK(manager.ReadBlock(5, buf));
  EXPECT_DOUBLE_EQ(buf[1], 50.0);
  // Nothing dirty: the next commit is a no-op, not an empty record.
  ASSERT_OK(pool.FlushAtomic(&journal));
  EXPECT_EQ(journal.commits(), 1u);
}

TEST(BufferPoolTest, FlushAtomicWithNullJournalDegradesToFlush) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 1.25;
  }
  ASSERT_OK(pool.FlushAtomic(nullptr));
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[0], 1.25);
  EXPECT_EQ(pool.journaled_write_backs(), 0u);
}

TEST(BufferPoolTest, FlushAtomicJournalFailureLeavesDeviceUntouched) {
  TempDir dir;
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 4);
  Journal journal(dir.File("store.journal"));
  journal.set_hook([](const char* op) -> Status {
    if (std::string_view(op) == "fsync") {
      return Status::IOError("simulated power cut");
    }
    return Status::OK();
  });
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(3, true));
    page[0] = 9.0;
  }
  ASSERT_FALSE(pool.FlushAtomic(&journal).ok());
  // The intent never became durable, so no block was written in place and
  // the frame stays dirty for a retry.
  EXPECT_EQ(manager.stats().block_writes, 0u);
  EXPECT_EQ(pool.journaled_write_backs(), 0u);
  journal.set_hook(nullptr);
  ASSERT_OK(pool.FlushAtomic(&journal));
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(3, buf));
  EXPECT_DOUBLE_EQ(buf[0], 9.0);
}

TEST(BufferPoolTest, DiscardDropsDirtyFramesWithoutWriteBack) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 4);
  {
    ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, true));
    page[0] = 123.0;
  }
  ASSERT_OK(pool.Discard());
  EXPECT_EQ(pool.cached_blocks(), 0u);
  EXPECT_EQ(manager.stats().block_writes, 0u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager.ReadBlock(0, buf));
  EXPECT_DOUBLE_EQ(buf[0], 0.0);  // the write never reached the device
}

TEST(BufferPoolTest, ExpiredContextFailsGetBlockBeforeIo) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  OperationContext ctx(std::chrono::nanoseconds(0));
  auto r = pool.GetBlock(0, false, &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(manager.stats().block_reads, 0u);  // gate fires before the read
  OperationContext cancelled;
  cancelled.RequestCancel();
  EXPECT_EQ(pool.Prefetch(std::vector<uint64_t>{1}, &cancelled).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(manager.stats().block_reads, 0u);
}

TEST(BufferPoolTest, ContextRetriesTransientMissReadFailures) {
  MemoryBlockManager manager(kBlockSize, 8);
  testing::FaultInjectionBlockManager faults(&manager);
  BufferPool pool(&faults, 2);
  faults.FailNthRead(1);  // the first read fails once, then passes

  OperationContext ctx;
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_backoff_us = 1;
  policy.max_backoff_us = 1;
  policy.jitter = 0.0;
  ctx.set_retry_policy(policy);
  ASSERT_OK(pool.GetBlock(5, false, &ctx).status());
  EXPECT_EQ(ctx.retries_used(), 1u);
  EXPECT_EQ(faults.reads_seen(), 2u);

  // Without a context the same failure is fatal (single attempt).
  faults.FailNthRead(1);
  auto r = pool.GetBlock(6, false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(BufferPoolTest, ContextRetryBudgetExhaustionSurfacesTheError) {
  MemoryBlockManager manager(kBlockSize, 8);
  testing::FaultInjectionBlockManager faults(&manager);
  BufferPool pool(&faults, 2);
  faults.FailAfter(0);  // every read fails: the device died

  OperationContext ctx;
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_backoff_us = 1;
  policy.max_backoff_us = 1;
  policy.jitter = 0.0;
  ctx.set_retry_policy(policy);
  auto r = pool.GetBlock(0, false, &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(ctx.retries_used(), 2u);
  EXPECT_EQ(faults.reads_seen(), 3u);  // first attempt + two retries
}

TEST(BufferPoolTest, AdmissionDisabledGrantsNoOpTickets) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  ASSERT_OK_AND_ASSIGN(auto ticket, pool.AdmitOperation());
  ticket.Release();
  EXPECT_EQ(pool.stats().admitted, 0u);  // disabled: nothing counted
}

TEST(BufferPoolTest, AdmissionCapRejectsWhenQueueIsFull) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  // Cap of 1 with no queue: the second concurrent operation is rejected
  // immediately instead of waiting.
  pool.SetAdmissionControl(1, 0, 1'000);
  ASSERT_OK_AND_ASSIGN(auto first, pool.AdmitOperation());
  auto second = pool.AdmitOperation();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  first.Release();
  // The slot is free again.
  ASSERT_OK_AND_ASSIGN(auto third, pool.AdmitOperation());
  third.Release();
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.admission_rejections, 1u);
}

TEST(BufferPoolTest, AdmissionQueueTimesOutWithUnavailable) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  pool.set_thread_safe(true);
  pool.SetAdmissionControl(1, 1, 5'000);  // 5 ms queue timeout
  ASSERT_OK_AND_ASSIGN(auto held, pool.AdmitOperation());
  const auto t0 = std::chrono::steady_clock::now();
  auto waited = pool.AdmitOperation();  // queues, then times out
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(elapsed, std::chrono::milliseconds(4));
  EXPECT_EQ(pool.stats().admission_timeouts, 1u);
  held.Release();
}

TEST(BufferPoolTest, AdmissionQueueGrantsFifoToWaiters) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  pool.set_thread_safe(true);
  pool.SetAdmissionControl(1, 2, 2'000'000);
  auto held = pool.AdmitOperation();
  ASSERT_TRUE(held.ok());

  std::atomic<int> granted{0};
  auto waiter = [&] {
    auto t = pool.AdmitOperation();
    if (t.ok()) {
      ++granted;
      t->Release();
    }
  };
  std::thread a(waiter);
  std::thread b(waiter);
  // Give both waiters time to queue, then free the slot; each waiter
  // hands the slot to the next on release.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  held->Release();
  a.join();
  b.join();
  EXPECT_EQ(granted.load(), 2);
  EXPECT_EQ(pool.stats().admitted, 3u);
}

TEST(BufferPoolTest, AdmissionWaiterHonoursContextDeadline) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 2);
  pool.set_thread_safe(true);
  pool.SetAdmissionControl(1, 1, 10'000'000);  // 10 s queue timeout
  ASSERT_OK_AND_ASSIGN(auto held, pool.AdmitOperation());
  OperationContext ctx(std::chrono::milliseconds(5));
  auto waited = pool.AdmitOperation(&ctx);  // deadline fires first
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);
  held.Release();
}

TEST(BufferPoolTest, DiscardFailsWhilePinned) {
  MemoryBlockManager manager(kBlockSize, 8);
  BufferPool pool(&manager, 4);
  ASSERT_OK_AND_ASSIGN(auto page, pool.GetBlock(0, false));
  const Status status = pool.Discard();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  page.Release();
  ASSERT_OK(pool.Discard());
}

}  // namespace
}  // namespace shiftsplit
