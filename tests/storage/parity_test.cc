// XOR parity groups on FileBlockManager (DESIGN.md §12): incremental
// maintenance on writes, inline read-path repair, ScrubRepair healing of
// data and parity strides, double-fault escalation, crash consistency
// through the redo journal, and the v2 → v3 on-disk upgrade.

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/storage/file_block_manager.h"
#include "shiftsplit/storage/manifest.h"
#include "testing.h"

namespace shiftsplit {
namespace {

constexpr uint64_t kBlockSize = 8;
constexpr uint64_t kEpoch = 42;
constexpr uint64_t kGroup = 4;
constexpr uint64_t kStride = kBlockSize * sizeof(double) + 16;

class ParityTest : public ::testing::Test {
 protected:
  ParityTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_parity_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "blocks.bin").string();
  }
  ~ParityTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<FileBlockManager> OpenParity(uint64_t group = kGroup) {
    FileBlockManager::Options options;
    options.checksums = true;
    options.epoch = kEpoch;
    options.parity_group = group;
    auto r = FileBlockManager::Open(path_, kBlockSize, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  static std::vector<double> Pattern(uint64_t id) {
    std::vector<double> data(kBlockSize);
    for (uint64_t i = 0; i < kBlockSize; ++i) {
      data[i] = static_cast<double>(id * 100 + i) + 0.25;
    }
    return data;
  }

  // Flips one payload byte of stride `index` in `file`.
  static void CorruptStride(const std::string& file, uint64_t index) {
    const uint64_t offset = index * kStride + 3;
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  void CorruptData(uint64_t id) { CorruptStride(path_, id); }
  void CorruptParity(uint64_t group) {
    CorruptStride(path_ + ".parity", group);
  }

  static inline int counter_ = 0;
  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ParityTest, IncrementalWritesKeepParityEqualToMemberXor) {
  auto manager = OpenParity();
  ASSERT_NE(manager, nullptr);
  ASSERT_OK(manager->Resize(6));  // groups {0..3} and {4,5}
  for (uint64_t id = 0; id < 6; ++id) {
    ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
  }
  // Overwrites must fold old ⊕ new, not just new.
  ASSERT_OK(manager->WriteBlock(1, Pattern(17)));
  ASSERT_OK(manager->Sync());

  for (uint64_t group = 0; group < 2; ++group) {
    std::vector<uint64_t> expected(kBlockSize, 0);
    for (uint64_t id = group * kGroup; id < std::min<uint64_t>(6, (group + 1) * kGroup);
         ++id) {
      const std::vector<double> payload = Pattern(id == 1 ? 17 : id);
      for (uint64_t i = 0; i < kBlockSize; ++i) {
        expected[i] ^= std::bit_cast<uint64_t>(payload[i]);
      }
    }
    std::vector<double> parity(kBlockSize);
    ASSERT_OK(manager->ReadBlock(kParityIdBase + group, parity));
    for (uint64_t i = 0; i < kBlockSize; ++i) {
      EXPECT_EQ(std::bit_cast<uint64_t>(parity[i]), expected[i])
          << "group " << group << " lane " << i;
    }
  }
  const DurabilityStats stats = manager->durability_stats();
  EXPECT_GT(stats.parity_writes, 0u);
  // Parity never leaks into the data I/O counters.
  EXPECT_EQ(manager->stats().block_writes, 7u);
}

TEST_F(ParityTest, CorruptBlockHealsInlineOnRead) {
  {
    auto manager = OpenParity();
    ASSERT_OK(manager->Resize(4));
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
    ASSERT_OK(manager->Sync());
  }
  CorruptData(2);

  auto manager = OpenParity();
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager->ReadBlock(2, buf));
  testing::ExpectNear(Pattern(2), buf);
  DurabilityStats stats = manager->durability_stats();
  EXPECT_EQ(stats.repaired_blocks, 1u);
  EXPECT_EQ(stats.unrepairable_blocks, 0u);
  EXPECT_TRUE(manager->quarantined().empty());

  // The repair was written back in place: a detect-only scrub is clean.
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt, manager->Scrub());
  EXPECT_TRUE(corrupt.empty());
}

TEST_F(ParityTest, ScrubRepairHealsDataAndParityStrides) {
  {
    auto manager = OpenParity();
    ASSERT_OK(manager->Resize(8));
    for (uint64_t id = 0; id < 8; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
    ASSERT_OK(manager->Sync());
  }
  CorruptData(1);       // group 0: data fault
  CorruptParity(1);     // group 1: parity fault

  auto manager = OpenParity();
  ASSERT_OK_AND_ASSIGN(const ScrubReport report, manager->ScrubRepair());
  EXPECT_EQ(report.unrepairable, std::vector<uint64_t>{});
  ASSERT_EQ(report.repaired.size(), 2u);
  EXPECT_EQ(report.repaired[0], 1u);
  EXPECT_EQ(report.repaired[1], kParityIdBase + 1);

  std::vector<double> buf(kBlockSize);
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_OK(manager->ReadBlock(id, buf));
    testing::ExpectNear(Pattern(id), buf);
  }
  // Everything verifies again, including the rebuilt parity stride: a
  // second repair pass finds nothing to do.
  ASSERT_OK_AND_ASSIGN(const ScrubReport again, manager->ScrubRepair());
  EXPECT_TRUE(again.clean());
}

TEST_F(ParityTest, DoubleFaultIsUnrepairableAndQuarantines) {
  {
    auto manager = OpenParity();
    ASSERT_OK(manager->Resize(4));
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
    ASSERT_OK(manager->Sync());
  }
  CorruptData(0);
  CorruptData(2);  // same group of 4: no parity chain can resolve this

  auto manager = OpenParity();
  std::vector<double> buf(kBlockSize);
  const Status read = manager->ReadBlock(0, buf);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kChecksumMismatch);

  ASSERT_OK_AND_ASSIGN(const ScrubReport report, manager->ScrubRepair());
  EXPECT_TRUE(report.repaired.empty());
  EXPECT_EQ(report.unrepairable, std::vector<uint64_t>({0, 2}));
  EXPECT_EQ(manager->quarantined(), std::vector<uint64_t>({0, 2}));
  EXPECT_GE(manager->durability_stats().unrepairable_blocks, 2u);

  // The intact group members still read fine.
  ASSERT_OK(manager->ReadBlock(1, buf));
  testing::ExpectNear(Pattern(1), buf);
}

TEST_F(ParityTest, OverwriteOfCorruptBlockHealsItThroughParity) {
  {
    auto manager = OpenParity();
    ASSERT_OK(manager->Resize(4));
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
    ASSERT_OK(manager->Sync());
  }
  CorruptData(3);

  // The incremental update needs block 3's old payload; it must come from
  // the parity chain, not the corrupt stride, or parity silently diverges.
  auto manager = OpenParity();
  ASSERT_OK(manager->WriteBlock(3, Pattern(99)));
  ASSERT_OK(manager->Sync());
  EXPECT_EQ(manager->durability_stats().repaired_blocks, 1u);

  // Corrupt the same block again: a repair now must produce the NEW data,
  // which only works if the overwrite kept parity consistent.
  CorruptData(3);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager->ReadBlock(3, buf));
  testing::ExpectNear(Pattern(99), buf);
}

TEST_F(ParityTest, CorruptParityFailsIncrementalWriteUntilRepaired) {
  {
    auto manager = OpenParity();
    ASSERT_OK(manager->Resize(4));
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
    ASSERT_OK(manager->Sync());
  }
  CorruptParity(0);

  auto manager = OpenParity();
  const Status write = manager->WriteBlock(0, Pattern(50));
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.code(), StatusCode::kChecksumMismatch);

  // ScrubRepair rebuilds the parity stride from the (verified) members,
  // after which the same write goes through.
  ASSERT_OK_AND_ASSIGN(const ScrubReport report, manager->ScrubRepair());
  EXPECT_EQ(report.repaired, std::vector<uint64_t>({kParityIdBase + 0}));
  ASSERT_OK(manager->WriteBlock(0, Pattern(50)));
  ASSERT_OK(manager->Sync());
  CorruptData(0);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager->ReadBlock(0, buf));
  testing::ExpectNear(Pattern(50), buf);
}

// ---------------------------------------------------------------------------
// WaveletCube-level: manifest plumbing, crash consistency, v2 → v3 upgrade.

std::filesystem::path MakeCubeDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("shiftsplit_parity_cube_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ParityCubeTest, CreateStampsManifestV3AndReopensWithParity) {
  const auto dir = MakeCubeDir("v3");
  WaveletCube::Options options;
  options.parity_group = 4;
  {
    ASSERT_OK_AND_ASSIGN(auto cube,
                         WaveletCube::CreateOnDisk(dir.string(), {3, 3},
                                                   options));
    EXPECT_EQ(cube->manifest().format_version, 3u);
    EXPECT_EQ(cube->manifest().parity_group, 4u);
    ASSERT_OK(cube->Close());
  }
  ASSERT_OK_AND_ASSIGN(auto cube, WaveletCube::OpenOnDisk(dir.string(), 64));
  EXPECT_EQ(cube->manifest().parity_group, 4u);
  EXPECT_EQ(cube->store()->manager().parity_group(), 4u);
  ASSERT_OK(cube->Close());
  std::filesystem::remove_all(dir);
}

TEST(ParityCubeTest, ParityRequiresChecksummedFormat) {
  const auto dir = MakeCubeDir("v1");
  WaveletCube::Options options;
  options.format_version = 1;
  options.parity_group = 4;
  const auto cube = WaveletCube::CreateOnDisk(dir.string(), {3, 3}, options);
  ASSERT_FALSE(cube.ok());
  EXPECT_EQ(cube.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST(ParityCubeTest, JournaledCommitKeepsParityConsistentAcrossCrash) {
  const auto dir = MakeCubeDir("crash");
  WaveletCube::Options cube_options;
  cube_options.parity_group = 4;
  {
    ASSERT_OK_AND_ASSIGN(auto cube,
                         WaveletCube::CreateOnDisk(dir.string(), {3, 3},
                                                   cube_options));
    ASSERT_OK(cube->Close());
  }
  ServingCube::Options options;
  options.start_workers = false;
  std::vector<double> expected(64, 0.0);
  {
    ASSERT_OK_AND_ASSIGN(auto serving,
                         ServingCube::OpenOnDisk(dir.string(), 64, options));
    for (uint64_t i = 0; i < 40; ++i) {
      const std::vector<uint64_t> at{i % 8, (i * 3) % 8};
      ASSERT_OK(serving->Add(at, 1.0 + static_cast<double>(i % 5)));
      expected[at[0] * 8 + at[1]] += 1.0 + static_cast<double>(i % 5);
    }
    ASSERT_OK(serving->DrainAll());  // journaled commit with parity images
    ASSERT_OK(serving->CrashForTest());
  }
  // A block corrupted while the process was down is healed through the
  // parity that the journaled commit (or its replay) left consistent.
  {
    std::fstream f((dir / "blocks.bin").string(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(5);
    const char byte = '\xff';
    f.write(&byte, 1);
  }
  {
    ASSERT_OK_AND_ASSIGN(auto serving,
                         ServingCube::OpenOnDisk(dir.string(), 64, options));
    for (uint64_t r = 0; r < 8; ++r) {
      for (uint64_t c = 0; c < 8; ++c) {
        const std::vector<uint64_t> at{r, c};
        ASSERT_OK_AND_ASSIGN(const double v, serving->PointQuery(at));
        EXPECT_DOUBLE_EQ(v, expected[r * 8 + c]) << r << "," << c;
      }
    }
    ASSERT_OK_AND_ASSIGN(const ScrubReport report, serving->RepairNow());
    EXPECT_TRUE(report.unrepairable.empty());
    ASSERT_OK(serving->Close());
  }
  std::filesystem::remove_all(dir);
}

TEST(ParityCubeTest, UpgradeParityOnDiskTakesV2StoreToV3) {
  const auto dir = MakeCubeDir("upgrade");
  {
    ASSERT_OK_AND_ASSIGN(auto cube,
                         WaveletCube::CreateOnDisk(dir.string(), {3, 3},
                                                   WaveletCube::Options()));
    EXPECT_EQ(cube->manifest().format_version, 2u);
    Tensor cell(TensorShape({1, 1}));
    cell[0] = 5.25;
    const std::vector<uint64_t> at{2, 3};
    ASSERT_OK(cube->Update(cell, at));
    ASSERT_OK(cube->Close());
  }
  ASSERT_OK(WaveletCube::UpgradeParityOnDisk(dir.string(), 4));
  {
    ASSERT_OK_AND_ASSIGN(StoreManifest manifest,
                         StoreManifest::Load(
                             (dir / "store.manifest").string()));
    EXPECT_EQ(manifest.format_version, 3u);
    EXPECT_EQ(manifest.parity_group, 4u);
  }
  // The upgraded sidecar really protects the data: flip a byte, repair,
  // and the pre-upgrade value survives.
  {
    std::fstream f((dir / "blocks.bin").string(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(9);
    const char byte = '\x55';
    f.write(&byte, 1);
  }
  ASSERT_OK_AND_ASSIGN(auto cube, WaveletCube::OpenOnDisk(dir.string(), 64));
  ASSERT_OK_AND_ASSIGN(const ScrubReport report, cube->ScrubRepair());
  EXPECT_TRUE(report.unrepairable.empty());
  const std::vector<uint64_t> at{2, 3};
  ASSERT_OK_AND_ASSIGN(const double v, cube->PointQuery(at));
  EXPECT_DOUBLE_EQ(v, 5.25);
  ASSERT_OK(cube->Close());
  // Upgrading again is a no-op.
  ASSERT_OK(WaveletCube::UpgradeParityOnDisk(dir.string(), 4));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shiftsplit
