// Per-block integrity footers on FileBlockManager: verification on read,
// quarantine + Scrub, degraded (zero-filled) reads, epoch pinning, and
// compatibility with unchecksummed legacy files.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "shiftsplit/storage/file_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

class ChecksumTest : public ::testing::Test {
 protected:
  ChecksumTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_checksum_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "blocks.bin").string();
  }
  ~ChecksumTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<FileBlockManager> OpenChecksummed(
      uint64_t epoch = kEpoch, bool degraded = false) {
    FileBlockManager::Options options;
    options.checksums = true;
    options.epoch = epoch;
    options.degraded_reads = degraded;
    auto r = FileBlockManager::Open(path_, kBlockSize, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  static std::vector<double> Pattern(uint64_t id) {
    std::vector<double> data(kBlockSize);
    for (uint64_t i = 0; i < kBlockSize; ++i) {
      data[i] = static_cast<double>(id * 100 + i) + 0.5;
    }
    return data;
  }

  // Flips one byte of the payload of block `id` on disk.
  void CorruptPayload(uint64_t id) {
    const uint64_t stride = kBlockSize * sizeof(double) + 16;
    const uint64_t offset = id * stride + 3;
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  static constexpr uint64_t kBlockSize = 8;
  static constexpr uint64_t kEpoch = 42;
  static inline int counter_ = 0;
  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ChecksumTest, RoundTripAcrossReopen) {
  {
    auto manager = OpenChecksummed();
    ASSERT_NE(manager, nullptr);
    ASSERT_OK(manager->Resize(4));
    ASSERT_OK(manager->WriteBlock(0, Pattern(0)));
    ASSERT_OK(manager->WriteBlock(2, Pattern(2)));
    ASSERT_OK(manager->Sync());
  }
  auto manager = OpenChecksummed();
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->num_blocks(), 4u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager->ReadBlock(0, buf));
  testing::ExpectNear(Pattern(0), buf);
  ASSERT_OK(manager->ReadBlock(2, buf));
  testing::ExpectNear(Pattern(2), buf);
  // Never-written block: all-zero payload and footer verify trivially.
  ASSERT_OK(manager->ReadBlock(3, buf));
  for (double x : buf) EXPECT_DOUBLE_EQ(x, 0.0);
  EXPECT_EQ(manager->durability_stats().checksum_failures, 0u);
}

TEST_F(ChecksumTest, FlippedByteFailsReadAndScrub) {
  {
    auto manager = OpenChecksummed();
    ASSERT_OK(manager->Resize(4));
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
  }
  CorruptPayload(1);

  auto manager = OpenChecksummed();
  std::vector<double> buf(kBlockSize);
  const Status read = manager->ReadBlock(1, buf);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kChecksumMismatch);
  // Intact neighbours still read fine.
  ASSERT_OK(manager->ReadBlock(0, buf));
  testing::ExpectNear(Pattern(0), buf);

  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt,
                       manager->Scrub());
  EXPECT_EQ(corrupt, std::vector<uint64_t>({1}));
  const DurabilityStats stats = manager->durability_stats();
  EXPECT_GE(stats.checksum_failures, 2u);  // the read and the scrub
  EXPECT_EQ(stats.quarantined_blocks, 1u);
  EXPECT_EQ(manager->quarantined(), std::vector<uint64_t>({1}));
}

TEST_F(ChecksumTest, EverySingleFlippedByteIsDetected) {
  {
    auto manager = OpenChecksummed();
    ASSERT_OK(manager->Resize(1));
    ASSERT_OK(manager->WriteBlock(0, Pattern(0)));
  }
  const uint64_t stride = kBlockSize * sizeof(double) + 16;
  // Acceptance criterion: a flip at *any* byte offset — payload, CRC,
  // magic or epoch — fails verification.
  for (uint64_t offset = 0; offset < stride; ++offset) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    const char flipped = static_cast<char>(byte ^ 0x10);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&flipped, 1);
    f.close();

    auto manager = OpenChecksummed();
    std::vector<double> buf(kBlockSize);
    EXPECT_EQ(manager->ReadBlock(0, buf).code(),
              StatusCode::kChecksumMismatch)
        << "flip at byte " << offset << " went undetected";

    std::fstream g(path_, std::ios::in | std::ios::out | std::ios::binary);
    g.seekp(static_cast<std::streamoff>(offset));
    g.write(&byte, 1);  // restore
  }
}

TEST_F(ChecksumTest, VectoredReadVerifiesEveryBlock) {
  {
    auto manager = OpenChecksummed();
    ASSERT_OK(manager->Resize(6));
    for (uint64_t id = 0; id < 6; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
  }
  CorruptPayload(4);
  auto manager = OpenChecksummed();
  const std::vector<uint64_t> ids = {0, 1, 2, 3, 4, 5};
  std::vector<double> out(ids.size() * kBlockSize);
  EXPECT_EQ(manager->ReadBlocks(ids, out).code(),
            StatusCode::kChecksumMismatch);
  // A clean subset still reads, concatenated in order.
  const std::vector<uint64_t> clean = {5, 0, 3};
  std::vector<double> subset(clean.size() * kBlockSize);
  ASSERT_OK(manager->ReadBlocks(clean, subset));
  testing::ExpectNear(Pattern(5),
                      std::span<const double>(subset).subspan(0, kBlockSize));
  testing::ExpectNear(
      Pattern(0),
      std::span<const double>(subset).subspan(kBlockSize, kBlockSize));
  testing::ExpectNear(
      Pattern(3),
      std::span<const double>(subset).subspan(2 * kBlockSize, kBlockSize));
}

TEST_F(ChecksumTest, DegradedReadsServeZerosAndCount) {
  {
    auto manager = OpenChecksummed();
    ASSERT_OK(manager->Resize(4));
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_OK(manager->WriteBlock(id, Pattern(id)));
    }
  }
  CorruptPayload(2);
  auto manager = OpenChecksummed(kEpoch, /*degraded=*/true);
  std::vector<double> buf(kBlockSize, 99.0);
  ASSERT_OK(manager->ReadBlock(2, buf));
  for (double x : buf) EXPECT_DOUBLE_EQ(x, 0.0);
  ASSERT_OK(manager->ReadBlock(1, buf));
  testing::ExpectNear(Pattern(1), buf);
  const DurabilityStats stats = manager->durability_stats();
  EXPECT_EQ(stats.zero_filled_reads, 1u);
  EXPECT_EQ(stats.quarantined_blocks, 1u);
}

TEST_F(ChecksumTest, RewritingAQuarantinedBlockHealsIt) {
  {
    auto manager = OpenChecksummed();
    ASSERT_OK(manager->Resize(2));
    ASSERT_OK(manager->WriteBlock(0, Pattern(0)));
  }
  CorruptPayload(0);
  auto manager = OpenChecksummed();
  std::vector<double> buf(kBlockSize);
  ASSERT_FALSE(manager->ReadBlock(0, buf).ok());
  EXPECT_EQ(manager->durability_stats().quarantined_blocks, 1u);
  ASSERT_OK(manager->WriteBlock(0, Pattern(9)));
  EXPECT_EQ(manager->durability_stats().quarantined_blocks, 0u);
  ASSERT_OK(manager->ReadBlock(0, buf));
  testing::ExpectNear(Pattern(9), buf);
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt,
                       manager->Scrub());
  EXPECT_TRUE(corrupt.empty());
}

TEST_F(ChecksumTest, WrongEpochFailsVerification) {
  {
    auto manager = OpenChecksummed(/*epoch=*/1);
    ASSERT_OK(manager->Resize(1));
    ASSERT_OK(manager->WriteBlock(0, Pattern(0)));
  }
  auto manager = OpenChecksummed(/*epoch=*/2);
  std::vector<double> buf(kBlockSize);
  EXPECT_EQ(manager->ReadBlock(0, buf).code(),
            StatusCode::kChecksumMismatch);
}

TEST_F(ChecksumTest, StrideMismatchIsRejectedAtOpen) {
  {
    auto manager = OpenChecksummed();
    ASSERT_OK(manager->Resize(3));
    ASSERT_OK(manager->WriteBlock(0, Pattern(0)));
  }
  // Reopening a checksummed file without checksums (or vice versa) trips
  // the stride check instead of serving garbage.
  const auto raw = FileBlockManager::Open(path_, kBlockSize);
  EXPECT_FALSE(raw.ok());
}

TEST_F(ChecksumTest, UnchecksummedFilesStillScrubClean) {
  auto r = FileBlockManager::Open(path_, kBlockSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto manager = std::move(r).value();
  ASSERT_OK(manager->Resize(2));
  ASSERT_OK(manager->WriteBlock(0, Pattern(0)));
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> corrupt,
                       manager->Scrub());
  EXPECT_TRUE(corrupt.empty());
  EXPECT_EQ(manager->durability_stats().checksum_failures, 0u);
}

}  // namespace
}  // namespace shiftsplit
