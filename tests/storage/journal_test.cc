#include "shiftsplit/storage/journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "shiftsplit/storage/memory_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  JournalTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_journal_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "store.journal").string();
  }
  ~JournalTest() override { std::filesystem::remove_all(dir_); }

  // One committed record with two deterministic block images.
  Status AppendTwoBlocks(Journal* journal) {
    block3_.assign(kBlockSize, 0.0);
    block7_.assign(kBlockSize, 0.0);
    for (uint64_t i = 0; i < kBlockSize; ++i) {
      block3_[i] = 3.0 + static_cast<double>(i);
      block7_[i] = -7.0 * static_cast<double>(i + 1);
    }
    const JournalEntry entries[] = {
        {3, std::span<const double>(block3_)},
        {7, std::span<const double>(block7_)},
    };
    return journal->AppendCommit(entries, kBlockSize);
  }

  uint64_t FileSize() const {
    return static_cast<uint64_t>(std::filesystem::file_size(path_));
  }

  static constexpr uint64_t kBlockSize = 4;
  static inline int counter_ = 0;
  std::filesystem::path dir_;
  std::string path_;
  std::vector<double> block3_;
  std::vector<double> block7_;
};

TEST_F(JournalTest, MissingJournalIsCleanOpen) {
  Journal journal(path_);
  MemoryBlockManager device(kBlockSize, 8);
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_FALSE(result.replayed);
  EXPECT_FALSE(result.rolled_back);
  EXPECT_EQ(journal.replays(), 0u);
  EXPECT_EQ(journal.rollbacks(), 0u);
}

TEST_F(JournalTest, CompleteRecordReplaysAndRetires) {
  Journal journal(path_);
  ASSERT_OK(AppendTwoBlocks(&journal));
  EXPECT_EQ(journal.commits(), 1u);
  ASSERT_TRUE(std::filesystem::exists(path_));

  MemoryBlockManager device(kBlockSize, 8);
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_TRUE(result.replayed);
  EXPECT_FALSE(result.rolled_back);
  EXPECT_EQ(result.blocks, 2u);
  EXPECT_FALSE(std::filesystem::exists(path_));

  std::vector<double> buf(kBlockSize);
  ASSERT_OK(device.ReadBlock(3, buf));
  testing::ExpectNear(block3_, buf);
  ASSERT_OK(device.ReadBlock(7, buf));
  testing::ExpectNear(block7_, buf);

  // Recovery retired the journal: a second pass is a clean open.
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult again,
                       journal.Recover(&device));
  EXPECT_FALSE(again.replayed);
  EXPECT_FALSE(again.rolled_back);
}

TEST_F(JournalTest, ReplayGrowsTheDevice) {
  Journal journal(path_);
  ASSERT_OK(AppendTwoBlocks(&journal));
  MemoryBlockManager device(kBlockSize, 2);  // block 7 is out of range
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_TRUE(result.replayed);
  EXPECT_GE(device.num_blocks(), 8u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(device.ReadBlock(7, buf));
  testing::ExpectNear(block7_, buf);
}

TEST_F(JournalTest, TornRecordRollsBackUntouched) {
  Journal journal(path_);
  ASSERT_OK(AppendTwoBlocks(&journal));
  // Tear the record: drop the trailing half, as a power cut mid-append
  // would.
  const uint64_t full = FileSize();
  std::filesystem::resize_file(path_, full / 2);

  MemoryBlockManager device(kBlockSize, 8);
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_FALSE(result.replayed);
  EXPECT_TRUE(result.rolled_back);
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_EQ(device.stats().block_writes, 0u);  // device never touched
}

TEST_F(JournalTest, CorruptPayloadByteRollsBack) {
  Journal journal(path_);
  ASSERT_OK(AppendTwoBlocks(&journal));
  // Flip one payload byte mid-file; the record-level CRC must catch it.
  const uint64_t size = FileSize();
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&byte, 1);
  f.close();

  MemoryBlockManager device(kBlockSize, 8);
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(device.stats().block_writes, 0u);
}

TEST_F(JournalTest, BlockSizeMismatchRollsBack) {
  Journal journal(path_);
  ASSERT_OK(AppendTwoBlocks(&journal));
  MemoryBlockManager device(kBlockSize * 2, 8);
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(device.stats().block_writes, 0u);
}

TEST_F(JournalTest, TruncateIsIdempotent) {
  Journal journal(path_);
  ASSERT_OK(AppendTwoBlocks(&journal));
  ASSERT_OK(journal.Truncate());
  EXPECT_FALSE(std::filesystem::exists(path_));
  ASSERT_OK(journal.Truncate());  // nothing to remove: still OK
}

TEST_F(JournalTest, RejectsMalformedCommits) {
  Journal journal(path_);
  EXPECT_FALSE(journal.AppendCommit({}, kBlockSize).ok());
  const std::vector<double> short_payload(kBlockSize - 1, 1.0);
  const JournalEntry bad[] = {
      {0, std::span<const double>(short_payload)},
  };
  EXPECT_FALSE(journal.AppendCommit(bad, kBlockSize).ok());
  EXPECT_EQ(journal.commits(), 0u);
}

TEST_F(JournalTest, HookAbortLeavesRecoverableState) {
  Journal journal(path_);
  // Crash on the very first journal step: the file exists but holds no
  // record; recovery must roll it back cleanly.
  journal.set_hook([](const char* op) -> Status {
    if (std::string(op) == "append") {
      return Status::IOError("simulated power cut");
    }
    return Status::OK();
  });
  EXPECT_FALSE(AppendTwoBlocks(&journal).ok());
  EXPECT_EQ(journal.commits(), 0u);

  journal.set_hook(nullptr);
  MemoryBlockManager device(kBlockSize, 8);
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(device.stats().block_writes, 0u);
}

TEST_F(JournalTest, HookAbortAfterTailTearsTheRecord) {
  Journal journal(path_);
  journal.set_hook([](const char* op) -> Status {
    if (std::string(op) == "append-tail") {
      return Status::IOError("simulated power cut");
    }
    return Status::OK();
  });
  EXPECT_FALSE(AppendTwoBlocks(&journal).ok());
  ASSERT_TRUE(std::filesystem::exists(path_));
  EXPECT_GT(FileSize(), 0u);  // a genuinely torn (half-written) record

  journal.set_hook(nullptr);
  MemoryBlockManager device(kBlockSize, 8);
  ASSERT_OK_AND_ASSIGN(const Journal::RecoveryResult result,
                       journal.Recover(&device));
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(device.stats().block_writes, 0u);
}

class DeltaLogTest : public ::testing::Test {
 protected:
  DeltaLogTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_deltalog_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "deltas.log").string();
  }
  ~DeltaLogTest() override { std::filesystem::remove_all(dir_); }

  static DeltaRecord MakeRecord(uint64_t seq) {
    DeltaRecord record;
    record.seq = seq;
    record.value = 0.5 * static_cast<double>(seq);
    record.coords = {seq, seq + 1, seq + 2};
    return record;
  }

  static uint64_t counter_;
  std::filesystem::path dir_;
  std::string path_;
};

uint64_t DeltaLogTest::counter_ = 0;

TEST_F(DeltaLogTest, MissingLogReplaysEmpty) {
  DeltaLog log(path_);
  ASSERT_OK_AND_ASSIGN(const auto records, log.Replay());
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(log.durable_seq(), 0u);
}

TEST_F(DeltaLogTest, AppendSyncReplayRoundtrip) {
  {
    DeltaLog log(path_);
    for (uint64_t seq = 1; seq <= 5; ++seq) log.Append(MakeRecord(seq));
    ASSERT_OK(log.Sync(5));
    EXPECT_EQ(log.appends(), 5u);
    EXPECT_GE(log.syncs(), 1u);
    EXPECT_EQ(log.durable_seq(), 5u);
    // Sync below the durable watermark is a no-op.
    ASSERT_OK(log.Sync(3));
  }
  DeltaLog reopened(path_);
  ASSERT_OK_AND_ASSIGN(const auto records, reopened.Replay());
  ASSERT_EQ(records.size(), 5u);
  for (uint64_t i = 0; i < records.size(); ++i) {
    const DeltaRecord want = MakeRecord(i + 1);
    EXPECT_EQ(records[i].seq, want.seq);
    EXPECT_EQ(records[i].value, want.value);
    EXPECT_EQ(records[i].coords, want.coords);
  }
  EXPECT_EQ(reopened.durable_seq(), 5u);
  // Appends continue past the replayed tail.
  reopened.Append(MakeRecord(6));
  ASSERT_OK(reopened.Sync(6));
  ASSERT_OK_AND_ASSIGN(const auto grown, DeltaLog(path_).Replay());
  EXPECT_EQ(grown.size(), 6u);
}

TEST_F(DeltaLogTest, TornTailIsDroppedAndTruncated) {
  {
    DeltaLog log(path_);
    for (uint64_t seq = 1; seq <= 3; ++seq) log.Append(MakeRecord(seq));
    ASSERT_OK(log.Sync(3));
  }
  // Simulate a crash mid-append: a valid prefix plus half a record of
  // garbage.
  const uint64_t valid_size =
      static_cast<uint64_t>(std::filesystem::file_size(path_));
  {
    std::ofstream f(path_, std::ios::app | std::ios::binary);
    const char garbage[] = "SSDR\x01torn-tail-bytes";
    f.write(garbage, sizeof(garbage));
  }
  DeltaLog log(path_);
  ASSERT_OK_AND_ASSIGN(const auto records, log.Replay());
  EXPECT_EQ(records.size(), 3u);
  EXPECT_EQ(log.torn_records(), 1u);
  // The torn bytes are gone from disk, so later appends are not stranded
  // behind garbage.
  EXPECT_EQ(std::filesystem::file_size(path_), valid_size);
  log.Append(MakeRecord(4));
  ASSERT_OK(log.Sync(4));
  ASSERT_OK_AND_ASSIGN(const auto after, DeltaLog(path_).Replay());
  ASSERT_EQ(after.size(), 4u);
  EXPECT_EQ(after.back().seq, 4u);
}

TEST_F(DeltaLogTest, TruncateRemovesAndIsIdempotent) {
  DeltaLog log(path_);
  log.Append(MakeRecord(1));
  ASSERT_OK(log.Sync(1));
  ASSERT_TRUE(std::filesystem::exists(path_));
  ASSERT_OK(log.Truncate());
  EXPECT_FALSE(std::filesystem::exists(path_));
  ASSERT_OK(log.Truncate());
  ASSERT_OK_AND_ASSIGN(const auto records, DeltaLog(path_).Replay());
  EXPECT_TRUE(records.empty());
}

}  // namespace
}  // namespace shiftsplit
