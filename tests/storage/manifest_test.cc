#include "shiftsplit/storage/manifest.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_manifest_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string File(const std::string& name) {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(ManifestTest, SaveLoadRoundTrip) {
  StoreManifest manifest;
  manifest.form = StoreForm::kNonstandard;
  manifest.norm = Normalization::kOrthonormal;
  manifest.b = 3;
  manifest.log_dims = {5, 5, 5};
  manifest.filled = 12;
  const std::string path = File("store.manifest");
  ASSERT_OK(manifest.Save(path));
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(path));
  EXPECT_EQ(loaded, manifest);
}

TEST_F(ManifestTest, DefaultsRoundTrip) {
  StoreManifest manifest;
  manifest.log_dims = {4};
  const std::string path = File("defaults.manifest");
  ASSERT_OK(manifest.Save(path));
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(path));
  EXPECT_EQ(loaded, manifest);
  EXPECT_EQ(loaded.form, StoreForm::kStandard);
  EXPECT_EQ(loaded.norm, Normalization::kAverage);
}

TEST_F(ManifestTest, LoadRejectsBadFiles) {
  EXPECT_EQ(StoreManifest::Load(File("missing")).status().code(),
            StatusCode::kNotFound);

  std::ofstream(File("noformat")) << "b=2\nlog_dims=3\n";
  EXPECT_FALSE(StoreManifest::Load(File("noformat")).ok());

  std::ofstream(File("badline"))
      << "format=shiftsplit-store-v1\nthis is not a key value line\n";
  EXPECT_FALSE(StoreManifest::Load(File("badline")).ok());

  std::ofstream(File("badkey"))
      << "format=shiftsplit-store-v1\nlog_dims=3\nwhatever=1\n";
  EXPECT_FALSE(StoreManifest::Load(File("badkey")).ok());

  std::ofstream(File("nodims")) << "format=shiftsplit-store-v1\nb=2\n";
  EXPECT_FALSE(StoreManifest::Load(File("nodims")).ok());

  std::ofstream(File("badform"))
      << "format=shiftsplit-store-v1\nform=fancy\nlog_dims=3\n";
  EXPECT_FALSE(StoreManifest::Load(File("badform")).ok());
}

TEST_F(ManifestTest, CommentsAndBlankLinesIgnored) {
  std::ofstream(File("comments"))
      << "# a comment\nformat=shiftsplit-store-v1\n\nlog_dims=2,3\n";
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(File("comments")));
  EXPECT_EQ(loaded.log_dims, (std::vector<uint32_t>{2, 3}));
}

TEST_F(ManifestTest, MakeLayoutStandard) {
  StoreManifest manifest;
  manifest.form = StoreForm::kStandard;
  manifest.b = 2;
  manifest.log_dims = {4, 4};
  ASSERT_OK_AND_ASSIGN(const auto layout, manifest.MakeLayout());
  EXPECT_NE(dynamic_cast<const StandardTiling*>(layout.get()), nullptr);
  EXPECT_EQ(layout->block_capacity(), 16u);
}

TEST_F(ManifestTest, MakeLayoutNonstandardRequiresCube) {
  StoreManifest manifest;
  manifest.form = StoreForm::kNonstandard;
  manifest.b = 2;
  manifest.log_dims = {4, 4};
  ASSERT_OK_AND_ASSIGN(const auto layout, manifest.MakeLayout());
  EXPECT_NE(dynamic_cast<const NonstandardTiling*>(layout.get()), nullptr);
  manifest.log_dims = {4, 5};
  EXPECT_FALSE(manifest.MakeLayout().ok());
}

TEST_F(ManifestTest, MakeLayoutNaiveNeedsCapacity) {
  StoreManifest manifest;
  manifest.form = StoreForm::kNaive;
  manifest.log_dims = {4};
  EXPECT_FALSE(manifest.MakeLayout().ok());
  manifest.block_capacity = 8;
  ASSERT_OK_AND_ASSIGN(const auto layout, manifest.MakeLayout());
  EXPECT_EQ(layout->block_capacity(), 8u);
}

TEST(StoreFormTest, StringConversions) {
  EXPECT_STREQ(StoreFormToString(StoreForm::kStandard), "standard");
  EXPECT_STREQ(StoreFormToString(StoreForm::kNonstandard), "nonstandard");
  EXPECT_STREQ(StoreFormToString(StoreForm::kNaive), "naive");
  for (StoreForm form : {StoreForm::kStandard, StoreForm::kNonstandard,
                         StoreForm::kNaive}) {
    ASSERT_OK_AND_ASSIGN(const StoreForm back,
                         StoreFormFromString(StoreFormToString(form)));
    EXPECT_EQ(back, form);
  }
  EXPECT_FALSE(StoreFormFromString("bogus").ok());
}

}  // namespace
}  // namespace shiftsplit
