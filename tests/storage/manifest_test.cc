#include "shiftsplit/storage/manifest.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "testing.h"

namespace shiftsplit {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("shiftsplit_manifest_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string File(const std::string& name) {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(ManifestTest, SaveLoadRoundTrip) {
  StoreManifest manifest;
  manifest.form = StoreForm::kNonstandard;
  manifest.norm = Normalization::kOrthonormal;
  manifest.b = 3;
  manifest.log_dims = {5, 5, 5};
  manifest.filled = 12;
  const std::string path = File("store.manifest");
  ASSERT_OK(manifest.Save(path));
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(path));
  EXPECT_EQ(loaded, manifest);
}

TEST_F(ManifestTest, DefaultsRoundTrip) {
  StoreManifest manifest;
  manifest.log_dims = {4};
  const std::string path = File("defaults.manifest");
  ASSERT_OK(manifest.Save(path));
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(path));
  EXPECT_EQ(loaded, manifest);
  EXPECT_EQ(loaded.form, StoreForm::kStandard);
  EXPECT_EQ(loaded.norm, Normalization::kAverage);
}

TEST_F(ManifestTest, LoadRejectsBadFiles) {
  EXPECT_EQ(StoreManifest::Load(File("missing")).status().code(),
            StatusCode::kNotFound);

  std::ofstream(File("noformat")) << "b=2\nlog_dims=3\n";
  EXPECT_FALSE(StoreManifest::Load(File("noformat")).ok());

  std::ofstream(File("badline"))
      << "format=shiftsplit-store-v1\nthis is not a key value line\n";
  EXPECT_FALSE(StoreManifest::Load(File("badline")).ok());

  std::ofstream(File("badkey"))
      << "format=shiftsplit-store-v1\nlog_dims=3\nwhatever=1\n";
  EXPECT_FALSE(StoreManifest::Load(File("badkey")).ok());

  std::ofstream(File("nodims")) << "format=shiftsplit-store-v1\nb=2\n";
  EXPECT_FALSE(StoreManifest::Load(File("nodims")).ok());

  std::ofstream(File("badform"))
      << "format=shiftsplit-store-v1\nform=fancy\nlog_dims=3\n";
  EXPECT_FALSE(StoreManifest::Load(File("badform")).ok());
}

TEST_F(ManifestTest, CommentsAndBlankLinesIgnored) {
  std::ofstream(File("comments"))
      << "# a comment\nformat=shiftsplit-store-v1\n\nlog_dims=2,3\n";
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(File("comments")));
  EXPECT_EQ(loaded.log_dims, (std::vector<uint32_t>{2, 3}));
}

TEST_F(ManifestTest, MakeLayoutStandard) {
  StoreManifest manifest;
  manifest.form = StoreForm::kStandard;
  manifest.b = 2;
  manifest.log_dims = {4, 4};
  ASSERT_OK_AND_ASSIGN(const auto layout, manifest.MakeLayout());
  EXPECT_NE(dynamic_cast<const StandardTiling*>(layout.get()), nullptr);
  EXPECT_EQ(layout->block_capacity(), 16u);
}

TEST_F(ManifestTest, MakeLayoutNonstandardRequiresCube) {
  StoreManifest manifest;
  manifest.form = StoreForm::kNonstandard;
  manifest.b = 2;
  manifest.log_dims = {4, 4};
  ASSERT_OK_AND_ASSIGN(const auto layout, manifest.MakeLayout());
  EXPECT_NE(dynamic_cast<const NonstandardTiling*>(layout.get()), nullptr);
  manifest.log_dims = {4, 5};
  EXPECT_FALSE(manifest.MakeLayout().ok());
}

TEST_F(ManifestTest, MakeLayoutNaiveNeedsCapacity) {
  StoreManifest manifest;
  manifest.form = StoreForm::kNaive;
  manifest.log_dims = {4};
  EXPECT_FALSE(manifest.MakeLayout().ok());
  manifest.block_capacity = 8;
  ASSERT_OK_AND_ASSIGN(const auto layout, manifest.MakeLayout());
  EXPECT_EQ(layout->block_capacity(), 8u);
}

TEST_F(ManifestTest, V2RoundTripKeepsEpoch) {
  StoreManifest manifest;
  manifest.form = StoreForm::kStandard;
  manifest.b = 2;
  manifest.log_dims = {4, 4};
  manifest.format_version = 2;
  manifest.store_epoch = 0xDEADBEEFCAFEull;
  const std::string path = File("v2.manifest");
  ASSERT_OK(manifest.Save(path));
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(path));
  EXPECT_EQ(loaded, manifest);
  EXPECT_EQ(loaded.format_version, 2u);
  EXPECT_EQ(loaded.store_epoch, 0xDEADBEEFCAFEull);
  // The format line matches the version.
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "format=shiftsplit-store-v2");
}

TEST_F(ManifestTest, LegacyV1FilesStillLoad) {
  std::ofstream(File("v1.manifest"))
      << "format=shiftsplit-store-v1\nform=standard\nlog_dims=3,3\n";
  ASSERT_OK_AND_ASSIGN(const StoreManifest loaded,
                       StoreManifest::Load(File("v1.manifest")));
  EXPECT_EQ(loaded.format_version, 1u);
  EXPECT_EQ(loaded.store_epoch, 0u);
}

TEST_F(ManifestTest, LoadRejectsUnknownFormatVersion) {
  std::ofstream(File("v9.manifest"))
      << "format=shiftsplit-store-v9\nlog_dims=3\n";
  EXPECT_FALSE(StoreManifest::Load(File("v9.manifest")).ok());
}

TEST_F(ManifestTest, SaveRejectsUnknownFormatVersion) {
  StoreManifest manifest;
  manifest.log_dims = {3};
  manifest.format_version = 9;
  EXPECT_FALSE(manifest.Save(File("v9.manifest")).ok());
  EXPECT_FALSE(std::filesystem::exists(File("v9.manifest")));
}

TEST_F(ManifestTest, SaveIsAtomicUnderFaults) {
  // Baseline manifest on disk.
  StoreManifest original;
  original.log_dims = {5, 5};
  original.filled = 7;
  const std::string path = File("store.manifest");
  ASSERT_OK(original.Save(path));

  // Fault: the temp file cannot be created (its name is taken by a
  // directory). Save must fail and leave the previous manifest byte-intact.
  std::filesystem::create_directories(path + ".tmp");
  StoreManifest changed = original;
  changed.filled = 99;
  EXPECT_FALSE(changed.Save(path).ok());
  ASSERT_OK_AND_ASSIGN(const StoreManifest still,
                       StoreManifest::Load(path));
  EXPECT_EQ(still, original);
  std::filesystem::remove_all(path + ".tmp");

  // A stale temp file from an interrupted save is simply overwritten.
  std::ofstream(path + ".tmp") << "garbage from a crashed save\n";
  ASSERT_OK(changed.Save(path));
  ASSERT_OK_AND_ASSIGN(const StoreManifest now, StoreManifest::Load(path));
  EXPECT_EQ(now, changed);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(ManifestTest, ShardSetRoundTripsAndValidates) {
  const std::string path = (dir_ / "shardset.manifest").string();
  ShardSetManifest original;
  original.num_shards = 4;
  original.split_dim = 1;
  original.log_dims = {3, 6, 4};
  for (uint32_t s = 0; s < 4; ++s) {
    original.shard_dirs.push_back(ShardSetManifest::ShardDirName(s));
  }
  EXPECT_EQ(original.shard_dirs[3], "shard-0003");
  EXPECT_EQ(original.ShardLogDims(), (std::vector<uint32_t>{3, 4, 4}));

  ASSERT_OK(original.Save(path));
  ASSERT_OK_AND_ASSIGN(const ShardSetManifest loaded,
                       ShardSetManifest::Load(path));
  EXPECT_EQ(loaded, original);

  // Load rejects inconsistent shard sets.
  ShardSetManifest bad = original;
  bad.num_shards = 3;
  ASSERT_OK(bad.Save(path));  // Save does not validate; Load does
  EXPECT_FALSE(ShardSetManifest::Load(path).ok());
  bad = original;
  bad.shard_dirs.pop_back();
  ASSERT_OK(bad.Save(path));
  EXPECT_FALSE(ShardSetManifest::Load(path).ok());
  bad = original;
  bad.split_dim = 3;
  ASSERT_OK(bad.Save(path));
  EXPECT_FALSE(ShardSetManifest::Load(path).ok());
  bad = original;
  bad.num_shards = 16;  // log-4 split dim cannot host 16 shards
  bad.shard_dirs.clear();
  for (uint32_t s = 0; s < 16; ++s) {
    bad.shard_dirs.push_back(ShardSetManifest::ShardDirName(s));
  }
  bad.split_dim = 2;
  ASSERT_OK(bad.Save(path));
  EXPECT_FALSE(ShardSetManifest::Load(path).ok());

  EXPECT_EQ(ShardSetManifest::Load((dir_ / "missing").string())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(StoreFormTest, StringConversions) {
  EXPECT_STREQ(StoreFormToString(StoreForm::kStandard), "standard");
  EXPECT_STREQ(StoreFormToString(StoreForm::kNonstandard), "nonstandard");
  EXPECT_STREQ(StoreFormToString(StoreForm::kNaive), "naive");
  for (StoreForm form : {StoreForm::kStandard, StoreForm::kNonstandard,
                         StoreForm::kNaive}) {
    ASSERT_OK_AND_ASSIGN(const StoreForm back,
                         StoreFormFromString(StoreFormToString(form)));
    EXPECT_EQ(back, form);
  }
  EXPECT_FALSE(StoreFormFromString("bogus").ok());
}

}  // namespace
}  // namespace shiftsplit
