#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "shiftsplit/storage/file_block_manager.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "testing.h"

namespace shiftsplit {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("shiftsplit_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// Both backends must satisfy the same contract.
enum class Backend { kMemory, kFile };

class BlockManagerContractTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kMemory) {
      manager_ = std::make_unique<MemoryBlockManager>(kBlockSize, 4);
    } else {
      auto r = FileBlockManager::Open(dir_.File("blocks.bin"), kBlockSize);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      file_manager_ = std::move(r).value();
      ASSERT_OK(file_manager_->Resize(4));
      manager_.reset(file_manager_.release());
    }
  }

  static constexpr uint64_t kBlockSize = 8;
  TempDir dir_;
  std::unique_ptr<FileBlockManager> file_manager_;
  std::unique_ptr<BlockManager> manager_;
};

TEST_P(BlockManagerContractTest, FreshBlocksReadZero) {
  std::vector<double> buf(kBlockSize, 99.0);
  ASSERT_OK(manager_->ReadBlock(2, buf));
  for (double x : buf) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST_P(BlockManagerContractTest, WriteThenReadRoundTrips) {
  std::vector<double> in{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> out(kBlockSize);
  ASSERT_OK(manager_->WriteBlock(1, in));
  ASSERT_OK(manager_->ReadBlock(1, out));
  testing::ExpectNear(in, out);
  // Other blocks untouched.
  ASSERT_OK(manager_->ReadBlock(0, out));
  for (double x : out) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST_P(BlockManagerContractTest, OutOfRangeAndBadSizesRejected) {
  std::vector<double> buf(kBlockSize);
  EXPECT_EQ(manager_->ReadBlock(4, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(manager_->WriteBlock(4, buf).code(), StatusCode::kOutOfRange);
  std::vector<double> small(kBlockSize - 1);
  EXPECT_EQ(manager_->ReadBlock(0, small).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager_->WriteBlock(0, small).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(BlockManagerContractTest, ResizeGrowsAndRejectsShrink) {
  ASSERT_OK(manager_->Resize(10));
  EXPECT_EQ(manager_->num_blocks(), 10u);
  std::vector<double> buf(kBlockSize);
  ASSERT_OK(manager_->ReadBlock(9, buf));
  EXPECT_EQ(manager_->Resize(3).code(), StatusCode::kInvalidArgument);
}

TEST_P(BlockManagerContractTest, ReadBlocksConcatenatesInRequestOrder) {
  ASSERT_OK(manager_->Resize(8));
  for (const uint64_t id : {1, 2, 3, 6}) {
    std::vector<double> in(kBlockSize);
    for (uint64_t s = 0; s < kBlockSize; ++s) {
      in[s] = static_cast<double>(id * 100 + s);
    }
    ASSERT_OK(manager_->WriteBlock(id, in));
  }
  // A consecutive run (vectored on the file backend), a scattered id, a
  // repeat and a fresh (zero) block.
  const std::vector<uint64_t> ids{1, 2, 3, 6, 1, 5};
  std::vector<double> out(ids.size() * kBlockSize, -1.0);
  ASSERT_OK(manager_->ReadBlocks(ids, out));
  for (size_t i = 0; i < ids.size(); ++i) {
    for (uint64_t s = 0; s < kBlockSize; ++s) {
      const double expected =
          ids[i] == 5 ? 0.0 : static_cast<double>(ids[i] * 100 + s);
      EXPECT_DOUBLE_EQ(out[i * kBlockSize + s], expected)
          << "segment " << i << " slot " << s;
    }
  }
  EXPECT_EQ(manager_->stats().block_reads, ids.size());
}

TEST_P(BlockManagerContractTest, ReadBlocksValidatesSizeAndRange) {
  const std::vector<uint64_t> ids{0, 1};
  std::vector<double> small(kBlockSize);
  EXPECT_EQ(manager_->ReadBlocks(ids, small).code(),
            StatusCode::kInvalidArgument);
  const std::vector<uint64_t> bad{0, 4};
  std::vector<double> out(2 * kBlockSize);
  EXPECT_EQ(manager_->ReadBlocks(bad, out).code(), StatusCode::kOutOfRange);
  // The empty request is a no-op.
  ASSERT_OK(manager_->ReadBlocks({}, {}));
}

TEST_P(BlockManagerContractTest, StatsCountBlockIo) {
  std::vector<double> buf(kBlockSize, 1.0);
  ASSERT_OK(manager_->WriteBlock(0, buf));
  ASSERT_OK(manager_->WriteBlock(1, buf));
  ASSERT_OK(manager_->ReadBlock(0, buf));
  EXPECT_EQ(manager_->stats().block_writes, 2u);
  EXPECT_EQ(manager_->stats().block_reads, 1u);
  manager_->stats().Reset();
  EXPECT_EQ(manager_->stats().total_blocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, BlockManagerContractTest,
                         ::testing::Values(Backend::kMemory, Backend::kFile));

TEST(FileBlockManagerTest, PersistsAcrossReopen) {
  TempDir dir;
  const std::string path = dir.File("persist.bin");
  std::vector<double> in{3.5, -1.25};
  {
    ASSERT_OK_AND_ASSIGN(auto manager, FileBlockManager::Open(path, 2));
    ASSERT_OK(manager->Resize(3));
    ASSERT_OK(manager->WriteBlock(2, in));
    ASSERT_OK(manager->Sync());
  }
  {
    ASSERT_OK_AND_ASSIGN(auto manager, FileBlockManager::Open(path, 2));
    EXPECT_EQ(manager->num_blocks(), 3u);
    std::vector<double> out(2);
    ASSERT_OK(manager->ReadBlock(2, out));
    testing::ExpectNear(in, out);
  }
}

TEST(FileBlockManagerTest, RejectsMisalignedExistingFile) {
  TempDir dir;
  const std::string path = dir.File("misaligned.bin");
  {
    ASSERT_OK_AND_ASSIGN(auto manager, FileBlockManager::Open(path, 3));
    ASSERT_OK(manager->Resize(1));  // 24 bytes
  }
  EXPECT_FALSE(FileBlockManager::Open(path, 2).ok());  // 24 % 16 != 0
}

TEST(FileBlockManagerTest, RejectsZeroBlockSize) {
  TempDir dir;
  EXPECT_FALSE(FileBlockManager::Open(dir.File("z.bin"), 0).ok());
}

TEST(FileBlockManagerTest, RejectsBlockSizeWhoseByteSizeOverflows) {
  TempDir dir;
  const auto result =
      FileBlockManager::Open(dir.File("huge.bin"), ~uint64_t{0} / 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FileBlockManagerTest, RejectsResizeBeyondAddressableRange) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto manager,
                       FileBlockManager::Open(dir.File("r.bin"), 1024));
  // 2^61 blocks * 8 KiB each overflows both uint64_t and off_t; the old
  // arithmetic wrapped around and ftruncate silently shrank the mapping.
  const Status status = manager->Resize(uint64_t{1} << 61);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->num_blocks(), 0u);  // device unchanged
  ASSERT_OK(manager->Resize(2));         // still usable
  EXPECT_EQ(manager->num_blocks(), 2u);
}

TEST(IoStatsTest, Arithmetic) {
  IoStats a{10, 5, 100, 50};
  IoStats b{4, 2, 40, 20};
  const IoStats diff = a - b;
  EXPECT_EQ(diff.block_reads, 6u);
  EXPECT_EQ(diff.block_writes, 3u);
  EXPECT_EQ(diff.coeff_reads, 60u);
  EXPECT_EQ(diff.coeff_writes, 30u);
  EXPECT_EQ(diff.total_blocks(), 9u);
  EXPECT_EQ(diff.total_coeffs(), 90u);
  IoStats sum = b;
  sum += b;
  EXPECT_EQ(sum.block_reads, 8u);
  EXPECT_FALSE(sum == b);
}

}  // namespace
}  // namespace shiftsplit
