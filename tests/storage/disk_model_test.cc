#include "shiftsplit/storage/disk_model.h"

#include <gtest/gtest.h>

namespace shiftsplit {
namespace {

TEST(DiskModelTest, ZeroIoCostsNothing) {
  EXPECT_DOUBLE_EQ(DiskModel::Circa2005(4096).EstimateMs(IoStats{}), 0.0);
}

TEST(DiskModelTest, AccessDominatedRegime) {
  // 1000 block accesses on the 2005 model: positioning dominates.
  DiskModel disk = DiskModel::Circa2005(4096);
  IoStats stats{600, 400, 0, 0};
  const double ms = disk.EstimateMs(stats);
  EXPECT_GT(ms, 1000 * disk.access_ms * 0.99);
  // Transfer of 4 MiB at 60 MiB/s adds ~65 ms.
  EXPECT_NEAR(ms, 1000 * disk.access_ms + 65.1, 1.0);
}

TEST(DiskModelTest, SsdIsOrdersOfMagnitudeFaster) {
  IoStats stats{5000, 5000, 0, 0};
  const double hdd = DiskModel::Circa2005(4096).EstimateMs(stats);
  const double ssd = DiskModel::ModernSsd(4096).EstimateMs(stats);
  EXPECT_GT(hdd / ssd, 50.0);
}

TEST(DiskModelTest, ScalesLinearlyWithBlocks) {
  DiskModel disk = DiskModel::Circa2005(8192);
  IoStats one{1, 0, 0, 0};
  IoStats ten{10, 0, 0, 0};
  EXPECT_NEAR(disk.EstimateMs(ten), 10.0 * disk.EstimateMs(one), 1e-9);
}

}  // namespace
}  // namespace shiftsplit
