// Live-socket suite for the network front-end (DESIGN.md §13): end-to-end
// bit-identity of TCP answers vs in-process answers across drain states,
// degraded answers' bounds over the wire, deadline mapping, admission
// control, hostile frames, graceful shutdown and crash recovery of
// acknowledged writes.
//
// Every test binds an ephemeral loopback port, so suites run concurrently.
// Bit-identity feeds dyadic-exact deltas, like the sharded suite: with them
// every intermediate is exactly representable, so a bitwise mismatch
// between the socket path and the in-process path is a genuine protocol or
// routing bug, not rounding.

#include "shiftsplit/net/cube_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/net/cube_client.h"
#include "shiftsplit/net/cube_registry.h"
#include "shiftsplit/net/wire.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/sharded_cube.h"
#include "shiftsplit/util/random.h"
#include "testing.h"

namespace shiftsplit {
namespace net {
namespace {

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

std::filesystem::path MakeTempDir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("shiftsplit_net_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Opens an on-disk monolithic serving cube under a fresh temp dir.
struct MonoFixture {
  std::filesystem::path dir;
  std::shared_ptr<ServingCube> serving;

  static MonoFixture Create(const char* tag, std::vector<uint32_t> log_dims,
                            const ServingCube::Options& options) {
    MonoFixture f;
    f.dir = MakeTempDir(tag);
    WaveletCube::Options cube_options;
    auto cube = WaveletCube::CreateOnDisk(f.dir.string(), std::move(log_dims),
                                          cube_options);
    if (!cube.ok()) {
      ADD_FAILURE() << cube.status();
      return f;
    }
    auto serving =
        ServingCube::AttachDurable(std::move(*cube), f.dir.string(), options);
    if (!serving.ok()) {
      ADD_FAILURE() << serving.status();
      return f;
    }
    f.serving = std::shared_ptr<ServingCube>(std::move(*serving));
    return f;
  }
};

/// A running server over a shared registry, torn down in reverse order.
struct ServerFixture {
  std::shared_ptr<CubeRegistry> registry;
  std::unique_ptr<CubeServer> server;

  static ServerFixture Start(CubeServer::Options options = {}) {
    ServerFixture f;
    f.registry = std::make_shared<CubeRegistry>();
    options.num_threads = options.num_threads == 0 ? 2 : options.num_threads;
    f.server = std::make_unique<CubeServer>(f.registry, options);
    const Status st = f.server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return f;
  }

  CubeClient Client(CubeClient::Options options = {}) const {
    return CubeClient("127.0.0.1", server->port(), options);
  }
};

CubeClient::Options NoRetry() {
  CubeClient::Options options;
  options.retry.max_retries = 0;
  return options;
}

// ---------------------------------------------------------------------------
// Lifecycle.

TEST(CubeServerTest, StartPingStopIsCleanAndIdempotent) {
  auto fx = ServerFixture::Start();
  ASSERT_NE(fx.server->port(), 0);
  auto client = fx.Client();
  ASSERT_OK(client.Ping());
  ASSERT_OK(client.Ping());

  ASSERT_OK_AND_ASSIGN(const StatsReply stats, client.Stats());
  uint64_t requests = 0;
  bool saw_open_cubes = false;
  for (const auto& [key, value] : stats.counters) {
    if (key == "requests") requests = value;
    if (key == "open_cubes") {
      saw_open_cubes = true;
      EXPECT_EQ(value, 0u);
    }
  }
  EXPECT_GE(requests, 2u);
  EXPECT_TRUE(saw_open_cubes);

  fx.server->Stop();
  fx.server->Stop();  // idempotent
  auto late = fx.Client(NoRetry());
  EXPECT_FALSE(late.Ping().ok());
}

TEST(CubeServerTest, MissingCubeSurfacesNotFoundOverTheWire) {
  auto fx = ServerFixture::Start();
  auto client = fx.Client(NoRetry());
  const std::vector<uint64_t> p{0, 0};
  const auto result = client.Point("nope", p);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The server stayed healthy: an application error is not a protocol one.
  ASSERT_OK(client.Ping());
  EXPECT_EQ(fx.server->stats().protocol_errors, 0u);
}

TEST(CubeServerTest, OpenAndCloseCubeThroughTheRegistryLifecycle) {
  ServingCube::Options serving_options;
  serving_options.start_workers = false;
  auto mono = MonoFixture::Create("openclose", {3, 3}, serving_options);
  ASSERT_OK(mono.serving->Close());
  mono.serving.reset();

  auto fx = ServerFixture::Start();
  fx.registry->Configure("t", mono.dir.string());

  auto client = fx.Client(NoRetry());
  const std::vector<uint64_t> p{1, 2};
  // Not opened yet: queries miss, open is lazy via the wire op.
  EXPECT_EQ(client.Point("t", p).status().code(), StatusCode::kNotFound);
  ASSERT_OK(client.OpenCube("t"));
  ASSERT_OK(client.OpenCube("t"));  // reopen returns the live handle
  ASSERT_OK_AND_ASSIGN(const double v, client.Point("t", p));
  EXPECT_EQ(Bits(v), Bits(0.0));
  ASSERT_OK(client.CloseCube("t"));
  EXPECT_EQ(client.Point("t", p).status().code(), StatusCode::kNotFound);
  fx.server->Stop();
}

// ---------------------------------------------------------------------------
// End-to-end bit-identity: for the same seeded workload, TCP answers equal
// the in-process answers on the very same cube instance, bit for bit — in
// the fully-buffered state, mid-stream, and after a full drain.

TEST(CubeServerTest, TcpAnswersAreBitIdenticalToInProcessAcrossDrainStates) {
  ServingCube::Options serving_options;
  serving_options.start_workers = false;  // drain only when the test says so
  auto mono = MonoFixture::Create("bitid", {4, 3}, serving_options);

  auto fx = ServerFixture::Start();
  ASSERT_OK(
      fx.registry->Insert("cube", ServeHandle::Wrap(mono.serving)));
  auto client = fx.Client();

  Xoshiro256 rng(0x6e657431);
  auto check_all = [&](const char* state) {
    for (uint64_t x = 0; x < 16; ++x) {
      for (uint64_t y = 0; y < 8; ++y) {
        const std::vector<uint64_t> p{x, y};
        ASSERT_OK_AND_ASSIGN(const double over_tcp, client.Point("cube", p));
        ASSERT_OK_AND_ASSIGN(const double in_process,
                             mono.serving->PointQuery(p));
        ASSERT_EQ(Bits(over_tcp), Bits(in_process))
            << state << " point (" << x << "," << y << ")";
      }
    }
    for (int i = 0; i < 16; ++i) {
      std::vector<uint64_t> lo{rng.NextBounded(16), rng.NextBounded(8)};
      std::vector<uint64_t> hi{lo[0] + rng.NextBounded(16 - lo[0]),
                               lo[1] + rng.NextBounded(8 - lo[1])};
      ASSERT_OK_AND_ASSIGN(const double over_tcp,
                           client.Sum("cube", lo, hi));
      ASSERT_OK_AND_ASSIGN(const double in_process,
                           mono.serving->RangeSum(lo, hi));
      ASSERT_EQ(Bits(over_tcp), Bits(in_process)) << state << " sum " << i;
    }
  };

  // Phase 1: writes over TCP, everything still buffered.
  for (int i = 0; i < 48; ++i) {
    const std::vector<uint64_t> c{rng.NextBounded(16), rng.NextBounded(8)};
    const double delta =
        static_cast<double>(static_cast<int64_t>(rng.NextBounded(17)) - 8);
    ASSERT_OK(client.Add("cube", c, delta));
  }
  const std::vector<uint64_t> origin{4, 2};
  const std::vector<uint64_t> dims{4, 2};
  std::vector<double> values;
  for (int i = 0; i < 8; ++i) {
    values.push_back(
        static_cast<double>(static_cast<int64_t>(rng.NextBounded(9)) - 4));
  }
  ASSERT_OK(client.Update("cube", origin, dims, values));
  EXPECT_GT(mono.serving->pending_deltas(), 0u);
  check_all("buffered");

  // Phase 2: fully drained.
  ASSERT_OK(mono.serving->DrainAll());
  EXPECT_EQ(mono.serving->pending_deltas(), 0u);
  check_all("drained");

  // Phase 3: drained store plus a fresh buffered tail.
  for (int i = 0; i < 24; ++i) {
    const std::vector<uint64_t> c{rng.NextBounded(16), rng.NextBounded(8)};
    const double delta =
        static_cast<double>(static_cast<int64_t>(rng.NextBounded(17)) - 8);
    ASSERT_OK(client.Add("cube", c, delta));
  }
  EXPECT_GT(mono.serving->pending_deltas(), 0u);
  check_all("mixed");

  fx.server->Stop();
  ASSERT_OK(fx.registry->CloseAll());
}

// ---------------------------------------------------------------------------
// Degraded answers: a sharded cube with a crashed shard answers an
// approx-tolerant query over TCP with the same value, bound and skip set as
// the in-process degradable path — bit-identically — while the exact path
// surfaces kUnavailable without collapsing the code.

TEST(CubeServerTest, DegradedShardedAnswersTravelWithTheirBounds) {
  auto dir = MakeTempDir("degraded");
  ShardedCube::Options options;
  options.supervise = false;  // a crashed shard must stay down
  options.serving.oversubscribe = true;
  WaveletCube::Options cube_options;
  auto created = ShardedCube::CreateOnDisk(dir.string(), {5, 3}, 4,
                                           cube_options, options);
  ASSERT_TRUE(created.ok()) << created.status();
  std::shared_ptr<ShardedCube> sharded(std::move(*created));

  Xoshiro256 rng(0x6e657432);
  for (int i = 0; i < 96; ++i) {
    const std::vector<uint64_t> c{rng.NextBounded(32), rng.NextBounded(8)};
    const double delta =
        static_cast<double>(static_cast<int64_t>(rng.NextBounded(17)) - 8);
    ASSERT_OK(sharded->Add(c, delta));
  }
  ASSERT_OK(sharded->DrainAll());
  ASSERT_OK(sharded->shard_for_test(1)->CrashForTest());

  auto fx = ServerFixture::Start();
  ASSERT_OK(fx.registry->Insert("s", ServeHandle::Wrap(sharded)));
  auto client = fx.Client(NoRetry());

  const std::vector<uint64_t> lo{0, 0};
  const std::vector<uint64_t> hi{31, 7};
  const double inf = std::numeric_limits<double>::infinity();
  ASSERT_OK_AND_ASSIGN(const DegradedResult over_tcp,
                       client.SumDegraded("s", lo, hi, inf));
  QueryOptions in_process_options;
  in_process_options.max_error = inf;
  ASSERT_OK_AND_ASSIGN(const DegradedResult in_process,
                       sharded->RangeSum(lo, hi, in_process_options));
  EXPECT_FALSE(over_tcp.exact());
  EXPECT_EQ(Bits(over_tcp.value), Bits(in_process.value));
  EXPECT_EQ(Bits(over_tcp.error_bound), Bits(in_process.error_bound));
  EXPECT_EQ(over_tcp.reason, in_process.reason);
  EXPECT_EQ(over_tcp.shards_missing, in_process.shards_missing);
  ASSERT_EQ(over_tcp.shards_missing.size(), 1u);
  EXPECT_EQ(over_tcp.shards_missing[0], 1u);
  // track_energy gives a finite bound; it must survive the wire as-is.
  EXPECT_TRUE(std::isfinite(over_tcp.error_bound));

  // The exact path refuses — and the code crosses the wire untouched.
  const auto exact = client.Sum("s", lo, hi);
  ASSERT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kUnavailable);

  // A point on a healthy shard still answers exactly over TCP.
  const std::vector<uint64_t> healthy_point{2, 3};  // shard 0
  ASSERT_OK_AND_ASSIGN(const double v, client.Point("s", healthy_point));
  ASSERT_OK_AND_ASSIGN(const double w, sharded->PointQuery(healthy_point));
  EXPECT_EQ(Bits(v), Bits(w));

  fx.server->Stop();
}

// ---------------------------------------------------------------------------
// Deadlines: the frame's deadline_ms is anchored at frame arrival, so a
// request that out-waits its budget in the queue is answered
// kDeadlineExceeded before any cube work.

TEST(CubeServerTest, DeadlineExpiredBeforeDispatchIsCounted) {
  CubeServer::Options options;
  options.dispatch_delay_for_test = std::chrono::milliseconds(60);
  auto fx = ServerFixture::Start(options);
  auto client = fx.Client(NoRetry());

  const Status st = client.Ping(/*deadline_ms=*/10);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_GE(fx.server->stats().deadline_expired_before_dispatch, 1u);

  // Without a deadline the same delayed request succeeds.
  ASSERT_OK(client.Ping());
  fx.server->Stop();
}

// ---------------------------------------------------------------------------
// Admission control: a request beyond max_inflight_requests bounces with an
// immediate kUnavailable error frame while the connection stays healthy.

TEST(CubeServerTest, SaturatedAdmissionFastRejectsWithUnavailable) {
  CubeServer::Options options;
  options.max_inflight_requests = 1;
  options.num_threads = 2;
  options.dispatch_delay_for_test = std::chrono::milliseconds(400);
  auto fx = ServerFixture::Start(options);

  // Connections are handed to the loops round-robin and loop 0 also owns
  // the listener, so pin an idle connection onto loop 0 first: the slow
  // request then blocks loop 1 while loop 0 stays free to accept and serve
  // the probe below.
  auto pin = fx.Client(NoRetry());
  ASSERT_OK(pin.Ping());

  // Occupy the only in-flight slot from loop 1 (its thread sleeps in
  // dispatch while holding the admission ticket).
  std::atomic<bool> slow_done{false};
  std::thread slow([&] {
    auto c = fx.Client(NoRetry());
    EXPECT_OK(c.Ping());
    slow_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto probe = fx.Client(NoRetry());
  const Status st = probe.Ping();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  slow.join();
  EXPECT_TRUE(slow_done.load());
  EXPECT_GE(fx.server->stats().rejected_at_admission, 1u);

  // The bounced connection is still healthy once the pressure clears.
  ASSERT_OK(probe.Ping());
  fx.server->Stop();
}

TEST(CubeServerTest, ConnectionCapAcceptsAndImmediatelyCloses) {
  CubeServer::Options options;
  options.max_connections = 1;
  auto fx = ServerFixture::Start(options);

  auto first = fx.Client(NoRetry());
  ASSERT_OK(first.Ping());  // holds the only slot

  auto second = fx.Client(NoRetry());
  const Status st = second.Ping();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_GE(fx.server->stats().connections_rejected, 1u);

  // The admitted connection keeps serving.
  ASSERT_OK(first.Ping());
  fx.server->Stop();
}

// ---------------------------------------------------------------------------
// Hostile frames. Each case runs on a fresh raw socket; afterwards the
// server must still serve and the cube must be unpoisoned.

class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawSocket() { Close(); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return connected_; }

  void Send(std::span<const uint8_t> bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  /// True when the server closed the connection (recv == 0) within the
  /// receive timeout.
  bool WaitForClose() {
    uint8_t buf[64];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
      // Drain whatever the server wrote before it closed.
    }
  }

  /// Reads one full frame; empty on failure.
  std::vector<uint8_t> RecvFrame() {
    std::vector<uint8_t> frame(kHeaderSize);
    if (!RecvAll(frame.data(), kHeaderSize)) return {};
    const auto header = DecodeHeader(frame);
    if (!header.ok()) return {};
    frame.resize(kHeaderSize + header->payload_len + kTrailerSize);
    if (!RecvAll(frame.data() + kHeaderSize,
                 header->payload_len + kTrailerSize)) {
      return {};
    }
    return frame;
  }

 private:
  bool RecvAll(uint8_t* buf, size_t size) {
    size_t off = 0;
    while (off < size) {
      const ssize_t n = ::recv(fd_, buf + off, size - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
};

TEST(CubeServerTest, HostileFramesCloseTheConnectionWithoutPoisoningAnything) {
  ServingCube::Options serving_options;
  serving_options.start_workers = false;
  auto mono = MonoFixture::Create("hostile", {3, 3}, serving_options);

  auto fx = ServerFixture::Start();
  ASSERT_OK(fx.registry->Insert("cube", ServeHandle::Wrap(mono.serving)));
  auto client = fx.Client();
  const std::vector<uint64_t> cell{1, 1};
  ASSERT_OK(client.Add("cube", cell, 2.5));

  FrameHeader ping;
  ping.opcode = Opcode::kPing;
  ping.request_id = 7;
  const auto good = EncodeFrame(ping, {});

  uint64_t expected_protocol_errors = 0;

  {  // Bad magic: close, no reply.
    RawSocket s(fx.server->port());
    ASSERT_TRUE(s.connected());
    auto frame = good;
    frame[0] ^= 0xff;
    s.Send(frame);
    EXPECT_TRUE(s.WaitForClose());
    ++expected_protocol_errors;
  }
  {  // Oversized payload_len: close before any allocation.
    RawSocket s(fx.server->port());
    ASSERT_TRUE(s.connected());
    auto frame = good;
    frame[20] = 0xff;
    frame[21] = 0xff;
    frame[22] = 0xff;
    frame[23] = 0x7f;
    s.Send(frame);
    EXPECT_TRUE(s.WaitForClose());
    ++expected_protocol_errors;
  }
  {  // CRC mismatch on a full frame: close.
    RawSocket s(fx.server->port());
    ASSERT_TRUE(s.connected());
    auto frame = good;
    frame[kHeaderSize] ^= 0x01;  // first CRC trailer byte (empty payload)
    s.Send(frame);
    EXPECT_TRUE(s.WaitForClose());
    ++expected_protocol_errors;
  }
  {  // Truncated header + disconnect: a clean close, not a protocol error.
    RawSocket s(fx.server->port());
    ASSERT_TRUE(s.connected());
    s.Send(std::span(good.data(), 10));
    s.Close();
  }
  {  // Mid-frame disconnect after a valid header: same.
    FrameHeader big;
    big.opcode = Opcode::kAdd;
    const auto frame = EncodeFrame(big, std::vector<uint8_t>(64, 0));
    RawSocket s(fx.server->port());
    ASSERT_TRUE(s.connected());
    s.Send(std::span(frame.data(), kHeaderSize + 16));
    s.Close();
  }
  {  // Unknown opcode, well-framed: error reply, connection survives.
    RawSocket s(fx.server->port());
    ASSERT_TRUE(s.connected());
    FrameHeader unknown;
    unknown.opcode = static_cast<Opcode>(42);
    unknown.request_id = 9;
    s.Send(EncodeFrame(unknown, {}));
    const auto reply = s.RecvFrame();
    ASSERT_FALSE(reply.empty());
    ASSERT_OK(VerifyFrame(reply));
    ASSERT_OK_AND_ASSIGN(const FrameHeader reply_header, DecodeHeader(reply));
    EXPECT_EQ(reply_header.opcode, Opcode::kError);
    EXPECT_EQ(reply_header.request_id, 9u);
    ASSERT_OK_AND_ASSIGN(
        const ErrorReply remote,
        DecodeErrorReply(std::span(reply.data() + kHeaderSize,
                                   reply_header.payload_len)));
    EXPECT_EQ(remote.status.code(), StatusCode::kInvalidArgument);
    // Same connection still speaks the protocol.
    s.Send(good);
    const auto pong = s.RecvFrame();
    ASSERT_FALSE(pong.empty());
    ASSERT_OK_AND_ASSIGN(const FrameHeader pong_header, DecodeHeader(pong));
    EXPECT_EQ(pong_header.opcode, Opcode::kReply);
    EXPECT_EQ(pong_header.request_id, 7u);
  }

  // Give the loops a beat to retire the closed connections.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GE(fx.server->stats().protocol_errors, expected_protocol_errors);

  // The server still serves, and no hostile byte reached the cube: it is
  // healthy and the acked delta still reads back exactly.
  ASSERT_OK(client.Ping());
  EXPECT_EQ(mono.serving->health(), ShardHealth::kHealthy);
  ASSERT_OK_AND_ASSIGN(const double v, client.Point("cube", cell));
  EXPECT_EQ(Bits(v), Bits(2.5));

  fx.server->Stop();
  ASSERT_OK(fx.registry->CloseAll());
}

// ---------------------------------------------------------------------------
// Ack durability: a write acknowledged over TCP survives kill -9 — the
// reopened cube serves it even though the dirty pages never hit the disk.

TEST(CubeServerTest, AcknowledgedWritesSurviveACrashBetweenAckAndDrain) {
  ServingCube::Options serving_options;
  serving_options.start_workers = false;  // nothing drains: pure log replay
  auto mono = MonoFixture::Create("ackcrash", {4, 3}, serving_options);

  auto fx = ServerFixture::Start();
  ASSERT_OK(fx.registry->Insert("c", ServeHandle::Wrap(mono.serving)));
  auto client = fx.Client();

  const std::vector<uint64_t> cell{9, 4};
  ASSERT_OK(client.Add("c", cell, 1.25));
  const std::vector<uint64_t> origin{2, 2};
  const std::vector<uint64_t> dims{2, 2};
  const std::vector<double> values{0.5, -0.25, 4.0, 0.0};
  ASSERT_OK(client.Update("c", origin, dims, values));

  // kill -9 between the acks and any drain; the registry entry dies with
  // the process image.
  ASSERT_OK(mono.serving->CrashForTest());
  (void)fx.registry->CloseCube("c");  // poisoned close may fail; name is gone
  mono.serving.reset();

  // "Restart": reopen the directory through crash recovery + delta-log
  // replay, re-register, and read the acknowledged writes back over TCP.
  auto reopened = ServingCube::OpenOnDisk(mono.dir.string(), 256);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::shared_ptr<ServingCube> serving(std::move(*reopened));
  ASSERT_OK(fx.registry->Insert("c", ServeHandle::Wrap(serving)));

  ASSERT_OK_AND_ASSIGN(const double v, client.Point("c", cell));
  EXPECT_EQ(Bits(v), Bits(1.25));
  const std::vector<uint64_t> box_hi{3, 3};
  ASSERT_OK_AND_ASSIGN(const double box, client.Sum("c", origin, box_hi));
  EXPECT_EQ(Bits(box), Bits(0.5 - 0.25 + 4.0));

  fx.server->Stop();
  ASSERT_OK(fx.registry->CloseAll());
}

// ---------------------------------------------------------------------------
// Graceful drain: Stop() finishes in-flight work, flushes pending response
// bytes, and leaves the registry's cubes to their owner.

TEST(CubeServerTest, StopDrainsInFlightRepliesBeforeClosing) {
  ServingCube::Options serving_options;
  serving_options.start_workers = false;
  auto mono = MonoFixture::Create("drain", {3, 3}, serving_options);

  CubeServer::Options options;
  options.dispatch_delay_for_test = std::chrono::milliseconds(80);
  auto fx = ServerFixture::Start(options);
  ASSERT_OK(fx.registry->Insert("c", ServeHandle::Wrap(mono.serving)));

  // A request in flight while Stop() runs must still be answered: the drain
  // waits for the handler and flushes the reply before the close.
  std::atomic<bool> got_reply{false};
  std::thread in_flight([&] {
    auto c = fx.Client(NoRetry());
    const std::vector<uint64_t> cell{1, 1};
    const Status st = c.Add("c", cell, 3.0);
    got_reply.store(st.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  fx.server->Stop();
  in_flight.join();
  EXPECT_TRUE(got_reply.load());

  // The cube outlives the server — the acked write is in the buffer.
  ASSERT_OK_AND_ASSIGN(const double v,
                       mono.serving->PointQuery(std::vector<uint64_t>{1, 1}));
  EXPECT_EQ(Bits(v), Bits(3.0));
  ASSERT_OK(fx.registry->CloseAll());
}

}  // namespace
}  // namespace net
}  // namespace shiftsplit
