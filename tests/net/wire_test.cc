#include "shiftsplit/net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace shiftsplit {
namespace net {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) out.push_back(static_cast<uint8_t>(v));
  return out;
}

TEST(WireFrameTest, HeaderAndCrcRoundTrip) {
  FrameHeader header;
  header.opcode = Opcode::kPoint;
  header.request_id = 0x1122334455667788ull;
  header.deadline_ms = 250;
  const std::vector<uint8_t> payload = Bytes({1, 2, 3, 4, 5});
  const auto frame = EncodeFrame(header, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size() + kTrailerSize);

  const auto decoded = DecodeHeader(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->opcode, Opcode::kPoint);
  EXPECT_EQ(decoded->request_id, header.request_id);
  EXPECT_EQ(decoded->deadline_ms, 250u);
  EXPECT_EQ(decoded->payload_len, payload.size());
  EXPECT_TRUE(VerifyFrame(frame).ok());
}

TEST(WireFrameTest, TruncatedHeaderIsRejected) {
  const auto frame = EncodeFrame(FrameHeader{}, {});
  for (size_t len = 0; len < kHeaderSize; ++len) {
    const auto r = DecodeHeader(std::span(frame.data(), len));
    EXPECT_FALSE(r.ok()) << "length " << len;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireFrameTest, BadMagicVersionFlagsAreRejected) {
  auto frame = EncodeFrame(FrameHeader{}, {});
  auto corrupt = frame;
  corrupt[0] ^= 0xff;  // magic
  EXPECT_FALSE(DecodeHeader(corrupt).ok());
  corrupt = frame;
  corrupt[4] ^= 0xff;  // version
  EXPECT_FALSE(DecodeHeader(corrupt).ok());
  corrupt = frame;
  corrupt[7] = 1;  // reserved flags
  EXPECT_FALSE(DecodeHeader(corrupt).ok());
}

TEST(WireFrameTest, OversizedPayloadLenIsRejectedBeforeAllocation) {
  auto frame = EncodeFrame(FrameHeader{}, {});
  // Stamp an absurd payload_len (bytes 20..23).
  frame[20] = 0xff;
  frame[21] = 0xff;
  frame[22] = 0xff;
  frame[23] = 0x7f;
  const auto r = DecodeHeader(frame);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, CrcMismatchIsChecksumMismatch) {
  FrameHeader header;
  header.opcode = Opcode::kAdd;
  auto frame = EncodeFrame(header, Bytes({9, 9, 9}));
  frame[kHeaderSize + 1] ^= 0x40;  // flip a payload bit
  const Status st = VerifyFrame(frame);
  EXPECT_EQ(st.code(), StatusCode::kChecksumMismatch);
  // Corrupting the trailer itself must fail too.
  auto frame2 = EncodeFrame(header, Bytes({9, 9, 9}));
  frame2.back() ^= 0x01;
  EXPECT_EQ(VerifyFrame(frame2).code(), StatusCode::kChecksumMismatch);
}

TEST(WirePayloadTest, ReaderStopsAtEveryTruncation) {
  PayloadWriter w;
  w.PutString("cube");
  w.PutF64(1.5);
  w.PutCoords(std::vector<uint64_t>{7, 8});
  const auto full = w.bytes();
  // Every proper prefix must fail decoding, never crash or over-read.
  for (size_t len = 0; len < full.size(); ++len) {
    const auto r =
        DecodeAddRequest(std::span(full.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix " << len;
  }
  const auto ok = DecodeAddRequest(full);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->cube, "cube");
  EXPECT_EQ(ok->delta, 1.5);
  EXPECT_EQ(ok->coords, (std::vector<uint64_t>{7, 8}));
}

TEST(WirePayloadTest, TrailingJunkIsRejected) {
  auto body = EncodeCubeNameRequest({"t"});
  body.push_back(0);
  EXPECT_FALSE(DecodeCubeNameRequest(body).ok());
}

TEST(WireRequestTest, PointAndSumRoundTripBitIdentically) {
  PointRequest p;
  p.cube = "temperature";
  p.point = {123, 456, 789};
  p.max_error = 0.0625;
  const auto decoded = DecodePointRequest(EncodePointRequest(p));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->cube, p.cube);
  EXPECT_EQ(decoded->point, p.point);
  EXPECT_EQ(std::bit_cast<uint64_t>(decoded->max_error),
            std::bit_cast<uint64_t>(p.max_error));

  SumRequest s;
  s.cube = "precip";
  s.lo = {0, 1};
  s.hi = {31, 63};
  s.max_error = std::numeric_limits<double>::infinity();
  const auto ds = DecodeSumRequest(EncodeSumRequest(s));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->lo, s.lo);
  EXPECT_EQ(ds->hi, s.hi);
  EXPECT_TRUE(std::isinf(ds->max_error));

  SumRequest bad = s;
  bad.hi = {31};
  EXPECT_FALSE(DecodeSumRequest(EncodeSumRequest(bad)).ok());
}

TEST(WireRequestTest, UpdateRoundTripAndVolumeValidation) {
  UpdateRequest u;
  u.cube = "c";
  u.origin = {4, 8};
  u.dims = {2, 2};
  u.values = {0.5, -1.25, 3.75, 0.0};
  const auto body = EncodeUpdateRequest(u);
  const auto decoded = DecodeUpdateRequest(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->origin, u.origin);
  EXPECT_EQ(decoded->dims, u.dims);
  ASSERT_EQ(decoded->values.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded->values[i]),
              std::bit_cast<uint64_t>(u.values[i]));
  }

  // A value count that disagrees with the box volume is rejected.
  UpdateRequest bad = u;
  bad.values.pop_back();
  EXPECT_FALSE(DecodeUpdateRequest(EncodeUpdateRequest(bad)).ok());
  // Zero-extent boxes are rejected.
  UpdateRequest zero = u;
  zero.dims = {0, 2};
  zero.values.clear();
  EXPECT_FALSE(DecodeUpdateRequest(EncodeUpdateRequest(zero)).ok());
}

TEST(WireReplyTest, ExactQueryReplyRoundTripsBitIdentically) {
  // A value with a messy mantissa: bit-for-bit equality is the contract.
  const double value = 0.1 + 0.2;
  const auto decoded = DecodeQueryReply(
      EncodeQueryReply(QueryReply::Exact(value)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->degraded);
  EXPECT_EQ(std::bit_cast<uint64_t>(decoded->value),
            std::bit_cast<uint64_t>(value));
}

TEST(WireReplyTest, DegradedQueryReplyRoundTripsEverything) {
  DegradedResult d;
  d.value = -17.375;
  d.error_bound = 2.5e-3;
  d.blocks_missing = 42;
  d.reason = DegradedReason::kShardUnavailable;
  d.shards_missing = {1, 3};
  const auto decoded =
      DecodeQueryReply(EncodeQueryReply(QueryReply::Degraded(d)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->degraded);
  const DegradedResult back = decoded->ToDegradedResult();
  EXPECT_EQ(std::bit_cast<uint64_t>(back.value),
            std::bit_cast<uint64_t>(d.value));
  EXPECT_EQ(std::bit_cast<uint64_t>(back.error_bound),
            std::bit_cast<uint64_t>(d.error_bound));
  EXPECT_EQ(back.blocks_missing, 42u);
  EXPECT_EQ(back.reason, DegradedReason::kShardUnavailable);
  EXPECT_EQ(back.shards_missing, d.shards_missing);
  EXPECT_FALSE(back.exact());
}

TEST(WireReplyTest, EveryDegradedReasonRoundTrips) {
  for (const DegradedReason reason :
       {DegradedReason::kNone, DegradedReason::kQuarantined,
        DegradedReason::kPinExhaustion, DegradedReason::kDeadline,
        DegradedReason::kUnavailable, DegradedReason::kShardUnavailable}) {
    const auto back = DegradedReasonFromWire(DegradedReasonToWire(reason));
    ASSERT_TRUE(back.ok()) << DegradedReasonToString(reason);
    EXPECT_EQ(*back, reason);
  }
  EXPECT_FALSE(DegradedReasonFromWire(250).ok());
}

TEST(WireReplyTest, StatsReplyRoundTrips) {
  StatsReply stats;
  stats.counters = {{"requests", 10}, {"rt_point_le_100us", 7},
                    {"", ~uint64_t{0}}};
  const auto decoded = DecodeStatsReply(EncodeStatsReply(stats));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->counters, stats.counters);
}

TEST(WireReplyTest, StatsCountHarderThanBodyIsRejected) {
  PayloadWriter w;
  w.PutU32(1'000'000);  // a count no 4-byte body can hold
  EXPECT_FALSE(DecodeStatsReply(w.bytes()).ok());
}

// The satellite contract: every StatusCode survives the wire error frame
// exactly — no silent collapse onto kIOError or anything else.
TEST(WireErrorTest, EveryStatusCodeRoundTripsThroughTheErrorFrame) {
  size_t checked = 0;
  for (const StatusCode code : kAllStatusCodes) {
    const Status original(code, std::string("cause: ") +
                                    StatusCodeToString(code));
    const auto decoded = DecodeErrorReply(EncodeErrorReply(original));
    ASSERT_TRUE(decoded.ok()) << StatusCodeToString(code);
    EXPECT_EQ(decoded->status.code(), code) << StatusCodeToString(code);
    EXPECT_EQ(decoded->status.message(), original.message());
    ++checked;
  }
  EXPECT_EQ(checked, std::size(kAllStatusCodes));
}

TEST(WireErrorTest, UnknownPeerStatusCodeDoesNotCollapse) {
  PayloadWriter w;
  w.PutU32(777);  // a code from some future peer
  w.PutString("novel failure");
  const auto decoded = DecodeErrorReply(w.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status.code(), StatusCode::kInternal);
  EXPECT_NE(decoded->status.message().find("777"), std::string::npos);
  EXPECT_NE(decoded->status.message().find("novel failure"),
            std::string::npos);
}

TEST(WireOpcodeTest, KnownAndUnknownOpcodes) {
  for (const Opcode op :
       {Opcode::kPing, Opcode::kOpenCube, Opcode::kCloseCube, Opcode::kPoint,
        Opcode::kSum, Opcode::kAdd, Opcode::kUpdate, Opcode::kStats,
        Opcode::kReply, Opcode::kError}) {
    EXPECT_TRUE(IsKnownOpcode(static_cast<uint8_t>(op)));
  }
  EXPECT_FALSE(IsKnownOpcode(0));
  EXPECT_FALSE(IsKnownOpcode(42));
  EXPECT_FALSE(IsKnownOpcode(255));
}

}  // namespace
}  // namespace net
}  // namespace shiftsplit
