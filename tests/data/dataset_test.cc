#include "shiftsplit/data/dataset.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace shiftsplit {
namespace {

TEST(FunctionDatasetTest, ReadsChunksFromTheFunction) {
  TensorShape shape({4, 8});
  FunctionDataset dataset(shape, [](std::span<const uint64_t> c) {
    return static_cast<double>(c[0] * 100 + c[1]);
  });
  Tensor chunk(TensorShape({2, 4}));
  std::vector<uint64_t> pos{1, 1};
  ASSERT_OK(dataset.ReadChunk(pos, &chunk));
  std::vector<uint64_t> c00{0, 0};
  EXPECT_DOUBLE_EQ(chunk.At(c00), 204.0);  // cell (2, 4)
  std::vector<uint64_t> c13{1, 3};
  EXPECT_DOUBLE_EQ(chunk.At(c13), 307.0);  // cell (3, 7)
  EXPECT_EQ(dataset.cells_read(), 8u);
}

TEST(FunctionDatasetTest, MaterializeEqualsCellFunction) {
  TensorShape shape({4, 4});
  FunctionDataset dataset(shape, [](std::span<const uint64_t> c) {
    return static_cast<double>(c[0]) - static_cast<double>(c[1]);
  });
  ASSERT_OK_AND_ASSIGN(Tensor all, dataset.Materialize());
  std::vector<uint64_t> c(2, 0);
  do {
    EXPECT_DOUBLE_EQ(all.At(c), dataset.Cell(c));
  } while (shape.Next(c));
}

TEST(FunctionDatasetTest, ValidatesChunks) {
  TensorShape shape({4, 4});
  FunctionDataset dataset(shape, [](std::span<const uint64_t>) { return 0.0; });
  Tensor too_big(TensorShape({8, 4}));
  std::vector<uint64_t> zero{0, 0};
  EXPECT_FALSE(dataset.ReadChunk(zero, &too_big).ok());
  Tensor ok_chunk(TensorShape({2, 2}));
  std::vector<uint64_t> beyond{2, 0};
  EXPECT_FALSE(dataset.ReadChunk(beyond, &ok_chunk).ok());
  Tensor wrong_d(TensorShape({4}));
  std::vector<uint64_t> zero1{0};
  EXPECT_FALSE(dataset.ReadChunk(zero1, &wrong_d).ok());
}

TEST(TensorDatasetTest, ChunksMirrorTheTensor) {
  Tensor data(TensorShape({4, 4}), testing::RandomVector(16, 91));
  TensorDataset dataset(data);
  Tensor chunk(TensorShape({2, 2}));
  std::vector<uint64_t> pos{1, 0};
  ASSERT_OK(dataset.ReadChunk(pos, &chunk));
  std::vector<uint64_t> local(2, 0);
  do {
    std::vector<uint64_t> cell{2 + local[0], local[1]};
    EXPECT_DOUBLE_EQ(chunk.At(local), data.At(cell));
  } while (chunk.shape().Next(local));
}

TEST(ChunkSourceTest, CellsReadAccumulates) {
  Tensor data(TensorShape({4, 4}));
  TensorDataset dataset(std::move(data));
  Tensor chunk(TensorShape({2, 2}));
  std::vector<uint64_t> pos{0, 0};
  ASSERT_OK(dataset.ReadChunk(pos, &chunk));
  ASSERT_OK(dataset.ReadChunk(pos, &chunk));
  EXPECT_EQ(dataset.cells_read(), 8u);
}

}  // namespace
}  // namespace shiftsplit
