#include "shiftsplit/data/temperature.h"

#include <gtest/gtest.h>

#include "shiftsplit/util/stats.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(TemperatureTest, ShapeMatchesOptions) {
  TemperatureOptions options;
  options.log_lat = 3;
  options.log_lon = 4;
  options.log_alt = 2;
  options.log_time = 5;
  auto dataset = MakeTemperatureDataset(options);
  EXPECT_EQ(dataset->shape().dims(),
            (std::vector<uint64_t>{8, 16, 4, 32}));
}

TEST(TemperatureTest, DeterministicForSeed) {
  TemperatureOptions options;
  options.log_lat = options.log_lon = options.log_alt = options.log_time = 2;
  auto a = MakeTemperatureDataset(options);
  auto b = MakeTemperatureDataset(options);
  std::vector<uint64_t> cell{1, 2, 3, 0};
  EXPECT_DOUBLE_EQ(a->Cell(cell), b->Cell(cell));
  options.seed = 999;
  auto c = MakeTemperatureDataset(options);
  EXPECT_NE(a->Cell(cell), c->Cell(cell));
}

TEST(TemperatureTest, ValuesArePhysicallyPlausible) {
  TemperatureOptions options;
  options.log_lat = 4;
  options.log_lon = 4;
  options.log_alt = 2;
  options.log_time = 4;
  auto dataset = MakeTemperatureDataset(options);
  RunningStats stats;
  std::vector<uint64_t> c(4, 0);
  do {
    stats.Add(dataset->Cell(c));
  } while (dataset->shape().Next(c));
  // Earth-ish temperatures in Celsius.
  EXPECT_GT(stats.min(), -120.0);
  EXPECT_LT(stats.max(), 70.0);
  EXPECT_GT(stats.stddev(), 5.0);  // real variation, not a constant field
}

TEST(TemperatureTest, EquatorWarmerThanPoles) {
  TemperatureOptions options;
  options.log_lat = 5;
  options.log_lon = 2;
  options.log_alt = 1;
  options.log_time = 2;
  auto dataset = MakeTemperatureDataset(options);
  double pole = 0.0, equator = 0.0;
  for (uint64_t lon = 0; lon < 4; ++lon) {
    std::vector<uint64_t> p{0, lon, 0, 0};
    std::vector<uint64_t> e{16, lon, 0, 0};
    pole += dataset->Cell(p);
    equator += dataset->Cell(e);
  }
  EXPECT_GT(equator, pole + 20.0);
}

TEST(TemperatureTest, AltitudeCoolsTheColumn) {
  auto dataset = MakeTemperatureDataset();
  std::vector<uint64_t> surface{16, 10, 0, 6};
  std::vector<uint64_t> aloft{16, 10, 7, 6};
  EXPECT_GT(dataset->Cell(surface), dataset->Cell(aloft) + 10.0);
}

}  // namespace
}  // namespace shiftsplit
