#include "shiftsplit/data/precipitation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "shiftsplit/util/stats.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(PrecipitationTest, MonthSlabShape) {
  Tensor slab = MakePrecipitationMonth(0);
  EXPECT_EQ(slab.shape().dims(), (std::vector<uint64_t>{8, 8, 32}));
}

TEST(PrecipitationTest, NonNegativeAndBursty) {
  Tensor slab = MakePrecipitationMonth(3);
  uint64_t dry = 0;
  double max = 0.0;
  for (uint64_t i = 0; i < slab.size(); ++i) {
    EXPECT_GE(slab[i], 0.0);
    if (slab[i] == 0.0) ++dry;
    max = std::max(max, slab[i]);
  }
  // Rainfall has dry days and real wet events.
  EXPECT_GT(dry, slab.size() / 10);
  EXPECT_LT(dry, slab.size() * 9 / 10);
  EXPECT_GT(max, 1.0);
}

TEST(PrecipitationTest, DeterministicPerMonth) {
  Tensor a = MakePrecipitationMonth(7);
  Tensor b = MakePrecipitationMonth(7);
  for (uint64_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  Tensor c = MakePrecipitationMonth(8);
  double diff = 0.0;
  for (uint64_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - c[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(PrecipitationTest, DatasetAgreesWithMonthSlabs) {
  const uint64_t kMonths = 3;
  auto dataset = MakePrecipitationDataset(kMonths);
  // 3 months * 32 days = 96 -> padded to 128.
  EXPECT_EQ(dataset->shape().dims(), (std::vector<uint64_t>{8, 8, 128}));
  for (uint64_t month = 0; month < kMonths; ++month) {
    Tensor slab = MakePrecipitationMonth(month);
    std::vector<uint64_t> c(3, 0);
    do {
      std::vector<uint64_t> cell{c[0], c[1], month * 32 + c[2]};
      ASSERT_DOUBLE_EQ(dataset->Cell(cell), slab.At(c));
    } while (slab.shape().Next(c));
  }
  // The padded tail is zero.
  std::vector<uint64_t> tail{0, 0, 100};
  EXPECT_DOUBLE_EQ(dataset->Cell(tail), 0.0);
}

TEST(PrecipitationTest, WinterWetterThanSummer) {
  PrecipitationOptions options;
  double winter = 0.0, summer = 0.0;
  // Month 0 (winter) vs month 6 (summer) of year one.
  Tensor w = MakePrecipitationMonth(0, options);
  Tensor s = MakePrecipitationMonth(6, options);
  for (uint64_t i = 0; i < w.size(); ++i) {
    winter += w[i];
    summer += s[i];
  }
  EXPECT_GT(winter, summer);
}

}  // namespace
}  // namespace shiftsplit
