#include "shiftsplit/data/synthetic.h"

#include <gtest/gtest.h>

#include "shiftsplit/util/stats.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "testing.h"

namespace shiftsplit {
namespace {

TEST(UniformDatasetTest, ValuesInRangeAndDeterministic) {
  auto dataset = MakeUniformDataset(TensorShape({8, 8}), -3.0, 5.0, 7);
  auto again = MakeUniformDataset(TensorShape({8, 8}), -3.0, 5.0, 7);
  std::vector<uint64_t> c(2, 0);
  do {
    const double v = dataset->Cell(c);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
    EXPECT_DOUBLE_EQ(v, again->Cell(c));
  } while (dataset->shape().Next(c));
}

TEST(UniformDatasetTest, NeighboursDiffer) {
  auto dataset = MakeUniformDataset(TensorShape({16}), 0.0, 1.0, 8);
  std::vector<uint64_t> a{3}, b{4};
  EXPECT_NE(dataset->Cell(a), dataset->Cell(b));
}

TEST(SparseDatasetTest, DensityRoughlyRespected) {
  auto dataset = MakeSparseDataset(TensorShape({64, 64}), 0.05, 0.0, 9);
  uint64_t nonzero = 0;
  std::vector<uint64_t> c(2, 0);
  do {
    if (dataset->Cell(c) != 0.0) ++nonzero;
  } while (dataset->shape().Next(c));
  EXPECT_GT(nonzero, 4096u * 0.05 * 0.5);
  EXPECT_LT(nonzero, 4096u * 0.05 * 2.0);
}

TEST(SparseDatasetTest, SkewConcentratesMassAtLowRows) {
  auto dataset = MakeSparseDataset(TensorShape({64, 16}), 0.02, 1.5, 10);
  uint64_t head = 0, tail = 0;
  std::vector<uint64_t> c(2, 0);
  do {
    if (dataset->Cell(c) != 0.0) {
      (c[0] < 8 ? head : tail) += 1;
    }
  } while (dataset->shape().Next(c));
  EXPECT_GT(head, tail);
}

TEST(SmoothDatasetTest, IsCompressible) {
  // A smooth field's wavelet energy concentrates in few coefficients: the
  // top 5% of coefficients must hold almost all the energy.
  auto dataset = MakeSmoothDataset(TensorShape({32, 32}), 11);
  ASSERT_OK_AND_ASSIGN(Tensor t, dataset->Materialize());
  ASSERT_OK(ForwardStandard(&t, Normalization::kOrthonormal));
  std::vector<double> mags(t.data().begin(), t.data().end());
  for (auto& m : mags) m = m * m;
  std::sort(mags.rbegin(), mags.rend());
  double total = 0.0, top = 0.0;
  for (size_t i = 0; i < mags.size(); ++i) {
    total += mags[i];
    if (i < mags.size() / 20) top += mags[i];
  }
  EXPECT_GT(top / total, 0.95);
}

}  // namespace
}  // namespace shiftsplit
