// Multidimensional tiling for the non-standard decomposition form (paper
// §3.2, Figure 7): tiles are height-b subtrees of the 2^d-ary quadtree of
// support intervals. A tile stores (D^b - 1)/(D - 1) nodes x (D - 1)
// coefficients (D = 2^d) at slots >= 1, plus the scaling coefficient of the
// subtree's root node at slot 0 — exactly B^d = 2^(b*d) slots per block.

#ifndef SHIFTSPLIT_TILE_NONSTANDARD_TILING_H_
#define SHIFTSPLIT_TILE_NONSTANDARD_TILING_H_

#include <vector>

#include "shiftsplit/tile/tile_layout.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"

namespace shiftsplit {

/// \brief Quadtree-subtree tiling for non-standard transformed hypercubes.
class NonstandardTiling : public TileLayout {
 public:
  /// \param d number of dimensions (>= 1)
  /// \param n log2 of the cube extent
  /// \param b log2 of the block edge (block holds 2^(b*d) slots)
  NonstandardTiling(uint32_t d, uint32_t n, uint32_t b);

  uint32_t ndim() const override { return d_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  uint64_t block_capacity() const override { return block_capacity_; }
  Result<BlockSlot> Locate(std::span<const uint64_t> address) const override;
  std::string ToString() const override;

  uint32_t n() const { return n_; }
  uint32_t b() const { return b_; }
  uint32_t num_bands() const { return num_bands_; }

  /// Quadtree row of band t's subtree roots. When b does not divide n the
  /// *top* band is short so the leaf bands stay full (see TreeTiling).
  uint32_t BandRootRow(uint32_t band) const {
    return band == 0 ? 0 : top_height_ + (band - 1) * b_;
  }

  /// The band containing quadtree row `row` (= n - level).
  uint32_t BandOfRow(uint32_t row) const {
    return row < top_height_ ? 0 : 1 + (row - top_height_) / b_;
  }

  /// \brief Locates the coefficient with the given non-standard identity.
  Result<BlockSlot> LocateCoeff(const NsCoeffId& id) const;

  /// \brief Tile + slot (always slot 0) of the scaling (average) of quadtree
  /// node (level, node). Valid only at band-root levels (n - t*b).
  Result<BlockSlot> LocateScaling(uint32_t level,
                                  std::span<const uint64_t> node) const;

  /// \brief True iff node scalings at `level` have a reserved slot.
  bool IsScalingLevel(uint32_t level) const;

  /// \brief All (level, node) scaling coordinates with reserved slots whose
  /// support cube lies within the chunk cube of edge 2^m at per-dim chunk
  /// position `chunk` (i.e. data range chunk[t]*2^m .. per dim).
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> ScalingNodesWithin(
      uint32_t m, std::span<const uint64_t> chunk) const;

  /// \brief All (level, node) scaling coordinates with reserved slots whose
  /// support strictly contains the chunk cube — the SPLIT accumulation
  /// targets among scaling slots.
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> ScalingNodesAbove(
      uint32_t m, std::span<const uint64_t> chunk) const;

 private:
  uint32_t d_;
  uint32_t n_;
  uint32_t b_;
  uint32_t top_height_;  // height of band 0
  uint32_t num_bands_;
  uint64_t num_blocks_;
  uint64_t block_capacity_;
  uint64_t coeffs_per_node_;            // 2^d - 1
  std::vector<uint64_t> band_offsets_;  // first tile id per band
  std::vector<uint64_t> depth_node_offsets_;  // lambda offset per depth
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TILE_NONSTANDARD_TILING_H_
