#include "shiftsplit/tile/standard_tiling.h"

#include <cassert>
#include <sstream>

namespace shiftsplit {

StandardTiling::StandardTiling(std::vector<uint32_t> log_dims, uint32_t b)
    : b_(b) {
  assert(!log_dims.empty());
  per_dim_.reserve(log_dims.size());
  num_blocks_ = 1;
  block_capacity_ = 1;
  for (uint32_t n : log_dims) {
    per_dim_.emplace_back(n, b);
    num_blocks_ *= per_dim_.back().num_tiles();
    block_capacity_ *= per_dim_.back().tile_capacity();
  }
}

BlockSlot StandardTiling::Combine(std::span<const BlockSlot> parts) const {
  assert(parts.size() == per_dim_.size());
  BlockSlot out;
  for (uint32_t i = 0; i < per_dim_.size(); ++i) {
    out.block = out.block * per_dim_[i].num_tiles() + parts[i].block;
    out.slot = out.slot * per_dim_[i].tile_capacity() + parts[i].slot;
  }
  return out;
}

Result<BlockSlot> StandardTiling::Locate(
    std::span<const uint64_t> address) const {
  if (address.size() != per_dim_.size()) {
    return Status::InvalidArgument("address dimensionality mismatch");
  }
  BlockSlot out;
  for (uint32_t i = 0; i < per_dim_.size(); ++i) {
    if (address[i] >= (uint64_t{1} << per_dim_[i].n())) {
      return Status::OutOfRange("wavelet index beyond dimension size");
    }
    const BlockSlot part = per_dim_[i].Locate(address[i]);
    out.block = out.block * per_dim_[i].num_tiles() + part.block;
    out.slot = out.slot * per_dim_[i].tile_capacity() + part.slot;
  }
  return out;
}

std::string StandardTiling::ToString() const {
  std::ostringstream os;
  os << "StandardTiling{b=" << b_ << " dims=";
  for (uint32_t i = 0; i < per_dim_.size(); ++i) {
    if (i > 0) os << ",";
    os << per_dim_[i].n();
  }
  os << " blocks=" << num_blocks_ << " capacity=" << block_capacity_ << "}";
  return os.str();
}

}  // namespace shiftsplit
