// One-dimensional subtree tiling (paper §3, Figure 4).
//
// The wavelet tree of a size-2^n transform is cut into bands of b rows (the
// row of detail w_{j,k} is n - j). When b does not divide n the *top* band
// is short (height n mod b), so the numerous leaf-side bands are always
// full — a short leaf band would waste most of every leaf block. Each band
// consists of one binary subtree per root position; each subtree is a
// *tile* stored in one disk block of B = 2^b slots: slot 0 holds the
// scaling coefficient u at the subtree root's level/position (the paper's
// extra stored scaling), and the subtree's details occupy slots [1, 2^h)
// in heap order, h being the band height.
//
// For the top band the slot-0 scaling is the overall average u_{n,0} (flat
// index 0) — a primary coefficient; for deeper bands slot 0 is redundant
// (derivable) but dramatically cheapens queries.

#ifndef SHIFTSPLIT_TILE_TREE_TILING_H_
#define SHIFTSPLIT_TILE_TREE_TILING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "shiftsplit/tile/tile_layout.h"

namespace shiftsplit {

/// \brief The 1-d subtree tiling; also the per-dimension building block of
/// the standard-form multidimensional tiling.
class TreeTiling {
 public:
  /// \param n log2 of the transform size (n >= 0)
  /// \param b log2 of the block size (b >= 1)
  TreeTiling(uint32_t n, uint32_t b);

  uint32_t n() const { return n_; }
  uint32_t b() const { return b_; }

  /// Number of bands (ceil(n / b); 1 when n == 0).
  uint32_t num_bands() const { return num_bands_; }

  /// Height (rows) of band t — b for all but possibly the top band.
  uint32_t BandHeight(uint32_t band) const;

  /// Tree row of band t's subtree roots; detail level is n - row.
  uint32_t BandRootRow(uint32_t band) const {
    return band == 0 ? 0 : top_height_ + (band - 1) * b_;
  }

  /// Number of tiles in band t (2^BandRootRow(t)).
  uint64_t TilesInBand(uint32_t band) const {
    return uint64_t{1} << BandRootRow(band);
  }

  /// Total number of tiles across all bands.
  uint64_t num_tiles() const { return num_tiles_; }

  /// Slots per tile (2^b).
  uint64_t tile_capacity() const { return uint64_t{1} << b_; }

  /// \brief Tile + slot of the coefficient with flat wavelet index `index`
  /// (index 0 = the overall average -> tile 0, slot 0).
  BlockSlot Locate(uint64_t index) const;

  /// \brief Tile + slot (always slot 0) of the *scaling* coefficient
  /// u_{level, pos}. Valid only when `level` is a band-root level
  /// (level = n - t*b for some band t); returns InvalidArgument otherwise.
  Result<BlockSlot> LocateScaling(uint32_t level, uint64_t pos) const;

  /// \brief True iff scaling coefficients at `level` have a reserved slot
  /// (i.e. n - level is a multiple of b, within range).
  bool IsScalingLevel(uint32_t level) const;

  /// \brief The band containing tree row `row` (= n - level).
  uint32_t BandOfRow(uint32_t row) const {
    return row < top_height_ ? 0 : 1 + (row - top_height_) / b_;
  }

  /// \brief First tile id of band t.
  uint64_t BandFirstTile(uint32_t band) const { return band_offsets_[band]; }

  /// \brief All (level, pos) scaling coordinates with a reserved slot whose
  /// support is contained in the dyadic interval [k*2^m, (k+1)*2^m), i.e.
  /// the scaling slots a chunk transform can finalize. Root levels
  /// n - t*b <= m only.
  std::vector<std::pair<uint32_t, uint64_t>> ScalingSlotsWithin(
      uint32_t m, uint64_t k) const;

  /// \brief All (level, pos) scaling coordinates with a reserved slot whose
  /// support strictly contains the dyadic interval [k*2^m, (k+1)*2^m) — the
  /// scaling slots receiving SPLIT accumulations from that chunk.
  std::vector<std::pair<uint32_t, uint64_t>> ScalingSlotsAbove(
      uint32_t m, uint64_t k) const;

  std::string ToString() const;

 private:
  uint32_t n_;
  uint32_t b_;
  uint32_t top_height_;  // height of band 0 (n mod b, or b when divisible)
  uint32_t num_bands_;
  uint64_t num_tiles_;
  std::vector<uint64_t> band_offsets_;  // first tile id per band
};

/// \brief TileLayout adapter for the plain 1-d case.
class TreeTilingLayout : public TileLayout {
 public:
  TreeTilingLayout(uint32_t n, uint32_t b) : tiling_(n, b) {}

  uint32_t ndim() const override { return 1; }
  uint64_t num_blocks() const override { return tiling_.num_tiles(); }
  uint64_t block_capacity() const override { return tiling_.tile_capacity(); }
  Result<BlockSlot> Locate(std::span<const uint64_t> address) const override;
  std::string ToString() const override { return tiling_.ToString(); }

  const TreeTiling& tiling() const { return tiling_; }

 private:
  TreeTiling tiling_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TILE_TREE_TILING_H_
