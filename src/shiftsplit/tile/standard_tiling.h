// Multidimensional tiling for the standard decomposition form (paper §3.2):
// the d-fold cross product of per-dimension 1-d subtree tilings. A block
// holds B^d slots — the cross product of d per-dimension tiles — and its
// slot space includes the redundant mixed scaling/detail entries (per-dim
// slot 0) the paper stores for cheap reconstruction.

#ifndef SHIFTSPLIT_TILE_STANDARD_TILING_H_
#define SHIFTSPLIT_TILE_STANDARD_TILING_H_

#include <memory>
#include <vector>

#include "shiftsplit/tile/tile_layout.h"
#include "shiftsplit/tile/tree_tiling.h"

namespace shiftsplit {

/// \brief Cross-product tiling over per-dimension wavelet trees.
class StandardTiling : public TileLayout {
 public:
  /// \param log_dims log2 of each dimension's extent
  /// \param b        log2 of the per-dimension block edge (block = B^d slots)
  StandardTiling(std::vector<uint32_t> log_dims, uint32_t b);

  uint32_t ndim() const override {
    return static_cast<uint32_t>(per_dim_.size());
  }
  uint64_t num_blocks() const override { return num_blocks_; }
  uint64_t block_capacity() const override { return block_capacity_; }
  Result<BlockSlot> Locate(std::span<const uint64_t> address) const override;
  std::string ToString() const override;

  uint32_t b() const { return b_; }
  const TreeTiling& dim_tiling(uint32_t dim) const { return per_dim_[dim]; }

  /// \brief Combines per-dimension (tile, slot) pairs into a global
  /// BlockSlot (mixed-radix over per-dim tile counts and slot capacities).
  BlockSlot Combine(std::span<const BlockSlot> parts) const;

 private:
  uint32_t b_;
  std::vector<TreeTiling> per_dim_;
  uint64_t num_blocks_;
  uint64_t block_capacity_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TILE_STANDARD_TILING_H_
