#include "shiftsplit/tile/nonstandard_tiling.h"

#include <cassert>
#include <sstream>

#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

NonstandardTiling::NonstandardTiling(uint32_t d, uint32_t n, uint32_t b)
    : d_(d), n_(n), b_(b) {
  assert(d_ >= 1);
  assert(b_ >= 1);
  coeffs_per_node_ = (uint64_t{1} << d_) - 1;
  num_bands_ = (n_ == 0) ? 1 : (n_ + b_ - 1) / b_;
  top_height_ = (n_ == 0 || n_ % b_ == 0) ? b_ : n_ % b_;
  band_offsets_.resize(num_bands_ + 1);
  uint64_t offset = 0;
  for (uint32_t t = 0; t < num_bands_; ++t) {
    band_offsets_[t] = offset;
    // Subtree roots at the band root row: (2^row)^d of them.
    offset += uint64_t{1}
              << (static_cast<uint64_t>(BandRootRow(t)) * d_);
  }
  band_offsets_[num_bands_] = offset;
  num_blocks_ = offset;
  block_capacity_ = uint64_t{1} << (static_cast<uint64_t>(b_) * d_);
  // lambda offset of depth delta within a subtree: (D^delta - 1)/(D - 1).
  depth_node_offsets_.resize(b_ + 1);
  uint64_t nodes = 0;
  for (uint32_t delta = 0; delta <= b_; ++delta) {
    depth_node_offsets_[delta] = nodes;
    nodes += uint64_t{1} << (static_cast<uint64_t>(delta) * d_);
  }
}

Result<BlockSlot> NonstandardTiling::LocateCoeff(const NsCoeffId& id) const {
  if (id.node.size() != d_) {
    return Status::InvalidArgument("coefficient dimensionality mismatch");
  }
  if (id.is_scaling) {
    return BlockSlot{0, 0};  // root average shares the top tile
  }
  if (id.level < 1 || id.level > n_) {
    return Status::OutOfRange("level outside [1, n]");
  }
  const uint32_t row = n_ - id.level;
  const uint32_t band = BandOfRow(row);
  const uint32_t root_row = BandRootRow(band);
  const uint32_t depth = row - root_row;
  // Subtree root node position (per dim) and tile id (row-major over the
  // 2^root_row wide node grid).
  uint64_t tile = 0;
  uint64_t local = 0;  // row-major node position within the subtree depth
  for (uint32_t t = 0; t < d_; ++t) {
    if (id.node[t] >= (uint64_t{1} << row)) {
      return Status::OutOfRange("node position beyond level width");
    }
    const uint64_t q = id.node[t] >> depth;
    const uint64_t rem = id.node[t] & ((uint64_t{1} << depth) - 1);
    tile = (tile << root_row) + q;
    local = (local << depth) + rem;
  }
  const uint64_t lambda = depth_node_offsets_[depth] + local;
  const uint64_t slot = lambda * coeffs_per_node_ + id.subband;
  if (id.subband < 1 || id.subband > coeffs_per_node_) {
    return Status::OutOfRange("subband outside [1, 2^d - 1]");
  }
  return BlockSlot{band_offsets_[band] + tile, slot};
}

Result<BlockSlot> NonstandardTiling::Locate(
    std::span<const uint64_t> address) const {
  if (address.size() != d_) {
    return Status::InvalidArgument("address dimensionality mismatch");
  }
  for (uint64_t a : address) {
    if (a >= (uint64_t{1} << n_)) {
      return Status::OutOfRange("address beyond cube extent");
    }
  }
  return LocateCoeff(NsCoeffOfAddress(n_, address));
}

bool NonstandardTiling::IsScalingLevel(uint32_t level) const {
  if (level > n_) return false;
  const uint32_t row = n_ - level;
  if (row == 0) return true;  // band 0's root
  if (row < top_height_) return false;
  return (row - top_height_) % b_ == 0 && BandOfRow(row) < num_bands_;
}

Result<BlockSlot> NonstandardTiling::LocateScaling(
    uint32_t level, std::span<const uint64_t> node) const {
  if (node.size() != d_) {
    return Status::InvalidArgument("node dimensionality mismatch");
  }
  if (!IsScalingLevel(level)) {
    return Status::InvalidArgument(
        "no reserved scaling slot at this level (not a band root)");
  }
  const uint32_t row = n_ - level;
  uint64_t tile = 0;
  for (uint32_t t = 0; t < d_; ++t) {
    if (node[t] >= (uint64_t{1} << row)) {
      return Status::OutOfRange("node position beyond level width");
    }
    tile = (tile << row) + node[t];
  }
  return BlockSlot{band_offsets_[BandOfRow(row)] + tile, 0};
}

std::vector<std::pair<uint32_t, std::vector<uint64_t>>>
NonstandardTiling::ScalingNodesWithin(uint32_t m,
                                      std::span<const uint64_t> chunk) const {
  assert(chunk.size() == d_);
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> out;
  for (uint32_t t = 0; t < num_bands_; ++t) {
    const uint32_t level = n_ - BandRootRow(t);
    if (level > m) continue;
    // Nodes at `level` inside the chunk cube: a (2^(m-level))^d grid.
    const uint32_t shift = m - level;
    const uint64_t count = uint64_t{1} << shift;
    TensorShape grid = TensorShape::Cube(d_, count);
    std::vector<uint64_t> offset(d_, 0);
    do {
      std::vector<uint64_t> node(d_);
      for (uint32_t i = 0; i < d_; ++i) {
        node[i] = (chunk[i] << shift) + offset[i];
      }
      out.emplace_back(level, std::move(node));
    } while (grid.Next(offset));
  }
  return out;
}

std::vector<std::pair<uint32_t, std::vector<uint64_t>>>
NonstandardTiling::ScalingNodesAbove(uint32_t m,
                                     std::span<const uint64_t> chunk) const {
  assert(chunk.size() == d_);
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> out;
  for (uint32_t t = 0; t < num_bands_; ++t) {
    const uint32_t level = n_ - BandRootRow(t);
    if (level <= m) break;
    std::vector<uint64_t> node(d_);
    for (uint32_t i = 0; i < d_; ++i) {
      node[i] = chunk[i] >> (level - m);
    }
    out.emplace_back(level, std::move(node));
  }
  return out;
}

std::string NonstandardTiling::ToString() const {
  std::ostringstream os;
  os << "NonstandardTiling{d=" << d_ << " n=" << n_ << " b=" << b_
     << " blocks=" << num_blocks_ << " capacity=" << block_capacity_ << "}";
  return os.str();
}

}  // namespace shiftsplit
