// Coefficient-to-disk-block allocation strategies (paper §3).
//
// A TileLayout maps the address of a transformed coefficient — a d-tuple of
// per-dimension 1-d wavelet indices, which serves both the standard form and
// (through the banded NsAddress scheme) the non-standard form — to a
// (block, slot) position. Blocks hold `block_capacity()` slots; some slots
// are reserved for the redundant subtree-root scaling coefficients the paper
// stores alongside each tile.

#ifndef SHIFTSPLIT_TILE_TILE_LAYOUT_H_
#define SHIFTSPLIT_TILE_TILE_LAYOUT_H_

#include <cstdint>
#include <span>
#include <string>

#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Physical position of a coefficient.
struct BlockSlot {
  uint64_t block = 0;
  uint64_t slot = 0;

  bool operator==(const BlockSlot&) const = default;
};

/// \brief Abstract coefficient-to-block mapping.
class TileLayout {
 public:
  virtual ~TileLayout() = default;

  /// Number of dimensions of the addressed coefficient tuples.
  virtual uint32_t ndim() const = 0;

  /// Total number of blocks the layout addresses.
  virtual uint64_t num_blocks() const = 0;

  /// Slots per block (the device block size must equal this).
  virtual uint64_t block_capacity() const = 0;

  /// \brief Locates the coefficient with the given per-dimension 1-d wavelet
  /// indices.
  virtual Result<BlockSlot> Locate(std::span<const uint64_t> address) const = 0;

  virtual std::string ToString() const = 0;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TILE_TILE_LAYOUT_H_
