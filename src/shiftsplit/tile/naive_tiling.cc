#include "shiftsplit/tile/naive_tiling.h"

#include <cassert>
#include <sstream>

#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

NaiveTiling::NaiveTiling(std::vector<uint32_t> log_dims,
                         uint64_t block_capacity)
    : block_capacity_(block_capacity) {
  assert(block_capacity_ > 0);
  std::vector<uint64_t> dims;
  dims.reserve(log_dims.size());
  for (uint32_t n : log_dims) dims.push_back(uint64_t{1} << n);
  shape_ = TensorShape(std::move(dims));
  num_blocks_ = CeilDiv(shape_.num_elements(), block_capacity_);
}

Result<BlockSlot> NaiveTiling::Locate(
    std::span<const uint64_t> address) const {
  if (address.size() != shape_.ndim()) {
    return Status::InvalidArgument("address dimensionality mismatch");
  }
  for (uint32_t i = 0; i < shape_.ndim(); ++i) {
    if (address[i] >= shape_.dim(i)) {
      return Status::OutOfRange("address beyond tensor extent");
    }
  }
  const uint64_t flat = shape_.FlatIndex(address);
  return BlockSlot{flat / block_capacity_, flat % block_capacity_};
}

std::string NaiveTiling::ToString() const {
  std::ostringstream os;
  os << "NaiveTiling{shape=" << shape_.ToString()
     << " capacity=" << block_capacity_ << " blocks=" << num_blocks_ << "}";
  return os.str();
}

}  // namespace shiftsplit
