#include "shiftsplit/tile/tiled_store.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "shiftsplit/kernels/kernels.h"

namespace shiftsplit {

TiledStore::TiledStore(std::unique_ptr<TileLayout> layout,
                       BlockManager* manager, uint64_t pool_blocks)
    : layout_(std::move(layout)), manager_(manager),
      pool_(manager, pool_blocks) {}

Status TiledStore::Validate(const TileLayout* layout, BlockManager* manager,
                            uint64_t pool_blocks) {
  if (layout == nullptr || manager == nullptr) {
    return Status::InvalidArgument("layout and manager are required");
  }
  if (manager->block_size() != layout->block_capacity()) {
    return Status::InvalidArgument(
        "block manager block size must equal the layout block capacity");
  }
  if (pool_blocks == 0) {
    return Status::InvalidArgument("buffer pool needs at least one frame");
  }
  if (manager->num_blocks() < layout->num_blocks()) {
    SS_RETURN_IF_ERROR(manager->Resize(layout->num_blocks()));
  }
  return Status::OK();
}

Result<std::unique_ptr<TiledStore>> TiledStore::Create(
    std::unique_ptr<TileLayout> layout, BlockManager* manager,
    uint64_t pool_blocks) {
  SS_RETURN_IF_ERROR(Validate(layout.get(), manager, pool_blocks));
  return std::unique_ptr<TiledStore>(
      new TiledStore(std::move(layout), manager, pool_blocks));
}

Result<std::unique_ptr<TiledStore>> TiledStore::Open(
    std::unique_ptr<TileLayout> layout, BlockManager* manager,
    uint64_t pool_blocks, std::unique_ptr<Journal> journal) {
  SS_RETURN_IF_ERROR(Validate(layout.get(), manager, pool_blocks));
  if (journal == nullptr) {
    return Status::InvalidArgument("Open requires a journal (use Create)");
  }
  auto store = std::unique_ptr<TiledStore>(
      new TiledStore(std::move(layout), manager, pool_blocks));
  const Result<Journal::RecoveryResult> recovered =
      journal->Recover(manager);
  if (!recovered.ok()) {
    // The journal itself could be read but the device refused the replay
    // (or the journal is unreadable): salvage mode. Reads still work, with
    // quarantined blocks as zeros; every write fails.
    store->read_only_ = true;
    store->recovery_failed_ = true;
    manager->set_degraded_reads(true);
  }
  store->journal_ = std::move(journal);
  return store;
}

Result<double> TiledStore::Get(std::span<const uint64_t> address,
                               OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(const BlockSlot at, layout_->Locate(address));
  return GetAt(at, ctx);
}

Status TiledStore::Set(std::span<const uint64_t> address, double value) {
  SS_ASSIGN_OR_RETURN(const BlockSlot at, layout_->Locate(address));
  return SetAt(at, value);
}

Status TiledStore::Add(std::span<const uint64_t> address, double delta) {
  SS_ASSIGN_OR_RETURN(const BlockSlot at, layout_->Locate(address));
  return AddAt(at, delta);
}

Status TiledStore::FailIfReadOnly() const {
  if (!read_only_) return Status::OK();
  return Status::IOError(
      "store is read-only (failed recovery or scrub corruption); writes are "
      "rejected");
}

Result<double> TiledStore::GetAt(BlockSlot at, OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(at.block, /*for_write=*/false, ctx));
  ++manager_->stats().coeff_reads;
  return page[at.slot];
}

Status TiledStore::SetAt(BlockSlot at, double value) {
  SS_RETURN_IF_ERROR(FailIfReadOnly());
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(at.block, /*for_write=*/true));
  ++manager_->stats().coeff_writes;
  const double old = page[at.slot];
  page[at.slot] = value;
  UpdateEnergy(at.block, value * value - old * old);
  return Status::OK();
}

Status TiledStore::AddAt(BlockSlot at, double delta) {
  SS_RETURN_IF_ERROR(FailIfReadOnly());
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(at.block, /*for_write=*/true));
  ++manager_->stats().coeff_writes;
  const double old = page[at.slot];
  const double updated = old + delta;
  page[at.slot] = updated;
  UpdateEnergy(at.block, updated * updated - old * old);
  return Status::OK();
}

Result<PageGuard> TiledStore::PinBlock(uint64_t block, bool for_write,
                                       OperationContext* ctx) {
  if (for_write) {
    SS_RETURN_IF_ERROR(FailIfReadOnly());
    // Span writes through the guard bypass the per-coefficient accounting:
    // the block's tracked energy is no longer trustworthy.
    UpdateEnergy(block, std::numeric_limits<double>::infinity());
  }
  return pool_.GetBlock(block, for_write, ctx);
}

namespace {

// The kernel fold reads SlotUpdate::value straight out of the ops array as
// a strided (AoS) double stream.
static_assert(sizeof(SlotUpdate) == 3 * sizeof(double),
              "SlotUpdate must stay 3 doubles wide for the strided folds");
static_assert(offsetof(SlotUpdate, value) == sizeof(uint64_t),
              "SlotUpdate::value must sit at the second double lane");
constexpr size_t kSlotUpdateStride = sizeof(SlotUpdate) / sizeof(double);

// Shortest consecutive-slot run worth a kernel call: below this the
// per-call overhead beats the lane win.
constexpr size_t kMinFoldRun = 4;

}  // namespace

Status TiledStore::ApplyToBlock(uint64_t block,
                                std::span<const SlotUpdate> ops) {
  SS_RETURN_IF_ERROR(FailIfReadOnly());
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(block, /*for_write=*/true));
  const std::span<double> slots = page.span();
  if (!energy_tracking_.load(std::memory_order_relaxed)) {
    // Hot path (no per-op energy accounting): batch maximal runs of ops
    // whose slots ascend by exactly one and share the op kind through the
    // strided fold/copy kernels. Every slot still receives exactly the
    // operations of the scalar loop in the same per-slot order — runs
    // never reorder ops, and a repeated slot terminates the run (equal,
    // not +1) — so the stored bits are identical to the scalar path.
    const kernels::KernelOps& kernel = kernels::Active();
    const size_t n = ops.size();
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && ops[j].overwrite == ops[i].overwrite &&
             ops[j].slot == ops[j - 1].slot + 1) {
        ++j;
      }
      const size_t run = j - i;
      if (run >= kMinFoldRun) {
        if (ops[i].overwrite) {
          kernel.fold_copy_strided(slots.data() + ops[i].slot, &ops[i].value,
                                   kSlotUpdateStride, run);
        } else {
          kernel.fold_add_strided(slots.data() + ops[i].slot, &ops[i].value,
                                  kSlotUpdateStride, run);
        }
      } else {
        for (size_t t = i; t < j; ++t) {
          const SlotUpdate& op = ops[t];
          slots[op.slot] = op.overwrite ? op.value : slots[op.slot] + op.value;
        }
      }
      i = j;
    }
    manager_->stats().coeff_writes += ops.size();
    return Status::OK();
  }
  // Energy-tracked path: the energy delta is a sequence-ordered serial sum
  // (new² − old² per op, accumulated in op order), so it stays scalar —
  // reassociating it would change the tracked energy bits.
  double energy_delta = 0.0;
  for (const SlotUpdate& op : ops) {
    const double old = slots[op.slot];
    const double updated = op.overwrite ? op.value : old + op.value;
    slots[op.slot] = updated;
    energy_delta += updated * updated - old * old;
  }
  manager_->stats().coeff_writes += ops.size();
  UpdateEnergy(block, energy_delta);
  return Status::OK();
}

Status TiledStore::Prefetch(std::span<const uint64_t> blocks,
                            OperationContext* ctx) {
  return pool_.Prefetch(blocks, ctx);
}

Status TiledStore::EnableEnergyTracking() {
  std::vector<double> energy(layout_->num_blocks(), 0.0);
  for (uint64_t block = 0; block < layout_->num_blocks(); ++block) {
    auto page = pool_.GetBlock(block, /*for_write=*/false);
    if (!page.ok()) {
      // Best-effort scan: an unreadable (corrupt, quarantined, failing)
      // block stays at the untracked +infinity ceiling so resilient
      // queries can still degrade around it with an honest bound.
      energy[block] = std::numeric_limits<double>::infinity();
      continue;
    }
    double sum = 0.0;
    for (const double v : page.value().span()) sum += v * v;
    energy[block] = sum;
  }
  {
    const std::lock_guard<std::mutex> lock(energy_mu_);
    block_energy_ = std::move(energy);
  }
  energy_tracking_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

double TiledStore::BlockEnergyCeiling(uint64_t block) const {
  if (!energy_tracking()) return std::numeric_limits<double>::infinity();
  double energy;
  {
    const std::lock_guard<std::mutex> lock(energy_mu_);
    energy = block < block_energy_.size()
                 ? block_energy_[block]
                 : std::numeric_limits<double>::infinity();
  }
  // Maintained deltas can drift a hair below zero in floating point.
  return std::sqrt(std::max(energy, 0.0));
}

double TiledStore::TotalEnergyCeiling() const {
  if (!energy_tracking()) return std::numeric_limits<double>::infinity();
  double total = 0.0;
  {
    const std::lock_guard<std::mutex> lock(energy_mu_);
    for (const double energy : block_energy_) total += energy;
  }
  // An invalidated (+inf) block entry propagates: the bound stays honest.
  return std::sqrt(std::max(total, 0.0));
}

void TiledStore::UpdateEnergy(uint64_t block, double delta) {
  if (!energy_tracking()) return;
  const std::lock_guard<std::mutex> lock(energy_mu_);
  if (block < block_energy_.size()) block_energy_[block] += delta;
}

Status TiledStore::Flush() {
  if (read_only_) return Status::OK();  // nothing can be dirty
  return journal_ ? pool_.FlushAtomic(journal_.get()) : pool_.Flush();
}

Status TiledStore::Close() {
  SS_RETURN_IF_ERROR(Flush());
  if (read_only_) return Status::OK();
  return manager_->Sync();
}

Result<std::vector<uint64_t>> TiledStore::Scrub() {
  // Scrub verifies the on-disk image; flush first so it covers this
  // store's own pending writes too.
  SS_RETURN_IF_ERROR(Flush());
  SS_ASSIGN_OR_RETURN(std::vector<uint64_t> corrupt, manager_->Scrub());
  if (!corrupt.empty()) {
    read_only_ = true;
    manager_->set_degraded_reads(true);
  }
  return corrupt;
}

Result<ScrubReport> TiledStore::ScrubRepair(bool flush_first) {
  if (flush_first) SS_RETURN_IF_ERROR(Flush());
  SS_ASSIGN_OR_RETURN(ScrubReport report, manager_->ScrubRepair());
  if (!report.repaired.empty()) {
    std::vector<uint64_t> data_ids;
    for (const uint64_t id : report.repaired) {
      if (id < kParityIdBase) data_ids.push_back(id);
    }
    // Cached copies of repaired blocks may be degraded zero-fills; drop
    // them so the next access reads the rebuilt payload.
    pool_.InvalidateBlocks(data_ids);
    if (energy_tracking()) {
      for (const uint64_t block : data_ids) {
        auto page = pool_.GetBlock(block, /*for_write=*/false);
        double energy = std::numeric_limits<double>::infinity();
        if (page.ok()) {
          double sum = 0.0;
          for (const double v : page.value().span()) sum += v * v;
          energy = sum;
        }
        const std::lock_guard<std::mutex> lock(energy_mu_);
        if (block < block_energy_.size()) block_energy_[block] = energy;
      }
    }
  }
  if (!report.unrepairable.empty()) {
    read_only_ = true;
    manager_->set_degraded_reads(true);
  } else if (!recovery_failed_) {
    // Every block (and every parity stride) verified or was rebuilt: any
    // earlier detect-only quarantine is healed, so re-admit writes.
    read_only_ = false;
    manager_->set_degraded_reads(false);
  }
  return report;
}

DurabilityStats TiledStore::durability_stats() const {
  DurabilityStats stats = manager_->durability_stats();
  if (journal_) {
    stats.journal_commits += journal_->commits();
    stats.journal_replays += journal_->replays();
    stats.journal_rollbacks += journal_->rollbacks();
    const BufferPool::Stats pool = pool_.stats();
    stats.unjournaled_write_backs +=
        pool.write_backs - pool_.journaled_write_backs();
  }
  stats.read_only = stats.read_only || read_only_;
  return stats;
}

}  // namespace shiftsplit
