#include "shiftsplit/tile/tiled_store.h"

namespace shiftsplit {

TiledStore::TiledStore(std::unique_ptr<TileLayout> layout,
                       BlockManager* manager, uint64_t pool_blocks)
    : layout_(std::move(layout)), manager_(manager),
      pool_(manager, pool_blocks) {}

Result<std::unique_ptr<TiledStore>> TiledStore::Create(
    std::unique_ptr<TileLayout> layout, BlockManager* manager,
    uint64_t pool_blocks) {
  if (layout == nullptr || manager == nullptr) {
    return Status::InvalidArgument("layout and manager are required");
  }
  if (manager->block_size() != layout->block_capacity()) {
    return Status::InvalidArgument(
        "block manager block size must equal the layout block capacity");
  }
  if (pool_blocks == 0) {
    return Status::InvalidArgument("buffer pool needs at least one frame");
  }
  if (manager->num_blocks() < layout->num_blocks()) {
    SS_RETURN_IF_ERROR(manager->Resize(layout->num_blocks()));
  }
  return std::unique_ptr<TiledStore>(
      new TiledStore(std::move(layout), manager, pool_blocks));
}

Result<double> TiledStore::Get(std::span<const uint64_t> address) {
  SS_ASSIGN_OR_RETURN(const BlockSlot at, layout_->Locate(address));
  return GetAt(at);
}

Status TiledStore::Set(std::span<const uint64_t> address, double value) {
  SS_ASSIGN_OR_RETURN(const BlockSlot at, layout_->Locate(address));
  return SetAt(at, value);
}

Status TiledStore::Add(std::span<const uint64_t> address, double delta) {
  SS_ASSIGN_OR_RETURN(const BlockSlot at, layout_->Locate(address));
  return AddAt(at, delta);
}

Result<double> TiledStore::GetAt(BlockSlot at) {
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(at.block, /*for_write=*/false));
  ++manager_->stats().coeff_reads;
  return page[at.slot];
}

Status TiledStore::SetAt(BlockSlot at, double value) {
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(at.block, /*for_write=*/true));
  ++manager_->stats().coeff_writes;
  page[at.slot] = value;
  return Status::OK();
}

Status TiledStore::AddAt(BlockSlot at, double delta) {
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(at.block, /*for_write=*/true));
  ++manager_->stats().coeff_writes;
  page[at.slot] += delta;
  return Status::OK();
}

Result<PageGuard> TiledStore::PinBlock(uint64_t block, bool for_write) {
  return pool_.GetBlock(block, for_write);
}

Status TiledStore::ApplyToBlock(uint64_t block,
                                std::span<const SlotUpdate> ops) {
  SS_ASSIGN_OR_RETURN(const PageGuard page,
                      pool_.GetBlock(block, /*for_write=*/true));
  const std::span<double> slots = page.span();
  for (const SlotUpdate& op : ops) {
    if (op.overwrite) {
      slots[op.slot] = op.value;
    } else {
      slots[op.slot] += op.value;
    }
  }
  manager_->stats().coeff_writes += ops.size();
  return Status::OK();
}

Status TiledStore::Prefetch(std::span<const uint64_t> blocks) {
  return pool_.Prefetch(blocks);
}

Status TiledStore::Flush() { return pool_.Flush(); }

}  // namespace shiftsplit
