// Naive (row-major) coefficient-to-block allocation — the baseline the
// paper's tiling is compared against in the query-cost ablation. Coefficients
// are packed in flat row-major order with no regard for the wavelet tree's
// access pattern.

#ifndef SHIFTSPLIT_TILE_NAIVE_TILING_H_
#define SHIFTSPLIT_TILE_NAIVE_TILING_H_

#include <vector>

#include "shiftsplit/tile/tile_layout.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Row-major packing of the transformed tensor into fixed blocks.
class NaiveTiling : public TileLayout {
 public:
  /// \param log_dims       log2 of each dimension's extent
  /// \param block_capacity slots per block (kept equal to the tiled layouts'
  ///                       B^d so comparisons are apples-to-apples)
  NaiveTiling(std::vector<uint32_t> log_dims, uint64_t block_capacity);

  uint32_t ndim() const override { return shape_.ndim(); }
  uint64_t num_blocks() const override { return num_blocks_; }
  uint64_t block_capacity() const override { return block_capacity_; }
  Result<BlockSlot> Locate(std::span<const uint64_t> address) const override;
  std::string ToString() const override;

 private:
  TensorShape shape_;
  uint64_t block_capacity_;
  uint64_t num_blocks_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TILE_NAIVE_TILING_H_
