#include "shiftsplit/tile/tree_tiling.h"

#include <cassert>
#include <sstream>

#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

TreeTiling::TreeTiling(uint32_t n, uint32_t b) : n_(n), b_(b) {
  assert(b_ >= 1);
  num_bands_ = (n_ == 0) ? 1 : (n_ + b_ - 1) / b_;
  top_height_ = (n_ == 0 || n_ % b_ == 0) ? b_ : n_ % b_;
  band_offsets_.resize(num_bands_ + 1);
  uint64_t offset = 0;
  for (uint32_t t = 0; t < num_bands_; ++t) {
    band_offsets_[t] = offset;
    offset += TilesInBand(t);
  }
  band_offsets_[num_bands_] = offset;
  num_tiles_ = offset;
}

uint32_t TreeTiling::BandHeight(uint32_t band) const {
  assert(band < num_bands_);
  if (n_ == 0) return 0;
  return band == 0 ? top_height_ : b_;
}

BlockSlot TreeTiling::Locate(uint64_t index) const {
  assert(index < (uint64_t{1} << n_));
  if (index == 0) {
    return BlockSlot{0, 0};  // overall average shares the top tile
  }
  const uint32_t row = Log2(index);             // n - level
  const uint64_t pos = index - (uint64_t{1} << row);
  const uint32_t band = BandOfRow(row);
  const uint32_t depth = row - BandRootRow(band);  // depth within the subtree
  const uint64_t subtree = pos >> depth;        // subtree position in band
  const uint64_t slot = (uint64_t{1} << depth) +
                        (pos & ((uint64_t{1} << depth) - 1));
  return BlockSlot{band_offsets_[band] + subtree, slot};
}

bool TreeTiling::IsScalingLevel(uint32_t level) const {
  if (level > n_) return false;
  const uint32_t row = n_ - level;
  if (row == 0) return true;  // band 0's root
  if (row < top_height_) return false;
  return (row - top_height_) % b_ == 0 && BandOfRow(row) < num_bands_;
}

Result<BlockSlot> TreeTiling::LocateScaling(uint32_t level,
                                            uint64_t pos) const {
  if (!IsScalingLevel(level)) {
    return Status::InvalidArgument(
        "no reserved scaling slot at this level (not a band root)");
  }
  const uint32_t band = BandOfRow(n_ - level);
  if (pos >= TilesInBand(band)) {
    return Status::OutOfRange("scaling position beyond the level width");
  }
  return BlockSlot{band_offsets_[band] + pos, 0};
}

std::vector<std::pair<uint32_t, uint64_t>> TreeTiling::ScalingSlotsWithin(
    uint32_t m, uint64_t k) const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  assert(m <= n_);
  // Band-root levels that are <= m: scalings whose support (size 2^level)
  // fits in the chunk of size 2^m at position k.
  for (uint32_t t = 0; t < num_bands_; ++t) {
    const uint32_t level = n_ - BandRootRow(t);
    if (level > m) continue;
    const uint64_t first = k << (m - level);
    const uint64_t count = uint64_t{1} << (m - level);
    for (uint64_t q = 0; q < count; ++q) {
      out.emplace_back(level, first + q);
    }
  }
  return out;
}

std::vector<std::pair<uint32_t, uint64_t>> TreeTiling::ScalingSlotsAbove(
    uint32_t m, uint64_t k) const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  assert(m <= n_);
  for (uint32_t t = 0; t < num_bands_; ++t) {
    const uint32_t level = n_ - BandRootRow(t);
    if (level <= m) break;  // bands are ordered root-down; levels decrease
    out.emplace_back(level, k >> (level - m));
  }
  return out;
}

std::string TreeTiling::ToString() const {
  std::ostringstream os;
  os << "TreeTiling{n=" << n_ << " b=" << b_ << " bands=" << num_bands_
     << " tiles=" << num_tiles_ << "}";
  return os.str();
}

Result<BlockSlot> TreeTilingLayout::Locate(
    std::span<const uint64_t> address) const {
  if (address.size() != 1) {
    return Status::InvalidArgument("1-d layout expects a 1-d address");
  }
  if (address[0] >= (uint64_t{1} << tiling_.n())) {
    return Status::OutOfRange("wavelet index beyond transform size");
  }
  return tiling_.Locate(address[0]);
}

}  // namespace shiftsplit
