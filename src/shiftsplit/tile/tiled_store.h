// Disk-resident store of a wavelet-transformed dataset: a TileLayout mapping
// coefficient addresses to (block, slot) positions, served through a
// BufferPool with a bounded memory budget. Every coefficient access is
// counted, giving the I/O measurements all experiments report.

#ifndef SHIFTSPLIT_TILE_TILED_STORE_H_
#define SHIFTSPLIT_TILE_TILED_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "shiftsplit/storage/buffer_pool.h"
#include "shiftsplit/storage/journal.h"
#include "shiftsplit/tile/tile_layout.h"
#include "shiftsplit/util/operation_context.h"

namespace shiftsplit {

/// \brief One coefficient write of a batched (per-block) apply.
struct SlotUpdate {
  uint64_t slot = 0;
  double value = 0.0;
  bool overwrite = false;  ///< true: slot = value (SHIFT); false: slot += value
};

/// \brief Coefficient store over tiles.
class TiledStore {
 public:
  /// \brief Creates a store; resizes `manager` to the layout's block count.
  /// The manager's block size must equal the layout's block capacity.
  ///
  /// \param pool_blocks buffer-pool budget in blocks (>= 1)
  static Result<std::unique_ptr<TiledStore>> Create(
      std::unique_ptr<TileLayout> layout, BlockManager* manager,
      uint64_t pool_blocks);

  /// \brief Opens a store with crash recovery: any incomplete atomic commit
  /// left in `journal` is replayed or rolled back before the first access
  /// (see storage/journal.h), and the journal stays attached so every
  /// Flush()/Close() becomes an atomic multi-block commit
  /// (BufferPool::FlushAtomic).
  ///
  /// If recovery itself fails (the device rejects the replay writes), the
  /// store opens *read-only* with degraded reads: quarantined blocks are
  /// served as zeros, every write fails, and durability_stats() reports the
  /// degradation — the salvage mode for pulling data off a damaged store.
  static Result<std::unique_ptr<TiledStore>> Open(
      std::unique_ptr<TileLayout> layout, BlockManager* manager,
      uint64_t pool_blocks, std::unique_ptr<Journal> journal);

  /// \brief Reads the coefficient at a tuple address. A non-null `ctx`
  /// threads a deadline / cancellation / retry budget down to the device
  /// read (see OperationContext); null keeps the pre-resilience semantics.
  Result<double> Get(std::span<const uint64_t> address,
                     OperationContext* ctx = nullptr);

  /// \brief Writes the coefficient at a tuple address.
  Status Set(std::span<const uint64_t> address, double value);

  /// \brief Adds `delta` to the coefficient at a tuple address (the SPLIT
  /// accumulation primitive).
  Status Add(std::span<const uint64_t> address, double delta);

  /// \brief Physical-slot access (for pre-located positions such as the
  /// redundant scaling slots).
  Result<double> GetAt(BlockSlot at, OperationContext* ctx = nullptr);
  Status SetAt(BlockSlot at, double value);
  Status AddAt(BlockSlot at, double delta);

  /// \brief Pins a whole tile for bulk access. The returned guard keeps the
  /// frame valid (never an eviction victim) until it is released, so callers
  /// may hold several tiles at once — bounded by the pool capacity, beyond
  /// which GetBlock fails with ResourceExhausted. Pinning for write
  /// invalidates the block's energy-index entry (see EnableEnergyTracking):
  /// writes through the pinned span bypass per-coefficient accounting.
  Result<PageGuard> PinBlock(uint64_t block, bool for_write,
                             OperationContext* ctx = nullptr);

  /// \brief Bulk write: pins `block` once and applies every SlotUpdate
  /// through the pinned span (one GetBlock for the whole batch; each update
  /// is counted as one coefficient write).
  Status ApplyToBlock(uint64_t block, std::span<const SlotUpdate> ops);

  /// \brief Warms the buffer pool with the exact block set a batched apply
  /// will touch (one vectored device read; see BufferPool::Prefetch for the
  /// eviction contract).
  Status Prefetch(std::span<const uint64_t> blocks,
                  OperationContext* ctx = nullptr);

  /// \brief Builds the per-block energy index: one full scan recording each
  /// block's sum of squared coefficients, then maintained exactly by the
  /// per-coefficient write paths (Set/Add/ApplyToBlock track new² − old²).
  /// Bulk writes through PinBlock(for_write) bypass the accounting and
  /// invalidate the block's entry to +infinity — conservative, never wrong.
  /// The scan is best-effort: a block that cannot be read (corrupt,
  /// quarantined, device failure) keeps the +infinity ceiling instead of
  /// failing the call, so degradation still works on damaged stores.
  ///
  /// The index powers graceful degradation: sqrt(E_b) bounds the magnitude
  /// of any single coefficient in block b, so a query that skips a block can
  /// bound the error it introduced (core/query.h, DegradedResult).
  Status EnableEnergyTracking();

  bool energy_tracking() const {
    return energy_tracking_.load(std::memory_order_relaxed);
  }

  /// \brief Upper bound on |coefficient| for any slot of `block`:
  /// sqrt(block energy). +infinity when tracking is off or the entry was
  /// invalidated by a bulk write.
  double BlockEnergyCeiling(uint64_t block) const;

  /// \brief sqrt of the store's total tracked energy, Σ over all blocks of
  /// Σ c². Bounds the ℓ2 norm of every coefficient subset at once, so a
  /// query that skips this entire store (a quarantined shard) can bound the
  /// answer mass it lost by Cauchy–Schwarz (see
  /// core/query.h, RangeWeightNormSquared). +infinity when tracking is off
  /// or any block's entry was invalidated.
  double TotalEnergyCeiling() const;

  /// \brief Writes back all dirty cached blocks. With a journal attached
  /// (Open) this is an atomic all-or-nothing commit of the dirty set.
  Status Flush();

  /// \brief Flushes (atomically when journaled) and syncs the device,
  /// propagating the first failure — unlike destruction, which can only
  /// count failed write-backs. Callers that care about durability must
  /// Close and check. Idempotent; a read-only store closes trivially.
  Status Close();

  /// \brief Verifies every device block's integrity (checksummed backends).
  /// Corruption does not fail the call: the corrupt block ids are returned,
  /// quarantined, and the store degrades to read-only with quarantined
  /// blocks read as zeros.
  Result<std::vector<uint64_t>> Scrub();

  /// \brief Repair-mode scrub (parity-enabled backends): verifies every
  /// block and rebuilds corrupt ones in place from group parity; stale or
  /// corrupt parity strides are themselves rewritten from the verified data
  /// (which is also how a v2 store's freshly created zero sidecar becomes
  /// real parity). Repaired blocks are dropped from the buffer pool — a
  /// cached zero-fill from a degraded read is stale once the disk holds the
  /// rebuilt payload — and re-accounted in the energy index. Only blocks
  /// parity could not rebuild (double faults) leave the store read-only; a
  /// fully repaired store stays writable, and one degraded by an earlier
  /// detect-only Scrub is re-admitted. Salvage mode (failed journal
  /// recovery) is never cleared: its blocks verify individually but may be
  /// torn across an incomplete commit.
  ///
  /// `flush_first` = false scrubs the on-disk image without committing
  /// pending dirty pages — for callers (ServingCube::RepairNow on a
  /// poisoned cube) whose dirty pages must only reach disk in a later
  /// atomic commit together with their watermark. Dirty frames survive the
  /// pool invalidation, so they still overwrite the repaired payloads.
  Result<ScrubReport> ScrubRepair(bool flush_first = true);

  /// \brief True once the store has degraded (failed recovery or scrub
  /// corruption); all write paths then fail.
  bool read_only() const { return read_only_; }

  /// \brief Corruption/recovery counters: device checksum + retry counters,
  /// journal commit/replay/rollback counts, unjournaled eviction
  /// write-backs, and the read-only flag.
  DurabilityStats durability_stats() const;

  const TileLayout& layout() const { return *layout_; }
  BufferPool& pool() { return pool_; }
  BlockManager& manager() { return *manager_; }
  /// Block + coefficient I/O as counted by the backing device.
  const IoStats& stats() const { return manager_->stats(); }
  /// Cache behaviour (hit rate, evictions, write-backs, pins) of the pool.
  BufferPool::Stats pool_stats() const { return pool_.stats(); }

 private:
  TiledStore(std::unique_ptr<TileLayout> layout, BlockManager* manager,
             uint64_t pool_blocks);

  // Shared validation + device sizing for Create/Open.
  static Status Validate(const TileLayout* layout, BlockManager* manager,
                         uint64_t pool_blocks);
  Status FailIfReadOnly() const;
  // Adds `delta` to block b's tracked energy (no-op when tracking is off).
  void UpdateEnergy(uint64_t block, double delta);

  std::unique_ptr<TileLayout> layout_;
  BlockManager* manager_;
  BufferPool pool_;
  std::unique_ptr<Journal> journal_;  // null: plain (non-atomic) flushes
  bool read_only_ = false;
  bool recovery_failed_ = false;  // salvage mode: ScrubRepair can't clear it
  // Per-block sum of squared coefficients (energy index). Guarded by its
  // own mutex so concurrent queries can read ceilings while a (separately
  // serialized) writer maintains deltas.
  std::atomic<bool> energy_tracking_{false};
  mutable std::mutex energy_mu_;
  std::vector<double> block_energy_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_TILE_TILED_STORE_H_
