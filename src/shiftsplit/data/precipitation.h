// Synthetic PRECIPITATION dataset — stand-in for the paper's dataset [14]
// (daily precipitation over the Pacific Northwest for 45 years; the paper
// builds an 8 x 8 x 32-days-per-month cube and appends month by month).
//
// The generator produces deterministic bursty non-negative daily rainfall:
// seasonal intensity (wet winters), spatial gradient (wet coast, dry
// interior), wet/dry day indicator and exponential rainfall amounts. The
// appending experiment (Figure 13) measures block I/O of monthly appends
// and expansions, which depends only on shapes — the substitution preserves
// the curve (see DESIGN.md).

#ifndef SHIFTSPLIT_DATA_PRECIPITATION_H_
#define SHIFTSPLIT_DATA_PRECIPITATION_H_

#include <memory>

#include "shiftsplit/data/dataset.h"

namespace shiftsplit {

/// \brief Parameters of the synthetic precipitation stream.
struct PrecipitationOptions {
  uint32_t log_lat = 3;       ///< 8 grid rows (paper: 8)
  uint32_t log_lon = 3;       ///< 8 grid columns (paper: 8)
  uint32_t days_per_month = 32;  ///< paper: 32-day months
  uint64_t seed = 45;
};

/// \brief One month of daily precipitation: an (8 x 8 x 32) slab for month
/// index `month` (0-based), ready to feed Appender::Append.
Tensor MakePrecipitationMonth(uint64_t month,
                              const PrecipitationOptions& options = {});

/// \brief The full precipitation cube for `months` months as one dataset
/// (lat, lon, day) with the time extent rounded up to a power of two.
std::unique_ptr<FunctionDataset> MakePrecipitationDataset(
    uint64_t months, const PrecipitationOptions& options = {});

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_DATA_PRECIPITATION_H_
