#include "shiftsplit/data/dataset.h"

namespace shiftsplit {

namespace {

Status ValidateChunk(const TensorShape& full, const TensorShape& chunk,
                     std::span<const uint64_t> chunk_pos) {
  if (chunk.ndim() != full.ndim() || chunk_pos.size() != full.ndim()) {
    return Status::InvalidArgument("chunk dimensionality mismatch");
  }
  for (uint32_t i = 0; i < full.ndim(); ++i) {
    if (chunk.dim(i) > full.dim(i)) {
      return Status::InvalidArgument("chunk larger than the dataset");
    }
    if ((chunk_pos[i] + 1) * chunk.dim(i) > full.dim(i)) {
      return Status::OutOfRange("chunk position beyond the dataset");
    }
  }
  return Status::OK();
}

}  // namespace

FunctionDataset::FunctionDataset(TensorShape shape, CellFn fn)
    : shape_(std::move(shape)), fn_(std::move(fn)) {}

Status FunctionDataset::ReadChunk(std::span<const uint64_t> chunk_pos,
                                  Tensor* out) {
  SS_RETURN_IF_ERROR(ValidateChunk(shape_, out->shape(), chunk_pos));
  std::vector<uint64_t> local(shape_.ndim(), 0);
  std::vector<uint64_t> global(shape_.ndim());
  do {
    for (uint32_t i = 0; i < shape_.ndim(); ++i) {
      global[i] = chunk_pos[i] * out->shape().dim(i) + local[i];
    }
    out->At(local) = fn_(global);
    ++cells_read_;
  } while (out->shape().Next(local));
  return Status::OK();
}

Result<Tensor> FunctionDataset::Materialize() {
  Tensor out(shape_);
  std::vector<uint64_t> zero(shape_.ndim(), 0);
  SS_RETURN_IF_ERROR(ReadChunk(zero, &out));
  return out;
}

Status TensorDataset::ReadChunk(std::span<const uint64_t> chunk_pos,
                                Tensor* out) {
  SS_RETURN_IF_ERROR(ValidateChunk(tensor_.shape(), out->shape(), chunk_pos));
  std::vector<uint64_t> local(tensor_.shape().ndim(), 0);
  std::vector<uint64_t> global(tensor_.shape().ndim());
  do {
    for (uint32_t i = 0; i < tensor_.shape().ndim(); ++i) {
      global[i] = chunk_pos[i] * out->shape().dim(i) + local[i];
    }
    out->At(local) = tensor_.At(global);
    ++cells_read_;
  } while (out->shape().Next(local));
  return Status::OK();
}

}  // namespace shiftsplit
