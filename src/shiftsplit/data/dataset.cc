#include "shiftsplit/data/dataset.h"

#include <algorithm>

namespace shiftsplit {

namespace {

Status ValidateChunk(const TensorShape& full, const TensorShape& chunk,
                     std::span<const uint64_t> chunk_pos) {
  if (chunk.ndim() != full.ndim() || chunk_pos.size() != full.ndim()) {
    return Status::InvalidArgument("chunk dimensionality mismatch");
  }
  for (uint32_t i = 0; i < full.ndim(); ++i) {
    if (chunk.dim(i) > full.dim(i)) {
      return Status::InvalidArgument("chunk larger than the dataset");
    }
    if ((chunk_pos[i] + 1) * chunk.dim(i) > full.dim(i)) {
      return Status::OutOfRange("chunk position beyond the dataset");
    }
  }
  return Status::OK();
}

}  // namespace

FunctionDataset::FunctionDataset(TensorShape shape, CellFn fn)
    : shape_(std::move(shape)), fn_(std::move(fn)) {}

Status FunctionDataset::ReadChunk(std::span<const uint64_t> chunk_pos,
                                  Tensor* out) {
  SS_RETURN_IF_ERROR(ValidateChunk(shape_, out->shape(), chunk_pos));
  // Row-wise fill: cells are generated in flat row-major order, so only the
  // innermost coordinate changes per cell and the row prefix advances like
  // an odometer once per row.
  const TensorShape& chunk = out->shape();
  const uint32_t d = chunk.ndim();
  const uint32_t inner = d - 1;
  const uint64_t width = chunk.dim(inner);
  const uint64_t rows = out->size() / width;
  std::vector<uint64_t> base(d), local(d, 0), global(d);
  for (uint32_t i = 0; i < d; ++i) {
    base[i] = chunk_pos[i] * chunk.dim(i);
  }
  const std::span<double> dst = out->data();
  uint64_t flat = 0;
  for (uint64_t row = 0; row < rows; ++row) {
    for (uint32_t i = 0; i < inner; ++i) {
      global[i] = base[i] + local[i];
    }
    for (uint64_t x = 0; x < width; ++x) {
      global[inner] = base[inner] + x;
      dst[flat++] = fn_(global);
    }
    uint32_t i = inner;
    while (i-- > 0) {
      if (++local[i] < chunk.dim(i)) break;
      local[i] = 0;
    }
  }
  CountCellsRead(out->size());
  return Status::OK();
}

Result<Tensor> FunctionDataset::Materialize() {
  Tensor out(shape_);
  std::vector<uint64_t> zero(shape_.ndim(), 0);
  SS_RETURN_IF_ERROR(ReadChunk(zero, &out));
  return out;
}

Status TensorDataset::ReadChunk(std::span<const uint64_t> chunk_pos,
                                Tensor* out) {
  SS_RETURN_IF_ERROR(ValidateChunk(tensor_.shape(), out->shape(), chunk_pos));
  // Both tensors are row-major, so each chunk row is one contiguous copy
  // from the backing tensor; the row prefix advances like an odometer.
  const TensorShape& full = tensor_.shape();
  const TensorShape& chunk = out->shape();
  const uint32_t d = chunk.ndim();
  const uint32_t inner = d - 1;
  const uint64_t width = chunk.dim(inner);
  const uint64_t rows = out->size() / width;
  std::vector<uint64_t> local(d, 0);
  const std::span<const double> src = tensor_.data();
  const std::span<double> dst = out->data();
  uint64_t flat = 0;
  for (uint64_t row = 0; row < rows; ++row) {
    uint64_t src_off = 0;
    for (uint32_t i = 0; i < d; ++i) {
      src_off += (chunk_pos[i] * chunk.dim(i) + local[i]) * full.stride(i);
    }
    std::copy_n(src.begin() + src_off, width, dst.begin() + flat);
    flat += width;
    uint32_t i = inner;
    while (i-- > 0) {
      if (++local[i] < chunk.dim(i)) break;
      local[i] = 0;
    }
  }
  CountCellsRead(out->size());
  return Status::OK();
}

}  // namespace shiftsplit
