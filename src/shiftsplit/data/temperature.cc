#include "shiftsplit/data/temperature.h"

#include <cmath>

#include "shiftsplit/util/random.h"

namespace shiftsplit {

namespace {

// Smooth deterministic pseudo-noise: a small sum of incommensurate
// sinusoids keyed by the seed, so neighbouring cells correlate like weather.
double SmoothNoise(double x, double y, double z, double t, uint64_t seed) {
  Xoshiro256 rng(seed);
  double value = 0.0;
  for (int h = 0; h < 4; ++h) {
    const double fx = rng.NextUniform(0.5, 3.0);
    const double fy = rng.NextUniform(0.5, 3.0);
    const double fz = rng.NextUniform(0.5, 2.0);
    const double ft = rng.NextUniform(1.0, 6.0);
    const double phase = rng.NextUniform(0.0, 2.0 * M_PI);
    value += std::sin(fx * x + fy * y + fz * z + ft * t + phase) /
             static_cast<double>(h + 1);
  }
  return value;
}

}  // namespace

std::unique_ptr<FunctionDataset> MakeTemperatureDataset(
    const TemperatureOptions& options) {
  TensorShape shape({uint64_t{1} << options.log_lat,
                     uint64_t{1} << options.log_lon,
                     uint64_t{1} << options.log_alt,
                     uint64_t{1} << options.log_time});
  const double lat_n = static_cast<double>(shape.dim(0));
  const double lon_n = static_cast<double>(shape.dim(1));
  const double alt_n = static_cast<double>(shape.dim(2));
  const double time_n = static_cast<double>(shape.dim(3));
  const uint64_t seed = options.seed;
  auto fn = [=](std::span<const uint64_t> c) -> double {
    // Normalized coordinates.
    const double lat = static_cast<double>(c[0]) / lat_n;  // 0=south pole
    const double lon = static_cast<double>(c[1]) / lon_n;
    const double alt = static_cast<double>(c[2]) / alt_n;
    const double t = static_cast<double>(c[3]) / time_n;

    // Mean surface temperature by latitude: warm equator, cold poles.
    const double equator = std::sin(M_PI * lat);            // 0..1..0
    double celsius = -25.0 + 55.0 * equator;
    // Altitude lapse rate: ~6.5 C per km over an ~8 km column.
    celsius -= 6.5 * 8.0 * alt;
    // Seasonal cycle over the 18-month window, stronger away from the
    // equator and opposite between hemispheres.
    const double season = std::sin(2.0 * M_PI * 1.5 * t);
    celsius += 12.0 * (lat - 0.5) * 2.0 * season;
    // Diurnal cycle: samples alternate day/night.
    celsius += 4.0 * (c[3] % 2 == 0 ? 1.0 : -1.0) * equator;
    // Continental pattern along longitude.
    celsius += 3.0 * std::sin(2.0 * M_PI * 2.0 * lon + 1.0);
    // Smooth weather noise.
    celsius += 2.5 * SmoothNoise(2.0 * M_PI * lat, 2.0 * M_PI * lon,
                                 2.0 * M_PI * alt, 2.0 * M_PI * t, seed);
    return celsius;
  };
  return std::make_unique<FunctionDataset>(shape, std::move(fn));
}

}  // namespace shiftsplit
