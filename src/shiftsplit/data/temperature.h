// Synthetic TEMPERATURE dataset — stand-in for the paper's proprietary JPL
// dataset (global temperatures at lat x lon x altitude x time, sampled twice
// a day for 18 months, 16 GB total).
//
// The generator produces a deterministic, physically-plausible smooth field:
// latitude gradient, altitude lapse rate, seasonal and diurnal cycles, a
// longitudinal continental pattern and smooth pseudo-random weather noise.
// The transformation experiments measure I/O counts, which depend only on
// the array shape and algorithm parameters — not cell values — so the
// substitution preserves every curve of Figures 11 and 12 (see DESIGN.md).

#ifndef SHIFTSPLIT_DATA_TEMPERATURE_H_
#define SHIFTSPLIT_DATA_TEMPERATURE_H_

#include <memory>

#include "shiftsplit/data/dataset.h"

namespace shiftsplit {

/// \brief Parameters of the synthetic temperature cube.
struct TemperatureOptions {
  uint32_t log_lat = 5;   ///< 2^5 = 32 latitude bands
  uint32_t log_lon = 6;   ///< 64 longitude bands
  uint32_t log_alt = 3;   ///< 8 altitude levels
  uint32_t log_time = 7;  ///< 128 half-day samples
  uint64_t seed = 20050614;  ///< SIGMOD 2005 opening day
};

/// \brief Creates the 4-d (lat, lon, alt, time) temperature dataset.
std::unique_ptr<FunctionDataset> MakeTemperatureDataset(
    const TemperatureOptions& options = {});

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_DATA_TEMPERATURE_H_
