// Dataset abstraction: the massive multidimensional arrays the paper
// transforms are streamed chunk by chunk — they never fit in memory, so a
// ChunkSource materializes one chunk at a time (from a generator function,
// an in-memory tensor, or a block file).

#ifndef SHIFTSPLIT_DATA_DATASET_H_
#define SHIFTSPLIT_DATA_DATASET_H_

#include <atomic>
#include <functional>
#include <memory>

#include "shiftsplit/util/status.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Streamable multidimensional dataset.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Full dataset shape (every extent a power of two).
  virtual const TensorShape& shape() const = 0;

  /// \brief Fills `out` (whose shape defines the chunk extents) with the
  /// chunk at per-dimension chunk position `chunk_pos` (i.e. data coordinates
  /// chunk_pos[i] * out->shape().dim(i) + local[i]).
  virtual Status ReadChunk(std::span<const uint64_t> chunk_pos,
                           Tensor* out) = 0;

  /// \brief True when concurrent ReadChunk calls (into distinct output
  /// tensors) are safe. Sources default to thread-compatible; the parallel
  /// ingest pipeline serializes reads unless this returns true.
  virtual bool thread_safe_reads() const { return false; }

  /// Number of data cells read so far (the source side of the I/O cost).
  uint64_t cells_read() const {
    return cells_read_.load(std::memory_order_relaxed);
  }

 protected:
  /// Implementations accumulate per-chunk cell counts with one call.
  void CountCellsRead(uint64_t cells) {
    cells_read_.fetch_add(cells, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> cells_read_{0};
};

/// \brief Dataset defined by a coordinate function — deterministic, zero
/// memory, re-streamable. All synthetic datasets are built on this.
class FunctionDataset : public ChunkSource {
 public:
  using CellFn = std::function<double(std::span<const uint64_t>)>;

  FunctionDataset(TensorShape shape, CellFn fn);

  const TensorShape& shape() const override { return shape_; }
  Status ReadChunk(std::span<const uint64_t> chunk_pos, Tensor* out) override;

  /// The cell function is required to be a pure function of coordinates, so
  /// concurrent reads into distinct tensors are safe.
  bool thread_safe_reads() const override { return true; }

  /// \brief Direct cell access (used by tests and quality checks).
  double Cell(std::span<const uint64_t> coords) const { return fn_(coords); }

  /// \brief Materializes the whole dataset (small datasets / tests only).
  Result<Tensor> Materialize();

 private:
  TensorShape shape_;
  CellFn fn_;
};

/// \brief Dataset backed by an in-memory tensor.
class TensorDataset : public ChunkSource {
 public:
  explicit TensorDataset(Tensor tensor) : tensor_(std::move(tensor)) {}

  const TensorShape& shape() const override { return tensor_.shape(); }
  Status ReadChunk(std::span<const uint64_t> chunk_pos, Tensor* out) override;

  /// Reads only touch the immutable backing tensor.
  bool thread_safe_reads() const override { return true; }

  const Tensor& tensor() const { return tensor_; }

 private:
  Tensor tensor_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_DATA_DATASET_H_
