// Dataset abstraction: the massive multidimensional arrays the paper
// transforms are streamed chunk by chunk — they never fit in memory, so a
// ChunkSource materializes one chunk at a time (from a generator function,
// an in-memory tensor, or a block file).

#ifndef SHIFTSPLIT_DATA_DATASET_H_
#define SHIFTSPLIT_DATA_DATASET_H_

#include <functional>
#include <memory>

#include "shiftsplit/util/status.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Streamable multidimensional dataset.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Full dataset shape (every extent a power of two).
  virtual const TensorShape& shape() const = 0;

  /// \brief Fills `out` (whose shape defines the chunk extents) with the
  /// chunk at per-dimension chunk position `chunk_pos` (i.e. data coordinates
  /// chunk_pos[i] * out->shape().dim(i) + local[i]).
  virtual Status ReadChunk(std::span<const uint64_t> chunk_pos,
                           Tensor* out) = 0;

  /// Number of data cells read so far (the source side of the I/O cost).
  uint64_t cells_read() const { return cells_read_; }

 protected:
  uint64_t cells_read_ = 0;
};

/// \brief Dataset defined by a coordinate function — deterministic, zero
/// memory, re-streamable. All synthetic datasets are built on this.
class FunctionDataset : public ChunkSource {
 public:
  using CellFn = std::function<double(std::span<const uint64_t>)>;

  FunctionDataset(TensorShape shape, CellFn fn);

  const TensorShape& shape() const override { return shape_; }
  Status ReadChunk(std::span<const uint64_t> chunk_pos, Tensor* out) override;

  /// \brief Direct cell access (used by tests and quality checks).
  double Cell(std::span<const uint64_t> coords) const { return fn_(coords); }

  /// \brief Materializes the whole dataset (small datasets / tests only).
  Result<Tensor> Materialize();

 private:
  TensorShape shape_;
  CellFn fn_;
};

/// \brief Dataset backed by an in-memory tensor.
class TensorDataset : public ChunkSource {
 public:
  explicit TensorDataset(Tensor tensor) : tensor_(std::move(tensor)) {}

  const TensorShape& shape() const override { return tensor_.shape(); }
  Status ReadChunk(std::span<const uint64_t> chunk_pos, Tensor* out) override;

  const Tensor& tensor() const { return tensor_; }

 private:
  Tensor tensor_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_DATA_DATASET_H_
