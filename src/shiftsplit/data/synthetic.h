// Generic synthetic datasets for property tests and parameter sweeps:
// uniform noise, Zipf-skewed sparse cubes, and smooth separable fields.

#ifndef SHIFTSPLIT_DATA_SYNTHETIC_H_
#define SHIFTSPLIT_DATA_SYNTHETIC_H_

#include <memory>

#include "shiftsplit/data/dataset.h"

namespace shiftsplit {

/// \brief Uniform pseudo-random values in [lo, hi), deterministic per cell.
std::unique_ptr<FunctionDataset> MakeUniformDataset(TensorShape shape,
                                                    double lo, double hi,
                                                    uint64_t seed);

/// \brief Sparse dataset: roughly `density` of the cells are non-zero, with
/// exponential magnitudes; non-zero placement is Zipf-clustered along the
/// first dimension (skewed hot region).
std::unique_ptr<FunctionDataset> MakeSparseDataset(TensorShape shape,
                                                   double density,
                                                   double zipf_alpha,
                                                   uint64_t seed);

/// \brief Smooth separable field: products of low-frequency sinusoids —
/// highly compressible, the regime where K-term synopses shine.
std::unique_ptr<FunctionDataset> MakeSmoothDataset(TensorShape shape,
                                                   uint64_t seed);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_DATA_SYNTHETIC_H_
