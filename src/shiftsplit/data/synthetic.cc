#include "shiftsplit/data/synthetic.h"

#include <cmath>

#include "shiftsplit/util/random.h"

namespace shiftsplit {

namespace {

uint64_t CellSeed(std::span<const uint64_t> c, uint64_t seed) {
  uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  for (uint64_t x : c) {
    h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

std::unique_ptr<FunctionDataset> MakeUniformDataset(TensorShape shape,
                                                    double lo, double hi,
                                                    uint64_t seed) {
  auto fn = [=](std::span<const uint64_t> c) -> double {
    Xoshiro256 rng(CellSeed(c, seed));
    return rng.NextUniform(lo, hi);
  };
  return std::make_unique<FunctionDataset>(std::move(shape), std::move(fn));
}

std::unique_ptr<FunctionDataset> MakeSparseDataset(TensorShape shape,
                                                   double density,
                                                   double zipf_alpha,
                                                   uint64_t seed) {
  const double hot_extent = static_cast<double>(shape.dim(0));
  auto fn = [=](std::span<const uint64_t> c) -> double {
    Xoshiro256 rng(CellSeed(c, seed));
    // Zipf-like skew: cells with small first coordinate are denser.
    const double rank = (static_cast<double>(c[0]) + 1.0) / hot_extent;
    const double local_density =
        std::min(1.0, density * std::pow(rank, -zipf_alpha));
    if (rng.NextDouble() > local_density) return 0.0;
    return rng.NextExponential(10.0);
  };
  return std::make_unique<FunctionDataset>(std::move(shape), std::move(fn));
}

std::unique_ptr<FunctionDataset> MakeSmoothDataset(TensorShape shape,
                                                   uint64_t seed) {
  const uint32_t d = shape.ndim();
  std::vector<double> freq(d), phase(d);
  Xoshiro256 rng(seed);
  for (uint32_t i = 0; i < d; ++i) {
    freq[i] = rng.NextUniform(0.5, 2.5);
    phase[i] = rng.NextUniform(0.0, 2.0 * M_PI);
  }
  std::vector<double> extents(d);
  for (uint32_t i = 0; i < d; ++i) {
    extents[i] = static_cast<double>(shape.dim(i));
  }
  auto fn = [=](std::span<const uint64_t> c) -> double {
    double value = 1.0;
    for (uint32_t i = 0; i < d; ++i) {
      value *= std::sin(2.0 * M_PI * freq[i] *
                            static_cast<double>(c[i]) / extents[i] +
                        phase[i]);
    }
    return 10.0 * value;
  };
  return std::make_unique<FunctionDataset>(std::move(shape), std::move(fn));
}

}  // namespace shiftsplit
