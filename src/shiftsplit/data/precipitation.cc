#include "shiftsplit/data/precipitation.h"

#include <cmath>

#include "shiftsplit/util/bitops.h"
#include "shiftsplit/util/random.h"

namespace shiftsplit {

namespace {

// Daily precipitation (mm) at grid cell (row, col) on absolute day `day`.
double PrecipitationCell(uint64_t row, uint64_t col, uint64_t day,
                         const PrecipitationOptions& options) {
  const double lat_n = static_cast<double>(uint64_t{1} << options.log_lat);
  const double lon_n = static_cast<double>(uint64_t{1} << options.log_lon);
  // Seasonal intensity: wet winters (day 0 = January 1st).
  const double year_phase =
      2.0 * M_PI * static_cast<double>(day % 384) / 384.0;
  const double season = 0.6 + 0.4 * std::cos(year_phase);
  // Spatial gradient: wetter towards the coast (low column index).
  const double coast = 1.5 - static_cast<double>(col) / lon_n;
  const double ridge =
      1.0 + 0.3 * std::sin(M_PI * static_cast<double>(row) / lat_n);
  // Per-cell-day deterministic randomness.
  Xoshiro256 rng(options.seed * 0x9e3779b97f4a7c15ull + day * 65537 +
                 row * 257 + col);
  const double wet_probability = 0.25 + 0.45 * season;
  if (rng.NextDouble() > wet_probability) return 0.0;  // dry day
  return rng.NextExponential(6.0 * season * coast * ridge);
}

}  // namespace

Tensor MakePrecipitationMonth(uint64_t month,
                              const PrecipitationOptions& options) {
  TensorShape shape({uint64_t{1} << options.log_lat,
                     uint64_t{1} << options.log_lon,
                     options.days_per_month});
  Tensor slab(shape);
  std::vector<uint64_t> c(3, 0);
  do {
    slab.At(c) = PrecipitationCell(c[0], c[1],
                                   month * options.days_per_month + c[2],
                                   options);
  } while (shape.Next(c));
  return slab;
}

std::unique_ptr<FunctionDataset> MakePrecipitationDataset(
    uint64_t months, const PrecipitationOptions& options) {
  const uint64_t days = NextPowerOfTwo(months * options.days_per_month);
  TensorShape shape({uint64_t{1} << options.log_lat,
                     uint64_t{1} << options.log_lon, days});
  const uint64_t total_days = months * options.days_per_month;
  auto fn = [=](std::span<const uint64_t> c) -> double {
    if (c[2] >= total_days) return 0.0;  // beyond the recorded period
    return PrecipitationCell(c[0], c[1], c[2], options);
  };
  return std::make_unique<FunctionDataset>(shape, std::move(fn));
}

}  // namespace shiftsplit
