// Intent journal: the redo log that makes multi-block flushes atomic.
//
// Commit protocol (BufferPool::FlushAtomic):
//   1. AppendCommit — the full dirty block set (ids + payload images +
//      CRC32Cs) is written to the sidecar journal file as one commit record
//      and fsynced. From this point the commit is durable.
//   2. The blocks are written in place and the device is fsynced.
//   3. Truncate — the journal is removed; the commit is complete.
//
// Recovery (TiledStore::Open → Recover): a journal holding a complete,
// checksum-valid commit record is replayed into the device (idempotent
// redo — step 2 may have been interrupted anywhere); a torn or invalid
// record means step 2 never started, so it is discarded (rollback). Either
// way the store reopens in exactly the pre- or post-commit state — never a
// mix.

#ifndef SHIFTSPLIT_STORAGE_JOURNAL_H_
#define SHIFTSPLIT_STORAGE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/storage/block_manager.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief One block image inside a commit record.
struct JournalEntry {
  uint64_t block_id = 0;
  std::span<const double> data;  ///< block_size doubles, not owned
};

/// \brief Sidecar redo journal holding at most one commit record.
class Journal {
 public:
  /// \brief Test hook called before every physical journal step ("append",
  /// "append-tail", "fsync", "truncate"); returning an error aborts the
  /// step, simulating a power cut at that point. Production journals have
  /// no hook.
  using Hook = std::function<Status(const char* op)>;

  explicit Journal(std::string path) : path_(std::move(path)) {}

  void set_hook(Hook hook) { hook_ = std::move(hook); }

  /// \brief Durably writes one commit record: after OK, a crash at any later
  /// point of the commit is recoverable by replay. Entries must all have
  /// `block_size` doubles. Overwrites any previous (completed) record.
  Status AppendCommit(std::span<const JournalEntry> entries,
                      uint64_t block_size);

  /// \brief Removes the journal once the in-place writes are durable,
  /// completing the commit. Idempotent.
  Status Truncate();

  struct RecoveryResult {
    bool replayed = false;     ///< a complete commit record was redone
    bool rolled_back = false;  ///< a torn/invalid record was discarded
    uint64_t blocks = 0;       ///< blocks rewritten by replay
  };

  /// \brief Replays or discards whatever the journal holds (see file
  /// comment), removing it afterwards. A missing or empty journal is a
  /// clean open. Fails only on real I/O errors reading the journal or
  /// writing the device — corruption of the journal itself is a rollback,
  /// not an error.
  Result<RecoveryResult> Recover(BlockManager* device);

  const std::string& path() const { return path_; }
  uint64_t commits() const { return commits_; }
  uint64_t replays() const { return replays_; }
  uint64_t rollbacks() const { return rollbacks_; }

 private:
  Status CallHook(const char* op) {
    return hook_ ? hook_(op) : Status::OK();
  }
  // fsyncs the directory containing the journal so creation/removal of the
  // file itself is durable.
  Status SyncParentDir();

  std::string path_;
  Hook hook_;
  uint64_t commits_ = 0;
  uint64_t replays_ = 0;
  uint64_t rollbacks_ = 0;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_JOURNAL_H_
