// Intent journal: the redo log that makes multi-block flushes atomic.
//
// Commit protocol (BufferPool::FlushAtomic):
//   1. AppendCommit — the full dirty block set (ids + payload images +
//      CRC32Cs) is written to the sidecar journal file as one commit record
//      and fsynced. From this point the commit is durable.
//   2. The blocks are written in place and the device is fsynced.
//   3. Truncate — the journal is removed; the commit is complete.
//
// Recovery (TiledStore::Open → Recover): a journal holding a complete,
// checksum-valid commit record is replayed into the device (idempotent
// redo — step 2 may have been interrupted anywhere); a torn or invalid
// record means step 2 never started, so it is discarded (rollback). Either
// way the store reopens in exactly the pre- or post-commit state — never a
// mix.

#ifndef SHIFTSPLIT_STORAGE_JOURNAL_H_
#define SHIFTSPLIT_STORAGE_JOURNAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/storage/block_manager.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief One block image inside a commit record.
struct JournalEntry {
  uint64_t block_id = 0;
  std::span<const double> data;  ///< block_size doubles, not owned
};

/// \brief Sidecar redo journal holding at most one commit record.
class Journal {
 public:
  /// \brief Test hook called before every physical journal step ("append",
  /// "append-tail", "fsync", "truncate"); returning an error aborts the
  /// step, simulating a power cut at that point. Production journals have
  /// no hook.
  using Hook = std::function<Status(const char* op)>;

  explicit Journal(std::string path) : path_(std::move(path)) {}

  void set_hook(Hook hook) { hook_ = std::move(hook); }

  /// \brief Durably writes one commit record: after OK, a crash at any later
  /// point of the commit is recoverable by replay. Entries must all have
  /// `block_size` doubles. Overwrites any previous (completed) record.
  Status AppendCommit(std::span<const JournalEntry> entries,
                      uint64_t block_size);

  /// \brief Removes the journal once the in-place writes are durable,
  /// completing the commit. Idempotent.
  Status Truncate();

  struct RecoveryResult {
    bool replayed = false;     ///< a complete commit record was redone
    bool rolled_back = false;  ///< a torn/invalid record was discarded
    uint64_t blocks = 0;       ///< blocks rewritten by replay
  };

  /// \brief Replays or discards whatever the journal holds (see file
  /// comment), removing it afterwards. A missing or empty journal is a
  /// clean open. Fails only on real I/O errors reading the journal or
  /// writing the device — corruption of the journal itself is a rollback,
  /// not an error.
  Result<RecoveryResult> Recover(BlockManager* device);

  const std::string& path() const { return path_; }
  uint64_t commits() const { return commits_; }
  uint64_t replays() const { return replays_; }
  uint64_t rollbacks() const { return rollbacks_; }

 private:
  Status CallHook(const char* op) {
    return hook_ ? hook_(op) : Status::OK();
  }
  // fsyncs the directory containing the journal so creation/removal of the
  // file itself is durable.
  Status SyncParentDir();

  std::string path_;
  Hook hook_;
  uint64_t commits_ = 0;
  uint64_t replays_ = 0;
  uint64_t rollbacks_ = 0;
};

/// \brief One buffered cell delta as persisted by DeltaLog.
struct DeltaRecord {
  uint64_t seq = 0;                    ///< global arrival sequence number
  double value = 0.0;                  ///< additive delta for the cell
  std::vector<uint64_t> coords;        ///< cell coordinates (ndim entries)
};

/// \brief Append-only sidecar log of individual cell deltas — the durability
/// companion of the serving layer's DeltaBuffer.
///
/// Unlike Journal (one redo record per atomic flush, truncated after every
/// commit), DeltaLog accumulates many small records between maintenance
/// drains: a delta is acknowledged to the writer once its record is fsynced,
/// and the log is truncated only when every logged delta has been applied to
/// the store. Recovery therefore replays `seq > applied_seq` records back
/// into the buffer (ServingCube::OpenOnDisk), making buffered-but-unapplied
/// deltas crash-safe.
///
/// Record layout (little-endian): u32 magic 'SSDR', u32 ndim, u64 seq,
/// f64 value, ndim×u64 coords, u32 crc32c(all preceding record bytes),
/// u32 zero pad. Replay stops at the first torn or checksum-invalid record
/// and truncates the file there, so a torn tail (crash mid-append, never
/// acknowledged) cannot strand later appends behind garbage.
class DeltaLog {
 public:
  explicit DeltaLog(std::string path) : path_(std::move(path)) {}

  /// \brief Test hook called before every physical flush (the write+fsync
  /// of one group-commit batch); returning an error fails the flush with
  /// exactly that status, simulating a full or failing disk without
  /// touching the file. The batch is retained just as for a real failure.
  /// Production logs have no hook.
  using Hook = std::function<Status()>;
  void set_flush_hook_for_test(Hook hook) {
    std::lock_guard<std::mutex> lock(mu_);
    flush_hook_ = std::move(hook);
  }

  /// \brief Stages one record in memory, in call order. Thread-compatible
  /// with Sync; the caller serializes Append calls (the serving buffer lock)
  /// so file order equals seq order.
  void Append(const DeltaRecord& record);

  /// \brief Durably persists every staged record with seq ≤ `seq` (group
  /// commit: one writer flushes the whole pending batch on behalf of
  /// concurrent callers, which wait). After OK, those records survive a
  /// crash. On a write/fsync failure the batch is retained and the error
  /// returned; callers that were waiting on the failed flush retry it
  /// themselves (and surface their own error if the fault persists). A
  /// full disk (ENOSPC/EDQUOT) returns kResourceExhausted — backpressure,
  /// not corruption: the retained batch flushes with the next Sync once
  /// space frees up, so the caller simply retries the ack later.
  Status Sync(uint64_t seq);

  /// \brief Reads the log, returning every valid record in file order. A
  /// torn or invalid tail is dropped and the file truncated to the last
  /// valid boundary; a missing file yields an empty vector.
  Result<std::vector<DeltaRecord>> Replay();

  /// \brief Removes the log (all records applied). Idempotent.
  Status Truncate();

  const std::string& path() const { return path_; }
  uint64_t appends() const;
  uint64_t syncs() const;
  uint64_t durable_seq() const;
  uint64_t torn_records() const { return torn_records_; }

 private:
  Status FlushPendingLocked(std::unique_lock<std::mutex>& lock);

  std::string path_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Hook flush_hook_;                    ///< test-only flush fault injector
  std::vector<uint8_t> pending_;       ///< encoded, not yet written bytes
  uint64_t pending_max_seq_ = 0;       ///< highest seq staged in pending_
  uint64_t durable_seq_ = 0;           ///< highest seq known fsynced
  bool flushing_ = false;              ///< a leader flush is in flight
  bool created_synced_ = false;        ///< parent dir fsynced after creation
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
  uint64_t torn_records_ = 0;          ///< invalid tail records dropped
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_JOURNAL_H_
