#include "shiftsplit/storage/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"

namespace shiftsplit {

namespace {

// fsyncs an already-written file by path, then closes it.
Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open for fsync " + path + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open dir " + parent.string() + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync dir " + parent.string() + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

const char* StoreFormToString(StoreForm form) {
  switch (form) {
    case StoreForm::kStandard:
      return "standard";
    case StoreForm::kNonstandard:
      return "nonstandard";
    case StoreForm::kNaive:
      return "naive";
  }
  return "unknown";
}

Result<StoreForm> StoreFormFromString(const std::string& name) {
  if (name == "standard") return StoreForm::kStandard;
  if (name == "nonstandard") return StoreForm::kNonstandard;
  if (name == "naive") return StoreForm::kNaive;
  return Status::InvalidArgument("unknown store form: " + name);
}

Status StoreManifest::Save(const std::string& path) const {
  if (format_version < 1 || format_version > 3) {
    return Status::InvalidArgument("unsupported manifest format_version: " +
                                   std::to_string(format_version));
  }
  if (format_version == 3 && parity_group == 0) {
    return Status::InvalidArgument(
        "manifest format v3 requires a nonzero parity_group");
  }
  // Write-temp + fsync + rename + fsync-dir so a crash mid-save leaves
  // either the previous manifest or the complete new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open manifest for writing: " + tmp);
    }
    out << "format=shiftsplit-store-v" << format_version << "\n";
    out << "form=" << StoreFormToString(form) << "\n";
    out << "norm=" << NormalizationToString(norm) << "\n";
    out << "b=" << b << "\n";
    out << "block_capacity=" << block_capacity << "\n";
    out << "log_dims=";
    for (size_t i = 0; i < log_dims.size(); ++i) {
      if (i > 0) out << ",";
      out << log_dims[i];
    }
    out << "\n";
    out << "filled=" << filled << "\n";
    if (format_version >= 2) {
      out << "epoch=" << store_epoch << "\n";
    }
    if (format_version >= 3) {
      out << "parity_group=" << parity_group << "\n";
    }
    out.flush();
    if (!out) {
      const Status status =
          Status::IOError("failed writing manifest: " + tmp);
      std::remove(tmp.c_str());
      return status;
    }
  }
  Status status = FsyncPath(tmp);
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IOError("rename " + tmp + " -> " + path + ": " +
                             std::strerror(errno));
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  return FsyncParentDir(path);
}

Result<StoreManifest> StoreManifest::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open manifest: " + path);
  }
  StoreManifest manifest;
  bool saw_format = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed manifest line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      if (value == "shiftsplit-store-v1") {
        manifest.format_version = 1;
      } else if (value == "shiftsplit-store-v2") {
        manifest.format_version = 2;
      } else if (value == "shiftsplit-store-v3") {
        manifest.format_version = 3;
      } else {
        return Status::InvalidArgument("unsupported manifest format: " +
                                       value);
      }
      saw_format = true;
    } else if (key == "epoch") {
      manifest.store_epoch = std::stoull(value);
    } else if (key == "parity_group") {
      manifest.parity_group = std::stoull(value);
    } else if (key == "form") {
      SS_ASSIGN_OR_RETURN(manifest.form, StoreFormFromString(value));
    } else if (key == "norm") {
      if (value == "average") {
        manifest.norm = Normalization::kAverage;
      } else if (value == "orthonormal") {
        manifest.norm = Normalization::kOrthonormal;
      } else {
        return Status::InvalidArgument("unknown normalization: " + value);
      }
    } else if (key == "b") {
      manifest.b = static_cast<uint32_t>(std::stoul(value));
    } else if (key == "block_capacity") {
      manifest.block_capacity = std::stoull(value);
    } else if (key == "filled") {
      manifest.filled = std::stoull(value);
    } else if (key == "log_dims") {
      manifest.log_dims.clear();
      std::stringstream ss(value);
      std::string part;
      while (std::getline(ss, part, ',')) {
        manifest.log_dims.push_back(
            static_cast<uint32_t>(std::stoul(part)));
      }
    } else {
      return Status::InvalidArgument("unknown manifest key: " + key);
    }
  }
  if (!saw_format) {
    return Status::InvalidArgument("manifest is missing the format line");
  }
  if (manifest.log_dims.empty()) {
    return Status::InvalidArgument("manifest is missing log_dims");
  }
  if (manifest.format_version == 3 && manifest.parity_group == 0) {
    return Status::InvalidArgument(
        "v3 manifest is missing a nonzero parity_group");
  }
  return manifest;
}

std::vector<uint32_t> ShardSetManifest::ShardLogDims() const {
  std::vector<uint32_t> local = log_dims;
  if (split_dim < local.size()) {
    uint32_t k = 0;
    while ((uint32_t{1} << k) < num_shards) ++k;
    local[split_dim] -= k;
  }
  return local;
}

std::string ShardSetManifest::ShardDirName(uint32_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%04u", shard);
  return buf;
}

Status ShardSetManifest::Save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open shard-set manifest for writing: " +
                             tmp);
    }
    out << "format=shiftsplit-shardset-v1\n";
    out << "num_shards=" << num_shards << "\n";
    out << "split_dim=" << split_dim << "\n";
    out << "log_dims=";
    for (size_t i = 0; i < log_dims.size(); ++i) {
      if (i > 0) out << ",";
      out << log_dims[i];
    }
    out << "\n";
    for (const std::string& dir : shard_dirs) {
      out << "shard=" << dir << "\n";
    }
    out.flush();
    if (!out) {
      const Status status =
          Status::IOError("failed writing shard-set manifest: " + tmp);
      std::remove(tmp.c_str());
      return status;
    }
  }
  Status status = FsyncPath(tmp);
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IOError("rename " + tmp + " -> " + path + ": " +
                             std::strerror(errno));
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  return FsyncParentDir(path);
}

Result<ShardSetManifest> ShardSetManifest::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open shard-set manifest: " + path);
  }
  ShardSetManifest manifest;
  manifest.num_shards = 0;
  bool saw_format = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed shard-set line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      if (value != "shiftsplit-shardset-v1") {
        return Status::InvalidArgument("unsupported shard-set format: " +
                                       value);
      }
      saw_format = true;
    } else if (key == "num_shards") {
      manifest.num_shards = static_cast<uint32_t>(std::stoul(value));
    } else if (key == "split_dim") {
      manifest.split_dim = static_cast<uint32_t>(std::stoul(value));
    } else if (key == "log_dims") {
      manifest.log_dims.clear();
      std::stringstream ss(value);
      std::string part;
      while (std::getline(ss, part, ',')) {
        manifest.log_dims.push_back(static_cast<uint32_t>(std::stoul(part)));
      }
    } else if (key == "shard") {
      manifest.shard_dirs.push_back(value);
    } else {
      return Status::InvalidArgument("unknown shard-set key: " + key);
    }
  }
  if (!saw_format) {
    return Status::InvalidArgument(
        "shard-set manifest is missing the format line");
  }
  if (manifest.num_shards == 0 ||
      (manifest.num_shards & (manifest.num_shards - 1)) != 0) {
    return Status::InvalidArgument(
        "shard-set num_shards must be a power of two");
  }
  if (manifest.shard_dirs.size() != manifest.num_shards) {
    return Status::InvalidArgument(
        "shard-set lists " + std::to_string(manifest.shard_dirs.size()) +
        " shard dirs for num_shards=" + std::to_string(manifest.num_shards));
  }
  if (manifest.log_dims.empty() ||
      manifest.split_dim >= manifest.log_dims.size()) {
    return Status::InvalidArgument("shard-set split_dim/log_dims invalid");
  }
  uint32_t k = 0;
  while ((uint32_t{1} << k) < manifest.num_shards) ++k;
  if (k >= manifest.log_dims[manifest.split_dim]) {
    return Status::InvalidArgument(
        "shard-set partitions dimension " +
        std::to_string(manifest.split_dim) + " (log extent " +
        std::to_string(manifest.log_dims[manifest.split_dim]) +
        ") into too many shards");
  }
  return manifest;
}

Result<std::unique_ptr<TileLayout>> StoreManifest::MakeLayout() const {
  if (log_dims.empty()) {
    return Status::InvalidArgument("manifest has no dimensions");
  }
  switch (form) {
    case StoreForm::kStandard:
      return std::unique_ptr<TileLayout>(
          std::make_unique<StandardTiling>(log_dims, b));
    case StoreForm::kNonstandard: {
      for (uint32_t n : log_dims) {
        if (n != log_dims[0]) {
          return Status::InvalidArgument(
              "non-standard stores require equal extents");
        }
      }
      return std::unique_ptr<TileLayout>(std::make_unique<NonstandardTiling>(
          static_cast<uint32_t>(log_dims.size()), log_dims[0], b));
    }
    case StoreForm::kNaive: {
      if (block_capacity == 0) {
        return Status::InvalidArgument(
            "naive stores need an explicit block_capacity");
      }
      return std::unique_ptr<TileLayout>(
          std::make_unique<NaiveTiling>(log_dims, block_capacity));
    }
  }
  return Status::Internal("unhandled store form");
}

}  // namespace shiftsplit
