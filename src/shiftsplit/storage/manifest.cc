#include "shiftsplit/storage/manifest.h"

#include <fstream>
#include <sstream>

#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"

namespace shiftsplit {

const char* StoreFormToString(StoreForm form) {
  switch (form) {
    case StoreForm::kStandard:
      return "standard";
    case StoreForm::kNonstandard:
      return "nonstandard";
    case StoreForm::kNaive:
      return "naive";
  }
  return "unknown";
}

Result<StoreForm> StoreFormFromString(const std::string& name) {
  if (name == "standard") return StoreForm::kStandard;
  if (name == "nonstandard") return StoreForm::kNonstandard;
  if (name == "naive") return StoreForm::kNaive;
  return Status::InvalidArgument("unknown store form: " + name);
}

Status StoreManifest::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open manifest for writing: " + path);
  }
  out << "format=shiftsplit-store-v1\n";
  out << "form=" << StoreFormToString(form) << "\n";
  out << "norm=" << NormalizationToString(norm) << "\n";
  out << "b=" << b << "\n";
  out << "block_capacity=" << block_capacity << "\n";
  out << "log_dims=";
  for (size_t i = 0; i < log_dims.size(); ++i) {
    if (i > 0) out << ",";
    out << log_dims[i];
  }
  out << "\n";
  out << "filled=" << filled << "\n";
  out.flush();
  if (!out) {
    return Status::IOError("failed writing manifest: " + path);
  }
  return Status::OK();
}

Result<StoreManifest> StoreManifest::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open manifest: " + path);
  }
  StoreManifest manifest;
  bool saw_format = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed manifest line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      if (value != "shiftsplit-store-v1") {
        return Status::InvalidArgument("unsupported manifest format: " +
                                       value);
      }
      saw_format = true;
    } else if (key == "form") {
      SS_ASSIGN_OR_RETURN(manifest.form, StoreFormFromString(value));
    } else if (key == "norm") {
      if (value == "average") {
        manifest.norm = Normalization::kAverage;
      } else if (value == "orthonormal") {
        manifest.norm = Normalization::kOrthonormal;
      } else {
        return Status::InvalidArgument("unknown normalization: " + value);
      }
    } else if (key == "b") {
      manifest.b = static_cast<uint32_t>(std::stoul(value));
    } else if (key == "block_capacity") {
      manifest.block_capacity = std::stoull(value);
    } else if (key == "filled") {
      manifest.filled = std::stoull(value);
    } else if (key == "log_dims") {
      manifest.log_dims.clear();
      std::stringstream ss(value);
      std::string part;
      while (std::getline(ss, part, ',')) {
        manifest.log_dims.push_back(
            static_cast<uint32_t>(std::stoul(part)));
      }
    } else {
      return Status::InvalidArgument("unknown manifest key: " + key);
    }
  }
  if (!saw_format) {
    return Status::InvalidArgument("manifest is missing the format line");
  }
  if (manifest.log_dims.empty()) {
    return Status::InvalidArgument("manifest is missing log_dims");
  }
  return manifest;
}

Result<std::unique_ptr<TileLayout>> StoreManifest::MakeLayout() const {
  if (log_dims.empty()) {
    return Status::InvalidArgument("manifest has no dimensions");
  }
  switch (form) {
    case StoreForm::kStandard:
      return std::unique_ptr<TileLayout>(
          std::make_unique<StandardTiling>(log_dims, b));
    case StoreForm::kNonstandard: {
      for (uint32_t n : log_dims) {
        if (n != log_dims[0]) {
          return Status::InvalidArgument(
              "non-standard stores require equal extents");
        }
      }
      return std::unique_ptr<TileLayout>(std::make_unique<NonstandardTiling>(
          static_cast<uint32_t>(log_dims.size()), log_dims[0], b));
    }
    case StoreForm::kNaive: {
      if (block_capacity == 0) {
        return Status::InvalidArgument(
            "naive stores need an explicit block_capacity");
      }
      return std::unique_ptr<TileLayout>(
          std::make_unique<NaiveTiling>(log_dims, block_capacity));
    }
  }
  return Status::Internal("unhandled store form");
}

}  // namespace shiftsplit
