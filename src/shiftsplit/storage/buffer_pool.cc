#include "shiftsplit/storage/buffer_pool.h"

#include <cassert>

namespace shiftsplit {

BufferPool::BufferPool(BlockManager* manager, uint64_t capacity_blocks)
    : manager_(manager), capacity_(capacity_blocks) {
  assert(manager_ != nullptr);
  assert(capacity_ > 0);
}

BufferPool::~BufferPool() {
  // Best effort; callers that care about durability call Flush explicitly.
  (void)Flush();
}

Result<std::span<double>> BufferPool::GetBlock(uint64_t block_id,
                                               bool for_write) {
  auto it = frames_.find(block_id);
  if (it != frames_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    Frame& frame = *it->second;
    frame.dirty = frame.dirty || for_write;
    return std::span<double>(frame.data);
  }
  ++misses_;
  while (frames_.size() >= capacity_) {
    SS_RETURN_IF_ERROR(EvictOne());
  }
  Frame frame;
  frame.block_id = block_id;
  frame.dirty = for_write;
  frame.data.resize(manager_->block_size());
  SS_RETURN_IF_ERROR(manager_->ReadBlock(block_id, frame.data));
  lru_.push_front(std::move(frame));
  frames_[block_id] = lru_.begin();
  return std::span<double>(lru_.front().data);
}

Status BufferPool::EvictOne() {
  assert(!lru_.empty());
  Frame& victim = lru_.back();
  if (victim.dirty) {
    SS_RETURN_IF_ERROR(manager_->WriteBlock(victim.block_id, victim.data));
  }
  frames_.erase(victim.block_id);
  lru_.pop_back();
  return Status::OK();
}

Status BufferPool::Flush() {
  for (Frame& frame : lru_) {
    if (frame.dirty) {
      SS_RETURN_IF_ERROR(manager_->WriteBlock(frame.block_id, frame.data));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  SS_RETURN_IF_ERROR(Flush());
  lru_.clear();
  frames_.clear();
  return Status::OK();
}

}  // namespace shiftsplit
