#include "shiftsplit/storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>

namespace shiftsplit {

void PageGuard::Release() {
  if (frame_ == nullptr) return;
  pool_->Unpin(frame_, dirty_);
  pool_ = nullptr;
  frame_ = nullptr;
  dirty_ = false;
}

void AdmissionTicket::Release() {
  if (pool_ == nullptr) return;
  pool_->ReleaseAdmission();
  pool_ = nullptr;
}

BufferPool::BufferPool(BlockManager* manager, uint64_t capacity_blocks)
    : manager_(manager), capacity_(capacity_blocks) {
  assert(manager_ != nullptr);
  assert(capacity_ > 0);
}

BufferPool::~BufferPool() {
  // Guards hold raw frame pointers; one outliving the pool is a caller bug.
  assert(pinned_frames_ == 0 && "PageGuard outlived its BufferPool");
  // Best effort; callers that care about durability call Flush explicitly.
  const uint64_t dropped = FlushBestEffortLocked();
  if (dropped != 0) {
    std::fprintf(stderr,
                 "shiftsplit: BufferPool dropped %llu dirty frame(s) whose "
                 "write-back failed during destruction\n",
                 static_cast<unsigned long long>(dropped));
  }
}

PageGuard BufferPool::Pin(internal::PoolFrame* frame, bool for_write) {
  if (frame->pins == 0) ++pinned_frames_;
  ++frame->pins;
  return PageGuard(this, frame, for_write);
}

void BufferPool::Unpin(internal::PoolFrame* frame, bool dirty) {
  const auto lock = Lock();
  assert(frame->pins > 0);
  frame->dirty = frame->dirty || dirty;
  --frame->pins;
  if (frame->pins == 0) {
    assert(pinned_frames_ > 0);
    --pinned_frames_;
  }
}

Result<PageGuard> BufferPool::GetBlock(uint64_t block_id, bool for_write,
                                       OperationContext* ctx) {
  // The gate sits before the lock: a caller past its deadline never queues
  // on the pool mutex, so a wedged query unwinds within one block read.
  if (ctx != nullptr) SS_RETURN_IF_ERROR(ctx->Check());
  const auto lock = Lock();
  auto it = frames_.find(block_id);
  if (it != frames_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    return Pin(&*it->second, for_write);
  }
  ++misses_;
  // Choose the victim up front so a full-of-pins pool fails before any I/O.
  auto victim = lru_.end();
  if (frames_.size() >= capacity_) {
    victim = FindVictim();
    if (victim == lru_.end()) {
      return Status::ResourceExhausted(
          "all " + std::to_string(capacity_) +
          " buffer-pool frames are pinned; release a PageGuard or enlarge "
          "the pool");
    }
  }
  // Read the incoming block before touching the victim: a failed read leaves
  // cache contents, dirty bits and recency order unchanged.
  std::vector<double> data = TakeBuffer();
  SS_RETURN_IF_ERROR(manager_->ReadBlockRetry(block_id, data, ctx));
  ++io_.block_reads;
  if (victim == lru_.end()) {
    lru_.push_front(internal::PoolFrame{block_id, false, 0, std::move(data)});
    frames_[block_id] = lru_.begin();
    return Pin(&lru_.front(), for_write);
  }
  // A failed write-back also leaves the cache unchanged: the victim stays
  // resident and dirty, and the just-read data is discarded. On success the
  // victim's list node and storage are recycled in place — the steady-state
  // miss path allocates nothing.
  SS_RETURN_IF_ERROR(WriteBack(*victim));
  frames_.erase(victim->block_id);
  ++evictions_;
  victim->block_id = block_id;
  victim->dirty = false;
  victim->pins = 0;
  std::swap(victim->data, data);
  free_buffers_.push_back(std::move(data));
  lru_.splice(lru_.begin(), lru_, victim);
  frames_[block_id] = victim;
  return Pin(&*victim, for_write);
}

std::vector<double> BufferPool::TakeBuffer() {
  if (free_buffers_.empty()) {
    return std::vector<double>(manager_->block_size());
  }
  std::vector<double> buffer = std::move(free_buffers_.back());
  free_buffers_.pop_back();
  return buffer;
}

BufferPool::FrameList::iterator BufferPool::FindVictim() {
  for (auto it = std::prev(lru_.end());; --it) {
    if (it->pins == 0) return it;
    if (it == lru_.begin()) break;
  }
  return lru_.end();
}

Status BufferPool::WriteBack(internal::PoolFrame& frame) {
  if (!frame.dirty) return Status::OK();
  SS_RETURN_IF_ERROR(manager_->WriteBlock(frame.block_id, frame.data));
  ++io_.block_writes;
  ++write_backs_;
  frame.dirty = false;
  return Status::OK();
}

void BufferPool::SetAdmissionControl(uint64_t max_concurrent,
                                     uint64_t max_queue_depth,
                                     uint64_t queue_timeout_us) {
  const std::lock_guard<std::mutex> lock(admission_mu_);
  assert(admission_active_ == 0 && admission_queue_.empty() &&
         "reconfigure admission control only while no operation is in flight");
  admission_max_ = max_concurrent;
  admission_queue_cap_ = max_queue_depth;
  admission_timeout_us_ = queue_timeout_us;
}

Result<AdmissionTicket> BufferPool::AdmitOperation(OperationContext* ctx) {
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (admission_max_ == 0) return AdmissionTicket();  // control disabled
  if (ctx != nullptr) SS_RETURN_IF_ERROR(ctx->Check());
  // Fast path: a free slot and nobody queued ahead of us.
  if (admission_active_ < admission_max_ && admission_queue_.empty()) {
    ++admission_active_;
    ++admitted_;
    return AdmissionTicket(this);
  }
  if (admission_queue_.size() >= admission_queue_cap_) {
    ++admission_rejections_;
    return Status::Unavailable(
        "buffer pool at concurrency cap and its admission queue is full");
  }
  AdmissionWaiter waiter;
  admission_queue_.push_back(&waiter);
  const auto self = std::prev(admission_queue_.end());
  auto wait_deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(admission_timeout_us_);
  if (ctx != nullptr && ctx->has_deadline()) {
    wait_deadline = std::min(wait_deadline, ctx->deadline());
  }
  while (!waiter.granted) {
    if (ctx != nullptr && ctx->cancelled()) {
      admission_queue_.erase(self);
      return Status::Cancelled("operation cancelled");
    }
    if (waiter.cv.wait_until(lock, wait_deadline) ==
            std::cv_status::timeout &&
        !waiter.granted) {
      admission_queue_.erase(self);
      ++admission_timeouts_;
      if (ctx != nullptr) {
        Status gate = ctx->Check();
        if (!gate.ok()) return gate;
      }
      return Status::Unavailable(
          "timed out waiting for a buffer pool admission slot");
    }
  }
  // The grantor incremented admission_active_ on our behalf.
  ++admitted_;
  return AdmissionTicket(this);
}

void BufferPool::ReleaseAdmission() {
  const std::lock_guard<std::mutex> lock(admission_mu_);
  assert(admission_active_ > 0);
  --admission_active_;
  while (admission_active_ < admission_max_ && !admission_queue_.empty()) {
    AdmissionWaiter* next = admission_queue_.front();
    admission_queue_.pop_front();
    next->granted = true;
    ++admission_active_;
    next->cv.notify_one();
  }
}

Status BufferPool::Prefetch(std::span<const uint64_t> block_ids,
                            OperationContext* ctx) {
  if (ctx != nullptr) SS_RETURN_IF_ERROR(ctx->Check());
  const auto lock = Lock();
  // Distinct not-yet-cached ids, first-to-last, capped at the number of
  // frames the pool can actually hold alongside the pinned ones.
  const uint64_t room = capacity_ - pinned_frames_;
  std::vector<uint64_t> missing;
  missing.reserve(std::min<uint64_t>(block_ids.size(), room));
  for (uint64_t id : block_ids) {
    if (missing.size() >= room) break;
    if (frames_.contains(id)) continue;
    if (std::find(missing.begin(), missing.end(), id) != missing.end()) {
      continue;
    }
    missing.push_back(id);
  }
  if (missing.empty()) return Status::OK();
  // One vectored read for the whole missing set; a failure here leaves the
  // cache untouched.
  std::vector<double> data(missing.size() * manager_->block_size());
  SS_RETURN_IF_ERROR(manager_->ReadBlocksRetry(missing, data, ctx));
  io_.block_reads += missing.size();
  prefetched_ += missing.size();
  for (size_t i = 0; i < missing.size(); ++i) {
    const std::span<const double> src(
        data.data() + i * manager_->block_size(), manager_->block_size());
    if (frames_.size() >= capacity_) {
      auto victim = FindVictim();
      if (victim == lru_.end()) break;  // everything pinned; stop warming
      SS_RETURN_IF_ERROR(WriteBack(*victim));
      frames_.erase(victim->block_id);
      ++evictions_;
      // Recycle the victim's node and storage in place.
      victim->block_id = missing[i];
      victim->dirty = false;
      victim->pins = 0;
      std::copy(src.begin(), src.end(), victim->data.begin());
      lru_.splice(lru_.begin(), lru_, victim);
      frames_[missing[i]] = victim;
      continue;
    }
    std::vector<double> buffer = TakeBuffer();
    std::copy(src.begin(), src.end(), buffer.begin());
    lru_.push_front(
        internal::PoolFrame{missing[i], false, 0, std::move(buffer)});
    frames_[missing[i]] = lru_.begin();
  }
  return Status::OK();
}

Status BufferPool::Flush() {
  const auto lock = Lock();
  return FlushLocked();
}

Status BufferPool::FlushAtomic(Journal* journal) {
  const auto lock = Lock();
  if (journal == nullptr) return FlushLocked();
  // Snapshot the dirty set, ordered by block id so the commit record (and
  // the in-place write order) is deterministic.
  std::vector<internal::PoolFrame*> dirty;
  for (internal::PoolFrame& frame : lru_) {
    if (frame.dirty) dirty.push_back(&frame);
  }
  if (dirty.empty()) return Status::OK();
  std::sort(dirty.begin(), dirty.end(),
            [](const internal::PoolFrame* a, const internal::PoolFrame* b) {
              return a->block_id < b->block_id;
            });
  std::vector<JournalEntry> entries;
  entries.reserve(dirty.size());
  std::vector<BlockWrite> writes;
  writes.reserve(dirty.size());
  for (const internal::PoolFrame* frame : dirty) {
    entries.push_back({frame->block_id, std::span<const double>(frame->data)});
    writes.push_back({frame->block_id, std::span<const double>(frame->data)});
  }
  // Parity-enabled backends return the absolute post-commit parity images
  // of every group this batch touches; journaling them after the data
  // entries keeps parity crash-consistent with its group — replay rewrites
  // data and parity from the same record, so a crash anywhere in between
  // can never leave them disagreeing. The images are already staged on the
  // manager: the write-backs below skip incremental parity work and
  // Sync() persists the sidecar. Empty on backends without parity.
  SS_ASSIGN_OR_RETURN(const std::vector<ParityBlockImage> parity,
                      manager_->PlanParityCommit(writes));
  for (const ParityBlockImage& image : parity) {
    entries.push_back({image.block_id, std::span<const double>(image.data)});
  }
  // 1. Durable intent: the whole batch (with checksums) hits the journal
  //    before any block is touched in place.
  SS_RETURN_IF_ERROR(journal->AppendCommit(entries, manager_->block_size()));
  // 2. In-place writes + device sync. A failure here leaves the journal in
  //    place: reopen replays the full batch (idempotent redo).
  for (internal::PoolFrame* frame : dirty) {
    SS_RETURN_IF_ERROR(WriteBack(*frame));
    ++journaled_write_backs_;
  }
  SS_RETURN_IF_ERROR(manager_->Sync());
  // 3. Retire the intent; the commit is complete.
  return journal->Truncate();
}

uint64_t BufferPool::InvalidateBlocks(std::span<const uint64_t> block_ids) {
  const auto lock = Lock();
  uint64_t dropped = 0;
  for (uint64_t id : block_ids) {
    const auto it = frames_.find(id);
    if (it == frames_.end()) continue;
    // Pinned or dirty frames are left alone: a pin means a caller is still
    // reading the frame, and a dirty frame holds newer data than the disk
    // image the caller wants to re-read.
    if (it->second->pins != 0 || it->second->dirty) continue;
    free_buffers_.push_back(std::move(it->second->data));
    lru_.erase(it->second);
    frames_.erase(it);
    ++dropped;
  }
  return dropped;
}

Status BufferPool::Discard() {
  const auto lock = Lock();
  if (pinned_frames_ != 0) {
    return Status::ResourceExhausted(
        std::to_string(pinned_frames_) +
        " buffer-pool frame(s) still pinned; release all PageGuards before "
        "Discard");
  }
  lru_.clear();
  frames_.clear();
  return Status::OK();
}

Status BufferPool::FlushLocked() {
  for (internal::PoolFrame& frame : lru_) {
    SS_RETURN_IF_ERROR(WriteBack(frame));
  }
  return Status::OK();
}

uint64_t BufferPool::FlushBestEffort() {
  const auto lock = Lock();
  return FlushBestEffortLocked();
}

uint64_t BufferPool::FlushBestEffortLocked() {
  uint64_t failures = 0;
  for (internal::PoolFrame& frame : lru_) {
    if (!WriteBack(frame).ok()) {
      ++failures;
      ++flush_failures_;
    }
  }
  return failures;
}

Status BufferPool::Clear() {
  const auto lock = Lock();
  if (pinned_frames_ != 0) {
    return Status::ResourceExhausted(
        std::to_string(pinned_frames_) +
        " buffer-pool frame(s) still pinned; release all PageGuards before "
        "Clear");
  }
  SS_RETURN_IF_ERROR(FlushLocked());
  lru_.clear();
  frames_.clear();
  return Status::OK();
}

BufferPool::Stats BufferPool::stats() const {
  const auto lock = Lock();
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.write_backs = write_backs_;
  s.flush_failures = flush_failures_;
  s.prefetched = prefetched_;
  s.pinned_frames = pinned_frames_;
  s.cached_blocks = frames_.size();
  s.capacity = capacity_;
  s.io = io_;
  {
    const std::lock_guard<std::mutex> admission_lock(admission_mu_);
    s.admitted = admitted_;
    s.admission_rejections = admission_rejections_;
    s.admission_timeouts = admission_timeouts_;
  }
  return s;
}

}  // namespace shiftsplit
