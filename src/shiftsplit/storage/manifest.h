// Store manifests: a small sidecar text file making a file-backed tile
// store self-describing (decomposition form, normalization, tile size,
// dimensions, fill level), so a store written by one process can be opened
// and queried by another without out-of-band knowledge.

#ifndef SHIFTSPLIT_STORAGE_MANIFEST_H_
#define SHIFTSPLIT_STORAGE_MANIFEST_H_

#include <memory>
#include <string>
#include <vector>

#include "shiftsplit/tile/tile_layout.h"
#include "shiftsplit/util/status.h"
#include "shiftsplit/wavelet/haar.h"

namespace shiftsplit {

/// \brief Decomposition form of a stored transform.
enum class StoreForm {
  kStandard,
  kNonstandard,
  kNaive,  ///< row-major layout (baseline stores)
};

const char* StoreFormToString(StoreForm form);
Result<StoreForm> StoreFormFromString(const std::string& name);

/// \brief Everything needed to reopen a store.
///
/// Format versions: v1 stores (format=shiftsplit-store-v1) have raw
/// unchecksummed blocks and no journal; v2 stores carry a per-block CRC32C
/// footer stamped with `store_epoch` and an atomic-commit journal; v3
/// stores add per-group XOR parity (`parity_group` records the group size
/// G, blocks.bin.parity holds one parity stride per group). Load accepts
/// all three; Save writes the line matching `format_version`. A v2 store
/// opens with parity disabled and upgrades to v3 via a full repair scrub
/// (WaveletCube::UpgradeParityOnDisk).
struct StoreManifest {
  StoreForm form = StoreForm::kStandard;
  Normalization norm = Normalization::kAverage;
  uint32_t b = 2;                    ///< log2 tile edge (unused for kNaive)
  uint64_t block_capacity = 0;       ///< slots per block (kNaive only)
  std::vector<uint32_t> log_dims;    ///< per-dimension log2 extents
  uint64_t filled = 0;               ///< appending fill level (0 = full)
  uint32_t format_version = 1;       ///< 1 raw, 2 checksummed, 3 + parity
  uint64_t store_epoch = 0;          ///< footer epoch (nonzero for v2+)
  uint64_t parity_group = 0;         ///< XOR parity group size (v3 only)

  /// \brief Serializes to a key=value text file, atomically: the content is
  /// written to a temp file, fsynced, renamed over `path`, and the parent
  /// directory fsynced — a crash leaves either the old or the new manifest,
  /// never a truncated one.
  Status Save(const std::string& path) const;

  /// \brief Parses a manifest file.
  static Result<StoreManifest> Load(const std::string& path);

  /// \brief Builds the tile layout this manifest describes.
  Result<std::unique_ptr<TileLayout>> MakeLayout() const;

  bool operator==(const StoreManifest&) const = default;
};

/// \brief Manifest of a sharded store: a root directory holding 2^k fully
/// independent shard stores, each covering one dyadic sub-domain of the
/// global domain along `split_dim`. Shard `s` owns global coordinates with
/// `coord[split_dim] >> (log_dims[split_dim] - k) == s` and lives in
/// `root/shard_dirs[s]`, a self-describing store directory of its own (its
/// store.manifest records the per-shard layout: the global dimensions with
/// `split_dim` reduced by k). Saved atomically like StoreManifest.
struct ShardSetManifest {
  uint32_t num_shards = 1;            ///< 2^k shard stores
  uint32_t split_dim = 0;             ///< partitioned dimension
  std::vector<uint32_t> log_dims;     ///< per-dimension log2 extents (global)
  std::vector<std::string> shard_dirs;  ///< per-shard directory names

  /// \brief The per-shard (local) log2 extents: the global dimensions with
  /// `split_dim` reduced by log2(num_shards). Used to validate each shard's
  /// own store.manifest on open.
  std::vector<uint32_t> ShardLogDims() const;

  /// \brief Canonical name of shard `s`'s directory ("shard-0003").
  static std::string ShardDirName(uint32_t shard);

  /// \brief Serializes to a key=value text file with the same atomic
  /// write-temp + fsync + rename protocol as StoreManifest::Save.
  Status Save(const std::string& path) const;

  /// \brief Parses and validates a shard-set manifest file.
  static Result<ShardSetManifest> Load(const std::string& path);

  bool operator==(const ShardSetManifest&) const = default;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_MANIFEST_H_
