// Store manifests: a small sidecar text file making a file-backed tile
// store self-describing (decomposition form, normalization, tile size,
// dimensions, fill level), so a store written by one process can be opened
// and queried by another without out-of-band knowledge.

#ifndef SHIFTSPLIT_STORAGE_MANIFEST_H_
#define SHIFTSPLIT_STORAGE_MANIFEST_H_

#include <memory>
#include <string>
#include <vector>

#include "shiftsplit/tile/tile_layout.h"
#include "shiftsplit/util/status.h"
#include "shiftsplit/wavelet/haar.h"

namespace shiftsplit {

/// \brief Decomposition form of a stored transform.
enum class StoreForm {
  kStandard,
  kNonstandard,
  kNaive,  ///< row-major layout (baseline stores)
};

const char* StoreFormToString(StoreForm form);
Result<StoreForm> StoreFormFromString(const std::string& name);

/// \brief Everything needed to reopen a store.
///
/// Format versions: v1 stores (format=shiftsplit-store-v1) have raw
/// unchecksummed blocks and no journal; v2 stores carry a per-block CRC32C
/// footer stamped with `store_epoch` and an atomic-commit journal. Load
/// accepts both; Save writes the line matching `format_version`.
struct StoreManifest {
  StoreForm form = StoreForm::kStandard;
  Normalization norm = Normalization::kAverage;
  uint32_t b = 2;                    ///< log2 tile edge (unused for kNaive)
  uint64_t block_capacity = 0;       ///< slots per block (kNaive only)
  std::vector<uint32_t> log_dims;    ///< per-dimension log2 extents
  uint64_t filled = 0;               ///< appending fill level (0 = full)
  uint32_t format_version = 1;       ///< 1 = legacy raw, 2 = checksummed
  uint64_t store_epoch = 0;          ///< footer epoch (nonzero for v2)

  /// \brief Serializes to a key=value text file, atomically: the content is
  /// written to a temp file, fsynced, renamed over `path`, and the parent
  /// directory fsynced — a crash leaves either the old or the new manifest,
  /// never a truncated one.
  Status Save(const std::string& path) const;

  /// \brief Parses a manifest file.
  static Result<StoreManifest> Load(const std::string& path);

  /// \brief Builds the tile layout this manifest describes.
  Result<std::unique_ptr<TileLayout>> MakeLayout() const;

  bool operator==(const StoreManifest&) const = default;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_MANIFEST_H_
