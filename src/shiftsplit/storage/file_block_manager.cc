#include "shiftsplit/storage/file_block_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "shiftsplit/util/crc32c.h"

namespace shiftsplit {

namespace {

std::string Errno(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

// True iff blocks * stride_bytes overflows uint64_t or exceeds what ::pread /
// ::pwrite / ::ftruncate can address through a (signed) off_t byte offset.
bool ByteSizeOverflows(uint64_t blocks, uint64_t stride_bytes) {
  if (stride_bytes != 0 &&
      blocks > std::numeric_limits<uint64_t>::max() / stride_bytes) {
    return true;
  }
  const uint64_t bytes = blocks * stride_bytes;
  return bytes > static_cast<uint64_t>(std::numeric_limits<off_t>::max());
}

// Per-block integrity footer (checksummed format only). An all-zero footer
// marks a never-written block, whose payload must also be all zero.
constexpr uint32_t kFooterMagic = 0x53534246u;  // "FBSS"
constexpr uint64_t kFooterBytes = 16;

struct BlockFooter {
  uint32_t magic = 0;
  uint32_t crc = 0;
  uint64_t epoch = 0;
};
static_assert(sizeof(BlockFooter) == kFooterBytes,
              "footer must be exactly 16 bytes");

bool AllZero(const char* data, uint64_t bytes) {
  for (uint64_t i = 0; i < bytes; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

// Blocks per scratch chunk on the checksummed vectored-read path: bounds the
// staging buffer while keeping runs down to few syscalls.
constexpr uint64_t kReadRunChunk = 64;

}  // namespace

FileBlockManager::FileBlockManager(std::string path, int fd,
                                   uint64_t block_size, uint64_t num_blocks,
                                   const Options& options)
    : path_(std::move(path)),
      fd_(fd),
      block_size_(block_size),
      num_blocks_(num_blocks),
      checksums_(options.checksums),
      epoch_(options.epoch),
      degraded_reads_(options.degraded_reads),
      retry_(RetryPolicy{options.retry_attempts, options.retry_backoff_us,
                         std::max<uint32_t>(options.retry_backoff_us,
                                            100'000u),
                         0.5}),
      jitter_state_(0x5353424du ^ block_size) {  // "SSBM" ^ geometry
  if (checksums_) scratch_.resize(stride());
}

void FileBlockManager::BackoffRetry(uint32_t attempt) {
  ++durability_.io_retries;
  const uint64_t delay_us = BackoffDelayUs(retry_, attempt, &jitter_state_);
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
}

uint64_t FileBlockManager::stride() const {
  return block_size_ * sizeof(double) + (checksums_ ? kFooterBytes : 0);
}

Result<std::unique_ptr<FileBlockManager>> FileBlockManager::Open(
    const std::string& path, uint64_t block_size, const Options& options) {
  if (block_size == 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  if (block_size >
      (std::numeric_limits<uint64_t>::max() - kFooterBytes) /
          sizeof(double)) {
    return Status::InvalidArgument("block byte size overflows uint64_t");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat " + path));
  }
  const uint64_t stride_bytes =
      block_size * sizeof(double) + (options.checksums ? kFooterBytes : 0);
  if (static_cast<uint64_t>(st.st_size) % stride_bytes != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        "existing file size is not a multiple of the block stride (was the "
        "store written with a different checksum setting?)");
  }
  const uint64_t num_blocks =
      static_cast<uint64_t>(st.st_size) / stride_bytes;
  return std::unique_ptr<FileBlockManager>(
      new FileBlockManager(path, fd, block_size, num_blocks, options));
}

FileBlockManager::~FileBlockManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockManager::Resize(uint64_t num_blocks) {
  if (num_blocks < num_blocks_) {
    return Status::InvalidArgument("block devices only grow");
  }
  if (ByteSizeOverflows(num_blocks, stride())) {
    return Status::InvalidArgument(
        "resize to " + std::to_string(num_blocks) +
        " blocks overflows the addressable byte range");
  }
  const uint64_t bytes = num_blocks * stride();
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    return Status::IOError(Errno("ftruncate " + path_));
  }
  num_blocks_ = num_blocks;
  return Status::OK();
}

Status FileBlockManager::ReadRaw(uint64_t offset, char* dst, uint64_t bytes) {
  uint64_t done = 0;
  uint32_t attempt = 0;
  while (done < bytes) {
    const ssize_t r = ::pread(fd_, dst + done, bytes - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN && attempt < retry_.max_retries) {
        BackoffRetry(attempt++);
        continue;
      }
      return Status::IOError(Errno("pread " + path_));
    }
    if (r == 0) {
      // Sparse tail (ftruncate-extended): remaining bytes read as zero.
      std::memset(dst + done, 0, bytes - done);
      break;
    }
    done += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

Status FileBlockManager::WriteRaw(uint64_t offset, const char* src,
                                  uint64_t bytes) {
  uint64_t done = 0;
  uint32_t attempt = 0;
  while (done < bytes) {
    const ssize_t w = ::pwrite(fd_, src + done, bytes - done,
                               static_cast<off_t>(offset + done));
    if (w > 0) {
      done += static_cast<uint64_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    // A zero-byte write (disk full / quota edge) or EAGAIN may be
    // transient: back off a bounded number of times before giving up.
    if ((w == 0 || errno == EAGAIN) && attempt < retry_.max_retries) {
      BackoffRetry(attempt++);
      continue;
    }
    if (w == 0) {
      return Status::IOError("pwrite " + path_ + ": wrote 0 bytes after " +
                             std::to_string(retry_.max_retries) + " retries");
    }
    return Status::IOError(Errno("pwrite " + path_));
  }
  return Status::OK();
}

Status FileBlockManager::VerifyInto(uint64_t id, const char* raw,
                                    std::span<double> out) {
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  BlockFooter footer;
  std::memcpy(&footer, raw + payload_bytes, kFooterBytes);
  bool valid;
  if (footer.magic == 0 && footer.crc == 0 && footer.epoch == 0) {
    valid = AllZero(raw, payload_bytes);  // never-written block
  } else {
    valid = footer.magic == kFooterMagic &&
            footer.crc == Crc32c(raw, payload_bytes) &&
            footer.epoch == epoch_;
  }
  if (valid) {
    quarantined_.erase(id);
    std::memcpy(out.data(), raw, payload_bytes);
    return Status::OK();
  }
  ++durability_.checksum_failures;
  quarantined_.insert(id);
  if (degraded_reads_) {
    ++durability_.zero_filled_reads;
    std::fill(out.begin(), out.end(), 0.0);
    return Status::OK();
  }
  return Status::ChecksumMismatch("block " + std::to_string(id) +
                                  " failed checksum verification in " +
                                  path_);
}

Status FileBlockManager::ReadBlock(uint64_t id, std::span<double> out) {
  if (id >= num_blocks_) {
    return Status::OutOfRange("block id beyond device size");
  }
  if (out.size() != block_size_) {
    return Status::InvalidArgument("read buffer size != block size");
  }
  ++stats_.block_reads;
  if (!checksums_) {
    return ReadRaw(id * stride(), reinterpret_cast<char*>(out.data()),
                   block_size_ * sizeof(double));
  }
  SS_RETURN_IF_ERROR(ReadRaw(id * stride(), scratch_.data(), stride()));
  return VerifyInto(id, scratch_.data(), out);
}

Status FileBlockManager::ReadBlocks(std::span<const uint64_t> ids,
                                    std::span<double> out) {
  const uint64_t block_bytes = block_size_ * sizeof(double);
  if (out.size() != ids.size() * block_size_) {
    return Status::InvalidArgument("read buffer size != ids * block size");
  }
  for (uint64_t id : ids) {
    if (id >= num_blocks_) {
      return Status::OutOfRange("block id beyond device size");
    }
  }
  if (checksums_) {
    // Runs of consecutive ids are read through a bounded staging buffer
    // (footers are interleaved with payloads on disk), then verified and
    // stripped block by block.
    std::vector<char> staging;
    size_t i = 0;
    while (i < ids.size()) {
      size_t j = i + 1;
      while (j < ids.size() && ids[j] == ids[j - 1] + 1 &&
             j - i < kReadRunChunk) {
        ++j;
      }
      const uint64_t run = j - i;
      staging.resize(run * stride());
      SS_RETURN_IF_ERROR(
          ReadRaw(ids[i] * stride(), staging.data(), run * stride()));
      for (uint64_t k = 0; k < run; ++k) {
        SS_RETURN_IF_ERROR(
            VerifyInto(ids[i + k], staging.data() + k * stride(),
                       out.subspan((i + k) * block_size_, block_size_)));
      }
      stats_.block_reads += run;
      i = j;
    }
    return Status::OK();
  }
  char* base = reinterpret_cast<char*>(out.data());
  size_t i = 0;
  while (i < ids.size()) {
    // Maximal run of consecutive ids (one preadv), capped at IOV_MAX.
    size_t j = i + 1;
    while (j < ids.size() && ids[j] == ids[j - 1] + 1 &&
           j - i < static_cast<size_t>(IOV_MAX)) {
      ++j;
    }
    const uint64_t run_bytes = (j - i) * block_bytes;
    const off_t run_offset = static_cast<off_t>(ids[i] * block_bytes);
    char* run_dst = base + i * block_bytes;
    uint64_t done = 0;
    uint32_t attempt = 0;
    while (done < run_bytes) {
      // Rebuild the iovec list past the already-read prefix (partial reads).
      std::vector<struct iovec> iov;
      for (uint64_t off = done;
           off < run_bytes && iov.size() < static_cast<size_t>(IOV_MAX);
           off += block_bytes - off % block_bytes) {
        const uint64_t len =
            std::min(block_bytes - off % block_bytes, run_bytes - off);
        iov.push_back({run_dst + off, static_cast<size_t>(len)});
      }
      const ssize_t r = ::preadv(fd_, iov.data(), static_cast<int>(iov.size()),
                                 run_offset + static_cast<off_t>(done));
      if (r < 0) {
        if (errno == EINTR) continue;
        // Same transient-error policy as the scalar loops: EAGAIN backs off
        // under the bounded budget and is counted in io_retries.
        if (errno == EAGAIN && attempt < retry_.max_retries) {
          BackoffRetry(attempt++);
          continue;
        }
        return Status::IOError(Errno("preadv " + path_));
      }
      if (r == 0) {
        // Sparse tail (ftruncate-extended): remaining bytes read as zero.
        std::memset(run_dst + done, 0, run_bytes - done);
        break;
      }
      done += static_cast<uint64_t>(r);
    }
    stats_.block_reads += j - i;
    i = j;
  }
  return Status::OK();
}

Status FileBlockManager::WriteBlock(uint64_t id, std::span<const double> data) {
  if (id >= num_blocks_) {
    return Status::OutOfRange("block id beyond device size");
  }
  if (data.size() != block_size_) {
    return Status::InvalidArgument("write buffer size != block size");
  }
  ++stats_.block_writes;
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  if (!checksums_) {
    return WriteRaw(id * stride(),
                    reinterpret_cast<const char*>(data.data()),
                    payload_bytes);
  }
  std::memcpy(scratch_.data(), data.data(), payload_bytes);
  BlockFooter footer;
  footer.magic = kFooterMagic;
  footer.crc = Crc32c(scratch_.data(), payload_bytes);
  footer.epoch = epoch_;
  std::memcpy(scratch_.data() + payload_bytes, &footer, kFooterBytes);
  SS_RETURN_IF_ERROR(WriteRaw(id * stride(), scratch_.data(), stride()));
  quarantined_.erase(id);  // a rewrite heals a quarantined block
  return Status::OK();
}

Status FileBlockManager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("fsync " + path_));
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> FileBlockManager::Scrub() {
  std::vector<uint64_t> corrupt;
  if (!checksums_) return corrupt;
  std::vector<double> payload(block_size_);
  for (uint64_t id = 0; id < num_blocks_; ++id) {
    SS_RETURN_IF_ERROR(ReadRaw(id * stride(), scratch_.data(), stride()));
    ++stats_.block_reads;
    // Verify without degraded zero-fill: scrubbing reports, never masks.
    const bool was_degraded = degraded_reads_;
    degraded_reads_ = false;
    const Status verified = VerifyInto(id, scratch_.data(), payload);
    degraded_reads_ = was_degraded;
    if (!verified.ok()) {
      if (verified.code() != StatusCode::kChecksumMismatch) return verified;
      corrupt.push_back(id);
    }
  }
  return corrupt;
}

DurabilityStats FileBlockManager::durability_stats() const {
  DurabilityStats stats = durability_;
  stats.quarantined_blocks = quarantined_.size();
  return stats;
}

}  // namespace shiftsplit
