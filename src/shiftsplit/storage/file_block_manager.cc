#include "shiftsplit/storage/file_block_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

namespace shiftsplit {

namespace {
std::string Errno(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

// True iff blocks * block_bytes overflows uint64_t or exceeds what ::pread /
// ::pwrite / ::ftruncate can address through a (signed) off_t byte offset.
bool ByteSizeOverflows(uint64_t blocks, uint64_t block_bytes) {
  if (block_bytes != 0 &&
      blocks > std::numeric_limits<uint64_t>::max() / block_bytes) {
    return true;
  }
  const uint64_t bytes = blocks * block_bytes;
  return bytes > static_cast<uint64_t>(std::numeric_limits<off_t>::max());
}
}  // namespace

FileBlockManager::FileBlockManager(std::string path, int fd,
                                   uint64_t block_size, uint64_t num_blocks)
    : path_(std::move(path)),
      fd_(fd),
      block_size_(block_size),
      num_blocks_(num_blocks) {}

Result<std::unique_ptr<FileBlockManager>> FileBlockManager::Open(
    const std::string& path, uint64_t block_size) {
  if (block_size == 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  if (block_size >
      std::numeric_limits<uint64_t>::max() / sizeof(double)) {
    return Status::InvalidArgument("block byte size overflows uint64_t");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat " + path));
  }
  const uint64_t block_bytes = block_size * sizeof(double);
  if (static_cast<uint64_t>(st.st_size) % block_bytes != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        "existing file size is not a multiple of the block size");
  }
  const uint64_t num_blocks = static_cast<uint64_t>(st.st_size) / block_bytes;
  return std::unique_ptr<FileBlockManager>(
      new FileBlockManager(path, fd, block_size, num_blocks));
}

FileBlockManager::~FileBlockManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockManager::Resize(uint64_t num_blocks) {
  if (num_blocks < num_blocks_) {
    return Status::InvalidArgument("block devices only grow");
  }
  if (ByteSizeOverflows(num_blocks, block_size_ * sizeof(double))) {
    return Status::InvalidArgument(
        "resize to " + std::to_string(num_blocks) +
        " blocks overflows the addressable byte range");
  }
  const uint64_t bytes = num_blocks * block_size_ * sizeof(double);
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    return Status::IOError(Errno("ftruncate " + path_));
  }
  num_blocks_ = num_blocks;
  return Status::OK();
}

Status FileBlockManager::ReadBlock(uint64_t id, std::span<double> out) {
  if (id >= num_blocks_) {
    return Status::OutOfRange("block id beyond device size");
  }
  if (out.size() != block_size_) {
    return Status::InvalidArgument("read buffer size != block size");
  }
  ++stats_.block_reads;
  const uint64_t bytes = block_size_ * sizeof(double);
  const off_t offset = static_cast<off_t>(id * bytes);
  uint64_t done = 0;
  char* dst = reinterpret_cast<char*>(out.data());
  while (done < bytes) {
    const ssize_t r = ::pread(fd_, dst + done, bytes - done,
                              offset + static_cast<off_t>(done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("pread " + path_));
    }
    if (r == 0) {
      // Sparse tail (ftruncate-extended): remaining bytes read as zero.
      std::memset(dst + done, 0, bytes - done);
      break;
    }
    done += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

Status FileBlockManager::ReadBlocks(std::span<const uint64_t> ids,
                                    std::span<double> out) {
  const uint64_t block_bytes = block_size_ * sizeof(double);
  if (out.size() != ids.size() * block_size_) {
    return Status::InvalidArgument("read buffer size != ids * block size");
  }
  for (uint64_t id : ids) {
    if (id >= num_blocks_) {
      return Status::OutOfRange("block id beyond device size");
    }
  }
  char* base = reinterpret_cast<char*>(out.data());
  size_t i = 0;
  while (i < ids.size()) {
    // Maximal run of consecutive ids (one preadv), capped at IOV_MAX.
    size_t j = i + 1;
    while (j < ids.size() && ids[j] == ids[j - 1] + 1 &&
           j - i < static_cast<size_t>(IOV_MAX)) {
      ++j;
    }
    const uint64_t run_bytes = (j - i) * block_bytes;
    const off_t run_offset = static_cast<off_t>(ids[i] * block_bytes);
    char* run_dst = base + i * block_bytes;
    uint64_t done = 0;
    while (done < run_bytes) {
      // Rebuild the iovec list past the already-read prefix (partial reads).
      std::vector<struct iovec> iov;
      for (uint64_t off = done;
           off < run_bytes && iov.size() < static_cast<size_t>(IOV_MAX);
           off += block_bytes - off % block_bytes) {
        const uint64_t len =
            std::min(block_bytes - off % block_bytes, run_bytes - off);
        iov.push_back({run_dst + off, static_cast<size_t>(len)});
      }
      const ssize_t r = ::preadv(fd_, iov.data(), static_cast<int>(iov.size()),
                                 run_offset + static_cast<off_t>(done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(Errno("preadv " + path_));
      }
      if (r == 0) {
        // Sparse tail (ftruncate-extended): remaining bytes read as zero.
        std::memset(run_dst + done, 0, run_bytes - done);
        break;
      }
      done += static_cast<uint64_t>(r);
    }
    stats_.block_reads += j - i;
    i = j;
  }
  return Status::OK();
}

Status FileBlockManager::WriteBlock(uint64_t id, std::span<const double> data) {
  if (id >= num_blocks_) {
    return Status::OutOfRange("block id beyond device size");
  }
  if (data.size() != block_size_) {
    return Status::InvalidArgument("write buffer size != block size");
  }
  ++stats_.block_writes;
  const uint64_t bytes = block_size_ * sizeof(double);
  const off_t offset = static_cast<off_t>(id * bytes);
  uint64_t done = 0;
  const char* src = reinterpret_cast<const char*>(data.data());
  while (done < bytes) {
    const ssize_t w = ::pwrite(fd_, src + done, bytes - done,
                               offset + static_cast<off_t>(done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("pwrite " + path_));
    }
    if (w == 0) {
      // A zero-byte write (e.g. disk full / quota edge) would loop forever.
      return Status::IOError("pwrite " + path_ + ": wrote 0 bytes");
    }
    done += static_cast<uint64_t>(w);
  }
  return Status::OK();
}

Status FileBlockManager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("fsync " + path_));
  }
  return Status::OK();
}

}  // namespace shiftsplit
