#include "shiftsplit/storage/file_block_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "shiftsplit/util/crc32c.h"

namespace shiftsplit {

namespace {

std::string Errno(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

// True iff blocks * stride_bytes overflows uint64_t or exceeds what ::pread /
// ::pwrite / ::ftruncate can address through a (signed) off_t byte offset.
bool ByteSizeOverflows(uint64_t blocks, uint64_t stride_bytes) {
  if (stride_bytes != 0 &&
      blocks > std::numeric_limits<uint64_t>::max() / stride_bytes) {
    return true;
  }
  const uint64_t bytes = blocks * stride_bytes;
  return bytes > static_cast<uint64_t>(std::numeric_limits<off_t>::max());
}

// Per-block integrity footer (checksummed format only). An all-zero footer
// marks a never-written block, whose payload must also be all zero.
constexpr uint32_t kFooterMagic = 0x53534246u;  // "FBSS"
constexpr uint64_t kFooterBytes = 16;

struct BlockFooter {
  uint32_t magic = 0;
  uint32_t crc = 0;
  uint64_t epoch = 0;
};
static_assert(sizeof(BlockFooter) == kFooterBytes,
              "footer must be exactly 16 bytes");

bool AllZero(const char* data, uint64_t bytes) {
  for (uint64_t i = 0; i < bytes; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

// Verifies one stride image against `epoch`: a structurally valid footer
// whose CRC matches the payload, or the all-zero never-written pattern.
bool StrideValid(const char* raw, uint64_t payload_bytes, uint64_t epoch) {
  BlockFooter footer;
  std::memcpy(&footer, raw + payload_bytes, kFooterBytes);
  if (footer.magic == 0 && footer.crc == 0 && footer.epoch == 0) {
    return AllZero(raw, payload_bytes);
  }
  return footer.magic == kFooterMagic &&
         footer.crc == Crc32c(raw, payload_bytes) && footer.epoch == epoch;
}

void XorBytes(char* acc, const char* src, uint64_t bytes) {
  for (uint64_t i = 0; i < bytes; ++i) acc[i] ^= src[i];
}

// Blocks per scratch chunk on the checksummed vectored-read path: bounds the
// staging buffer while keeping runs down to few syscalls.
constexpr uint64_t kReadRunChunk = 64;

}  // namespace

FileBlockManager::FileBlockManager(std::string path, int fd, int parity_fd,
                                   uint64_t block_size, uint64_t num_blocks,
                                   const Options& options)
    : path_(std::move(path)),
      fd_(fd),
      parity_fd_(parity_fd),
      block_size_(block_size),
      num_blocks_(num_blocks),
      checksums_(options.checksums),
      epoch_(options.epoch),
      degraded_reads_(options.degraded_reads),
      parity_group_(options.parity_group),
      retry_(RetryPolicy{options.retry_attempts, options.retry_backoff_us,
                         std::max<uint32_t>(options.retry_backoff_us,
                                            100'000u),
                         0.5}),
      jitter_state_(0x5353424du ^ block_size) {  // "SSBM" ^ geometry
  if (checksums_) {
    scratch_.resize(stride());
    write_scratch_.resize(stride());
  }
}

void FileBlockManager::BackoffRetry(uint32_t attempt) {
  ++durability_.io_retries;
  const uint64_t delay_us = BackoffDelayUs(retry_, attempt, &jitter_state_);
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
}

uint64_t FileBlockManager::stride() const {
  return block_size_ * sizeof(double) + (checksums_ ? kFooterBytes : 0);
}

uint64_t FileBlockManager::NumParityBlocks() const {
  if (parity_group_ == 0) return 0;
  return (num_blocks_ + parity_group_ - 1) / parity_group_;
}

Result<std::unique_ptr<FileBlockManager>> FileBlockManager::Open(
    const std::string& path, uint64_t block_size, const Options& options) {
  if (block_size == 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  if (block_size >
      (std::numeric_limits<uint64_t>::max() - kFooterBytes) /
          sizeof(double)) {
    return Status::InvalidArgument("block byte size overflows uint64_t");
  }
  if (options.parity_group > 0 && !options.checksums) {
    return Status::InvalidArgument("parity groups require checksums");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat " + path));
  }
  const uint64_t stride_bytes =
      block_size * sizeof(double) + (options.checksums ? kFooterBytes : 0);
  if (static_cast<uint64_t>(st.st_size) % stride_bytes != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        "existing file size is not a multiple of the block stride (was the "
        "store written with a different checksum setting?)");
  }
  const uint64_t num_blocks =
      static_cast<uint64_t>(st.st_size) / stride_bytes;
  int parity_fd = -1;
  if (options.parity_group > 0) {
    const std::string parity_path = path + ".parity";
    parity_fd =
        ::open(parity_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (parity_fd < 0) {
      ::close(fd);
      return Status::IOError(Errno("open " + parity_path));
    }
    struct stat pst;
    if (::fstat(parity_fd, &pst) != 0) {
      ::close(fd);
      ::close(parity_fd);
      return Status::IOError(Errno("fstat " + parity_path));
    }
    if (static_cast<uint64_t>(pst.st_size) % stride_bytes != 0) {
      ::close(fd);
      ::close(parity_fd);
      return Status::InvalidArgument(
          "parity sidecar size is not a multiple of the block stride");
    }
    const uint64_t groups =
        (num_blocks + options.parity_group - 1) / options.parity_group;
    const uint64_t expected = groups * stride_bytes;
    if (static_cast<uint64_t>(pst.st_size) < expected &&
        ::ftruncate(parity_fd, static_cast<off_t>(expected)) != 0) {
      ::close(fd);
      ::close(parity_fd);
      return Status::IOError(Errno("ftruncate " + parity_path));
    }
  }
  return std::unique_ptr<FileBlockManager>(new FileBlockManager(
      path, fd, parity_fd, block_size, num_blocks, options));
}

FileBlockManager::~FileBlockManager() {
  if (fd_ >= 0) ::close(fd_);
  if (parity_fd_ >= 0) ::close(parity_fd_);
}

Status FileBlockManager::Resize(uint64_t num_blocks) {
  if (num_blocks < num_blocks_) {
    return Status::InvalidArgument("block devices only grow");
  }
  if (ByteSizeOverflows(num_blocks, stride())) {
    return Status::InvalidArgument(
        "resize to " + std::to_string(num_blocks) +
        " blocks overflows the addressable byte range");
  }
  const uint64_t bytes = num_blocks * stride();
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    return Status::IOError(Errno("ftruncate " + path_));
  }
  num_blocks_ = num_blocks;
  if (parity_fd_ >= 0) {
    // Zero-extended parity strides are exactly right for the zero-extended
    // data tail (XOR of zeros is zero).
    const uint64_t parity_bytes = NumParityBlocks() * stride();
    if (::ftruncate(parity_fd_, static_cast<off_t>(parity_bytes)) != 0) {
      return Status::IOError(Errno("ftruncate " + path_ + ".parity"));
    }
  }
  return Status::OK();
}

Status FileBlockManager::ReadRawFd(int fd, uint64_t offset, char* dst,
                                   uint64_t bytes) {
  uint64_t done = 0;
  uint32_t attempt = 0;
  while (done < bytes) {
    const ssize_t r = ::pread(fd, dst + done, bytes - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN && attempt < retry_.max_retries) {
        BackoffRetry(attempt++);
        continue;
      }
      return Status::IOError(Errno("pread " + path_));
    }
    if (r == 0) {
      // Sparse tail (ftruncate-extended): remaining bytes read as zero.
      std::memset(dst + done, 0, bytes - done);
      break;
    }
    done += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

Status FileBlockManager::WriteRawFd(int fd, uint64_t offset, const char* src,
                                    uint64_t bytes) {
  uint64_t done = 0;
  uint32_t attempt = 0;
  while (done < bytes) {
    const ssize_t w = ::pwrite(fd, src + done, bytes - done,
                               static_cast<off_t>(offset + done));
    if (w > 0) {
      done += static_cast<uint64_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    // A zero-byte write (disk full / quota edge) or EAGAIN may be
    // transient: back off a bounded number of times before giving up.
    if ((w == 0 || errno == EAGAIN) && attempt < retry_.max_retries) {
      BackoffRetry(attempt++);
      continue;
    }
    if (w == 0) {
      return Status::IOError("pwrite " + path_ + ": wrote 0 bytes after " +
                             std::to_string(retry_.max_retries) + " retries");
    }
    return Status::IOError(Errno("pwrite " + path_));
  }
  return Status::OK();
}

Status FileBlockManager::WritePayloadImage(int fd, uint64_t index,
                                           const char* payload) {
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  std::memcpy(write_scratch_.data(), payload, payload_bytes);
  BlockFooter footer;
  footer.magic = kFooterMagic;
  footer.crc = Crc32c(write_scratch_.data(), payload_bytes);
  footer.epoch = epoch_;
  std::memcpy(write_scratch_.data() + payload_bytes, &footer, kFooterBytes);
  return WriteRawFd(fd, index * stride(), write_scratch_.data(), stride());
}

Status FileBlockManager::ParityPayload(uint64_t group, char* out) {
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  const auto it = parity_dirty_.find(group);
  if (it != parity_dirty_.end()) {
    std::memcpy(out, it->second.data(), payload_bytes);
    return Status::OK();
  }
  std::vector<char> raw(stride());
  SS_RETURN_IF_ERROR(
      ReadRawFd(parity_fd_, group * stride(), raw.data(), stride()));
  ++durability_.parity_reads;
  if (!StrideValid(raw.data(), payload_bytes, epoch_)) {
    return Status::ChecksumMismatch(
        "parity block for group " + std::to_string(group) +
        " failed checksum verification in " + path_ + ".parity");
  }
  std::memcpy(out, raw.data(), payload_bytes);
  return Status::OK();
}

Status FileBlockManager::ReconstructPayload(uint64_t id,
                                            const char* corrupt_raw,
                                            char* out) {
  if (parity_group_ == 0) {
    return Status::ChecksumMismatch("block " + std::to_string(id) +
                                    " is corrupt and the store has no "
                                    "parity to rebuild it from");
  }
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  const uint64_t group = id / parity_group_;
  std::vector<char> acc(payload_bytes);
  SS_RETURN_IF_ERROR(ParityPayload(group, acc.data()));
  const uint64_t lo = group * parity_group_;
  const uint64_t hi = std::min(num_blocks_, lo + parity_group_);
  std::vector<char> sibling(stride());
  for (uint64_t member = lo; member < hi; ++member) {
    if (member == id) continue;
    SS_RETURN_IF_ERROR(
        ReadRaw(member * stride(), sibling.data(), stride()));
    if (!StrideValid(sibling.data(), payload_bytes, epoch_)) {
      return Status::ChecksumMismatch(
          "double fault: blocks " + std::to_string(id) + " and " +
          std::to_string(member) + " are both corrupt in parity group " +
          std::to_string(group) + " of " + path_);
    }
    XorBytes(acc.data(), sibling.data(), payload_bytes);
  }
  // When the corrupt stride still carries a structurally intact footer, the
  // payload (not the footer) took the hit — the reconstruction must match
  // the originally stored CRC. A mismatch means the parity chain itself is
  // inconsistent, which is as unrepairable as a double fault. A destroyed
  // footer leaves nothing to cross-check; the candidate is accepted on the
  // strength of the chain's own verified CRCs.
  BlockFooter footer;
  std::memcpy(&footer, corrupt_raw + payload_bytes, kFooterBytes);
  if (footer.magic == kFooterMagic && footer.epoch == epoch_ &&
      footer.crc != Crc32c(acc.data(), payload_bytes)) {
    return Status::ChecksumMismatch(
        "parity reconstruction of block " + std::to_string(id) +
        " does not match its stored checksum in " + path_);
  }
  std::memcpy(out, acc.data(), payload_bytes);
  return Status::OK();
}

Status FileBlockManager::RepairBlock(uint64_t id, const char* corrupt_raw,
                                     std::span<double> out) {
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  std::vector<char> payload(payload_bytes);
  const Status rebuilt = ReconstructPayload(id, corrupt_raw, payload.data());
  if (!rebuilt.ok()) {
    ++durability_.unrepairable_blocks;
    return rebuilt;
  }
  // Rewrite in place. Parity stays untouched: it already agrees with the
  // reconstructed payload (that is where it came from).
  SS_RETURN_IF_ERROR(WritePayloadImage(fd_, id, payload.data()));
  quarantined_.erase(id);
  ++durability_.repaired_blocks;
  std::memcpy(out.data(), payload.data(), payload_bytes);
  return Status::OK();
}

Status FileBlockManager::VerifyInto(uint64_t id, const char* raw,
                                    std::span<double> out, VerifyMode mode) {
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  if (StrideValid(raw, payload_bytes, epoch_)) {
    quarantined_.erase(id);
    std::memcpy(out.data(), raw, payload_bytes);
    return Status::OK();
  }
  ++durability_.checksum_failures;
  if (mode == VerifyMode::kServe && parity_group_ > 0 &&
      RepairBlock(id, raw, out).ok()) {
    return Status::OK();  // healed inline; the caller sees a clean read
  }
  quarantined_.insert(id);
  if (mode == VerifyMode::kServe && degraded_reads_) {
    ++durability_.zero_filled_reads;
    std::fill(out.begin(), out.end(), 0.0);
    return Status::OK();
  }
  return Status::ChecksumMismatch("block " + std::to_string(id) +
                                  " failed checksum verification in " +
                                  path_);
}

Status FileBlockManager::ReadBlock(uint64_t id, std::span<double> out) {
  if (out.size() != block_size_) {
    return Status::InvalidArgument("read buffer size != block size");
  }
  if (id >= kParityIdBase) {
    if (parity_group_ == 0) {
      return Status::OutOfRange("parity block id on a store without parity");
    }
    const uint64_t group = id - kParityIdBase;
    if (group >= NumParityBlocks()) {
      return Status::OutOfRange("parity group beyond device size");
    }
    return ParityPayload(group, reinterpret_cast<char*>(out.data()));
  }
  if (id >= num_blocks_) {
    return Status::OutOfRange("block id beyond device size");
  }
  ++stats_.block_reads;
  if (!checksums_) {
    return ReadRaw(id * stride(), reinterpret_cast<char*>(out.data()),
                   block_size_ * sizeof(double));
  }
  SS_RETURN_IF_ERROR(ReadRaw(id * stride(), scratch_.data(), stride()));
  return VerifyInto(id, scratch_.data(), out, VerifyMode::kServe);
}

Status FileBlockManager::ReadBlocks(std::span<const uint64_t> ids,
                                    std::span<double> out) {
  const uint64_t block_bytes = block_size_ * sizeof(double);
  if (out.size() != ids.size() * block_size_) {
    return Status::InvalidArgument("read buffer size != ids * block size");
  }
  for (uint64_t id : ids) {
    if (id >= num_blocks_) {
      return Status::OutOfRange("block id beyond device size");
    }
  }
  if (checksums_) {
    // Runs of consecutive ids are read through a bounded staging buffer
    // (footers are interleaved with payloads on disk), then verified and
    // stripped block by block.
    std::vector<char> staging;
    size_t i = 0;
    while (i < ids.size()) {
      size_t j = i + 1;
      while (j < ids.size() && ids[j] == ids[j - 1] + 1 &&
             j - i < kReadRunChunk) {
        ++j;
      }
      const uint64_t run = j - i;
      staging.resize(run * stride());
      SS_RETURN_IF_ERROR(
          ReadRaw(ids[i] * stride(), staging.data(), run * stride()));
      for (uint64_t k = 0; k < run; ++k) {
        SS_RETURN_IF_ERROR(
            VerifyInto(ids[i + k], staging.data() + k * stride(),
                       out.subspan((i + k) * block_size_, block_size_),
                       VerifyMode::kServe));
      }
      stats_.block_reads += run;
      i = j;
    }
    return Status::OK();
  }
  char* base = reinterpret_cast<char*>(out.data());
  size_t i = 0;
  while (i < ids.size()) {
    // Maximal run of consecutive ids (one preadv), capped at IOV_MAX.
    size_t j = i + 1;
    while (j < ids.size() && ids[j] == ids[j - 1] + 1 &&
           j - i < static_cast<size_t>(IOV_MAX)) {
      ++j;
    }
    const uint64_t run_bytes = (j - i) * block_bytes;
    const off_t run_offset = static_cast<off_t>(ids[i] * block_bytes);
    char* run_dst = base + i * block_bytes;
    uint64_t done = 0;
    uint32_t attempt = 0;
    while (done < run_bytes) {
      // Rebuild the iovec list past the already-read prefix (partial reads).
      std::vector<struct iovec> iov;
      for (uint64_t off = done;
           off < run_bytes && iov.size() < static_cast<size_t>(IOV_MAX);
           off += block_bytes - off % block_bytes) {
        const uint64_t len =
            std::min(block_bytes - off % block_bytes, run_bytes - off);
        iov.push_back({run_dst + off, static_cast<size_t>(len)});
      }
      const ssize_t r = ::preadv(fd_, iov.data(), static_cast<int>(iov.size()),
                                 run_offset + static_cast<off_t>(done));
      if (r < 0) {
        if (errno == EINTR) continue;
        // Same transient-error policy as the scalar loops: EAGAIN backs off
        // under the bounded budget and is counted in io_retries.
        if (errno == EAGAIN && attempt < retry_.max_retries) {
          BackoffRetry(attempt++);
          continue;
        }
        return Status::IOError(Errno("preadv " + path_));
      }
      if (r == 0) {
        // Sparse tail (ftruncate-extended): remaining bytes read as zero.
        std::memset(run_dst + done, 0, run_bytes - done);
        break;
      }
      done += static_cast<uint64_t>(r);
    }
    stats_.block_reads += j - i;
    i = j;
  }
  return Status::OK();
}

Status FileBlockManager::XorOldNew(uint64_t id, const char* new_payload,
                                   char* group_image) {
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  SS_RETURN_IF_ERROR(ReadRaw(id * stride(), write_scratch_.data(), stride()));
  const char* old_payload = write_scratch_.data();
  std::vector<char> rebuilt;
  if (!StrideValid(write_scratch_.data(), payload_bytes, epoch_)) {
    // Folding a corrupt old payload into parity would poison the whole
    // group's reconstruction chain. Rebuild the true old payload from
    // parity first — the overwrite about to happen heals the block; a
    // double fault fails the write instead.
    ++durability_.checksum_failures;
    rebuilt.resize(payload_bytes);
    const Status rec =
        ReconstructPayload(id, write_scratch_.data(), rebuilt.data());
    if (!rec.ok()) {
      ++durability_.unrepairable_blocks;
      quarantined_.insert(id);
      return rec;
    }
    ++durability_.repaired_blocks;
    old_payload = rebuilt.data();
  }
  for (uint64_t i = 0; i < payload_bytes; ++i) {
    group_image[i] ^= old_payload[i] ^ new_payload[i];
  }
  return Status::OK();
}

Status FileBlockManager::WriteBlock(uint64_t id, std::span<const double> data) {
  if (data.size() != block_size_) {
    return Status::InvalidArgument("write buffer size != block size");
  }
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  if (id >= kParityIdBase) {
    // Absolute parity image (journal replay, or an explicit rebuild): goes
    // straight to the sidecar and supersedes any staged state.
    if (parity_group_ == 0) {
      return Status::OutOfRange("parity block id on a store without parity");
    }
    const uint64_t group = id - kParityIdBase;
    if (group >= NumParityBlocks()) {
      return Status::OutOfRange("parity group beyond device size");
    }
    SS_RETURN_IF_ERROR(WritePayloadImage(
        parity_fd_, group, reinterpret_cast<const char*>(data.data())));
    ++durability_.parity_writes;
    parity_dirty_.erase(group);
    parity_planned_.erase(group);
    return Status::OK();
  }
  if (id >= num_blocks_) {
    return Status::OutOfRange("block id beyond device size");
  }
  ++stats_.block_writes;
  if (!checksums_) {
    return WriteRaw(id * stride(),
                    reinterpret_cast<const char*>(data.data()),
                    payload_bytes);
  }
  if (parity_group_ > 0 && !parity_replay_ &&
      !parity_planned_.contains(id / parity_group_)) {
    // Incremental maintenance: parity' = parity ⊕ old ⊕ new, staged in
    // memory and persisted by Sync(). Planned groups already carry their
    // absolute post-commit image (PlanParityCommit); replay writes parity
    // absolutely from the journal record.
    const uint64_t group = id / parity_group_;
    auto it = parity_dirty_.find(group);
    if (it == parity_dirty_.end()) {
      std::vector<char> image(payload_bytes);
      SS_RETURN_IF_ERROR(ParityPayload(group, image.data()));
      it = parity_dirty_.emplace(group, std::move(image)).first;
    }
    SS_RETURN_IF_ERROR(XorOldNew(
        id, reinterpret_cast<const char*>(data.data()), it->second.data()));
  }
  std::memcpy(scratch_.data(), data.data(), payload_bytes);
  BlockFooter footer;
  footer.magic = kFooterMagic;
  footer.crc = Crc32c(scratch_.data(), payload_bytes);
  footer.epoch = epoch_;
  std::memcpy(scratch_.data() + payload_bytes, &footer, kFooterBytes);
  SS_RETURN_IF_ERROR(WriteRaw(id * stride(), scratch_.data(), stride()));
  quarantined_.erase(id);  // a rewrite heals a quarantined block
  return Status::OK();
}

Result<std::vector<ParityBlockImage>> FileBlockManager::PlanParityCommit(
    std::span<const BlockWrite> writes) {
  std::vector<ParityBlockImage> plan;
  if (parity_group_ == 0) return plan;
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  // Fold every write's old ⊕ new into its group image, starting from the
  // effective (staged-or-on-disk) parity — the device is untouched, so
  // reconstruction of corrupt old payloads still sees a consistent chain.
  std::map<uint64_t, std::vector<char>> images;
  for (const BlockWrite& write : writes) {
    if (write.block_id >= kParityIdBase) continue;
    if (write.block_id >= num_blocks_) {
      return Status::OutOfRange("planned write beyond device size");
    }
    if (write.data.size() != block_size_) {
      return Status::InvalidArgument("planned write size != block size");
    }
    const uint64_t group = write.block_id / parity_group_;
    auto it = images.find(group);
    if (it == images.end()) {
      std::vector<char> image(payload_bytes);
      SS_RETURN_IF_ERROR(ParityPayload(group, image.data()));
      it = images.emplace(group, std::move(image)).first;
    }
    SS_RETURN_IF_ERROR(
        XorOldNew(write.block_id,
                  reinterpret_cast<const char*>(write.data.data()),
                  it->second.data()));
  }
  // Stage: the images become the pending parity of their groups, the
  // write-backs of exactly this batch skip incremental work, and the next
  // Sync() persists them.
  for (auto& [group, image] : images) {
    ParityBlockImage staged;
    staged.block_id = kParityIdBase + group;
    staged.data.resize(block_size_);
    std::memcpy(staged.data.data(), image.data(), payload_bytes);
    plan.push_back(std::move(staged));
    parity_planned_.insert(group);
    parity_dirty_[group] = std::move(image);
  }
  return plan;
}

Status FileBlockManager::FlushParityDirty() {
  for (const auto& [group, image] : parity_dirty_) {
    SS_RETURN_IF_ERROR(WritePayloadImage(parity_fd_, group, image.data()));
    ++durability_.parity_writes;
  }
  parity_dirty_.clear();
  parity_planned_.clear();
  return Status::OK();
}

Status FileBlockManager::Sync() {
  if (parity_fd_ >= 0) {
    SS_RETURN_IF_ERROR(FlushParityDirty());
    if (::fsync(parity_fd_) != 0) {
      return Status::IOError(Errno("fsync " + path_ + ".parity"));
    }
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("fsync " + path_));
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> FileBlockManager::Scrub() {
  std::vector<uint64_t> corrupt;
  if (!checksums_) return corrupt;
  std::vector<double> payload(block_size_);
  for (uint64_t id = 0; id < num_blocks_; ++id) {
    SS_RETURN_IF_ERROR(ReadRaw(id * stride(), scratch_.data(), stride()));
    ++stats_.block_reads;
    // Report mode: scrubbing reports, it never masks (degraded zero-fill)
    // and never mutates the store (no inline repair).
    const Status verified =
        VerifyInto(id, scratch_.data(), payload, VerifyMode::kReport);
    if (!verified.ok()) {
      if (verified.code() != StatusCode::kChecksumMismatch) return verified;
      corrupt.push_back(id);
    }
  }
  return corrupt;
}

Result<ScrubReport> FileBlockManager::ScrubRepair() {
  ScrubReport report;
  if (!checksums_) return report;
  const uint64_t payload_bytes = block_size_ * sizeof(double);
  std::vector<double> payload(block_size_);
  std::vector<char> group_xor(parity_group_ > 0 ? payload_bytes : 0);
  bool group_intact = true;
  bool wrote = false;
  for (uint64_t id = 0; id < num_blocks_; ++id) {
    if (parity_group_ > 0 && id % parity_group_ == 0) {
      std::fill(group_xor.begin(), group_xor.end(), 0);
      group_intact = true;
    }
    SS_RETURN_IF_ERROR(ReadRaw(id * stride(), scratch_.data(), stride()));
    ++stats_.block_reads;
    const Status verified =
        VerifyInto(id, scratch_.data(), payload, VerifyMode::kReport);
    if (verified.ok()) {
      if (parity_group_ > 0) {
        XorBytes(group_xor.data(),
                 reinterpret_cast<const char*>(payload.data()),
                 payload_bytes);
      }
    } else if (verified.code() != StatusCode::kChecksumMismatch) {
      return verified;
    } else if (parity_group_ > 0 &&
               RepairBlock(id, scratch_.data(), payload).ok()) {
      report.repaired.push_back(id);
      wrote = true;
      XorBytes(group_xor.data(),
               reinterpret_cast<const char*>(payload.data()), payload_bytes);
    } else {
      if (parity_group_ == 0) ++durability_.unrepairable_blocks;
      report.unrepairable.push_back(id);
      group_intact = false;
    }
    if (parity_group_ > 0 &&
        (id % parity_group_ == parity_group_ - 1 || id == num_blocks_ - 1) &&
        group_intact) {
      // Group boundary with every member verified: restore the parity
      // invariant if the stored parity is corrupt or stale (which is also
      // how a freshly upgraded store builds its sidecar from scratch).
      const uint64_t group = id / parity_group_;
      std::vector<char> effective(payload_bytes);
      const Status stored = ParityPayload(group, effective.data());
      if (!stored.ok() &&
          stored.code() != StatusCode::kChecksumMismatch) {
        return stored;
      }
      if (!stored.ok() ||
          std::memcmp(effective.data(), group_xor.data(), payload_bytes) !=
              0) {
        SS_RETURN_IF_ERROR(
            WritePayloadImage(parity_fd_, group, group_xor.data()));
        ++durability_.parity_writes;
        parity_dirty_.erase(group);
        parity_planned_.erase(group);
        report.repaired.push_back(kParityIdBase + group);
        wrote = true;
      }
    }
  }
  if (wrote) SS_RETURN_IF_ERROR(Sync());
  return report;
}

DurabilityStats FileBlockManager::durability_stats() const {
  DurabilityStats stats = durability_;
  stats.quarantined_blocks = quarantined_.size();
  return stats;
}

}  // namespace shiftsplit
