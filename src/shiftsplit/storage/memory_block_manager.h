// In-memory BlockManager: exact I/O accounting without touching a disk.
// Benchmarks default to it because the paper's plots are I/O *counts*.

#ifndef SHIFTSPLIT_STORAGE_MEMORY_BLOCK_MANAGER_H_
#define SHIFTSPLIT_STORAGE_MEMORY_BLOCK_MANAGER_H_

#include <vector>

#include "shiftsplit/storage/block_manager.h"

namespace shiftsplit {

/// \brief Heap-backed block device.
class MemoryBlockManager : public BlockManager {
 public:
  /// \param block_size  block capacity in coefficients (must be > 0)
  /// \param num_blocks  initial number of blocks
  explicit MemoryBlockManager(uint64_t block_size, uint64_t num_blocks = 0);

  uint64_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return blocks_.size(); }
  Status Resize(uint64_t num_blocks) override;
  Status ReadBlock(uint64_t id, std::span<double> out) override;
  Status WriteBlock(uint64_t id, std::span<const double> data) override;

 private:
  uint64_t block_size_;
  std::vector<std::vector<double>> blocks_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_MEMORY_BLOCK_MANAGER_H_
