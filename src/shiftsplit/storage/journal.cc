#include "shiftsplit/storage/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "shiftsplit/util/crc32c.h"

namespace shiftsplit {

namespace {

std::string Errno(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

// Maps a failed write/fsync errno to its status: a full disk or exhausted
// quota is kResourceExhausted (transient pressure the caller can back off
// from and retry), everything else a plain kIOError.
Status WriteErrnoStatus(const std::string& prefix) {
  if (errno == ENOSPC || errno == EDQUOT) {
    return Status::ResourceExhausted(Errno(prefix));
  }
  return Status::IOError(Errno(prefix));
}

// Commit record layout (single record per journal file):
//   RecordHeader
//   num_entries x EntryHeader
//   num_entries x block_size doubles (payload images, entry order)
//   RecordTrailer (commit marker: magic + CRC32C of all preceding bytes)
constexpr uint32_t kRecordMagic = 0x314A5353u;   // "SSJ1"
constexpr uint32_t kTrailerMagic = 0x434A5353u;  // "SSJC"

struct RecordHeader {
  uint32_t magic = kRecordMagic;
  uint32_t version = 1;
  uint64_t block_size = 0;
  uint64_t num_entries = 0;
};

struct EntryHeader {
  uint64_t block_id = 0;
  uint32_t crc = 0;  // CRC32C of this entry's payload bytes
  uint32_t pad = 0;
};

struct RecordTrailer {
  uint32_t magic = kTrailerMagic;
  uint32_t crc = 0;  // CRC32C of every byte before the trailer
};

Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t w = ::write(fd, data + done, size - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("journal write"));
    }
    if (w == 0) return Status::IOError("journal write: wrote 0 bytes");
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

// fsyncs the directory containing `path` so creation/removal of the file
// itself is durable.
Status SyncParentDirOf(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int dfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IOError(Errno("open dir " + parent.string()));
  }
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) {
    return Status::IOError(Errno("fsync dir " + parent.string()));
  }
  return Status::OK();
}

}  // namespace

Status Journal::SyncParentDir() { return SyncParentDirOf(path_); }

Status Journal::AppendCommit(std::span<const JournalEntry> entries,
                             uint64_t block_size) {
  if (entries.empty()) {
    return Status::InvalidArgument("empty commit record");
  }
  const uint64_t payload_bytes = block_size * sizeof(double);
  for (const JournalEntry& entry : entries) {
    if (entry.data.size() != block_size) {
      return Status::InvalidArgument(
          "journal entry payload size != block size");
    }
  }
  // Serialize the whole record up front so the file sees at most two writes
  // (the test hook between them exercises genuinely torn records).
  const size_t record_bytes = sizeof(RecordHeader) +
                              entries.size() * sizeof(EntryHeader) +
                              entries.size() * payload_bytes +
                              sizeof(RecordTrailer);
  std::vector<char> record(record_bytes);
  char* out = record.data();
  RecordHeader header;
  header.block_size = block_size;
  header.num_entries = entries.size();
  std::memcpy(out, &header, sizeof(header));
  out += sizeof(header);
  for (const JournalEntry& entry : entries) {
    EntryHeader eh;
    eh.block_id = entry.block_id;
    eh.crc = Crc32c(entry.data.data(), payload_bytes);
    std::memcpy(out, &eh, sizeof(eh));
    out += sizeof(eh);
  }
  for (const JournalEntry& entry : entries) {
    std::memcpy(out, entry.data.data(), payload_bytes);
    out += payload_bytes;
  }
  RecordTrailer trailer;
  trailer.crc = Crc32c(record.data(),
                       record_bytes - sizeof(RecordTrailer));
  std::memcpy(out, &trailer, sizeof(trailer));

  const int fd = ::open(path_.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("open journal " + path_));
  }
  const size_t head = record_bytes / 2;
  Status status = CallHook("append");
  if (status.ok()) status = WriteAll(fd, record.data(), head);
  if (status.ok()) status = CallHook("append-tail");
  if (status.ok()) {
    status = WriteAll(fd, record.data() + head, record_bytes - head);
  }
  if (status.ok()) status = CallHook("fsync");
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IOError(Errno("fsync journal " + path_));
  }
  ::close(fd);
  SS_RETURN_IF_ERROR(status);
  SS_RETURN_IF_ERROR(SyncParentDir());
  ++commits_;
  return Status::OK();
}

Status Journal::Truncate() {
  SS_RETURN_IF_ERROR(CallHook("truncate"));
  if (::unlink(path_.c_str()) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError(Errno("unlink journal " + path_));
  }
  return SyncParentDir();
}

Result<Journal::RecoveryResult> Journal::Recover(BlockManager* device) {
  RecoveryResult result;
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // no journal: clean open
    return Status::IOError(Errno("open journal " + path_));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat journal " + path_));
  }
  std::vector<char> record(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < record.size()) {
    const ssize_t r = ::read(fd, record.data() + done, record.size() - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(Errno("read journal " + path_));
    }
    if (r == 0) break;  // shrank under us; validation below rejects it
    done += static_cast<size_t>(r);
  }
  ::close(fd);

  // Validate: any inconsistency means the record never committed — the
  // in-place writes never started, so discarding it restores the
  // pre-commit state.
  const auto rollback = [&]() -> Result<RecoveryResult> {
    // No hook on the recovery path: recovery is not a crash point of the
    // commit protocol under test, it is the repair step.
    if (::unlink(path_.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(Errno("unlink journal " + path_));
    }
    SS_RETURN_IF_ERROR(SyncParentDir());
    ++rollbacks_;
    result.rolled_back = true;
    return result;
  };

  if (done != record.size() || record.size() < sizeof(RecordHeader)) {
    return rollback();
  }
  RecordHeader header;
  std::memcpy(&header, record.data(), sizeof(header));
  if (header.magic != kRecordMagic || header.version != 1 ||
      header.block_size != device->block_size() || header.num_entries == 0) {
    return rollback();
  }
  const uint64_t payload_bytes = header.block_size * sizeof(double);
  const size_t expect_bytes =
      sizeof(RecordHeader) +
      header.num_entries * (sizeof(EntryHeader) + payload_bytes) +
      sizeof(RecordTrailer);
  if (record.size() != expect_bytes) {
    return rollback();
  }
  RecordTrailer trailer;
  std::memcpy(&trailer, record.data() + expect_bytes - sizeof(trailer),
              sizeof(trailer));
  if (trailer.magic != kTrailerMagic ||
      trailer.crc != Crc32c(record.data(), expect_bytes - sizeof(trailer))) {
    return rollback();
  }
  const char* entry_base = record.data() + sizeof(RecordHeader);
  const char* payload_base =
      entry_base + header.num_entries * sizeof(EntryHeader);
  for (uint64_t i = 0; i < header.num_entries; ++i) {
    EntryHeader eh;
    std::memcpy(&eh, entry_base + i * sizeof(EntryHeader), sizeof(eh));
    if (eh.crc != Crc32c(payload_base + i * payload_bytes, payload_bytes)) {
      return rollback();
    }
  }

  // The record committed: redo every block image in place (idempotent), make
  // it durable, then retire the journal. Parity entries (ids at or above
  // kParityIdBase) address sidecar strides, not device blocks — they never
  // drive a resize, and while they replay the device suspends its own
  // incremental parity maintenance (the record's images are absolute).
  uint64_t max_id = 0;
  bool any_data = false;
  for (uint64_t i = 0; i < header.num_entries; ++i) {
    EntryHeader eh;
    std::memcpy(&eh, entry_base + i * sizeof(EntryHeader), sizeof(eh));
    if (eh.block_id >= kParityIdBase) continue;
    any_data = true;
    max_id = std::max(max_id, eh.block_id);
  }
  if (any_data && max_id >= device->num_blocks()) {
    SS_RETURN_IF_ERROR(device->Resize(max_id + 1));
  }
  device->BeginParityReplay();
  std::vector<double> payload(header.block_size);
  for (uint64_t i = 0; i < header.num_entries; ++i) {
    EntryHeader eh;
    std::memcpy(&eh, entry_base + i * sizeof(EntryHeader), sizeof(eh));
    std::memcpy(payload.data(), payload_base + i * payload_bytes,
                payload_bytes);
    const Status written = device->WriteBlock(eh.block_id, payload);
    if (!written.ok()) {
      device->EndParityReplay();
      return written;
    }
  }
  device->EndParityReplay();
  SS_RETURN_IF_ERROR(device->Sync());
  if (::unlink(path_.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(Errno("unlink journal " + path_));
  }
  SS_RETURN_IF_ERROR(SyncParentDir());
  ++replays_;
  result.replayed = true;
  result.blocks = header.num_entries;
  return result;
}

// ---------------------------------------------------------------------------
// DeltaLog

namespace {

constexpr uint32_t kDeltaMagic = 0x52445353u;  // "SSDR"
constexpr uint32_t kDeltaMaxDims = 64;         // sanity bound for replay

// Fixed-size prefix of a record, before the coords array.
constexpr size_t kDeltaPrefixBytes =
    sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint64_t) + sizeof(double);
// Fixed-size suffix after the coords array: crc + pad.
constexpr size_t kDeltaSuffixBytes = sizeof(uint32_t) + sizeof(uint32_t);

// WriteAll with the delta log's errno mapping: ENOSPC is backpressure
// (kResourceExhausted), not an I/O fault — see DeltaLog::Sync.
Status WriteAllDelta(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t w = ::write(fd, data + done, size - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return WriteErrnoStatus("delta log write");
    }
    if (w == 0) return Status::IOError("delta log write: wrote 0 bytes");
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

void AppendRaw(std::vector<uint8_t>* out, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out->insert(out->end(), bytes, bytes + size);
}

void EncodeDelta(const DeltaRecord& record, std::vector<uint8_t>* out) {
  const size_t start = out->size();
  const uint32_t ndim = static_cast<uint32_t>(record.coords.size());
  AppendRaw(out, &kDeltaMagic, sizeof(kDeltaMagic));
  AppendRaw(out, &ndim, sizeof(ndim));
  AppendRaw(out, &record.seq, sizeof(record.seq));
  AppendRaw(out, &record.value, sizeof(record.value));
  for (const uint64_t coord : record.coords) {
    AppendRaw(out, &coord, sizeof(coord));
  }
  const uint32_t crc = Crc32c(reinterpret_cast<const char*>(out->data()) +
                                  start,
                              out->size() - start);
  const uint32_t pad = 0;
  AppendRaw(out, &crc, sizeof(crc));
  AppendRaw(out, &pad, sizeof(pad));
}

}  // namespace

void DeltaLog::Append(const DeltaRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  EncodeDelta(record, &pending_);
  if (record.seq > pending_max_seq_) pending_max_seq_ = record.seq;
  ++appends_;
}

Status DeltaLog::FlushPendingLocked(std::unique_lock<std::mutex>& lock) {
  flushing_ = true;
  std::vector<uint8_t> batch = std::move(pending_);
  pending_.clear();
  const uint64_t batch_seq = pending_max_seq_;
  const bool sync_parent = !created_synced_;
  const Hook hook = flush_hook_;
  lock.unlock();

  Status status = hook ? hook() : Status::OK();
  if (status.ok()) {
    const int fd = ::open(path_.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
      status = WriteErrnoStatus("open delta log " + path_);
    } else {
      status = WriteAllDelta(fd, reinterpret_cast<const char*>(batch.data()),
                             batch.size());
      if (status.ok() && ::fsync(fd) != 0) {
        status = WriteErrnoStatus("fsync delta log " + path_);
      }
      ::close(fd);
    }
  }
  if (status.ok() && sync_parent) status = SyncParentDirOf(path_);

  lock.lock();
  flushing_ = false;
  if (status.ok()) {
    if (batch_seq > durable_seq_) durable_seq_ = batch_seq;
    created_synced_ = true;
    ++syncs_;
  } else {
    // Keep the unwritten batch at the front so a retry preserves seq order.
    // (O_APPEND writes are all-or-nothing on local filesystems in practice;
    // a genuinely partial write would leave a torn record that Replay drops.)
    batch.insert(batch.end(), pending_.begin(), pending_.end());
    pending_ = std::move(batch);
  }
  cv_.notify_all();
  return status;
}

Status DeltaLog::Sync(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (durable_seq_ >= seq) return Status::OK();
    if (flushing_) {
      // Another caller is the flush leader: wait for its batch (which
      // includes every record staged before ours) and re-check.
      cv_.wait(lock, [this] { return !flushing_; });
      continue;
    }
    SS_RETURN_IF_ERROR(FlushPendingLocked(lock));
  }
}

Result<std::vector<DeltaRecord>> DeltaLog::Replay() {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<DeltaRecord> records;
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return records;  // no log: nothing buffered
    return Status::IOError(Errno("open delta log " + path_));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat delta log " + path_));
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t r = ::read(fd, bytes.data() + done, bytes.size() - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(Errno("read delta log " + path_));
    }
    if (r == 0) break;
    done += static_cast<size_t>(r);
  }
  ::close(fd);
  bytes.resize(done);

  // Parse sequentially; the first torn or invalid record ends the valid
  // prefix (a crash mid-append tore the tail — that record was never
  // acknowledged, so dropping it loses nothing).
  size_t offset = 0;
  while (bytes.size() - offset >= kDeltaPrefixBytes + kDeltaSuffixBytes) {
    const uint8_t* base = bytes.data() + offset;
    uint32_t magic = 0;
    uint32_t ndim = 0;
    std::memcpy(&magic, base, sizeof(magic));
    std::memcpy(&ndim, base + sizeof(magic), sizeof(ndim));
    if (magic != kDeltaMagic || ndim == 0 || ndim > kDeltaMaxDims) break;
    const size_t record_bytes =
        kDeltaPrefixBytes + ndim * sizeof(uint64_t) + kDeltaSuffixBytes;
    if (bytes.size() - offset < record_bytes) break;
    const size_t crc_covered = record_bytes - kDeltaSuffixBytes;
    uint32_t crc = 0;
    std::memcpy(&crc, base + crc_covered, sizeof(crc));
    if (crc != Crc32c(reinterpret_cast<const char*>(base), crc_covered)) {
      break;
    }
    DeltaRecord record;
    std::memcpy(&record.seq, base + 2 * sizeof(uint32_t), sizeof(record.seq));
    std::memcpy(&record.value,
                base + 2 * sizeof(uint32_t) + sizeof(uint64_t),
                sizeof(record.value));
    record.coords.resize(ndim);
    std::memcpy(record.coords.data(), base + kDeltaPrefixBytes,
                ndim * sizeof(uint64_t));
    records.push_back(std::move(record));
    offset += record_bytes;
  }

  if (offset < bytes.size()) {
    // Truncate the torn tail so later appends are not stranded behind it.
    ++torn_records_;
    const int wfd = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
    if (wfd < 0) {
      return Status::IOError(Errno("open delta log " + path_));
    }
    Status status = Status::OK();
    if (::ftruncate(wfd, static_cast<off_t>(offset)) != 0) {
      status = Status::IOError(Errno("ftruncate delta log " + path_));
    }
    if (status.ok() && ::fsync(wfd) != 0) {
      status = Status::IOError(Errno("fsync delta log " + path_));
    }
    ::close(wfd);
    SS_RETURN_IF_ERROR(status);
  }

  if (!records.empty()) {
    durable_seq_ = std::max(durable_seq_, records.back().seq);
  }
  created_synced_ = done > 0 || !records.empty();
  return records;
}

Status DeltaLog::Truncate() {
  std::unique_lock<std::mutex> lock(mu_);
  if (::unlink(path_.c_str()) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError(Errno("unlink delta log " + path_));
  }
  created_synced_ = false;
  return SyncParentDirOf(path_);
}

uint64_t DeltaLog::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

uint64_t DeltaLog::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

uint64_t DeltaLog::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_seq_;
}

}  // namespace shiftsplit
