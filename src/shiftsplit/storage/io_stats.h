// I/O accounting. Every experiment in the paper plots I/O cost, measured
// either in coefficients or in disk blocks; IoStats is the single source of
// truth for both units.

#ifndef SHIFTSPLIT_STORAGE_IO_STATS_H_
#define SHIFTSPLIT_STORAGE_IO_STATS_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace shiftsplit {

/// \brief Counters of block-level and coefficient-level I/O.
struct IoStats {
  uint64_t block_reads = 0;
  uint64_t block_writes = 0;
  uint64_t coeff_reads = 0;   ///< individual coefficient fetches served
  uint64_t coeff_writes = 0;  ///< individual coefficient stores issued

  uint64_t total_blocks() const { return block_reads + block_writes; }
  uint64_t total_coeffs() const { return coeff_reads + coeff_writes; }

  void Reset() { *this = IoStats{}; }

  IoStats operator-(const IoStats& other) const {
    return IoStats{block_reads - other.block_reads,
                   block_writes - other.block_writes,
                   coeff_reads - other.coeff_reads,
                   coeff_writes - other.coeff_writes};
  }

  IoStats& operator+=(const IoStats& other) {
    block_reads += other.block_reads;
    block_writes += other.block_writes;
    coeff_reads += other.coeff_reads;
    coeff_writes += other.coeff_writes;
    return *this;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "blocks r/w=" << block_reads << "/" << block_writes
       << " coeffs r/w=" << coeff_reads << "/" << coeff_writes;
    return os.str();
  }

  bool operator==(const IoStats&) const = default;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_IO_STATS_H_
