// I/O accounting. Every experiment in the paper plots I/O cost, measured
// either in coefficients or in disk blocks; IoStats is the single source of
// truth for both units.
//
// The counters are relaxed atomics: block-level I/O is serialized by the
// buffer pool's mutex in thread-safe mode, but the coefficient counters are
// bumped by TiledStore outside any lock, and a serving tier runs queries
// concurrently. Relaxed increments keep the counts exact without ordering
// cost; snapshots (copies) are not cross-field consistent, which is fine
// for statistics.

#ifndef SHIFTSPLIT_STORAGE_IO_STATS_H_
#define SHIFTSPLIT_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace shiftsplit {

namespace internal {

/// \brief uint64_t counter with relaxed atomic access and value semantics,
/// so IoStats keeps behaving like a plain struct of integers.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t value = 0) : value_(value) {}  // NOLINT
  RelaxedCounter(const RelaxedCounter& other) : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    store(other.load());
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    store(value);
    return *this;
  }

  operator uint64_t() const { return load(); }  // NOLINT(runtime/explicit)

  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

  uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  void store(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_;
};

}  // namespace internal

/// \brief Counters of block-level and coefficient-level I/O.
struct IoStats {
  internal::RelaxedCounter block_reads = 0;
  internal::RelaxedCounter block_writes = 0;
  internal::RelaxedCounter coeff_reads = 0;   ///< coefficient fetches served
  internal::RelaxedCounter coeff_writes = 0;  ///< coefficient stores issued

  uint64_t total_blocks() const { return block_reads + block_writes; }
  uint64_t total_coeffs() const { return coeff_reads + coeff_writes; }

  void Reset() { *this = IoStats{}; }

  IoStats operator-(const IoStats& other) const {
    return IoStats{block_reads - other.block_reads,
                   block_writes - other.block_writes,
                   coeff_reads - other.coeff_reads,
                   coeff_writes - other.coeff_writes};
  }

  IoStats& operator+=(const IoStats& other) {
    block_reads += other.block_reads;
    block_writes += other.block_writes;
    coeff_reads += other.coeff_reads;
    coeff_writes += other.coeff_writes;
    return *this;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "blocks r/w=" << block_reads << "/" << block_writes
       << " coeffs r/w=" << coeff_reads << "/" << coeff_writes;
    return os.str();
  }

  bool operator==(const IoStats& other) const {
    return block_reads.load() == other.block_reads.load() &&
           block_writes.load() == other.block_writes.load() &&
           coeff_reads.load() == other.coeff_reads.load() &&
           coeff_writes.load() == other.coeff_writes.load();
  }
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_IO_STATS_H_
