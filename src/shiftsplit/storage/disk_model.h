// Analytic disk-time model: converts the I/O counters every experiment
// collects into estimated device time, so benches can report time-like
// numbers alongside counts (the paper's experiments ran "on real disks with
// real disk blocks"; the file backend provides actual wall-clock runs, and
// this model makes count-based runs comparable).

#ifndef SHIFTSPLIT_STORAGE_DISK_MODEL_H_
#define SHIFTSPLIT_STORAGE_DISK_MODEL_H_

#include "shiftsplit/storage/io_stats.h"

namespace shiftsplit {

/// \brief First-order rotating-disk cost model.
struct DiskModel {
  /// Average positioning (seek + rotational) cost per block access, ms.
  double access_ms = 8.5;
  /// Sustained transfer rate, MiB/s.
  double transfer_mib_s = 60.0;
  /// Block size in bytes.
  double block_bytes = 4096.0;

  /// \brief A 2005-era 7200rpm commodity drive (the paper's hardware
  /// generation).
  static DiskModel Circa2005(double block_bytes) {
    return DiskModel{8.5, 60.0, block_bytes};
  }

  /// \brief A modern SATA SSD for contrast (latency-dominated costs shrink
  /// ~100x, so the block-count reductions matter less but still dominate
  /// throughput).
  static DiskModel ModernSsd(double block_bytes) {
    return DiskModel{0.08, 500.0, block_bytes};
  }

  /// \brief Estimated milliseconds to perform the block I/O in `stats`.
  double EstimateMs(const IoStats& stats) const {
    const double blocks = static_cast<double>(stats.total_blocks());
    const double transfer_ms =
        blocks * block_bytes / (transfer_mib_s * 1024.0 * 1024.0) * 1000.0;
    return blocks * access_ms + transfer_ms;
  }
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_DISK_MODEL_H_
