// Block-device abstraction. The wavelet coefficients live in fixed-size
// blocks of doubles; block size is measured in coefficients (the paper's
// B = 2^b convention — a B^d-coefficient multidimensional tile is one block).

#ifndef SHIFTSPLIT_STORAGE_BLOCK_MANAGER_H_
#define SHIFTSPLIT_STORAGE_BLOCK_MANAGER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "shiftsplit/storage/durability.h"
#include "shiftsplit/storage/io_stats.h"
#include "shiftsplit/util/operation_context.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Block ids at or above this base address parity blocks instead of
/// data blocks: parity group `g` (the XOR of data blocks [g*G, (g+1)*G)) is
/// addressed as kParityIdBase + g. Backends without parity reject such ids;
/// FileBlockManager routes them to its parity sidecar, so a redo-journal
/// record can carry data and parity images through one WriteBlock interface.
inline constexpr uint64_t kParityIdBase = uint64_t{1} << 62;

/// \brief One pending block write, as seen by parity planning.
struct BlockWrite {
  uint64_t block_id = 0;
  std::span<const double> data;  ///< block_size doubles, not owned
};

/// \brief An absolute parity image for one group, ready to journal/write.
struct ParityBlockImage {
  uint64_t block_id = 0;      ///< kParityIdBase + group
  std::vector<double> data;   ///< block_size doubles (raw XOR bit pattern)
};

/// \brief Outcome of a repairing scrub pass (BlockManager::ScrubRepair).
struct ScrubReport {
  std::vector<uint64_t> repaired;      ///< rebuilt from parity and rewritten
  std::vector<uint64_t> unrepairable;  ///< still corrupt (quarantined)
  bool clean() const { return repaired.empty() && unrepairable.empty(); }
};

/// \brief Abstract array of fixed-size blocks of doubles.
///
/// Implementations count every ReadBlock/WriteBlock in stats(). Blocks that
/// were never written read back as all-zero. Thread-compatible, not
/// thread-safe: concurrent callers must serialize externally (the BufferPool
/// does so in its mutex-guarded mode).
class BlockManager {
 public:
  virtual ~BlockManager() = default;

  /// Block capacity in coefficients (doubles).
  virtual uint64_t block_size() const = 0;

  /// Current number of addressable blocks.
  virtual uint64_t num_blocks() const = 0;

  /// \brief Grows (never shrinks) the device to `num_blocks` blocks; new
  /// blocks read as zero.
  virtual Status Resize(uint64_t num_blocks) = 0;

  /// \brief Reads block `id` into `out` (size must equal block_size()).
  virtual Status ReadBlock(uint64_t id, std::span<double> out) = 0;

  /// \brief Writes block `id` from `data` (size must equal block_size()).
  virtual Status WriteBlock(uint64_t id, std::span<const double> data) = 0;

  /// \brief Vectored read: fills `out` (size ids.size() * block_size()) with
  /// the blocks `ids`, concatenated in order. Each block is counted in
  /// stats() exactly as if read individually; backends with batched I/O
  /// primitives (FileBlockManager's preadv) override this to coalesce runs
  /// of consecutive ids into single system calls. On error, the contents of
  /// `out` are unspecified but the device is unchanged.
  virtual Status ReadBlocks(std::span<const uint64_t> ids,
                            std::span<double> out) {
    if (out.size() != ids.size() * block_size()) {
      return Status::InvalidArgument("read buffer size != ids * block size");
    }
    for (uint64_t i = 0; i < ids.size(); ++i) {
      SS_RETURN_IF_ERROR(
          ReadBlock(ids[i], out.subspan(i * block_size(), block_size())));
    }
    return Status::OK();
  }

  /// \brief Makes all completed writes durable (fsync on file backends).
  /// Backends without a durability boundary (memory) succeed trivially.
  virtual Status Sync() { return Status::OK(); }

  /// \brief Verifies the integrity of every block, quarantining and
  /// returning the ids that fail. Backends without checksums have nothing to
  /// verify and return an empty list.
  virtual Result<std::vector<uint64_t>> Scrub() {
    return std::vector<uint64_t>{};
  }

  /// \brief Toggles degraded reads: when on, a block that fails verification
  /// is quarantined and served as zeros instead of erroring — the read-only
  /// salvage mode. No-op on backends without checksums.
  virtual void set_degraded_reads(bool on) { (void)on; }

  /// \brief Corruption/recovery counters (all-zero for backends without
  /// checksums).
  virtual DurabilityStats durability_stats() const {
    return DurabilityStats{};
  }

  /// \brief Parity group size G (0 = parity disabled). When non-zero, every
  /// G consecutive data blocks share one XOR parity block addressed as
  /// kParityIdBase + (id / G), and corrupt blocks can be rebuilt in place.
  virtual uint64_t parity_group() const { return 0; }

  /// \brief Computes the absolute post-write parity images for every group
  /// touched by `writes` (the dirty set of one atomic commit) and stages
  /// them: the images are applied to the backend's pending-parity state so
  /// the subsequent WriteBlock calls for exactly these writes perform no
  /// incremental parity work, and the next Sync() persists the images.
  /// Journaling the returned images after the data entries makes parity
  /// crash-consistent with its group (see DESIGN.md §12). Backends without
  /// parity return an empty plan.
  virtual Result<std::vector<ParityBlockImage>> PlanParityCommit(
      std::span<const BlockWrite> writes) {
    (void)writes;
    return std::vector<ParityBlockImage>{};
  }

  /// \brief Journal-replay bracket: between Begin and End the backend
  /// suspends incremental parity maintenance. A replayed commit record
  /// carries the absolute parity images of every group it touched, so
  /// per-write incremental updates would double-apply — and would read
  /// torn pre-crash payloads. No-ops on backends without parity.
  virtual void BeginParityReplay() {}
  virtual void EndParityReplay() {}

  /// \brief Verifies every block and repairs corrupt ones from parity in
  /// place (rewrites heal the quarantine). Backends without parity degrade
  /// to a detect-only Scrub() whose corrupt blocks are all unrepairable.
  virtual Result<ScrubReport> ScrubRepair() {
    ScrubReport report;
    SS_ASSIGN_OR_RETURN(report.unrepairable, Scrub());
    return report;
  }

  /// \brief ReadBlock under an operation context: checks the deadline and
  /// cancellation before issuing I/O, and retries transient failures
  /// (IOError, Unavailable) under the context's retry budget with jittered
  /// backoff. A null context degenerates to a plain ReadBlock. Non-virtual
  /// on purpose — backends override the single-attempt primitives, and every
  /// backend gets the same resilience envelope.
  Status ReadBlockRetry(uint64_t id, std::span<double> out,
                        OperationContext* ctx) {
    return RetryLoop(ctx, [&] { return ReadBlock(id, out); });
  }

  /// \brief ReadBlocks under an operation context; see ReadBlockRetry.
  Status ReadBlocksRetry(std::span<const uint64_t> ids, std::span<double> out,
                         OperationContext* ctx) {
    return RetryLoop(ctx, [&] { return ReadBlocks(ids, out); });
  }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 protected:
  IoStats stats_;

 private:
  /// Runs `attempt` under the context's deadline/cancellation/retry budget.
  template <typename Fn>
  Status RetryLoop(OperationContext* ctx, Fn&& attempt) {
    if (ctx == nullptr) return attempt();
    for (;;) {
      SS_RETURN_IF_ERROR(ctx->Check());
      Status st = attempt();
      if (st.ok() || !IsTransientError(st)) return st;
      if (!ctx->BackoffBeforeRetry()) {
        // Budget or deadline ended the retries: the deadline takes
        // precedence in the reported status, the transient error otherwise.
        Status gate = ctx->Check();
        return gate.ok() ? st : gate;
      }
    }
  }
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_BLOCK_MANAGER_H_
