// Block-device abstraction. The wavelet coefficients live in fixed-size
// blocks of doubles; block size is measured in coefficients (the paper's
// B = 2^b convention — a B^d-coefficient multidimensional tile is one block).

#ifndef SHIFTSPLIT_STORAGE_BLOCK_MANAGER_H_
#define SHIFTSPLIT_STORAGE_BLOCK_MANAGER_H_

#include <cstdint>
#include <span>

#include "shiftsplit/storage/io_stats.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Abstract array of fixed-size blocks of doubles.
///
/// Implementations count every ReadBlock/WriteBlock in stats(). Blocks that
/// were never written read back as all-zero. Not thread-safe; the library is
/// single-threaded by design (the paper's algorithms are sequential).
class BlockManager {
 public:
  virtual ~BlockManager() = default;

  /// Block capacity in coefficients (doubles).
  virtual uint64_t block_size() const = 0;

  /// Current number of addressable blocks.
  virtual uint64_t num_blocks() const = 0;

  /// \brief Grows (never shrinks) the device to `num_blocks` blocks; new
  /// blocks read as zero.
  virtual Status Resize(uint64_t num_blocks) = 0;

  /// \brief Reads block `id` into `out` (size must equal block_size()).
  virtual Status ReadBlock(uint64_t id, std::span<double> out) = 0;

  /// \brief Writes block `id` from `data` (size must equal block_size()).
  virtual Status WriteBlock(uint64_t id, std::span<const double> data) = 0;

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 protected:
  IoStats stats_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_BLOCK_MANAGER_H_
