// File-backed BlockManager using POSIX pread/pwrite. The paper's experiments
// are "accurate implementations of the operations on real disks with real
// disk blocks" — this backend provides that fidelity; I/O counts are
// identical to the in-memory backend by construction.
//
// With Options::checksums the on-disk format grows a 16-byte footer per
// block (magic + CRC32C of the payload + store epoch) that is written on
// every WriteBlock and verified on every read. A block that fails
// verification is quarantined and the read fails with ChecksumMismatch —
// or, in degraded mode, is served as zeros so a corrupt store can still be
// salvaged read-only. Never-written blocks (all-zero payload and footer)
// verify trivially, so sparse ftruncate-extended tails stay valid.
//
// With Options::parity_group = G, every G consecutive blocks additionally
// share one XOR parity block in a `<path>.parity` sidecar (same stride,
// same footer format). A block failing verification is then rebuilt in
// place from parity ⊕ its verified siblings instead of being quarantined —
// inline on the read path, or in bulk by ScrubRepair(). Only a double fault
// (two corrupt strides in one group) is unrepairable and falls back to the
// quarantine/degraded path. Parity is maintained incrementally on every
// write (parity' = parity ⊕ old ⊕ new) and made crash-consistent by the
// redo journal: PlanParityCommit stages the absolute post-commit parity
// images for a FlushAtomic batch so they are journaled with the data and
// replayed after it (DESIGN.md §12). Parity I/O is tracked in
// DurabilityStats (parity_reads / parity_writes), never in IoStats — block
// I/O counts stay identical to a parity-less store.

#ifndef SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_
#define SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "shiftsplit/storage/block_manager.h"

namespace shiftsplit {

/// \brief Block device stored in a single flat file.
class FileBlockManager : public BlockManager {
 public:
  struct Options {
    /// Append a per-block integrity footer (CRC32C + epoch) to every block
    /// and verify it on every read. Changes the on-disk stride; a file
    /// written with checksums cannot be opened without them (and vice
    /// versa) — the store manifest's format version records which.
    bool checksums = false;

    /// Store epoch stamped into every footer and required on read; detects
    /// a block file spliced in from a different store generation. Ignored
    /// without checksums.
    uint64_t epoch = 0;

    /// Degraded mode: a block failing verification is quarantined and read
    /// as zeros instead of failing — for read-only salvage of a corrupt
    /// store. Also settable later via set_degraded_reads().
    bool degraded_reads = false;

    /// XOR parity group size G: every G consecutive blocks share one parity
    /// block in the `<path>.parity` sidecar, and a corrupt block heals in
    /// place from parity ⊕ siblings (see file comment). 0 disables parity.
    /// Requires checksums; recorded as manifest format v3.
    uint64_t parity_group = 0;

    /// Transient-I/O retry budget: a short read/write that makes no
    /// progress (0 bytes, or EAGAIN) is retried up to this many times with
    /// capped exponential backoff and jitter before surfacing IOError.
    /// EINTR is always retried and does not consume the budget. Applies to
    /// the scalar pread/pwrite loops and the vectored preadv path alike;
    /// every consumed retry is counted in DurabilityStats::io_retries.
    uint32_t retry_attempts = 3;
    /// Initial backoff before the first retry, doubling per attempt up to
    /// RetryPolicy's cap.
    uint32_t retry_backoff_us = 100;
  };

  /// \brief Creates or opens the backing file. If the file exists it is
  /// opened with its current contents; its size must be a multiple of the
  /// on-disk block stride (payload bytes, plus the footer when checksums
  /// are on). With parity enabled the sidecar is opened (or created) next
  /// to it and zero-extended to one stride per group — all-zero parity is
  /// exactly right for all-zero (never-written) groups; a sidecar that is
  /// stale for non-zero data is restored by the next ScrubRepair().
  static Result<std::unique_ptr<FileBlockManager>> Open(
      const std::string& path, uint64_t block_size, const Options& options);

  /// \brief Legacy unchecksummed open (format v1 stores).
  static Result<std::unique_ptr<FileBlockManager>> Open(
      const std::string& path, uint64_t block_size) {
    return Open(path, block_size, Options{});
  }

  ~FileBlockManager() override;
  FileBlockManager(const FileBlockManager&) = delete;
  FileBlockManager& operator=(const FileBlockManager&) = delete;

  uint64_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  Status Resize(uint64_t num_blocks) override;

  /// \brief Reads block `id` (or, for id ≥ kParityIdBase, the raw payload
  /// of parity group id - kParityIdBase from the sidecar).
  Status ReadBlock(uint64_t id, std::span<double> out) override;

  /// \brief Writes block `id`, maintaining its group's parity incrementally
  /// (parity' = parity ⊕ old ⊕ new; a corrupt old payload is reconstructed
  /// from parity first, so the overwrite heals it — a double fault fails
  /// the write with ChecksumMismatch). For id ≥ kParityIdBase the data is
  /// written as the absolute parity image of its group — the journal-replay
  /// path. Parity updates are buffered in memory and persisted by Sync().
  Status WriteBlock(uint64_t id, std::span<const double> data) override;

  /// \brief Vectored read: runs of consecutive block ids become single
  /// preadv calls (one iovec per block, capped at IOV_MAX per call).
  /// Checksummed files read runs through a bounded scratch buffer instead
  /// (same syscall coalescing) so footers can be stripped and verified.
  Status ReadBlocks(std::span<const uint64_t> ids,
                    std::span<double> out) override;

  /// \brief Flushes buffered parity images to the sidecar and fsyncs both
  /// files (just the data file when parity is off).
  Status Sync() override;

  /// \brief Verifies every block's footer, quarantining and returning the
  /// ids that fail (empty without checksums). Reads the whole file; each
  /// block is counted as one block read. Detect-only: no degraded-read
  /// masking and no repair — see ScrubRepair() for the healing pass.
  Result<std::vector<uint64_t>> Scrub() override;

  /// \brief Verifies every block, rebuilding corrupt ones from parity in
  /// place (payload rewritten with a fresh footer, quarantine cleared) and
  /// restoring every group's parity invariant — a corrupt or stale parity
  /// stride is recomputed from its verified members, which is also how a
  /// freshly parity-enabled (upgraded) store builds its sidecar. Reported
  /// parity rebuilds use kParityIdBase + group ids. Durable on return.
  Result<ScrubReport> ScrubRepair() override;

  uint64_t parity_group() const override { return parity_group_; }

  /// \brief Stages the absolute post-commit parity images for one atomic
  /// write batch; see BlockManager::PlanParityCommit.
  Result<std::vector<ParityBlockImage>> PlanParityCommit(
      std::span<const BlockWrite> writes) override;

  /// \brief See BlockManager: suspends incremental parity maintenance
  /// while a journal replay rewrites data and parity absolutely. Entering
  /// the bracket drops any staged parity state (the replayed record
  /// supersedes it).
  void BeginParityReplay() override {
    parity_replay_ = true;
    parity_dirty_.clear();
    parity_planned_.clear();
  }
  void EndParityReplay() override { parity_replay_ = false; }

  void set_degraded_reads(bool on) override { degraded_reads_ = on; }
  bool degraded_reads() const { return degraded_reads_; }

  DurabilityStats durability_stats() const override;

  /// \brief Blocks currently quarantined (failed verification and not
  /// rewritten since), ascending.
  std::vector<uint64_t> quarantined() const {
    return std::vector<uint64_t>(quarantined_.begin(), quarantined_.end());
  }

  bool checksums() const { return checksums_; }
  const std::string& path() const { return path_; }

 private:
  FileBlockManager(std::string path, int fd, int parity_fd,
                   uint64_t block_size, uint64_t num_blocks,
                   const Options& options);

  /// How VerifyInto treats a verification failure: the serving path may
  /// repair from parity and mask with degraded zero-fill; the reporting
  /// path (scrubs) must do neither — fixing the old Scrub() practice of
  /// toggling the shared degraded_reads_ flag, which raced concurrent
  /// readers in thread-safe pool mode.
  enum class VerifyMode { kServe, kReport };

  // On-disk bytes per block: payload plus footer (when checksummed).
  uint64_t stride() const;
  // Parity strides in the sidecar: ceil(num_blocks / parity_group).
  uint64_t NumParityBlocks() const;
  // pread/pwrite loops with EINTR handling and the bounded transient-error
  // retry policy, against an explicit fd (data file or parity sidecar).
  // Read `sparse_zero` semantics: a read hitting EOF zero fills the
  // remainder (ftruncate-extended tail).
  Status ReadRawFd(int fd, uint64_t offset, char* dst, uint64_t bytes);
  Status WriteRawFd(int fd, uint64_t offset, const char* src, uint64_t bytes);
  Status ReadRaw(uint64_t offset, char* dst, uint64_t bytes) {
    return ReadRawFd(fd_, offset, dst, bytes);
  }
  Status WriteRaw(uint64_t offset, const char* src, uint64_t bytes) {
    return WriteRawFd(fd_, offset, src, bytes);
  }
  // Counts one transient retry in durability_.io_retries and sleeps the
  // jittered backoff for 0-based `attempt` (BackoffDelayUs on retry_).
  void BackoffRetry(uint32_t attempt);
  // Verifies one block image (payload + footer at `raw`); on failure the
  // serve mode tries a parity repair, then quarantines + zero-fills
  // (degraded) or returns ChecksumMismatch. `out` receives block_size_
  // doubles.
  Status VerifyInto(uint64_t id, const char* raw, std::span<double> out,
                    VerifyMode mode);
  // Effective parity payload of `group` (payload bytes): the staged image
  // when one is pending, the verified sidecar stride otherwise.
  Status ParityPayload(uint64_t group, char* out);
  // Rebuilds block `id`'s payload as parity ⊕ verified siblings, validating
  // the candidate against the stored footer when that is structurally
  // intact. `corrupt_raw` is the stride that failed verification; `out`
  // receives payload bytes. Fails with ChecksumMismatch on a double fault.
  Status ReconstructPayload(uint64_t id, const char* corrupt_raw, char* out);
  // ReconstructPayload + in-place rewrite (fresh footer, quarantine
  // cleared, repaired/unrepairable counted). Parity is left untouched: it
  // already agrees with the reconstructed payload.
  Status RepairBlock(uint64_t id, const char* corrupt_raw,
                     std::span<double> out);
  // Writes one payload + freshly computed footer at `index` strides into
  // `fd` (a data block or a parity stride). No counters.
  Status WritePayloadImage(int fd, uint64_t index, const char* payload);
  // Incremental parity maintenance for one data write: folds old ⊕ new
  // into `group_image` (reconstructing a corrupt old payload from parity
  // first; double fault fails the write).
  Status XorOldNew(uint64_t id, const char* new_payload, char* group_image);
  // Writes every staged parity image to the sidecar (Sync's first half).
  Status FlushParityDirty();

  std::string path_;
  int fd_;
  int parity_fd_;          // -1 when parity is off
  uint64_t block_size_;
  uint64_t num_blocks_;
  bool checksums_;
  uint64_t epoch_;
  bool degraded_reads_;
  uint64_t parity_group_;  // 0 = parity off
  RetryPolicy retry_;      // transient short-I/O retry (EAGAIN, zero writes)
  uint64_t jitter_state_;  // backoff jitter stream (deterministically seeded)
  DurabilityStats durability_;
  std::set<uint64_t> quarantined_;
  std::vector<char> scratch_;  // one-block staging (read verify, write image)
  // Staged parity images (group → payload bytes), persisted by Sync().
  std::map<uint64_t, std::vector<char>> parity_dirty_;
  // Groups whose staged image is an absolute post-commit plan
  // (PlanParityCommit): their data write-backs skip incremental updates.
  std::set<uint64_t> parity_planned_;
  bool parity_replay_ = false;  // journal replay writes parity absolutely
  std::vector<char> write_scratch_;  // old-payload / repair-image staging
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_
