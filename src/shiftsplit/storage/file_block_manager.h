// File-backed BlockManager using POSIX pread/pwrite. The paper's experiments
// are "accurate implementations of the operations on real disks with real
// disk blocks" — this backend provides that fidelity; I/O counts are
// identical to the in-memory backend by construction.

#ifndef SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_
#define SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_

#include <memory>
#include <string>

#include "shiftsplit/storage/block_manager.h"

namespace shiftsplit {

/// \brief Block device stored in a single flat file.
class FileBlockManager : public BlockManager {
 public:
  /// \brief Creates or opens the backing file. If the file exists it is
  /// opened with its current contents; its size must be a multiple of the
  /// block byte size.
  static Result<std::unique_ptr<FileBlockManager>> Open(
      const std::string& path, uint64_t block_size);

  ~FileBlockManager() override;
  FileBlockManager(const FileBlockManager&) = delete;
  FileBlockManager& operator=(const FileBlockManager&) = delete;

  uint64_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  Status Resize(uint64_t num_blocks) override;
  Status ReadBlock(uint64_t id, std::span<double> out) override;
  Status WriteBlock(uint64_t id, std::span<const double> data) override;

  /// \brief Vectored read: runs of consecutive block ids become single
  /// preadv calls (one iovec per block, capped at IOV_MAX per call).
  Status ReadBlocks(std::span<const uint64_t> ids,
                    std::span<double> out) override;

  /// \brief fsyncs the backing file.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  FileBlockManager(std::string path, int fd, uint64_t block_size,
                   uint64_t num_blocks);

  std::string path_;
  int fd_;
  uint64_t block_size_;
  uint64_t num_blocks_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_
