// File-backed BlockManager using POSIX pread/pwrite. The paper's experiments
// are "accurate implementations of the operations on real disks with real
// disk blocks" — this backend provides that fidelity; I/O counts are
// identical to the in-memory backend by construction.
//
// With Options::checksums the on-disk format grows a 16-byte footer per
// block (magic + CRC32C of the payload + store epoch) that is written on
// every WriteBlock and verified on every read. A block that fails
// verification is quarantined and the read fails with ChecksumMismatch —
// or, in degraded mode, is served as zeros so a corrupt store can still be
// salvaged read-only. Never-written blocks (all-zero payload and footer)
// verify trivially, so sparse ftruncate-extended tails stay valid.

#ifndef SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_
#define SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "shiftsplit/storage/block_manager.h"

namespace shiftsplit {

/// \brief Block device stored in a single flat file.
class FileBlockManager : public BlockManager {
 public:
  struct Options {
    /// Append a per-block integrity footer (CRC32C + epoch) to every block
    /// and verify it on every read. Changes the on-disk stride; a file
    /// written with checksums cannot be opened without them (and vice
    /// versa) — the store manifest's format version records which.
    bool checksums = false;

    /// Store epoch stamped into every footer and required on read; detects
    /// a block file spliced in from a different store generation. Ignored
    /// without checksums.
    uint64_t epoch = 0;

    /// Degraded mode: a block failing verification is quarantined and read
    /// as zeros instead of failing — for read-only salvage of a corrupt
    /// store. Also settable later via set_degraded_reads().
    bool degraded_reads = false;

    /// Transient-I/O retry budget: a short read/write that makes no
    /// progress (0 bytes, or EAGAIN) is retried up to this many times with
    /// capped exponential backoff and jitter before surfacing IOError.
    /// EINTR is always retried and does not consume the budget. Applies to
    /// the scalar pread/pwrite loops and the vectored preadv path alike;
    /// every consumed retry is counted in DurabilityStats::io_retries.
    uint32_t retry_attempts = 3;
    /// Initial backoff before the first retry, doubling per attempt up to
    /// RetryPolicy's cap.
    uint32_t retry_backoff_us = 100;
  };

  /// \brief Creates or opens the backing file. If the file exists it is
  /// opened with its current contents; its size must be a multiple of the
  /// on-disk block stride (payload bytes, plus the footer when checksums
  /// are on).
  static Result<std::unique_ptr<FileBlockManager>> Open(
      const std::string& path, uint64_t block_size, const Options& options);

  /// \brief Legacy unchecksummed open (format v1 stores).
  static Result<std::unique_ptr<FileBlockManager>> Open(
      const std::string& path, uint64_t block_size) {
    return Open(path, block_size, Options{});
  }

  ~FileBlockManager() override;
  FileBlockManager(const FileBlockManager&) = delete;
  FileBlockManager& operator=(const FileBlockManager&) = delete;

  uint64_t block_size() const override { return block_size_; }
  uint64_t num_blocks() const override { return num_blocks_; }
  Status Resize(uint64_t num_blocks) override;
  Status ReadBlock(uint64_t id, std::span<double> out) override;
  Status WriteBlock(uint64_t id, std::span<const double> data) override;

  /// \brief Vectored read: runs of consecutive block ids become single
  /// preadv calls (one iovec per block, capped at IOV_MAX per call).
  /// Checksummed files read runs through a bounded scratch buffer instead
  /// (same syscall coalescing) so footers can be stripped and verified.
  Status ReadBlocks(std::span<const uint64_t> ids,
                    std::span<double> out) override;

  /// \brief fsyncs the backing file.
  Status Sync() override;

  /// \brief Verifies every block's footer, quarantining and returning the
  /// ids that fail (empty without checksums). Reads the whole file; each
  /// block is counted as one block read.
  Result<std::vector<uint64_t>> Scrub() override;

  void set_degraded_reads(bool on) override { degraded_reads_ = on; }
  bool degraded_reads() const { return degraded_reads_; }

  DurabilityStats durability_stats() const override;

  /// \brief Blocks currently quarantined (failed verification and not
  /// rewritten since), ascending.
  std::vector<uint64_t> quarantined() const {
    return std::vector<uint64_t>(quarantined_.begin(), quarantined_.end());
  }

  bool checksums() const { return checksums_; }
  const std::string& path() const { return path_; }

 private:
  FileBlockManager(std::string path, int fd, uint64_t block_size,
                   uint64_t num_blocks, const Options& options);

  // On-disk bytes per block: payload plus footer (when checksummed).
  uint64_t stride() const;
  // pread/pwrite loops with EINTR handling and the bounded transient-error
  // retry policy. Fill `sparse_zero` semantics: a read hitting EOF zero
  // fills the remainder (ftruncate-extended tail).
  Status ReadRaw(uint64_t offset, char* dst, uint64_t bytes);
  Status WriteRaw(uint64_t offset, const char* src, uint64_t bytes);
  // Counts one transient retry in durability_.io_retries and sleeps the
  // jittered backoff for 0-based `attempt` (BackoffDelayUs on retry_).
  void BackoffRetry(uint32_t attempt);
  // Verifies one block image (payload + footer at `raw`); on failure either
  // quarantines + zero-fills (degraded) or returns ChecksumMismatch.
  // `payload_out` receives block_size_ doubles.
  Status VerifyInto(uint64_t id, const char* raw, std::span<double> out);

  std::string path_;
  int fd_;
  uint64_t block_size_;
  uint64_t num_blocks_;
  bool checksums_;
  uint64_t epoch_;
  bool degraded_reads_;
  RetryPolicy retry_;      // transient short-I/O retry (EAGAIN, zero writes)
  uint64_t jitter_state_;  // backoff jitter stream (deterministically seeded)
  DurabilityStats durability_;
  std::set<uint64_t> quarantined_;
  std::vector<char> scratch_;  // one-block staging (read verify, write image)
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_FILE_BLOCK_MANAGER_H_
