// Pinning, write-back LRU buffer pool over a BlockManager. The pool capacity
// (in blocks) is the memory budget the paper's algorithms operate under; a
// hit costs no block I/O, a miss reads the block and may evict (writing back
// a dirty frame).

#ifndef SHIFTSPLIT_STORAGE_BUFFER_POOL_H_
#define SHIFTSPLIT_STORAGE_BUFFER_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "shiftsplit/storage/block_manager.h"
#include "shiftsplit/storage/io_stats.h"
#include "shiftsplit/storage/journal.h"
#include "shiftsplit/util/operation_context.h"

namespace shiftsplit {

class BufferPool;

namespace internal {
// One cached block. Frames live in a std::list, so their addresses are
// stable for the lifetime of the frame — PageGuard relies on this.
struct PoolFrame {
  uint64_t block_id = 0;
  bool dirty = false;
  uint32_t pins = 0;
  std::vector<double> data;
};
}  // namespace internal

/// \brief RAII pin on a buffer-pool frame.
///
/// While a PageGuard is alive its frame is pinned: the pool will not evict
/// it, so the span returned by span() stays valid no matter how many other
/// blocks are fetched in the meantime. The destructor (or Release()) unpins
/// the frame and, for guards obtained with `for_write` (or after MarkDirty()),
/// carries the dirty bit onto the frame so the block is written back on
/// eviction or Flush.
///
/// Guards are move-only and must not outlive their pool.
class PageGuard {
 public:
  /// Constructs an empty guard (valid() == false).
  PageGuard() = default;

  PageGuard(PageGuard&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        frame_(std::exchange(other.frame_, nullptr)),
        dirty_(std::exchange(other.dirty_, false)) {}

  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = std::exchange(other.pool_, nullptr);
      frame_ = std::exchange(other.frame_, nullptr);
      dirty_ = std::exchange(other.dirty_, false);
    }
    return *this;
  }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  ~PageGuard() { Release(); }

  /// \brief True when the guard pins a frame.
  bool valid() const { return frame_ != nullptr; }
  explicit operator bool() const { return valid(); }

  /// \brief Block id of the pinned frame. Guard must be valid.
  uint64_t block_id() const { return frame_->block_id; }

  /// \brief The frame's coefficients; stays valid while the guard is alive.
  std::span<double> span() const { return std::span<double>(frame_->data); }

  double& operator[](uint64_t slot) const { return frame_->data[slot]; }

  /// \brief Marks the frame for write-back when the guard is released.
  /// Writes through a guard that is neither `for_write` nor marked dirty are
  /// not written back and may be lost on eviction.
  void MarkDirty() { dirty_ = true; }

  /// \brief Unpins the frame early (applying the dirty bit); the guard
  /// becomes empty. Safe to call on an empty guard.
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, internal::PoolFrame* frame, bool dirty)
      : pool_(pool), frame_(frame), dirty_(dirty) {}

  BufferPool* pool_ = nullptr;
  internal::PoolFrame* frame_ = nullptr;
  bool dirty_ = false;  // applied to the frame on Release
};

/// \brief RAII admission slot granted by BufferPool::AdmitOperation.
///
/// One ticket is one logical operation (a query, a reconstruct) allowed to
/// drive the pool concurrently; destroying (or Release()-ing) the ticket
/// frees the slot for the next queued waiter. Tickets from a pool with
/// admission control disabled are valid no-ops.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;

  AdmissionTicket(AdmissionTicket&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)) {}
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = std::exchange(other.pool_, nullptr);
    }
    return *this;
  }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  ~AdmissionTicket() { Release(); }

  /// \brief Frees the admission slot early; safe to call repeatedly.
  void Release();

 private:
  friend class BufferPool;
  explicit AdmissionTicket(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool_ = nullptr;  // non-null while a slot is held
};

/// \brief Single-threaded pinning LRU block cache with write-back.
///
/// Contract:
///  - GetBlock returns a PageGuard pinning the frame; pinned frames are
///    never eviction victims, so any number of concurrently held guards stay
///    valid (bounded by the pool capacity — when every frame is pinned a
///    miss fails with ResourceExhausted instead of invalidating anything).
///  - Write-back is lazy: dirty frames are written on eviction, Flush, or
///    pool destruction (best effort; see flush_failures()).
///  - Failure atomicity on the miss path: the incoming block is read before
///    the victim frame is touched. A failed ReadBlock leaves cache contents,
///    dirty bits and recency order bit-for-bit unchanged; a failed victim
///    write-back leaves the victim resident and still dirty.
///
/// Threading: the pool is thread-compatible by default (zero locking
/// overhead, single-threaded callers only). set_thread_safe(true) switches
/// every public operation — including guard release — behind an internal
/// mutex, making the frame table, recency order and all counters safe to
/// drive from multiple threads. Writes through a pinned span are NOT covered
/// by the pool mutex: concurrent writers must touch disjoint blocks or
/// serialize externally (the parallel chunked transform serializes commits).
class BufferPool {
 public:
  /// \brief Counters describing pool behaviour since construction.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;       ///< frames dropped to make room
    uint64_t write_backs = 0;     ///< dirty frames written (eviction + flush)
    uint64_t flush_failures = 0;  ///< dirty frames dropped unwritten
    uint64_t prefetched = 0;      ///< frames loaded by Prefetch
    uint64_t pinned_frames = 0;   ///< frames currently pinned
    uint64_t cached_blocks = 0;   ///< frames currently resident
    uint64_t capacity = 0;
    uint64_t admitted = 0;             ///< operations granted an admission slot
    uint64_t admission_rejections = 0; ///< fast rejections (queue full)
    uint64_t admission_timeouts = 0;   ///< waiters that timed out in the queue
    IoStats io;                   ///< block I/O issued by this pool

    /// Fraction of GetBlock calls served without block I/O (1.0 when idle).
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 1.0 : static_cast<double>(hits) / total;
    }
  };

  /// \param manager         backing device (not owned; must outlive the pool)
  /// \param capacity_blocks positive frame budget
  BufferPool(BlockManager* manager, uint64_t capacity_blocks);

  /// Writes back dirty frames best-effort (failures are counted and logged,
  /// never thrown). All guards must have been released before destruction.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Pins and returns the frame caching `block_id`, reading it on a
  /// miss. With `for_write` the frame is marked dirty when the guard is
  /// released and written back on eviction or Flush.
  ///
  /// With a non-null `ctx` the miss-path read honours the context's
  /// deadline, cancellation and retry budget (ReadBlockRetry); the
  /// deadline/cancellation gate fires before the lock is taken, so a wedged
  /// caller returns within one block read of its deadline.
  ///
  /// Errors: ResourceExhausted when the pool is full of pinned frames;
  /// DeadlineExceeded/Cancelled from `ctx`; any Status from the backing
  /// manager's ReadBlock/WriteBlock.
  Result<PageGuard> GetBlock(uint64_t block_id, bool for_write,
                             OperationContext* ctx = nullptr);

  /// \brief Warms the cache with `block_ids` in one vectored read
  /// (BlockManager::ReadBlocks). Already-cached and duplicate ids are
  /// skipped; the remaining ids are loaded first-to-last until the pool has
  /// no more unpinned room, evicting LRU victims (write-backs included) as
  /// needed. Purely a cache warm-up: a prefetched frame carries no pin and
  /// may be evicted again before use, in which case the later GetBlock
  /// simply re-reads it — correctness never depends on a prefetch.
  ///
  /// Errors: a failed batch read leaves the cache unchanged; a failed victim
  /// write-back stops the insertion, leaving earlier ids warmed. With a
  /// non-null `ctx` the batch read retries transient failures under the
  /// context's budget and the deadline gate fires on entry.
  Status Prefetch(std::span<const uint64_t> block_ids,
                  OperationContext* ctx = nullptr);

  /// \brief Caps the number of operations concurrently driving the pool.
  ///
  /// When `max_concurrent` > 0, AdmitOperation grants at most that many
  /// outstanding tickets; excess callers wait FIFO in a queue bounded by
  /// `max_queue_depth`. A caller finding the queue full is rejected
  /// immediately with Unavailable (fast failure instead of pin-exhaustion
  /// livelock); a queued caller that waits longer than `queue_timeout_us`
  /// (or its context deadline, whichever is sooner) is removed and rejected
  /// the same way. `max_concurrent` = 0 disables admission control (the
  /// default). Requires thread-safe mode when used concurrently; reconfigure
  /// only while no operation is in flight.
  void SetAdmissionControl(uint64_t max_concurrent, uint64_t max_queue_depth,
                           uint64_t queue_timeout_us);

  /// \brief Acquires an admission slot for one logical operation, waiting in
  /// the bounded FIFO queue if the pool is at its concurrency cap. Returns
  /// Unavailable on queue overflow or queue timeout, DeadlineExceeded /
  /// Cancelled when the context ends the wait instead. With admission
  /// control disabled this is a cheap no-op returning a valid ticket.
  Result<AdmissionTicket> AdmitOperation(OperationContext* ctx = nullptr);

  /// \brief Toggles the internal mutex (see class comment). Must be called
  /// while no operation is in flight on another thread.
  void set_thread_safe(bool on) { thread_safe_ = on; }
  bool thread_safe() const { return thread_safe_; }

  /// \brief Writes back all dirty frames (keeps them cached and clean).
  /// Stops at the first failing write, leaving that frame dirty.
  Status Flush();

  /// \brief Atomic multi-block commit of all dirty frames through `journal`:
  /// the dirty block set (ids + images + checksums) is first appended to
  /// the journal and fsynced, then the blocks are written in place and the
  /// device synced, then the journal is truncated. A crash anywhere in
  /// between is repaired by Journal::Recover on reopen — the whole batch
  /// lands or none of it does. With a null journal this degrades to Flush().
  ///
  /// The all-or-nothing guarantee covers the frames dirty at call time;
  /// dirty frames evicted *between* commits are written back unjournaled
  /// (tracked by journaled_write_backs() vs write_backs) — size the pool to
  /// hold each commit's dirty working set (no-steal), as the tests and
  /// benches do.
  Status FlushAtomic(Journal* journal);

  /// \brief Drops the clean, unpinned frames among `block_ids` so their
  /// next GetBlock re-reads the disk — for blocks whose on-disk image was
  /// repaired behind the cache (a scrub may otherwise leave stale degraded
  /// zero-fills resident). Pinned or dirty frames are skipped: a pin means
  /// a caller still reads the frame, and a dirty frame is newer than disk.
  /// Returns the number of frames dropped.
  uint64_t InvalidateBlocks(std::span<const uint64_t> block_ids);

  /// \brief Drops every frame without writing dirty ones back — for
  /// abandoning a store after a failed commit (the journal will repair it
  /// on reopen). Fails with ResourceExhausted while any frame is pinned.
  Status Discard();

  /// \brief Writes back all dirty frames, continuing past failures. Failed
  /// frames stay dirty; each failure increments flush_failures(). Returns
  /// the number of failures (0 = fully flushed).
  uint64_t FlushBestEffort();

  /// \brief Drops every frame, writing dirty ones back first. Fails with
  /// ResourceExhausted (dropping nothing) while any frame is pinned.
  Status Clear();

  /// \brief Full counter snapshot (see Stats).
  Stats stats() const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// \brief Dirty frames that could not be written back by best-effort
  /// flushes (FlushBestEffort and the destructor).
  uint64_t flush_failures() const { return flush_failures_; }
  /// \brief Write-backs performed inside FlushAtomic commits; the
  /// difference to Stats::write_backs is eviction traffic outside any
  /// commit (zero when the pool never steals dirty frames between commits).
  uint64_t journaled_write_backs() const { return journaled_write_backs_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t cached_blocks() const { return frames_.size(); }
  uint64_t pinned_frames() const { return pinned_frames_; }

  BlockManager* manager() { return manager_; }

 private:
  friend class PageGuard;
  friend class AdmissionTicket;
  using FrameList = std::list<internal::PoolFrame>;

  // One queued admission waiter; lives on the waiter's stack.
  struct AdmissionWaiter {
    std::condition_variable cv;
    bool granted = false;
  };

  // AdmissionTicket::Release calls this: frees a slot, grants the next
  // queued waiter(s).
  void ReleaseAdmission();

  // Locked when thread-safe mode is on; an empty (no-op) lock otherwise.
  std::unique_lock<std::mutex> Lock() const {
    return thread_safe_ ? std::unique_lock<std::mutex>(mu_)
                        : std::unique_lock<std::mutex>();
  }

  // Pins `frame` (recording the 0->1 transition) and wraps it in a guard.
  PageGuard Pin(internal::PoolFrame* frame, bool for_write);
  // PageGuard::Release calls this: applies `dirty`, drops one pin.
  void Unpin(internal::PoolFrame* frame, bool dirty);

  // Least-recently-used unpinned frame, or lru_.end() if all are pinned.
  FrameList::iterator FindVictim();

  // Writes `frame` back if dirty (counting the write-back); on success the
  // frame is clean.
  Status WriteBack(internal::PoolFrame& frame);

  // A block-sized buffer: recycled from a previous eviction when available,
  // freshly allocated otherwise. Contents are unspecified.
  std::vector<double> TakeBuffer();

  // Unlocked bodies of the public entry points (caller holds Lock()).
  Status FlushLocked();
  uint64_t FlushBestEffortLocked();

  BlockManager* manager_;
  uint64_t capacity_;
  bool thread_safe_ = false;
  mutable std::mutex mu_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t write_backs_ = 0;
  uint64_t flush_failures_ = 0;
  uint64_t journaled_write_backs_ = 0;
  uint64_t prefetched_ = 0;
  uint64_t pinned_frames_ = 0;
  IoStats io_;  // block reads/writes issued by this pool
  // Admission control (separate mutex, acquired strictly before mu_ and
  // never while holding it — tickets are taken before pool operations).
  mutable std::mutex admission_mu_;
  uint64_t admission_max_ = 0;  // 0 = admission control off
  uint64_t admission_queue_cap_ = 0;
  uint64_t admission_timeout_us_ = 0;
  uint64_t admission_active_ = 0;
  uint64_t admitted_ = 0;
  uint64_t admission_rejections_ = 0;
  uint64_t admission_timeouts_ = 0;
  std::list<AdmissionWaiter*> admission_queue_;  // FIFO, front is next
  // MRU at front. unordered_map points into the list (stable iterators).
  FrameList lru_;
  std::unordered_map<uint64_t, FrameList::iterator> frames_;
  // Block-sized buffers recycled across evictions so the steady-state miss
  // path performs no heap allocation.
  std::vector<std::vector<double>> free_buffers_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_BUFFER_POOL_H_
