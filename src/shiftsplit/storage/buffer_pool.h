// LRU buffer pool over a BlockManager. The pool capacity (in blocks) is the
// memory budget the paper's algorithms operate under; a hit costs no block
// I/O, a miss reads the block and may evict (writing back a dirty frame).

#ifndef SHIFTSPLIT_STORAGE_BUFFER_POOL_H_
#define SHIFTSPLIT_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "shiftsplit/storage/block_manager.h"

namespace shiftsplit {

/// \brief Single-threaded LRU block cache.
///
/// GetBlock returns a span into the frame, valid until the next GetBlock /
/// Flush / Invalidate call (a subsequent get may evict the frame). Callers
/// therefore use the span immediately — the usage pattern of all wavelet
/// operations (fetch tile, touch a few slots, move on).
class BufferPool {
 public:
  /// \param manager         backing device (not owned; must outlive the pool)
  /// \param capacity_blocks positive frame budget
  BufferPool(BlockManager* manager, uint64_t capacity_blocks);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Returns the cached frame for `block_id`, reading it on a miss.
  /// With `for_write` the frame is marked dirty and written back on eviction
  /// or Flush.
  Result<std::span<double>> GetBlock(uint64_t block_id, bool for_write);

  /// \brief Writes back all dirty frames (keeps them cached and clean).
  Status Flush();

  /// \brief Drops every frame, writing dirty ones back first.
  Status Clear();

  /// \brief Number of cache hits / misses since construction.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t cached_blocks() const { return frames_.size(); }

  BlockManager* manager() { return manager_; }

 private:
  struct Frame {
    uint64_t block_id;
    bool dirty = false;
    std::vector<double> data;
  };

  // Evicts the least-recently-used frame (list back), writing back if dirty.
  Status EvictOne();

  BlockManager* manager_;
  uint64_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // MRU at front. unordered_map points into the list.
  std::list<Frame> lru_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> frames_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_BUFFER_POOL_H_
