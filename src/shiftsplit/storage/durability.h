// Durability accounting: counters describing how a store has fared against
// corruption and crashes — checksum verification failures, quarantined
// blocks, journal recovery actions, transient-I/O retries, parity repair
// activity, and whether the store has degraded to read-only. Surfaced next
// to BufferPool::Stats via TiledStore::durability_stats().

#ifndef SHIFTSPLIT_STORAGE_DURABILITY_H_
#define SHIFTSPLIT_STORAGE_DURABILITY_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace shiftsplit {

/// \brief Counters describing crash/corruption handling since open.
struct DurabilityStats {
  uint64_t checksum_failures = 0;   ///< reads that failed verification
  uint64_t quarantined_blocks = 0;  ///< distinct blocks currently quarantined
  uint64_t zero_filled_reads = 0;   ///< degraded reads served as zeros
  uint64_t io_retries = 0;          ///< transient-I/O retries attempted
  uint64_t journal_commits = 0;     ///< atomic flush batches committed
  uint64_t journal_replays = 0;     ///< recoveries that redid a commit
  uint64_t journal_rollbacks = 0;   ///< recoveries that discarded a torn one
  uint64_t unjournaled_write_backs = 0;  ///< evictions outside any commit
  uint64_t repaired_blocks = 0;     ///< corrupt blocks rebuilt from parity
  uint64_t unrepairable_blocks = 0; ///< reconstruction attempts that failed
  uint64_t parity_reads = 0;        ///< parity-block reads (repair + update)
  uint64_t parity_writes = 0;       ///< parity-block writes (the write amp)
  bool read_only = false;           ///< store degraded to read-only

  DurabilityStats& operator+=(const DurabilityStats& other) {
    checksum_failures += other.checksum_failures;
    quarantined_blocks += other.quarantined_blocks;
    zero_filled_reads += other.zero_filled_reads;
    io_retries += other.io_retries;
    journal_commits += other.journal_commits;
    journal_replays += other.journal_replays;
    journal_rollbacks += other.journal_rollbacks;
    unjournaled_write_backs += other.unjournaled_write_backs;
    repaired_blocks += other.repaired_blocks;
    unrepairable_blocks += other.unrepairable_blocks;
    parity_reads += other.parity_reads;
    parity_writes += other.parity_writes;
    read_only = read_only || other.read_only;
    return *this;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "checksum failures=" << checksum_failures
       << " quarantined=" << quarantined_blocks
       << " zero-filled reads=" << zero_filled_reads
       << " retries=" << io_retries << " journal c/r/b=" << journal_commits
       << "/" << journal_replays << "/" << journal_rollbacks
       << " repaired=" << repaired_blocks
       << " unrepairable=" << unrepairable_blocks
       << (read_only ? " [read-only]" : "");
    return os.str();
  }

  bool operator==(const DurabilityStats&) const = default;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_STORAGE_DURABILITY_H_
