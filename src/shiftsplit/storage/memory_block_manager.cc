#include "shiftsplit/storage/memory_block_manager.h"

#include <algorithm>
#include <cassert>

namespace shiftsplit {

MemoryBlockManager::MemoryBlockManager(uint64_t block_size, uint64_t num_blocks)
    : block_size_(block_size) {
  assert(block_size_ > 0);
  blocks_.resize(num_blocks);
}

Status MemoryBlockManager::Resize(uint64_t num_blocks) {
  if (num_blocks < blocks_.size()) {
    return Status::InvalidArgument("block devices only grow");
  }
  blocks_.resize(num_blocks);
  return Status::OK();
}

Status MemoryBlockManager::ReadBlock(uint64_t id, std::span<double> out) {
  if (id >= blocks_.size()) {
    return Status::OutOfRange("block id beyond device size");
  }
  if (out.size() != block_size_) {
    return Status::InvalidArgument("read buffer size != block size");
  }
  ++stats_.block_reads;
  const auto& block = blocks_[id];
  if (block.empty()) {
    std::fill(out.begin(), out.end(), 0.0);  // never-written block
  } else {
    std::copy(block.begin(), block.end(), out.begin());
  }
  return Status::OK();
}

Status MemoryBlockManager::WriteBlock(uint64_t id,
                                      std::span<const double> data) {
  if (id >= blocks_.size()) {
    return Status::OutOfRange("block id beyond device size");
  }
  if (data.size() != block_size_) {
    return Status::InvalidArgument("write buffer size != block size");
  }
  ++stats_.block_writes;
  blocks_[id].assign(data.begin(), data.end());
  return Status::OK();
}

}  // namespace shiftsplit
