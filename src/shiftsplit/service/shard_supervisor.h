// Background shard-health supervisor for ShardedCube (DESIGN.md §11).
//
// One thread polls every shard slot: a cube that poisoned itself (a drain
// or flush failed; see ServingCube::health) is QUARANTINED with its poison
// status as the incident cause, and a due quarantined shard is recovered —
// torn down without flushing, re-opened through the store's own crash
// recovery (redo-journal replay plus deltas.log replay past the applied
// watermark), drained until the watermark converges, parked writes
// replayed, and re-admitted. Attempts of one incident back off under a
// capped jittered exponential schedule (util/operation_context.h,
// RetryPolicy); after ShardedCube::Options::max_recovery_attempts failures
// the shard lands in the terminal FAILED state and waits for an operator.
//
// The supervisor holds no health state of its own — the slots in
// ShardedCube are the single source of truth; this class is only the
// polling thread plus the deterministic jitter stream for the backoff.

#ifndef SHIFTSPLIT_SERVICE_SHARD_SUPERVISOR_H_
#define SHIFTSPLIT_SERVICE_SHARD_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace shiftsplit {

class ShardedCube;

/// \brief Polling health supervisor over a ShardedCube's shard slots.
class ShardSupervisor {
 public:
  /// `owner` must outlive the supervisor (ShardedCube owns it).
  ShardSupervisor(ShardedCube* owner, std::chrono::milliseconds poll,
                  uint64_t jitter_seed);
  ~ShardSupervisor();
  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// \brief Starts the polling thread (idempotent).
  void Start();
  /// \brief Stops and joins the polling thread (idempotent). A recovery
  /// attempt in flight finishes first.
  void Stop();

  /// \brief True while the polling thread runs — the gate for write
  /// parking (a parked write needs a supervisor to ever drain it).
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// \brief Runs one synchronous supervision pass over every shard on the
  /// caller's thread (detection + due recoveries), for deterministic tests
  /// without the polling thread.
  void TickForTest();

 private:
  void Loop();
  void Tick();

  ShardedCube* owner_;
  const std::chrono::milliseconds poll_;
  uint64_t jitter_state_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SHARD_SUPERVISOR_H_
