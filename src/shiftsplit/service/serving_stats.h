// Observability for the serving layer (ServingCube + DeltaBuffer): how many
// deltas are buffered, how maintenance is keeping up, what the read-side
// merge costs, and — since the self-healing layer — the shard's health state
// and the cause of its last failure. Modeled on DurabilityStats — a plain
// snapshot struct the cube assembles on demand.

#ifndef SHIFTSPLIT_SERVICE_SERVING_STATS_H_
#define SHIFTSPLIT_SERVICE_SERVING_STATS_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Health state of a serving shard (DESIGN.md §11).
///
///   HEALTHY ──log sync failure──▶ DEGRADED ──sync recovers──▶ HEALTHY
///      │                             │
///      └──────drain/store failure────┴──▶ QUARANTINED ──▶ RECOVERING
///                                              ▲               │
///                                              └──attempt──────┤
///                                                   failed     │
///                                     FAILED ◀──N attempts─────┴─▶ HEALTHY
///
/// HEALTHY/DEGRADED shards serve reads and writes (DEGRADED only signals
/// delta-log backpressure — acks may fail kResourceExhausted but nothing is
/// corrupt). QUARANTINED/RECOVERING shards serve nothing; the supervisor is
/// rebuilding them from disk. FAILED is terminal: recovery was attempted
/// the configured number of times and keeps failing — operator action
/// (restore the shard directory, reopen) is required.
enum class ShardHealth {
  kHealthy = 0,
  kDegraded,
  kQuarantined,
  kRecovering,
  kFailed,
};

/// \brief Human-readable name of a ShardHealth (e.g. "QUARANTINED").
const char* ShardHealthToString(ShardHealth health);

/// \brief True when the state still serves reads and writes.
inline bool ShardHealthServes(ShardHealth health) {
  return health == ShardHealth::kHealthy || health == ShardHealth::kDegraded;
}

/// \brief Counters of the serving layer, snapshotted by ServingCube::stats().
struct ServingStats {
  // Write path.
  uint64_t acked_deltas = 0;      ///< Add/Update cells accepted (and acked)
  uint64_t coalesced_deltas = 0;  ///< adds that hit an already-pending cell
  uint64_t pending_deltas = 0;    ///< distinct cells currently buffered
  uint64_t pending_slots = 0;     ///< buffered per-slot contributions
  uint64_t rejected_unavailable = 0;  ///< backpressure kUnavailable rejections
  uint64_t stall_waits = 0;       ///< writer waits caused by a full buffer
  uint64_t stall_us = 0;          ///< total writer stall time, microseconds

  // Maintenance.
  uint64_t apply_batches = 0;     ///< background drain batches committed
  uint64_t applied_deltas = 0;    ///< cells drained into the store
  uint64_t replayed_deltas = 0;   ///< deltas recovered from the log on open

  // Read-side merge.
  uint64_t overlay_probes = 0;    ///< coefficients checked against the buffer
  uint64_t overlay_hits = 0;      ///< probes that folded pending contributions

  // Store latch. Queries wait when maintenance holds the latch exclusively;
  // the hold counters bound how long a drain batch can stall the read tail
  // (the p999-grade spike source), per exclusive critical section.
  uint64_t latch_wait_us_total = 0;  ///< total acquisition wait, all callers
  uint64_t latch_hold_us_total = 0;  ///< total exclusive (maintenance) hold
  uint64_t latch_hold_us_max = 0;    ///< longest single exclusive hold
  uint64_t latch_exclusive_holds = 0;  ///< exclusive critical sections

  // Delta log.
  uint64_t log_appends = 0;       ///< records staged to the delta log
  uint64_t log_syncs = 0;         ///< group-commit fsync batches
  uint64_t log_torn_records = 0;  ///< torn tails dropped during replay
  uint64_t log_sync_failures = 0; ///< failed group commits (backpressure)

  // Watermarks.
  uint64_t last_seq = 0;          ///< newest assigned delta sequence number
  uint64_t durable_seq = 0;       ///< newest fsynced sequence number
  uint64_t applied_seq = 0;       ///< newest store-applied sequence number

  // Health. For a ShardedCube these aggregate as "worst health wins" and
  // the poison fields describe the first unhealthy shard.
  ShardHealth health = ShardHealth::kHealthy;
  StatusCode poison_code = StatusCode::kOk;  ///< cause of the quarantine
  std::string poison_message;     ///< first-error text, verbatim
  uint64_t poisoned_at_us = 0;    ///< steady-clock us at Poison(); 0 = never
  uint64_t health_since_us = 0;   ///< steady-clock us of the last transition

  // Self-healing (supervisor) counters; zero for an unsupervised cube.
  uint64_t quarantines = 0;        ///< transitions into QUARANTINED
  uint64_t recovery_attempts = 0;  ///< teardown+reopen cycles started
  uint64_t recoveries = 0;         ///< shards re-admitted HEALTHY
  uint64_t parked_writes = 0;      ///< writes parked while a shard healed
  uint64_t parked_dropped = 0;     ///< parked/offered writes rejected or lost

  // Scrub-and-repair (parity) counters; zero without a scrubber/parity.
  uint64_t scrub_passes = 0;       ///< full background scrub sweeps finished
  uint64_t scrubbed_blocks = 0;    ///< blocks verified by the scrubber
  uint64_t scrub_repairs = 0;      ///< corrupt blocks the scrubber rebuilt
  uint64_t parity_repairs = 0;     ///< in-place parity repairs, all paths
  uint64_t parity_unrepairable = 0;  ///< reconstruction attempts that failed

  std::string ToString() const {
    std::ostringstream out;
    out << "acked=" << acked_deltas << " coalesced=" << coalesced_deltas
        << " pending=" << pending_deltas << " pending_slots=" << pending_slots
        << " rejected=" << rejected_unavailable << " stalls=" << stall_waits
        << " stall_us=" << stall_us << " batches=" << apply_batches
        << " applied=" << applied_deltas << " replayed=" << replayed_deltas
        << " overlay_probes=" << overlay_probes
        << " overlay_hits=" << overlay_hits
        << " latch_wait_us=" << latch_wait_us_total
        << " latch_hold_us=" << latch_hold_us_total
        << " latch_hold_us_max=" << latch_hold_us_max
        << " latch_holds=" << latch_exclusive_holds
        << " log_appends=" << log_appends
        << " log_syncs=" << log_syncs << " torn=" << log_torn_records
        << " log_sync_failures=" << log_sync_failures
        << " last_seq=" << last_seq << " durable_seq=" << durable_seq
        << " applied_seq=" << applied_seq
        << " health=" << ShardHealthToString(health);
    if (poison_code != StatusCode::kOk) {
      out << " poison_code=" << StatusCodeToString(poison_code)
          << " poisoned_at_us=" << poisoned_at_us
          << " poison=\"" << poison_message << "\"";
    }
    if (quarantines != 0 || recovery_attempts != 0 || parked_writes != 0 ||
        parked_dropped != 0) {
      out << " quarantines=" << quarantines
          << " recovery_attempts=" << recovery_attempts
          << " recoveries=" << recoveries
          << " parked=" << parked_writes
          << " parked_dropped=" << parked_dropped;
    }
    if (scrub_passes != 0 || scrubbed_blocks != 0 || parity_repairs != 0 ||
        parity_unrepairable != 0) {
      out << " scrub_passes=" << scrub_passes
          << " scrubbed=" << scrubbed_blocks
          << " scrub_repairs=" << scrub_repairs
          << " parity_repairs=" << parity_repairs
          << " parity_unrepairable=" << parity_unrepairable;
    }
    return out.str();
  }
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SERVING_STATS_H_
