// Observability for the serving layer (ServingCube + DeltaBuffer): how many
// deltas are buffered, how maintenance is keeping up, and what the read-side
// merge costs. Modeled on DurabilityStats — a plain snapshot struct the cube
// assembles on demand.

#ifndef SHIFTSPLIT_SERVICE_SERVING_STATS_H_
#define SHIFTSPLIT_SERVICE_SERVING_STATS_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace shiftsplit {

/// \brief Counters of the serving layer, snapshotted by ServingCube::stats().
struct ServingStats {
  // Write path.
  uint64_t acked_deltas = 0;      ///< Add/Update cells accepted (and acked)
  uint64_t coalesced_deltas = 0;  ///< adds that hit an already-pending cell
  uint64_t pending_deltas = 0;    ///< distinct cells currently buffered
  uint64_t pending_slots = 0;     ///< buffered per-slot contributions
  uint64_t rejected_unavailable = 0;  ///< backpressure kUnavailable rejections
  uint64_t stall_waits = 0;       ///< writer waits caused by a full buffer
  uint64_t stall_us = 0;          ///< total writer stall time, microseconds

  // Maintenance.
  uint64_t apply_batches = 0;     ///< background drain batches committed
  uint64_t applied_deltas = 0;    ///< cells drained into the store
  uint64_t replayed_deltas = 0;   ///< deltas recovered from the log on open

  // Read-side merge.
  uint64_t overlay_probes = 0;    ///< coefficients checked against the buffer
  uint64_t overlay_hits = 0;      ///< probes that folded pending contributions

  // Store latch. Queries wait when maintenance holds the latch exclusively;
  // the hold counters bound how long a drain batch can stall the read tail
  // (the p999-grade spike source), per exclusive critical section.
  uint64_t latch_wait_us_total = 0;  ///< total acquisition wait, all callers
  uint64_t latch_hold_us_total = 0;  ///< total exclusive (maintenance) hold
  uint64_t latch_hold_us_max = 0;    ///< longest single exclusive hold
  uint64_t latch_exclusive_holds = 0;  ///< exclusive critical sections

  // Delta log.
  uint64_t log_appends = 0;       ///< records staged to the delta log
  uint64_t log_syncs = 0;         ///< group-commit fsync batches
  uint64_t log_torn_records = 0;  ///< torn tails dropped during replay

  // Watermarks.
  uint64_t last_seq = 0;          ///< newest assigned delta sequence number
  uint64_t durable_seq = 0;       ///< newest fsynced sequence number
  uint64_t applied_seq = 0;       ///< newest store-applied sequence number

  std::string ToString() const {
    std::ostringstream out;
    out << "acked=" << acked_deltas << " coalesced=" << coalesced_deltas
        << " pending=" << pending_deltas << " pending_slots=" << pending_slots
        << " rejected=" << rejected_unavailable << " stalls=" << stall_waits
        << " stall_us=" << stall_us << " batches=" << apply_batches
        << " applied=" << applied_deltas << " replayed=" << replayed_deltas
        << " overlay_probes=" << overlay_probes
        << " overlay_hits=" << overlay_hits
        << " latch_wait_us=" << latch_wait_us_total
        << " latch_hold_us=" << latch_hold_us_total
        << " latch_hold_us_max=" << latch_hold_us_max
        << " latch_holds=" << latch_exclusive_holds
        << " log_appends=" << log_appends
        << " log_syncs=" << log_syncs << " torn=" << log_torn_records
        << " last_seq=" << last_seq << " durable_seq=" << durable_seq
        << " applied_seq=" << applied_seq;
    return out.str();
  }
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SERVING_STATS_H_
