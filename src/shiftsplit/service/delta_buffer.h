// In-memory buffer of pending cell deltas — the write side of the serving
// layer. Writers deposit per-cell SHIFT-SPLIT write sets (planned against
// the store's layout, never touching the store); maintenance drains a
// sequence-number prefix of the buffer into the store; queries fold the
// still-pending contributions into every fetched coefficient through the
// CoefficientOverlay hook.
//
// Exactness invariant: every contribution is kept at its own sequence
// number, per physical (block, slot). The overlay folds a slot's pending
// contributions with `+=` in sequence order starting from the stored value —
// the same floating-point chain ApplyToBlock executes when the drain later
// commits those contributions in the same order — so a merged answer is
// bit-identical to a store that had applied every buffered delta
// synchronously, and the applied_seq watermark stays an exact boundary for
// crash-recovery replay (nothing past it is ever partially applied).
//
// Coalescing is by coordinate at the cell-index level: repeated deltas to
// one cell share a single pending-cell entry (one unit of backpressure, one
// unit of drain-trigger pressure) and their contributions land adjacently in
// the per-slot contribution vectors, so a drain still pins each affected
// block exactly once per batch. Values are deliberately NOT pre-summed
// across sequence numbers — that would apply later deltas ahead of the
// watermark and break both the exactness invariant and replay.

#ifndef SHIFTSPLIT_SERVICE_DELTA_BUFFER_H_
#define SHIFTSPLIT_SERVICE_DELTA_BUFFER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/service/serving_stats.h"
#include "shiftsplit/storage/journal.h"
#include "shiftsplit/tile/tile_layout.h"
#include "shiftsplit/util/operation_context.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Bounded, journaled buffer of pending per-cell delta write sets.
/// Thread-safe; see the file comment for the exactness invariant.
class DeltaBuffer {
 public:
  struct Config {
    /// Backpressure bound: Add blocks (or fails with kUnavailable under an
    /// armed deadline) while this many distinct cells are pending.
    uint64_t max_pending_deltas = 4096;
  };

  /// \brief `log` (may be null) receives one record per accepted delta,
  /// appended in sequence order under the buffer lock; not owned.
  DeltaBuffer(Config config, DeltaLog* log)
      : config_(config), log_(log) {}

  /// \brief RAII registration of a read snapshot: queries evaluated under a
  /// snapshot fold exactly the pending deltas with seq <= seq(), and the
  /// maintenance drain horizon never passes an active snapshot — so a query
  /// sees each delta exactly once even while a worker is mid-apply.
  class Snapshot {
   public:
    explicit Snapshot(DeltaBuffer* buffer);
    ~Snapshot();
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    uint64_t seq() const { return seq_; }

   private:
    DeltaBuffer* buffer_;
    std::multiset<uint64_t>::iterator it_;
    uint64_t seq_ = 0;
  };

  /// \brief CoefficientOverlay over the buffer at a snapshot: folds each
  /// probed slot's pending contributions with seq <= the snapshot, in
  /// sequence order. The referenced Snapshot must outlive the view.
  class OverlayView : public CoefficientOverlay {
   public:
    OverlayView(const DeltaBuffer* buffer, const Snapshot& snapshot)
        : buffer_(buffer), snap_(snapshot.seq()) {}

    double Adjust(BlockSlot at, double stored) const override;

   private:
    const DeltaBuffer* buffer_;
    uint64_t snap_;
  };

  /// \brief One block's drained write set, ops grouped per slot in sequence
  /// order (the ApplyToBlock input).
  struct DrainBlock {
    uint64_t block = 0;
    std::vector<SlotUpdate> ops;
  };

  /// \brief A begun drain: every pending contribution with seq <= upto,
  /// grouped by destination block in ascending block order.
  struct DrainBatch {
    uint64_t upto = 0;
    std::vector<DrainBlock> blocks;
    std::vector<uint64_t> block_ids;  ///< ascending; the prefetch set
  };

  /// \brief Accepts one cell delta whose planned write set is `plan`
  /// (PlanChunkStandard of the single cell, ApplyMode::kUpdate — accumulate
  /// ops only). Blocks while the buffer is full: under an armed `ctx`
  /// deadline the wait is bounded and times out as kUnavailable. On success
  /// assigns the next sequence number (returned via `out_seq`), records the
  /// write set, and appends the delta to the log — the caller makes it
  /// durable with DeltaLog::Sync(*out_seq) before acknowledging.
  Status Add(std::span<const uint64_t> coords, double value,
             std::span<const ChunkBlockOps> plan, OperationContext* ctx,
             uint64_t* out_seq);

  /// \brief Re-inserts a delta recovered from the log at its original
  /// sequence number (no backpressure, no re-journaling). Call in log order
  /// before any Add.
  void Restore(std::span<const uint64_t> coords, uint64_t seq,
               std::span<const ChunkBlockOps> plan);

  /// \brief Seeds the sequence watermarks from the persisted applied
  /// watermark; call once on open, before any Restore or Add, so fresh
  /// sequence numbers continue strictly after everything already logged or
  /// applied.
  void InitWatermarks(uint64_t applied_seq);

  /// \brief Starts a drain: picks the horizon `b = min(last_seq, oldest
  /// active snapshot)` and returns every pending contribution with
  /// seq <= b, or nullopt when nothing is drainable (empty buffer, or all
  /// pending deltas are pinned by active snapshots). At most one drain may
  /// be in flight; the caller serializes BeginDrain..FinishDrain.
  std::optional<DrainBatch> BeginDrain();

  /// \brief Removes one block's contributions with seq <= upto. Must be
  /// called after the drain applied that block to the store, while still
  /// holding the exclusive store latch — queries then see either the
  /// pre-apply store plus the pending contributions or the post-apply store
  /// without them, identical bits either way.
  void EraseBlockPrefix(uint64_t block, uint64_t upto);

  /// \brief Completes the drain begun at `upto`: advances applied_seq,
  /// retires fully-applied cell entries, and wakes blocked writers.
  void FinishDrain(uint64_t upto);

  /// \brief Abandons a drain that will never finish (the applying thread
  /// failed mid-batch): clears the in-flight marker so a later BeginDrain
  /// can retry, and wakes blocked writers. Contributions the failed drain
  /// already erased stay erased — they were applied to (still cached) store
  /// pages before the erase — so re-draining is exactly-once. Part of the
  /// in-place repair path (ServingCube::RepairNow).
  void AbortDrain();

  /// \brief Truncates the delta log iff every accepted delta is applied and
  /// no drain is in flight (checked atomically with the log operation, so a
  /// concurrent Add cannot slip an unapplied record into the doomed file).
  Status TruncateLogIfIdle();

  uint64_t pending_deltas() const;
  uint64_t last_seq() const;
  uint64_t applied_seq() const;
  /// \brief Un-applied per-slot contributions still buffered. Zero means
  /// every accepted delta's write set has been applied to store pages (even
  /// if the applied watermark lags, as after an aborted drain).
  uint64_t pending_slot_entries() const;

  /// \brief True when a pending delta has been waiting longer than `age`.
  bool OldestPendingOlderThan(std::chrono::microseconds age) const;

  /// \brief Fills the buffer-owned fields of `out` (write path, maintenance
  /// counters, overlay counters, last/applied watermarks).
  void StatsInto(ServingStats* out) const;

 private:
  struct CellEntry {
    uint64_t last_seq = 0;  ///< newest sequence number of this cell
  };

  /// One pending contribution at its sequence number. Two 8-byte lanes, so
  /// a slot's pending values form a stride-2 double stream the overlay can
  /// hand to the kernel-layer chain fold.
  struct SeqContribution {
    uint64_t seq = 0;
    double value = 0.0;
  };

  /// First entry with seq > bound in a seq-sorted contribution vector.
  static std::vector<SeqContribution>::const_iterator UpperBound(
      const std::vector<SeqContribution>& pending, uint64_t bound);

  void InsertPlanLocked(std::span<const ChunkBlockOps> plan, uint64_t seq);

  const Config config_;
  DeltaLog* const log_;  // may be null (in-memory serving)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // block -> slot -> contributions, seq-ascending per slot (appends arrive
  // in sequence order; Restore runs in log order, which is seq order).
  std::unordered_map<
      uint64_t, std::unordered_map<uint64_t, std::vector<SeqContribution>>>
      slots_;
  // Cell coordinate -> pending entry (the coalescing index).
  std::map<std::vector<uint64_t>, CellEntry> cells_;
  std::multiset<uint64_t> snapshots_;
  std::deque<std::pair<uint64_t, std::chrono::steady_clock::time_point>>
      arrivals_;
  uint64_t last_seq_ = 0;
  uint64_t applied_seq_ = 0;
  uint64_t draining_upto_ = 0;  ///< nonzero while a drain is in flight
  uint64_t slot_entries_ = 0;
  // Counters (mutable: the read-side overlay updates them under mu_).
  uint64_t acked_deltas_ = 0;
  uint64_t coalesced_deltas_ = 0;
  uint64_t rejected_unavailable_ = 0;
  uint64_t stall_waits_ = 0;
  uint64_t stall_us_ = 0;
  uint64_t apply_batches_ = 0;
  uint64_t applied_deltas_ = 0;
  mutable uint64_t overlay_probes_ = 0;
  mutable uint64_t overlay_hits_ = 0;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_DELTA_BUFFER_H_
