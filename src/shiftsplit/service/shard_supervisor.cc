#include "shiftsplit/service/shard_supervisor.h"

#include "shiftsplit/service/sharded_cube.h"

namespace shiftsplit {

namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardSupervisor::ShardSupervisor(ShardedCube* owner,
                                 std::chrono::milliseconds poll,
                                 uint64_t jitter_seed)
    : owner_(owner), poll_(poll), jitter_state_(jitter_seed) {}

ShardSupervisor::~ShardSupervisor() { Stop(); }

void ShardSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&ShardSupervisor::Loop, this);
}

void ShardSupervisor::Stop() {
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    // Parking gates on running(): flip it before the join so writers stop
    // enqueuing work nobody will drain while we wind down.
    running_.store(false, std::memory_order_release);
    joinable = std::move(thread_);
  }
  cv_.notify_all();
  joinable.join();
}

void ShardSupervisor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    Tick();
    lock.lock();
    cv_.wait_for(lock, poll_, [&] { return stop_; });
  }
}

void ShardSupervisor::Tick() {
  const uint32_t shards = owner_->num_shards();
  for (uint32_t s = 0; s < shards; ++s) {
    owner_->SuperviseShard(s, SteadyNowUs(), &jitter_state_);
  }
}

void ShardSupervisor::TickForTest() { Tick(); }

}  // namespace shiftsplit
