#include "shiftsplit/service/delta_buffer.h"

#include <algorithm>
#include <cstddef>
#include <iterator>

#include "shiftsplit/kernels/kernels.h"

namespace shiftsplit {

std::vector<DeltaBuffer::SeqContribution>::const_iterator
DeltaBuffer::UpperBound(const std::vector<SeqContribution>& pending,
                        uint64_t bound) {
  return std::upper_bound(
      pending.begin(), pending.end(), bound,
      [](uint64_t seq, const SeqContribution& c) { return seq < c.seq; });
}

DeltaBuffer::Snapshot::Snapshot(DeltaBuffer* buffer) : buffer_(buffer) {
  std::lock_guard<std::mutex> lock(buffer_->mu_);
  seq_ = buffer_->last_seq_;
  it_ = buffer_->snapshots_.insert(seq_);
}

DeltaBuffer::Snapshot::~Snapshot() {
  std::lock_guard<std::mutex> lock(buffer_->mu_);
  buffer_->snapshots_.erase(it_);
}

double DeltaBuffer::OverlayView::Adjust(BlockSlot at, double stored) const {
  // The chain fold reads SeqContribution::value straight out of the vector
  // as a strided (AoS) double stream.
  static_assert(sizeof(SeqContribution) == 2 * sizeof(double),
                "SeqContribution must stay 2 doubles wide for the chain fold");
  static_assert(offsetof(SeqContribution, value) == sizeof(uint64_t),
                "SeqContribution::value must sit at the second lane");
  constexpr size_t kStride = sizeof(SeqContribution) / sizeof(double);
  std::lock_guard<std::mutex> lock(buffer_->mu_);
  ++buffer_->overlay_probes_;
  const auto block_it = buffer_->slots_.find(at.block);
  if (block_it == buffer_->slots_.end()) return stored;
  const auto slot_it = block_it->second.find(at.slot);
  if (slot_it == block_it->second.end()) return stored;
  // Fold the pending contributions with seq <= snapshot in sequence order —
  // the exact += chain the drain will later run against the stored value.
  // The entries are seq-sorted, so the in-snapshot ones are a prefix.
  // fold_chain_strided is scalar in every dispatch tier by design: a serial
  // dependent sum cannot be vectorized without reassociating it.
  const std::vector<SeqContribution>& pending = slot_it->second;
  const size_t count =
      static_cast<size_t>(UpperBound(pending, snap_) - pending.begin());
  if (count == 0) return stored;
  ++buffer_->overlay_hits_;
  return kernels::Active().fold_chain_strided(stored, &pending[0].value,
                                              kStride, count);
}

void DeltaBuffer::InsertPlanLocked(std::span<const ChunkBlockOps> plan,
                                   uint64_t seq) {
  for (const ChunkBlockOps& block_ops : plan) {
    auto& slot_map = slots_[block_ops.block];
    for (const SlotUpdate& op : block_ops.ops) {
      // kUpdate-mode plans are accumulate-only; each (block, slot) appears
      // at most once per plan, so this seq is new to the slot. Sequence
      // numbers arrive ascending (Restore runs in log order before any
      // Add), so appending keeps the vector sorted; the insert branch only
      // defends against an out-of-order restore.
      auto& pending = slot_map[op.slot];
      if (pending.empty() || pending.back().seq < seq) {
        pending.push_back(SeqContribution{seq, op.value});
      } else {
        pending.insert(UpperBound(pending, seq),
                       SeqContribution{seq, op.value});
      }
      ++slot_entries_;
    }
  }
}

Status DeltaBuffer::Add(std::span<const uint64_t> coords, double value,
                        std::span<const ChunkBlockOps> plan,
                        OperationContext* ctx, uint64_t* out_seq) {
  std::vector<uint64_t> cell(coords.begin(), coords.end());
  std::unique_lock<std::mutex> lock(mu_);
  // Backpressure: a delta to an already-pending cell coalesces (no new cell
  // entry), so only genuinely new cells wait on a full buffer.
  const auto full = [this, &cell]() {
    return cells_.size() >= config_.max_pending_deltas &&
           cells_.find(cell) == cells_.end();
  };
  if (full()) {
    ++stall_waits_;
    const auto wait_start = std::chrono::steady_clock::now();
    if (ctx != nullptr && ctx->has_deadline()) {
      cv_.wait_until(lock, ctx->deadline(), [&] { return !full(); });
    } else {
      cv_.wait(lock, [&] { return !full(); });
    }
    stall_us_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
    if (full()) {
      ++rejected_unavailable_;
      return Status::Unavailable(
          "delta buffer full: maintenance is not keeping up");
    }
  }

  const uint64_t seq = ++last_seq_;
  InsertPlanLocked(plan, seq);
  const auto cell_it = cells_.find(cell);
  if (cell_it != cells_.end()) {
    cell_it->second.last_seq = seq;
    ++coalesced_deltas_;
  } else {
    cells_.emplace(std::move(cell), CellEntry{seq});
  }
  arrivals_.emplace_back(seq, std::chrono::steady_clock::now());
  ++acked_deltas_;
  if (log_ != nullptr) {
    // Under mu_, so log file order equals sequence order. Durability (Sync)
    // is the caller's step, outside the buffer lock.
    DeltaRecord record;
    record.seq = seq;
    record.value = value;
    record.coords.assign(coords.begin(), coords.end());
    log_->Append(record);
  }
  if (out_seq != nullptr) *out_seq = seq;
  return Status::OK();
}

void DeltaBuffer::Restore(std::span<const uint64_t> coords, uint64_t seq,
                          std::span<const ChunkBlockOps> plan) {
  std::vector<uint64_t> cell(coords.begin(), coords.end());
  std::lock_guard<std::mutex> lock(mu_);
  if (seq > last_seq_) last_seq_ = seq;
  InsertPlanLocked(plan, seq);
  const auto cell_it = cells_.find(cell);
  if (cell_it != cells_.end()) {
    cell_it->second.last_seq = seq;
    ++coalesced_deltas_;
  } else {
    cells_.emplace(std::move(cell), CellEntry{seq});
  }
  arrivals_.emplace_back(seq, std::chrono::steady_clock::now());
}

void DeltaBuffer::InitWatermarks(uint64_t applied_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  applied_seq_ = applied_seq;
  if (last_seq_ < applied_seq) last_seq_ = applied_seq;
}

std::optional<DeltaBuffer::DrainBatch> DeltaBuffer::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_upto_ != 0) return std::nullopt;  // caller serializes drains
  uint64_t upto = last_seq_;
  if (!snapshots_.empty()) {
    upto = std::min(upto, *snapshots_.begin());
  }
  if (upto <= applied_seq_) return std::nullopt;

  DrainBatch batch;
  batch.upto = upto;
  batch.block_ids.reserve(slots_.size());
  for (const auto& [block, slot_map] : slots_) {
    (void)slot_map;
    batch.block_ids.push_back(block);
  }
  std::sort(batch.block_ids.begin(), batch.block_ids.end());
  for (const uint64_t block : batch.block_ids) {
    const auto& slot_map = slots_.at(block);
    DrainBlock out;
    out.block = block;
    std::vector<uint64_t> slot_ids;
    slot_ids.reserve(slot_map.size());
    for (const auto& [slot, contributions] : slot_map) {
      (void)contributions;
      slot_ids.push_back(slot);
    }
    std::sort(slot_ids.begin(), slot_ids.end());
    for (const uint64_t slot : slot_ids) {
      // Individual contributions in sequence order, NOT pre-summed: the
      // store must run the same += chain the overlay advertised.
      for (const SeqContribution& c : slot_map.at(slot)) {
        if (c.seq > upto) break;
        out.ops.push_back(SlotUpdate{slot, c.value, /*overwrite=*/false});
      }
    }
    if (!out.ops.empty()) batch.blocks.push_back(std::move(out));
  }
  // Re-derive the id list from blocks that actually had drainable ops.
  batch.block_ids.clear();
  for (const DrainBlock& block : batch.blocks) {
    batch.block_ids.push_back(block.block);
  }
  if (batch.blocks.empty()) return std::nullopt;
  draining_upto_ = upto;
  return batch;
}

void DeltaBuffer::EraseBlockPrefix(uint64_t block, uint64_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto block_it = slots_.find(block);
  if (block_it == slots_.end()) return;
  auto& slot_map = block_it->second;
  for (auto slot_it = slot_map.begin(); slot_it != slot_map.end();) {
    auto& contributions = slot_it->second;
    const auto end = UpperBound(contributions, upto);
    slot_entries_ -= static_cast<uint64_t>(
        std::distance(contributions.cbegin(), end));
    contributions.erase(contributions.cbegin(), end);
    slot_it = contributions.empty() ? slot_map.erase(slot_it) : ++slot_it;
  }
  if (slot_map.empty()) slots_.erase(block_it);
}

void DeltaBuffer::FinishDrain(uint64_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  applied_seq_ = upto;
  for (auto it = cells_.begin(); it != cells_.end();) {
    it = it->second.last_seq <= upto ? cells_.erase(it) : ++it;
  }
  uint64_t applied = 0;
  while (!arrivals_.empty() && arrivals_.front().first <= upto) {
    arrivals_.pop_front();
    ++applied;
  }
  applied_deltas_ += applied;
  ++apply_batches_;
  draining_upto_ = 0;
  cv_.notify_all();
}

void DeltaBuffer::AbortDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_upto_ = 0;
  cv_.notify_all();
}

Status DeltaBuffer::TruncateLogIfIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ == nullptr) return Status::OK();
  if (applied_seq_ != last_seq_ || draining_upto_ != 0) return Status::OK();
  return log_->Truncate();
}

uint64_t DeltaBuffer::pending_deltas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

uint64_t DeltaBuffer::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

uint64_t DeltaBuffer::applied_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_seq_;
}

uint64_t DeltaBuffer::pending_slot_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot_entries_;
}

bool DeltaBuffer::OldestPendingOlderThan(
    std::chrono::microseconds age) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (arrivals_.empty()) return false;
  return std::chrono::steady_clock::now() - arrivals_.front().second >= age;
}

void DeltaBuffer::StatsInto(ServingStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->acked_deltas = acked_deltas_;
  out->coalesced_deltas = coalesced_deltas_;
  out->pending_deltas = cells_.size();
  out->pending_slots = slot_entries_;
  out->rejected_unavailable = rejected_unavailable_;
  out->stall_waits = stall_waits_;
  out->stall_us = stall_us_;
  out->apply_batches = apply_batches_;
  out->applied_deltas = applied_deltas_;
  out->overlay_probes = overlay_probes_;
  out->overlay_hits = overlay_hits_;
  out->last_seq = last_seq_;
  out->applied_seq = applied_seq_;
}

}  // namespace shiftsplit
