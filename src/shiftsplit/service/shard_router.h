// Dyadic shard addressing for the sharded serving layer. The global domain
// is partitioned along one dimension (the widest, ties to the lowest index)
// into 2^k sub-domains of equal extent; shard `s` owns the coordinates whose
// top k bits along that dimension equal s — the dyadic prefix. Each shard's
// store holds the self-contained wavelet transform of its own sub-domain
// (the SHIFT-SPLIT lifting argument in DESIGN.md §9 shows this collection is
// equivalent to one monolithic transform), so the router can:
//
//  * map a cell update to its owning shard (dyadic prefix of the split
//    coordinate) and to shard-local coordinates (the remaining bits);
//  * fan a point query to exactly one shard;
//  * decompose a range sum across shard boundaries: the box clipped to a
//    dyadic sub-domain lies entirely inside it, each shard answers its
//    clipped box exactly from its own transform, and the global answer is
//    the sum — no cross-shard coefficient paths at query time.
//
// The router is immutable after construction and safe to share across
// threads.

#ifndef SHIFTSPLIT_SERVICE_SHARD_ROUTER_H_
#define SHIFTSPLIT_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief One shard's portion of a decomposed range query: the clipped box
/// in shard-local coordinates.
struct ShardRange {
  uint32_t shard = 0;
  std::vector<uint64_t> lo;  ///< shard-local inclusive lower corner
  std::vector<uint64_t> hi;  ///< shard-local inclusive upper corner
};

/// \brief Immutable dyadic-prefix shard addressing (see the file comment).
class ShardRouter {
 public:
  /// A default-constructed router is an empty placeholder; assign one built
  /// by Make before use.
  ShardRouter() = default;

  /// \brief Builds a router partitioning `log_dims` into `num_shards` (a
  /// power of two) dyadic sub-domains along `split_dim`. Fails unless the
  /// split dimension has at least one level left per shard (num_shards <
  /// 2^log_dims[split_dim]).
  static Result<ShardRouter> Make(std::vector<uint32_t> log_dims,
                                  uint32_t split_dim, uint32_t num_shards);

  /// \brief As above with the canonical split dimension: the widest one,
  /// ties broken toward the lowest index.
  static Result<ShardRouter> Make(std::vector<uint32_t> log_dims,
                                  uint32_t num_shards);

  /// \brief The canonical split dimension for a domain (widest, lowest
  /// index on ties).
  static uint32_t PickSplitDim(std::span<const uint32_t> log_dims);

  uint32_t num_shards() const { return num_shards_; }
  uint32_t split_dim() const { return split_dim_; }
  /// log2(num_shards): the dyadic prefix width.
  uint32_t prefix_bits() const { return prefix_bits_; }
  const std::vector<uint32_t>& log_dims() const { return log_dims_; }
  /// The per-shard sub-domain extents: global with split_dim reduced.
  const std::vector<uint32_t>& shard_log_dims() const {
    return shard_log_dims_;
  }
  /// Extent of one shard's slab along the split dimension.
  uint64_t slab_extent() const { return slab_extent_; }

  /// \brief Owning shard of a global cell: the dyadic prefix (top
  /// prefix_bits bits) of the split coordinate. The coordinates must be
  /// in-domain (callers validate; shards re-validate locally).
  uint32_t ShardOf(std::span<const uint64_t> coords) const {
    return static_cast<uint32_t>(coords[split_dim_] / slab_extent_);
  }

  /// \brief Global -> shard-local coordinates (subtract the slab origin
  /// along the split dimension).
  std::vector<uint64_t> ToLocal(std::span<const uint64_t> coords,
                                uint32_t shard) const {
    std::vector<uint64_t> local(coords.begin(), coords.end());
    local[split_dim_] -= uint64_t{shard} * slab_extent_;
    return local;
  }

  /// \brief Inclusive global bounds of shard `s`'s slab along split_dim.
  uint64_t SlabLo(uint32_t shard) const {
    return uint64_t{shard} * slab_extent_;
  }
  uint64_t SlabHi(uint32_t shard) const {
    return uint64_t{shard + 1} * slab_extent_ - 1;
  }

  /// \brief Decomposes the global inclusive box [lo, hi] into per-shard
  /// clipped boxes in shard-local coordinates, ascending by shard. Boxes
  /// are validated against the global domain first (kInvalidArgument /
  /// kOutOfRange, matching the monolithic query entry points).
  Result<std::vector<ShardRange>> DecomposeRange(
      std::span<const uint64_t> lo, std::span<const uint64_t> hi) const;

  /// \brief Validates a global point and returns its owning shard.
  Result<uint32_t> RoutePoint(std::span<const uint64_t> point) const;

 private:
  std::vector<uint32_t> log_dims_;
  std::vector<uint32_t> shard_log_dims_;
  uint32_t split_dim_ = 0;
  uint32_t num_shards_ = 1;
  uint32_t prefix_bits_ = 0;
  uint64_t slab_extent_ = 0;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SHARD_ROUTER_H_
