// Background scrub-and-repair thread over one ServingCube: walks the
// device in small batches on a fixed cadence, verifying every block's
// checksum and rebuilding corrupt ones from group parity in place (via
// ServingCube::ScrubTick, under the store's exclusive latch), so silent
// bit rot is found and healed before a query or drain ever trips over it.
//
//   Scrubber scrubber(serving.get(), {.interval = 100ms, .batch_blocks = 8});
//   ...
//   scrubber.Pause();    // e.g. while a bulk load saturates the store
//   scrubber.Resume();
//   Scrubber::Stats s = scrubber.stats();
//
// The scrubber is rate-limited twice over: it touches at most
// `batch_blocks` blocks per tick and sleeps `interval` between ticks, so
// its exclusive-latch holds stay short and bounded — queries see a brief
// writer-priority blip, never a full-pass stall. The cube must outlive
// the scrubber; Stop() (or destruction) joins the thread.

#ifndef SHIFTSPLIT_SERVICE_SCRUBBER_H_
#define SHIFTSPLIT_SERVICE_SCRUBBER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "shiftsplit/service/serving_cube.h"

namespace shiftsplit {

/// \brief Rate-limited, pausable background scrubber for one ServingCube.
class Scrubber {
 public:
  struct Options {
    /// Sleep between scrub batches (the rate limit's long edge).
    std::chrono::milliseconds interval{100};
    /// Blocks verified per batch (the exclusive-latch hold bound).
    uint64_t batch_blocks = 8;
    /// Spawn the thread immediately; with false, nothing runs until
    /// Start().
    bool start = true;
  };

  /// \brief Counters, also mirrored into ServingStats by the cube.
  struct Stats {
    uint64_t passes = 0;        ///< full device sweeps completed
    uint64_t scanned = 0;       ///< blocks verified
    uint64_t repaired = 0;      ///< corrupt blocks rebuilt from parity
    uint64_t unrepairable = 0;  ///< double faults left for the supervisor
  };

  Scrubber(ServingCube* cube, const Options& options);
  ~Scrubber();
  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  void Start();
  /// \brief Stops and joins the thread. Idempotent; Start() may follow.
  void Stop();
  /// \brief Parks the thread after the tick in flight; ticks resume on
  /// Resume(). Cheap enough to bracket any latency-sensitive burst.
  void Pause();
  void Resume();
  bool paused() const;

  Stats stats() const;

 private:
  void Loop();

  ServingCube* const cube_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool paused_ = false;
  Stats stats_;
  std::thread thread_;  ///< joinable while running
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SCRUBBER_H_
